// Conformance testing: does a black-box device implement machine M?
//
// After a migration the device is *supposed* to behave as M'.  The RTL
// model can be checked by RAM readback, but a fielded device often only
// offers its I/O.  Chow's classic W-method builds a test suite P.W from a
// transition cover P (reach every transition from reset) and a
// characterizing set W (input words separating every state pair); applied
// through a reset-equipped interface it detects *any* faulty implementation
// with at most as many states as M — e.g. every mutant our workload
// generator can produce.  Requires M minimized (otherwise no W exists).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "fsm/machine.hpp"

namespace rfsm {

/// An input word.
using Word = std::vector<SymbolId>;

/// Characterizing set W: for every pair of distinct states there is a word
/// in W on which they produce different output words.  Throws FsmError when
/// the machine is not minimal (some pair is indistinguishable).
std::vector<Word> characterizingSet(const Machine& machine);

/// Transition cover P: the empty word, plus for every reachable transition
/// a word that reaches its source (via a BFS tree) and then takes it.
std::vector<Word> transitionCover(const Machine& machine);

/// A W-method conformance suite.
struct ConformanceSuite {
  std::vector<Word> tests;  // concatenations p.w, deduplicated

  int testCount() const { return static_cast<int>(tests.size()); }
  int totalInputs() const;
};

/// Builds the suite P.W for a minimal machine.  Guarantee: an
/// implementation with at most machine.stateCount() states passes the suite
/// iff it is behaviourally equivalent to `machine`.
ConformanceSuite wMethodSuite(const Machine& machine);

/// Result of running a suite.
struct ConformanceResult {
  bool pass = true;
  /// First failing test and the position of the first output mismatch.
  std::optional<Word> failingTest;
  int mismatchPosition = -1;
};

/// Runs the suite against `implementation` (reset applied before each
/// test); outputs are compared by symbol name.  The implementation must
/// accept the same input names.
ConformanceResult runConformanceSuite(const Machine& specification,
                                      const Machine& implementation,
                                      const ConformanceSuite& suite);

}  // namespace rfsm
