// Incremental construction and validation of Machines.
//
// The builder accepts an incompletely specified, possibly non-deterministic
// description (matching the general Def. 2.1) and checks on build() that the
// result is the deterministic, completely specified class the paper works
// with.  completeWith() fills unspecified cells so incompletely specified
// sources (e.g. KISS2 benchmarks) can be lifted into that class explicitly.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "fsm/machine.hpp"
#include "util/check.hpp"

namespace rfsm {

/// Thrown when a description fails validation (non-determinism,
/// incompleteness, unknown symbols).
class FsmError : public Error {
 public:
  explicit FsmError(const std::string& what) : Error(what) {}
};

/// Builder for deterministic completely-specified Mealy machines.
class MachineBuilder {
 public:
  explicit MachineBuilder(std::string name = "fsm");

  /// Declares symbols.  Re-declaring an existing symbol is a no-op returning
  /// the existing id.
  SymbolId addInput(std::string_view name);
  SymbolId addOutput(std::string_view name);
  SymbolId addState(std::string_view name);

  /// Declares the reset state S0 (required before build()).
  MachineBuilder& setResetState(std::string_view name);

  /// Adds the transition (input, from -> to, output); all four symbols are
  /// interned on the fly.  Specifying a cell (input, from) twice with a
  /// different target or output is non-determinism and rejected by build().
  MachineBuilder& addTransition(std::string_view input, std::string_view from,
                                std::string_view to, std::string_view output);

  /// Fills every unspecified (input, state) cell with a self-loop emitting
  /// `defaultOutput` (interned if new).  Call before build() to lift an
  /// incompletely specified description.
  MachineBuilder& completeWithSelfLoops(std::string_view defaultOutput);

  /// Fills every unspecified cell with a transition to `state` emitting
  /// `output`.
  MachineBuilder& completeWith(std::string_view state, std::string_view output);

  /// Number of cells still unspecified.
  int unspecifiedCellCount() const;

  /// Validates and produces the machine.  Throws FsmError when the
  /// description is non-deterministic or incomplete or lacks a reset state.
  Machine build() const;

 private:
  struct Spec {
    SymbolId input, from, to, output;
  };

  std::string name_;
  SymbolTable inputs_, outputs_, states_;
  std::optional<SymbolId> resetState_;
  std::vector<Spec> specs_;
};

}  // namespace rfsm
