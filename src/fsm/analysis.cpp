#include "fsm/analysis.hpp"

#include <algorithm>

#include "graph/scc.hpp"
#include "graph/shortest_path.hpp"

namespace rfsm {

std::vector<SymbolId> reachableStates(const Machine& machine) {
  const BfsResult bfs = bfsFrom(machine.transitionGraph(), machine.resetState());
  // Order states by BFS distance (then id) for a deterministic result.
  std::vector<SymbolId> order;
  for (SymbolId s = 0; s < machine.stateCount(); ++s)
    if (bfs.distance[static_cast<std::size_t>(s)] != kUnreachable)
      order.push_back(s);
  std::stable_sort(order.begin(), order.end(), [&](SymbolId a, SymbolId b) {
    return bfs.distance[static_cast<std::size_t>(a)] <
           bfs.distance[static_cast<std::size_t>(b)];
  });
  return order;
}

std::vector<SymbolId> unreachableStates(const Machine& machine) {
  const BfsResult bfs = bfsFrom(machine.transitionGraph(), machine.resetState());
  std::vector<SymbolId> out;
  for (SymbolId s = 0; s < machine.stateCount(); ++s)
    if (bfs.distance[static_cast<std::size_t>(s)] == kUnreachable)
      out.push_back(s);
  return out;
}

bool isConnectedFromReset(const Machine& machine) {
  return unreachableStates(machine).empty();
}

std::vector<TotalState> stableTotalStates(const Machine& machine) {
  std::vector<TotalState> stable;
  for (SymbolId s = 0; s < machine.stateCount(); ++s)
    for (SymbolId i = 0; i < machine.inputCount(); ++i)
      if (machine.isStableTotalState(i, s)) stable.push_back(TotalState{i, s});
  return stable;
}

std::vector<int> distancesTo(const Machine& machine, SymbolId target) {
  // BFS on the reversed graph gives distances *to* the target.
  Digraph reversed(machine.stateCount());
  for (SymbolId s = 0; s < machine.stateCount(); ++s)
    for (SymbolId i = 0; i < machine.inputCount(); ++i)
      reversed.addEdge(machine.next(i, s), s);
  return bfsFrom(reversed, target).distance;
}

int sccCount(const Machine& machine) {
  return stronglyConnectedComponents(machine.transitionGraph()).componentCount;
}

}  // namespace rfsm
