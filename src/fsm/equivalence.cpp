#include "fsm/equivalence.hpp"

#include <algorithm>
#include <queue>
#include <unordered_set>

#include "fsm/builder.hpp"

namespace rfsm {
namespace {

/// Maps each input id of `a` to the id of the same-named input in `b`;
/// throws FsmError when the alphabets differ as name sets.
std::vector<SymbolId> alignInputs(const Machine& a, const Machine& b) {
  if (a.inputCount() != b.inputCount())
    throw FsmError("machines '" + a.name() + "' and '" + b.name() +
                   "' have different input alphabet sizes");
  std::vector<SymbolId> map(static_cast<std::size_t>(a.inputCount()));
  for (SymbolId i = 0; i < a.inputCount(); ++i) {
    const auto other = b.inputs().find(a.inputs().name(i));
    if (!other.has_value())
      throw FsmError("input '" + a.inputs().name(i) + "' of machine '" +
                     a.name() + "' is missing from machine '" + b.name() + "'");
    map[static_cast<std::size_t>(i)] = *other;
  }
  return map;
}

}  // namespace

EquivalenceResult checkEquivalence(const Machine& a, const Machine& b) {
  const std::vector<SymbolId> inputMap = alignInputs(a, b);

  struct PairInfo {
    int parent = -1;      // index into `pairs` of the predecessor pair
    SymbolId viaInput = kNoSymbol;  // input (id in a) taken from the parent
  };
  // Visited product states, indexed densely.
  std::vector<std::pair<SymbolId, SymbolId>> pairs;
  std::vector<PairInfo> info;
  std::unordered_set<long long> seen;
  auto key = [&](SymbolId sa, SymbolId sb) {
    return static_cast<long long>(sa) * (b.stateCount() + 1) + sb;
  };

  std::queue<int> frontier;
  pairs.emplace_back(a.resetState(), b.resetState());
  info.emplace_back();
  seen.insert(key(a.resetState(), b.resetState()));
  frontier.push(0);

  auto buildWord = [&](int pairIndex, SymbolId lastInput) {
    std::vector<std::string> word;
    word.push_back(a.inputs().name(lastInput));
    for (int p = pairIndex; info[static_cast<std::size_t>(p)].parent != -1;
         p = info[static_cast<std::size_t>(p)].parent)
      word.push_back(
          a.inputs().name(info[static_cast<std::size_t>(p)].viaInput));
    std::reverse(word.begin(), word.end());
    return word;
  };

  while (!frontier.empty()) {
    const int current = frontier.front();
    frontier.pop();
    const auto [sa, sb] = pairs[static_cast<std::size_t>(current)];
    for (SymbolId i = 0; i < a.inputCount(); ++i) {
      const SymbolId ib = inputMap[static_cast<std::size_t>(i)];
      const std::string& outA = a.outputs().name(a.output(i, sa));
      const std::string& outB = b.outputs().name(b.output(ib, sb));
      if (outA != outB) {
        EquivalenceResult result;
        result.equivalent = false;
        result.counterexample = buildWord(current, i);
        return result;
      }
      const SymbolId na = a.next(i, sa);
      const SymbolId nb = b.next(ib, sb);
      if (seen.insert(key(na, nb)).second) {
        pairs.emplace_back(na, nb);
        info.push_back(PairInfo{current, i});
        frontier.push(static_cast<int>(pairs.size()) - 1);
      }
    }
  }
  return EquivalenceResult{true, std::nullopt};
}

bool areEquivalent(const Machine& a, const Machine& b) {
  return checkEquivalence(a, b).equivalent;
}

}  // namespace rfsm
