#include "fsm/kiss.hpp"

#include <sstream>

#include "fsm/builder.hpp"
#include "util/strings.hpp"

namespace rfsm {
namespace {

bool isPattern(const std::string& token) {
  for (char c : token)
    if (c != '0' && c != '1' && c != '-') return false;
  return !token.empty();
}

/// Expands every '-' in `pattern` into both '0' and '1'.
void expandPattern(const std::string& pattern, std::string& scratch,
                   std::size_t pos, std::vector<std::string>& out) {
  if (pos == pattern.size()) {
    out.push_back(scratch);
    return;
  }
  if (pattern[pos] == '-') {
    scratch[pos] = '0';
    expandPattern(pattern, scratch, pos + 1, out);
    scratch[pos] = '1';
    expandPattern(pattern, scratch, pos + 1, out);
  } else {
    scratch[pos] = pattern[pos];
    expandPattern(pattern, scratch, pos + 1, out);
  }
}

std::vector<std::string> expand(const std::string& pattern) {
  std::vector<std::string> out;
  std::string scratch(pattern.size(), '0');
  expandPattern(pattern, scratch, 0, out);
  return out;
}

}  // namespace

Kiss2Document parseKiss2(const std::string& text) {
  Kiss2Document doc;
  int declaredRows = -1;
  int declaredStates = -1;
  bool ended = false;

  int lineNo = 0;
  for (const std::string& rawLine : split(text, '\n')) {
    ++lineNo;
    std::string line = trim(rawLine);
    // Strip comments.
    if (auto hash = line.find('#'); hash != std::string::npos)
      line = trim(line.substr(0, hash));
    if (line.empty()) continue;
    if (ended)
      throw FsmError("KISS2: content after .e at line " +
                     std::to_string(lineNo));

    const auto tokens = splitWhitespace(line);
    auto requireArg = [&](std::size_t count) {
      if (tokens.size() != count)
        throw FsmError("KISS2: malformed directive at line " +
                       std::to_string(lineNo));
    };
    auto parseCount = [&](const std::string& token) {
      try {
        const long value = std::stol(token);
        if (value < 0 || value > (1 << 20))
          throw FsmError("KISS2: count out of range at line " +
                         std::to_string(lineNo));
        return static_cast<int>(value);
      } catch (const std::logic_error&) {  // invalid_argument/out_of_range
        throw FsmError("KISS2: bad number '" + token + "' at line " +
                       std::to_string(lineNo));
      }
    };
    if (tokens[0] == ".i") {
      requireArg(2);
      doc.inputBits = parseCount(tokens[1]);
    } else if (tokens[0] == ".o") {
      requireArg(2);
      doc.outputBits = parseCount(tokens[1]);
    } else if (tokens[0] == ".p") {
      requireArg(2);
      declaredRows = parseCount(tokens[1]);
    } else if (tokens[0] == ".s") {
      requireArg(2);
      declaredStates = parseCount(tokens[1]);
    } else if (tokens[0] == ".r") {
      requireArg(2);
      doc.resetState = tokens[1];
    } else if (tokens[0] == ".e") {
      ended = true;
    } else if (startsWith(tokens[0], ".")) {
      throw FsmError("KISS2: unknown directive '" + tokens[0] + "' at line " +
                     std::to_string(lineNo));
    } else {
      requireArg(4);
      if (!isPattern(tokens[0]) || !isPattern(tokens[3]))
        throw FsmError("KISS2: bad pattern at line " + std::to_string(lineNo));
      doc.rows.push_back(Kiss2Row{tokens[0], tokens[1], tokens[2], tokens[3]});
    }
  }

  if (doc.inputBits <= 0) throw FsmError("KISS2: missing or invalid .i");
  if (doc.outputBits <= 0) throw FsmError("KISS2: missing or invalid .o");
  if (doc.rows.empty()) throw FsmError("KISS2: no transition rows");
  for (const Kiss2Row& row : doc.rows) {
    if (static_cast<int>(row.inputPattern.size()) != doc.inputBits)
      throw FsmError("KISS2: input pattern width mismatch");
    if (static_cast<int>(row.outputPattern.size()) != doc.outputBits)
      throw FsmError("KISS2: output pattern width mismatch");
  }
  if (declaredRows >= 0 && declaredRows != static_cast<int>(doc.rows.size()))
    throw FsmError("KISS2: .p row count does not match rows present");
  if (doc.resetState.empty()) doc.resetState = doc.rows.front().fromState;
  if (declaredStates >= 0) {
    SymbolTable states;
    for (const Kiss2Row& row : doc.rows) {
      states.intern(row.fromState);
      states.intern(row.toState);
    }
    if (declaredStates != states.size())
      throw FsmError("KISS2: .s state count does not match states present");
  }
  return doc;
}

std::string writeKiss2(const Kiss2Document& document) {
  std::ostringstream os;
  os << ".i " << document.inputBits << "\n";
  os << ".o " << document.outputBits << "\n";
  SymbolTable states;
  for (const Kiss2Row& row : document.rows) {
    states.intern(row.fromState);
    states.intern(row.toState);
  }
  os << ".p " << document.rows.size() << "\n";
  os << ".s " << states.size() << "\n";
  if (!document.resetState.empty()) os << ".r " << document.resetState << "\n";
  for (const Kiss2Row& row : document.rows)
    os << row.inputPattern << " " << row.fromState << " " << row.toState << " "
       << row.outputPattern << "\n";
  os << ".e\n";
  return os.str();
}

Machine machineFromKiss2(const Kiss2Document& document, std::string name,
                         const Kiss2LiftOptions& options) {
  if (document.inputBits > 16)
    throw FsmError("KISS2: refusing to expand more than 16 input bits");
  MachineBuilder builder(std::move(name));

  // Declare the full binary input alphabet so completion sees every vector.
  const int vectors = 1 << document.inputBits;
  for (int v = 0; v < vectors; ++v) {
    std::string bits(static_cast<std::size_t>(document.inputBits), '0');
    for (int b = 0; b < document.inputBits; ++b)
      if (v & (1 << (document.inputBits - 1 - b)))
        bits[static_cast<std::size_t>(b)] = '1';
    builder.addInput(bits);
  }

  for (const Kiss2Row& row : document.rows) {
    std::string output = row.outputPattern;
    for (char& c : output)
      if (c == '-') c = options.outputDontCareFill;
    for (const std::string& input : expand(row.inputPattern))
      builder.addTransition(input, row.fromState, row.toState, output);
  }
  builder.setResetState(document.resetState);
  if (options.completeWithSelfLoops && builder.unspecifiedCellCount() > 0) {
    builder.completeWithSelfLoops(
        std::string(static_cast<std::size_t>(document.outputBits), '0'));
  }
  return builder.build();
}

Kiss2Document kiss2FromMachine(const Machine& machine) {
  Kiss2Document doc;
  const auto& inputNames = machine.inputs().names();
  doc.inputBits = static_cast<int>(inputNames.front().size());
  for (const std::string& n : inputNames) {
    if (static_cast<int>(n.size()) != doc.inputBits || !isPattern(n) ||
        n.find('-') != std::string::npos)
      throw FsmError("machine input '" + n +
                     "' is not a fixed-width binary vector");
  }
  const auto& outputNames = machine.outputs().names();
  doc.outputBits = static_cast<int>(outputNames.front().size());
  for (const std::string& n : outputNames) {
    if (static_cast<int>(n.size()) != doc.outputBits || !isPattern(n) ||
        n.find('-') != std::string::npos)
      throw FsmError("machine output '" + n +
                     "' is not a fixed-width binary vector");
  }
  doc.resetState = machine.states().name(machine.resetState());
  for (const Transition& t : machine.transitions())
    doc.rows.push_back(Kiss2Row{machine.inputs().name(t.input),
                                machine.states().name(t.from),
                                machine.states().name(t.to),
                                machine.outputs().name(t.output)});
  return doc;
}

}  // namespace rfsm
