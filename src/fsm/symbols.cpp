#include "fsm/symbols.hpp"

#include "util/check.hpp"

namespace rfsm {

SymbolTable::SymbolTable(const std::vector<std::string>& names) {
  for (const auto& n : names) {
    RFSM_CHECK(!containsName(n), "duplicate symbol '" + n + "'");
    intern(n);
  }
}

SymbolId SymbolTable::intern(std::string_view name) {
  auto it = index_.find(std::string(name));
  if (it != index_.end()) return it->second;
  const SymbolId id = static_cast<SymbolId>(names_.size());
  names_.emplace_back(name);
  index_.emplace(names_.back(), id);
  return id;
}

std::optional<SymbolId> SymbolTable::find(std::string_view name) const {
  auto it = index_.find(std::string(name));
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

SymbolId SymbolTable::at(std::string_view name) const {
  auto id = find(name);
  RFSM_CHECK(id.has_value(), "unknown symbol '" + std::string(name) + "'");
  return *id;
}

const std::string& SymbolTable::name(SymbolId id) const {
  RFSM_CHECK(contains(id), "symbol id out of range");
  return names_[static_cast<std::size_t>(id)];
}

MergedSymbols mergeSymbols(const SymbolTable& a, const SymbolTable& b) {
  MergedSymbols merged;
  merged.fromA.reserve(static_cast<std::size_t>(a.size()));
  for (const auto& n : a.names()) merged.fromA.push_back(merged.table.intern(n));
  merged.fromB.reserve(static_cast<std::size_t>(b.size()));
  for (const auto& n : b.names()) merged.fromB.push_back(merged.table.intern(n));
  return merged;
}

}  // namespace rfsm
