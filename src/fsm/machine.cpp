#include "fsm/machine.hpp"

#include "util/check.hpp"

namespace rfsm {

Machine::Machine(std::string name, SymbolTable inputs, SymbolTable outputs,
                 SymbolTable states, SymbolId resetState,
                 std::vector<SymbolId> next, std::vector<SymbolId> output)
    : name_(std::move(name)),
      inputs_(std::move(inputs)),
      outputs_(std::move(outputs)),
      states_(std::move(states)),
      resetState_(resetState),
      next_(std::move(next)),
      output_(std::move(output)) {
  RFSM_CHECK(inputs_.size() > 0, "machine needs at least one input state");
  RFSM_CHECK(outputs_.size() > 0, "machine needs at least one output state");
  RFSM_CHECK(states_.size() > 0, "machine needs at least one state");
  RFSM_CHECK(states_.contains(resetState_), "reset state out of range");
  const auto cells =
      static_cast<std::size_t>(states_.size()) *
      static_cast<std::size_t>(inputs_.size());
  RFSM_CHECK(next_.size() == cells, "next-state table has wrong size");
  RFSM_CHECK(output_.size() == cells, "output table has wrong size");
  for (const SymbolId s : next_)
    RFSM_CHECK(states_.contains(s), "next-state entry out of range");
  for (const SymbolId o : output_)
    RFSM_CHECK(outputs_.contains(o), "output entry out of range");
}

std::size_t Machine::cell(SymbolId input, SymbolId state) const {
  RFSM_CHECK(inputs_.contains(input), "input id out of range");
  RFSM_CHECK(states_.contains(state), "state id out of range");
  return static_cast<std::size_t>(state) *
             static_cast<std::size_t>(inputs_.size()) +
         static_cast<std::size_t>(input);
}

SymbolId Machine::next(SymbolId input, SymbolId state) const {
  return next_[cell(input, state)];
}

SymbolId Machine::output(SymbolId input, SymbolId state) const {
  return output_[cell(input, state)];
}

Transition Machine::transitionAt(SymbolId input, SymbolId state) const {
  const std::size_t c = cell(input, state);
  return Transition{input, state, next_[c], output_[c]};
}

std::vector<Transition> Machine::transitions() const {
  std::vector<Transition> all;
  all.reserve(next_.size());
  for (SymbolId s = 0; s < states_.size(); ++s)
    for (SymbolId i = 0; i < inputs_.size(); ++i)
      all.push_back(transitionAt(i, s));
  return all;
}

bool Machine::isStableTotalState(SymbolId input, SymbolId state) const {
  return next(input, state) == state;
}

bool Machine::isMoore() const {
  // outputOf[s] = the single output allowed on edges into s, or kNoSymbol if
  // none seen yet.
  std::vector<SymbolId> outputOf(static_cast<std::size_t>(states_.size()),
                                 kNoSymbol);
  for (const Transition& t : transitions()) {
    auto& slot = outputOf[static_cast<std::size_t>(t.to)];
    if (slot == kNoSymbol) {
      slot = t.output;
    } else if (slot != t.output) {
      return false;
    }
  }
  return true;
}

Digraph Machine::transitionGraph() const {
  Digraph graph(states_.size());
  for (SymbolId s = 0; s < states_.size(); ++s)
    for (SymbolId i = 0; i < inputs_.size(); ++i)
      graph.addEdge(s, next(i, s), static_cast<std::uint64_t>(i));
  return graph;
}

Machine Machine::withName(std::string newName) const {
  Machine copy = *this;
  copy.name_ = std::move(newName);
  return copy;
}

bool Machine::operator==(const Machine& other) const {
  return inputs_ == other.inputs_ && outputs_ == other.outputs_ &&
         states_ == other.states_ && resetState_ == other.resetState_ &&
         next_ == other.next_ && output_ == other.output_;
}

std::string describeTransition(const Machine& machine, const Transition& t) {
  return "(" + machine.inputs().name(t.input) + ", " +
         machine.states().name(t.from) + " -> " + machine.states().name(t.to) +
         ", " + machine.outputs().name(t.output) + ")";
}

}  // namespace rfsm
