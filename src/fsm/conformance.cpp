#include "fsm/conformance.hpp"

#include <algorithm>
#include <map>
#include <queue>
#include <set>

#include "fsm/builder.hpp"
#include "fsm/simulate.hpp"
#include "graph/shortest_path.hpp"

namespace rfsm {
namespace {

/// Shortest word distinguishing states a and b (BFS over state pairs), or
/// nullopt when they are equivalent.
std::optional<Word> distinguishingWord(const Machine& m, SymbolId a,
                                       SymbolId b) {
  struct Info {
    int parent = -1;
    SymbolId viaInput = kNoSymbol;
  };
  std::vector<std::pair<SymbolId, SymbolId>> pairs;
  std::vector<Info> info;
  std::set<std::pair<SymbolId, SymbolId>> seen;
  auto normalize = [](SymbolId x, SymbolId y) {
    return x <= y ? std::make_pair(x, y) : std::make_pair(y, x);
  };
  std::queue<int> frontier;
  pairs.push_back(normalize(a, b));
  info.emplace_back();
  seen.insert(pairs[0]);
  frontier.push(0);
  while (!frontier.empty()) {
    const int current = frontier.front();
    frontier.pop();
    const auto [sa, sb] = pairs[static_cast<std::size_t>(current)];
    for (SymbolId i = 0; i < m.inputCount(); ++i) {
      if (m.output(i, sa) != m.output(i, sb)) {
        Word word{i};
        for (int p = current; info[static_cast<std::size_t>(p)].parent != -1;
             p = info[static_cast<std::size_t>(p)].parent)
          word.push_back(info[static_cast<std::size_t>(p)].viaInput);
        std::reverse(word.begin(), word.end());
        return word;
      }
      const auto next = normalize(m.next(i, sa), m.next(i, sb));
      if (next.first == next.second) continue;
      if (seen.insert(next).second) {
        pairs.push_back(next);
        info.push_back(Info{current, i});
        frontier.push(static_cast<int>(pairs.size()) - 1);
      }
    }
  }
  return std::nullopt;
}

/// Removes words that are prefixes of other words in the set (a prefix's
/// verdict is implied by the longer word's prefix outputs).
std::vector<Word> dropPrefixes(std::set<Word> words) {
  std::vector<Word> out;
  for (const Word& w : words) {
    bool isPrefix = false;
    for (const Word& other : words) {
      if (other.size() > w.size() &&
          std::equal(w.begin(), w.end(), other.begin())) {
        isPrefix = true;
        break;
      }
    }
    if (!isPrefix) out.push_back(w);
  }
  return out;
}

}  // namespace

std::vector<Word> characterizingSet(const Machine& machine) {
  std::set<Word> words;
  for (SymbolId a = 0; a < machine.stateCount(); ++a) {
    for (SymbolId b = a + 1; b < machine.stateCount(); ++b) {
      const auto word = distinguishingWord(machine, a, b);
      if (!word.has_value())
        throw FsmError("machine '" + machine.name() +
                       "' is not minimal: states " + machine.states().name(a) +
                       " and " + machine.states().name(b) +
                       " are indistinguishable");
      words.insert(*word);
    }
  }
  if (words.empty()) words.insert(Word{});  // single-state machine
  return dropPrefixes(std::move(words));
}

std::vector<Word> transitionCover(const Machine& machine) {
  // Access words via the BFS tree from reset.
  const BfsResult bfs = bfsFrom(machine.transitionGraph(),
                                machine.resetState());
  std::vector<Word> access(static_cast<std::size_t>(machine.stateCount()));
  for (SymbolId s = 0; s < machine.stateCount(); ++s) {
    if (bfs.distance[static_cast<std::size_t>(s)] == kUnreachable) continue;
    Word word;
    for (SymbolId v = s; v != machine.resetState();
         v = bfs.predecessor[static_cast<std::size_t>(v)])
      word.push_back(static_cast<SymbolId>(
          bfs.predecessorEdgeTag[static_cast<std::size_t>(v)]));
    std::reverse(word.begin(), word.end());
    access[static_cast<std::size_t>(s)] = std::move(word);
  }

  std::set<Word> cover;
  cover.insert(Word{});
  for (SymbolId s = 0; s < machine.stateCount(); ++s) {
    if (bfs.distance[static_cast<std::size_t>(s)] == kUnreachable) continue;
    for (SymbolId i = 0; i < machine.inputCount(); ++i) {
      Word word = access[static_cast<std::size_t>(s)];
      word.push_back(i);
      cover.insert(std::move(word));
    }
  }
  return std::vector<Word>(cover.begin(), cover.end());
}

int ConformanceSuite::totalInputs() const {
  int total = 0;
  for (const Word& w : tests) total += static_cast<int>(w.size());
  return total;
}

ConformanceSuite wMethodSuite(const Machine& machine) {
  const std::vector<Word> w = characterizingSet(machine);  // throws if not
                                                           // minimal
  const std::vector<Word> p = transitionCover(machine);
  std::set<Word> tests;
  for (const Word& prefix : p) {
    for (const Word& suffix : w) {
      Word test = prefix;
      test.insert(test.end(), suffix.begin(), suffix.end());
      tests.insert(std::move(test));
    }
    if (w.empty()) tests.insert(prefix);
  }
  ConformanceSuite suite;
  suite.tests = dropPrefixes(std::move(tests));
  return suite;
}

ConformanceResult runConformanceSuite(const Machine& specification,
                                      const Machine& implementation,
                                      const ConformanceSuite& suite) {
  // Align input alphabets by name.
  std::vector<SymbolId> inputMap(
      static_cast<std::size_t>(specification.inputCount()));
  for (SymbolId i = 0; i < specification.inputCount(); ++i) {
    const auto mapped =
        implementation.inputs().find(specification.inputs().name(i));
    if (!mapped.has_value())
      throw FsmError("implementation is missing input '" +
                     specification.inputs().name(i) + "'");
    inputMap[static_cast<std::size_t>(i)] = *mapped;
  }

  for (const Word& test : suite.tests) {
    Simulator golden(specification);
    Simulator dut(implementation);
    for (std::size_t k = 0; k < test.size(); ++k) {
      const SymbolId i = test[k];
      const SymbolId want = golden.step(i);
      const SymbolId got =
          dut.step(inputMap[static_cast<std::size_t>(i)]);
      if (specification.outputs().name(want) !=
          implementation.outputs().name(got)) {
        ConformanceResult result;
        result.pass = false;
        result.failingTest = test;
        result.mismatchPosition = static_cast<int>(k);
        return result;
      }
    }
  }
  return ConformanceResult{};
}

}  // namespace rfsm
