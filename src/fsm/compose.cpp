#include "fsm/compose.hpp"

#include <map>
#include <queue>

#include "fsm/builder.hpp"

namespace rfsm {
namespace {

/// Maps each input id of `a` to the same-named id of `b`.
std::vector<SymbolId> alignByName(const SymbolTable& from,
                                  const SymbolTable& to,
                                  const std::string& what) {
  std::vector<SymbolId> map(static_cast<std::size_t>(from.size()));
  for (SymbolId k = 0; k < from.size(); ++k) {
    const auto mapped = to.find(from.name(k));
    if (!mapped.has_value())
      throw FsmError("composition: " + what + " '" + from.name(k) +
                     "' has no counterpart");
    map[static_cast<std::size_t>(k)] = *mapped;
  }
  return map;
}

}  // namespace

Machine parallelCompose(const Machine& a, const Machine& b) {
  if (a.inputCount() != b.inputCount())
    throw FsmError("composition: input alphabets differ in size");
  const std::vector<SymbolId> inputMap =
      alignByName(a.inputs(), b.inputs(), "input");

  MachineBuilder builder(a.name() + "_par_" + b.name());
  for (const auto& name : a.inputs().names()) builder.addInput(name);

  using Pair = std::pair<SymbolId, SymbolId>;
  auto nameOf = [&](const Pair& p) {
    return a.states().name(p.first) + "&" + b.states().name(p.second);
  };
  const Pair start{a.resetState(), b.resetState()};
  builder.setResetState(nameOf(start));
  std::map<Pair, bool> seen{{start, true}};
  std::queue<Pair> frontier;
  frontier.push(start);
  while (!frontier.empty()) {
    const Pair here = frontier.front();
    frontier.pop();
    for (SymbolId i = 0; i < a.inputCount(); ++i) {
      const SymbolId ib = inputMap[static_cast<std::size_t>(i)];
      const Pair next{a.next(i, here.first), b.next(ib, here.second)};
      const std::string output =
          a.outputs().name(a.output(i, here.first)) + "|" +
          b.outputs().name(b.output(ib, here.second));
      builder.addTransition(a.inputs().name(i), nameOf(here), nameOf(next),
                            output);
      if (!seen[next]) {
        seen[next] = true;
        frontier.push(next);
      }
    }
  }
  return builder.build();
}

Machine cascadeCompose(const Machine& a, const Machine& b) {
  const std::vector<SymbolId> pipeMap =
      alignByName(a.outputs(), b.inputs(), "A-output");

  MachineBuilder builder(a.name() + "_to_" + b.name());
  for (const auto& name : a.inputs().names()) builder.addInput(name);

  using Pair = std::pair<SymbolId, SymbolId>;
  auto nameOf = [&](const Pair& p) {
    return a.states().name(p.first) + ">" + b.states().name(p.second);
  };
  const Pair start{a.resetState(), b.resetState()};
  builder.setResetState(nameOf(start));
  std::map<Pair, bool> seen{{start, true}};
  std::queue<Pair> frontier;
  frontier.push(start);
  while (!frontier.empty()) {
    const Pair here = frontier.front();
    frontier.pop();
    for (SymbolId i = 0; i < a.inputCount(); ++i) {
      const SymbolId viaB =
          pipeMap[static_cast<std::size_t>(a.output(i, here.first))];
      const Pair next{a.next(i, here.first), b.next(viaB, here.second)};
      builder.addTransition(a.inputs().name(i), nameOf(here), nameOf(next),
                            b.outputs().name(b.output(viaB, here.second)));
      if (!seen[next]) {
        seen[next] = true;
        frontier.push(next);
      }
    }
  }
  return builder.build();
}

}  // namespace rfsm
