// Textual serializations of Machines: Graphviz DOT and a plain JSON form.
//
// DOT renders the state transition graph of Def. 2.1 (vertices = internal
// states, edges labelled input/output).  JSON round-trips the full 6-tuple.
#pragma once

#include <string>

#include "fsm/machine.hpp"

namespace rfsm {

/// Graphviz DOT of the state transition graph.  Parallel edges between the
/// same state pair are merged into one edge with comma-separated labels.
std::string toDot(const Machine& machine);

/// JSON encoding of the 6-tuple (stable field order, ASCII only).
std::string toJson(const Machine& machine);

/// Parses the JSON produced by toJson.  Throws FsmError on malformed input.
Machine machineFromJson(const std::string& json);

}  // namespace rfsm
