// Incompletely specified Mealy machines (the general class of Def. 2.1
// before the paper restricts to completely specified ones).
//
// A PartialMachine may leave the next state and/or the output of a cell
// unspecified ('don't care').  Real controller specifications arrive in
// this form (KISS2 benchmarks routinely leave cells open); this module
// stores them faithfully, checks containment of behaviours, and lifts them
// into the completely specified class the migration machinery works on.
// State reduction for this class lives in fsm/reduce.hpp.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "fsm/machine.hpp"
#include "util/rng.hpp"

namespace rfsm {

/// Deterministic, possibly incompletely specified Mealy machine.
class PartialMachine {
 public:
  /// Starts with the given alphabets; all cells unspecified.
  PartialMachine(std::string name, SymbolTable inputs, SymbolTable outputs,
                 SymbolTable states, SymbolId resetState);

  /// Builds from a complete Machine (every cell specified).
  explicit PartialMachine(const Machine& machine);

  const std::string& name() const { return name_; }
  const SymbolTable& inputs() const { return inputs_; }
  const SymbolTable& outputs() const { return outputs_; }
  const SymbolTable& states() const { return states_; }
  SymbolId resetState() const { return resetState_; }

  /// Specifies a cell; next/output may each be kNoSymbol (don't care).
  /// Re-specifying with a conflicting value throws FsmError (determinism).
  void specify(SymbolId input, SymbolId from, SymbolId to, SymbolId output);

  /// Next state of cell (kNoSymbol = unspecified).
  SymbolId next(SymbolId input, SymbolId state) const;
  /// Output of cell (kNoSymbol = don't care).
  SymbolId output(SymbolId input, SymbolId state) const;

  bool isNextSpecified(SymbolId input, SymbolId state) const {
    return next(input, state) != kNoSymbol;
  }
  bool isOutputSpecified(SymbolId input, SymbolId state) const {
    return output(input, state) != kNoSymbol;
  }

  /// Number of cells with an unspecified next state or output.
  int unspecifiedCount() const;

  /// True when every cell is fully specified.
  bool isComplete() const { return unspecifiedCount() == 0; }

  /// Lifts to a completely specified Machine: unspecified next states
  /// become self-loops and don't-care outputs become `defaultOutput`.
  Machine completeWithSelfLoops(SymbolId defaultOutput) const;

  /// Lifts by drawing every free choice uniformly at random (useful for
  /// property tests: every completion must cover the specification).
  Machine completeRandomly(Rng& rng) const;

 private:
  std::size_t cell(SymbolId input, SymbolId state) const;

  std::string name_;
  SymbolTable inputs_, outputs_, states_;
  SymbolId resetState_;
  std::vector<SymbolId> next_, out_;
};

/// True when `implementation` (complete) realizes `specification`: started
/// from reset, for every input word, wherever the specification's output is
/// defined along the specified path, the implementation emits it.  This is
/// the classic ISFSM containment relation, decided by a product BFS.
bool implementsSpecification(const Machine& implementation,
                             const PartialMachine& specification);

}  // namespace rfsm
