#include "fsm/minimize.hpp"

#include <algorithm>
#include <map>
#include <numeric>

namespace rfsm {

MinimizationResult minimize(const Machine& machine) {
  const int n = machine.stateCount();
  const int k = machine.inputCount();

  // Initial partition: states with identical output rows share a block.
  std::vector<int> blockOf(static_cast<std::size_t>(n));
  {
    std::map<std::vector<SymbolId>, int> rowToBlock;
    for (SymbolId s = 0; s < n; ++s) {
      std::vector<SymbolId> row;
      row.reserve(static_cast<std::size_t>(k));
      for (SymbolId i = 0; i < k; ++i) row.push_back(machine.output(i, s));
      auto [it, inserted] =
          rowToBlock.emplace(std::move(row), static_cast<int>(rowToBlock.size()));
      blockOf[static_cast<std::size_t>(s)] = it->second;
    }
  }

  // Refine: two states stay together iff their successors lie in the same
  // blocks for every input.
  for (;;) {
    std::map<std::vector<int>, int> signatureToBlock;
    std::vector<int> nextBlockOf(static_cast<std::size_t>(n));
    for (SymbolId s = 0; s < n; ++s) {
      std::vector<int> signature;
      signature.reserve(static_cast<std::size_t>(k) + 1);
      signature.push_back(blockOf[static_cast<std::size_t>(s)]);
      for (SymbolId i = 0; i < k; ++i)
        signature.push_back(
            blockOf[static_cast<std::size_t>(machine.next(i, s))]);
      auto [it, inserted] = signatureToBlock.emplace(
          std::move(signature), static_cast<int>(signatureToBlock.size()));
      nextBlockOf[static_cast<std::size_t>(s)] = it->second;
    }
    if (nextBlockOf == blockOf) break;
    blockOf = std::move(nextBlockOf);
  }

  // Renumber blocks by their lowest-numbered member so output is stable, and
  // pick that member as representative.
  const int blockCountRaw =
      *std::max_element(blockOf.begin(), blockOf.end()) + 1;
  std::vector<SymbolId> representative(static_cast<std::size_t>(blockCountRaw),
                                       kNoSymbol);
  for (SymbolId s = 0; s < n; ++s) {
    auto& rep = representative[static_cast<std::size_t>(blockOf[
        static_cast<std::size_t>(s)])];
    if (rep == kNoSymbol) rep = s;
  }
  std::vector<int> order(static_cast<std::size_t>(blockCountRaw));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return representative[static_cast<std::size_t>(a)] <
           representative[static_cast<std::size_t>(b)];
  });
  std::vector<int> renumber(static_cast<std::size_t>(blockCountRaw));
  for (int pos = 0; pos < blockCountRaw; ++pos)
    renumber[static_cast<std::size_t>(order[static_cast<std::size_t>(pos)])] =
        pos;
  for (auto& b : blockOf) b = renumber[static_cast<std::size_t>(b)];

  SymbolTable newStates;
  for (int pos = 0; pos < blockCountRaw; ++pos)
    newStates.intern(machine.states().name(
        representative[static_cast<std::size_t>(order[
            static_cast<std::size_t>(pos)])]));

  const auto cells = static_cast<std::size_t>(blockCountRaw) *
                     static_cast<std::size_t>(k);
  std::vector<SymbolId> next(cells, kNoSymbol);
  std::vector<SymbolId> output(cells, kNoSymbol);
  for (SymbolId s = 0; s < n; ++s) {
    const auto block = static_cast<std::size_t>(blockOf[
        static_cast<std::size_t>(s)]);
    for (SymbolId i = 0; i < k; ++i) {
      const std::size_t c = block * static_cast<std::size_t>(k) +
                            static_cast<std::size_t>(i);
      next[c] = blockOf[static_cast<std::size_t>(machine.next(i, s))];
      output[c] = machine.output(i, s);
    }
  }

  Machine minimized(machine.name() + "_min", machine.inputs(),
                    machine.outputs(), newStates,
                    blockOf[static_cast<std::size_t>(machine.resetState())],
                    std::move(next), std::move(output));
  std::vector<SymbolId> blocks(blockOf.begin(), blockOf.end());
  return MinimizationResult{std::move(minimized), std::move(blocks)};
}

}  // namespace rfsm
