// Structural analyses of Machines.
//
// The migration algorithms need reachability facts (can every delta source
// be reached?) and the paper's notions of stable total states and
// resetability.
#pragma once

#include <vector>

#include "fsm/machine.hpp"

namespace rfsm {

/// States reachable from reset, in BFS order.
std::vector<SymbolId> reachableStates(const Machine& machine);

/// States unreachable from reset.
std::vector<SymbolId> unreachableStates(const Machine& machine);

/// True when every state is reachable from the reset state.
bool isConnectedFromReset(const Machine& machine);

/// All stable total states (i, s) with F(i, s) = s.
std::vector<TotalState> stableTotalStates(const Machine& machine);

/// Distance (in transitions) from every state to `target`; kUnreachable when
/// impossible.  Used by planners to find the cheapest way to a delta source.
std::vector<int> distancesTo(const Machine& machine, SymbolId target);

/// Number of distinct strongly connected components of the transition graph.
int sccCount(const Machine& machine);

}  // namespace rfsm
