// Machine composition: building larger controllers from smaller ones.
//
// Two classic synchronous compositions:
//  * parallelCompose — both machines consume the same input each cycle;
//    the composite state is the pair, the composite output the pair of
//    outputs (named "oa|ob").  This is the product construction underlying
//    the equivalence checkers, exposed as a first-class build step.
//  * cascadeCompose — machine A's output symbol is fed to machine B in the
//    same cycle (Mealy cascade); requires every A output name to be a B
//    input name.  The composite reads A's inputs and emits B's outputs.
// Both results are completely specified machines over reachable pair
// states only, so they plug into every analysis and migration facility.
#pragma once

#include "fsm/machine.hpp"

namespace rfsm {

/// Synchronous parallel product of two machines with identical input
/// alphabets (matched by name; FsmError otherwise).  States are named
/// "a&b"; outputs "oa|ob".  Only pairs reachable from (reset, reset) are
/// constructed.
Machine parallelCompose(const Machine& a, const Machine& b);

/// Mealy cascade: B consumes A's output in the same cycle.  Every output
/// name of A must be an input name of B (FsmError otherwise).  States are
/// named "a>b"; the composite maps A-inputs to B-outputs.
Machine cascadeCompose(const Machine& a, const Machine& b);

}  // namespace rfsm
