// Functional simulation of Machines on input words.
//
// This is the golden reference the RTL co-simulation (src/rtl) and the
// reconfiguration validator (src/core) compare against.
#pragma once

#include <string>
#include <vector>

#include "fsm/machine.hpp"

namespace rfsm {

/// Everything observed while running a machine on one input word.
struct SimulationTrace {
  /// states[k] = state *before* consuming inputs[k]; has one extra final
  /// entry (the state after the last input).
  std::vector<SymbolId> states;
  std::vector<SymbolId> inputs;
  std::vector<SymbolId> outputs;
};

/// Stateful simulator; one step per clock.
class Simulator {
 public:
  /// Starts in the machine's reset state.
  explicit Simulator(const Machine& machine);

  const Machine& machine() const { return machine_; }
  SymbolId state() const { return state_; }

  /// Consumes one input symbol; returns the emitted output.
  SymbolId step(SymbolId input);

  /// Forces the reset state (the RST-MUX path of Fig. 5).
  void reset();

  /// Runs a whole word, collecting the trace.
  SimulationTrace run(const std::vector<SymbolId>& word);

 private:
  const Machine& machine_;
  SymbolId state_;
};

/// Convenience: run `machine` from reset on `word` (symbol names) and return
/// the output names.
std::vector<std::string> runOnNames(const Machine& machine,
                                    const std::vector<std::string>& word);

}  // namespace rfsm
