// State reduction of incompletely specified machines.
//
// For completely specified machines, state minimization partitions states
// into equivalence classes (fsm/minimize.hpp).  For incompletely specified
// ones the right relation is *compatibility*: two states are compatible
// when no input word drives them to conflicting specified outputs.
// Compatibility is not transitive, so reduction means covering the states
// with closed compatible classes — NP-hard in general (Pfleeger 1973).
//
// reducePartialMachine implements the classic greedy merge-with-closure
// heuristic: repeatedly try to merge a compatible state pair, propagating
// the merges its closure forces, and keep the result when no conflict
// arises.  On completely specified machines this degenerates to exact
// minimization (compatibility becomes equivalence), which a property test
// checks against fsm/minimize.hpp.
#pragma once

#include <vector>

#include "fsm/partial_machine.hpp"

namespace rfsm {

/// Pairwise compatibility: matrix[s][t] is true when states s and t can be
/// realized by one state of some implementation (fixpoint of the classic
/// refinement: an output conflict now, or a specified-successor pair that
/// is itself incompatible, makes a pair incompatible).
std::vector<std::vector<bool>> compatibilityMatrix(
    const PartialMachine& machine);

/// Result of a reduction.
struct ReductionResult {
  PartialMachine machine;
  /// classOf[s] = state id in `machine` realizing original state s.
  std::vector<SymbolId> classOf;
};

/// Greedy closure-based state reduction.  The reduced machine has at most
/// as many states as the input, and *every* completion of it implements the
/// original specification (property-tested via implementsSpecification).
ReductionResult reducePartialMachine(const PartialMachine& machine);

}  // namespace rfsm
