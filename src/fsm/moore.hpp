// Moore-machine views and conversions.
//
// The paper treats Moore machines as the special case of Mealy machines
// whose in-edges per state carry a single output label (footnote 2 /
// Def. 2.1).  This module gives that view teeth: extract the per-state
// output labelling of a Moore-form machine, and convert any Mealy machine
// into an equivalent Moore-form machine by splitting states on the output
// of their in-edges (the classic construction; at most |S| * |O| + 1
// states, behaviourally equivalent cycle for cycle).
#pragma once

#include <optional>
#include <vector>

#include "fsm/machine.hpp"

namespace rfsm {

/// For a Moore-form machine: output label of every state (the label of its
/// in-edges).  States with no in-edges get kNoSymbol.  Returns nullopt when
/// the machine is not Moore-form.
std::optional<std::vector<SymbolId>> mooreStateOutputs(const Machine& machine);

/// Converts a Mealy machine to an equivalent Moore-form machine by state
/// splitting.  The result satisfies isMoore() and checkEquivalence() with
/// the input (outputs coincide on every cycle; there is no one-cycle delay
/// in this edge-labelled formulation).  State names are "orig@out" for
/// split states, plus the reset state "orig@-" when no in-edge determines
/// its label.
Machine mooreFromMealy(const Machine& machine);

}  // namespace rfsm
