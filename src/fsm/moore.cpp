#include "fsm/moore.hpp"

#include <map>
#include <queue>

#include "fsm/builder.hpp"

namespace rfsm {

std::optional<std::vector<SymbolId>> mooreStateOutputs(
    const Machine& machine) {
  std::vector<SymbolId> outputOf(
      static_cast<std::size_t>(machine.stateCount()), kNoSymbol);
  for (const Transition& t : machine.transitions()) {
    auto& slot = outputOf[static_cast<std::size_t>(t.to)];
    if (slot == kNoSymbol) {
      slot = t.output;
    } else if (slot != t.output) {
      return std::nullopt;
    }
  }
  return outputOf;
}

Machine mooreFromMealy(const Machine& machine) {
  // Split states on the output of the edge entering them.  Reachable
  // construction: start from (reset, no-output).
  using Split = std::pair<SymbolId, SymbolId>;  // (state, entering output)
  std::map<Split, std::string> names;
  auto nameOf = [&](const Split& split) {
    auto it = names.find(split);
    if (it != names.end()) return it->second;
    const std::string name =
        machine.states().name(split.first) + "@" +
        (split.second == kNoSymbol ? "-"
                                   : machine.outputs().name(split.second));
    names.emplace(split, name);
    return name;
  };

  MachineBuilder builder(machine.name() + "_moore");
  for (const auto& n : machine.inputs().names()) builder.addInput(n);
  for (const auto& n : machine.outputs().names()) builder.addOutput(n);

  const Split start{machine.resetState(), kNoSymbol};
  builder.setResetState(nameOf(start));
  std::queue<Split> frontier;
  std::map<Split, bool> seen;
  frontier.push(start);
  seen[start] = true;
  while (!frontier.empty()) {
    const Split here = frontier.front();
    frontier.pop();
    for (SymbolId i = 0; i < machine.inputCount(); ++i) {
      const SymbolId to = machine.next(i, here.first);
      const SymbolId out = machine.output(i, here.first);
      const Split target{to, out};
      builder.addTransition(machine.inputs().name(i), nameOf(here),
                            nameOf(target), machine.outputs().name(out));
      if (!seen[target]) {
        seen[target] = true;
        frontier.push(target);
      }
    }
  }
  return builder.build();
}

}  // namespace rfsm
