#include "fsm/reduce.hpp"

#include <numeric>
#include <utility>

#include "fsm/builder.hpp"

namespace rfsm {

std::vector<std::vector<bool>> compatibilityMatrix(
    const PartialMachine& machine) {
  const int n = machine.states().size();
  const int k = machine.inputs().size();
  std::vector<std::vector<bool>> compatible(
      static_cast<std::size_t>(n),
      std::vector<bool>(static_cast<std::size_t>(n), true));

  // Seed: direct output conflicts.
  for (SymbolId s = 0; s < n; ++s) {
    for (SymbolId t = s + 1; t < n; ++t) {
      for (SymbolId i = 0; i < k; ++i) {
        const SymbolId a = machine.output(i, s);
        const SymbolId b = machine.output(i, t);
        if (a != kNoSymbol && b != kNoSymbol && a != b) {
          compatible[static_cast<std::size_t>(s)][static_cast<std::size_t>(t)] =
              false;
          compatible[static_cast<std::size_t>(t)][static_cast<std::size_t>(s)] =
              false;
          break;
        }
      }
    }
  }

  // Refine: a pair whose specified successors are incompatible is
  // incompatible.
  bool changed = true;
  while (changed) {
    changed = false;
    for (SymbolId s = 0; s < n; ++s) {
      for (SymbolId t = s + 1; t < n; ++t) {
        if (!compatible[static_cast<std::size_t>(s)][
                static_cast<std::size_t>(t)])
          continue;
        for (SymbolId i = 0; i < k; ++i) {
          const SymbolId ns = machine.next(i, s);
          const SymbolId nt = machine.next(i, t);
          if (ns == kNoSymbol || nt == kNoSymbol) continue;
          if (!compatible[static_cast<std::size_t>(ns)][
                  static_cast<std::size_t>(nt)]) {
            compatible[static_cast<std::size_t>(s)][
                static_cast<std::size_t>(t)] = false;
            compatible[static_cast<std::size_t>(t)][
                static_cast<std::size_t>(s)] = false;
            changed = true;
            break;
          }
        }
      }
    }
  }
  return compatible;
}

namespace {

/// Mutable merge state: union-find plus per-class specified cells.
struct MergeState {
  std::vector<int> parent;
  // Per root, per input: the class's specified output / next-state
  // representative (kNoSymbol = unspecified so far).
  std::vector<std::vector<SymbolId>> out;
  std::vector<std::vector<SymbolId>> next;

  int find(int v) {
    while (parent[static_cast<std::size_t>(v)] != v)
      v = parent[static_cast<std::size_t>(v)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(v)])];
    return v;
  }

  /// Merges the classes of a and b, propagating forced successor merges.
  /// Returns false on an output conflict (state unchanged semantics are the
  /// caller's job: call on a copy).
  bool merge(int a, int b) {
    std::vector<std::pair<int, int>> worklist{{a, b}};
    while (!worklist.empty()) {
      auto [x, y] = worklist.back();
      worklist.pop_back();
      int rx = find(x);
      int ry = find(y);
      if (rx == ry) continue;
      const auto k = out[static_cast<std::size_t>(rx)].size();
      // Check output compatibility of the two classes.
      for (std::size_t i = 0; i < k; ++i) {
        const SymbolId ox = out[static_cast<std::size_t>(rx)][i];
        const SymbolId oy = out[static_cast<std::size_t>(ry)][i];
        if (ox != kNoSymbol && oy != kNoSymbol && ox != oy) return false;
      }
      // Union (rx absorbs ry).
      parent[static_cast<std::size_t>(ry)] = rx;
      for (std::size_t i = 0; i < k; ++i) {
        auto& ox = out[static_cast<std::size_t>(rx)][i];
        const SymbolId oy = out[static_cast<std::size_t>(ry)][i];
        if (ox == kNoSymbol) ox = oy;
        auto& nx = next[static_cast<std::size_t>(rx)][i];
        const SymbolId ny = next[static_cast<std::size_t>(ry)][i];
        if (nx == kNoSymbol) {
          nx = ny;
        } else if (ny != kNoSymbol && find(nx) != find(ny)) {
          // Closure: the merged class forces its successors together.
          worklist.emplace_back(nx, ny);
        }
      }
    }
    return true;
  }
};

}  // namespace

ReductionResult reducePartialMachine(const PartialMachine& machine) {
  const int n = machine.states().size();
  const int k = machine.inputs().size();
  const auto compatible = compatibilityMatrix(machine);

  MergeState state;
  state.parent.resize(static_cast<std::size_t>(n));
  std::iota(state.parent.begin(), state.parent.end(), 0);
  state.out.assign(static_cast<std::size_t>(n),
                   std::vector<SymbolId>(static_cast<std::size_t>(k),
                                         kNoSymbol));
  state.next = state.out;
  for (SymbolId s = 0; s < n; ++s)
    for (SymbolId i = 0; i < k; ++i) {
      state.out[static_cast<std::size_t>(s)][static_cast<std::size_t>(i)] =
          machine.output(i, s);
      state.next[static_cast<std::size_t>(s)][static_cast<std::size_t>(i)] =
          machine.next(i, s);
    }

  // Greedy: try every pair once, keeping successful closure merges.
  for (int s = 0; s < n; ++s) {
    for (int t = s + 1; t < n; ++t) {
      if (!compatible[static_cast<std::size_t>(s)][static_cast<std::size_t>(t)])
        continue;
      if (state.find(s) == state.find(t)) continue;
      MergeState attempt = state;  // copy; rollback = discard
      if (attempt.merge(s, t)) state = std::move(attempt);
    }
  }

  // Renumber classes by lowest member and build the reduced machine.
  std::vector<SymbolId> classOf(static_cast<std::size_t>(n), kNoSymbol);
  SymbolTable reducedStates;
  std::vector<int> rootOfClass;
  for (int s = 0; s < n; ++s) {
    const int root = state.find(s);
    // The lowest-numbered member reaches its root first and names the class.
    bool known = false;
    for (int c = 0; c < static_cast<int>(rootOfClass.size()); ++c) {
      if (rootOfClass[static_cast<std::size_t>(c)] == root) {
        classOf[static_cast<std::size_t>(s)] = c;
        known = true;
        break;
      }
    }
    if (!known) {
      classOf[static_cast<std::size_t>(s)] =
          reducedStates.intern(machine.states().name(s));
      rootOfClass.push_back(root);
    }
  }

  PartialMachine reduced(machine.name() + "_reduced", machine.inputs(),
                         machine.outputs(), std::move(reducedStates),
                         classOf[static_cast<std::size_t>(
                             machine.resetState())]);
  for (int c = 0; c < static_cast<int>(rootOfClass.size()); ++c) {
    const int root = rootOfClass[static_cast<std::size_t>(c)];
    for (SymbolId i = 0; i < k; ++i) {
      const SymbolId classOut =
          state.out[static_cast<std::size_t>(root)][static_cast<std::size_t>(i)];
      const SymbolId rep =
          state.next[static_cast<std::size_t>(root)][static_cast<std::size_t>(i)];
      const SymbolId classNext =
          rep == kNoSymbol
              ? kNoSymbol
              : classOf[static_cast<std::size_t>(state.find(rep))];
      if (classOut != kNoSymbol || classNext != kNoSymbol)
        reduced.specify(i, c, classNext, classOut);
    }
  }
  return ReductionResult{std::move(reduced), std::move(classOf)};
}

}  // namespace rfsm
