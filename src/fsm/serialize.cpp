#include "fsm/serialize.hpp"

#include <cctype>
#include <map>
#include <memory>
#include <sstream>
#include <variant>

#include "fsm/builder.hpp"

namespace rfsm {
namespace {

std::string escapeJson(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// A minimal JSON reader covering the subset emitted by toJson: objects,
// arrays, strings.  Kept private to this translation unit.
// ---------------------------------------------------------------------------

struct JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue>;

struct JsonValue {
  std::variant<std::string, JsonArray, JsonObject> data;

  const std::string& asString() const {
    if (!std::holds_alternative<std::string>(data))
      throw FsmError("JSON: expected a string value");
    return std::get<std::string>(data);
  }
  const JsonArray& asArray() const {
    if (!std::holds_alternative<JsonArray>(data))
      throw FsmError("JSON: expected an array value");
    return std::get<JsonArray>(data);
  }
  const JsonObject& asObject() const {
    if (!std::holds_alternative<JsonObject>(data))
      throw FsmError("JSON: expected an object value");
    return std::get<JsonObject>(data);
  }
};

class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue value = parseValue();
    skipSpace();
    if (pos_ != text_.size()) fail("trailing characters");
    return value;
  }

 private:
  /// All reader errors carry the byte offset of the failure, so a corrupt
  /// file report can point at the damage.
  [[noreturn]] void fail(const std::string& what) const {
    throw FsmError("JSON: " + what + " at offset " + std::to_string(pos_));
  }

  void skipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  char peek() {
    skipSpace();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  JsonValue parseValue() {
    switch (peek()) {
      case '"': return JsonValue{parseString()};
      case '[': return JsonValue{parseArray()};
      case '{': return JsonValue{parseObject()};
      default: fail("unsupported value");
    }
  }

  std::string parseString() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("bad escape");
        char e = text_[pos_++];
        switch (e) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          default: out += e;
        }
      } else {
        out += c;
      }
    }
    if (pos_ >= text_.size()) fail("unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  JsonArray parseArray() {
    expect('[');
    JsonArray items;
    if (peek() == ']') {
      ++pos_;
      return items;
    }
    for (;;) {
      items.push_back(parseValue());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return items;
    }
  }

  JsonObject parseObject() {
    expect('{');
    JsonObject object;
    if (peek() == '}') {
      ++pos_;
      return object;
    }
    for (;;) {
      skipSpace();
      std::string key = parseString();
      expect(':');
      object.emplace(std::move(key), parseValue());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return object;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

const JsonValue& fieldOf(const JsonObject& object, const std::string& key) {
  auto it = object.find(key);
  if (it == object.end()) throw FsmError("JSON: missing field '" + key + "'");
  return it->second;
}

}  // namespace

std::string toDot(const Machine& machine) {
  // Collect labels per (from, to) pair so parallel edges merge.
  std::map<std::pair<SymbolId, SymbolId>, std::vector<std::string>> labels;
  for (const Transition& t : machine.transitions())
    labels[{t.from, t.to}].push_back(machine.inputs().name(t.input) + "/" +
                                     machine.outputs().name(t.output));

  std::ostringstream os;
  os << "digraph \"" << machine.name() << "\" {\n";
  os << "  rankdir=LR;\n";
  os << "  node [shape=circle];\n";
  os << "  __reset [shape=point];\n";
  os << "  __reset -> \"" << machine.states().name(machine.resetState())
     << "\";\n";
  for (const auto& [pair, names] : labels) {
    os << "  \"" << machine.states().name(pair.first) << "\" -> \""
       << machine.states().name(pair.second) << "\" [label=\"";
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (i > 0) os << ", ";
      os << names[i];
    }
    os << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

std::string toJson(const Machine& machine) {
  std::ostringstream os;
  auto emitNames = [&](const std::vector<std::string>& names) {
    os << "[";
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (i > 0) os << ", ";
      os << '"' << escapeJson(names[i]) << '"';
    }
    os << "]";
  };
  os << "{\n  \"name\": \"" << escapeJson(machine.name()) << "\",\n";
  os << "  \"inputs\": ";
  emitNames(machine.inputs().names());
  os << ",\n  \"outputs\": ";
  emitNames(machine.outputs().names());
  os << ",\n  \"states\": ";
  emitNames(machine.states().names());
  os << ",\n  \"reset\": \""
     << escapeJson(machine.states().name(machine.resetState())) << "\",\n";
  os << "  \"transitions\": [\n";
  const auto all = machine.transitions();
  for (std::size_t i = 0; i < all.size(); ++i) {
    const Transition& t = all[i];
    os << "    {\"input\": \"" << escapeJson(machine.inputs().name(t.input))
       << "\", \"from\": \"" << escapeJson(machine.states().name(t.from))
       << "\", \"to\": \"" << escapeJson(machine.states().name(t.to))
       << "\", \"output\": \"" << escapeJson(machine.outputs().name(t.output))
       << "\"}";
    if (i + 1 < all.size()) os << ",";
    os << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

Machine machineFromJson(const std::string& json) {
  const JsonValue root = JsonReader(json).parse();
  const JsonObject& object = root.asObject();

  MachineBuilder builder(fieldOf(object, "name").asString());
  for (const auto& v : fieldOf(object, "inputs").asArray())
    builder.addInput(v.asString());
  for (const auto& v : fieldOf(object, "outputs").asArray())
    builder.addOutput(v.asString());
  for (const auto& v : fieldOf(object, "states").asArray())
    builder.addState(v.asString());
  builder.setResetState(fieldOf(object, "reset").asString());
  for (const auto& v : fieldOf(object, "transitions").asArray()) {
    const JsonObject& t = v.asObject();
    builder.addTransition(
        fieldOf(t, "input").asString(), fieldOf(t, "from").asString(),
        fieldOf(t, "to").asString(), fieldOf(t, "output").asString());
  }
  return builder.build();
}

}  // namespace rfsm
