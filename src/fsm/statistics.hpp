// Structural statistics of a machine — the numbers a designer looks at
// before planning a migration (connectivity, degree spread, diameter).
#pragma once

#include <string>
#include <vector>

#include "fsm/machine.hpp"

namespace rfsm {

/// Structural metrics of one machine.
struct MachineStatistics {
  int states = 0;
  int inputs = 0;
  int outputs = 0;
  int reachableStates = 0;
  int stronglyConnectedComponents = 0;
  int stableTotalStates = 0;
  bool mooreForm = false;
  /// Max over states of the shortest path length from reset (-1 when some
  /// state is unreachable).
  int eccentricityFromReset = 0;
  /// Longest shortest path between reachable state pairs (-1 when the
  /// reachable part is not strongly connected).
  int diameter = 0;
  /// Distinct successor states per state, averaged (out-degree diversity).
  double meanDistinctSuccessors = 0.0;
  /// States with no in-edges (cannot be re-entered once left).
  int sourcesOnly = 0;
};

/// Computes all metrics.
MachineStatistics computeStatistics(const Machine& machine);

/// Multi-line human-readable rendering.
std::string describeStatistics(const MachineStatistics& stats);

}  // namespace rfsm
