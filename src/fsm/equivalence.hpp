// Behavioural equivalence of completely specified Mealy machines.
//
// Two machines are equivalent when, started in their reset states, they emit
// the same output word for every input word.  For the completely specified
// deterministic class this is decidable by a product-machine BFS; a
// counterexample (shortest distinguishing input word) is produced otherwise.
//
// The reconfiguration validator uses this to prove that replaying a
// reconfiguration program on M really yields the behaviour of M'.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "fsm/machine.hpp"

namespace rfsm {

/// Outcome of an equivalence check.
struct EquivalenceResult {
  bool equivalent = false;
  /// Shortest distinguishing input word (as symbol names) when inequivalent.
  std::optional<std::vector<std::string>> counterexample;
};

/// Checks behavioural equivalence.  The machines must have the same input
/// alphabet as a *set of names* (ids may differ); throws FsmError otherwise.
/// Output symbols are compared by name.
EquivalenceResult checkEquivalence(const Machine& a, const Machine& b);

/// Convenience wrapper.
bool areEquivalent(const Machine& a, const Machine& b);

}  // namespace rfsm
