#include "fsm/partial_machine.hpp"

#include <queue>
#include <set>

#include "fsm/builder.hpp"

namespace rfsm {

PartialMachine::PartialMachine(std::string name, SymbolTable inputs,
                               SymbolTable outputs, SymbolTable states,
                               SymbolId resetState)
    : name_(std::move(name)),
      inputs_(std::move(inputs)),
      outputs_(std::move(outputs)),
      states_(std::move(states)),
      resetState_(resetState) {
  RFSM_CHECK(states_.contains(resetState_), "reset state out of range");
  RFSM_CHECK(inputs_.size() > 0 && outputs_.size() > 0,
             "alphabets must be non-empty");
  const auto cells = static_cast<std::size_t>(states_.size()) *
                     static_cast<std::size_t>(inputs_.size());
  next_.assign(cells, kNoSymbol);
  out_.assign(cells, kNoSymbol);
}

PartialMachine::PartialMachine(const Machine& machine)
    : PartialMachine(machine.name(), machine.inputs(), machine.outputs(),
                     machine.states(), machine.resetState()) {
  for (const Transition& t : machine.transitions())
    specify(t.input, t.from, t.to, t.output);
}

std::size_t PartialMachine::cell(SymbolId input, SymbolId state) const {
  RFSM_CHECK(inputs_.contains(input), "input id out of range");
  RFSM_CHECK(states_.contains(state), "state id out of range");
  return static_cast<std::size_t>(state) *
             static_cast<std::size_t>(inputs_.size()) +
         static_cast<std::size_t>(input);
}

void PartialMachine::specify(SymbolId input, SymbolId from, SymbolId to,
                             SymbolId output) {
  const std::size_t c = cell(input, from);
  if (to != kNoSymbol) {
    RFSM_CHECK(states_.contains(to), "next state out of range");
    if (next_[c] != kNoSymbol && next_[c] != to)
      throw FsmError("conflicting next state for cell (" +
                     inputs_.name(input) + ", " + states_.name(from) + ")");
    next_[c] = to;
  }
  if (output != kNoSymbol) {
    RFSM_CHECK(outputs_.contains(output), "output out of range");
    if (out_[c] != kNoSymbol && out_[c] != output)
      throw FsmError("conflicting output for cell (" + inputs_.name(input) +
                     ", " + states_.name(from) + ")");
    out_[c] = output;
  }
}

SymbolId PartialMachine::next(SymbolId input, SymbolId state) const {
  return next_[cell(input, state)];
}

SymbolId PartialMachine::output(SymbolId input, SymbolId state) const {
  return out_[cell(input, state)];
}

int PartialMachine::unspecifiedCount() const {
  int count = 0;
  for (std::size_t c = 0; c < next_.size(); ++c)
    if (next_[c] == kNoSymbol || out_[c] == kNoSymbol) ++count;
  return count;
}

Machine PartialMachine::completeWithSelfLoops(SymbolId defaultOutput) const {
  RFSM_CHECK(outputs_.contains(defaultOutput),
             "default output out of range");
  std::vector<SymbolId> next = next_;
  std::vector<SymbolId> out = out_;
  for (SymbolId s = 0; s < states_.size(); ++s)
    for (SymbolId i = 0; i < inputs_.size(); ++i) {
      const std::size_t c = cell(i, s);
      if (next[c] == kNoSymbol) next[c] = s;
      if (out[c] == kNoSymbol) out[c] = defaultOutput;
    }
  return Machine(name_, inputs_, outputs_, states_, resetState_,
                 std::move(next), std::move(out));
}

Machine PartialMachine::completeRandomly(Rng& rng) const {
  std::vector<SymbolId> next = next_;
  std::vector<SymbolId> out = out_;
  for (std::size_t c = 0; c < next.size(); ++c) {
    if (next[c] == kNoSymbol)
      next[c] = static_cast<SymbolId>(
          rng.below(static_cast<std::uint64_t>(states_.size())));
    if (out[c] == kNoSymbol)
      out[c] = static_cast<SymbolId>(
          rng.below(static_cast<std::uint64_t>(outputs_.size())));
  }
  return Machine(name_, inputs_, outputs_, states_, resetState_,
                 std::move(next), std::move(out));
}

bool implementsSpecification(const Machine& implementation,
                             const PartialMachine& specification) {
  // Align alphabets by name.
  std::vector<SymbolId> inputMap(
      static_cast<std::size_t>(specification.inputs().size()));
  for (SymbolId i = 0; i < specification.inputs().size(); ++i) {
    const auto mapped =
        implementation.inputs().find(specification.inputs().name(i));
    if (!mapped.has_value()) return false;
    inputMap[static_cast<std::size_t>(i)] = *mapped;
  }

  std::queue<std::pair<SymbolId, SymbolId>> frontier;  // (spec, impl)
  std::set<std::pair<SymbolId, SymbolId>> seen;
  frontier.emplace(specification.resetState(), implementation.resetState());
  seen.insert({specification.resetState(), implementation.resetState()});
  while (!frontier.empty()) {
    const auto [specState, implState] = frontier.front();
    frontier.pop();
    for (SymbolId i = 0; i < specification.inputs().size(); ++i) {
      const SymbolId implInput = inputMap[static_cast<std::size_t>(i)];
      const SymbolId wantOut = specification.output(i, specState);
      if (wantOut != kNoSymbol) {
        const std::string& wantName = specification.outputs().name(wantOut);
        const std::string& gotName = implementation.outputs().name(
            implementation.output(implInput, implState));
        if (wantName != gotName) return false;
      }
      const SymbolId specNext = specification.next(i, specState);
      if (specNext == kNoSymbol) continue;  // spec imposes nothing further
      const SymbolId implNext = implementation.next(implInput, implState);
      if (seen.insert({specNext, implNext}).second)
        frontier.emplace(specNext, implNext);
    }
  }
  return true;
}

}  // namespace rfsm
