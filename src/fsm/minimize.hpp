// State minimization of completely specified Mealy machines.
//
// Classic partition refinement: start from the partition induced by the
// per-state output row G(., s) and refine until successor blocks agree.  The
// minimized machine is behaviourally equivalent and has the fewest states of
// any equivalent completely specified machine.  Useful before migration —
// fewer states means fewer delta transitions.
#pragma once

#include <vector>

#include "fsm/machine.hpp"

namespace rfsm {

/// Result of minimization.
struct MinimizationResult {
  Machine machine;
  /// blockOf[s] = state id in `machine` representing original state s.
  std::vector<SymbolId> blockOf;
};

/// Minimizes `machine`.  Unreachable states are kept (they refine into
/// blocks like any other); call reachableStates() first to prune if desired.
/// The representative state name of each block is the name of its
/// lowest-numbered member.
MinimizationResult minimize(const Machine& machine);

}  // namespace rfsm
