// Symbol interning for FSM alphabets.
//
// The paper's alphabets I, O, S are finite sets of *symbolic* states (Def.
// 2.1); a SymbolTable maps each symbol name to a dense id so the transition
// and output functions can be stored as flat tables.  Superset alphabets
// (Def. 4.1: I_super, S_super, O_super) are built by merging two tables.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace rfsm {

/// Dense id of an interned symbol; valid ids are 0..size()-1.
using SymbolId = int;

/// Sentinel for "no symbol".
inline constexpr SymbolId kNoSymbol = -1;

/// An ordered set of distinct symbol names with O(1) name<->id lookup.
class SymbolTable {
 public:
  SymbolTable() = default;

  /// Builds a table from names; throws ContractError on duplicates.
  explicit SymbolTable(const std::vector<std::string>& names);

  /// Interns `name`, returning its id (existing or fresh).
  SymbolId intern(std::string_view name);

  /// Id of `name`, or std::nullopt if absent.
  std::optional<SymbolId> find(std::string_view name) const;

  /// Id of `name`; throws ContractError if absent.
  SymbolId at(std::string_view name) const;

  /// Name of `id`; throws ContractError if out of range.
  const std::string& name(SymbolId id) const;

  /// True when `id` is a valid id of this table.
  bool contains(SymbolId id) const {
    return id >= 0 && id < static_cast<SymbolId>(names_.size());
  }

  bool containsName(std::string_view name) const {
    return find(name).has_value();
  }

  int size() const { return static_cast<int>(names_.size()); }
  bool empty() const { return names_.empty(); }

  /// All names in id order.
  const std::vector<std::string>& names() const { return names_; }

  bool operator==(const SymbolTable& other) const {
    return names_ == other.names_;
  }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, SymbolId> index_;
};

/// Merged table containing every symbol of `a` followed by the symbols of
/// `b` not already present, together with the id remappings.  This realizes
/// the paper's S_super / I_super / O_super construction.
struct MergedSymbols {
  SymbolTable table;
  /// fromA[i] = id in `table` of symbol i of `a` (always i, kept for
  /// symmetry).
  std::vector<SymbolId> fromA;
  /// fromB[i] = id in `table` of symbol i of `b`.
  std::vector<SymbolId> fromB;
};

MergedSymbols mergeSymbols(const SymbolTable& a, const SymbolTable& b);

}  // namespace rfsm
