#include "fsm/builder.hpp"

#include <unordered_set>

namespace rfsm {

MachineBuilder::MachineBuilder(std::string name) : name_(std::move(name)) {}

SymbolId MachineBuilder::addInput(std::string_view name) {
  return inputs_.intern(name);
}

SymbolId MachineBuilder::addOutput(std::string_view name) {
  return outputs_.intern(name);
}

SymbolId MachineBuilder::addState(std::string_view name) {
  return states_.intern(name);
}

MachineBuilder& MachineBuilder::setResetState(std::string_view name) {
  resetState_ = states_.intern(name);
  return *this;
}

MachineBuilder& MachineBuilder::addTransition(std::string_view input,
                                              std::string_view from,
                                              std::string_view to,
                                              std::string_view output) {
  specs_.push_back(Spec{inputs_.intern(input), states_.intern(from),
                        states_.intern(to), outputs_.intern(output)});
  return *this;
}

namespace {
std::size_t cellIndex(SymbolId input, SymbolId state, int inputCount) {
  return static_cast<std::size_t>(state) * static_cast<std::size_t>(inputCount) +
         static_cast<std::size_t>(input);
}
}  // namespace

MachineBuilder& MachineBuilder::completeWithSelfLoops(
    std::string_view defaultOutput) {
  const SymbolId o = outputs_.intern(defaultOutput);
  const auto cells = static_cast<std::size_t>(states_.size()) *
                     static_cast<std::size_t>(inputs_.size());
  std::vector<bool> specified(cells, false);
  for (const Spec& spec : specs_)
    specified[cellIndex(spec.input, spec.from, inputs_.size())] = true;
  for (SymbolId s = 0; s < states_.size(); ++s)
    for (SymbolId i = 0; i < inputs_.size(); ++i)
      if (!specified[cellIndex(i, s, inputs_.size())])
        specs_.push_back(Spec{i, s, s, o});
  return *this;
}

MachineBuilder& MachineBuilder::completeWith(std::string_view state,
                                             std::string_view output) {
  const SymbolId target = states_.intern(state);
  const SymbolId o = outputs_.intern(output);
  const auto cells = static_cast<std::size_t>(states_.size()) *
                     static_cast<std::size_t>(inputs_.size());
  std::vector<bool> specified(cells, false);
  for (const Spec& spec : specs_)
    specified[cellIndex(spec.input, spec.from, inputs_.size())] = true;
  for (SymbolId s = 0; s < states_.size(); ++s)
    for (SymbolId i = 0; i < inputs_.size(); ++i)
      if (!specified[cellIndex(i, s, inputs_.size())])
        specs_.push_back(Spec{i, s, target, o});
  return *this;
}

int MachineBuilder::unspecifiedCellCount() const {
  const auto cells = static_cast<std::size_t>(states_.size()) *
                     static_cast<std::size_t>(inputs_.size());
  std::vector<bool> specified(cells, false);
  for (const Spec& spec : specs_)
    specified[cellIndex(spec.input, spec.from, inputs_.size())] = true;
  int missing = 0;
  for (bool b : specified)
    if (!b) ++missing;
  return missing;
}

Machine MachineBuilder::build() const {
  if (!resetState_.has_value())
    throw FsmError("machine '" + name_ + "' has no reset state");
  if (inputs_.empty())
    throw FsmError("machine '" + name_ + "' has no input states");
  if (outputs_.empty())
    throw FsmError("machine '" + name_ + "' has no output states");

  const auto cells = static_cast<std::size_t>(states_.size()) *
                     static_cast<std::size_t>(inputs_.size());
  std::vector<SymbolId> next(cells, kNoSymbol);
  std::vector<SymbolId> output(cells, kNoSymbol);
  for (const Spec& spec : specs_) {
    const std::size_t c = cellIndex(spec.input, spec.from, inputs_.size());
    const bool conflicting =
        next[c] != kNoSymbol && (next[c] != spec.to || output[c] != spec.output);
    if (conflicting)
      throw FsmError("machine '" + name_ + "' is non-deterministic at cell (" +
                     inputs_.name(spec.input) + ", " +
                     states_.name(spec.from) + ")");
    next[c] = spec.to;
    output[c] = spec.output;
  }
  for (SymbolId s = 0; s < states_.size(); ++s)
    for (SymbolId i = 0; i < inputs_.size(); ++i)
      if (next[cellIndex(i, s, inputs_.size())] == kNoSymbol)
        throw FsmError("machine '" + name_ +
                       "' is incompletely specified at cell (" +
                       inputs_.name(i) + ", " + states_.name(s) + ")");

  return Machine(name_, inputs_, outputs_, states_, *resetState_,
                 std::move(next), std::move(output));
}

}  // namespace rfsm
