// Deterministic, completely specified Mealy machines (paper Def. 2.1).
//
// "A deterministic FSM is completely specified if both F and G are total
// functions. This is the class of FSMs we will consider throughout this
// work."  Machine stores exactly that: a 6-tuple (I, O, S, S0, F, G) with F
// and G as dense (state x input) tables.  Moore machines are the special
// case where every in-edge of a state carries the same output (footnote 2);
// isMoore() detects it.
#pragma once

#include <string>
#include <vector>

#include "fsm/symbols.hpp"
#include "graph/digraph.hpp"

namespace rfsm {

/// One fully specified transition t = (i, s_x, s_y, o): under input `input`
/// in state `from`, go to `to` and emit `output`.  Matches the paper's
/// 4-tuple in Def. 4.2.
struct Transition {
  SymbolId input = kNoSymbol;
  SymbolId from = kNoSymbol;
  SymbolId to = kNoSymbol;
  SymbolId output = kNoSymbol;

  bool operator==(const Transition&) const = default;
};

/// The (input, state) cell a transition occupies; the unit of
/// reconfiguration (one cell of F and G is rewritten per clock).
struct TotalState {
  SymbolId input = kNoSymbol;
  SymbolId state = kNoSymbol;

  bool operator==(const TotalState&) const = default;
};

/// Immutable deterministic completely-specified Mealy FSM.
///
/// Construct through MachineBuilder (fsm/builder.hpp) which validates
/// determinism and completeness, or directly from validated tables.
class Machine {
 public:
  /// Direct construction from dense tables.  `next` and `output` are indexed
  /// by state * inputCount + input.  Throws ContractError when sizes or
  /// entries are inconsistent.
  Machine(std::string name, SymbolTable inputs, SymbolTable outputs,
          SymbolTable states, SymbolId resetState, std::vector<SymbolId> next,
          std::vector<SymbolId> output);

  const std::string& name() const { return name_; }
  const SymbolTable& inputs() const { return inputs_; }
  const SymbolTable& outputs() const { return outputs_; }
  const SymbolTable& states() const { return states_; }

  int inputCount() const { return inputs_.size(); }
  int outputCount() const { return outputs_.size(); }
  int stateCount() const { return states_.size(); }

  /// The single reset state S0 (deterministic machines have |S0| = 1).
  SymbolId resetState() const { return resetState_; }

  /// F(i, s): next state.  Total by construction.
  SymbolId next(SymbolId input, SymbolId state) const;

  /// G(i, s): output.  Total by construction.
  SymbolId output(SymbolId input, SymbolId state) const;

  /// The transition occupying cell (input, state).
  Transition transitionAt(SymbolId input, SymbolId state) const;

  /// All |S| * |I| transitions, ordered by (state, input).
  std::vector<Transition> transitions() const;

  /// True when (i, s) is a stable total state, i.e. F(i, s) = s (a self-loop
  /// in the state transition graph).
  bool isStableTotalState(SymbolId input, SymbolId state) const;

  /// True when the machine is Moore: for each state, all in-edges carry one
  /// output label.  States with no in-edges are unconstrained.
  bool isMoore() const;

  /// State transition graph: node = state, one edge per (state, input) cell,
  /// edge tag = input id.
  Digraph transitionGraph() const;

  /// Renames the machine (used when deriving variants).
  Machine withName(std::string newName) const;

  bool operator==(const Machine& other) const;

 private:
  std::size_t cell(SymbolId input, SymbolId state) const;

  std::string name_;
  SymbolTable inputs_;
  SymbolTable outputs_;
  SymbolTable states_;
  SymbolId resetState_;
  std::vector<SymbolId> next_;
  std::vector<SymbolId> output_;
};

/// Human-readable rendering "i/s -> s'/o" of a transition in the context of
/// a machine's symbol tables.
std::string describeTransition(const Machine& machine, const Transition& t);

}  // namespace rfsm
