#include "fsm/simulate.hpp"

namespace rfsm {

Simulator::Simulator(const Machine& machine)
    : machine_(machine), state_(machine.resetState()) {}

SymbolId Simulator::step(SymbolId input) {
  const SymbolId out = machine_.output(input, state_);
  state_ = machine_.next(input, state_);
  return out;
}

void Simulator::reset() { state_ = machine_.resetState(); }

SimulationTrace Simulator::run(const std::vector<SymbolId>& word) {
  SimulationTrace trace;
  trace.inputs = word;
  trace.states.push_back(state_);
  trace.outputs.reserve(word.size());
  for (const SymbolId input : word) {
    trace.outputs.push_back(step(input));
    trace.states.push_back(state_);
  }
  return trace;
}

std::vector<std::string> runOnNames(const Machine& machine,
                                    const std::vector<std::string>& word) {
  Simulator sim(machine);
  std::vector<std::string> out;
  out.reserve(word.size());
  for (const auto& name : word)
    out.push_back(machine.outputs().name(sim.step(machine.inputs().at(name))));
  return out;
}

}  // namespace rfsm
