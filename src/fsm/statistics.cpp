#include "fsm/statistics.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "fsm/analysis.hpp"
#include "graph/scc.hpp"
#include "graph/shortest_path.hpp"

namespace rfsm {

MachineStatistics computeStatistics(const Machine& machine) {
  MachineStatistics stats;
  stats.states = machine.stateCount();
  stats.inputs = machine.inputCount();
  stats.outputs = machine.outputCount();
  stats.mooreForm = machine.isMoore();
  stats.stableTotalStates =
      static_cast<int>(stableTotalStates(machine).size());

  const Digraph graph = machine.transitionGraph();
  stats.stronglyConnectedComponents =
      stronglyConnectedComponents(graph).componentCount;

  const auto distances = allPairsDistances(graph);
  const auto& fromReset =
      distances[static_cast<std::size_t>(machine.resetState())];
  stats.reachableStates = 0;
  stats.eccentricityFromReset = 0;
  for (const int d : fromReset) {
    if (d == kUnreachable) {
      stats.eccentricityFromReset = -1;
    } else {
      ++stats.reachableStates;
      if (stats.eccentricityFromReset >= 0)
        stats.eccentricityFromReset =
            std::max(stats.eccentricityFromReset, d);
    }
  }

  // Diameter over reachable pairs.
  stats.diameter = 0;
  for (SymbolId u = 0; u < machine.stateCount() && stats.diameter >= 0; ++u) {
    if (fromReset[static_cast<std::size_t>(u)] == kUnreachable) continue;
    for (SymbolId v = 0; v < machine.stateCount(); ++v) {
      if (fromReset[static_cast<std::size_t>(v)] == kUnreachable) continue;
      const int d =
          distances[static_cast<std::size_t>(u)][static_cast<std::size_t>(v)];
      if (d == kUnreachable) {
        stats.diameter = -1;
        break;
      }
      stats.diameter = std::max(stats.diameter, d);
    }
  }

  // Out-degree diversity and in-degree zeros.
  std::vector<int> inDegree(static_cast<std::size_t>(machine.stateCount()),
                            0);
  double distinctSum = 0;
  for (SymbolId s = 0; s < machine.stateCount(); ++s) {
    std::set<SymbolId> successors;
    for (SymbolId i = 0; i < machine.inputCount(); ++i) {
      const SymbolId t = machine.next(i, s);
      successors.insert(t);
      ++inDegree[static_cast<std::size_t>(t)];
    }
    distinctSum += static_cast<double>(successors.size());
  }
  stats.meanDistinctSuccessors =
      distinctSum / static_cast<double>(machine.stateCount());
  stats.sourcesOnly = static_cast<int>(
      std::count(inDegree.begin(), inDegree.end(), 0));
  return stats;
}

std::string describeStatistics(const MachineStatistics& s) {
  std::ostringstream os;
  os << "states " << s.states << " (" << s.reachableStates
     << " reachable), inputs " << s.inputs << ", outputs " << s.outputs
     << "\n";
  os << "form: " << (s.mooreForm ? "Moore" : "Mealy") << ", SCCs "
     << s.stronglyConnectedComponents << ", stable total states "
     << s.stableTotalStates << "\n";
  os << "eccentricity from reset "
     << (s.eccentricityFromReset < 0 ? std::string("inf")
                                     : std::to_string(s.eccentricityFromReset))
     << ", diameter "
     << (s.diameter < 0 ? std::string("inf") : std::to_string(s.diameter))
     << "\n";
  os << "mean distinct successors " << s.meanDistinctSuccessors
     << ", never-entered states " << s.sourcesOnly << "\n";
  return os.str();
}

}  // namespace rfsm
