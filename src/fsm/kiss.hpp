// KISS2 finite-state-machine exchange format (the standard format of the
// MCNC/LGSynth benchmark suites, consumed by SIS, ABC, and most academic
// FSM tools).
//
// Grammar (one transition per line):
//   .i <#input bits>   .o <#output bits>   .s <#states>   .p <#rows>
//   .r <reset state>
//   <input pattern> <current state> <next state> <output pattern>
//   .e
// Input patterns may contain '-' (don't care) which we expand; output
// don't-cares are resolved to a caller-chosen character when lifting to the
// completely specified class.
#pragma once

#include <string>
#include <vector>

#include "fsm/machine.hpp"

namespace rfsm {

/// One raw KISS2 row, before don't-care expansion.
struct Kiss2Row {
  std::string inputPattern;   // e.g. "1-0"
  std::string fromState;
  std::string toState;
  std::string outputPattern;  // e.g. "0-1"
};

/// A parsed KISS2 file.
struct Kiss2Document {
  int inputBits = 0;
  int outputBits = 0;
  std::string resetState;  // empty = first row's fromState
  std::vector<Kiss2Row> rows;
};

/// Parses KISS2 text.  Throws FsmError on malformed input.
Kiss2Document parseKiss2(const std::string& text);

/// Renders a document back to KISS2 text.
std::string writeKiss2(const Kiss2Document& document);

/// Options for lifting a KISS2 document to a completely specified Machine.
struct Kiss2LiftOptions {
  /// Character substituted for '-' in output patterns.
  char outputDontCareFill = '0';
  /// When true, unspecified (input, state) cells become self-loops emitting
  /// all-zero outputs; when false, incompleteness raises FsmError.
  bool completeWithSelfLoops = true;
};

/// Expands don't-cares and builds a deterministic completely specified
/// Machine whose input symbols are the 2^inputBits binary vectors.
Machine machineFromKiss2(const Kiss2Document& document, std::string name,
                         const Kiss2LiftOptions& options = {});

/// Converts a Machine whose input symbol names are fixed-width binary
/// vectors back into a (fully specified) KISS2 document.  Throws FsmError
/// when input names are not uniform-width bitstrings.
Kiss2Document kiss2FromMachine(const Machine& machine);

}  // namespace rfsm
