// The Fig. 5 hardware implementation of a (self-)reconfigurable FSM.
//
//        +--------------+   ir,Hf,Hg,write,rec  +--------+
//   r -> | Reconfigurator|---------------------->|        |
//        +--------------+                        |        |
//   i -> IN-MUX -> {s,i'} addr -> F-RAM -> RST-MUX -> ST-REG -> s
//                          addr -> G-RAM -> o
//
// The Reconfigurator block realizes H_i, H_f, H_g of Def. 2.2 and the two
// extra signals (write enable and reconfiguration-reset) of the paper.  The
// datapath is technology independent: the reconfiguration sequence operates
// on symbol encodings, never on placement/routing-level bitstreams — the
// advantage the paper claims over bitstream-generating approaches.
#pragma once

#include <optional>

#include "core/migration.hpp"
#include "core/mutable_machine.hpp"
#include "core/sequence.hpp"
#include "rtl/components.hpp"
#include "rtl/encoding.hpp"
#include "rtl/kernel.hpp"

namespace rfsm::rtl {

/// The Reconfigurator block: plays a loaded reconfiguration sequence, one
/// row per cycle, when started (externally or by the self-trigger).
class Reconfigurator : public Component {
 public:
  struct EncodedRow {
    std::uint64_t ir = 0;
    std::uint64_t hf = 0;
    std::uint64_t hg = 0;
    bool write = false;
    bool reset = false;
  };

  Reconfigurator(WireId start, WireId stateQ, WireId externalInput,
                 WireId active, WireId ir, WireId hf, WireId hg, WireId write,
                 WireId recReset);

  void setRows(std::vector<EncodedRow> rows);

  /// Arms self-reconfiguration: when idle and the observed state/input
  /// match, the sequence starts autonomously (one-shot).
  void setAutoTrigger(std::uint64_t stateValue, std::uint64_t inputValue);

  bool active() const { return step_ > 0; }

  void evaluate(Circuit& circuit) override;
  void clockEdge(Circuit& circuit) override;

 private:
  WireId start_, stateQ_, externalInput_;
  WireId active_, ir_, hf_, hg_, write_, recReset_;
  std::vector<EncodedRow> rows_;
  std::size_t step_ = 0;  // 0 = idle, k>0 = playing row k-1
  std::optional<std::pair<std::uint64_t, std::uint64_t>> autoTrigger_;
};

/// The complete Fig. 5 datapath for one migration context.
class ReconfigurableFsmDatapath {
 public:
  /// Builds the netlist, sizes F-RAM/G-RAM for the superset alphabets, and
  /// initializes them with the source machine M (unwritten cells hold 0,
  /// like uninitialized block RAM).  Powers on in M's reset state.
  explicit ReconfigurableFsmDatapath(const MigrationContext& context);

  const FsmEncoding& encoding() const { return encoding_; }

  /// Loads a reconfiguration sequence into the Reconfigurator.
  void loadSequence(const ReconfigurationSequence& sequence);

  /// Requests the sequence to start at the next clock edge.
  void startReconfiguration();

  /// Arms the hardware self-trigger on (state, external input).
  void armSelfTrigger(SymbolId state, SymbolId input);

  /// One clock cycle with the given external input (and optional external
  /// reset).  Returns the value on the output port o (decode with
  /// outputSymbol()).
  std::uint64_t clock(SymbolId externalInput, bool externalReset = false);

  /// True while the Reconfigurator is playing a sequence.
  bool reconfiguring() const { return reconfigurator_->active(); }

  /// Current state register value as a symbol id.
  SymbolId currentState() const;

  /// Decodes the output port value of the last clock() call.
  SymbolId outputSymbol(std::uint64_t raw) const;

  /// Back-door RAM inspection (superset ids).
  SymbolId framEntry(SymbolId input, SymbolId state) const;
  SymbolId gramEntry(SymbolId input, SymbolId state) const;

  /// Bits of cell (input, state) the fault model may flip: the F-RAM row
  /// (state-code width, low bits) followed by the G-RAM row.
  int faultBitsPerCell() const {
    return encoding_.stateWidth + encoding_.outputWidth;
  }

  /// SEU back door: flips one bit of cell (input, state) — bit <
  /// stateWidth lands in F-RAM, higher bits in G-RAM — leaving the row
  /// parity stale (the flip is silent to the datapath).
  void injectFault(SymbolId input, SymbolId state, int bit);

  /// Cells whose F-RAM or G-RAM row fails its parity check, ordered by
  /// (state, input).  Only cells of the superset alphabets are scanned
  /// (other rows are never addressed).
  std::vector<TotalState> integrityScan() const;

  std::int64_t cycleCount() const { return circuit_.cycleCount(); }

  /// Read access to the underlying netlist (e.g. to attach a VcdRecorder).
  const Circuit& circuit() const { return circuit_; }

 private:
  const MigrationContext& context_;
  FsmEncoding encoding_;
  Circuit circuit_;
  // Top-level ports.
  WireId extInput_, reset_, start_;
  // Internal nets (kept for inspection).
  WireId stateQ_, output_;
  Ram* fram_ = nullptr;
  Ram* gram_ = nullptr;
  Reconfigurator* reconfigurator_ = nullptr;
};

}  // namespace rfsm::rtl
