// FPGA resource model for the Fig. 5 implementation.
//
// The paper realized the design on a Xilinx Virtex XCV300: the
// Reconfigurator in logic blocks (CLB LUTs/FFs), F-RAM and G-RAM in
// embedded block RAM.  We reproduce the sizing argument with the public
// Virtex numbers: an XCV300 has 16 BlockRAMs of 4096 bits each and
// 3072 CLB slices (2 4-input LUTs + 2 FFs per slice).
//
// The estimate is deliberately simple and documented per term — it is a
// feasibility model, not a synthesis result.
#pragma once

#include <string>

#include "core/migration.hpp"
#include "core/sequence.hpp"
#include "rtl/encoding.hpp"

namespace rfsm::rtl {

/// Virtex XCV300 capacity (Xilinx DS003 v2.5).
struct Xcv300 {
  static constexpr int kBlockRams = 16;
  static constexpr int kBlockRamBits = 4096;
  static constexpr int kSlices = 3072;
  static constexpr int kLutsPerSlice = 2;
  static constexpr int kFlipFlopsPerSlice = 2;
};

/// Resource estimate for one reconfigurable-FSM instance.
struct ResourceEstimate {
  FsmEncoding encoding;

  /// F-RAM: 2^(stateWidth+inputWidth) words of stateWidth bits.
  std::int64_t framBits = 0;
  /// G-RAM: 2^(stateWidth+inputWidth) words of outputWidth bits.
  std::int64_t gramBits = 0;
  /// Block RAMs consumed (4 Kbit granules).
  int blockRams = 0;

  /// Reconfigurator sequence ROM: rows x (ir + hf + hg + write + reset).
  std::int64_t sequenceRomBits = 0;
  /// 4-input LUT estimate: ROM (as 16x1 distributed RAM per LUT) + step
  /// counter/next-step logic + IN-MUX + RST-MUX + write gating.
  int luts = 0;
  /// Flip-flops: ST-REG + reconfiguration step counter.
  int flipFlops = 0;
  int slices = 0;

  bool fitsXcv300 = false;
};

/// Estimates resources for hosting the migration's superset machine and the
/// given reconfiguration sequence.
ResourceEstimate estimateResources(const MigrationContext& context,
                                   const ReconfigurationSequence& sequence);

/// Renders the estimate as a short multi-line report.
std::string describeEstimate(const ResourceEstimate& estimate);

}  // namespace rfsm::rtl
