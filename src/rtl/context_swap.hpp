// Downtime models for the alternatives the paper argues against.
//
// "Contrary to context-swapping, a FSM implementation may be reconfigured
// stepwise" (Conclusions).  This module quantifies the comparison:
//
//  * Gradual (this paper): downtime = |Z| cycles; the machine is a valid
//    automaton at every intermediate step.
//  * Context swap (multi-context FPGAs [8,13] / RAM reload [4,14]): stop
//    the machine, rewrite the whole F-RAM/G-RAM image through the
//    configuration port, reset.  Downtime ~ table cells / port width.
//  * Full bitstream reconfiguration: reload the device configuration
//    (XCV300 SelectMAP: ~1.75 Mbit at one byte per cycle).
#pragma once

#include <cstdint>

#include "core/migration.hpp"
#include "core/program.hpp"
#include "rtl/encoding.hpp"

namespace rfsm::rtl {

/// RAM-reload context swap through a configuration port.
struct ContextSwapModel {
  /// RAM words (one F + one G entry count as two words) written per cycle.
  int wordsPerCycle = 1;

  /// Cycles to rewrite every cell of the target machine's domain, plus one
  /// reset cycle.
  std::int64_t downtimeCycles(const MigrationContext& context) const;
};

/// Full-device reconfiguration (Virtex XCV300, DS003: 1,751,808
/// configuration bits; SelectMAP loads 8 bits per CCLK).
struct BitstreamReloadModel {
  std::int64_t bitstreamBits = 1751808;
  int portBitsPerCycle = 8;

  std::int64_t downtimeCycles() const {
    return (bitstreamBits + portBitsPerCycle - 1) / portBitsPerCycle;
  }
};

/// Side-by-side downtime of the three approaches for one migration.
struct DowntimeComparison {
  std::int64_t gradualCycles = 0;      // |Z|
  std::int64_t contextSwapCycles = 0;  // RAM image reload
  std::int64_t bitstreamCycles = 0;    // full device reload
  /// Gradual reconfiguration additionally keeps the machine *live*
  /// between programs; context swaps do not.
  double gradualVsSwap() const {
    return static_cast<double>(contextSwapCycles) /
           static_cast<double>(gradualCycles);
  }
};

DowntimeComparison compareDowntime(const MigrationContext& context,
                                   const ReconfigurationProgram& program,
                                   const ContextSwapModel& swap = {},
                                   const BitstreamReloadModel& bitstream = {});

}  // namespace rfsm::rtl
