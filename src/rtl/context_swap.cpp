#include "rtl/context_swap.hpp"

#include "util/check.hpp"

namespace rfsm::rtl {

std::int64_t ContextSwapModel::downtimeCycles(
    const MigrationContext& context) const {
  RFSM_CHECK(wordsPerCycle >= 1, "port must write at least one word/cycle");
  // The swap must install every cell of M''s domain: an F word and a G word
  // per (input, state) cell.
  const std::int64_t cells =
      static_cast<std::int64_t>(context.targetMachine().stateCount()) *
      context.targetMachine().inputCount();
  const std::int64_t words = 2 * cells;
  return (words + wordsPerCycle - 1) / wordsPerCycle + 1;  // + reset
}

DowntimeComparison compareDowntime(const MigrationContext& context,
                                   const ReconfigurationProgram& program,
                                   const ContextSwapModel& swap,
                                   const BitstreamReloadModel& bitstream) {
  DowntimeComparison result;
  result.gradualCycles = program.length();
  result.contextSwapCycles = swap.downtimeCycles(context);
  result.bitstreamCycles = bitstream.downtimeCycles();
  return result;
}

}  // namespace rfsm::rtl
