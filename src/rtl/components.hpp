// Primitive netlist components: mux, gates, register, RAM.
//
// The RAM models a Virtex-class embedded block RAM with combinational read
// and synchronous write; read-during-write returns the new data
// (WRITE_FIRST), which is what lets the Fig. 5 machine take a transition in
// the same cycle it rewrites it.
#pragma once

#include <vector>

#include "rtl/kernel.hpp"

namespace rfsm::rtl {

/// out = sel ? b : a  (2:1 multiplexer; IN-MUX / RST-MUX of Fig. 5).
class Mux2 : public Component {
 public:
  Mux2(WireId sel, WireId a, WireId b, WireId out);
  void evaluate(Circuit& circuit) override;

 private:
  WireId sel_, a_, b_, out_;
};

/// out = a | b.
class Or2 : public Component {
 public:
  Or2(WireId a, WireId b, WireId out);
  void evaluate(Circuit& circuit) override;

 private:
  WireId a_, b_, out_;
};

/// out = a & b.
class And2 : public Component {
 public:
  And2(WireId a, WireId b, WireId out);
  void evaluate(Circuit& circuit) override;

 private:
  WireId a_, b_, out_;
};

/// out = {hi, lo} (bit concatenation; builds RAM addresses).
class Concat : public Component {
 public:
  /// `loWidth` = number of bits `lo` occupies at the bottom of `out`.
  Concat(WireId hi, WireId lo, int loWidth, WireId out);
  void evaluate(Circuit& circuit) override;

 private:
  WireId hi_, lo_, out_;
  int loWidth_;
};

/// D flip-flop bank (ST-REG of Fig. 5): q <= d at the rising edge; optional
/// enable wire (kNoWire = always enabled).
class Register : public Component {
 public:
  Register(WireId d, WireId q, WireId enable = kNoWire,
           std::uint64_t powerOnValue = 0);
  void evaluate(Circuit& circuit) override;
  void clockEdge(Circuit& circuit) override;

 private:
  WireId d_, q_, enable_;
  std::uint64_t state_;
};

/// Single-port RAM: combinational read at `addr`, synchronous write of
/// `wdata` when `we` is high (WRITE_FIRST read-during-write).
///
/// Every row carries a parity bit maintained by authorized writes (port
/// writes and load()).  corrupt() models an SEU: it flips a storage bit
/// *without* touching the parity, so the damage is invisible to the
/// datapath but caught by parityOk()/parityScan() — the hardware analogue
/// of MutableMachine's per-cell checksums.
class Ram : public Component {
 public:
  /// `addressWidth` fixes the depth to 2^addressWidth words.
  Ram(int addressWidth, WireId addr, WireId we, WireId wdata, WireId rdata);

  void evaluate(Circuit& circuit) override;
  void clockEdge(Circuit& circuit) override;

  /// Back-door access for initialization and verification (the FPGA
  /// configuration port).
  void load(std::size_t address, std::uint64_t value);
  std::uint64_t inspect(std::size_t address) const;
  std::size_t depth() const { return storage_.size(); }

  /// SEU back door: flips bit `bit` of row `address`, leaving the row's
  /// parity stale.
  void corrupt(std::size_t address, int bit);

  /// True when row `address` still matches its parity bit.
  bool parityOk(std::size_t address) const;

  /// Addresses of every row whose parity no longer matches, ascending.
  std::vector<std::size_t> parityScan() const;

 private:
  WireId addr_, we_, wdata_, rdata_;
  std::vector<std::uint64_t> storage_;
  std::vector<char> parity_;
};

}  // namespace rfsm::rtl
