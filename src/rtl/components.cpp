#include "rtl/components.hpp"

#include <bit>

namespace rfsm::rtl {

namespace {
char parityOf(std::uint64_t word) {
  return static_cast<char>(std::popcount(word) & 1);
}
}  // namespace

Mux2::Mux2(WireId sel, WireId a, WireId b, WireId out)
    : sel_(sel), a_(a), b_(b), out_(out) {}

void Mux2::evaluate(Circuit& circuit) {
  circuit.poke(out_,
               circuit.peek(sel_) != 0 ? circuit.peek(b_) : circuit.peek(a_));
}

Or2::Or2(WireId a, WireId b, WireId out) : a_(a), b_(b), out_(out) {}

void Or2::evaluate(Circuit& circuit) {
  circuit.poke(out_, circuit.peek(a_) | circuit.peek(b_));
}

And2::And2(WireId a, WireId b, WireId out) : a_(a), b_(b), out_(out) {}

void And2::evaluate(Circuit& circuit) {
  circuit.poke(out_, circuit.peek(a_) & circuit.peek(b_));
}

Concat::Concat(WireId hi, WireId lo, int loWidth, WireId out)
    : hi_(hi), lo_(lo), out_(out), loWidth_(loWidth) {
  RFSM_CHECK(loWidth >= 1 && loWidth < 64, "concat low width out of range");
}

void Concat::evaluate(Circuit& circuit) {
  circuit.poke(out_,
               (circuit.peek(hi_) << loWidth_) | circuit.peek(lo_));
}

Register::Register(WireId d, WireId q, WireId enable,
                   std::uint64_t powerOnValue)
    : d_(d), q_(q), enable_(enable), state_(powerOnValue) {}

void Register::evaluate(Circuit& circuit) {
  // Drive q from the stored state every pass (q is stable within a cycle).
  circuit.poke(q_, state_);
}

void Register::clockEdge(Circuit& circuit) {
  if (enable_ == kNoWire || circuit.peek(enable_) != 0)
    state_ = circuit.peek(d_);
}

Ram::Ram(int addressWidth, WireId addr, WireId we, WireId wdata, WireId rdata)
    : addr_(addr), we_(we), wdata_(wdata), rdata_(rdata) {
  RFSM_CHECK(addressWidth >= 1 && addressWidth <= 24,
             "RAM address width out of range");
  storage_.assign(std::size_t{1} << addressWidth, 0);
  parity_.assign(storage_.size(), 0);
}

void Ram::evaluate(Circuit& circuit) {
  const std::size_t address =
      static_cast<std::size_t>(circuit.peek(addr_)) % storage_.size();
  // WRITE_FIRST: a write in flight is visible on the read port this cycle.
  if (circuit.peek(we_) != 0) {
    circuit.poke(rdata_, circuit.peek(wdata_));
  } else {
    circuit.poke(rdata_, storage_[address]);
  }
}

void Ram::clockEdge(Circuit& circuit) {
  if (circuit.peek(we_) != 0) {
    const std::size_t address =
        static_cast<std::size_t>(circuit.peek(addr_)) % storage_.size();
    storage_[address] = circuit.peek(wdata_);
    parity_[address] = parityOf(storage_[address]);
  }
}

void Ram::load(std::size_t address, std::uint64_t value) {
  RFSM_CHECK(address < storage_.size(), "RAM load address out of range");
  storage_[address] = value;
  parity_[address] = parityOf(value);
}

std::uint64_t Ram::inspect(std::size_t address) const {
  RFSM_CHECK(address < storage_.size(), "RAM inspect address out of range");
  return storage_[address];
}

void Ram::corrupt(std::size_t address, int bit) {
  RFSM_CHECK(address < storage_.size(), "RAM corrupt address out of range");
  RFSM_CHECK(bit >= 0 && bit < 64, "RAM corrupt bit out of range");
  // Storage only — the stale parity bit is how parityScan finds the hit.
  storage_[address] ^= std::uint64_t{1} << bit;
}

bool Ram::parityOk(std::size_t address) const {
  RFSM_CHECK(address < storage_.size(), "RAM parity address out of range");
  return parity_[address] == parityOf(storage_[address]);
}

std::vector<std::size_t> Ram::parityScan() const {
  std::vector<std::size_t> bad;
  for (std::size_t a = 0; a < storage_.size(); ++a)
    if (parity_[a] != parityOf(storage_[a])) bad.push_back(a);
  return bad;
}

}  // namespace rfsm::rtl
