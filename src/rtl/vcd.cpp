#include "rtl/vcd.hpp"

#include <sstream>

namespace rfsm::rtl {

std::string vcdIdentifier(std::size_t index) {
  // Base-94 over the printable ASCII range '!'..'~'.
  std::string id;
  do {
    id += static_cast<char>('!' + index % 94);
    index /= 94;
  } while (index > 0);
  return id;
}

std::string vcdBinary(std::uint64_t value, int width) {
  std::string bits;
  for (int b = width - 1; b >= 0; --b)
    bits += (value & (std::uint64_t{1} << b)) ? '1' : '0';
  return "b" + bits;
}

VcdRecorder::VcdRecorder(const Circuit& circuit, std::vector<WireId> wires)
    : circuit_(circuit), wires_(std::move(wires)) {
  if (wires_.empty()) {
    // Record everything present at construction time.
    for (WireId w = 0; w < circuit_.wireCount(); ++w) wires_.push_back(w);
  }
  lastValue_.assign(wires_.size(), 0);
  everSampled_.assign(wires_.size(), false);
}

void VcdRecorder::sample(std::uint64_t time) {
  RFSM_CHECK(samples_ == 0 || time >= lastTime_,
             "VCD sample times must be non-decreasing");
  for (std::size_t k = 0; k < wires_.size(); ++k) {
    const std::uint64_t value = circuit_.peek(wires_[k]);
    if (!everSampled_[k] || value != lastValue_[k]) {
      changes_.push_back(Change{time, k, value});
      lastValue_[k] = value;
      everSampled_[k] = true;
    }
  }
  lastTime_ = time;
  ++samples_;
}

std::string VcdRecorder::toString() const {
  std::ostringstream os;
  os << "$date rfsm $end\n";
  os << "$version rfsm rtl kernel $end\n";
  os << "$timescale 1ns $end\n";
  os << "$scope module rfsm $end\n";
  for (std::size_t k = 0; k < wires_.size(); ++k) {
    const int width = circuit_.wireWidth(wires_[k]);
    std::string name = circuit_.wireName(wires_[k]);
    if (name.empty()) name = "w" + std::to_string(wires_[k]);
    os << "$var wire " << width << " " << vcdIdentifier(k) << " " << name
       << " $end\n";
  }
  os << "$upscope $end\n";
  os << "$enddefinitions $end\n";

  std::uint64_t currentTime = ~std::uint64_t{0};
  for (const Change& change : changes_) {
    if (change.time != currentTime) {
      os << "#" << change.time << "\n";
      currentTime = change.time;
    }
    const int width = circuit_.wireWidth(wires_[change.wireIndex]);
    if (width == 1) {
      os << (change.value ? "1" : "0") << vcdIdentifier(change.wireIndex)
         << "\n";
    } else {
      os << vcdBinary(change.value, width) << " "
         << vcdIdentifier(change.wireIndex) << "\n";
    }
  }
  return os.str();
}

}  // namespace rfsm::rtl
