#include "rtl/kernel.hpp"

#include "util/trace.hpp"

namespace rfsm::rtl {

void Component::clockEdge(Circuit&) {}

WireId Circuit::addWire(int width, std::string name) {
  RFSM_CHECK(width >= 1 && width <= 64, "wire width must be 1..64");
  wires_.push_back(WireInfo{width, 0, std::move(name)});
  return static_cast<WireId>(wires_.size()) - 1;
}

int Circuit::wireWidth(WireId wire) const {
  RFSM_CHECK(wire >= 0 && wire < static_cast<WireId>(wires_.size()),
             "wire id out of range");
  return wires_[static_cast<std::size_t>(wire)].width;
}

const std::string& Circuit::wireName(WireId wire) const {
  RFSM_CHECK(wire >= 0 && wire < static_cast<WireId>(wires_.size()),
             "wire id out of range");
  return wires_[static_cast<std::size_t>(wire)].name;
}

std::uint64_t Circuit::mask(WireId wire) const {
  const int width = wireWidth(wire);
  return width == 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1);
}

void Circuit::poke(WireId wire, std::uint64_t value) {
  wires_[static_cast<std::size_t>(wire)].value = value & mask(wire);
}

std::uint64_t Circuit::peek(WireId wire) const {
  RFSM_CHECK(wire >= 0 && wire < static_cast<WireId>(wires_.size()),
             "wire id out of range");
  return wires_[static_cast<std::size_t>(wire)].value;
}

void Circuit::settle() {
  // A pass count of #components + 2 is enough for any acyclic netlist;
  // exceeding it means a combinational loop.
  const std::size_t maxPasses = components_.size() + 2;
  for (std::size_t pass = 0; pass < maxPasses; ++pass) {
    std::vector<std::uint64_t> before;
    before.reserve(wires_.size());
    for (const WireInfo& w : wires_) before.push_back(w.value);
    for (auto& component : components_) component->evaluate(*this);
    bool changed = false;
    for (std::size_t w = 0; w < wires_.size(); ++w) {
      if (wires_[w].value != before[w]) {
        changed = true;
        break;
      }
    }
    if (!changed) return;
  }
  throw RtlError("circuit does not settle: combinational loop");
}

void Circuit::step() {
  // The "cycle" argument is the VCD timestamp of this cycle (VcdRecorder
  // samples at time == cycleCount()), so spans and waveform correlate.
  trace::ScopedSpan span("rtl.cycle", "rtl",
                         {trace::Arg::num("cycle", cycles_)});
  settle();
  for (auto& component : components_) component->clockEdge(*this);
  settle();
  ++cycles_;
}

int bitWidthFor(int count) {
  RFSM_CHECK(count >= 1, "cannot encode an empty value set");
  int width = 1;
  while ((std::int64_t{1} << width) < count) ++width;
  return width;
}

}  // namespace rfsm::rtl
