// On-chip JSR sequencing: self-reconfiguration without a precomputed
// sequence ROM.
//
// The basic Fig. 5 Reconfigurator plays back a sequence computed off-chip.
// Because the JSR heuristic (Sec. 4.4) is so regular — reset, jump, set,
// return, repeated per delta, plus a fixed tail — it also fits in a few
// gates: this component stores only the compact *delta list*
// (ir, hf, hg per delta transition) and generates the jump/set/return
// control words with a two-bit phase FSM.  The chip thereby computes its
// own reconfiguration sequence from 3 words per delta instead of 3 rows
// per cycle: the strongest form of "self"-reconfiguration the paper's
// architecture admits.
#pragma once

#include <vector>

#include "core/migration.hpp"
#include "rtl/kernel.hpp"

namespace rfsm::rtl {

/// One entry of the on-chip delta list.
struct DeltaEntry {
  std::uint64_t ir;  // input of the delta cell (H_i during the SET phase)
  std::uint64_t hf;  // new next state (H_f)
  std::uint64_t hg;  // new output (H_g)
  std::uint64_t source;  // delta source state (jump target of the TEMP phase)
};

/// Hardware JSR sequencer; drop-in replacement for the sequence-ROM
/// Reconfigurator (same output wires).
class JsrSequencer : public Component {
 public:
  JsrSequencer(WireId start, WireId active, WireId ir, WireId hf, WireId hg,
               WireId write, WireId recReset, std::uint64_t tempInput,
               std::uint64_t tempTargetHf, std::uint64_t tempTargetHg);

  /// Loads the delta list (idle only).
  void setDeltas(std::vector<DeltaEntry> deltas);

  bool active() const { return phase_ != Phase::kIdle; }

  /// Cycles a full run takes: 1 (lead reset) + 3 per delta + 2 (tail).
  int sequenceLength() const {
    return 1 + 3 * static_cast<int>(deltas_.size()) + 2;
  }

  void evaluate(Circuit& circuit) override;
  void clockEdge(Circuit& circuit) override;

 private:
  enum class Phase { kIdle, kLeadReset, kJump, kSet, kReturn, kTail,
                     kTailReset };

  WireId start_, active_, ir_, hf_, hg_, write_, recReset_;
  std::uint64_t tempInput_, tempTargetHf_, tempTargetHg_;
  std::vector<DeltaEntry> deltas_;
  Phase phase_ = Phase::kIdle;
  std::size_t index_ = 0;
};

/// Builds the delta list for a migration (the JSR loop deltas, i.e. all of
/// T_d except the one living in the temporary cell, which the tail fixes).
std::vector<DeltaEntry> deltaListFor(const MigrationContext& context,
                                     SymbolId tempInput = kNoSymbol);

}  // namespace rfsm::rtl
