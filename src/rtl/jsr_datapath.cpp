#include "rtl/jsr_datapath.hpp"

namespace rfsm::rtl {

JsrDatapath::JsrDatapath(const MigrationContext& context)
    : context_(context), encoding_(encodingFor(context)) {
  const int wi = encoding_.inputWidth;
  const int ws = encoding_.stateWidth;
  const int wo = encoding_.outputWidth;

  extInput_ = circuit_.addWire(wi, "i");
  reset_ = circuit_.addWire(1, "rst");
  start_ = circuit_.addWire(1, "start");
  const WireId recActive = circuit_.addWire(1, "rec_active");
  const WireId ir = circuit_.addWire(wi, "ir");
  const WireId hf = circuit_.addWire(ws, "hf");
  const WireId hg = circuit_.addWire(wo, "hg");
  const WireId recWrite = circuit_.addWire(1, "rec_write");
  const WireId recReset = circuit_.addWire(1, "rec_reset");
  const WireId inMuxOut = circuit_.addWire(wi, "i_int");
  stateQ_ = circuit_.addWire(ws, "s");
  const WireId addr = circuit_.addWire(encoding_.addressWidth(), "addr");
  const WireId fData = circuit_.addWire(ws, "s_next_ram");
  output_ = circuit_.addWire(wo, "o");
  const WireId we = circuit_.addWire(1, "we");
  const WireId forceReset = circuit_.addWire(1, "force_reset");
  const WireId resetVector = circuit_.addWire(ws, "reset_vector");
  const WireId nextState = circuit_.addWire(ws, "s_next");

  const SymbolId i0 = context.liftTargetInput(0);
  const SymbolId s0 = context.targetReset();
  circuit_.poke(resetVector, static_cast<std::uint64_t>(s0));

  sequencer_ = circuit_.add<JsrSequencer>(
      start_, recActive, ir, hf, hg, recWrite, recReset,
      static_cast<std::uint64_t>(i0),
      static_cast<std::uint64_t>(context.targetNext(i0, s0)),
      static_cast<std::uint64_t>(context.targetOutput(i0, s0)));
  sequencer_->setDeltas(deltaListFor(context, i0));

  circuit_.add<Mux2>(recActive, extInput_, ir, inMuxOut);
  circuit_.add<Concat>(stateQ_, inMuxOut, wi, addr);
  circuit_.add<And2>(recActive, recWrite, we);
  fram_ = circuit_.add<Ram>(encoding_.addressWidth(), addr, we, hf, fData);
  gram_ = circuit_.add<Ram>(encoding_.addressWidth(), addr, we, hg, output_);
  circuit_.add<Or2>(reset_, recReset, forceReset);
  circuit_.add<Mux2>(forceReset, fData, resetVector, nextState);
  circuit_.add<Register>(nextState, stateQ_, kNoWire,
                         static_cast<std::uint64_t>(context.sourceReset()));

  const MutableMachine initial(context);
  for (SymbolId s = 0; s < context.states().size(); ++s)
    for (SymbolId i = 0; i < context.inputs().size(); ++i) {
      if (!initial.isSpecified(i, s)) continue;
      const auto address =
          static_cast<std::size_t>(encoding_.packAddress(s, i));
      fram_->load(address, static_cast<std::uint64_t>(initial.next(i, s)));
      gram_->load(address, static_cast<std::uint64_t>(initial.output(i, s)));
    }
  circuit_.settle();
}

std::uint64_t JsrDatapath::clock(SymbolId externalInput, bool externalReset) {
  RFSM_CHECK(context_.inputs().contains(externalInput),
             "external input out of range");
  circuit_.poke(extInput_, static_cast<std::uint64_t>(externalInput));
  circuit_.poke(reset_, externalReset ? 1 : 0);
  circuit_.settle();
  const std::uint64_t out = circuit_.peek(output_);
  circuit_.step();
  circuit_.poke(start_, 0);
  return out;
}

SymbolId JsrDatapath::framEntry(SymbolId input, SymbolId state) const {
  return static_cast<SymbolId>(fram_->inspect(
      static_cast<std::size_t>(encoding_.packAddress(state, input))));
}

SymbolId JsrDatapath::gramEntry(SymbolId input, SymbolId state) const {
  return static_cast<SymbolId>(gram_->inspect(
      static_cast<std::size_t>(encoding_.packAddress(state, input))));
}

}  // namespace rfsm::rtl
