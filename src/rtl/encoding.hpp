// Binary encodings of FSM alphabets for the hardware datapath.
//
// Symbol ids are encoded as unsigned binary vectors; the F-RAM/G-RAM
// address is the concatenation {state, input} exactly as in Fig. 5 (the
// address of the memory blocks depends on the input i/ir and the current
// state s).
#pragma once

#include <cstdint>
#include <vector>

#include "core/migration.hpp"
#include "fsm/machine.hpp"

namespace rfsm::rtl {

/// Bit widths and address packing for one (reconfigurable) FSM.
struct FsmEncoding {
  int stateWidth = 1;
  int inputWidth = 1;
  int outputWidth = 1;

  /// Address width of F-RAM and G-RAM.
  int addressWidth() const { return stateWidth + inputWidth; }

  /// {state, input} -> RAM address.
  std::uint64_t packAddress(SymbolId state, SymbolId input) const {
    return (static_cast<std::uint64_t>(state) << inputWidth) |
           static_cast<std::uint64_t>(input);
  }
};

/// Encoding sized for the superset alphabets of a migration (both M and M'
/// must fit in the same RAMs for gradual reconfiguration to work).
FsmEncoding encodingFor(const MigrationContext& context);

/// Encoding sized for a single machine.
FsmEncoding encodingFor(const Machine& machine);

/// State-code assignment strategy.  The RAM-based Fig. 5 design wants the
/// densest code (binary) because the state feeds the RAM *address*; logic
/// implementations often prefer one-hot (simpler next-state terms).
enum class StateEncoding { kBinary, kGray, kOneHot };

/// A concrete code assignment: codes[stateId] = encoded register value.
struct StateCodeMap {
  StateEncoding strategy = StateEncoding::kBinary;
  int width = 1;
  std::vector<std::uint64_t> codes;

  std::uint64_t codeOf(SymbolId state) const {
    return codes[static_cast<std::size_t>(state)];
  }
};

/// Assigns codes to `stateCount` states:
///   binary — code i = i (width ceil(log2 n));
///   gray   — code i = i ^ (i >> 1) (same width, adjacent ids differ in one
///            bit, minimizing register toggles on counter-like machines);
///   one-hot— code i = 1 << i (width n).
StateCodeMap assignStateCodes(int stateCount, StateEncoding strategy);

const char* toString(StateEncoding strategy);

}  // namespace rfsm::rtl
