// Fig. 5 datapath driven by the on-chip JSR sequencer.
//
// Identical to ReconfigurableFsmDatapath except the Reconfigurator block:
// instead of playing a precomputed sequence ROM it holds the compact delta
// list and generates the jump/set/return control words itself — the device
// needs only |Td| table entries from the outside world to morph into M'.
#pragma once

#include "core/migration.hpp"
#include "core/mutable_machine.hpp"
#include "rtl/components.hpp"
#include "rtl/encoding.hpp"
#include "rtl/jsr_sequencer.hpp"
#include "rtl/kernel.hpp"

namespace rfsm::rtl {

/// The self-sequencing variant of the Fig. 5 implementation.
class JsrDatapath {
 public:
  /// Builds the netlist, initializes F-RAM/G-RAM with M, and loads the
  /// delta list of the migration into the sequencer.
  explicit JsrDatapath(const MigrationContext& context);

  const FsmEncoding& encoding() const { return encoding_; }

  /// Requests the JSR run to start at the next clock edge.
  void startReconfiguration() { circuit_.poke(start_, 1); }

  /// One clock cycle with the given external input; returns the output
  /// port value.
  std::uint64_t clock(SymbolId externalInput, bool externalReset = false);

  bool reconfiguring() const { return sequencer_->active(); }

  /// Total cycles one full JSR run takes (1 + 3|deltas| + 2).
  int sequenceLength() const { return sequencer_->sequenceLength(); }

  SymbolId currentState() const {
    return static_cast<SymbolId>(circuit_.peek(stateQ_));
  }
  SymbolId framEntry(SymbolId input, SymbolId state) const;
  SymbolId gramEntry(SymbolId input, SymbolId state) const;

 private:
  const MigrationContext& context_;
  FsmEncoding encoding_;
  Circuit circuit_;
  WireId extInput_, reset_, start_, stateQ_, output_;
  Ram* fram_ = nullptr;
  Ram* gram_ = nullptr;
  JsrSequencer* sequencer_ = nullptr;
};

}  // namespace rfsm::rtl
