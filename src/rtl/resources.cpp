#include "rtl/resources.hpp"

#include <sstream>

#include "rtl/kernel.hpp"

namespace rfsm::rtl {

ResourceEstimate estimateResources(const MigrationContext& context,
                                   const ReconfigurationSequence& sequence) {
  ResourceEstimate e;
  e.encoding = encodingFor(context);

  const std::int64_t words = std::int64_t{1} << e.encoding.addressWidth();
  e.framBits = words * e.encoding.stateWidth;
  e.gramBits = words * e.encoding.outputWidth;
  auto blocksFor = [](std::int64_t bits) {
    return static_cast<int>((bits + Xcv300::kBlockRamBits - 1) /
                            Xcv300::kBlockRamBits);
  };
  e.blockRams = blocksFor(e.framBits) + blocksFor(e.gramBits);

  const int rowWidth = e.encoding.inputWidth + e.encoding.stateWidth +
                       e.encoding.outputWidth + 2;  // + write + reset
  e.sequenceRomBits = static_cast<std::int64_t>(sequence.length()) * rowWidth;

  // LUT model: the sequence ROM maps to 16x1 distributed RAMs (one 4-LUT
  // per 16 bits); the step counter needs ~1 LUT/bit for increment+wrap; the
  // IN-MUX and RST-MUX need one LUT per routed bit; write gating one LUT.
  const int stepBits = bitWidthFor(sequence.length() + 1);
  const int romLuts =
      static_cast<int>((e.sequenceRomBits + 15) / 16);
  const int counterLuts = stepBits;
  const int muxLuts = e.encoding.inputWidth + e.encoding.stateWidth;
  e.luts = romLuts + counterLuts + muxLuts + 1;

  e.flipFlops = e.encoding.stateWidth + stepBits;
  const int sliceByLut =
      (e.luts + Xcv300::kLutsPerSlice - 1) / Xcv300::kLutsPerSlice;
  const int sliceByFf =
      (e.flipFlops + Xcv300::kFlipFlopsPerSlice - 1) /
      Xcv300::kFlipFlopsPerSlice;
  e.slices = sliceByLut > sliceByFf ? sliceByLut : sliceByFf;

  e.fitsXcv300 =
      e.blockRams <= Xcv300::kBlockRams && e.slices <= Xcv300::kSlices;
  return e;
}

std::string describeEstimate(const ResourceEstimate& e) {
  std::ostringstream os;
  os << "encoding: state " << e.encoding.stateWidth << "b, input "
     << e.encoding.inputWidth << "b, output " << e.encoding.outputWidth
     << "b\n";
  os << "F-RAM " << e.framBits << " bits, G-RAM " << e.gramBits
     << " bits -> " << e.blockRams << " BlockRAM(s)\n";
  os << "sequence ROM " << e.sequenceRomBits << " bits, " << e.luts
     << " LUTs, " << e.flipFlops << " FFs -> " << e.slices << " slice(s)\n";
  os << "fits XCV300: " << (e.fitsXcv300 ? "yes" : "no") << "\n";
  return os.str();
}

}  // namespace rfsm::rtl
