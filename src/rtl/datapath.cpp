#include "rtl/datapath.hpp"

namespace rfsm::rtl {

Reconfigurator::Reconfigurator(WireId start, WireId stateQ,
                               WireId externalInput, WireId active, WireId ir,
                               WireId hf, WireId hg, WireId write,
                               WireId recReset)
    : start_(start),
      stateQ_(stateQ),
      externalInput_(externalInput),
      active_(active),
      ir_(ir),
      hf_(hf),
      hg_(hg),
      write_(write),
      recReset_(recReset) {}

void Reconfigurator::setRows(std::vector<EncodedRow> rows) {
  RFSM_CHECK(step_ == 0, "cannot load rows while a sequence is playing");
  rows_ = std::move(rows);
}

void Reconfigurator::setAutoTrigger(std::uint64_t stateValue,
                                    std::uint64_t inputValue) {
  autoTrigger_ = {stateValue, inputValue};
}

void Reconfigurator::evaluate(Circuit& circuit) {
  if (step_ == 0) {
    circuit.poke(active_, 0);
    circuit.poke(ir_, 0);
    circuit.poke(hf_, 0);
    circuit.poke(hg_, 0);
    circuit.poke(write_, 0);
    circuit.poke(recReset_, 0);
    return;
  }
  const EncodedRow& row = rows_[step_ - 1];
  circuit.poke(active_, 1);
  circuit.poke(ir_, row.ir);
  circuit.poke(hf_, row.hf);
  circuit.poke(hg_, row.hg);
  circuit.poke(write_, row.write ? 1 : 0);
  circuit.poke(recReset_, row.reset ? 1 : 0);
}

void Reconfigurator::clockEdge(Circuit& circuit) {
  if (step_ > 0) {
    step_ = step_ < rows_.size() ? step_ + 1 : 0;
    return;
  }
  if (rows_.empty()) return;
  if (circuit.peek(start_) != 0) {
    step_ = 1;
    return;
  }
  if (autoTrigger_.has_value() &&
      circuit.peek(stateQ_) == autoTrigger_->first &&
      circuit.peek(externalInput_) == autoTrigger_->second) {
    step_ = 1;
    autoTrigger_.reset();  // one-shot
  }
}

ReconfigurableFsmDatapath::ReconfigurableFsmDatapath(
    const MigrationContext& context)
    : context_(context), encoding_(encodingFor(context)) {
  const int wi = encoding_.inputWidth;
  const int ws = encoding_.stateWidth;
  const int wo = encoding_.outputWidth;

  // Top-level ports.
  extInput_ = circuit_.addWire(wi, "i");
  reset_ = circuit_.addWire(1, "rst");
  start_ = circuit_.addWire(1, "start");

  // Reconfigurator nets.
  const WireId recActive = circuit_.addWire(1, "rec_active");
  const WireId ir = circuit_.addWire(wi, "ir");
  const WireId hf = circuit_.addWire(ws, "hf");
  const WireId hg = circuit_.addWire(wo, "hg");
  const WireId recWrite = circuit_.addWire(1, "rec_write");
  const WireId recReset = circuit_.addWire(1, "rec_reset");

  // Datapath nets.
  const WireId inMuxOut = circuit_.addWire(wi, "i_int");
  stateQ_ = circuit_.addWire(ws, "s");
  const WireId addr = circuit_.addWire(encoding_.addressWidth(), "addr");
  const WireId fData = circuit_.addWire(ws, "s_next_ram");
  output_ = circuit_.addWire(wo, "o");
  const WireId we = circuit_.addWire(1, "we");
  const WireId forceReset = circuit_.addWire(1, "force_reset");
  const WireId resetVector = circuit_.addWire(ws, "reset_vector");
  const WireId nextState = circuit_.addWire(ws, "s_next");

  // The hardwired reset vector is the terminal state S0' (footnote 4).
  circuit_.poke(resetVector,
                static_cast<std::uint64_t>(context.targetReset()));

  reconfigurator_ = circuit_.add<Reconfigurator>(
      start_, stateQ_, extInput_, recActive, ir, hf, hg, recWrite, recReset);
  // IN-MUX: normal mode selects the external input, reconfiguration mode
  // the Reconfigurator's ir (H_i).
  circuit_.add<Mux2>(recActive, extInput_, ir, inMuxOut);
  // RAM address = {s, i'} (Fig. 5: addresses depend on i/ir and s).
  circuit_.add<Concat>(stateQ_, inMuxOut, wi, addr);
  circuit_.add<And2>(recActive, recWrite, we);
  fram_ = circuit_.add<Ram>(encoding_.addressWidth(), addr, we, hf, fData);
  gram_ = circuit_.add<Ram>(encoding_.addressWidth(), addr, we, hg, output_);
  // RST-MUX: external reset or a reconfiguration reset row forces S0'.
  circuit_.add<Or2>(reset_, recReset, forceReset);
  circuit_.add<Mux2>(forceReset, fData, resetVector, nextState);
  // ST-REG: powers on in M's reset state.
  circuit_.add<Register>(nextState, stateQ_, kNoWire,
                         static_cast<std::uint64_t>(context.sourceReset()));

  // Initialize F-RAM/G-RAM with the source machine M.
  const MutableMachine initial(context);
  for (SymbolId s = 0; s < context.states().size(); ++s) {
    for (SymbolId i = 0; i < context.inputs().size(); ++i) {
      if (!initial.isSpecified(i, s)) continue;
      const auto address =
          static_cast<std::size_t>(encoding_.packAddress(s, i));
      fram_->load(address, static_cast<std::uint64_t>(initial.next(i, s)));
      gram_->load(address, static_cast<std::uint64_t>(initial.output(i, s)));
    }
  }
  circuit_.settle();
}

void ReconfigurableFsmDatapath::loadSequence(
    const ReconfigurationSequence& sequence) {
  std::vector<Reconfigurator::EncodedRow> rows;
  rows.reserve(sequence.rows.size());
  for (const SequenceRow& row : sequence.rows) {
    Reconfigurator::EncodedRow encoded;
    encoded.ir = row.ir == kNoSymbol ? 0 : static_cast<std::uint64_t>(row.ir);
    encoded.hf = row.hf == kNoSymbol ? 0 : static_cast<std::uint64_t>(row.hf);
    encoded.hg = row.hg == kNoSymbol ? 0 : static_cast<std::uint64_t>(row.hg);
    encoded.write = row.write;
    encoded.reset = row.reset;
    rows.push_back(encoded);
  }
  reconfigurator_->setRows(std::move(rows));
}

void ReconfigurableFsmDatapath::startReconfiguration() {
  circuit_.poke(start_, 1);
}

void ReconfigurableFsmDatapath::armSelfTrigger(SymbolId state,
                                               SymbolId input) {
  reconfigurator_->setAutoTrigger(static_cast<std::uint64_t>(state),
                                  static_cast<std::uint64_t>(input));
}

std::uint64_t ReconfigurableFsmDatapath::clock(SymbolId externalInput,
                                               bool externalReset) {
  RFSM_CHECK(context_.inputs().contains(externalInput),
             "external input out of range");
  circuit_.poke(extInput_, static_cast<std::uint64_t>(externalInput));
  circuit_.poke(reset_, externalReset ? 1 : 0);
  circuit_.settle();
  const std::uint64_t out = circuit_.peek(output_);
  circuit_.step();
  circuit_.poke(start_, 0);  // start is a single-cycle pulse
  return out;
}

SymbolId ReconfigurableFsmDatapath::currentState() const {
  return static_cast<SymbolId>(circuit_.peek(stateQ_));
}

SymbolId ReconfigurableFsmDatapath::outputSymbol(std::uint64_t raw) const {
  return static_cast<SymbolId>(raw);
}

SymbolId ReconfigurableFsmDatapath::framEntry(SymbolId input,
                                              SymbolId state) const {
  return static_cast<SymbolId>(fram_->inspect(
      static_cast<std::size_t>(encoding_.packAddress(state, input))));
}

SymbolId ReconfigurableFsmDatapath::gramEntry(SymbolId input,
                                              SymbolId state) const {
  return static_cast<SymbolId>(gram_->inspect(
      static_cast<std::size_t>(encoding_.packAddress(state, input))));
}

void ReconfigurableFsmDatapath::injectFault(SymbolId input, SymbolId state,
                                            int bit) {
  RFSM_CHECK(context_.inputs().contains(input), "fault input out of range");
  RFSM_CHECK(context_.states().contains(state), "fault state out of range");
  RFSM_CHECK(bit >= 0 && bit < faultBitsPerCell(),
             "fault bit outside the cell word");
  const auto address = static_cast<std::size_t>(encoding_.packAddress(state, input));
  if (bit < encoding_.stateWidth)
    fram_->corrupt(address, bit);
  else
    gram_->corrupt(address, bit - encoding_.stateWidth);
}

std::vector<TotalState> ReconfigurableFsmDatapath::integrityScan() const {
  std::vector<TotalState> corrupted;
  for (SymbolId s = 0; s < context_.states().size(); ++s) {
    for (SymbolId i = 0; i < context_.inputs().size(); ++i) {
      const auto address =
          static_cast<std::size_t>(encoding_.packAddress(s, i));
      if (!fram_->parityOk(address) || !gram_->parityOk(address))
        corrupted.push_back(TotalState{i, s});
    }
  }
  return corrupted;
}

}  // namespace rfsm::rtl
