#include "rtl/testbench.hpp"

#include <sstream>

#include "fsm/simulate.hpp"
#include "rtl/encoding.hpp"
#include "util/check.hpp"

namespace rfsm::rtl {
namespace {

std::string binaryLiteral(std::uint64_t value, int width) {
  std::string bits(static_cast<std::size_t>(width), '0');
  for (int b = 0; b < width; ++b)
    if (value & (std::uint64_t{1} << b))
      bits[static_cast<std::size_t>(width - 1 - b)] = '1';
  return "\"" + bits + "\"";
}

}  // namespace

std::string generateTestbench(const MigrationContext& context,
                              const ReconfigurationSequence& sequence,
                              const std::vector<SymbolId>& postWord,
                              const TestbenchOptions& options) {
  const FsmEncoding enc = encodingFor(context);
  const Machine& target = context.targetMachine();

  // Compute expected outputs with the golden model, starting from the
  // terminal state S0' the migration guarantees.
  Simulator golden(target);
  std::vector<SymbolId> expected;
  std::vector<SymbolId> targetInputs;
  for (const SymbolId input : postWord) {
    RFSM_CHECK(context.inputs().contains(input), "post-word input invalid");
    RFSM_CHECK(context.inTargetInputs(input),
               "post-word input must be an input of M'");
    const SymbolId targetInput =
        target.inputs().at(context.inputs().name(input));
    targetInputs.push_back(targetInput);
    expected.push_back(golden.step(targetInput));
  }

  std::ostringstream os;
  os << "-- Self-checking testbench for " << options.entityName << "\n";
  os << "LIBRARY ieee;\n";
  os << "USE ieee.std_logic_1164.ALL;\n\n";
  os << "ENTITY " << options.testbenchName << " IS\nEND "
     << options.testbenchName << ";\n\n";
  os << "ARCHITECTURE sim OF " << options.testbenchName << " IS\n";
  os << "  SIGNAL clk   : std_logic := '0';\n";
  os << "  SIGNAL rst   : std_logic := '0';\n";
  os << "  SIGNAL start : std_logic := '0';\n";
  os << "  SIGNAL i     : std_logic_vector(" << enc.inputWidth - 1
     << " DOWNTO 0) := (OTHERS => '0');\n";
  os << "  SIGNAL o     : std_logic_vector(" << enc.outputWidth - 1
     << " DOWNTO 0);\n";
  os << "  SIGNAL rec   : std_logic;\n";
  os << "BEGIN\n";
  os << "  dut : ENTITY work." << options.entityName << "\n";
  os << "    PORT MAP (clk => clk, rst => rst, start => start, i => i, "
        "o => o, rec => rec);\n\n";
  os << "  clk <= NOT clk AFTER " << options.clockPeriodNs / 2 << " ns;\n\n";
  os << "  stimulus : PROCESS\n";
  os << "  BEGIN\n";
  os << "    -- external reset pulse\n";
  os << "    rst <= '1';\n";
  os << "    WAIT UNTIL rising_edge(clk);\n";
  os << "    rst <= '0';\n";
  os << "    -- launch the reconfiguration sequence\n";
  os << "    start <= '1';\n";
  os << "    WAIT UNTIL rising_edge(clk);\n";
  os << "    start <= '0';\n";
  os << "    -- ride out the " << sequence.length()
     << " reconfiguration cycles (row k is applied at the k-th edge)\n";
  os << "    FOR k IN 1 TO " << sequence.length() << " LOOP\n";
  os << "      WAIT UNTIL rising_edge(clk);\n";
  os << "    END LOOP;\n";
  os << "    ASSERT rec = '0' REPORT \"reconfiguration still active\" "
        "SEVERITY failure;\n";
  for (std::size_t k = 0; k < postWord.size(); ++k) {
    os << "    -- word symbol " << k << ": input "
       << context.inputs().name(postWord[k]) << ", expect output "
       << target.outputs().name(expected[k]) << "\n";
    os << "    i <= " << binaryLiteral(
        static_cast<std::uint64_t>(postWord[k]), enc.inputWidth) << ";\n";
    // Mealy output: sample mid-cycle (combinational, settled), then clock
    // the transition in.
    os << "    WAIT UNTIL falling_edge(clk);\n";
    const SymbolId supersetOutput = context.liftTargetOutput(expected[k]);
    os << "    ASSERT o = " << binaryLiteral(
        static_cast<std::uint64_t>(supersetOutput), enc.outputWidth)
       << " REPORT \"output mismatch at symbol " << k
       << "\" SEVERITY failure;\n";
    os << "    WAIT UNTIL rising_edge(clk);\n";
  }
  os << "    REPORT \"testbench passed\" SEVERITY note;\n";
  os << "    WAIT;\n";
  os << "  END PROCESS stimulus;\n";
  os << "END sim;\n";
  return os.str();
}

}  // namespace rfsm::rtl
