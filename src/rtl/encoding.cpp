#include "rtl/encoding.hpp"

#include "rtl/kernel.hpp"

namespace rfsm::rtl {

FsmEncoding encodingFor(const MigrationContext& context) {
  FsmEncoding e;
  e.stateWidth = bitWidthFor(context.states().size());
  e.inputWidth = bitWidthFor(context.inputs().size());
  e.outputWidth = bitWidthFor(context.outputs().size());
  return e;
}

FsmEncoding encodingFor(const Machine& machine) {
  FsmEncoding e;
  e.stateWidth = bitWidthFor(machine.stateCount());
  e.inputWidth = bitWidthFor(machine.inputCount());
  e.outputWidth = bitWidthFor(machine.outputCount());
  return e;
}

StateCodeMap assignStateCodes(int stateCount, StateEncoding strategy) {
  RFSM_CHECK(stateCount >= 1, "need at least one state");
  StateCodeMap map;
  map.strategy = strategy;
  switch (strategy) {
    case StateEncoding::kBinary:
      map.width = bitWidthFor(stateCount);
      for (int s = 0; s < stateCount; ++s)
        map.codes.push_back(static_cast<std::uint64_t>(s));
      break;
    case StateEncoding::kGray:
      map.width = bitWidthFor(stateCount);
      for (int s = 0; s < stateCount; ++s)
        map.codes.push_back(static_cast<std::uint64_t>(s) ^
                            (static_cast<std::uint64_t>(s) >> 1));
      break;
    case StateEncoding::kOneHot:
      RFSM_CHECK(stateCount <= 64, "one-hot limited to 64 states");
      map.width = stateCount;
      for (int s = 0; s < stateCount; ++s)
        map.codes.push_back(std::uint64_t{1} << s);
      break;
  }
  return map;
}

const char* toString(StateEncoding strategy) {
  switch (strategy) {
    case StateEncoding::kBinary: return "binary";
    case StateEncoding::kGray: return "gray";
    case StateEncoding::kOneHot: return "one-hot";
  }
  return "?";
}

}  // namespace rfsm::rtl
