#include "rtl/vhdl.hpp"

#include <sstream>

#include "core/mutable_machine.hpp"
#include "rtl/encoding.hpp"
#include "rtl/kernel.hpp"

namespace rfsm::rtl {
namespace {

/// `value` as a VHDL binary literal of `width` bits, e.g. "010".
std::string binaryLiteral(std::uint64_t value, int width) {
  std::string bits(static_cast<std::size_t>(width), '0');
  for (int b = 0; b < width; ++b)
    if (value & (std::uint64_t{1} << b))
      bits[static_cast<std::size_t>(width - 1 - b)] = '1';
  return "\"" + bits + "\"";
}

}  // namespace

std::string generateVhdl(const MigrationContext& context,
                         const ReconfigurationSequence& sequence,
                         const VhdlOptions& options) {
  const FsmEncoding enc = encodingFor(context);
  const int wi = enc.inputWidth;
  const int ws = enc.stateWidth;
  const int wo = enc.outputWidth;
  const int wa = enc.addressWidth();
  const int depth = 1 << wa;
  const int steps = sequence.length();
  const int wstep = bitWidthFor(steps + 1);

  std::ostringstream os;
  if (options.emitEncodingComments) {
    os << "-- Generated reconfigurable FSM (Koester/Teich DATE'02, Fig. 5)\n";
    os << "-- migration: " << context.sourceMachine().name() << " -> "
       << context.targetMachine().name() << "\n";
    os << "-- state encoding:";
    for (SymbolId s = 0; s < context.states().size(); ++s)
      os << " " << context.states().name(s) << "=" << s;
    os << "\n-- input encoding:";
    for (SymbolId i = 0; i < context.inputs().size(); ++i)
      os << " " << context.inputs().name(i) << "=" << i;
    os << "\n-- output encoding:";
    for (SymbolId o = 0; o < context.outputs().size(); ++o)
      os << " " << context.outputs().name(o) << "=" << o;
    os << "\n";
  }
  os << "LIBRARY ieee;\n";
  os << "USE ieee.std_logic_1164.ALL;\n";
  os << "USE ieee.numeric_std.ALL;\n\n";

  os << "ENTITY " << options.entityName << " IS\n";
  os << "  PORT (\n";
  os << "    clk   : IN  std_logic;\n";
  os << "    rst   : IN  std_logic;\n";
  os << "    start : IN  std_logic;\n";
  os << "    i     : IN  std_logic_vector(" << wi - 1 << " DOWNTO 0);\n";
  os << "    o     : OUT std_logic_vector(" << wo - 1 << " DOWNTO 0);\n";
  os << "    rec   : OUT std_logic\n";
  os << "  );\n";
  os << "END " << options.entityName << ";\n\n";

  os << "ARCHITECTURE rtl OF " << options.entityName << " IS\n";
  os << "  TYPE f_ram_t IS ARRAY (0 TO " << depth - 1
     << ") OF std_logic_vector(" << ws - 1 << " DOWNTO 0);\n";
  os << "  TYPE g_ram_t IS ARRAY (0 TO " << depth - 1
     << ") OF std_logic_vector(" << wo - 1 << " DOWNTO 0);\n";

  // Initial RAM images: the source machine M (unspecified cells 0).
  const MutableMachine initial(context);
  os << "  SIGNAL f_ram : f_ram_t := (\n";
  for (int a = 0; a < depth; ++a) {
    const SymbolId s = static_cast<SymbolId>(a >> wi);
    const SymbolId in = static_cast<SymbolId>(a & ((1 << wi) - 1));
    std::uint64_t value = 0;
    if (context.states().contains(s) && context.inputs().contains(in) &&
        initial.isSpecified(in, s))
      value = static_cast<std::uint64_t>(initial.next(in, s));
    os << "    " << a << " => " << binaryLiteral(value, ws)
       << (a + 1 < depth ? "," : "") << "\n";
  }
  os << "  );\n";
  os << "  SIGNAL g_ram : g_ram_t := (\n";
  for (int a = 0; a < depth; ++a) {
    const SymbolId s = static_cast<SymbolId>(a >> wi);
    const SymbolId in = static_cast<SymbolId>(a & ((1 << wi) - 1));
    std::uint64_t value = 0;
    if (context.states().contains(s) && context.inputs().contains(in) &&
        initial.isSpecified(in, s))
      value = static_cast<std::uint64_t>(initial.output(in, s));
    os << "    " << a << " => " << binaryLiteral(value, wo)
       << (a + 1 < depth ? "," : "") << "\n";
  }
  os << "  );\n\n";

  // Reconfigurator ROM: ir & hf & hg & write & reset per row.
  const int rowWidth = wi + ws + wo + 2;
  os << "  TYPE seq_rom_t IS ARRAY (0 TO " << (steps > 0 ? steps - 1 : 0)
     << ") OF std_logic_vector(" << rowWidth - 1 << " DOWNTO 0);\n";
  os << "  CONSTANT seq_rom : seq_rom_t := (\n";
  if (steps == 0) {
    os << "    0 => (OTHERS => '0')\n";
  } else {
    for (int k = 0; k < steps; ++k) {
      const SequenceRow& row = sequence.rows[static_cast<std::size_t>(k)];
      std::uint64_t word = 0;
      word |= static_cast<std::uint64_t>(row.reset ? 1 : 0);
      word |= static_cast<std::uint64_t>(row.write ? 1 : 0) << 1;
      word |= (row.hg == kNoSymbol ? 0u
                                   : static_cast<std::uint64_t>(row.hg))
              << 2;
      word |= (row.hf == kNoSymbol ? 0u
                                   : static_cast<std::uint64_t>(row.hf))
              << (2 + wo);
      word |= (row.ir == kNoSymbol ? 0u
                                   : static_cast<std::uint64_t>(row.ir))
              << (2 + wo + ws);
      os << "    " << k << " => " << binaryLiteral(word, rowWidth)
         << (k + 1 < steps ? "," : "") << "\n";
    }
  }
  os << "  );\n\n";

  os << "  SIGNAL state_q   : std_logic_vector(" << ws - 1
     << " DOWNTO 0) := "
     << binaryLiteral(static_cast<std::uint64_t>(context.sourceReset()), ws)
     << ";\n";
  os << "  SIGNAL step_q    : unsigned(" << wstep - 1
     << " DOWNTO 0) := (OTHERS => '0');\n";
  os << "  SIGNAL row       : std_logic_vector(" << rowWidth - 1
     << " DOWNTO 0);\n";
  os << "  SIGNAL rec_active: std_logic;\n";
  os << "  SIGNAL ir        : std_logic_vector(" << wi - 1
     << " DOWNTO 0);\n";
  os << "  SIGNAL hf        : std_logic_vector(" << ws - 1
     << " DOWNTO 0);\n";
  os << "  SIGNAL hg        : std_logic_vector(" << wo - 1
     << " DOWNTO 0);\n";
  os << "  SIGNAL row_write : std_logic;\n";
  os << "  SIGNAL row_reset : std_logic;\n";
  os << "  SIGNAL i_int     : std_logic_vector(" << wi - 1
     << " DOWNTO 0);\n";
  os << "  SIGNAL addr      : unsigned(" << wa - 1 << " DOWNTO 0);\n";
  os << "  SIGNAL f_data    : std_logic_vector(" << ws - 1
     << " DOWNTO 0);\n";
  os << "  SIGNAL we        : std_logic;\n";
  os << "  SIGNAL force_rst : std_logic;\n";
  os << "  CONSTANT reset_vector : std_logic_vector(" << ws - 1
     << " DOWNTO 0) := "
     << binaryLiteral(static_cast<std::uint64_t>(context.targetReset()), ws)
     << ";\n";
  os << "BEGIN\n";
  os << "  rec_active <= '1' WHEN step_q /= 0 ELSE '0';\n";
  os << "  row <= seq_rom(to_integer(step_q - 1)) WHEN rec_active = '1' "
        "ELSE (OTHERS => '0');\n";
  os << "  ir        <= row(" << rowWidth - 1 << " DOWNTO " << 2 + wo + ws
     << ");\n";
  os << "  hf        <= row(" << 2 + wo + ws - 1 << " DOWNTO " << 2 + wo
     << ");\n";
  os << "  hg        <= row(" << 2 + wo - 1 << " DOWNTO 2);\n";
  os << "  row_write <= row(1);\n";
  os << "  row_reset <= row(0);\n";
  os << "  -- IN-MUX (H_i): external input in normal mode, ir during "
        "reconfiguration\n";
  os << "  i_int <= ir WHEN rec_active = '1' ELSE i;\n";
  os << "  addr  <= unsigned(state_q & i_int);\n";
  os << "  we    <= rec_active AND row_write;\n";
  os << "  -- WRITE_FIRST read-during-write: the machine takes the "
        "transition it writes\n";
  os << "  f_data <= hf WHEN we = '1' ELSE f_ram(to_integer(addr));\n";
  os << "  o      <= hg WHEN we = '1' ELSE g_ram(to_integer(addr));\n";
  os << "  force_rst <= rst OR (rec_active AND row_reset);\n";
  os << "  rec <= rec_active;\n\n";
  os << "  seq : PROCESS (clk)\n";
  os << "  BEGIN\n";
  os << "    IF rising_edge(clk) THEN\n";
  os << "      -- F-RAM / G-RAM synchronous write ports\n";
  os << "      IF we = '1' THEN\n";
  os << "        f_ram(to_integer(addr)) <= hf;\n";
  os << "        g_ram(to_integer(addr)) <= hg;\n";
  os << "      END IF;\n";
  os << "      -- ST-REG behind the RST-MUX\n";
  os << "      IF force_rst = '1' THEN\n";
  os << "        state_q <= reset_vector;\n";
  os << "      ELSE\n";
  os << "        state_q <= f_data;\n";
  os << "      END IF;\n";
  os << "      -- Reconfigurator step counter\n";
  os << "      IF rec_active = '1' THEN\n";
  os << "        IF step_q = " << steps << " THEN\n";
  os << "          step_q <= (OTHERS => '0');\n";
  os << "        ELSE\n";
  os << "          step_q <= step_q + 1;\n";
  os << "        END IF;\n";
  os << "      ELSIF start = '1' THEN\n";
  os << "        step_q <= to_unsigned(1, " << wstep << ");\n";
  os << "      END IF;\n";
  os << "    END IF;\n";
  os << "  END PROCESS seq;\n";
  os << "END rtl;\n";
  return os.str();
}

}  // namespace rfsm::rtl
