// VHDL generation for the Fig. 5 datapath.
//
// Emits one self-contained synthesizable entity: F-RAM/G-RAM as inferred
// block RAM with initialized contents (the source machine M), the
// Reconfigurator as a sequence ROM plus step counter, and the IN-MUX /
// RST-MUX / ST-REG structure.  The paper points to [7] for the automated
// mapping; this emitter is our realization of that flow's output stage.
#pragma once

#include <string>

#include "core/migration.hpp"
#include "core/sequence.hpp"

namespace rfsm::rtl {

/// Options for the emitter.
struct VhdlOptions {
  std::string entityName = "reconfigurable_fsm";
  /// Emit a comment header with alphabets and the symbol encoding map.
  bool emitEncodingComments = true;
};

/// Generates the VHDL source for the migration's datapath with `sequence`
/// preloaded in the Reconfigurator ROM.
std::string generateVhdl(const MigrationContext& context,
                         const ReconfigurationSequence& sequence,
                         const VhdlOptions& options = {});

}  // namespace rfsm::rtl
