#include "rtl/jsr_sequencer.hpp"

namespace rfsm::rtl {

JsrSequencer::JsrSequencer(WireId start, WireId active, WireId ir, WireId hf,
                           WireId hg, WireId write, WireId recReset,
                           std::uint64_t tempInput,
                           std::uint64_t tempTargetHf,
                           std::uint64_t tempTargetHg)
    : start_(start),
      active_(active),
      ir_(ir),
      hf_(hf),
      hg_(hg),
      write_(write),
      recReset_(recReset),
      tempInput_(tempInput),
      tempTargetHf_(tempTargetHf),
      tempTargetHg_(tempTargetHg) {}

void JsrSequencer::setDeltas(std::vector<DeltaEntry> deltas) {
  RFSM_CHECK(phase_ == Phase::kIdle,
             "cannot load deltas while a run is active");
  deltas_ = std::move(deltas);
}

void JsrSequencer::evaluate(Circuit& circuit) {
  // Defaults: inactive.
  std::uint64_t active = phase_ != Phase::kIdle;
  std::uint64_t ir = 0, hf = 0, hg = 0, write = 0, reset = 0;
  switch (phase_) {
    case Phase::kIdle:
      break;
    case Phase::kLeadReset:
    case Phase::kReturn:
    case Phase::kTailReset:
      reset = 1;
      break;
    case Phase::kJump:
      // Temporary transition (i0, S0') -> delta source.
      ir = tempInput_;
      hf = deltas_[index_].source;
      hg = tempTargetHg_;  // output value is a don't care
      write = 1;
      break;
    case Phase::kSet:
      ir = deltas_[index_].ir;
      hf = deltas_[index_].hf;
      hg = deltas_[index_].hg;
      write = 1;
      break;
    case Phase::kTail:
      // Repair the temporary cell to its final M' contents.
      ir = tempInput_;
      hf = tempTargetHf_;
      hg = tempTargetHg_;
      write = 1;
      break;
  }
  circuit.poke(active_, active);
  circuit.poke(ir_, ir);
  circuit.poke(hf_, hf);
  circuit.poke(hg_, hg);
  circuit.poke(write_, write);
  circuit.poke(recReset_, reset);
}

void JsrSequencer::clockEdge(Circuit& circuit) {
  switch (phase_) {
    case Phase::kIdle:
      if (circuit.peek(start_) != 0) {
        index_ = 0;
        phase_ = Phase::kLeadReset;
      }
      break;
    case Phase::kLeadReset:
      phase_ = deltas_.empty() ? Phase::kTail : Phase::kJump;
      break;
    case Phase::kJump:
      phase_ = Phase::kSet;
      break;
    case Phase::kSet:
      phase_ = Phase::kReturn;
      break;
    case Phase::kReturn:
      ++index_;
      phase_ = index_ < deltas_.size() ? Phase::kJump : Phase::kTail;
      break;
    case Phase::kTail:
      phase_ = Phase::kTailReset;
      break;
    case Phase::kTailReset:
      phase_ = Phase::kIdle;
      break;
  }
}

std::vector<DeltaEntry> deltaListFor(const MigrationContext& context,
                                     SymbolId tempInput) {
  const SymbolId i0 = tempInput == kNoSymbol ? context.liftTargetInput(0)
                                             : tempInput;
  RFSM_CHECK(context.inTargetInputs(i0),
             "temporary input must be an input of M'");
  const SymbolId s0 = context.targetReset();
  std::vector<DeltaEntry> list;
  for (const Transition& td : context.deltaTransitions()) {
    if (td.input == i0 && td.from == s0) continue;  // fixed by the tail
    list.push_back(DeltaEntry{static_cast<std::uint64_t>(td.input),
                              static_cast<std::uint64_t>(td.to),
                              static_cast<std::uint64_t>(td.output),
                              static_cast<std::uint64_t>(td.from)});
  }
  return list;
}

}  // namespace rfsm::rtl
