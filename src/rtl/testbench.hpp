// VHDL testbench generation for the Fig. 5 entity.
//
// Emits a self-checking testbench around the entity produced by
// rtl::generateVhdl: it drives the start pulse, idles through the
// reconfiguration, then plays an input word and asserts the expected
// outputs (computed with the golden model).  Together with the entity this
// makes the generated design verifiable in any VHDL simulator, closing the
// loop the paper delegates to [7].
#pragma once

#include <string>
#include <vector>

#include "core/migration.hpp"
#include "core/sequence.hpp"
#include "fsm/machine.hpp"

namespace rfsm::rtl {

/// Options for the testbench emitter.
struct TestbenchOptions {
  std::string entityName = "reconfigurable_fsm";
  std::string testbenchName = "reconfigurable_fsm_tb";
  /// Clock period in ns.
  int clockPeriodNs = 10;
};

/// Generates a self-checking testbench: after reset, starts the loaded
/// reconfiguration sequence, waits it out, then applies `postWord` (target
/// machine input ids) and asserts the outputs the migrated machine must
/// produce.  Throws ContractError when `postWord` contains invalid ids.
std::string generateTestbench(const MigrationContext& context,
                              const ReconfigurationSequence& sequence,
                              const std::vector<SymbolId>& postWord,
                              const TestbenchOptions& options = {});

}  // namespace rfsm::rtl
