// VCD (Value Change Dump, IEEE 1364) waveform recording for the RTL kernel.
//
// Attach a VcdRecorder to a Circuit, sample once per clock cycle, and dump
// the trace for any standard waveform viewer (GTKWave etc.).  The recorder
// stores changes in memory; toString() renders the file.  Used by the
// hardware example to make the Fig. 5 reconfiguration visible cycle by
// cycle.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rtl/kernel.hpp"

namespace rfsm::rtl {

/// Records selected wires of a Circuit into VCD.
class VcdRecorder {
 public:
  /// Records the given wires (empty = every wire of the circuit at the
  /// time of construction).
  VcdRecorder(const Circuit& circuit, std::vector<WireId> wires);

  /// Samples the current wire values at time `time` (typically the cycle
  /// count); only changes since the previous sample are stored.  Times must
  /// be non-decreasing.
  void sample(std::uint64_t time);

  /// Number of samples taken.
  int sampleCount() const { return samples_; }

  /// Renders the complete VCD file (header + value changes).
  std::string toString() const;

 private:
  struct Change {
    std::uint64_t time;
    std::size_t wireIndex;  // into wires_
    std::uint64_t value;
  };

  const Circuit& circuit_;
  std::vector<WireId> wires_;
  std::vector<std::uint64_t> lastValue_;
  std::vector<bool> everSampled_;
  std::vector<Change> changes_;
  std::uint64_t lastTime_ = 0;
  int samples_ = 0;
};

/// VCD identifier code for the n-th variable ("!", "\"", ..., printable
/// ASCII run-length encoding per the spec).
std::string vcdIdentifier(std::size_t index);

/// Binary VCD literal for a value of the given width, e.g. "b101".
std::string vcdBinary(std::uint64_t value, int width);

}  // namespace rfsm::rtl
