// A small cycle-accurate RTL simulation kernel.
//
// The paper's implementation section (Fig. 5) is an architecture, not an
// algorithm, so we reproduce it as a bit-true, cycle-true netlist simulation
// (DESIGN.md substitution table: simulator in place of the Virtex XCV300).
//
// Model: a Circuit owns wires (width-masked 64-bit values) and components.
// Each clock cycle is settle (combinational evaluation to fixpoint) ->
// clockEdge (sequential state capture) -> settle.  Combinational loops are
// detected and rejected.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace rfsm::rtl {

/// Dense handle of a wire within a Circuit.
using WireId = int;

/// Sentinel for optional wires.
inline constexpr WireId kNoWire = -1;

class Circuit;

/// Base class of all netlist components.
class Component {
 public:
  virtual ~Component() = default;
  /// Combinational behaviour: read input wires, drive output wires.  Called
  /// repeatedly until the circuit settles; must be idempotent.
  virtual void evaluate(Circuit& circuit) = 0;
  /// Sequential behaviour at the rising clock edge (default: none).
  virtual void clockEdge(Circuit& circuit);
};

/// Thrown when the netlist cannot settle (combinational loop).
class RtlError : public Error {
 public:
  explicit RtlError(const std::string& what) : Error(what) {}
};

/// A flat netlist with an implicit single clock.
class Circuit {
 public:
  Circuit() = default;
  Circuit(const Circuit&) = delete;
  Circuit& operator=(const Circuit&) = delete;

  /// Adds a wire of `width` bits (1..64); initial value 0.
  WireId addWire(int width, std::string name);

  int wireWidth(WireId wire) const;
  const std::string& wireName(WireId wire) const;
  int wireCount() const { return static_cast<int>(wires_.size()); }

  /// Drives a wire from outside the netlist (top-level input).
  void poke(WireId wire, std::uint64_t value);

  /// Reads a wire's current value.
  std::uint64_t peek(WireId wire) const;

  /// Adds and owns a component; returns a non-owning pointer.
  template <typename T, typename... Args>
  T* add(Args&&... args) {
    auto component = std::make_unique<T>(std::forward<Args>(args)...);
    T* raw = component.get();
    components_.push_back(std::move(component));
    return raw;
  }

  /// Combinational settle: evaluates all components until no wire changes.
  /// Throws RtlError after too many passes (combinational loop).
  void settle();

  /// One full clock cycle: settle, rising edge, settle.
  void step();

  /// Number of step() calls so far.
  std::int64_t cycleCount() const { return cycles_; }

 private:
  struct WireInfo {
    int width = 1;
    std::uint64_t value = 0;
    std::string name;
  };

  std::uint64_t mask(WireId wire) const;

  std::vector<WireInfo> wires_;
  std::vector<std::unique_ptr<Component>> components_;
  std::int64_t cycles_ = 0;
};

/// Width (bits) needed to encode `count` distinct values; at least 1.
int bitWidthFor(int count);

}  // namespace rfsm::rtl
