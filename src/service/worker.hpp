// The rfsmd worker process: one shard at a time, crash-disposable.
//
// A worker is deliberately stateless between requests — everything it needs
// to plan a shard rides in the request frame, so the supervisor can SIGKILL
// one mid-shard and hand the identical request to a fresh worker without
// any recovery protocol.  The worker's only obligations are: answer one
// response frame per request frame on ipc::kWorkerChannelFd, honour the
// shard deadline cooperatively (reply kDeadlineExceeded instead of being
// shot), and exit cleanly on EOF (the supervisor closed the channel).
#pragma once

namespace rfsm::service {

/// Serves shard requests on ipc::kWorkerChannelFd until EOF.  Returns the
/// process exit code (0 on clean shutdown).
int runWorker();

}  // namespace rfsm::service
