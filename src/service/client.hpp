// Client side of the planner service, with graceful degradation.
//
// planBatch is what `rfsmc plan --server` calls: it tries the rfsmd at
// `socketPath`, and when the service cannot take the work — no socket,
// server gone mid-request, or the pool reported UNAVAILABLE / shed the
// request — it *degrades* to in-process planning and still returns correct
// results (logged on stderr, counted in service.degraded; stdout stays
// byte-identical to a healthy server run, which is how CI asserts the
// fallback is lossless).  DEADLINE_EXCEEDED and FAILED do not degrade:
// the former is the caller's budget expiring (replanning would blow it
// further), the latter is a deterministic planner defect that would fail
// identically in-process.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "service/protocol.hpp"
#include "util/ipc.hpp"

namespace rfsm::service {

struct ClientOptions {
  /// Server endpoint in ipc::parseEndpoint syntax (Unix path or
  /// tcp:host:port).
  std::string socketPath;
  /// Latency budget; 0 = none.
  std::int64_t deadlineMs = 0;
  /// Parallelism of a degraded in-process run.
  int jobs = 1;
};

/// One framed request/response exchange with an endpoint — the single
/// connect+frame path under planBatch, probeHealth, and the fabric
/// (src/service/fabric.hpp), so transport behaviour cannot drift between
/// them.  `timeoutMs` bounds the connect; the read is bounded by `cancel`
/// when given (hedged requests cancel losers through it), else by
/// `timeoutMs`.  Throws ipc::IpcError on connect/write/transport failure;
/// nullopt when the server hung up or the wait expired.
std::optional<std::string> exchangeEndpoint(const ipc::Endpoint& endpoint,
                                            const std::string& request,
                                            std::int64_t timeoutMs,
                                            const CancelToken* cancel = nullptr);

/// Stable, human-free degradation reason tokens: stderr notices print these
/// (CI greps them), the underlying detail goes to traces.
inline constexpr const char* kReasonUnreachable = "unreachable";
inline constexpr const char* kReasonUnhealthy = "unhealthy";
inline constexpr const char* kReasonOverloaded = "overloaded";
inline constexpr const char* kReasonMalformed = "malformed response";

struct ClientResult {
  WorkResult::Status status = WorkResult::Status::kFailed;
  std::vector<std::string> programs;  ///< one text per instance when kOk
  std::string error;
  bool degraded = false;   ///< planned in-process after a service failure
  std::uint64_t retries = 0;  ///< shard retries the server reported
  std::uint64_t crashes = 0;  ///< worker crashes the server reported
  /// Instances served from a plan-result cache (the server's on the service
  /// path, this process's on the local/degraded path); 0 when disabled.
  std::uint64_t cacheHits = 0;
};

/// Plans `spec` via the server, degrading to in-process planning when the
/// service is unavailable.  Diagnostics (degradation notices, server
/// errors) go to `err`; nothing is written to stdout.
ClientResult planBatch(const BatchSpec& spec, const ClientOptions& options,
                       std::ostream& err);

/// Plans `spec` purely in-process (the local mode of `rfsmc plan`, and the
/// degraded path of planBatch).  Honours `deadlineMs` cooperatively.
ClientResult planLocal(const BatchSpec& spec, std::int64_t deadlineMs,
                       int jobs);

/// Health probe; nullopt when the server cannot be reached or does not
/// answer within `timeoutMs`.
std::optional<HealthResponse> probeHealth(const std::string& socketPath,
                                          std::int64_t timeoutMs = 5000);
std::optional<HealthResponse> probeHealth(const ipc::Endpoint& endpoint,
                                          std::int64_t timeoutMs = 5000);

/// Version/feature handshake probe; nullopt when the server cannot be
/// reached, does not answer, or answers garbage.  A non-accepted response
/// (version mismatch) comes back as a value — the caller decides whether
/// to degrade or refuse.
std::optional<HandshakeResponse> probeHandshake(const ipc::Endpoint& endpoint,
                                                std::int64_t timeoutMs = 5000);

}  // namespace rfsm::service
