#include "service/repl.hpp"

#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>

#include "util/breaker.hpp"
#include "util/chaos.hpp"
#include "util/deadline.hpp"
#include "util/log.hpp"
#include "util/metrics.hpp"

namespace rfsm::service {
namespace {

std::uint64_t fnv64Mix(std::string_view text, std::uint64_t tail) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  const auto mix = [&h](unsigned char byte) {
    h ^= byte;
    h *= 0x100000001b3ull;
  };
  for (const char c : text) mix(static_cast<unsigned char>(c));
  for (int byte = 0; byte < 8; ++byte)
    mix(static_cast<unsigned char>((tail >> (byte * 8)) & 0xffu));
  return h;
}

}  // namespace

ReplAck replAckFromString(const std::string& name) {
  if (name == "quorum") return ReplAck::kQuorum;
  if (name == "async") return ReplAck::kAsync;
  throw Error("unknown replication ack mode '" + name + "' (quorum|async)");
}

const char* toString(ReplAck ack) {
  switch (ack) {
    case ReplAck::kQuorum: return "quorum";
    case ReplAck::kAsync: return "async";
  }
  return "quorum";
}

std::chrono::milliseconds backoffDelay(std::uint32_t attempt,
                                       std::string_view salt) {
  std::int64_t delayMs = 20;
  for (std::uint32_t k = 0; k < attempt && delayMs < kReconnectBackoffCap.count();
       ++k)
    delayMs *= 2;
  delayMs = std::min<std::int64_t>(delayMs, kReconnectBackoffCap.count());
  const std::int64_t jitterSpan = delayMs / 4 + 1;
  const std::int64_t jitterMs = static_cast<std::int64_t>(
      fnv64Mix(salt, attempt) % static_cast<std::uint64_t>(jitterSpan));
  return std::chrono::milliseconds(delayMs + jitterMs);
}

/// One standby endpoint: a serialized connection, a health breaker (stats
/// visibility + fast-fail while the standby is down), and — in async mode —
/// a bounded in-order queue drained by a dedicated worker.
struct Replicator::Link {
  explicit Link(ipc::Endpoint e)
      : endpoint(std::move(e)),
        registration("repl:" + endpoint.describe(), &breaker) {}

  ipc::Endpoint endpoint;
  CircuitBreaker breaker;
  BreakerRegistration registration;

  /// Serializes connection use (quorum ships may race the stats path).
  std::mutex ioMutex;
  ipc::Fd conn;

  /// Async queue, in ship order; timestamps feed the lag gauge.
  struct Item {
    SessionReplAppendRequest request;
    std::chrono::steady_clock::time_point enqueued;
  };
  std::mutex queueMutex;
  std::condition_variable queueCv;
  std::deque<Item> queue;
  bool stopping = false;
  std::thread worker;
};

Replicator::Replicator(ReplicatorOptions options, ResyncFn resync,
                       FenceFn fence)
    : options_(std::move(options)),
      resync_(std::move(resync)),
      fence_(std::move(fence)) {
  ipc::ignoreSigpipe();
  for (const ipc::Endpoint& endpoint : options_.replicas)
    links_.push_back(std::make_unique<Link>(endpoint));
  if (options_.ack == ReplAck::kAsync) {
    for (auto& link : links_)
      link->worker = std::thread([this, raw = link.get()] {
        workerLoop(*raw);
      });
  }
}

Replicator::~Replicator() {
  for (auto& link : links_) {
    {
      std::lock_guard lock(link->queueMutex);
      link->stopping = true;
    }
    link->queueCv.notify_all();
  }
  for (auto& link : links_)
    if (link->worker.joinable()) link->worker.join();
}

std::size_t Replicator::replicaCount() const { return links_.size(); }

std::string Replicator::exchange(Link& link, const std::string& payload) {
  // The whole exchange runs under the repl-link chaos tag, so the
  // repl-light/repl-storm profiles disturb exactly this traffic.
  chaos::ScopedReplLink replTag;
  const auto deadline = std::chrono::steady_clock::now() + options_.retryFor;
  std::uint32_t attempt = 0;
  std::string lastError = "not connected";
  for (;;) {
    {
      // Shutdown must interrupt the retry ladder: ~Replicator joins the
      // async workers, and a worker mid-retryFor against a dead standby
      // would otherwise stall the join for the whole budget.
      std::lock_guard stop(link.queueMutex);
      if (link.stopping) throw ipc::IpcError("replicator stopping");
    }
    try {
      if (!link.conn.valid())
        link.conn = ipc::connectEndpoint(link.endpoint, 1000);
      else if (ipc::pendingInput(link.conn.get())) {
        // A stale queued frame (duplicate from a chaos-injected resend)
        // would pair with this request: reconnect instead of misparing.
        lastError = "repl link desynchronized (unexpected pending frame)";
        link.conn.reset();
        link.conn = ipc::connectEndpoint(link.endpoint, 1000);
      }
      ipc::writeFrame(link.conn.get(), payload);
      CancelToken token(options_.readTimeout);
      std::string reply;
      const ipc::ReadStatus status =
          ipc::readFrame(link.conn.get(), reply, &token);
      if (status == ipc::ReadStatus::kOk) return reply;
      lastError = status == ipc::ReadStatus::kEof ? "connection closed"
                                                  : "reply timeout";
      link.conn.reset();
    } catch (const ipc::IpcError& error) {
      lastError = error.what();
      link.conn.reset();
    }
    // Resending is safe: standbys answer duplicate sequence numbers
    // idempotently, exactly like the client-facing session path.
    const auto delay = backoffDelay(attempt++, link.endpoint.describe());
    if (std::chrono::steady_clock::now() + delay >= deadline)
      throw ipc::IpcError("standby " + link.endpoint.describe() +
                          " unreachable: " + lastError);
    // Interruptible backoff: the destructor's stop flag cuts the sleep
    // short instead of serving it out against a standby that is gone.
    std::unique_lock stop(link.queueMutex);
    if (link.queueCv.wait_for(stop, delay, [&] { return link.stopping; }))
      throw ipc::IpcError("replicator stopping");
  }
}

ShipResult Replicator::shipOne(Link& link,
                               const SessionReplAppendRequest& request) {
  static metrics::Counter& shipped =
      metrics::counter(metrics::kServiceReplRecordsShipped);
  static metrics::Counter& snapshots =
      metrics::counter(metrics::kServiceReplSnapshotsShipped);
  static metrics::Counter& errors =
      metrics::counter(metrics::kServiceReplShipErrors);
  ShipResult result;
  std::lock_guard io(link.ioMutex);
  if (!link.breaker.allowRequest()) {
    errors.add();
    result.error = "standby " + link.endpoint.describe() + " breaker open";
    return result;
  }
  try {
    SessionReplAppendResponse response = decodeSessionReplAppendResponse(
        exchange(link, encodeSessionReplAppendRequest(request)));
    if (response.status == SessionStatus::kBadSequence) {
      // The standby is gapped (fresh, wiped, or behind an async drop):
      // install the current snapshot, replay the tail, retry the record.
      const std::optional<ResyncBundle> bundle =
          resync_ ? resync_(request.tenant, request.name) : std::nullopt;
      if (bundle.has_value()) {
        if (!bundle->snapshot.snapshot.empty()) {
          const SessionReplSnapshotResponse installed =
              decodeSessionReplSnapshotResponse(exchange(
                  link, encodeSessionReplSnapshotRequest(bundle->snapshot)));
          if (installed.status == SessionStatus::kOk) snapshots.add();
        }
        for (const SessionReplAppendRequest& rec : bundle->tail) {
          if (rec.seq >= request.seq) break;  // the retry below ships it
          decodeSessionReplAppendResponse(
              exchange(link, encodeSessionReplAppendRequest(rec)));
        }
        response = decodeSessionReplAppendResponse(
            exchange(link, encodeSessionReplAppendRequest(request)));
      }
    }
    link.breaker.recordSuccess();
    switch (response.status) {
      case SessionStatus::kOk:
      case SessionStatus::kAccepted:
        shipped.add();
        result.ok = true;
        break;
      case SessionStatus::kStaleEpoch:
        result.staleEpoch = true;
        result.standbyEpoch = response.epoch;
        result.error = response.error;
        if (fence_) fence_(request.tenant, request.name, response.epoch);
        break;
      default:
        errors.add();
        result.error = "standby " + link.endpoint.describe() + " refused: " +
                       std::string(toString(response.status)) +
                       (response.error.empty() ? "" : " (" + response.error +
                                                          ")");
        break;
    }
  } catch (const ipc::IpcError& error) {
    link.breaker.recordFailure();
    errors.add();
    result.error = error.what();
  }
  return result;
}

ShipResult Replicator::shipSync(const SessionReplAppendRequest& request) {
  ShipResult aggregate;
  aggregate.ok = true;
  for (auto& link : links_) {
    const ShipResult one = shipOne(*link, request);
    if (one.staleEpoch) return one;  // fencing beats everything
    if (!one.ok) {
      aggregate.ok = false;
      if (aggregate.error.empty()) aggregate.error = one.error;
    }
  }
  return aggregate;
}

bool Replicator::shipAsync(const SessionReplAppendRequest& request) {
  const auto now = std::chrono::steady_clock::now();
  bool enqueuedAll = true;
  for (auto& link : links_) {
    std::lock_guard lock(link->queueMutex);
    if (link->queue.size() >= options_.maxQueue) {
      enqueuedAll = false;  // the standby gap-detects and resyncs later
      continue;
    }
    link->queue.push_back(Link::Item{request, now});
    link->queueCv.notify_one();
  }
  return enqueuedAll;
}

void Replicator::workerLoop(Link& link) {
  for (;;) {
    Link::Item item;
    {
      std::unique_lock lock(link.queueMutex);
      link.queueCv.wait(lock,
                        [&] { return link.stopping || !link.queue.empty(); });
      if (link.queue.empty()) return;  // stopping and drained
      item = link.queue.front();
      link.queue.pop_front();
    }
    const ShipResult result = shipOne(link, item.request);
    if (!result.ok && !result.staleEpoch) {
      // Keep order: push the record back and retry after a breather —
      // a dead standby shows up as lag, not as silent divergence.  Unless
      // we are shutting down, in which case the queue is abandoned (the
      // standby resyncs from the next primary incarnation).
      std::unique_lock lock(link.queueMutex);
      if (link.stopping) return;
      link.queue.push_front(item);
      link.queueCv.wait_for(lock, backoffDelay(3, link.endpoint.describe()),
                            [&] { return link.stopping; });
      if (link.stopping) return;
    }
  }
}

std::uint64_t Replicator::lagRecords() const {
  std::uint64_t total = 0;
  for (const auto& link : links_) {
    std::lock_guard lock(link->queueMutex);
    total += link->queue.size();
  }
  return total;
}

std::int64_t Replicator::lagMs() const {
  const auto now = std::chrono::steady_clock::now();
  std::int64_t worst = 0;
  for (const auto& link : links_) {
    std::lock_guard lock(link->queueMutex);
    if (link->queue.empty()) continue;
    const auto age = std::chrono::duration_cast<std::chrono::milliseconds>(
                         now - link->queue.front().enqueued)
                         .count();
    worst = std::max<std::int64_t>(worst, age);
  }
  return worst;
}

void Replicator::refreshGauges() const {
  metrics::gauge(metrics::kServiceReplLagRecords)
      .set(static_cast<std::int64_t>(lagRecords()));
  metrics::gauge(metrics::kServiceReplLagMs).set(lagMs());
}

}  // namespace rfsm::service
