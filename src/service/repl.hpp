// Primary -> standby WAL shipping for streaming sessions.
//
// The replication plane leans on the same determinism that makes crash
// recovery byte-identical (service/session.hpp): a session's transcript is
// a pure function of (open config, accepted mutation sequence), so
// replicating a session is nothing more than shipping the accepted
// MutationRecords in order.  A standby that journals and warm-replays the
// same records holds the same machine, the same programs, the same
// transcript — promotion is O(un-applied tail), not O(history).
//
// Every shipped frame carries the primary's session *epoch*, a monotone
// counter bumped on promotion.  The fencing rule is one comparison: a
// receiver whose epoch is higher answers kStaleEpoch and the sender must
// stop acking clients for that session (FenceFn).  That single rule is
// what makes failover safe against the classic split-brain: a deposed
// primary that comes back and keeps streaming is refused, counted
// (service.stale_epoch_rejected), and self-fences.
//
// Two durability modes (`--repl-ack`):
//
//   quorum  the record reaches *every* standby's journal durably before
//           the client is acked — an acked mutation survives the loss of
//           the primary, full stop.  Ships synchronously on the mutate
//           path, before the primary's own WAL append.
//   async   the primary acks after its local WAL append and ships from a
//           bounded in-order queue per replica; the loss window is the
//           queue (service.repl_lag_records / service.repl_lag_ms gauge
//           it).  A dropped or lost record surfaces on the standby as a
//           sequence gap, which the shipper heals with a snapshot install
//           plus tail replay (ResyncFn).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "service/protocol.hpp"
#include "util/ipc.hpp"

namespace rfsm::service {

/// Ack durability of the replication plane (`--repl-ack quorum|async`).
enum class ReplAck { kQuorum, kAsync };

/// Parses "quorum" / "async"; throws Error on anything else.
ReplAck replAckFromString(const std::string& name);
const char* toString(ReplAck ack);

/// Upper bound of the reconnect backoff ladder shared by the replicator
/// and SessionStream (pre-jitter).
inline constexpr std::chrono::milliseconds kReconnectBackoffCap{1000};

/// The retry delay before reconnect attempt `attempt` (0-based): a doubling
/// ladder from 20ms capped at kReconnectBackoffCap, plus a deterministic
/// jitter in [0, delay/4] derived from (salt, attempt) — so a fleet of
/// clients reconnecting after a daemon restart fans out instead of
/// thundering back in lockstep, yet any single (salt, attempt) pair always
/// sleeps the same amount (no wall clocks, no global RNG).
std::chrono::milliseconds backoffDelay(std::uint32_t attempt,
                                       std::string_view salt);

struct ReplicatorOptions {
  std::vector<ipc::Endpoint> replicas;
  ReplAck ack = ReplAck::kQuorum;
  /// Transport retry budget per ship (reconnect + resend inside this).
  std::chrono::milliseconds retryFor{5000};
  /// Silence bound per reply read.
  std::chrono::milliseconds readTimeout{10000};
  /// Async mode: records a replica's queue holds before shipAsync starts
  /// refusing (the refused records become a gap the next resync heals).
  std::size_t maxQueue = 1024;
};

/// Outcome of one synchronous (quorum) ship.
struct ShipResult {
  bool ok = false;
  /// A standby holds a newer epoch: the caller must fence the session and
  /// refuse the client instead of acking.
  bool staleEpoch = false;
  std::uint64_t standbyEpoch = 0;
  std::string error;
};

/// Ships session WAL records (and resync snapshots) to a fixed set of
/// standby endpoints.  Thread-safe; one instance per SessionService.
class Replicator {
 public:
  /// Everything a gapped standby needs to catch up: the primary's current
  /// on-disk snapshot bytes (snapshot.snapshot empty when none exists) and
  /// every accepted record newer than it, in sequence order.
  struct ResyncBundle {
    SessionReplSnapshotRequest snapshot;
    std::vector<SessionReplAppendRequest> tail;
  };
  using ResyncFn = std::function<std::optional<ResyncBundle>(
      const std::string& tenant, const std::string& name)>;
  /// Invoked when a standby fences a ship: the service marks the session
  /// so no further client mutation is acked under the stale epoch.
  using FenceFn = std::function<void(const std::string& tenant,
                                     const std::string& name,
                                     std::uint64_t standbyEpoch)>;

  Replicator(ReplicatorOptions options, ResyncFn resync, FenceFn fence);
  ~Replicator();

  Replicator(const Replicator&) = delete;
  Replicator& operator=(const Replicator&) = delete;

  ReplAck ackMode() const { return options_.ack; }
  std::size_t replicaCount() const;

  /// Quorum path: ships to every standby and blocks until each has acked
  /// durably, resyncing through reported gaps.  Call WITHOUT holding the
  /// session-store mutex.
  ShipResult shipSync(const SessionReplAppendRequest& request);

  /// Async path: enqueues in order and returns immediately.  False = the
  /// replica queues are full and the record was not enqueued (the standby
  /// will gap-detect; the next ship resyncs it).
  bool shipAsync(const SessionReplAppendRequest& request);

  /// Total records queued but not yet acked by their standby (async lag).
  std::uint64_t lagRecords() const;
  /// Age of the oldest queued record in milliseconds; 0 when idle.
  std::int64_t lagMs() const;
  /// Publishes lagRecords/lagMs into the service.repl_lag_* gauges.
  void refreshGauges() const;

 private:
  struct Link;

  /// Ships one append over one link, healing kBadSequence gaps via
  /// ResyncFn.  Transport errors inside the retry budget are absorbed;
  /// exhaustion surfaces in the result.
  ShipResult shipOne(Link& link, const SessionReplAppendRequest& request);
  std::string exchange(Link& link, const std::string& payload);
  void workerLoop(Link& link);

  ReplicatorOptions options_;
  ResyncFn resync_;
  FenceFn fence_;
  std::vector<std::unique_ptr<Link>> links_;
};

}  // namespace rfsm::service
