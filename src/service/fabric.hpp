// Cross-host planner fabric: one logical planner over N rfsmd endpoints.
//
// The fabric shards a batch across replicated endpoints (Unix or TCP) and
// leans on the spec-based protocol's bit-identity contract — any endpoint
// planning subrange [lo, hi) produces the exact bytes the unsharded
// in-process planAll would for those slots — to make every robustness
// mechanism lossless:
//
//  * Circuit breakers — each endpoint has a CLOSED/OPEN/HALF-OPEN breaker
//    (util/breaker.hpp) fed by connect errors, deadline misses, and
//    UNAVAILABLE replies.  Shards never touch an OPEN endpoint; a HALF-OPEN
//    one gets a single probe shard.
//  * Rerouting — a shard that fails on one endpoint retries on the next
//    healthy one with the supervisor's backoff+jitter schedule.  Because of
//    bit-identity, the reroute cannot change the output.
//  * Hedged requests — after `hedgeMs` of silence a tail shard is
//    duplicated to a second healthy endpoint; the first answer wins and the
//    loser is cancelled (its breaker sees recordAbandoned, not a verdict).
//  * Quorum verification — with `quorum` K >= 2, a sample of shards is sent
//    to K endpoints and the replies are *byte-compared* (bit-identity makes
//    this one memcmp, no semantic diffing).  On divergence the shard is
//    recomputed in-process — correct by construction — so stdout stays
//    byte-identical; endpoints whose bytes disagree with the local ground
//    truth have their breaker tripped and fabric.quorum_mismatch bumped.
//    A lying endpoint is detected and quarantined, never silently served.
//
// Degradation ladder (stdout byte-identical at every rung):
//   1. fabric across all healthy endpoints;
//   2. plain planBatch against any single healthy endpoint (which itself
//      degrades to rung 3 when that endpoint fails too);
//   3. in-process planning.
// Each rung drop prints exactly one stderr notice with a stable reason
// token (client.hpp's kReason* strings).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "service/client.hpp"
#include "service/protocol.hpp"
#include "util/breaker.hpp"
#include "util/ipc.hpp"

namespace rfsm::service {

struct FabricOptions {
  /// Replicated rfsmd endpoints (ipc::parseEndpoint syntax each).
  std::vector<ipc::Endpoint> endpoints;
  /// Latency budget per shard exchange; 0 = none (a 30 s transport bound
  /// still applies so a silent endpoint costs a timeout, not a hang).
  std::int64_t deadlineMs = 0;
  /// Parallelism of quorum recomputation and degraded in-process runs.
  int jobs = 1;
  /// Instances per fabric shard; 0 = auto (spread the batch two shards
  /// deep per endpoint so rerouting has somewhere to go).
  std::uint64_t shardSize = 0;
  /// Hedge a shard to a second endpoint after this much silence; 0 = off.
  std::int64_t hedgeMs = 0;
  /// Endpoints that must byte-agree on sampled shards; <= 1 = off.
  int quorum = 1;
  /// Attempts per shard across endpoints (first try + reroutes).
  int maxAttempts = 3;
  /// Reroute backoff schedule (util/supervisor.hpp's backoffDelay).
  std::chrono::milliseconds backoffBase{25};
  std::chrono::milliseconds backoffCap{1000};
  std::uint64_t jitterSeed = 1;
  /// Per-endpoint breaker tuning.
  BreakerOptions breaker;
};

/// A reusable multi-endpoint client: breaker state persists across plan()
/// calls, so an endpoint that died during one batch is still quarantined
/// for the next.  Thread-compatible (one plan() at a time).
class Fabric {
 public:
  explicit Fabric(FabricOptions options);
  ~Fabric();

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  /// Plans `spec` across the endpoint set, descending the degradation
  /// ladder as needed.  Diagnostics go to `err`; stdout formatting is the
  /// caller's business.  The result is byte-identical to planLocal
  /// whenever status == kOk, regardless of which rung served it.
  ClientResult plan(const BatchSpec& spec, std::ostream& err);

  std::size_t endpointCount() const;
  /// Endpoint i's breaker (diagnostics and tests).
  const CircuitBreaker& breaker(std::size_t index) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace rfsm::service
