#include "service/client.hpp"

#include <chrono>
#include <ostream>

#include "util/ipc.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace rfsm::service {
namespace {

/// One request/response exchange; throws IpcError on transport failure,
/// returns nullopt on timeout or a server that hung up.
std::optional<std::string> exchange(const std::string& socketPath,
                                    const std::string& request,
                                    std::int64_t timeoutMs) {
  ipc::ignoreSigpipe();
  ipc::Fd fd = ipc::connectUnix(socketPath);
  ipc::writeFrame(fd.get(), request);
  CancelToken token;
  if (timeoutMs > 0) {
    token.setDeadline(CancelToken::Clock::now() +
                      std::chrono::milliseconds(timeoutMs));
  }
  std::string reply;
  const ipc::ReadStatus status =
      ipc::readFrame(fd.get(), reply, timeoutMs > 0 ? &token : nullptr);
  if (status != ipc::ReadStatus::kOk) return std::nullopt;
  return reply;
}

ClientResult degrade(const BatchSpec& spec, const ClientOptions& options,
                     std::ostream& err, const std::string& why) {
  static metrics::Counter& degraded =
      metrics::counter(metrics::kServiceDegraded);
  degraded.add();
  trace::instant("service.degraded", "service",
                 {trace::Arg::str("why", why)});
  // Diagnostics to stderr only: stdout must stay byte-identical to a
  // healthy server run so `diff` proves the degradation lossless.
  err << "rfsmc: planner service unavailable (" << why
      << "); degrading to in-process planning\n";
  ClientResult result = planLocal(spec, options.deadlineMs, options.jobs);
  result.degraded = true;
  return result;
}

}  // namespace

ClientResult planLocal(const BatchSpec& spec, std::int64_t deadlineMs,
                       int jobs) {
  ClientResult result;
  CancelToken cancel;
  if (deadlineMs > 0) {
    cancel.setDeadline(CancelToken::Clock::now() +
                       std::chrono::milliseconds(deadlineMs));
  }
  try {
    result.programs = planRange(spec, 0, spec.instanceCount,
                                deadlineMs > 0 ? &cancel : nullptr, jobs);
    result.status = WorkResult::Status::kOk;
  } catch (const CancelledError& error) {
    result.status = WorkResult::Status::kDeadlineExceeded;
    result.error = error.what();
  } catch (const BatchError& error) {
    // Cancellation inside planAll surfaces as a BatchError whose failures
    // are all marked cancelled; report it as the deadline it is.
    bool allCancelled = !error.failures().empty();
    for (const InstanceFailure& failure : error.failures())
      allCancelled = allCancelled && failure.cancelled;
    result.status = allCancelled ? WorkResult::Status::kDeadlineExceeded
                                 : WorkResult::Status::kFailed;
    result.error = error.what();
  } catch (const Error& error) {
    result.status = WorkResult::Status::kFailed;
    result.error = error.what();
  }
  return result;
}

ClientResult planBatch(const BatchSpec& spec, const ClientOptions& options,
                       std::ostream& err) {
  PlanRequest request;
  request.spec = spec;
  request.deadlineMs = options.deadlineMs;
  request.requestId = spec.seed;  // correlates client logs with the server

  std::optional<std::string> reply;
  try {
    // The transport timeout leaves headroom over the request deadline so a
    // cooperative DEADLINE_EXCEEDED reply still arrives.
    const std::int64_t timeoutMs =
        options.deadlineMs > 0 ? options.deadlineMs + 2000 : 0;
    reply = exchange(options.socketPath, encodePlanRequest(request),
                     timeoutMs);
  } catch (const ipc::IpcError& error) {
    return degrade(spec, options, err, error.what());
  }
  if (!reply.has_value())
    return degrade(spec, options, err, "server did not answer");

  PlanResponse response;
  try {
    response = decodePlanResponse(*reply);
  } catch (const Error& error) {
    return degrade(spec, options, err,
                   std::string("malformed response: ") + error.what());
  }

  ClientResult result;
  result.retries = response.retries;
  result.crashes = response.crashes;
  switch (response.status) {
    case WorkResult::Status::kOk:
      result.status = WorkResult::Status::kOk;
      result.programs = std::move(response.programs);
      return result;
    case WorkResult::Status::kUnavailable:
    case WorkResult::Status::kShed: {
      ClientResult fallback = degrade(
          spec, options, err,
          std::string(toString(response.status)) +
              (response.error.empty() ? "" : ": " + response.error));
      fallback.retries = response.retries;
      fallback.crashes = response.crashes;
      return fallback;
    }
    case WorkResult::Status::kDeadlineExceeded:
    case WorkResult::Status::kFailed:
      result.status = response.status;
      result.error = response.error;
      return result;
  }
  result.error = "unknown response status";
  return result;
}

std::optional<HealthResponse> probeHealth(const std::string& socketPath,
                                          std::int64_t timeoutMs) {
  try {
    const std::optional<std::string> reply =
        exchange(socketPath, encodeHealthRequest(), timeoutMs);
    if (!reply.has_value()) return std::nullopt;
    return decodeHealthResponse(*reply);
  } catch (const Error&) {
    return std::nullopt;
  }
}

}  // namespace rfsm::service
