#include "service/client.hpp"

#include <chrono>
#include <ostream>

#include "util/ipc.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace rfsm::service {

std::optional<std::string> exchangeEndpoint(const ipc::Endpoint& endpoint,
                                            const std::string& request,
                                            std::int64_t timeoutMs,
                                            const CancelToken* cancel) {
  ipc::ignoreSigpipe();
  ipc::Fd fd = ipc::connectEndpoint(endpoint, timeoutMs);
  ipc::writeFrame(fd.get(), request);
  CancelToken token;
  if (cancel == nullptr && timeoutMs > 0) {
    token.setDeadline(CancelToken::Clock::now() +
                      std::chrono::milliseconds(timeoutMs));
    cancel = &token;
  }
  std::string reply;
  const ipc::ReadStatus status = ipc::readFrame(fd.get(), reply, cancel);
  if (status != ipc::ReadStatus::kOk) return std::nullopt;
  return reply;
}

namespace {

/// Degrades to in-process planning.  The stderr notice carries only the
/// stable `reason` token (kReasonUnreachable & co.) so scripts and CI can
/// assert on it; the raw `detail` (errno text, server error strings —
/// anything environment-dependent) goes to the trace.
ClientResult degrade(const BatchSpec& spec, const ClientOptions& options,
                     std::ostream& err, const std::string& reason,
                     const std::string& detail) {
  static metrics::Counter& degraded =
      metrics::counter(metrics::kServiceDegraded);
  degraded.add();
  trace::instant("service.degraded", "service",
                 {trace::Arg::str("why", reason),
                  trace::Arg::str("detail", detail)});
  // Diagnostics to stderr only: stdout must stay byte-identical to a
  // healthy server run so `diff` proves the degradation lossless.
  err << "rfsmc: planner service unavailable (" << reason
      << "); degrading to in-process planning\n";
  ClientResult result = planLocal(spec, options.deadlineMs, options.jobs);
  result.degraded = true;
  return result;
}

}  // namespace

ClientResult planLocal(const BatchSpec& spec, std::int64_t deadlineMs,
                       int jobs) {
  ClientResult result;
  CancelToken cancel;
  if (deadlineMs > 0) {
    cancel.setDeadline(CancelToken::Clock::now() +
                       std::chrono::milliseconds(deadlineMs));
  }
  // planRange counts its own cache traffic; the delta across this call is
  // what this batch was served from cache.
  const std::uint64_t hitsBefore =
      metrics::counter(metrics::kServicePlanCacheHits).value();
  try {
    result.programs = planRange(spec, 0, spec.instanceCount,
                                deadlineMs > 0 ? &cancel : nullptr, jobs);
    result.status = WorkResult::Status::kOk;
    result.cacheHits =
        metrics::counter(metrics::kServicePlanCacheHits).value() - hitsBefore;
  } catch (const CancelledError& error) {
    result.status = WorkResult::Status::kDeadlineExceeded;
    result.error = error.what();
  } catch (const BatchError& error) {
    // Cancellation inside planAll surfaces as a BatchError whose failures
    // are all marked cancelled; report it as the deadline it is.
    bool allCancelled = !error.failures().empty();
    for (const InstanceFailure& failure : error.failures())
      allCancelled = allCancelled && failure.cancelled;
    result.status = allCancelled ? WorkResult::Status::kDeadlineExceeded
                                 : WorkResult::Status::kFailed;
    result.error = error.what();
  } catch (const Error& error) {
    result.status = WorkResult::Status::kFailed;
    result.error = error.what();
  }
  return result;
}

ClientResult planBatch(const BatchSpec& spec, const ClientOptions& options,
                       std::ostream& err) {
  PlanRequest request;
  request.spec = spec;
  request.deadlineMs = options.deadlineMs;
  request.requestId = spec.seed;  // correlates client logs with the server

  trace::ScopedSpan span("service.plan_batch", "service",
                         {trace::Arg::num("instances", spec.instanceCount)});
  // Read after the span installs itself, so the server parents under it.
  request.context = trace::currentContext();

  std::optional<std::string> reply;
  try {
    // The transport timeout leaves headroom over the request deadline so a
    // cooperative DEADLINE_EXCEEDED reply still arrives.
    const std::int64_t timeoutMs =
        options.deadlineMs > 0 ? options.deadlineMs + 2000 : 0;
    reply = exchangeEndpoint(ipc::parseEndpoint(options.socketPath),
                             encodePlanRequest(request), timeoutMs);
  } catch (const ipc::FrameError& error) {
    // The server answered, but the bytes failed their CRC or length check:
    // the reply is untrustworthy, never served — replan in-process.
    return degrade(spec, options, err, kReasonMalformed, error.what());
  } catch (const ipc::IpcError& error) {
    return degrade(spec, options, err, kReasonUnreachable, error.what());
  }
  if (!reply.has_value())
    return degrade(spec, options, err, kReasonUnreachable,
                   "server did not answer");

  PlanResponse response;
  try {
    response = decodePlanResponse(*reply);
  } catch (const Error& error) {
    return degrade(spec, options, err, kReasonMalformed, error.what());
  }

  ClientResult result;
  result.retries = response.retries;
  result.crashes = response.crashes;
  result.cacheHits = response.cacheHits;
  switch (response.status) {
    case WorkResult::Status::kOk:
      result.status = WorkResult::Status::kOk;
      result.programs = std::move(response.programs);
      return result;
    case WorkResult::Status::kUnavailable:
    case WorkResult::Status::kShed: {
      // kShed means a healthy pool said "not now" (queue full); that is
      // overload, not unhealth — the reason tokens keep them apart.
      const char* reason = response.status == WorkResult::Status::kShed
                               ? kReasonOverloaded
                               : kReasonUnhealthy;
      ClientResult fallback =
          degrade(spec, options, err, reason, response.error);
      fallback.retries = response.retries;
      fallback.crashes = response.crashes;
      return fallback;
    }
    case WorkResult::Status::kDeadlineExceeded:
    case WorkResult::Status::kFailed:
      result.status = response.status;
      result.error = response.error;
      return result;
  }
  result.error = "unknown response status";
  return result;
}

std::optional<HandshakeResponse> probeHandshake(const ipc::Endpoint& endpoint,
                                                std::int64_t timeoutMs) {
  try {
    const std::optional<std::string> reply = exchangeEndpoint(
        endpoint, encodeHandshakeRequest(HandshakeRequest{}), timeoutMs);
    if (!reply.has_value()) return std::nullopt;
    return decodeHandshakeResponse(*reply);
  } catch (const Error&) {
    return std::nullopt;
  }
}

std::optional<HealthResponse> probeHealth(const ipc::Endpoint& endpoint,
                                          std::int64_t timeoutMs) {
  try {
    const std::optional<std::string> reply =
        exchangeEndpoint(endpoint, encodeHealthRequest(), timeoutMs);
    if (!reply.has_value()) return std::nullopt;
    return decodeHealthResponse(*reply);
  } catch (const Error&) {
    return std::nullopt;
  }
}

std::optional<HealthResponse> probeHealth(const std::string& socketPath,
                                          std::int64_t timeoutMs) {
  try {
    return probeHealth(ipc::parseEndpoint(socketPath), timeoutMs);
  } catch (const Error&) {
    return std::nullopt;
  }
}

}  // namespace rfsm::service
