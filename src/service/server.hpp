// The rfsmd server: accepts plan/health requests on a Unix socket, shards
// batches across the supervised worker pool, and aggregates the results.
//
// Failure semantics of one plan request, in precedence order:
//
//   DEADLINE_EXCEEDED  any shard ran out of the request's latency budget
//                      (whether the worker reported it cooperatively or the
//                      supervisor had to kill a silent one);
//   UNAVAILABLE        the pool is unhealthy (crash storm or forced by the
//                      pool-unhealthy fault scenario) or the queue shed the
//                      shard — the client's cue to degrade to in-process
//                      planning;
//   FAILED             a shard kept failing after all retry attempts (a
//                      planner defect: retrying deterministic work cannot
//                      help);
//   OK                 every shard planned; programs are assembled in
//                      instance order and are byte-identical to the
//                      unsharded in-process planAll.
//
// Named fault scenarios (util/fault.hpp, serviceScenarioByName) arm the
// supervisor's dispatch hook so CI can reproduce "worker SIGKILLed
// mid-shard" and friends from a --fault flag instead of a race.
#pragma once

#include <cstdint>
#include <string>

#include "service/protocol.hpp"
#include "util/deadline.hpp"
#include "util/fault.hpp"
#include "util/ipc.hpp"
#include "util/supervisor.hpp"

namespace rfsm::service {

struct ServerOptions {
  /// Endpoint to listen on, in ipc::parseEndpoint syntax: a Unix socket
  /// path ("/run/rfsmd.sock", "unix:...") or a TCP address
  /// ("tcp:0.0.0.0:4777") for cross-host fabrics.
  std::string socketPath;
  /// The rfsmd binary to spawn workers from (argv[0]; workers are started
  /// as `<binary> --worker`).
  std::string workerBinary;
  /// Instances per shard request.
  std::uint64_t shardSize = 4;
  /// Worker-pool knobs (workerCommand is derived from workerBinary).
  SupervisorOptions pool;
  /// Reproducible failure injection (fault::serviceScenarioByName).
  fault::ServiceScenario scenario;
};

class Server {
 public:
  /// Spawns nothing yet (workers are lazy) but binds the socket, so a
  /// failure to listen surfaces here, before the caller reports readiness.
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Serves until `stop` is cancelled (nullptr = forever).  Connections
  /// are handled serially: one request per connection, bounded reads, so a
  /// stuck client costs one idle-timeout, never a wedged server.
  void run(const CancelToken* stop = nullptr);

  /// Handles one plan request in-process (exposed for tests: exercises the
  /// exact shard/aggregate path without a socket).
  PlanResponse handlePlan(const PlanRequest& request);

  /// Current pool health, as reported to probes.
  HealthResponse healthSnapshot() const;

 private:
  void handleConnection(int fd);

  ServerOptions options_;
  Supervisor supervisor_;
  ipc::Fd listen_;
};

}  // namespace rfsm::service
