// The rfsmd server: accepts plan/health/session requests, shards batches
// across the supervised worker pool, and hosts the multi-tenant session
// store (service/session.hpp).
//
// Failure semantics of one plan request, in precedence order:
//
//   DEADLINE_EXCEEDED  any shard ran out of the request's latency budget
//                      (whether the worker reported it cooperatively or the
//                      supervisor had to kill a silent one);
//   UNAVAILABLE        the pool is unhealthy (crash storm or forced by the
//                      pool-unhealthy fault scenario) or the queue shed the
//                      shard — the client's cue to degrade to in-process
//                      planning;
//   FAILED             a shard kept failing after all retry attempts (a
//                      planner defect: retrying deterministic work cannot
//                      help);
//   OK                 every shard planned; programs are assembled in
//                      instance order and are byte-identical to the
//                      unsharded in-process planAll.
//
// Connections are handled concurrently (sessions are long-lived streams;
// one stalled tenant must not wedge the others) up to maxConnections, each
// on its own thread with a per-connection cancel token and a 30 s idle
// deadline per read.
//
// Shutdown is a *drain*, not an abandonment: run() stops accepting, marks
// the session store draining (new work gets DRAINING replies), cancels the
// idle readers, lets every in-flight request finish and send its reply
// (bounded by the request's own deadline; each completion counts into
// service.drained_requests), joins the handlers, and finally persists every
// session (snapshot + rotated journal).
//
// Named fault scenarios (util/fault.hpp, serviceScenarioByName) arm the
// supervisor's dispatch hook so CI can reproduce "worker SIGKILLed
// mid-shard" and friends from a --fault flag instead of a race.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "service/protocol.hpp"
#include "service/session.hpp"
#include "util/deadline.hpp"
#include "util/fault.hpp"
#include "util/ipc.hpp"
#include "util/supervisor.hpp"

namespace rfsm::service {

struct ServerOptions {
  /// Endpoint to listen on, in ipc::parseEndpoint syntax: a Unix socket
  /// path ("/run/rfsmd.sock", "unix:...") or a TCP address
  /// ("tcp:0.0.0.0:4777") for cross-host fabrics.
  std::string socketPath;
  /// The rfsmd binary to spawn workers from (argv[0]; workers are started
  /// as `<binary> --worker`).
  std::string workerBinary;
  /// Instances per shard request.
  std::uint64_t shardSize = 4;
  /// Worker-pool knobs (workerCommand is derived from workerBinary).
  SupervisorOptions pool;
  /// Session-store knobs (stateDir enables crash recovery).
  SessionServiceOptions sessions;
  /// Concurrent connection handlers; excess connections are closed (the
  /// session client reconnects with backoff).
  std::size_t maxConnections = 32;
  /// Reproducible failure injection (fault::serviceScenarioByName).
  fault::ServiceScenario scenario;
};

class Server {
 public:
  /// Binds the socket and recovers any journaled sessions from
  /// sessions.stateDir, so both failures surface here, before the caller
  /// reports readiness.  (Workers stay lazy.)
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Serves until `stop` is cancelled (nullptr = forever), then drains as
  /// described in the file comment before returning.
  void run(const CancelToken* stop = nullptr);

  /// Handles one plan request in-process (exposed for tests: exercises the
  /// exact shard/aggregate path without a socket).
  PlanResponse handlePlan(const PlanRequest& request);

  /// Current pool health, as reported to probes.
  HealthResponse healthSnapshot() const;

  /// Live telemetry scrape (kStatsRequest): pool health, plan-cache
  /// occupancy, per-tenant session gauges, registered breakers, and the
  /// full metrics snapshot.  Refreshes the service.*/session.* level
  /// gauges so the embedded snapshot carries current values.
  StatsResponse handleStats();

  /// Span-ring dump with steady-clock echo (kTraceDumpRequest).
  TraceDumpResponse handleTraceDump(const TraceDumpRequest& request);

  /// The session store (for tests and the daemon's startup/drain report).
  SessionService& sessions() { return *sessions_; }
  const SessionService& sessions() const { return *sessions_; }

  /// In-flight requests completed (replied to, not abandoned) after the
  /// stop signal — the graceful-drain evidence.
  std::uint64_t drainedRequests() const {
    return drainedRequests_.load(std::memory_order_relaxed);
  }

 private:
  void handleConnection(int fd, CancelToken* cancel);
  std::string dispatch(const std::string& payload);

  ServerOptions options_;
  Supervisor supervisor_;
  std::unique_ptr<SessionService> sessions_;
  ipc::Fd listen_;
  std::chrono::steady_clock::time_point started_ =
      std::chrono::steady_clock::now();
  std::atomic<bool> draining_{false};
  std::atomic<std::uint64_t> drainedRequests_{0};
};

}  // namespace rfsm::service
