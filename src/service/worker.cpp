#include "service/worker.hpp"

#include <exception>

#include "service/protocol.hpp"
#include "util/chaos.hpp"
#include "util/ipc.hpp"
#include "util/log.hpp"
#include "util/trace.hpp"

namespace rfsm::service {

int runWorker() {
  ipc::ignoreSigpipe();
  trace::setProcessName("rfsmd-worker");
  try {
    // Workers inherit RFSM_CHAOS from the daemon so the fd-3 channel is
    // disturbed from both ends.
    chaos::plane().armFromEnv();
  } catch (const Error& error) {
    log(LogLevel::kWarn) << "worker chaos spec ignored: " << error.what();
  }
  std::string payload;
  while (true) {
    ipc::ReadStatus status;
    try {
      // No cancel token: an idle worker blocks until the next request or
      // the supervisor closes the channel.  Timeouts are the supervisor's
      // job.
      status = ipc::readFrame(ipc::kWorkerChannelFd, payload);
    } catch (const ipc::IpcError& error) {
      // A malformed frame (bad CRC, absurd length) or injected reset on
      // the channel: exit cleanly — the supervisor sees EOF and runs its
      // crash/retry path rather than pairing garbage with a request.
      log(LogLevel::kWarn) << "worker channel failed: " << error.what();
      return 0;
    }
    if (status != ipc::ReadStatus::kOk) return 0;  // EOF: clean shutdown

    ShardResponse response;
    try {
      if (peekType(payload) == MessageType::kWarmupRequest) {
        // Prefork warm-up: echo readiness without planning anything.  The
        // frame exchange itself is the point — by the time the reply lands,
        // exec, dynamic loading, and the allocator are all paid for.
        trace::instant("service.worker_warmup", "service");
        ipc::writeFrame(ipc::kWorkerChannelFd, encodeWarmupResponse());
        continue;
      }
      const ShardRequest request = decodeShardRequest(payload);
      CancelToken cancel;
      if (request.deadlineNs != 0) {
        cancel.setDeadline(CancelToken::Clock::time_point(
            CancelToken::Clock::duration(request.deadlineNs)));
      }
      // Adopt the dispatching daemon's context so this span — recorded in
      // the worker subprocess's own ring — parents under the daemon's
      // dispatch span in the stitched cross-process trace.
      trace::ContextScope contextScope(request.context);
      trace::ScopedSpan span(
          "service.worker_shard", "service",
          {trace::Arg::num("lo", request.lo), trace::Arg::num("hi", request.hi)});
      response.programs =
          planRange(request.spec, request.lo, request.hi, &cancel);
      response.status = WorkResult::Status::kOk;
    } catch (const CancelledError& error) {
      // Cooperative deadline path: the planner unwound at a poll point; we
      // still hold a healthy process and report instead of getting killed.
      response.status = WorkResult::Status::kDeadlineExceeded;
      response.error = error.what();
    } catch (const BatchError& error) {
      // planAll drains before throwing; when every failure is a
      // cancellation, the batch as a whole ran out of budget.
      bool allCancelled = !error.failures().empty();
      for (const InstanceFailure& failure : error.failures())
        allCancelled = allCancelled && failure.cancelled;
      response.status = allCancelled ? WorkResult::Status::kDeadlineExceeded
                                     : WorkResult::Status::kFailed;
      response.error = error.what();
    } catch (const std::exception& error) {
      response.status = WorkResult::Status::kFailed;
      response.error = error.what();
    }
    try {
      ipc::writeFrame(ipc::kWorkerChannelFd, encodeShardResponse(response));
    } catch (const ipc::IpcError&) {
      return 0;  // supervisor went away mid-reply; nothing left to serve
    }
    // Flush the span ring after every reply: the supervisor retires idle
    // and shutdown-time workers with SIGKILL (deliberately — the same path
    // must dispose of hung workers), so atexit never runs here.  Each flush
    // rewrites this pid's whole ring; one getenv when tracing is off.
    trace::dumpToEnv();
  }
}

}  // namespace rfsm::service
