#include "service/session.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <set>
#include <sstream>
#include <utility>

#include "core/journal.hpp"
#include "core/migration.hpp"
#include "core/mutable_machine.hpp"
#include "core/program.hpp"
#include "fsm/serialize.hpp"
#include "gen/generator.hpp"
#include "gen/mutator.hpp"
#include "util/fsio.hpp"
#include "util/log.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/trace.hpp"

namespace rfsm::service {
namespace {

constexpr const char* kWalHeader = "rfsm-session-journal v1";
constexpr const char* kSnapshotMagic = "rfsm-session-snapshot v1";

std::uint64_t fnv64(std::string_view text) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string openPayload(const SessionConfig& config, std::uint64_t epoch = 1,
                        bool standby = false) {
  std::ostringstream os;
  os << "open " << config.tenant << " " << config.name << " "
     << config.priority << " " << static_cast<int>(config.weight) << " "
     << config.planner << " " << config.stateCount << " "
     << config.inputCount << " " << config.outputCount << " " << config.seed
     << " " << epoch << " " << (standby ? 1 : 0);
  return os.str();
}

bool parseOpenPayload(const std::string& payload, SessionConfig& config,
                      std::uint64_t* epoch = nullptr,
                      bool* standby = nullptr) {
  const auto tokens = splitWhitespace(payload);
  // 10 tokens = the pre-replication journal format (epoch 1, primary);
  // 12 tokens append the fencing epoch and the standby role.
  if ((tokens.size() != 10 && tokens.size() != 12) || tokens[0] != "open")
    return false;
  try {
    config.tenant = tokens[1];
    config.name = tokens[2];
    config.priority = std::stoi(tokens[3]);
    config.weight = std::max(1, std::stoi(tokens[4]));
    config.planner = tokens[5];
    config.stateCount = std::stoi(tokens[6]);
    config.inputCount = std::stoi(tokens[7]);
    config.outputCount = std::stoi(tokens[8]);
    config.seed = std::stoull(tokens[9]);
    if (epoch != nullptr) *epoch = 1;
    if (standby != nullptr) *standby = false;
    if (tokens.size() == 12) {
      if (epoch != nullptr) *epoch = std::max<std::uint64_t>(1, std::stoull(tokens[10]));
      if (standby != nullptr) *standby = tokens[11] == "1";
    }
  } catch (const std::exception&) {
    return false;
  }
  return validSessionName(config.tenant) && validSessionName(config.name);
}

std::string mutPayload(const MutationRecord& rec) {
  std::ostringstream os;
  os << "mut " << rec.seq << " " << rec.deltaCount << " "
     << rec.newStateCount << " " << rec.mutationSeed << " "
     << (rec.defer ? 1 : 0);
  return os.str();
}

bool parseMutPayload(const std::string& payload, MutationRecord& rec) {
  const auto tokens = splitWhitespace(payload);
  if (tokens.size() != 6 || tokens[0] != "mut") return false;
  try {
    rec.seq = std::stoull(tokens[1]);
    rec.deltaCount = static_cast<std::uint32_t>(std::stoul(tokens[2]));
    rec.newStateCount = static_cast<std::uint32_t>(std::stoul(tokens[3]));
    rec.mutationSeed = std::stoull(tokens[4]);
    rec.defer = tokens[5] == "1";
  } catch (const std::exception&) {
    return false;
  }
  return rec.seq > 0;
}

/// The wire form of one journaled record for the replication plane:
/// config (so the standby can self-create), fencing epoch, and the
/// MutationRecord field for field.
SessionReplAppendRequest replRequestFor(const SessionConfig& config,
                                        std::uint64_t epoch,
                                        const MutationRecord& rec) {
  SessionReplAppendRequest request;
  request.tenant = config.tenant;
  request.name = config.name;
  request.priority = static_cast<std::uint32_t>(config.priority);
  request.weight =
      static_cast<std::uint32_t>(std::max(1, static_cast<int>(config.weight)));
  request.planner = config.planner;
  request.stateCount = config.stateCount;
  request.inputCount = config.inputCount;
  request.outputCount = config.outputCount;
  request.seed = config.seed;
  request.epoch = epoch;
  request.seq = rec.seq;
  request.deltaCount = rec.deltaCount;
  request.newStateCount = rec.newStateCount;
  request.mutationSeed = rec.mutationSeed;
  request.defer = rec.defer;
  return request;
}

}  // namespace

bool validSessionName(const std::string& name) {
  if (name.empty() || name.size() > 64) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                    c == '-';
    if (!ok) return false;
  }
  return true;
}

// --- SessionEngine --------------------------------------------------------

namespace {

Machine initialMachine(const SessionConfig& config) {
  RandomMachineSpec spec;
  spec.stateCount = config.stateCount;
  spec.inputCount = config.inputCount;
  spec.outputCount = config.outputCount;
  spec.name = config.name;
  Rng rng(config.seed);
  return randomMachine(spec, rng);
}

}  // namespace

SessionEngine::SessionEngine(SessionConfig config)
    : config_(std::move(config)), machine_(initialMachine(config_)) {}

SessionEngine::SessionEngine(SessionConfig config, Machine machine)
    : config_(std::move(config)), machine_(std::move(machine)) {}

PlanOutcome SessionEngine::apply(const MutationRecord& rec) {
  RFSM_CHECK(rec.seq == lastApplied_ + 1,
             "session mutations must apply in sequence order");
  lastApplied_ = rec.seq;
  PlanOutcome outcome;
  if (rec.defer) {
    pending_.push_back(rec);
    return outcome;
  }
  // Compose the deferred run plus this record into one target, then plan
  // the *net* delta set between the resident machine and that target:
  // superseded and reverted cells drop out (that is the compaction).  Work
  // on copies so a failure consumes only this record's sequence number.
  try {
    Machine target = machine_;
    int raw = 0;
    std::vector<MutationRecord> run = pending_;
    run.push_back(rec);
    for (const MutationRecord& r : run) {
      MutationSpec spec;
      spec.deltaCount = static_cast<int>(r.deltaCount);
      spec.newStateCount = static_cast<int>(r.newStateCount);
      spec.name = config_.name + "#" + std::to_string(r.seq);
      Rng rng(r.mutationSeed);
      target = mutateMachine(target, spec, rng);
      raw += spec.deltaCount;
    }
    const MigrationContext context(machine_, target);
    Rng planRng =
        Rng(config_.seed).substream(kSessionPlanStreamBase + planCount_);
    const ReconfigurationProgram program =
        plannerFn(config_.planner)(context, planRng);
    // Advance the resident machine by executing the program, exactly as
    // the Fig. 5 datapath would — and verify it landed on the target.
    MutableMachine resident(context);
    resident.applyProgram(program);
    std::string reason;
    if (!resident.matchesTarget(&reason))
      throw Error("planned program misses the target: " + reason);
    outcome.planned = true;
    outcome.program = programToText(context, program);
    outcome.compactedFrom = run.size();
    outcome.deltasPlanned = context.deltaCount();
    outcome.deltasRaw = raw;
    machine_ = std::move(target);
    pending_.clear();
    ++planCount_;
  } catch (const Error& error) {
    outcome = PlanOutcome{};
    outcome.failed = true;
    outcome.error = error.what();
  }
  return outcome;
}

void SessionEngine::encodeSnapshot(ipc::MessageWriter& writer) const {
  writer.str(kSnapshotMagic);
  writer.str(config_.tenant);
  writer.str(config_.name);
  writer.u32(static_cast<std::uint32_t>(config_.priority));
  writer.u32(static_cast<std::uint32_t>(config_.weight));
  writer.str(config_.planner);
  writer.u32(static_cast<std::uint32_t>(config_.stateCount));
  writer.u32(static_cast<std::uint32_t>(config_.inputCount));
  writer.u32(static_cast<std::uint32_t>(config_.outputCount));
  writer.u64(config_.seed);
  writer.u64(lastApplied_);
  writer.u64(planCount_);
  writer.str(toJson(machine_));
  writer.u32(static_cast<std::uint32_t>(pending_.size()));
  for (const MutationRecord& rec : pending_) {
    writer.u64(rec.seq);
    writer.u32(rec.deltaCount);
    writer.u32(rec.newStateCount);
    writer.u64(rec.mutationSeed);
    writer.u32(rec.defer ? 1 : 0);
  }
}

SessionEngine SessionEngine::decodeSnapshot(ipc::MessageReader& reader) {
  const std::string magic = reader.str();
  if (magic != kSnapshotMagic)
    throw ipc::IpcError("bad session snapshot magic '" + magic + "'");
  SessionConfig config;
  config.tenant = reader.str();
  config.name = reader.str();
  config.priority = static_cast<int>(reader.u32());
  config.weight = static_cast<double>(reader.u32());
  config.planner = reader.str();
  config.stateCount = static_cast<int>(reader.u32());
  config.inputCount = static_cast<int>(reader.u32());
  config.outputCount = static_cast<int>(reader.u32());
  config.seed = reader.u64();
  const std::uint64_t lastApplied = reader.u64();
  const std::uint64_t planCount = reader.u64();
  Machine machine = machineFromJson(reader.str());
  SessionEngine engine(std::move(config), std::move(machine));
  engine.lastApplied_ = lastApplied;
  engine.planCount_ = planCount;
  const std::uint32_t pending = reader.u32();
  for (std::uint32_t k = 0; k < pending; ++k) {
    MutationRecord rec;
    rec.seq = reader.u64();
    rec.deltaCount = reader.u32();
    rec.newStateCount = reader.u32();
    rec.mutationSeed = reader.u64();
    rec.defer = reader.u32() != 0;
    engine.pending_.push_back(rec);
  }
  return engine;
}

// --- SessionService -------------------------------------------------------

struct SessionService::Session {
  explicit Session(SessionEngine e)
      : engine(std::move(e)), wal(kWalHeader) {}

  SessionEngine engine;
  /// Journal high-water mark: highest seq accepted (journaled + queued).
  std::uint64_t lastAccepted = 0;
  /// engine.lastApplied() mirrored under the store mutex — the engine
  /// itself is only touched by the executor holding this flow's in-flight
  /// slot, so readers must not reach into it.
  std::uint64_t applied = 0;
  std::uint64_t ackSeq = 0;
  std::uint64_t sinceSnapshot = 0;
  /// Per-seq results, seq > ackSeq (duplicate replies + replay source).
  std::map<std::uint64_t, PlanOutcome> outcomes;
  /// Accepted records newer than the last snapshot — re-journaled when the
  /// WAL rotates, so rotation never loses accepted-but-unplanned work.
  std::map<std::uint64_t, MutationRecord> tail;
  RecordLog wal;
  ipc::Fd walFd;
  std::string walPath;   ///< "" = volatile session
  std::string snapPath;
  /// Fencing epoch: bumped on promotion, shipped with every replicated
  /// record, persisted in the journal's open record and the snapshot.
  std::uint64_t epoch = 1;
  /// Standby replica (fed by replAppend, promoted on first client write).
  bool standby = false;
  /// A standby reported a newer epoch: this primary is deposed and must
  /// refuse client mutations (kStaleEpoch) instead of acking them.
  bool fenced = false;
  /// Live-telemetry freshness stamps ({} = never): last durable WAL
  /// append and last snapshot replace, reported as ages by fillStats().
  std::chrono::steady_clock::time_point lastWalAppend{};
  std::chrono::steady_clock::time_point lastSnapshot{};
  /// Last accepted replication frame from the current-or-newer epoch
  /// primary ({} = never) — the liveness evidence the --standby-grace
  /// promotion gate checks before a client contact may depose it.
  std::chrono::steady_clock::time_point lastReplContact{};
};

std::string SessionService::key(const std::string& tenant,
                                const std::string& name) {
  return tenant + "@" + name;
}

SessionService::SessionService(SessionServiceOptions options)
    : options_(std::move(options)) {
  if (!options_.stateDir.empty()) {
    fsio::makeDirs(options_.stateDir);
    std::set<std::string> bases;
    for (const std::string& file : fsio::listDir(options_.stateDir)) {
      for (const char* suffix : {".wal", ".snap"}) {
        if (file.size() > std::strlen(suffix) &&
            file.rfind(suffix) == file.size() - std::strlen(suffix))
          bases.insert(file.substr(0, file.size() - std::strlen(suffix)));
      }
    }
    for (const std::string& base : bases)
      if (recoverOne(base)) ++recovered_;
    if (recovered_ > 0)
      metrics::counter(metrics::kSessionsRecovered).add(recovered_);
  }
  const int executors = std::max(1, options_.executors);
  executors_.reserve(static_cast<std::size_t>(executors));
  for (int k = 0; k < executors; ++k)
    executors_.emplace_back([this] { executorLoop(); });
  if (!options_.replicas.empty()) {
    ReplicatorOptions repl;
    repl.replicas = options_.replicas;
    repl.ack = options_.replAck;
    replicator_ = std::make_unique<Replicator>(
        std::move(repl),
        [this](const std::string& tenant, const std::string& name) {
          return resyncBundle(tenant, name);
        },
        [this](const std::string& tenant, const std::string& name,
               std::uint64_t standbyEpoch) {
          fenceSession(tenant, name, standbyEpoch);
        });
  }
}

SessionService::~SessionService() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
    work_.notify_all();
  }
  for (std::thread& t : executors_) t.join();
  executors_.clear();
  std::lock_guard lock(mutex_);
  stopped_ = true;
  applied_.notify_all();
}

void SessionService::executorLoop() {
  std::unique_lock lock(mutex_);
  for (;;) {
    std::optional<FairScheduler::Next> next = scheduler_.next();
    if (!next.has_value()) {
      if (stopping_ && scheduler_.idle()) return;
      work_.wait(lock);
      continue;
    }
    lock.unlock();
    next->item.run();
    lock.lock();
    scheduler_.done(next->flow);
    // Finishing an item may make this flow's next item runnable, and the
    // exit condition may now hold for idle twins.
    work_.notify_all();
  }
}

void SessionService::applyOne(const SessionPtr& session,
                              const MutationRecord& rec) {
  static metrics::Histogram& planLatency =
      metrics::histogram(metrics::kSessionPlanLatency);
  static metrics::Counter& plans = metrics::counter(metrics::kSessionPlans);
  static metrics::Counter& compacted =
      metrics::counter(metrics::kSessionDeltasCompacted);
  PlanOutcome outcome;
  {
    metrics::ScopedLatency latency(planLatency);
    trace::ScopedSpan span("session.apply", "session",
                           {trace::Arg::num("seq", rec.seq),
                            trace::Arg::boolean("defer", rec.defer)});
    // The engine is only ever touched by the executor holding this flow's
    // in-flight slot, so planning runs without the store mutex.
    outcome = session->engine.apply(rec);
  }
  std::lock_guard lock(mutex_);
  if (outcome.planned) {
    plans.add();
    if (outcome.deltasRaw > outcome.deltasPlanned)
      compacted.add(
          static_cast<std::uint64_t>(outcome.deltasRaw - outcome.deltasPlanned));
  }
  session->applied = session->engine.lastApplied();
  session->outcomes[rec.seq] = std::move(outcome);
  ++session->sinceSnapshot;
  if (options_.snapshotEvery > 0 &&
      session->sinceSnapshot >= options_.snapshotEvery) {
    try {
      persistLocked(*session);
    } catch (const Error& error) {
      // Snapshot failure is degradable: the journal keeps growing and
      // recovery still works, just from further back.
      log(LogLevel::kWarn) << "session snapshot failed: " << error.what();
    }
  }
  applied_.notify_all();
}

void SessionService::rewriteWalLocked(Session& session) {
  // Rebuilds the journal from trusted in-memory state (header + open record
  // + every accepted record newer than the last snapshot) via atomic
  // replace, and reopens a clean append descriptor.  Used after rotation
  // and as self-heal whenever the append fd has been lost or latched dirty
  // (failed fsync, injected power loss): the WAL's content is exactly
  // header+open+tail, so a full rewrite is always equivalent to the log the
  // torn tail was dropped from.
  RecordLog fresh(kWalHeader);
  std::string walBytes = fresh.headerLine();
  walBytes += fresh.appendLine(
      openPayload(session.engine.config(), session.epoch, session.standby));
  for (const auto& [seq, rec] : session.tail)
    walBytes += fresh.appendLine(mutPayload(rec));
  session.walFd.reset();
  fsio::writeFileDurable(session.walPath, walBytes);
  session.walFd = fsio::openAppend(session.walPath);
  session.wal = std::move(fresh);
}

void SessionService::appendWalLocked(Session& session,
                                     const MutationRecord& rec) {
  // WAL rule: the record is on disk before any work is scheduled and
  // before any reply — a crash after this point must replay it.
  //
  // A session with a journal path but no usable descriptor (a previous
  // rotation or append failed mid-way) must NOT silently skip the disk
  // write — that would acknowledge the mutation with no durability.
  // Rewrite the journal from trusted state first; if that fails too, the
  // error propagates and the mutation is refused un-acked.
  if (!session.walPath.empty() && !session.walFd.valid())
    rewriteWalLocked(session);
  if (session.walFd.valid()) {
    const std::string line = session.wal.appendLine(mutPayload(rec));
    try {
      fsio::appendDurable(session.walFd.get(), session.walPath, line);
    } catch (...) {
      // The on-disk tail may be torn and the fd may be latched dirty:
      // drop the descriptor so the next append rewrites the whole journal
      // from memory instead of appending past a tear.
      session.walFd.reset();
      throw;
    }
  }
  session.lastWalAppend = std::chrono::steady_clock::now();
}

void SessionService::persistLocked(Session& session) {
  if (session.snapPath.empty()) return;
  static metrics::Counter& snapshots =
      metrics::counter(metrics::kSessionSnapshots);
  ipc::MessageWriter writer;
  session.engine.encodeSnapshot(writer);
  writer.u64(session.ackSeq);
  writer.u32(static_cast<std::uint32_t>(session.outcomes.size()));
  for (const auto& [seq, outcome] : session.outcomes) {
    writer.u64(seq);
    writer.u32(outcome.planned ? 1 : 0);
    writer.u32(outcome.failed ? 1 : 0);
    writer.str(outcome.error);
    writer.str(outcome.program);
    writer.u64(outcome.compactedFrom);
    writer.u32(static_cast<std::uint32_t>(outcome.deltasPlanned));
    writer.u32(static_cast<std::uint32_t>(outcome.deltasRaw));
  }
  // Replication metadata, appended so pre-replication snapshots (which
  // simply end here) still decode: epoch 1, primary.
  writer.u64(session.epoch);
  writer.u32(session.standby ? 1 : 0);
  std::string body = writer.take();
  ipc::MessageWriter checksum;
  checksum.u64(fnv64(body));
  body += checksum.take();
  // Snapshot first (atomic replace), journal rotation second: a crash
  // between the two leaves a snapshot plus a journal whose early records
  // it already covers — replay skips them by sequence number.
  fsio::writeFileDurable(session.snapPath, body);
  snapshots.add();
  session.lastSnapshot = std::chrono::steady_clock::now();

  const std::uint64_t covered = session.engine.lastApplied();
  session.tail.erase(session.tail.begin(),
                     session.tail.upper_bound(covered));
  // If the rotation fails mid-way the descriptor stays invalid and the
  // next appendWalLocked rewrites the journal before acking anything — a
  // failed rotation must never silently disable durability.
  rewriteWalLocked(session);
  session.sinceSnapshot = 0;
}

bool SessionService::recoverOne(const std::string& base) {
  const std::string walPath = options_.stateDir + "/" + base + ".wal";
  const std::string snapPath = options_.stateDir + "/" + base + ".snap";
  static metrics::Counter& quarantinedCounter =
      metrics::counter(metrics::kSessionsQuarantined);
  auto quarantine = [&](const std::string& path) {
    try {
      fsio::renameDurable(path, path + ".corrupt");
    } catch (const Error& error) {
      log(LogLevel::kWarn) << "cannot quarantine '" << path
                           << "': " << error.what();
    }
    ++quarantined_;
    quarantinedCounter.add();
  };

  // Snapshot (if any): full engine state + unacked outcomes.
  std::optional<SessionEngine> engine;
  std::uint64_t ackSeq = 0;
  std::uint64_t snapEpoch = 1;
  bool snapStandby = false;
  std::map<std::uint64_t, PlanOutcome> outcomes;
  if (const auto bytes = fsio::readFileIfExists(snapPath)) {
    try {
      if (bytes->size() < 8) throw ipc::IpcError("snapshot too short");
      const std::string_view body(bytes->data(), bytes->size() - 8);
      ipc::MessageReader sumReader(
          std::string_view(bytes->data() + body.size(), 8));
      if (sumReader.u64() != fnv64(body))
        throw ipc::IpcError("snapshot checksum mismatch");
      ipc::MessageReader reader(body);
      engine.emplace(SessionEngine::decodeSnapshot(reader));
      ackSeq = reader.u64();
      const std::uint32_t count = reader.u32();
      for (std::uint32_t k = 0; k < count; ++k) {
        const std::uint64_t seq = reader.u64();
        PlanOutcome outcome;
        outcome.planned = reader.u32() != 0;
        outcome.failed = reader.u32() != 0;
        outcome.error = reader.str();
        outcome.program = reader.str();
        outcome.compactedFrom = reader.u64();
        outcome.deltasPlanned = static_cast<int>(reader.u32());
        outcome.deltasRaw = static_cast<int>(reader.u32());
        outcomes.emplace(seq, std::move(outcome));
      }
      // Pre-replication snapshots end here; newer ones append the fencing
      // epoch and the standby role.
      if (!reader.atEnd()) {
        snapEpoch = std::max<std::uint64_t>(1, reader.u64());
        snapStandby = reader.u32() != 0;
      }
      reader.expectEnd();
    } catch (const Error& error) {
      log(LogLevel::kWarn) << "corrupt session snapshot '" << snapPath
                           << "': " << error.what();
      quarantine(snapPath);
      engine.reset();
      ackSeq = 0;
      snapEpoch = 1;
      snapStandby = false;
      outcomes.clear();
    }
  }

  // Journal: open record + accepted mutations since the last rotation.
  std::vector<std::string> records;
  bool walValid = false;
  if (const auto bytes = fsio::readFileIfExists(walPath)) {
    try {
      RecordLog::Parsed parsed = RecordLog::parse(kWalHeader, *bytes);
      records = std::move(parsed.records);
      walValid = true;  // a torn tail was dropped, the prefix is trusted
    } catch (const Error& error) {
      log(LogLevel::kWarn) << "corrupt session journal '" << walPath
                           << "': " << error.what();
      quarantine(walPath);
    }
  }
  SessionConfig walConfig;
  std::uint64_t walEpoch = 1;
  bool walStandby = false;
  if (walValid &&
      (records.empty() ||
       !parseOpenPayload(records[0], walConfig, &walEpoch, &walStandby))) {
    log(LogLevel::kWarn) << "session journal '" << walPath
                         << "' has no valid open record";
    quarantine(walPath);
    walValid = false;
    records.clear();
  }
  if (!engine.has_value() && !walValid) return false;
  if (engine.has_value() && walValid && engine->config() != walConfig) {
    // A snapshot that does not belong to this journal (stale leftover):
    // the journal is the source of truth from birth, the snapshot is not.
    log(LogLevel::kWarn) << "session snapshot '" << snapPath
                         << "' does not match its journal; rebuilding from "
                            "the journal";
    quarantine(snapPath);
    engine.reset();
    ackSeq = 0;
    snapEpoch = 1;
    snapStandby = false;
    outcomes.clear();
  }
  const bool snapValid = engine.has_value();
  if (!engine.has_value()) engine.emplace(SessionEngine(walConfig));

  auto session = std::make_shared<Session>(std::move(*engine));
  session->ackSeq = ackSeq;
  session->outcomes = std::move(outcomes);
  // The journal's open record is rewritten on every epoch change, the
  // snapshot only every snapshotEvery records — take the newer of the two
  // (max is safe: epochs only ever grow) and the role that came with it.
  session->epoch = std::max(walValid ? walEpoch : 1, snapValid ? snapEpoch : 1);
  session->standby = walValid && walEpoch >= snapEpoch ? walStandby
                     : snapValid                       ? snapStandby
                                                       : walStandby;
  for (std::size_t k = walValid ? 1 : records.size(); k < records.size();
       ++k) {
    MutationRecord rec;
    if (!parseMutPayload(records[k], rec)) {
      log(LogLevel::kWarn) << "session journal '" << walPath
                           << "': unparseable record " << k;
      break;
    }
    if (rec.seq <= session->engine.lastApplied()) continue;  // in snapshot
    if (rec.seq != session->engine.lastApplied() + 1) break;  // hole
    session->outcomes[rec.seq] = session->engine.apply(rec);
    session->tail.emplace(rec.seq, rec);
  }
  session->applied = session->lastAccepted = session->engine.lastApplied();
  session->outcomes.erase(session->outcomes.begin(),
                          session->outcomes.upper_bound(session->ackSeq));

  // Rewrite the journal fresh (drops torn tails and snapshot-covered
  // records) and reopen it for appending.  A rewrite failure must NOT drop
  // the recovered session: the old journal is still intact on disk
  // (durable replace is atomic), so the session is kept with an invalid
  // descriptor and appendWalLocked rewrites the journal before acking the
  // next mutation.  Dropping it here would let a later open() create a
  // fresh session over the old journal — destroying acknowledged history
  // on nothing more than a transient write failure.
  session->walPath = walPath;
  session->snapPath = snapPath;
  RecordLog fresh(kWalHeader);
  std::string walBytes = fresh.headerLine();
  walBytes += fresh.appendLine(openPayload(session->engine.config(),
                                           session->epoch, session->standby));
  for (const auto& [seq, rec] : session->tail)
    walBytes += fresh.appendLine(mutPayload(rec));
  try {
    fsio::writeFileDurable(walPath, walBytes);
    session->walFd = fsio::openAppend(walPath);
    session->wal = std::move(fresh);
  } catch (const Error& error) {
    log(LogLevel::kWarn) << "cannot rewrite session journal '" << walPath
                         << "' (recovered state kept, rewrite deferred): "
                         << error.what();
    session->walFd.reset();
  }
  sessions_.emplace(key(session->engine.config().tenant,
                        session->engine.config().name),
                    std::move(session));
  return true;
}

SessionOpenResponse SessionService::open(const SessionOpenRequest& request) {
  static metrics::Counter& opened = metrics::counter(metrics::kSessionOpened);
  static metrics::Counter& resumed =
      metrics::counter(metrics::kSessionResumed);
  SessionOpenResponse response;
  if (!validSessionName(request.tenant) || !validSessionName(request.name)) {
    response.status = SessionStatus::kFailed;
    response.error = "tenant/session names must be 1-64 chars of "
                     "[A-Za-z0-9._-]";
    return response;
  }
  SessionConfig config;
  config.tenant = request.tenant;
  config.name = request.name;
  config.priority = static_cast<int>(request.priority);
  config.weight = static_cast<double>(std::max<std::uint32_t>(1, request.weight));
  config.planner = request.planner;
  config.stateCount = request.stateCount;
  config.inputCount = request.inputCount;
  config.outputCount = request.outputCount;
  config.seed = request.seed;

  std::unique_lock lock(mutex_);
  const std::string k = key(request.tenant, request.name);
  const auto it = sessions_.find(k);
  if (it != sessions_.end()) {
    if (!request.resume) {
      response.status = SessionStatus::kFailed;
      response.error = "session already exists (use resume)";
    } else if (it->second->engine.config() != config) {
      response.status = SessionStatus::kFailed;
      response.error = "session config mismatch on resume";
    } else {
      SessionPtr session = it->second;
      // A client resuming against a standby IS the failover signal: the
      // primary is gone and the stream re-resolved here.  Promote before
      // reporting the high-water mark the client will resume from —
      // unless the standby heard from its primary inside the grace window
      // (a healthy primary must not be deposed by a client-side blip).
      if (session->standby) {
        if (!promotionDueLocked(*session)) {
          response.status = SessionStatus::kFailed;
          response.error =
              "session is a standby still replicating from a live primary "
              "(within --standby-grace); resume against the primary";
          return response;
        }
        promoteLocked(lock, *session, k);
        // The promotion wait released mutex_: the entry may have been
        // closed (or closed and reopened) meanwhile.
        if (!stillOpenLocked(k, session)) {
          response.status = SessionStatus::kNotFound;
          response.error = "session closed during promotion";
          return response;
        }
      }
      resumed.add();
      response.status = SessionStatus::kOk;
      response.lastApplied = session->lastAccepted;
    }
    return response;
  }
  if (draining_) {
    response.status = SessionStatus::kDraining;
    response.error = "daemon is draining";
    return response;
  }
  if (sessions_.size() >= options_.maxSessions) {
    response.status = SessionStatus::kResourceExhausted;
    response.error = "session limit (" +
                     std::to_string(options_.maxSessions) + ") reached";
    response.retryAfterMs = 1000;
    return response;
  }
  try {
    plannerFn(config.planner);  // validate the name before committing
    auto session = std::make_shared<Session>(SessionEngine(config));
    if (!options_.stateDir.empty()) {
      session->walPath = options_.stateDir + "/" + k + ".wal";
      session->snapPath = options_.stateDir + "/" + k + ".snap";
      // A stale snapshot under this name (crash mid-close) must not be
      // mixed with the fresh journal on a later recovery.
      fsio::removeFileDurable(session->snapPath);
      const std::string walBytes =
          session->wal.headerLine() +
          session->wal.appendLine(openPayload(config));
      fsio::writeFileDurable(session->walPath, walBytes);
      session->walFd = fsio::openAppend(session->walPath);
    }
    sessions_.emplace(k, std::move(session));
    opened.add();
    response.status = SessionStatus::kOk;
    response.lastApplied = 0;
  } catch (const Error& error) {
    response.status = SessionStatus::kFailed;
    response.error = error.what();
  }
  return response;
}

SessionMutateResponse SessionService::answerFromHistory(
    Session& session, std::uint64_t seq) const {
  SessionMutateResponse response;
  response.seq = seq;
  const auto it = session.outcomes.find(seq);
  if (it == session.outcomes.end()) {
    response.status = SessionStatus::kFailed;
    response.error =
        seq <= session.ackSeq
            ? "transcript entry already acknowledged and trimmed"
            : "mutation not applied (service stopped)";
    return response;
  }
  const PlanOutcome& outcome = it->second;
  if (outcome.failed) {
    response.status = SessionStatus::kFailed;
    response.error = outcome.error;
  } else if (outcome.planned) {
    response.status = SessionStatus::kOk;
    response.program = outcome.program;
    response.compactedFrom = outcome.compactedFrom;
    response.deltasPlanned =
        static_cast<std::uint32_t>(outcome.deltasPlanned);
    response.deltasRaw = static_cast<std::uint32_t>(outcome.deltasRaw);
  } else {
    response.status = SessionStatus::kAccepted;
  }
  return response;
}

SessionMutateResponse SessionService::mutate(
    const SessionMutateRequest& request) {
  static metrics::Counter& accepted =
      metrics::counter(metrics::kSessionMutationsAccepted);
  static metrics::Counter& rejected =
      metrics::counter(metrics::kSessionMutationsRejected);
  static metrics::Histogram& mutateLatency =
      metrics::histogram(metrics::kSessionMutateLatency);
  static metrics::RollingHistogram& mutateWindow =
      metrics::rolling(metrics::kSessionMutateWindow);
  metrics::ScopedLatency latency(mutateLatency);
  metrics::ScopedWindowLatency windowLatency(mutateWindow);
  // Adopt the frame's trace context so the executor-side apply span chains
  // back to the remote caller.  The context never enters the journal:
  // replay after recovery owes nobody a trace.
  trace::ContextScope contextScope(request.context);
  trace::ScopedSpan mutateSpan(
      "session.mutate_request", "session",
      {trace::Arg::str("tenant", request.tenant),
       trace::Arg::num("seq", request.seq)});

  SessionMutateResponse response;
  response.seq = request.seq;
  std::unique_lock lock(mutex_);
  const std::string k = key(request.tenant, request.name);
  const auto it = sessions_.find(k);
  if (it == sessions_.end()) {
    response.status = SessionStatus::kNotFound;
    response.error = "unknown session " + request.tenant + "/" + request.name;
    return response;
  }
  SessionPtr session = it->second;
  // A client write reaching a standby is client-transparent failover in
  // action: the stream re-resolved here because the primary died — unless
  // the standby heard from its primary inside the grace window.
  if (session->standby) {
    if (!promotionDueLocked(*session)) {
      response.status = SessionStatus::kFailed;
      response.error =
          "session is a standby still replicating from a live primary "
          "(within --standby-grace); mutate against the primary";
      return response;
    }
    promoteLocked(lock, *session, k);
    // The promotion wait released mutex_: `it` may now dangle and the key
    // may map to nothing (close) or to a different session (close+reopen).
    if (!stillOpenLocked(k, session)) {
      response.status = SessionStatus::kNotFound;
      response.error = "session closed during promotion";
      return response;
    }
  }
  if (session->fenced) {
    response.status = SessionStatus::kStaleEpoch;
    response.error =
        "session fenced: a standby holds a newer epoch (deposed primary)";
    return response;
  }
  if (request.ackSeq > session->ackSeq) {
    session->ackSeq = std::min(request.ackSeq, session->applied);
    session->outcomes.erase(
        session->outcomes.begin(),
        session->outcomes.upper_bound(session->ackSeq));
  }
  if (request.seq == 0 || request.seq > session->lastAccepted + 1) {
    response.status = SessionStatus::kBadSequence;
    response.error = "expected seq " +
                     std::to_string(session->lastAccepted + 1) + ", got " +
                     std::to_string(request.seq);
    return response;
  }
  if (request.seq <= session->lastAccepted) {
    // A resent duplicate (retry after a lost reply): wait for its apply
    // and answer from the transcript — never re-journal, never re-plan.
    applied_.wait(lock, [&] {
      return session->applied >= request.seq || stopped_;
    });
    return answerFromHistory(*session, request.seq);
  }
  if (draining_) {
    response.status = SessionStatus::kDraining;
    response.error = "daemon is draining";
    return response;
  }
  auto bucket = buckets_.find(request.tenant);
  if (bucket == buckets_.end())
    bucket = buckets_
                 .emplace(request.tenant,
                          TokenBucket(options_.tenantRate,
                                      options_.tenantBurst))
                 .first;
  const auto now = TokenBucket::Clock::now();
  if (!bucket->second.tryTake(1.0, now)) {
    rejected.add();
    response.status = SessionStatus::kResourceExhausted;
    response.error =
        "tenant '" + request.tenant + "' is over its mutation rate";
    response.retryAfterMs =
        std::max<std::int64_t>(1, bucket->second.msUntil(1.0, now));
    return response;
  }
  MutationRecord rec;
  rec.seq = request.seq;
  rec.deltaCount = request.deltaCount;
  rec.newStateCount = request.newStateCount;
  rec.mutationSeed = request.mutationSeed;
  rec.defer = request.defer;
  if (replicator_ && replicator_->ackMode() == ReplAck::kQuorum) {
    // Quorum rule: every standby journals the record durably BEFORE the
    // local append and long before the client ack.  A refusal here leaves
    // nothing local — the client retries and no acked mutation can exist
    // that the standbys lack.  Ship without the store mutex (the ship
    // blocks on standby fsyncs) and re-validate after relocking.
    const SessionReplAppendRequest ship =
        replRequestFor(session->engine.config(), session->epoch, rec);
    lock.unlock();
    const ShipResult shipped = replicator_->shipSync(ship);
    lock.lock();
    // Identity check, not just presence: a close+reopen race through the
    // unlocked window leaves the key mapping to a *different* session —
    // this record must not be journaled into the namesake's transcript.
    if (!stillOpenLocked(k, session)) {
      response.status = SessionStatus::kNotFound;
      response.error = "session closed during replication";
      return response;
    }
    if (shipped.staleEpoch || session->fenced) {
      session->fenced = true;
      rejected.add();
      response.status = SessionStatus::kStaleEpoch;
      response.error =
          "session fenced: a standby holds a newer epoch (deposed primary)";
      return response;
    }
    if (!shipped.ok) {
      rejected.add();
      response.status = SessionStatus::kFailed;
      response.error = "replication failed: " + shipped.error;
      return response;
    }
    if (request.seq <= session->lastAccepted) {
      // A retry raced us through the unlocked window; its journaled copy
      // wins and this one answers from the transcript like any duplicate.
      applied_.wait(lock, [&] {
        return session->applied >= request.seq || stopped_;
      });
      return answerFromHistory(*session, request.seq);
    }
    if (request.seq != session->lastAccepted + 1) {
      response.status = SessionStatus::kBadSequence;
      response.error = "expected seq " +
                       std::to_string(session->lastAccepted + 1) + ", got " +
                       std::to_string(request.seq);
      return response;
    }
  }
  try {
    appendWalLocked(*session, rec);
  } catch (const Error& error) {
    response.status = SessionStatus::kFailed;
    response.error = std::string("journal append failed: ") + error.what();
    return response;
  }
  session->lastAccepted = rec.seq;
  session->tail.emplace(rec.seq, rec);
  accepted.add();
  if (replicator_ && replicator_->ackMode() == ReplAck::kAsync) {
    // Async rule: local durability first, ack immediately, ship from the
    // bounded per-replica queue.  A refused enqueue (queue full) becomes a
    // standby-side sequence gap the next successful ship resyncs.
    replicator_->shipAsync(
        replRequestFor(session->engine.config(), session->epoch, rec));
  }
  const SessionConfig& config = session->engine.config();
  // Hand the mutate span's context to the executor thread so the apply
  // span parents under it (and, transitively, under the remote caller).
  scheduler_.enqueue(k, config.priority, config.weight,
                     {[this, session, rec,
                       context = trace::currentContext()] {
                        trace::ContextScope scope(context);
                        applyOne(session, rec);
                      },
                      1.0 + static_cast<double>(rec.deltaCount)});
  work_.notify_all();
  applied_.wait(lock,
                [&] { return session->applied >= rec.seq || stopped_; });
  return answerFromHistory(*session, rec.seq);
}

SessionReplayResponse SessionService::replay(
    const SessionReplayRequest& request) {
  SessionReplayResponse response;
  std::unique_lock lock(mutex_);
  const auto it = sessions_.find(key(request.tenant, request.name));
  if (it == sessions_.end()) {
    response.status = SessionStatus::kNotFound;
    response.error = "unknown session " + request.tenant + "/" + request.name;
    return response;
  }
  SessionPtr session = it->second;
  const std::uint64_t hi =
      request.toSeq == 0
          ? session->lastAccepted
          : std::min(request.toSeq, session->lastAccepted);
  applied_.wait(lock,
                [&] { return session->applied >= hi || stopped_; });
  if (request.fromSeq <= session->ackSeq && session->ackSeq > 0) {
    response.status = SessionStatus::kFailed;
    response.error = "entries up to seq " +
                     std::to_string(session->ackSeq) +
                     " were acknowledged and trimmed";
    return response;
  }
  for (auto entry = session->outcomes.lower_bound(request.fromSeq);
       entry != session->outcomes.end() && entry->first <= hi; ++entry) {
    if (!entry->second.planned) continue;
    SessionReplayResponse::Entry e;
    e.seq = entry->first;
    e.program = entry->second.program;
    response.entries.push_back(std::move(e));
  }
  response.status = SessionStatus::kOk;
  return response;
}

SessionCloseResponse SessionService::close(const SessionCloseRequest& request) {
  SessionCloseResponse response;
  std::unique_lock lock(mutex_);
  const auto it = sessions_.find(key(request.tenant, request.name));
  if (it == sessions_.end()) {
    response.status = SessionStatus::kNotFound;
    response.error = "unknown session " + request.tenant + "/" + request.name;
    return response;
  }
  SessionPtr session = it->second;
  applied_.wait(lock, [&] {
    return session->applied >= session->lastAccepted || stopped_;
  });
  response.mutationsApplied = session->applied;
  response.plans = session->engine.planCount();
  session->walFd.reset();
  if (!session->walPath.empty()) {
    try {
      fsio::removeFileDurable(session->walPath);
      fsio::removeFileDurable(session->snapPath);
    } catch (const Error& error) {
      log(LogLevel::kWarn) << "cannot remove session files: "
                           << error.what();
    }
  }
  sessions_.erase(key(request.tenant, request.name));
  response.status = SessionStatus::kOk;
  return response;
}

// --- Replication plane ----------------------------------------------------

SessionReplAppendResponse SessionService::replAppend(
    const SessionReplAppendRequest& request) {
  static metrics::Counter& staleRejected =
      metrics::counter(metrics::kServiceStaleEpochRejected);
  SessionReplAppendResponse response;
  SessionConfig config;
  config.tenant = request.tenant;
  config.name = request.name;
  config.priority = static_cast<int>(request.priority);
  config.weight =
      static_cast<double>(std::max<std::uint32_t>(1, request.weight));
  config.planner = request.planner;
  config.stateCount = request.stateCount;
  config.inputCount = request.inputCount;
  config.outputCount = request.outputCount;
  config.seed = request.seed;
  if (!validSessionName(config.tenant) || !validSessionName(config.name)) {
    response.status = SessionStatus::kFailed;
    response.error = "tenant/session names must be 1-64 chars of "
                     "[A-Za-z0-9._-]";
    return response;
  }
  std::unique_lock lock(mutex_);
  const std::string k = key(request.tenant, request.name);
  auto it = sessions_.find(k);
  if (it == sessions_.end()) {
    // First contact from a primary: materialize the standby session from
    // the config the frame carries (no separate open exchange).
    if (draining_) {
      response.status = SessionStatus::kDraining;
      response.error = "daemon is draining";
      return response;
    }
    if (sessions_.size() >= options_.maxSessions) {
      response.status = SessionStatus::kResourceExhausted;
      response.error = "session limit (" +
                       std::to_string(options_.maxSessions) + ") reached";
      return response;
    }
    try {
      plannerFn(config.planner);
      auto session = std::make_shared<Session>(SessionEngine(config));
      session->standby = true;
      session->epoch = std::max<std::uint64_t>(1, request.epoch);
      if (!options_.stateDir.empty()) {
        session->walPath = options_.stateDir + "/" + k + ".wal";
        session->snapPath = options_.stateDir + "/" + k + ".snap";
        fsio::removeFileDurable(session->snapPath);
        const std::string walBytes =
            session->wal.headerLine() +
            session->wal.appendLine(
                openPayload(config, session->epoch, true));
        fsio::writeFileDurable(session->walPath, walBytes);
        session->walFd = fsio::openAppend(session->walPath);
      }
      it = sessions_.emplace(k, std::move(session)).first;
    } catch (const Error& error) {
      response.status = SessionStatus::kFailed;
      response.error = error.what();
      return response;
    }
  }
  SessionPtr session = it->second;
  response.epoch = session->epoch;
  response.lastAccepted = session->lastAccepted;
  // The fence: a frame from an older epoch — or from a twin primary at our
  // own epoch — is a deposed primary still streaming.  Refuse and count.
  if (request.epoch < session->epoch ||
      (request.epoch == session->epoch && !session->standby)) {
    staleRejected.add();
    response.status = SessionStatus::kStaleEpoch;
    response.error = "stale epoch " + std::to_string(request.epoch) +
                     " (current " + std::to_string(session->epoch) + ")";
    log(LogLevel::kWarn) << "session " << k
                         << " refused stale-epoch append (epoch "
                         << request.epoch << ", current " << session->epoch
                         << ")";
    return response;
  }
  if (session->engine.config() != config) {
    response.status = SessionStatus::kFailed;
    response.error = "replication config mismatch";
    return response;
  }
  if (request.epoch > session->epoch) {
    // A newer primary exists.  Adopt its epoch; a session that thought it
    // was primary is demoted back to standby (the old-primary-rejoins-as-
    // standby leg of the failover matrix).  The accepted suffix is NOT
    // kept: records past the new primary's promotion point share sequence
    // numbers with genuinely different records (a deposed primary's
    // async-acked-but-unshipped run, or a quorum ship that reached us for
    // a mutation the lost primary never acked), and nothing on the wire
    // proves record identity by seq alone — absorbing the new primary's
    // ships as "duplicates" would let phantom records survive into a
    // later promotion.  Discard the replay state and report a gap so the
    // new primary resyncs us from its snapshot + tail.
    if (!session->standby)
      log(LogLevel::kWarn) << "session " << k << " demoted to standby (epoch "
                           << session->epoch << " -> " << request.epoch
                           << ")";
    // Quiesce before discarding: executors touch the engine without the
    // store mutex.  The wait releases mutex_, so re-validate the entry.
    applied_.wait(lock, [&] {
      return session->applied >= session->lastAccepted || stopped_;
    });
    if (!stillOpenLocked(k, session)) {
      response.status = SessionStatus::kNotFound;
      response.error = "session closed during epoch adoption";
      return response;
    }
    const SessionConfig keep = session->engine.config();
    session->engine = SessionEngine(keep);
    session->outcomes.clear();
    session->tail.clear();
    session->lastAccepted = 0;
    session->applied = 0;
    session->ackSeq = 0;
    session->sinceSnapshot = 0;
    session->epoch = request.epoch;
    session->standby = true;
    session->fenced = false;
    response.epoch = session->epoch;
    response.lastAccepted = 0;
    try {
      // The on-disk snapshot still holds the discarded suffix; a crash
      // before the resync install must not resurrect it on recovery.
      if (!session->snapPath.empty())
        fsio::removeFileDurable(session->snapPath);
      if (!session->walPath.empty()) rewriteWalLocked(*session);
    } catch (const Error& error) {
      log(LogLevel::kWarn) << "cannot persist epoch adoption for " << k
                           << ": " << error.what();
    }
  }
  session->lastReplContact = std::chrono::steady_clock::now();
  if (request.seq <= session->lastAccepted) {
    response.status = SessionStatus::kOk;  // duplicate ship: idempotent
    return response;
  }
  if (request.seq != session->lastAccepted + 1) {
    response.status = SessionStatus::kBadSequence;  // gap: primary resyncs
    response.error = "expected seq " +
                     std::to_string(session->lastAccepted + 1) + ", got " +
                     std::to_string(request.seq);
    return response;
  }
  MutationRecord rec;
  rec.seq = request.seq;
  rec.deltaCount = request.deltaCount;
  rec.newStateCount = request.newStateCount;
  rec.mutationSeed = request.mutationSeed;
  rec.defer = request.defer;
  try {
    appendWalLocked(*session, rec);
  } catch (const Error& error) {
    response.status = SessionStatus::kFailed;
    response.error = std::string("journal append failed: ") + error.what();
    return response;
  }
  session->lastAccepted = rec.seq;
  session->tail.emplace(rec.seq, rec);
  // Warm replay: schedule the apply like a client mutation but do NOT wait
  // for it — the primary's quorum needs the fsync, not the plan.  The
  // continuously-applied engine is what makes promotion O(tail).  (`k`,
  // not `it->first`: the epoch-adoption quiesce may have invalidated it.)
  const SessionConfig& cfg = session->engine.config();
  scheduler_.enqueue(k, cfg.priority, cfg.weight,
                     {[this, session, rec] { applyOne(session, rec); },
                      1.0 + static_cast<double>(rec.deltaCount)});
  work_.notify_all();
  response.lastAccepted = session->lastAccepted;
  response.status = SessionStatus::kOk;
  return response;
}

SessionReplSnapshotResponse SessionService::replInstall(
    const SessionReplSnapshotRequest& request) {
  static metrics::Counter& staleRejected =
      metrics::counter(metrics::kServiceStaleEpochRejected);
  SessionReplSnapshotResponse response;
  // Verify and decode before touching the store: the bytes are the
  // primary's .snap file verbatim, checksum trailer included.
  std::optional<SessionEngine> engine;
  std::uint64_t ackSeq = 0;
  std::map<std::uint64_t, PlanOutcome> outcomes;
  try {
    const std::string& bytes = request.snapshot;
    if (bytes.size() < 8) throw ipc::IpcError("snapshot too short");
    const std::string_view body(bytes.data(), bytes.size() - 8);
    ipc::MessageReader sumReader(
        std::string_view(bytes.data() + body.size(), 8));
    if (sumReader.u64() != fnv64(body))
      throw ipc::IpcError("snapshot checksum mismatch");
    ipc::MessageReader reader(body);
    engine.emplace(SessionEngine::decodeSnapshot(reader));
    ackSeq = reader.u64();
    const std::uint32_t count = reader.u32();
    for (std::uint32_t n = 0; n < count; ++n) {
      const std::uint64_t seq = reader.u64();
      PlanOutcome outcome;
      outcome.planned = reader.u32() != 0;
      outcome.failed = reader.u32() != 0;
      outcome.error = reader.str();
      outcome.program = reader.str();
      outcome.compactedFrom = reader.u64();
      outcome.deltasPlanned = static_cast<int>(reader.u32());
      outcome.deltasRaw = static_cast<int>(reader.u32());
      outcomes.emplace(seq, std::move(outcome));
    }
    if (!reader.atEnd()) {
      reader.u64();  // the primary's epoch at snapshot time; the frame's
      reader.u32();  // epoch governs, and our role stays standby
    }
    reader.expectEnd();
  } catch (const Error& error) {
    response.status = SessionStatus::kFailed;
    response.error = std::string("bad snapshot: ") + error.what();
    return response;
  }
  std::unique_lock lock(mutex_);
  const std::string k = key(request.tenant, request.name);
  auto it = sessions_.find(k);
  if (it != sessions_.end()) {
    SessionPtr session = it->second;
    if (request.epoch < session->epoch ||
        (request.epoch == session->epoch && !session->standby)) {
      staleRejected.add();
      response.status = SessionStatus::kStaleEpoch;
      response.error = "stale epoch " + std::to_string(request.epoch) +
                       " (current " + std::to_string(session->epoch) + ")";
      response.epoch = session->epoch;
      response.lastAccepted = session->lastAccepted;
      return response;
    }
    if (engine->lastApplied() <= session->lastAccepted &&
        request.epoch == session->epoch) {
      // We already hold everything this snapshot covers: no-op.
      response.status = SessionStatus::kOk;
      response.epoch = session->epoch;
      response.lastAccepted = session->lastAccepted;
      return response;
    }
    // Quiesce: no executor may hold the engine while we swap it out.  The
    // wait releases mutex_, so re-validate the entry before writing into
    // it (a concurrent close() may have erased — or close+reopen
    // replaced — the session meanwhile).
    applied_.wait(lock, [&] {
      return session->applied >= session->lastAccepted || stopped_;
    });
    if (!stillOpenLocked(k, session)) {
      response.status = SessionStatus::kNotFound;
      response.error = "session closed during snapshot install";
      return response;
    }
    session->engine = std::move(*engine);
    session->outcomes = std::move(outcomes);
    session->ackSeq = ackSeq;
    session->applied = session->lastAccepted = session->engine.lastApplied();
    session->tail.clear();
    session->sinceSnapshot = 0;
    session->epoch = std::max(session->epoch, request.epoch);
    session->standby = true;
    session->fenced = false;
    session->lastReplContact = std::chrono::steady_clock::now();
    try {
      if (!session->snapPath.empty()) {
        fsio::writeFileDurable(session->snapPath, request.snapshot);
        session->lastSnapshot = std::chrono::steady_clock::now();
      }
      if (!session->walPath.empty()) rewriteWalLocked(*session);
    } catch (const Error& error) {
      log(LogLevel::kWarn) << "cannot persist installed snapshot for " << k
                           << ": " << error.what();
      session->walFd.reset();
    }
    applied_.notify_all();
    response.status = SessionStatus::kOk;
    response.epoch = session->epoch;
    response.lastAccepted = session->lastAccepted;
    return response;
  }
  if (draining_) {
    response.status = SessionStatus::kDraining;
    response.error = "daemon is draining";
    return response;
  }
  if (sessions_.size() >= options_.maxSessions) {
    response.status = SessionStatus::kResourceExhausted;
    response.error = "session limit (" +
                     std::to_string(options_.maxSessions) + ") reached";
    return response;
  }
  auto session = std::make_shared<Session>(std::move(*engine));
  session->outcomes = std::move(outcomes);
  session->ackSeq = ackSeq;
  session->applied = session->lastAccepted = session->engine.lastApplied();
  session->standby = true;
  session->epoch = std::max<std::uint64_t>(1, request.epoch);
  session->lastReplContact = std::chrono::steady_clock::now();
  if (!options_.stateDir.empty()) {
    session->walPath = options_.stateDir + "/" + k + ".wal";
    session->snapPath = options_.stateDir + "/" + k + ".snap";
    try {
      fsio::writeFileDurable(session->snapPath, request.snapshot);
      session->lastSnapshot = std::chrono::steady_clock::now();
      rewriteWalLocked(*session);
    } catch (const Error& error) {
      log(LogLevel::kWarn) << "cannot persist installed snapshot for " << k
                           << ": " << error.what();
      session->walFd.reset();
    }
  }
  response.epoch = session->epoch;
  response.lastAccepted = session->lastAccepted;
  sessions_.emplace(k, std::move(session));
  response.status = SessionStatus::kOk;
  return response;
}

SessionStatusResponse SessionService::status(
    const SessionStatusRequest& request) {
  SessionStatusResponse response;
  std::lock_guard lock(mutex_);
  const auto it = sessions_.find(key(request.tenant, request.name));
  if (it == sessions_.end()) {
    response.status = SessionStatus::kNotFound;
    response.error = "unknown session " + request.tenant + "/" + request.name;
    return response;
  }
  const Session& session = *it->second;
  response.status = SessionStatus::kOk;
  response.role = session.standby ? "standby" : "primary";
  response.epoch = session.epoch;
  response.lastAccepted = session.lastAccepted;
  response.applied = session.applied;
  return response;
}

void SessionService::promoteLocked(std::unique_lock<std::mutex>& lock,
                                   Session& session,
                                   std::string sessionKey) {
  // O(tail) by construction: the standby has been warm-replaying every
  // shipped record continuously, so only the records still queued behind
  // the executors remain to apply.  (Callers hold a SessionPtr, so the
  // session outlives the unlocked wait; sessionKey is a by-value copy
  // because a map-node reference would dangle if a concurrent close()
  // erased the entry while the lock was dropped.)
  applied_.wait(lock, [&] {
    return session.applied >= session.lastAccepted || stopped_;
  });
  session.standby = false;
  session.fenced = false;
  session.epoch += 1;
  metrics::counter(metrics::kServiceFailovers).add();
  log(LogLevel::kWarn) << "session " << sessionKey
                       << " promoted to primary (epoch " << session.epoch
                       << ")";
  // Persist the new epoch immediately: a crash right after promotion must
  // not recover into the deposed epoch and un-fence the old primary.
  try {
    if (!session.walPath.empty()) rewriteWalLocked(session);
  } catch (const Error& error) {
    log(LogLevel::kWarn) << "cannot persist promotion of " << sessionKey
                         << ": " << error.what();
  }
}

bool SessionService::stillOpenLocked(const std::string& sessionKey,
                                     const SessionPtr& session) const {
  const auto it = sessions_.find(sessionKey);
  return it != sessions_.end() && it->second == session;
}

bool SessionService::promotionDueLocked(const Session& session) const {
  if (options_.standbyGrace.count() <= 0) return true;   // gate disabled
  if (session.lastReplContact == std::chrono::steady_clock::time_point{})
    return true;  // never replicated to: nothing to protect
  return std::chrono::steady_clock::now() - session.lastReplContact >=
         options_.standbyGrace;
}

std::optional<Replicator::ResyncBundle> SessionService::resyncBundle(
    const std::string& tenant, const std::string& name) {
  std::lock_guard lock(mutex_);
  const auto it = sessions_.find(key(tenant, name));
  if (it == sessions_.end()) return std::nullopt;
  Session& session = *it->second;
  Replicator::ResyncBundle bundle;
  bundle.snapshot.tenant = tenant;
  bundle.snapshot.name = name;
  bundle.snapshot.epoch = session.epoch;
  if (!session.snapPath.empty())
    if (const auto bytes = fsio::readFileIfExists(session.snapPath))
      bundle.snapshot.snapshot = *bytes;
  for (const auto& [seq, rec] : session.tail)
    bundle.tail.push_back(
        replRequestFor(session.engine.config(), session.epoch, rec));
  return bundle;
}

void SessionService::fenceSession(const std::string& tenant,
                                  const std::string& name,
                                  std::uint64_t standbyEpoch) {
  std::lock_guard lock(mutex_);
  const auto it = sessions_.find(key(tenant, name));
  if (it == sessions_.end()) return;
  it->second->fenced = true;
  log(LogLevel::kWarn) << "session " << key(tenant, name)
                       << " fenced: a standby holds epoch " << standbyEpoch
                       << " (local epoch " << it->second->epoch << ")";
}

void SessionService::beginDrain() {
  std::lock_guard lock(mutex_);
  draining_ = true;
}

std::size_t SessionService::drain() {
  static metrics::Counter& drained =
      metrics::counter(metrics::kSessionsDrained);
  {
    std::lock_guard lock(mutex_);
    draining_ = true;
    stopping_ = true;
    work_.notify_all();
  }
  // Finish or checkpoint in-flight work: every journaled mutation is
  // queued, and the executors exit only once the scheduler is idle.
  for (std::thread& t : executors_) t.join();
  executors_.clear();
  std::lock_guard lock(mutex_);
  stopped_ = true;
  applied_.notify_all();
  std::size_t persisted = 0;
  for (auto& [k, session] : sessions_) {
    try {
      persistLocked(*session);
      session->walFd.reset();
      ++persisted;
      drained.add();
    } catch (const Error& error) {
      log(LogLevel::kWarn) << "cannot persist session " << k
                           << " on drain: " << error.what();
    }
  }
  return persisted;
}

std::size_t SessionService::sessionCount() const {
  std::lock_guard lock(mutex_);
  return sessions_.size();
}

void SessionService::fillStats(StatsResponse& stats) const {
  // Publish replication lag before the metrics snapshot the caller takes
  // right after this (the gauges are only as fresh as the last scrape).
  if (replicator_) replicator_->refreshGauges();
  std::lock_guard lock(mutex_);
  std::map<std::string, double> vtimes;
  for (const FairScheduler::FlowStats& flow : scheduler_.flowStats())
    vtimes.emplace(flow.flow, flow.vtime);
  const auto steadyNow = std::chrono::steady_clock::now();
  const auto bucketNow = TokenBucket::Clock::now();
  const auto ageMs = [&](std::chrono::steady_clock::time_point t) {
    if (t == std::chrono::steady_clock::time_point{})
      return static_cast<std::int64_t>(-1);
    return static_cast<std::int64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(steadyNow - t)
            .count());
  };
  for (const auto& [flowKey, session] : sessions_) {
    const SessionConfig& config = session->engine.config();
    StatsResponse::SessionStats row;
    row.tenant = config.tenant;
    row.name = config.name;
    row.priority = static_cast<std::uint32_t>(config.priority);
    row.weight = config.weight;
    if (const auto vt = vtimes.find(flowKey); vt != vtimes.end())
      row.vtime = vt->second;
    // A tenant that has never mutated has no bucket yet — it would start
    // with a full burst.
    const auto bucket = buckets_.find(config.tenant);
    row.tokensRemaining = bucket != buckets_.end()
                              ? bucket->second.tokensAt(bucketNow)
                              : options_.tenantBurst;
    row.queued = session->lastAccepted - session->applied;
    row.applied = session->applied;
    row.walAgeMs = ageMs(session->lastWalAppend);
    row.snapshotAgeMs = ageMs(session->lastSnapshot);
    row.role = session->standby ? "standby" : "primary";
    row.epoch = session->epoch;
    stats.sessions.push_back(std::move(row));
  }
  stats.openSessions = sessions_.size();
  stats.schedulerDepth = scheduler_.depth();
  stats.schedulerVirtualNow = scheduler_.virtualNow();
}

// --- SessionStream --------------------------------------------------------

SessionStream::SessionStream(Options options) : options_(std::move(options)) {
  ipc::ignoreSigpipe();
  endpoints_ = options_.endpoints.empty()
                   ? std::vector<ipc::Endpoint>{options_.endpoint}
                   : options_.endpoints;
  breakers_.reserve(endpoints_.size());
  for (std::size_t k = 0; k < endpoints_.size(); ++k)
    breakers_.push_back(std::make_unique<CircuitBreaker>());
}

void SessionStream::rotate() {
  if (endpoints_.size() < 2) return;
  // Prefer the next endpoint whose breaker is not OPEN — an endpoint that
  // just timed out repeatedly should not be the first thing re-tried mid-
  // failover.  With every breaker open, plain round-robin (something has
  // to be probed).
  const std::size_t start = current_;
  std::size_t candidate = (start + 1) % endpoints_.size();
  for (std::size_t step = 1; step <= endpoints_.size(); ++step) {
    const std::size_t probe = (start + step) % endpoints_.size();
    if (breakers_[probe]->state() != CircuitBreaker::State::kOpen) {
      candidate = probe;
      break;
    }
  }
  if (candidate == start) return;
  current_ = candidate;
  ++failovers_;
  conn_.reset();
}

std::string SessionStream::exchange(const std::string& payload) {
  const auto deadline = std::chrono::steady_clock::now() + options_.retryFor;
  std::uint32_t attempt = 0;
  std::string lastError = "not connected";
  for (;;) {
    const ipc::Endpoint& endpoint = endpoints_[current_];
    CircuitBreaker& breaker = *breakers_[current_];
    try {
      if (!conn_.valid()) {
        conn_ = ipc::connectEndpoint(endpoint, 1000);
      } else if (ipc::pendingInput(conn_.get())) {
        // A reused connection with bytes already queued is desynchronized
        // (a duplicated or late frame): a read now would pair the stale
        // frame with this request.  Reconnect and resend instead.
        lastError = "stream desynchronized (unexpected pending frame)";
        conn_.reset();
        conn_ = ipc::connectEndpoint(endpoint, 1000);
      }
      ipc::writeFrame(conn_.get(), payload);
      CancelToken token(options_.readTimeout);
      std::string reply;
      const ipc::ReadStatus status =
          ipc::readFrame(conn_.get(), reply, &token);
      if (status == ipc::ReadStatus::kOk) {
        breaker.recordSuccess();
        return reply;
      }
      lastError = status == ipc::ReadStatus::kEof ? "connection closed"
                                                  : "reply timeout";
      conn_.reset();
    } catch (const ipc::IpcError& error) {
      lastError = error.what();
      conn_.reset();
    }
    // Resending after a reconnect is always safe: the server answers
    // duplicate sequence numbers from its (possibly journal-recovered)
    // transcript instead of re-applying them.  With a failover set, a
    // transport failure also rotates to the next endpoint — which is how a
    // killed primary is transparently replaced by its promoted standby.
    breaker.recordFailure();
    ++reconnects_;
    rotate();
    const auto delay = backoffDelay(attempt++, endpoint.describe());
    if (std::chrono::steady_clock::now() + delay >= deadline)
      throw ipc::IpcError("session endpoint " + endpoint.describe() +
                          " unreachable: " + lastError);
    std::this_thread::sleep_for(delay);
  }
}

SessionOpenResponse SessionStream::open(const SessionOpenRequest& request) {
  return decodeSessionOpenResponse(
      exchange(encodeSessionOpenRequest(request)));
}

SessionMutateResponse SessionStream::mutate(
    const SessionMutateRequest& request) {
  return decodeSessionMutateResponse(
      exchange(encodeSessionMutateRequest(request)));
}

SessionReplayResponse SessionStream::replay(
    const SessionReplayRequest& request) {
  return decodeSessionReplayResponse(
      exchange(encodeSessionReplayRequest(request)));
}

SessionCloseResponse SessionStream::close(const SessionCloseRequest& request) {
  return decodeSessionCloseResponse(
      exchange(encodeSessionCloseRequest(request)));
}

SessionStatusResponse SessionStream::status(
    const SessionStatusRequest& request) {
  return decodeSessionStatusResponse(
      exchange(encodeSessionStatusRequest(request)));
}

}  // namespace rfsm::service
