#include "service/server.hpp"

#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "service/plan_cache.hpp"
#include "util/breaker.hpp"
#include "util/log.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace rfsm::service {
namespace {

/// Merges per-shard outcomes by severity: deadline beats unavailability
/// beats plain failure beats success (see the header's precedence table).
WorkResult::Status merge(WorkResult::Status overall,
                         WorkResult::Status shard) {
  auto rank = [](WorkResult::Status status) {
    switch (status) {
      case WorkResult::Status::kDeadlineExceeded: return 3;
      case WorkResult::Status::kUnavailable: return 2;
      case WorkResult::Status::kShed: return 2;
      case WorkResult::Status::kFailed: return 1;
      case WorkResult::Status::kOk: return 0;
    }
    return 1;
  };
  return rank(shard) > rank(overall) ? shard : overall;
}

/// Builds the pool options before the Supervisor member is constructed:
/// the worker command is `<rfsmd> --worker`.
SupervisorOptions poolOptions(ServerOptions& options) {
  if (!options.workerBinary.empty())
    options.pool.workerCommand = {options.workerBinary, "--worker"};
  return options.pool;
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      supervisor_(poolOptions(options_)),
      sessions_(std::make_unique<SessionService>(options_.sessions)),
      listen_(options_.socketPath.empty()
                  ? ipc::Fd()
                  : ipc::listenEndpoint(ipc::parseEndpoint(options_.socketPath))) {
  ipc::ignoreSigpipe();
  using Kind = fault::ServiceScenario::Kind;
  const fault::ServiceScenario& scenario = options_.scenario;
  switch (scenario.kind) {
    case Kind::kNone:
      break;
    case Kind::kUnhealthy:
      supervisor_.forceUnhealthy();
      break;
    case Kind::kKillWorker:
    case Kind::kAbortWorker:
    case Kind::kHangWorker: {
      const int signal = scenario.kind == Kind::kKillWorker ? SIGKILL
                         : scenario.kind == Kind::kAbortWorker ? SIGABRT
                                                               : SIGSTOP;
      const auto after = static_cast<std::uint64_t>(
          std::max(0, scenario.afterShards));
      auto fired = std::make_shared<std::atomic<bool>>(false);
      const std::string name = scenario.name;
      supervisor_.setDispatchHook(
          [signal, after, fired, name](std::uint64_t ordinal, int pid) {
            if (ordinal < after || fired->exchange(true)) return;
            trace::instant("service.fault_injected", "service",
                           {trace::Arg::str("scenario", name),
                            trace::Arg::num("pid",
                                            static_cast<std::int64_t>(pid))});
            ::kill(pid, signal);
          });
      break;
    }
  }
}

Server::~Server() = default;

PlanResponse Server::handlePlan(const PlanRequest& request) {
  static metrics::Counter& requests =
      metrics::counter(metrics::kServiceRequests);
  static metrics::Counter& shards = metrics::counter(metrics::kServiceShards);
  static metrics::Histogram& requestLatency =
      metrics::histogram(metrics::kServiceRequestLatency);
  static metrics::RollingHistogram& requestWindow =
      metrics::rolling(metrics::kServiceRequestWindow);
  requests.add();
  metrics::ScopedLatency latency(requestLatency);
  metrics::ScopedWindowLatency windowLatency(requestWindow);

  // Adopt the caller's distributed trace context (a no-op for the default
  // unsampled context): the plan span below parents under the client's —
  // or the fabric attempt's — span, and worker shards inherit the plan
  // span as *their* parent via thread-current context.
  trace::ContextScope contextScope(request.context);
  trace::ScopedSpan planSpan(
      "service.plan_request", "service",
      {trace::Arg::num("request_id", request.requestId),
       trace::Arg::num("instances", request.spec.instanceCount)});

  // One correlation id spans the whole request: every shard span, retry
  // instant, and the final verdict share it, so a Perfetto query for the
  // id reconstructs the request end to end.
  const std::uint64_t correlation = trace::newCorrelationId();
  trace::asyncBegin(
      "service.request", "service", correlation,
      {trace::Arg::num("request_id", request.requestId),
       trace::Arg::num("instances", request.spec.instanceCount),
       trace::Arg::str("planner", request.spec.planner),
       trace::Arg::num("deadline_ms", request.deadlineMs)});

  auto cancel = std::make_shared<CancelToken>();
  std::int64_t deadlineNs = 0;
  if (request.deadlineMs > 0) {
    const auto deadline = CancelToken::Clock::now() +
                          std::chrono::milliseconds(request.deadlineMs);
    cancel->setDeadline(deadline);
    deadlineNs = deadline.time_since_epoch().count();
  }

  // The request names a subrange [lo, hi) of the batch (the fabric's shard
  // unit; lo == hi == 0 is the whole batch).  Worker shards carry absolute
  // instance indices, so whatever slice of the batch this server plans is
  // byte-identical to the same slots of the unsharded planAll.
  const std::uint64_t rangeLo = request.rangeLo();
  const std::uint64_t rangeHi = request.rangeHi();
  if (rangeLo > rangeHi || rangeHi > request.spec.instanceCount) {
    PlanResponse malformed;
    malformed.status = WorkResult::Status::kFailed;
    malformed.error = "malformed plan range [" + std::to_string(rangeLo) +
                      ", " + std::to_string(rangeHi) + ") for " +
                      std::to_string(request.spec.instanceCount) +
                      " instances";
    trace::asyncEnd("service.request", "service", correlation,
                    {trace::Arg::str("status", "FAILED")});
    return malformed;
  }
  const std::uint64_t total = rangeHi - rangeLo;

  // Broker-in-parent plan cache: the parent consults the cache before
  // sharding and stores worker results after, so a plan computed by worker
  // A serves later requests without touching worker B (workers keep their
  // own caches disabled).  Only the uncached gaps are dispatched, sliced
  // into contiguous runs so each worker shard still carries absolute
  // [lo, hi) indices.
  std::vector<std::string> assembled(static_cast<std::size_t>(total));
  std::vector<bool> cached(static_cast<std::size_t>(total), false);
  std::uint64_t cacheHits = 0;
  if (planCacheEnabled()) {
    for (std::uint64_t k = rangeLo; k < rangeHi; ++k) {
      if (auto hit = planCacheLookup(planCacheKey(request.spec, k))) {
        assembled[static_cast<std::size_t>(k - rangeLo)] = *std::move(hit);
        cached[static_cast<std::size_t>(k - rangeLo)] = true;
        ++cacheHits;
      }
    }
  }

  // Baseline for the retry/crash accounting, taken before any shard is
  // dispatched: a worker can crash the instant its frame lands, well before
  // the aggregation loop below starts.
  const Supervisor::Health before = supervisor_.health();
  const std::uint64_t shardSize = std::max<std::uint64_t>(1, options_.shardSize);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> ranges;
  std::vector<std::future<WorkResult>> futures;
  std::uint64_t runLo = rangeLo;
  while (runLo < rangeHi) {
    if (cached[static_cast<std::size_t>(runLo - rangeLo)]) {
      ++runLo;
      continue;
    }
    std::uint64_t runHi = runLo + 1;
    while (runHi < rangeHi && !cached[static_cast<std::size_t>(runHi - rangeLo)])
      ++runHi;
    for (std::uint64_t lo = runLo; lo < runHi; lo += shardSize) {
      const std::uint64_t hi = std::min(runHi, lo + shardSize);
      ShardRequest shard;
      shard.spec = request.spec;
      shard.lo = lo;
      shard.hi = hi;
      shard.deadlineNs = deadlineNs;
      // The worker's service.worker_shard span parents under this
      // request's plan span (the thread-current context installed above).
      shard.context = trace::currentContext();
      shards.add();
      trace::asyncInstant("service.shard_submit", "service", correlation,
                          {trace::Arg::num("lo", lo), trace::Arg::num("hi", hi)});
      futures.push_back(supervisor_.submit(encodeShardRequest(shard), cancel));
      ranges.emplace_back(lo, hi);
    }
    runLo = runHi;
  }

  PlanResponse response;
  response.status = WorkResult::Status::kOk;
  response.cacheHits = cacheHits;
  std::vector<std::vector<std::string>> shardPrograms(futures.size());
  for (std::size_t k = 0; k < futures.size(); ++k) {
    WorkResult result = futures[k].get();
    WorkResult::Status shardStatus = result.status;
    std::string shardError = result.error;
    if (result.status == WorkResult::Status::kOk) {
      // Transport succeeded; the worker's own verdict is inside.
      try {
        ShardResponse shard = decodeShardResponse(result.payload);
        shardStatus = shard.status;
        shardError = shard.error;
        if (shard.status == WorkResult::Status::kOk) {
          if (shard.programs.size() !=
              static_cast<std::size_t>(ranges[k].second - ranges[k].first)) {
            shardStatus = WorkResult::Status::kFailed;
            shardError = "shard returned " +
                         std::to_string(shard.programs.size()) +
                         " programs for " +
                         std::to_string(ranges[k].second - ranges[k].first) +
                         " instances";
          } else {
            shardPrograms[k] = std::move(shard.programs);
          }
        }
      } catch (const Error& error) {
        shardStatus = WorkResult::Status::kFailed;
        shardError = std::string("malformed shard response: ") + error.what();
      }
    }
    if (shardStatus != WorkResult::Status::kOk && response.error.empty()) {
      response.error = "shard [" + std::to_string(ranges[k].first) + ", " +
                       std::to_string(ranges[k].second) + "): " +
                       std::string(toString(shardStatus)) +
                       (shardError.empty() ? "" : " - " + shardError);
    }
    response.status = merge(response.status, shardStatus);
    trace::asyncInstant(
        "service.shard_done", "service", correlation,
        {trace::Arg::num("lo", ranges[k].first),
         trace::Arg::str("status", toString(shardStatus)),
         trace::Arg::num("attempts",
                         static_cast<std::int64_t>(result.attempts))});
  }

  const Supervisor::Health after = supervisor_.health();
  response.retries = after.retries - before.retries;
  response.crashes = after.crashes - before.crashes;

  if (response.status == WorkResult::Status::kOk) {
    for (std::size_t k = 0; k < shardPrograms.size(); ++k) {
      for (std::size_t i = 0; i < shardPrograms[k].size(); ++i) {
        const std::uint64_t index = ranges[k].first + i;
        if (planCacheEnabled())
          planCacheStore(planCacheKey(request.spec, index),
                         shardPrograms[k][i]);
        assembled[static_cast<std::size_t>(index - rangeLo)] =
            std::move(shardPrograms[k][i]);
      }
    }
    response.programs = std::move(assembled);
  } else {
    if (response.status == WorkResult::Status::kDeadlineExceeded) {
      static metrics::Counter& deadlineExceeded =
          metrics::counter(metrics::kServiceDeadlineExceeded);
      deadlineExceeded.add();
    }
    // A failed request must not leave half-planned shards running: cancel
    // fans out to every queued twin of this request (already-running
    // workers hit their own deadline or finish into the void).
    cancel->cancel();
  }

  trace::asyncEnd("service.request", "service", correlation,
                  {trace::Arg::str("status", toString(response.status)),
                   trace::Arg::num("retries", response.retries),
                   trace::Arg::num("crashes", response.crashes),
                   trace::Arg::num("cache_hits", response.cacheHits)});
  return response;
}

HealthResponse Server::healthSnapshot() const {
  const Supervisor::Health health = supervisor_.health();
  HealthResponse response;
  response.healthy = health.healthy;
  response.workersAlive = health.workersAlive;
  response.workersConfigured = health.workersConfigured;
  response.queueDepth = health.queueDepth;
  response.crashes = health.crashes;
  response.retries = health.retries;
  response.shed = health.shed;
  return response;
}

StatsResponse Server::handleStats() {
  static metrics::Counter& scrapes =
      metrics::counter(metrics::kServiceStatsRequests);
  scrapes.add();

  StatsResponse stats;
  stats.pid = static_cast<std::int64_t>(::getpid());
  stats.uptimeMs = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - started_)
                       .count();
  stats.draining = draining_.load(std::memory_order_relaxed);
  stats.workers = healthSnapshot();
  stats.planCache.enabled = planCacheEnabled();
  stats.planCache.size = planCacheSize();
  stats.planCache.capacity = planCacheCapacity();
  for (const BreakerSnapshot& breaker : breakerSnapshots())
    stats.breakers.push_back(
        {breaker.name, toString(breaker.state), breaker.trips});
  sessions_->fillStats(stats);

  // Refresh the level gauges at scrape time, so both this frame's embedded
  // snapshot and any later at-exit sink report current occupancy.
  metrics::gauge(metrics::kServiceWorkersAlive)
      .set(stats.workers.workersAlive);
  metrics::gauge(metrics::kServiceQueueDepth)
      .set(static_cast<std::int64_t>(stats.workers.queueDepth));
  metrics::gauge(metrics::kServicePlanCacheSize)
      .set(static_cast<std::int64_t>(stats.planCache.size));
  metrics::gauge(metrics::kSessionsOpenGauge)
      .set(static_cast<std::int64_t>(stats.openSessions));
  metrics::gauge(metrics::kSessionSchedulerDepth)
      .set(static_cast<std::int64_t>(stats.schedulerDepth));
  stats.metrics = metrics::snapshot();
  return stats;
}

TraceDumpResponse Server::handleTraceDump(const TraceDumpRequest& request) {
  static metrics::Counter& dumps =
      metrics::counter(metrics::kServiceTraceDumps);
  dumps.add();
  TraceDumpResponse response;
  response.clientSteadyNs = request.clientSteadyNs;
  response.traceJson = trace::toJson();
  response.serverSteadyNs =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  return response;
}

std::string Server::dispatch(const std::string& payload) {
  switch (peekType(payload)) {
    case MessageType::kHandshakeRequest:
      return encodeHandshakeResponse(
          answerHandshake(decodeHandshakeRequest(payload)));
    case MessageType::kHealthRequest:
      return encodeHealthResponse(healthSnapshot());
    case MessageType::kStatsRequest:
      decodeStatsRequest(payload);
      return encodeStatsResponse(handleStats());
    case MessageType::kTraceDumpRequest:
      return encodeTraceDumpResponse(
          handleTraceDump(decodeTraceDumpRequest(payload)));
    case MessageType::kPlanRequest:
      return encodePlanResponse(handlePlan(decodePlanRequest(payload)));
    case MessageType::kSessionOpenRequest:
      return encodeSessionOpenResponse(
          sessions_->open(decodeSessionOpenRequest(payload)));
    case MessageType::kSessionMutateRequest:
      return encodeSessionMutateResponse(
          sessions_->mutate(decodeSessionMutateRequest(payload)));
    case MessageType::kSessionReplayRequest:
      return encodeSessionReplayResponse(
          sessions_->replay(decodeSessionReplayRequest(payload)));
    case MessageType::kSessionCloseRequest:
      return encodeSessionCloseResponse(
          sessions_->close(decodeSessionCloseRequest(payload)));
    case MessageType::kSessionReplAppendRequest:
      return encodeSessionReplAppendResponse(
          sessions_->replAppend(decodeSessionReplAppendRequest(payload)));
    case MessageType::kSessionReplSnapshotRequest:
      return encodeSessionReplSnapshotResponse(
          sessions_->replInstall(decodeSessionReplSnapshotRequest(payload)));
    case MessageType::kSessionStatusRequest:
      return encodeSessionStatusResponse(
          sessions_->status(decodeSessionStatusRequest(payload)));
    default:
      throw ipc::IpcError("unexpected client message");
  }
}

void Server::handleConnection(int fd, CancelToken* cancel) {
  static metrics::Counter& drained =
      metrics::counter(metrics::kServiceDrainedRequests);
  // Many frames per connection (sessions stream); every read is bounded by
  // an idle deadline so a client that goes silent costs one timeout, and
  // the connection token lets the drain path wake idle readers.  One-shot
  // clients close after their reply — the next read sees EOF.
  for (;;) {
    cancel->setDeadline(CancelToken::Clock::now() +
                        std::chrono::milliseconds(30000));
    std::string payload;
    const ipc::ReadStatus status = ipc::readFrame(fd, payload, cancel);
    if (status != ipc::ReadStatus::kOk) return;
    // A frame already read is *in flight*: it runs to completion and its
    // reply is sent even when the drain starts underneath it — only then
    // does the loop observe the cancelled token and exit.
    const std::string reply = dispatch(payload);
    ipc::writeFrame(fd, reply);
    if (draining_.load(std::memory_order_relaxed)) {
      drained.add();
      drainedRequests_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void Server::run(const CancelToken* stop) {
  RFSM_CHECK(listen_.valid(), "server has no listening socket");
  struct Handler {
    std::thread thread;
    std::shared_ptr<CancelToken> cancel;
    std::shared_ptr<std::atomic<bool>> done;
  };
  std::vector<Handler> handlers;
  const auto reap = [&handlers](bool all) {
    for (auto it = handlers.begin(); it != handlers.end();) {
      if (all || it->done->load(std::memory_order_acquire)) {
        it->thread.join();
        it = handlers.erase(it);
      } else {
        ++it;
      }
    }
  };
  while (stop == nullptr || !stop->expired()) {
    // Poll-sliced accept so a cancelled stop token is honoured promptly.
    CancelToken slice(std::chrono::milliseconds(200));
    std::optional<ipc::Fd> connection = ipc::acceptUnix(listen_.get(), &slice);
    reap(false);
    if (!connection.has_value()) continue;
    if (handlers.size() >= options_.maxConnections) {
      // Shed by closing: the session client reconnects with backoff, and
      // resends are answered from the transcript.
      log(LogLevel::kWarn) << "rfsmd: connection limit ("
                           << options_.maxConnections << ") reached";
      continue;
    }
    Handler handler;
    handler.cancel = std::make_shared<CancelToken>();
    handler.done = std::make_shared<std::atomic<bool>>(false);
    auto fd = std::make_shared<ipc::Fd>(std::move(*connection));
    handler.thread = std::thread(
        [this, fd, cancel = handler.cancel, done = handler.done] {
          try {
            handleConnection(fd->get(), cancel.get());
          } catch (const Error& error) {
            // A malformed or torn request kills its connection, never the
            // server.
            log(LogLevel::kWarn)
                << "rfsmd: connection error: " << error.what();
          }
          done->store(true, std::memory_order_release);
        });
    handlers.push_back(std::move(handler));
  }

  // Graceful drain: stop admitting (the accept loop above has exited and
  // the session store turns new work away), complete what is in flight,
  // then persist.  In-flight work is bounded by its own request deadline.
  draining_.store(true, std::memory_order_relaxed);
  sessions_->beginDrain();
  for (Handler& handler : handlers) handler.cancel->cancel();
  reap(true);
  sessions_->drain();
}

}  // namespace rfsm::service
