#include "service/plan_cache.hpp"

#include <cstdlib>

#include "core/canonical_hash.hpp"
#include "util/cache.hpp"
#include "util/metrics.hpp"

namespace rfsm::service {
namespace {

/// Immortal (never destroyed): worker threads may still consult the cache
/// while the main thread exits.
SlruCache<std::string>& cache() {
  static auto* instance = new SlruCache<std::string>(0);
  return *instance;
}

}  // namespace

void configurePlanCache(std::size_t capacity) {
  if (capacity == 0) {
    cache().clear();
    cache().setCapacity(0);
    return;
  }
  const std::size_t evicted = cache().setCapacity(capacity);
  if (evicted > 0) metrics::counter(metrics::kServicePlanCacheEvictions)
      .add(evicted);
}

void configurePlanCacheFromEnv() {
  const char* raw = std::getenv("RFSM_PLAN_CACHE");
  if (raw == nullptr || *raw == '\0') return;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(raw, &end, 10);
  if (end != nullptr && *end == '\0') {
    configurePlanCache(static_cast<std::size_t>(value));
    return;
  }
  configurePlanCache(kPlanCacheDefaultCapacity);
}

bool planCacheEnabled() { return cache().capacity() > 0; }

std::size_t planCacheSize() { return cache().size(); }

std::size_t planCacheCapacity() { return cache().capacity(); }

std::string planCacheKey(const BatchSpec& spec, std::uint64_t index) {
  CanonicalHasher hasher;
  hasher.u64(kPlanCacheKeyVersion)
      .i64(spec.stateCount)
      .i64(spec.inputCount)
      .i64(spec.outputCount)
      .i64(spec.deltaCount)
      .i64(spec.newStateCount)
      .u64(spec.seed)
      .str(spec.planner)
      .i64(spec.eaPopulation)
      .i64(spec.eaGenerations)
      .u64(index);
  return hasher.hex();
}

std::optional<std::string> planCacheLookup(const std::string& key) {
  if (!planCacheEnabled()) return std::nullopt;
  auto hit = cache().get(key);
  if (hit.has_value()) {
    metrics::counter(metrics::kServicePlanCacheHits).add();
  } else {
    metrics::counter(metrics::kServicePlanCacheMisses).add();
  }
  return hit;
}

void planCacheStore(const std::string& key, std::string program) {
  if (!planCacheEnabled()) return;
  const auto outcome = cache().put(key, std::move(program));
  if (outcome.evicted > 0)
    metrics::counter(metrics::kServicePlanCacheEvictions).add(outcome.evicted);
}

void planCacheQuarantine(const std::string& key) { cache().erase(key); }

void clearPlanCache() { cache().clear(); }

}  // namespace rfsm::service
