#include "service/fabric.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <ostream>
#include <thread>
#include <utility>

#include "service/plan_cache.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"
#include "util/supervisor.hpp"
#include "util/trace.hpp"

namespace rfsm::service {
namespace {

using Clock = CancelToken::Clock;
constexpr std::size_t kNoEndpoint = static_cast<std::size_t>(-1);

/// Outcome of one exchange with one endpoint.
struct Attempt {
  enum class Kind {
    kOk,         ///< programs hold the shard's bytes
    kTransport,  ///< connect/read/decode failure, UNAVAILABLE, or shed —
                 ///< the endpoint's fault; reroute and feed the breaker
    kDeadline,   ///< cooperative DEADLINE_EXCEEDED (endpoint healthy)
    kFailed,     ///< deterministic planner defect (endpoint healthy)
    kAborted,    ///< cancelled by the fabric (hedge loser)
  };
  Kind kind = Kind::kTransport;
  std::size_t endpoint = kNoEndpoint;
  std::vector<std::string> programs;
  std::string error;
  /// Stable degradation reason when kind == kTransport (client.hpp tokens).
  const char* reason = kReasonUnreachable;
  std::uint64_t retries = 0;
  std::uint64_t crashes = 0;
  /// Instances served from a plan cache: the remote server's (reported on
  /// the wire) or, for a shard never dispatched at all, this process's.
  std::uint64_t cacheHits = 0;
};

bool isTerminal(Attempt::Kind kind) {
  return kind == Attempt::Kind::kOk || kind == Attempt::Kind::kDeadline ||
         kind == Attempt::Kind::kFailed;
}

/// One request/response exchange, classified.  `abandoned` (when given) is
/// checked after the wire work: a cancelled hedge loser reports kAborted
/// instead of blaming the endpoint for the cancellation.  `attemptTag`
/// names the duplication kind (primary / retry / hedge / quorum /
/// cache-verify) on the attempt span, and the span's own context rides the
/// outgoing frame so the remote server parents under this exact attempt.
Attempt attemptOnce(const ipc::Endpoint& endpoint, std::size_t index,
                    const PlanRequest& request, std::int64_t timeoutMs,
                    const CancelToken* cancel,
                    const std::atomic<bool>* abandoned,
                    const char* attemptTag) {
  Attempt attempt;
  attempt.endpoint = index;
  auto aborted = [abandoned] {
    return abandoned != nullptr &&
           abandoned->load(std::memory_order_relaxed);
  };

  trace::ScopedSpan span("fabric.attempt", "fabric",
                         {trace::Arg::str("endpoint", endpoint.describe()),
                          trace::Arg::str("attempt", attemptTag),
                          trace::Arg::num("lo", request.lo),
                          trace::Arg::num("hi", request.hi)});
  PlanRequest traced = request;
  traced.context = trace::currentContext();

  std::optional<std::string> reply;
  try {
    reply = exchangeEndpoint(endpoint, encodePlanRequest(traced), timeoutMs,
                             cancel);
  } catch (const ipc::FrameError& error) {
    // The endpoint answered with bytes that failed CRC/length validation:
    // never served, reported as malformed so the breaker/reroute ladder
    // treats the endpoint as misbehaving rather than merely unreachable.
    attempt.kind = aborted() ? Attempt::Kind::kAborted
                             : Attempt::Kind::kTransport;
    attempt.reason = kReasonMalformed;
    attempt.error = error.what();
    return attempt;
  } catch (const ipc::IpcError& error) {
    attempt.kind = aborted() ? Attempt::Kind::kAborted
                             : Attempt::Kind::kTransport;
    attempt.error = error.what();
    return attempt;
  }
  if (!reply.has_value()) {
    attempt.kind = aborted() ? Attempt::Kind::kAborted
                             : Attempt::Kind::kTransport;
    attempt.error = "endpoint did not answer";
    return attempt;
  }

  PlanResponse response;
  try {
    response = decodePlanResponse(*reply);
  } catch (const Error& error) {
    attempt.kind = Attempt::Kind::kTransport;
    attempt.reason = kReasonMalformed;
    attempt.error = error.what();
    return attempt;
  }
  attempt.retries = response.retries;
  attempt.crashes = response.crashes;
  attempt.cacheHits = response.cacheHits;
  attempt.error = response.error;
  switch (response.status) {
    case WorkResult::Status::kOk:
      attempt.kind = Attempt::Kind::kOk;
      attempt.programs = std::move(response.programs);
      return attempt;
    case WorkResult::Status::kUnavailable:
      attempt.kind = Attempt::Kind::kTransport;
      attempt.reason = kReasonUnhealthy;
      return attempt;
    case WorkResult::Status::kShed:
      attempt.kind = Attempt::Kind::kTransport;
      attempt.reason = kReasonOverloaded;
      return attempt;
    case WorkResult::Status::kDeadlineExceeded:
      attempt.kind = Attempt::Kind::kDeadline;
      return attempt;
    case WorkResult::Status::kFailed:
      attempt.kind = Attempt::Kind::kFailed;
      return attempt;
  }
  attempt.error = "unknown response status";
  return attempt;
}

/// Severity merge across shards, mirroring the server's precedence table.
WorkResult::Status merge(WorkResult::Status overall,
                         WorkResult::Status shard) {
  auto rank = [](WorkResult::Status status) {
    switch (status) {
      case WorkResult::Status::kDeadlineExceeded: return 3;
      case WorkResult::Status::kUnavailable: return 2;
      case WorkResult::Status::kShed: return 2;
      case WorkResult::Status::kFailed: return 1;
      case WorkResult::Status::kOk: return 0;
    }
    return 1;
  };
  return rank(shard) > rank(overall) ? shard : overall;
}

}  // namespace

struct Fabric::Impl {
  FabricOptions options;
  std::vector<std::unique_ptr<CircuitBreaker>> breakers;
  /// Registry entries exposing the breakers to the live stats plane; must
  /// die before `breakers` (member order does that).
  std::vector<std::unique_ptr<BreakerRegistration>> breakerRegs;
  std::mutex jitterMutex;
  Rng jitterRng{1};

  // --- endpoint selection -------------------------------------------------

  /// First breaker-admitted endpoint scanning from `preferred`.  Admission
  /// is binding: the caller MUST follow through with exactly one exchange
  /// and one recordSuccess/recordFailure/recordAbandoned (a HALF-OPEN
  /// breaker hands out its single probe slot here).
  std::size_t pickEndpoint(std::size_t preferred,
                           std::size_t exclude = kNoEndpoint) {
    const auto now = Clock::now();
    const std::size_t n = options.endpoints.size();
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t index = (preferred + k) % n;
      if (index == exclude) continue;
      if (breakers[index]->allowRequest(now)) return index;
    }
    return kNoEndpoint;
  }

  // --- breaker bookkeeping ------------------------------------------------

  void noteFailure(std::size_t index) {
    CircuitBreaker& breaker = *breakers[index];
    const std::uint64_t before = breaker.trips();
    breaker.recordFailure(Clock::now());
    if (breaker.trips() > before) noteTrip(index);
  }

  void noteTrip(std::size_t index) {
    static metrics::Counter& tripCounter =
        metrics::counter(metrics::kFabricBreakerTrips);
    tripCounter.add();
    trace::instant(
        "fabric.breaker_trip", "fabric",
        {trace::Arg::str("endpoint", options.endpoints[index].describe())});
  }

  /// Applies one finished attempt's verdict to its endpoint's breaker.
  /// Cooperative kDeadline/kFailed replies count as transport *successes*:
  /// the endpoint answered within budget; the work itself was the problem.
  void settle(const Attempt& attempt) {
    if (attempt.endpoint == kNoEndpoint) return;
    switch (attempt.kind) {
      case Attempt::Kind::kTransport:
        noteFailure(attempt.endpoint);
        return;
      case Attempt::Kind::kAborted:
        breakers[attempt.endpoint]->recordAbandoned(Clock::now());
        return;
      case Attempt::Kind::kOk:
      case Attempt::Kind::kDeadline:
      case Attempt::Kind::kFailed:
        breakers[attempt.endpoint]->recordSuccess(Clock::now());
        return;
    }
  }

  // --- one shard, possibly hedged -----------------------------------------

  /// Sends the shard to `primary`; after hedgeMs of silence duplicates it
  /// to a second healthy endpoint.  First terminal answer wins, the loser
  /// is cancelled.  Transport failures on one leg let the other keep
  /// running.  All legs are settled against their breakers before return.
  /// `attemptNumber` tags the primary leg's span (1 = primary, else retry).
  Attempt hedgedExchange(std::size_t primary, const PlanRequest& request,
                         std::int64_t timeoutMs, int attemptNumber) {
    struct Leg {
      std::size_t endpoint = kNoEndpoint;
      std::shared_ptr<CancelToken> token;
      std::atomic<bool> abandoned{false};
      Attempt outcome;
      bool finished = false;
    };
    std::array<Leg, 2> legs;
    std::array<std::thread, 2> threads;
    int legCount = 0;
    std::mutex mutex;
    std::condition_variable cv;

    auto launch = [&](int slot, std::size_t endpointIndex,
                      const char* tag) {
      Leg& leg = legs[static_cast<std::size_t>(slot)];
      leg.endpoint = endpointIndex;
      leg.token = std::make_shared<CancelToken>();
      if (timeoutMs > 0)
        leg.token->setDeadline(Clock::now() +
                               std::chrono::milliseconds(timeoutMs));
      // Leg threads carry the caller's trace context explicitly — the
      // thread-local context does not cross std::thread boundaries.
      threads[static_cast<std::size_t>(slot)] = std::thread(
          [&, slot, tag, context = trace::currentContext()] {
            trace::ContextScope scope(context);
            Leg& self = legs[static_cast<std::size_t>(slot)];
            Attempt out =
                attemptOnce(options.endpoints[self.endpoint], self.endpoint,
                            request, timeoutMs, self.token.get(),
                            &self.abandoned, tag);
            std::lock_guard<std::mutex> lock(mutex);
            self.outcome = std::move(out);
            self.finished = true;
            cv.notify_all();
          });
    };

    // Decided = some leg answered terminally, or every launched leg is done
    // (all-transport-failures also ends the wait).
    auto decided = [&] {
      int done = 0;
      for (int k = 0; k < legCount; ++k) {
        const Leg& leg = legs[static_cast<std::size_t>(k)];
        if (!leg.finished) continue;
        if (isTerminal(leg.outcome.kind)) return true;
        ++done;
      }
      return done == legCount;
    };

    launch(0, primary, attemptNumber == 1 ? "primary" : "retry");
    legCount = 1;

    if (options.hedgeMs > 0) {
      bool hedge = false;
      {
        std::unique_lock<std::mutex> lock(mutex);
        hedge = !cv.wait_for(lock,
                             std::chrono::milliseconds(options.hedgeMs),
                             decided);
      }
      if (hedge) {
        const std::size_t secondary = pickEndpoint(primary + 1, primary);
        if (secondary != kNoEndpoint) {
          static metrics::Counter& hedgedCounter =
              metrics::counter(metrics::kFabricHedged);
          hedgedCounter.add();
          trace::instant(
              "fabric.hedge", "fabric",
              {trace::Arg::num("lo", request.lo),
               trace::Arg::str("endpoint",
                               options.endpoints[secondary].describe())});
          std::lock_guard<std::mutex> lock(mutex);
          launch(1, secondary, "hedge");
          legCount = 2;
        }
      }
    }

    int winner = -1;
    {
      std::unique_lock<std::mutex> lock(mutex);
      cv.wait(lock, decided);
      // Prefer a terminal leg; with none (both transport-failed), take the
      // primary's verdict.
      for (int k = 0; k < legCount; ++k) {
        const Leg& leg = legs[static_cast<std::size_t>(k)];
        if (leg.finished && isTerminal(leg.outcome.kind)) {
          winner = k;
          break;
        }
      }
      if (winner < 0) winner = 0;
    }

    // Cancel the loser (its read returns within one poll slice) and join.
    for (int k = 0; k < legCount; ++k) {
      if (k == winner) continue;
      Leg& leg = legs[static_cast<std::size_t>(k)];
      leg.abandoned.store(true, std::memory_order_relaxed);
      leg.token->cancel();
    }
    for (int k = 0; k < legCount; ++k)
      if (threads[static_cast<std::size_t>(k)].joinable())
        threads[static_cast<std::size_t>(k)].join();

    if (winner == 1 &&
        isTerminal(legs[1].outcome.kind)) {
      static metrics::Counter& hedgeWins =
          metrics::counter(metrics::kFabricHedgeWins);
      hedgeWins.add();
    }
    for (int k = 0; k < legCount; ++k)
      settle(legs[static_cast<std::size_t>(k)].outcome);
    return std::move(legs[static_cast<std::size_t>(winner)].outcome);
  }

  // --- quorum verification ------------------------------------------------

  /// Re-sends a sampled shard to up to quorum-1 further endpoints and
  /// byte-compares the replies.  On divergence the shard is recomputed
  /// in-process — ground truth by construction — endpoints whose bytes
  /// disagree with it are tripped, and the truth replaces the winner's
  /// programs, so stdout cannot carry a lie.
  void verifyQuorum(const BatchSpec& spec, const PlanRequest& request,
                    Attempt& winner) {
    std::vector<std::size_t> replicas;
    const std::size_t n = options.endpoints.size();
    const auto now = Clock::now();
    for (std::size_t k = 0;
         k < n && replicas.size() + 1 <
                      static_cast<std::size_t>(options.quorum);
         ++k) {
      const std::size_t index = (winner.endpoint + 1 + k) % n;
      if (index == winner.endpoint) continue;
      if (breakers[index]->allowRequest(now)) replicas.push_back(index);
    }
    if (replicas.empty()) return;  // nobody to compare against

    const std::int64_t timeoutMs =
        options.deadlineMs > 0 ? options.deadlineMs + 2000 : 30000;
    std::vector<Attempt> replies;
    replies.reserve(replicas.size());
    bool diverged = false;
    for (const std::size_t index : replicas) {
      Attempt reply = attemptOnce(options.endpoints[index], index, request,
                                  timeoutMs, nullptr, nullptr, "quorum");
      if (reply.kind == Attempt::Kind::kOk &&
          reply.programs != winner.programs)
        diverged = true;
      replies.push_back(std::move(reply));
    }

    if (!diverged) {
      for (const Attempt& reply : replies) settle(reply);
      return;
    }

    // Divergence: arbitrate against the local ground truth.
    static metrics::Counter& mismatchCounter =
        metrics::counter(metrics::kFabricQuorumMismatch);
    std::vector<std::string> truth;
    try {
      // kBypass: ground truth must never come out of the plan cache — a
      // poisoned entry cannot be allowed to vouch for itself.
      truth = planRange(spec, request.lo, request.hi, nullptr, options.jobs,
                        PlanCacheMode::kBypass);
    } catch (const Error&) {
      // Cannot arbitrate locally (should not happen for work the endpoints
      // completed); count the divergence and keep the winner's bytes.
      mismatchCounter.add();
      for (const Attempt& reply : replies) settle(reply);
      return;
    }
    auto judge = [&](const Attempt& reply) {
      if (reply.kind != Attempt::Kind::kOk) {
        settle(reply);
        return;
      }
      if (reply.programs == truth) {
        breakers[reply.endpoint]->recordSuccess(Clock::now());
        return;
      }
      mismatchCounter.add();
      trace::instant(
          "fabric.quorum_mismatch", "fabric",
          {trace::Arg::num("lo", request.lo),
           trace::Arg::str("endpoint",
                           options.endpoints[reply.endpoint].describe())});
      breakers[reply.endpoint]->trip(Clock::now());
      noteTrip(reply.endpoint);
    };
    for (const Attempt& reply : replies) judge(reply);
    if (winner.programs != truth) {
      // The winner itself lied: already settled as a success when its leg
      // finished, so trip it outright now.
      mismatchCounter.add();
      trace::instant(
          "fabric.quorum_mismatch", "fabric",
          {trace::Arg::num("lo", request.lo),
           trace::Arg::str(
               "endpoint",
               options.endpoints[winner.endpoint].describe())});
      breakers[winner.endpoint]->trip(Clock::now());
      noteTrip(winner.endpoint);
      winner.programs = truth;
    }
  }

  // --- cache-hit poisoning defense ----------------------------------------

  /// Routes a sampled cache-served shard through the same byte-verification
  /// a sampled remote shard gets: one replica exchange when an endpoint is
  /// available, with divergence arbitrated by a cache-bypassing local
  /// recompute.  A poisoned entry is quarantined, counted, recomputed, and
  /// replaced — its bytes are never served.
  void verifyCachedShard(const BatchSpec& spec, const PlanRequest& request,
                         Attempt& served) {
    std::optional<Attempt> replica;
    const std::size_t primary = pickEndpoint(0);
    if (primary != kNoEndpoint) {
      const std::int64_t timeoutMs =
          options.deadlineMs > 0 ? options.deadlineMs + 2000 : 30000;
      replica = attemptOnce(options.endpoints[primary], primary, request,
                            timeoutMs, nullptr, nullptr, "cache-verify");
      if (replica->kind == Attempt::Kind::kOk &&
          replica->programs == served.programs) {
        settle(*replica);  // independent agreement: the entry is clean
        return;
      }
    }

    // No replica to ask, or it disagreed: recompute ground truth locally,
    // bypassing the cache under test.
    std::vector<std::string> truth;
    try {
      truth = planRange(spec, request.lo, request.hi, nullptr, options.jobs,
                        PlanCacheMode::kBypass);
    } catch (const Error&) {
      if (replica.has_value()) settle(*replica);
      return;  // cannot arbitrate; keep the served bytes
    }
    if (replica.has_value()) {
      if (replica->kind == Attempt::Kind::kOk && replica->programs != truth) {
        // The replica, not (necessarily) the cache, is the liar.
        static metrics::Counter& mismatchCounter =
            metrics::counter(metrics::kFabricQuorumMismatch);
        mismatchCounter.add();
        breakers[replica->endpoint]->trip(Clock::now());
        noteTrip(replica->endpoint);
      } else {
        settle(*replica);
      }
    }
    if (served.programs != truth) {
      static metrics::Counter& poisonedCounter =
          metrics::counter(metrics::kServicePlanCachePoisoned);
      poisonedCounter.add();
      trace::instant("fabric.cache_poisoned", "fabric",
                     {trace::Arg::num("lo", request.lo),
                      trace::Arg::num("hi", request.hi)});
      for (std::uint64_t k = request.lo; k < request.hi; ++k) {
        const std::string key = planCacheKey(spec, k);
        planCacheQuarantine(key);
        planCacheStore(key, truth[static_cast<std::size_t>(k - request.lo)]);
      }
      served.programs = std::move(truth);
    }
  }

  // --- one shard end to end -----------------------------------------------

  Attempt runShard(const BatchSpec& spec, std::uint64_t lo, std::uint64_t hi,
                   std::size_t shardIndex, bool sampled) {
    PlanRequest request;
    request.spec = spec;
    request.lo = lo;
    request.hi = hi;
    request.deadlineMs = options.deadlineMs;
    request.requestId = spec.seed;
    const std::int64_t timeoutMs =
        options.deadlineMs > 0 ? options.deadlineMs + 2000 : 30000;

    // Consult the local plan cache before dispatching anywhere: a fully
    // warm shard never crosses the wire.  (Partially warm shards still
    // dispatch whole — the remote end's own cache covers the overlap.)
    if (planCacheEnabled()) {
      std::vector<std::string> programs;
      programs.reserve(static_cast<std::size_t>(hi - lo));
      for (std::uint64_t k = lo; k < hi; ++k) {
        auto hit = planCacheLookup(planCacheKey(spec, k));
        if (!hit.has_value()) break;
        programs.push_back(*std::move(hit));
      }
      if (programs.size() == static_cast<std::size_t>(hi - lo)) {
        Attempt served;
        served.kind = Attempt::Kind::kOk;
        served.endpoint = kNoEndpoint;  // settles as a no-op
        served.programs = std::move(programs);
        served.cacheHits = hi - lo;
        trace::instant("fabric.cache_served", "fabric",
                       {trace::Arg::num("lo", lo), trace::Arg::num("hi", hi)});
        if (sampled && options.quorum >= 2)
          verifyCachedShard(spec, request, served);
        return served;
      }
    }

    Attempt last;
    last.error = "no healthy endpoint";
    last.reason = kReasonUnreachable;
    for (int attempt = 1; attempt <= options.maxAttempts; ++attempt) {
      const std::size_t primary = pickEndpoint(
          (shardIndex + static_cast<std::size_t>(attempt - 1)) %
          options.endpoints.size());
      if (primary == kNoEndpoint) break;  // every breaker is OPEN
      if (attempt > 1) {
        static metrics::Counter& rerouted =
            metrics::counter(metrics::kFabricRerouted);
        rerouted.add();
        trace::instant(
            "fabric.reroute", "fabric",
            {trace::Arg::num("lo", lo),
             trace::Arg::num("attempt", static_cast<std::int64_t>(attempt)),
             trace::Arg::str("endpoint",
                             options.endpoints[primary].describe())});
      }
      Attempt result = hedgedExchange(primary, request, timeoutMs, attempt);
      if (isTerminal(result.kind)) {
        if (result.kind == Attempt::Kind::kOk && sampled &&
            options.quorum >= 2)
          verifyQuorum(spec, request, result);
        // Store post-quorum, so a lying winner's bytes never enter the
        // cache — only what verification (when sampled) let through.
        if (result.kind == Attempt::Kind::kOk && planCacheEnabled() &&
            result.programs.size() == static_cast<std::size_t>(hi - lo)) {
          for (std::uint64_t k = lo; k < hi; ++k)
            planCacheStore(planCacheKey(spec, k),
                           result.programs[static_cast<std::size_t>(k - lo)]);
        }
        return result;
      }
      last = std::move(result);
      if (attempt < options.maxAttempts) {
        double jitter = 0.0;
        {
          std::lock_guard<std::mutex> lock(jitterMutex);
          jitter = jitterRng.uniform();
        }
        std::this_thread::sleep_for(backoffDelay(
            attempt, options.backoffBase, options.backoffCap, jitter));
      }
    }
    return last;
  }
};

Fabric::Fabric(FabricOptions options) : impl_(std::make_unique<Impl>()) {
  RFSM_CHECK(!options.endpoints.empty(), "fabric needs at least one endpoint");
  RFSM_CHECK(options.maxAttempts >= 1, "fabric needs at least one attempt");
  impl_->options = std::move(options);
  impl_->jitterRng = Rng(impl_->options.jitterSeed);
  impl_->breakers.reserve(impl_->options.endpoints.size());
  impl_->breakerRegs.reserve(impl_->options.endpoints.size());
  for (std::size_t k = 0; k < impl_->options.endpoints.size(); ++k) {
    impl_->breakers.push_back(
        std::make_unique<CircuitBreaker>(impl_->options.breaker));
    impl_->breakerRegs.push_back(std::make_unique<BreakerRegistration>(
        "fabric:" + impl_->options.endpoints[k].describe(),
        impl_->breakers.back().get()));
  }
}

Fabric::~Fabric() = default;

std::size_t Fabric::endpointCount() const {
  return impl_->options.endpoints.size();
}

const CircuitBreaker& Fabric::breaker(std::size_t index) const {
  RFSM_CHECK(index < impl_->breakers.size(), "endpoint index out of range");
  return *impl_->breakers[index];
}

ClientResult Fabric::plan(const BatchSpec& spec, std::ostream& err) {
  const FabricOptions& options = impl_->options;
  trace::ScopedSpan span(
      "fabric.plan", "fabric",
      {trace::Arg::num("instances", spec.instanceCount),
       trace::Arg::num("endpoints",
                       static_cast<std::int64_t>(options.endpoints.size()))});

  ClientResult result;
  const std::uint64_t total = spec.instanceCount;
  if (total == 0) {
    result.status = WorkResult::Status::kOk;
    return result;
  }

  // Auto shard size: two shards per endpoint, so a broken endpoint's share
  // reroutes in pieces instead of as one monolith.
  std::uint64_t shardSize = options.shardSize;
  if (shardSize == 0) {
    const std::uint64_t lanes =
        2 * static_cast<std::uint64_t>(options.endpoints.size());
    shardSize = std::max<std::uint64_t>(1, (total + lanes - 1) / lanes);
  }
  std::vector<std::pair<std::uint64_t, std::uint64_t>> ranges;
  for (std::uint64_t lo = 0; lo < total; lo += shardSize)
    ranges.emplace_back(lo, std::min(total, lo + shardSize));
  static metrics::Counter& shardCounter =
      metrics::counter(metrics::kFabricShards);
  shardCounter.add(ranges.size());

  // Quorum sampling: up to ~4 shards per request, deterministically spread.
  const std::size_t stride = std::max<std::size_t>(1, ranges.size() / 4);

  std::vector<Attempt> outcomes(ranges.size());
  std::atomic<std::size_t> next{0};
  const std::size_t lanes =
      std::min<std::size_t>(16, std::max<std::size_t>(1, ranges.size()));
  std::vector<std::thread> dispatchers;
  dispatchers.reserve(lanes);
  // Dispatcher threads inherit the fabric.plan span as parent explicitly;
  // the thread-local context does not cross std::thread boundaries.
  const trace::TraceContext planContext = trace::currentContext();
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    dispatchers.emplace_back([&] {
      trace::ContextScope scope(planContext);
      for (;;) {
        const std::size_t k = next.fetch_add(1);
        if (k >= ranges.size()) return;
        outcomes[k] =
            impl_->runShard(spec, ranges[k].first, ranges[k].second, k,
                            /*sampled=*/k % stride == 0);
      }
    });
  }
  for (std::thread& dispatcher : dispatchers) dispatcher.join();

  // Aggregate by severity; remember the first failure's stable reason for
  // the (possible) degradation notice.
  WorkResult::Status status = WorkResult::Status::kOk;
  const char* reason = kReasonUnreachable;
  std::string detail;
  for (std::size_t k = 0; k < outcomes.size(); ++k) {
    const Attempt& outcome = outcomes[k];
    result.retries += outcome.retries;
    result.crashes += outcome.crashes;
    result.cacheHits += outcome.cacheHits;
    WorkResult::Status shardStatus = WorkResult::Status::kFailed;
    switch (outcome.kind) {
      case Attempt::Kind::kOk:
        shardStatus = WorkResult::Status::kOk;
        break;
      case Attempt::Kind::kDeadline:
        shardStatus = WorkResult::Status::kDeadlineExceeded;
        break;
      case Attempt::Kind::kFailed:
        shardStatus = WorkResult::Status::kFailed;
        break;
      case Attempt::Kind::kTransport:
      case Attempt::Kind::kAborted:
        shardStatus = WorkResult::Status::kUnavailable;
        break;
    }
    if (shardStatus != WorkResult::Status::kOk && detail.empty()) {
      reason = outcome.reason;
      detail = "shard [" + std::to_string(ranges[k].first) + ", " +
               std::to_string(ranges[k].second) + "): " + outcome.error;
    }
    status = merge(status, shardStatus);
  }

  if (status == WorkResult::Status::kOk) {
    result.status = WorkResult::Status::kOk;
    result.programs.reserve(static_cast<std::size_t>(total));
    for (Attempt& outcome : outcomes)
      for (std::string& program : outcome.programs)
        result.programs.push_back(std::move(program));
    return result;
  }

  if (status == WorkResult::Status::kDeadlineExceeded ||
      status == WorkResult::Status::kFailed) {
    // The caller's budget or a deterministic planner defect: a different
    // rung would fail identically (or blow the budget further).
    result.status = status;
    result.error = detail;
    return result;
  }

  // Rung 2: the fabric as a whole is unavailable.  One notice with the
  // stable reason token, then a plain single-endpoint planBatch — which
  // itself degrades to rung 3 (in-process) with its own notice if that
  // endpoint is broken too.  stdout stays byte-identical throughout.
  static metrics::Counter& degradedCounter =
      metrics::counter(metrics::kFabricDegraded);
  degradedCounter.add();
  trace::instant("fabric.degraded", "fabric",
                 {trace::Arg::str("why", reason),
                  trace::Arg::str("detail", detail)});
  err << "rfsmc: planner fabric unavailable (" << reason
      << "); retrying via single endpoint\n";

  std::size_t endpoint = 0;
  const auto now = Clock::now();
  for (std::size_t k = 0; k < options.endpoints.size(); ++k) {
    if (impl_->breakers[k]->state(now) != CircuitBreaker::State::kOpen) {
      endpoint = k;
      break;
    }
  }
  ClientOptions single;
  single.socketPath = options.endpoints[endpoint].describe();
  single.deadlineMs = options.deadlineMs;
  single.jobs = options.jobs;
  ClientResult fallback = planBatch(spec, single, err);
  fallback.degraded = true;
  fallback.retries += result.retries;
  fallback.crashes += result.crashes;
  fallback.cacheHits += result.cacheHits;
  return fallback;
}

}  // namespace rfsm::service
