// Wire protocol of the planner service (rfsmd).
//
// The key design decision: requests describe batches by *generation spec*,
// not by shipping machines.  Client, server, and every worker regenerate
// instance k from the same seeded streams, so a shard request is a few
// dozen bytes, and — more importantly — any party can (re)plan any
// subrange [lo, hi) of the batch and get bytes identical to what the
// unsharded in-process planAll would produce for those slots.  That is the
// contract the whole robustness story leans on: a shard lost to a worker
// crash is re-planned (possibly on a different worker, after the original
// died mid-write) with no way to drift.
//
// Framing/encoding primitives live in util/ipc.hpp; this header defines
// what the frames mean.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/migration.hpp"
#include "core/planners.hpp"
#include "util/deadline.hpp"
#include "util/metrics.hpp"
#include "util/supervisor.hpp"
#include "util/trace.hpp"

namespace rfsm::service {

/// First u32 of every frame.
enum class MessageType : std::uint32_t {
  kPlanRequest = 1,    ///< client -> server: plan a batch (sub)range
  kPlanResponse = 2,   ///< server -> client
  kHealthRequest = 3,  ///< client -> server: health/readiness probe
  kHealthResponse = 4, ///< server -> client
  kShardRequest = 5,   ///< server -> worker: plan instances [lo, hi)
  kShardResponse = 6,  ///< worker -> server
  kWarmupRequest = 7,  ///< server -> worker: no-op warm-up (prefork pools)
  kWarmupResponse = 8, ///< worker -> server
  // Session streaming (service/session.hpp): a client opens a long-lived
  // session and streams mutate frames over one connection.
  kSessionOpenRequest = 9,
  kSessionOpenResponse = 10,
  kSessionMutateRequest = 11,
  kSessionMutateResponse = 12,
  kSessionReplayRequest = 13,
  kSessionReplayResponse = 14,
  kSessionCloseRequest = 15,
  kSessionCloseResponse = 16,
  // Live telemetry plane: stats scrape and distributed-trace collection.
  kStatsRequest = 17,      ///< client -> server: live stats snapshot
  kStatsResponse = 18,     ///< server -> client
  kTraceDumpRequest = 19,  ///< client -> server: span-ring dump + clock echo
  kTraceDumpResponse = 20, ///< server -> client
  // Version/feature negotiation: a client may probe before speaking so a
  // mixed-version deployment degrades with a typed refusal, not a frame
  // misparse.
  kHandshakeRequest = 21,  ///< client -> server: version + feature bits
  kHandshakeResponse = 22, ///< server -> client
  // Session replication plane (primary -> standby WAL shipping, epoch
  // fenced; service/repl.hpp).  A standby that sees a lower epoch than its
  // own refuses the write — that refusal is what fences a deposed primary.
  kSessionReplAppendRequest = 23,   ///< primary -> standby: one WAL record
  kSessionReplAppendResponse = 24,  ///< standby -> primary
  kSessionReplSnapshotRequest = 25, ///< primary -> standby: snapshot install
  kSessionReplSnapshotResponse = 26,///< standby -> primary
  kSessionStatusRequest = 27,  ///< client -> server: role/epoch of a session
  kSessionStatusResponse = 28, ///< server -> client
};

/// A batch of seeded random migration instances (the Table 2 axis): for
/// instance k, the source machine and its mutated target are generated from
/// Rng(seed).substream(kGenStreamBase + k), then planned with
/// Rng(seed).substream(k) — both independent of how the batch is sharded.
struct BatchSpec {
  int stateCount = 8;
  int inputCount = 2;
  int outputCount = 2;
  int deltaCount = 4;
  int newStateCount = 0;
  std::uint64_t instanceCount = 8;
  std::uint64_t seed = 1;
  std::string planner = "jsr";  ///< jsr | greedy | ea
  /// EA planner knobs (ignored by jsr/greedy, but always on the wire and in
  /// every cache key: any field that can change planned bytes must never be
  /// invisible to a cache).  Defaults mirror EvolutionConfig's.
  int eaPopulation = 64;
  int eaGenerations = 120;

  bool operator==(const BatchSpec&) const = default;
};

/// Offset separating generation streams from planning streams in the
/// substream space of BatchSpec::seed.
inline constexpr std::uint64_t kGenStreamBase = 1u << 20;

/// Generates instance `index` of the batch (deterministic, shard-agnostic).
MigrationContext makeInstance(const BatchSpec& spec, std::uint64_t index);

/// The batch planner named by spec.planner; throws Error on unknown names.
BatchPlanFn plannerFn(const std::string& name);

/// As above, but honours the spec's planner-config fields (EA population /
/// generations) instead of the compiled-in defaults.
BatchPlanFn plannerFn(const BatchSpec& spec);

/// Whether planRange may consult the process-wide plan-result cache
/// (service/plan_cache.hpp).  kBypass forces ground-truth recomputation —
/// quorum verification and poisoning checks use it so a poisoned entry can
/// never vouch for itself.
enum class PlanCacheMode { kUse, kBypass };

/// Plans instances [lo, hi) in-process and renders each program in the
/// rfsm-program text format (core/program.hpp) — the exact bytes any other
/// shard split would produce for those slots.  `cancel` is polled between
/// instances and inside the planners; `jobs` <= 1 is serial.
///
/// Generated instances are cached process-wide, keyed by (spec, index):
/// long-lived workers serving retried, hedged, or quorum-duplicated shards
/// of the same batch skip the regenerate step entirely
/// (service.worker_cache_hits counts the savings).  Cached or not, the
/// result is byte-identical — the cache stores exactly what makeInstance
/// would produce.
///
/// When the plan-result cache is enabled (plan_cache.hpp) and `mode` is
/// kUse, cached instances are served without replanning and fresh results
/// are stored back — hits are byte-identical to cold computation by the
/// regeneration contract above.
std::vector<std::string> planRange(const BatchSpec& spec, std::uint64_t lo,
                                   std::uint64_t hi,
                                   const CancelToken* cancel = nullptr,
                                   int jobs = 1,
                                   PlanCacheMode mode = PlanCacheMode::kUse);

/// Entries the instance cache holds before evicting (SLRU + ghost list,
/// util/cache.hpp).
inline constexpr std::size_t kInstanceCacheCapacity = 256;

/// Drops every cached instance (tests; also bounds memory after a one-off
/// giant batch).
void clearInstanceCache();

// --- Plan request / response --------------------------------------------

struct PlanRequest {
  BatchSpec spec;
  /// Latency budget in ms; 0 = no deadline.
  std::int64_t deadlineMs = 0;
  /// Client-chosen id, echoed in traces ("service.request" span) so client
  /// and server logs correlate.
  std::uint64_t requestId = 0;
  /// Subrange [lo, hi) of the batch to plan; lo == hi == 0 means the whole
  /// batch.  This is how the fabric shards one spec across endpoints: each
  /// endpoint plans its subrange on the global substreams, so the
  /// concatenation is byte-identical to the unsharded planAll.
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  /// Distributed trace context of the caller's active span — the server
  /// parents its "service.plan_request" span under it, so a stitched dump
  /// links client -> fabric attempt -> daemon -> worker causally.  The
  /// default (invalid, unsampled) context propagates nothing; tracing
  /// observes, never steers (planned bytes are identical either way).
  trace::TraceContext context;

  /// The effective range (resolves the whole-batch shorthand).
  std::uint64_t rangeLo() const { return lo; }
  std::uint64_t rangeHi() const {
    return (lo == 0 && hi == 0) ? spec.instanceCount : hi;
  }
};

struct PlanResponse {
  WorkResult::Status status = WorkResult::Status::kFailed;
  std::string error;
  /// One rfsm-program text per instance (only when status == kOk).
  std::vector<std::string> programs;
  /// Shard retries this request needed (crash/timeout recoveries).
  std::uint64_t retries = 0;
  /// Worker crashes observed during this request.
  std::uint64_t crashes = 0;
  /// Instances served from the server's plan-result cache (0 when the
  /// daemon runs with the cache disabled).
  std::uint64_t cacheHits = 0;
};

std::string encodePlanRequest(const PlanRequest& request);
PlanRequest decodePlanRequest(const std::string& payload);
std::string encodePlanResponse(const PlanResponse& response);
PlanResponse decodePlanResponse(const std::string& payload);

// --- Shard request / response -------------------------------------------

struct ShardRequest {
  BatchSpec spec;
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  /// Absolute deadline as steady_clock ns-since-epoch (CLOCK_MONOTONIC is
  /// machine-wide, and workers are always local children); 0 = none.
  std::int64_t deadlineNs = 0;
  /// Trace context of the server's per-shard span; the worker's
  /// "service.worker_shard" span parents under it.
  trace::TraceContext context;
};

struct ShardResponse {
  /// kOk, kDeadlineExceeded (cooperative), or kFailed (planner threw).
  WorkResult::Status status = WorkResult::Status::kFailed;
  std::string error;
  std::vector<std::string> programs;  ///< instances [lo, hi), when kOk
};

std::string encodeShardRequest(const ShardRequest& request);
ShardRequest decodeShardRequest(const std::string& payload);
std::string encodeShardResponse(const ShardResponse& response);
ShardResponse decodeShardResponse(const std::string& payload);

// --- Health probe --------------------------------------------------------

struct HealthResponse {
  bool healthy = false;
  int workersAlive = 0;
  int workersConfigured = 0;
  std::uint64_t queueDepth = 0;
  std::uint64_t crashes = 0;
  std::uint64_t retries = 0;
  std::uint64_t shed = 0;
};

std::string encodeHealthRequest();
std::string encodeHealthResponse(const HealthResponse& response);
HealthResponse decodeHealthResponse(const std::string& payload);

// --- Worker warm-up -------------------------------------------------------
//
// A preforked pool sends each fresh worker one warm-up frame and waits for
// the echo: the exchange forces exec + dynamic loading + allocator warm-up
// to complete at startup, so the first real shard of a request does not pay
// the cold start (the ROADMAP "worker warm pools" item, visible in A13's
// latency column).

std::string encodeWarmupRequest();
std::string encodeWarmupResponse();
void decodeWarmupResponse(const std::string& payload);  ///< throws on junk

// --- Live stats plane -----------------------------------------------------
//
// One scrape frame returns everything a running daemon knows about itself:
// worker-pool health, plan-cache occupancy, per-tenant session gauges,
// fair-scheduler virtual times, registered circuit breakers, and the full
// metrics snapshot (counters, gauges, timers, histograms, rolling windows).
// `rfsmc stats` renders it as a table, JSON, or Prometheus exposition;
// nothing here affects planning.

struct StatsResponse {
  std::int64_t pid = 0;
  std::int64_t uptimeMs = 0;
  bool draining = false;
  /// Worker-pool health (same fields the health probe reports).
  HealthResponse workers;
  struct PlanCacheStats {
    bool enabled = false;
    std::uint64_t size = 0;
    std::uint64_t capacity = 0;
  };
  PlanCacheStats planCache;
  /// Breakers registered in the answering process (BreakerRegistration).
  /// A daemon usually hosts none — breakers live in fabric clients — but
  /// the frame carries whatever the process has.
  struct BreakerStats {
    std::string name;
    std::string state;  ///< CLOSED | OPEN | HALF-OPEN
    std::uint64_t trips = 0;
  };
  std::vector<BreakerStats> breakers;
  /// Per-tenant session gauges (one row per open session).
  struct SessionStats {
    std::string tenant;
    std::string name;
    std::uint32_t priority = 1;
    double weight = 1.0;
    /// Fair-scheduler virtual time of the session's flow.
    double vtime = 0.0;
    /// Admission tokens the tenant's bucket would have right now.
    double tokensRemaining = 0.0;
    /// Accepted-but-not-yet-applied mutations (queue depth).
    std::uint64_t queued = 0;
    std::uint64_t applied = 0;
    /// Milliseconds since the last WAL append / snapshot; -1 = never.
    std::int64_t walAgeMs = -1;
    std::int64_t snapshotAgeMs = -1;
    /// Replication role ("primary" | "standby") and fencing epoch.
    std::string role = "primary";
    std::uint64_t epoch = 1;
  };
  std::vector<SessionStats> sessions;
  std::uint64_t openSessions = 0;
  std::uint64_t schedulerDepth = 0;
  /// Scheduler-wide virtual time (the vtime frontier).
  double schedulerVirtualNow = 0.0;
  /// Full metrics snapshot of the answering process.
  metrics::Snapshot metrics;
};

std::string encodeStatsRequest();
void decodeStatsRequest(const std::string& payload);  ///< throws on junk
std::string encodeStatsResponse(const StatsResponse& response);
StatsResponse decodeStatsResponse(const std::string& payload);

// --- Trace dump -----------------------------------------------------------
//
// Fetches a process's span ring as Chrome-trace JSON, with a steady-clock
// echo for cross-host offset estimation: the client records t0 before the
// request and t1 after the reply, and tools/trace_stitch.py aligns the
// dump with offset = serverSteadyNs - (t0 + t1) / 2.  Same-host processes
// need no offset — CLOCK_MONOTONIC is machine-wide and every dump embeds
// its own steadyEpochNs.

struct TraceDumpRequest {
  /// Client CLOCK_MONOTONIC ns at send (t0 of the offset handshake).
  std::int64_t clientSteadyNs = 0;
};

struct TraceDumpResponse {
  /// Server CLOCK_MONOTONIC ns when it built the dump.
  std::int64_t serverSteadyNs = 0;
  /// clientSteadyNs echoed back, so one socket can pipeline dumps.
  std::int64_t clientSteadyNs = 0;
  /// trace::toJson() of the server's ring (may be large; one frame).
  std::string traceJson;
};

std::string encodeTraceDumpRequest(const TraceDumpRequest& request);
TraceDumpRequest decodeTraceDumpRequest(const std::string& payload);
std::string encodeTraceDumpResponse(const TraceDumpResponse& response);
TraceDumpResponse decodeTraceDumpResponse(const std::string& payload);

// --- Session streaming ----------------------------------------------------
//
// Tenants open long-lived sessions holding resident machines and stream
// mutation requests against them.  Like batch planning, everything is
// spec-driven: a mutate frame carries (deltaCount, newStateCount,
// mutationSeed), not machine bytes, so the whole session transcript is a
// pure function of the open config and the request sequence — which is
// what lets a SIGKILL'd daemon replay its journal and resume byte-identical
// (service/session.hpp).

/// Typed session verdicts (the wire's "why", distinct from the transport
/// WorkResult::Status): RESOURCE_EXHAUSTED is the admission-control signal
/// clients back off on (retryAfterMs carries the hint), DRAINING means the
/// daemon is shutting down gracefully.
enum class SessionStatus : std::uint32_t {
  kOk = 0,
  kAccepted = 1,  ///< deferred mutation journaled; no program planned yet
  kResourceExhausted = 2,
  kDraining = 3,
  kNotFound = 4,
  kBadSequence = 5,
  kFailed = 6,
  /// Replication fence: the frame's epoch is older than the session's.  A
  /// deposed primary that keeps shipping after a standby was promoted gets
  /// this verdict and must stop acking clients (service.stale_epoch_rejected
  /// counts the refusals).
  kStaleEpoch = 7,
};

const char* toString(SessionStatus status);

struct SessionOpenRequest {
  std::string tenant;
  std::string name;
  /// Priority class: 0 = interactive, 1 = normal, 2 = batch (strict order).
  std::uint32_t priority = 1;
  /// Weighted-fair share within the priority class.
  std::uint32_t weight = 1;
  std::string planner = "jsr";  ///< jsr | greedy | ea
  int stateCount = 8;
  int inputCount = 2;
  int outputCount = 2;
  std::uint64_t seed = 1;
  /// Attach to an existing (possibly journal-recovered) session instead of
  /// failing on a name collision; lastApplied in the response tells the
  /// client where to resume.
  bool resume = true;
};

struct SessionOpenResponse {
  SessionStatus status = SessionStatus::kFailed;
  std::string error;
  /// Highest mutation sequence number the session has accepted (0 for a
  /// fresh session) — the client streams from lastApplied + 1.
  std::uint64_t lastApplied = 0;
  std::int64_t retryAfterMs = 0;
};

struct SessionMutateRequest {
  std::string tenant;
  std::string name;
  /// Client-assigned sequence number, contiguous from 1.  A duplicate
  /// (seq <= the session's high-water mark, e.g. a retry after a lost
  /// reply) is answered from the transcript, not re-applied.
  std::uint64_t seq = 0;
  std::uint32_t deltaCount = 4;
  std::uint32_t newStateCount = 0;
  /// Seeds the target-machine mutation (gen/mutator.hpp) — part of the
  /// deterministic spec, so replay regenerates identical targets.
  std::uint64_t mutationSeed = 0;
  /// Journal this mutation but defer planning: consecutive deferred
  /// mutations are compacted into one delta set when the next non-deferred
  /// frame flushes the batch.
  bool defer = false;
  /// Transcript entries with seq <= ackSeq may be garbage-collected (the
  /// client has durably consumed them); 0 = keep everything.
  std::uint64_t ackSeq = 0;
  /// Trace context of the streaming client; the daemon's mutate/apply spans
  /// parent under it.  Not part of the journaled MutationRecord — replay
  /// after recovery owes nobody a trace.
  trace::TraceContext context;
};

struct SessionMutateResponse {
  SessionStatus status = SessionStatus::kFailed;
  std::string error;
  std::uint64_t seq = 0;
  /// The planned reconfiguration program (rfsm-program text) migrating the
  /// resident machine across the compacted delta set; empty for kAccepted.
  std::string program;
  /// Mutations folded into this plan (>= 1: the deferred run plus this).
  std::uint64_t compactedFrom = 0;
  /// Net delta transitions planned vs. raw deltas requested across the
  /// compacted run — the difference is what compaction saved.
  std::uint32_t deltasPlanned = 0;
  std::uint32_t deltasRaw = 0;
  std::int64_t retryAfterMs = 0;
};

struct SessionReplayRequest {
  std::string tenant;
  std::string name;
  /// Inclusive seq range; planned entries in range are returned (deferred
  /// seqs have no transcript entry).
  std::uint64_t fromSeq = 1;
  std::uint64_t toSeq = 0;
};

struct SessionReplayResponse {
  SessionStatus status = SessionStatus::kFailed;
  std::string error;
  struct Entry {
    std::uint64_t seq = 0;
    std::string program;
  };
  std::vector<Entry> entries;
};

struct SessionCloseRequest {
  std::string tenant;
  std::string name;
};

struct SessionCloseResponse {
  SessionStatus status = SessionStatus::kFailed;
  std::string error;
  std::uint64_t mutationsApplied = 0;
  std::uint64_t plans = 0;
};

std::string encodeSessionOpenRequest(const SessionOpenRequest& request);
SessionOpenRequest decodeSessionOpenRequest(const std::string& payload);
std::string encodeSessionOpenResponse(const SessionOpenResponse& response);
SessionOpenResponse decodeSessionOpenResponse(const std::string& payload);
std::string encodeSessionMutateRequest(const SessionMutateRequest& request);
SessionMutateRequest decodeSessionMutateRequest(const std::string& payload);
std::string encodeSessionMutateResponse(const SessionMutateResponse& response);
SessionMutateResponse decodeSessionMutateResponse(const std::string& payload);
std::string encodeSessionReplayRequest(const SessionReplayRequest& request);
SessionReplayRequest decodeSessionReplayRequest(const std::string& payload);
std::string encodeSessionReplayResponse(const SessionReplayResponse& response);
SessionReplayResponse decodeSessionReplayResponse(const std::string& payload);
std::string encodeSessionCloseRequest(const SessionCloseRequest& request);
SessionCloseRequest decodeSessionCloseRequest(const std::string& payload);
std::string encodeSessionCloseResponse(const SessionCloseResponse& response);
SessionCloseResponse decodeSessionCloseResponse(const std::string& payload);

// --- Session replication --------------------------------------------------
//
// The primary ships each durably journaled mutation record to every standby
// before (quorum) or after (async) acking the client.  Frames carry the full
// open config so a standby can lazily create the session on first contact,
// and every frame carries the primary's session epoch: a standby whose own
// epoch is higher answers kStaleEpoch, which is the fence that stops a
// deposed primary from acking writes nobody replicates.

struct SessionReplAppendRequest {
  /// Open config (mirrors SessionOpenRequest): lets the standby create or
  /// config-check the session without a separate open exchange.
  std::string tenant;
  std::string name;
  std::uint32_t priority = 1;
  std::uint32_t weight = 1;
  std::string planner = "jsr";
  int stateCount = 8;
  int inputCount = 2;
  int outputCount = 2;
  std::uint64_t seed = 1;
  /// The shipping primary's session epoch (monotone; bumped on promotion).
  std::uint64_t epoch = 1;
  /// The journaled MutationRecord, field for field.
  std::uint64_t seq = 0;
  std::uint32_t deltaCount = 4;
  std::uint32_t newStateCount = 0;
  std::uint64_t mutationSeed = 0;
  bool defer = false;
};

struct SessionReplAppendResponse {
  SessionStatus status = SessionStatus::kFailed;
  std::string error;
  /// The standby's current epoch — on kStaleEpoch this tells the deposed
  /// primary how far behind it is (and that it must stop acking).
  std::uint64_t epoch = 0;
  /// The standby's accepted high-water mark after this frame; a gap
  /// (lastAccepted < seq - 1) tells the primary to resync via snapshot.
  std::uint64_t lastAccepted = 0;
};

struct SessionReplSnapshotRequest {
  std::string tenant;
  std::string name;
  std::uint64_t epoch = 1;
  /// Exact bytes of the primary's on-disk snapshot (magic + body + fnv64
  /// trailer); the standby verifies the trailer before installing, so a
  /// corrupted link can never seed a standby with junk.
  std::string snapshot;
};

struct SessionReplSnapshotResponse {
  SessionStatus status = SessionStatus::kFailed;
  std::string error;
  std::uint64_t epoch = 0;
  std::uint64_t lastAccepted = 0;
};

/// Role/epoch probe (`rfsmc session status`): which side of the replication
/// plane a session is on, and how far its replay has progressed.
struct SessionStatusRequest {
  std::string tenant;
  std::string name;
};

struct SessionStatusResponse {
  SessionStatus status = SessionStatus::kFailed;
  std::string error;
  std::string role;  ///< "primary" | "standby"
  std::uint64_t epoch = 0;
  std::uint64_t lastAccepted = 0;  ///< journaled high-water mark
  std::uint64_t applied = 0;       ///< warm-replay progress (== lastAccepted
                                   ///< when the standby is fully caught up)
};

std::string encodeSessionReplAppendRequest(
    const SessionReplAppendRequest& request);
SessionReplAppendRequest decodeSessionReplAppendRequest(
    const std::string& payload);
std::string encodeSessionReplAppendResponse(
    const SessionReplAppendResponse& response);
SessionReplAppendResponse decodeSessionReplAppendResponse(
    const std::string& payload);
std::string encodeSessionReplSnapshotRequest(
    const SessionReplSnapshotRequest& request);
SessionReplSnapshotRequest decodeSessionReplSnapshotRequest(
    const std::string& payload);
std::string encodeSessionReplSnapshotResponse(
    const SessionReplSnapshotResponse& response);
SessionReplSnapshotResponse decodeSessionReplSnapshotResponse(
    const std::string& payload);
std::string encodeSessionStatusRequest(const SessionStatusRequest& request);
SessionStatusRequest decodeSessionStatusRequest(const std::string& payload);
std::string encodeSessionStatusResponse(const SessionStatusResponse& response);
SessionStatusResponse decodeSessionStatusResponse(const std::string& payload);

// --- Version/feature handshake -------------------------------------------

/// The protocol generation this build speaks.  Bumped on any frame-layout
/// change that older peers cannot parse (the CRC32C trailer is generation
/// 1; generation 2 added the replication plane: SessionRepl*/SessionStatus
/// frames, the STALE_EPOCH verdict, and role/epoch fields on the stats
/// session rows — a generation-1 peer would misparse all three).
inline constexpr std::uint32_t kProtocolVersion = 2;

/// Feature bits advertised in the handshake.
inline constexpr std::uint32_t kFeatureCrc32c = 1u << 0;

struct HandshakeRequest {
  std::uint32_t version = kProtocolVersion;
  std::uint32_t features = kFeatureCrc32c;
};

struct HandshakeResponse {
  bool accepted = false;
  std::uint32_t version = kProtocolVersion;  ///< the server's generation
  std::uint32_t features = 0;  ///< requested features the server supports
  std::string error;           ///< refusal reason when !accepted
};

std::string encodeHandshakeRequest(const HandshakeRequest& request);
HandshakeRequest decodeHandshakeRequest(const std::string& payload);
std::string encodeHandshakeResponse(const HandshakeResponse& response);
HandshakeResponse decodeHandshakeResponse(const std::string& payload);

/// The server's answer to a handshake: refuses version mismatches (a peer
/// from another generation must not guess at frame layouts) and masks the
/// requested feature bits down to the supported set.  Free function so
/// downgrade behaviour is testable without a daemon.
HandshakeResponse answerHandshake(const HandshakeRequest& request);

/// The message type of a payload (its first u32); throws IpcError on an
/// unknown tag or an empty frame.
MessageType peekType(const std::string& payload);

}  // namespace rfsm::service
