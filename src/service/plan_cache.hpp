// Content-addressed plan-result cache: the ROADMAP's "millions-of-users
// lever".
//
// The service's whole wire protocol already describes work by value — a
// BatchSpec plus an instance index determines the planned program bytes
// exactly (protocol.hpp's regeneration contract, with the plan substream
// indexed *absolutely*, not per-shard).  That makes plan results perfect
// memoization targets: the cache key is a canonical hash of every field
// that feeds generation or planning (dims, delta set size, seed, planner
// name, EA config, instance index), and the value is the rendered
// rfsm-program text — the same bytes a cold computation would produce, so
// a hit is indistinguishable from recomputation on stdout.
//
// Sharing model is broker-in-parent: the cache lives in whichever process
// consults it — the rfsmd server parent (so a result planned by worker A
// serves later requests without touching worker B), the fabric client (so
// a warm shard is never dispatched to a remote endpoint at all), and plain
// in-process planRange.  Workers themselves keep it disabled; their
// results flow up through the parent's store.
//
// The cache is OFF by default (capacity 0).  Tools opt in via --plan-cache
// or RFSM_PLAN_CACHE; the library never reads the environment on its own,
// keeping tests hermetic.
//
// Poisoning defense: the key is not a cryptographic commitment, and a
// corrupted or tampered entry would otherwise be served forever.  The
// fabric routes *sampled* cache hits through the existing --quorum
// byte-verification; a divergent entry is quarantined (erased, ghost
// history dropped), counted in service.plan_cache_poisoned, recomputed,
// and the recomputed truth re-stored — the poisoned bytes are never served
// (fabric.cpp, verifyCachedShard).
//
// Invalidation: keys never expire by time — a (spec, index) pair's correct
// bytes cannot change while the planner implementation stands still.  When
// an intentional change to planner output bytes lands, bump
// kPlanCacheKeyVersion; it is hashed into every key, so all old entries
// become unreachable at once.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "service/protocol.hpp"

namespace rfsm::service {

/// Hashed into every key.  Bump when planner output bytes may legitimately
/// change, so stale entries from an older build cannot alias new requests.
inline constexpr std::uint64_t kPlanCacheKeyVersion = 1;

/// Capacity used when enabling via RFSM_PLAN_CACHE without a value.
inline constexpr std::size_t kPlanCacheDefaultCapacity = 4096;

/// (Re)bounds the process-wide plan cache to `capacity` entries; 0 disables
/// it and drops everything held.  Shrinking evicts immediately (counted in
/// service.plan_cache_evictions).
void configurePlanCache(std::size_t capacity);

/// Applies RFSM_PLAN_CACHE: unset/"0" leaves the cache off, a positive
/// integer is the capacity, any other non-empty value (e.g. "1" from
/// `RFSM_PLAN_CACHE=1`, or junk) enables the default capacity.  Called by
/// tool mains only, never by the library.
void configurePlanCacheFromEnv();

bool planCacheEnabled();
std::size_t planCacheSize();
std::size_t planCacheCapacity();

/// Canonical key for instance `index` of `spec` (32 hex chars).  Absorbs
/// every BatchSpec field that affects the planned bytes — dims, delta
/// counts, seed, planner, EA config — plus kPlanCacheKeyVersion and the
/// absolute instance index.  Deliberately omits instanceCount: instance k
/// of a 10-batch and of a 1000-batch are the same machine and the same
/// plan, and cross-batch sharing is the point.
std::string planCacheKey(const BatchSpec& spec, std::uint64_t index);

/// Program text for `key`, counting service.plan_cache_hits/_misses.
/// Always a miss while the cache is disabled (and then counts nothing —
/// disabled means invisible).
std::optional<std::string> planCacheLookup(const std::string& key);

/// Stores `program` under `key` (no-op while disabled), counting evictions.
void planCacheStore(const std::string& key, std::string program);

/// Erases `key` outright, including its ghost-list history, so a poisoned
/// entry cannot be fast-readmitted on the strength of a tainted past.  The
/// caller counts service.plan_cache_poisoned (quarantine is also used by
/// tests for plain invalidation).
void planCacheQuarantine(const std::string& key);

/// Empties the cache without changing its capacity (tests).
void clearPlanCache();

}  // namespace rfsm::service
