// Multi-tenant streaming sessions over resident machines.
//
// A session is a long-lived machine a tenant mutates continuously: each
// mutate frame derives a new target from the *current* machine
// (deltaCount/newStateCount/mutationSeed, gen/mutator.hpp), plans a
// reconfiguration program migrating the resident machine onto it, and
// returns the program text.  Deferred mutations batch up and are
// *compacted* when flushed: the run of pending targets is composed first,
// so only the net-changed cells are planned (a cell rewritten twice costs
// one delta; a reverted cell costs zero).
//
// Crash consistency is determinism-by-construction.  The whole transcript
// — every planned program, byte for byte — is a pure function of the open
// config and the accepted mutation sequence, because:
//
//   * targets are derived from Rng(mutationSeed), never from wall clocks;
//   * plans draw from Rng(seed).substream(kSessionPlanStreamBase + plan#);
//   * compaction boundaries are request-driven (the explicit defer flag),
//     never timing-driven.
//
// SessionEngine is that pure function, and it is the *only* implementation:
// the live daemon, journal replay after a SIGKILL, and the `rfsmc session
// stream --local` reference all run the same code, so a resumed session
// cannot diverge from an uninterrupted one.
//
// SessionService wraps engines with the robustness machinery: a per-session
// write-ahead journal (core/journal.hpp RecordLog framing; append + fsync
// *before* any work is scheduled) with periodic snapshots (whole-file
// atomic replace, util/fsio.hpp), hot-restart recovery, token-bucket
// admission control, and priority-classed weighted-fair scheduling
// (util/fair.hpp) across sessions.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "fsm/machine.hpp"
#include "service/protocol.hpp"
#include "service/repl.hpp"
#include "util/breaker.hpp"
#include "util/fair.hpp"
#include "util/ipc.hpp"

namespace rfsm::service {

/// Offset separating session planning streams from the batch substream
/// spaces (protocol.hpp kGenStreamBase) in the seed's substream space.
inline constexpr std::uint64_t kSessionPlanStreamBase = 1u << 21;

/// Immutable per-session configuration, fixed at open.
struct SessionConfig {
  std::string tenant;
  std::string name;
  int priority = 1;
  double weight = 1.0;
  std::string planner = "jsr";
  int stateCount = 8;
  int inputCount = 2;
  int outputCount = 2;
  std::uint64_t seed = 1;

  bool operator==(const SessionConfig&) const = default;
};

/// One accepted mutation — the unit of the write-ahead journal.
struct MutationRecord {
  std::uint64_t seq = 0;
  std::uint32_t deltaCount = 4;
  std::uint32_t newStateCount = 0;
  std::uint64_t mutationSeed = 0;
  bool defer = false;
};

/// What applying one mutation produced.  Failures are deterministic too
/// (an infeasible spec fails identically on replay); a failed mutation
/// consumes its sequence number but leaves the machine and the pending
/// batch untouched.
struct PlanOutcome {
  bool planned = false;  ///< a program was produced (non-deferred flush)
  bool failed = false;
  std::string error;
  std::string program;  ///< rfsm-program text (planned only)
  std::uint64_t compactedFrom = 0;  ///< mutations folded into this plan
  int deltasPlanned = 0;
  int deltasRaw = 0;
};

/// The deterministic session core: resident machine + pending deferred
/// batch + plan counter.  Everything observable is a pure function of
/// (config, accepted mutation sequence); see the file comment.
class SessionEngine {
 public:
  explicit SessionEngine(SessionConfig config);

  const SessionConfig& config() const { return config_; }
  const Machine& machine() const { return machine_; }
  std::uint64_t lastApplied() const { return lastApplied_; }
  std::uint64_t planCount() const { return planCount_; }
  std::size_t pendingCount() const { return pending_.size(); }

  /// Applies the next mutation (rec.seq must be lastApplied() + 1;
  /// anything else is a caller bug and throws).  Deferred records just
  /// join the pending batch; a non-deferred record composes pending + self
  /// into one target, plans the compacted delta set, applies the program
  /// to the resident machine, and advances it.
  PlanOutcome apply(const MutationRecord& rec);

  /// Snapshot encode/decode (binary, ipc::MessageWriter fields + trailing
  /// checksum).  decodeSnapshot throws ipc::IpcError / Error on damage.
  void encodeSnapshot(ipc::MessageWriter& writer) const;
  static SessionEngine decodeSnapshot(ipc::MessageReader& reader);

 private:
  SessionEngine(SessionConfig config, Machine machine);

  SessionConfig config_;
  Machine machine_;
  std::vector<MutationRecord> pending_;
  std::uint64_t lastApplied_ = 0;
  std::uint64_t planCount_ = 0;
};

/// Validates tenant/session names: 1-64 chars of [A-Za-z0-9._-] (they are
/// embedded in journal record lines and file names).
bool validSessionName(const std::string& name);

struct SessionServiceOptions {
  /// Directory for journals and snapshots; "" = volatile sessions (no
  /// crash recovery, still drainable).
  std::string stateDir;
  /// Planning executor threads pulling from the fair scheduler.
  int executors = 2;
  /// Accepted mutations between snapshots (journal rotations); 0 = never
  /// snapshot (the journal grows unboundedly but recovery still works).
  std::uint64_t snapshotEvery = 8;
  /// Per-tenant token-bucket admission: sustained mutations/second and
  /// burst capacity; rate 0 = unlimited.
  double tenantRate = 0.0;
  double tenantBurst = 16.0;
  std::size_t maxSessions = 256;
  /// Standby endpoints to replicate every accepted mutation to (rfsmd
  /// --replica, repeatable).  Empty = replication off.
  std::vector<ipc::Endpoint> replicas;
  /// Ack durability when replicas is non-empty (rfsmd --repl-ack).
  ReplAck replAck = ReplAck::kQuorum;
  /// Promotion gate (rfsmd --standby-grace): a standby refuses
  /// client-triggered promotion while it heard from its primary within
  /// this window, so a transient transport blip between client and primary
  /// cannot depose a healthy primary mid-ship.  0 (default) = promote on
  /// first client contact — the client's arrival is the election, which is
  /// correct when standby endpoints are listed after the primary.
  std::chrono::milliseconds standbyGrace{0};
};

/// The robust session store.  Thread-safe; every public call may be made
/// from any connection-handler thread.
class SessionService {
 public:
  /// Starts the executor pool and, when stateDir is set, recovers every
  /// session found there (journal replay on top of the latest snapshot).
  explicit SessionService(SessionServiceOptions options);

  /// Finishes queued (journaled) work, then stops the executors.  Call
  /// drain() first for the graceful-persist path.
  ~SessionService();

  SessionService(const SessionService&) = delete;
  SessionService& operator=(const SessionService&) = delete;

  SessionOpenResponse open(const SessionOpenRequest& request);
  SessionMutateResponse mutate(const SessionMutateRequest& request);
  SessionReplayResponse replay(const SessionReplayRequest& request);
  SessionCloseResponse close(const SessionCloseRequest& request);

  /// Standby side of the replication plane: journals a record shipped by a
  /// primary (creating the session on first contact) and schedules a warm
  /// replay, without waiting for the apply.  Fenced by epoch: a request
  /// older than the local epoch answers kStaleEpoch and is counted.
  SessionReplAppendResponse replAppend(const SessionReplAppendRequest& request);
  /// Standby side of resync: installs a whole snapshot (exact primary
  /// .snap bytes), replacing local state when it is ahead of ours.
  SessionReplSnapshotResponse replInstall(
      const SessionReplSnapshotRequest& request);
  /// Role/epoch/progress probe (rfsmc session status, failover smoke).
  SessionStatusResponse status(const SessionStatusRequest& request);

  /// Stops admitting new sessions and mutations (kDraining replies).
  void beginDrain();

  /// Graceful drain: beginDrain, finish every queued mutation, persist
  /// every session (snapshot + rotated journal), stop the executors.
  /// Returns the number of sessions persisted.
  std::size_t drain();

  /// Sessions rebuilt from disk at construction.
  std::uint64_t recoveredSessions() const { return recovered_; }
  /// Corrupt files quarantined (renamed aside) during recovery.
  std::uint64_t quarantined() const { return quarantined_; }
  std::size_t sessionCount() const;

  /// Fills the session section of a live stats scrape: one SessionStats
  /// row per open session (queue depth, WAL/snapshot age, admission tokens,
  /// scheduler vtime) plus the scheduler-wide depth and vtime frontier.
  void fillStats(StatsResponse& stats) const;

 private:
  struct Session;
  using SessionPtr = std::shared_ptr<Session>;

  static std::string key(const std::string& tenant, const std::string& name);
  void executorLoop();
  void applyOne(const SessionPtr& session, const MutationRecord& rec);
  void persistLocked(Session& session);
  void rewriteWalLocked(Session& session);
  void appendWalLocked(Session& session, const MutationRecord& rec);
  bool recoverOne(const std::string& base);
  SessionMutateResponse answerFromHistory(Session& session,
                                          std::uint64_t seq) const;
  /// Turns a standby session into the primary: waits out the un-applied
  /// tail (O(tail) by the standby's continuous warm replay), bumps the
  /// epoch (fencing the deposed primary), rewrites the journal header.
  /// Caller holds `lock`; the wait releases it, so `sessionKey` is taken
  /// by value (a map-node reference would dangle if a concurrent close()
  /// erased the entry) and the caller must re-validate its iterator with
  /// stillOpenLocked() afterwards.
  void promoteLocked(std::unique_lock<std::mutex>& lock, Session& session,
                     std::string sessionKey);
  /// Whether `sessionKey` still maps to exactly `session`.  Must be
  /// re-checked after ANY window where mutex_ was released (condition
  /// waits, quorum ships): a concurrent close() invalidates iterators, and
  /// a close+reopen race leaves the key mapping to a different object.
  bool stillOpenLocked(const std::string& sessionKey,
                       const SessionPtr& session) const;
  /// Whether a client-triggered promotion of this standby is admissible
  /// under options_.standbyGrace (see SessionServiceOptions).
  bool promotionDueLocked(const Session& session) const;
  /// Builds the resync bundle the Replicator ships to a gapped standby.
  std::optional<Replicator::ResyncBundle> resyncBundle(
      const std::string& tenant, const std::string& name);
  /// Marks a session fenced after a standby reported a newer epoch.
  void fenceSession(const std::string& tenant, const std::string& name,
                    std::uint64_t standbyEpoch);

  SessionServiceOptions options_;
  mutable std::mutex mutex_;
  std::condition_variable work_;     ///< executors: queue state changed
  std::condition_variable applied_;  ///< waiters: a mutation finished
  FairScheduler scheduler_;
  std::map<std::string, SessionPtr> sessions_;
  std::map<std::string, TokenBucket> buckets_;
  bool draining_ = false;
  bool stopping_ = false;
  bool stopped_ = false;
  std::uint64_t recovered_ = 0;
  std::uint64_t quarantined_ = 0;
  std::vector<std::thread> executors_;
  /// Declared last: its async workers call back into the store (resync,
  /// fencing), so it must be destroyed before the mutex and maps above.
  std::unique_ptr<Replicator> replicator_;
};

/// Client side of a streaming session: one connection, many frames, with
/// transparent reconnect + resend on transport failure (a SIGKILL'd and
/// restarted daemon answers resent duplicates from its recovered
/// transcript, so retrying is always safe).  Admission rejections are NOT
/// retried here — they surface to the caller, which owns the backoff.
///
/// Failover: when `endpoints` lists more than one daemon (primary first,
/// standbys after), a transport failure rotates to the next endpoint — so
/// a killed primary is transparently replaced by its promoted standby.
/// Per-endpoint circuit breakers keep rotation away from endpoints that
/// just failed; reconnect delays follow backoffDelay (capped ladder +
/// deterministic per-client jitter, no thundering herd).
class SessionStream {
 public:
  struct Options {
    ipc::Endpoint endpoint;
    /// Failover set; when non-empty it *replaces* `endpoint` (which is
    /// kept for single-daemon callers).  Order = preference.
    std::vector<ipc::Endpoint> endpoints;
    /// Transport retry budget per call (reconnect + resend until this
    /// elapses, then the last IpcError propagates).
    std::chrono::milliseconds retryFor{15000};
    /// Silence bound per reply read.
    std::chrono::milliseconds readTimeout{30000};
  };

  explicit SessionStream(Options options);

  SessionOpenResponse open(const SessionOpenRequest& request);
  SessionMutateResponse mutate(const SessionMutateRequest& request);
  SessionReplayResponse replay(const SessionReplayRequest& request);
  SessionCloseResponse close(const SessionCloseRequest& request);
  SessionStatusResponse status(const SessionStatusRequest& request);

  /// Transport-level reconnects performed so far (visible retry evidence
  /// for the CI smoke and the kill/restart bench cell).
  std::uint64_t reconnects() const { return reconnects_; }
  /// Endpoint rotations performed so far (0 while the first choice holds).
  std::uint64_t failovers() const { return failovers_; }
  /// The endpoint the next frame will be sent to.
  const ipc::Endpoint& currentEndpoint() const { return endpoints_[current_]; }

 private:
  std::string exchange(const std::string& payload);
  /// Rotates to the next endpoint whose breaker admits a request (falls
  /// back to plain round-robin when every breaker is open).
  void rotate();

  Options options_;
  std::vector<ipc::Endpoint> endpoints_;
  std::vector<std::unique_ptr<CircuitBreaker>> breakers_;
  std::size_t current_ = 0;
  ipc::Fd conn_;
  std::uint64_t reconnects_ = 0;
  std::uint64_t failovers_ = 0;
};

}  // namespace rfsm::service
