#include "service/protocol.hpp"

#include "core/jsr.hpp"
#include "core/program.hpp"
#include "gen/generator.hpp"
#include "gen/mutator.hpp"
#include "service/plan_cache.hpp"
#include "util/cache.hpp"
#include "util/ipc.hpp"
#include "util/metrics.hpp"
#include "util/thread_pool.hpp"

namespace rfsm::service {
namespace {

void putSpec(ipc::MessageWriter& writer, const BatchSpec& spec) {
  writer.u32(static_cast<std::uint32_t>(spec.stateCount));
  writer.u32(static_cast<std::uint32_t>(spec.inputCount));
  writer.u32(static_cast<std::uint32_t>(spec.outputCount));
  writer.u32(static_cast<std::uint32_t>(spec.deltaCount));
  writer.u32(static_cast<std::uint32_t>(spec.newStateCount));
  writer.u64(spec.instanceCount);
  writer.u64(spec.seed);
  writer.str(spec.planner);
  writer.u32(static_cast<std::uint32_t>(spec.eaPopulation));
  writer.u32(static_cast<std::uint32_t>(spec.eaGenerations));
}

BatchSpec getSpec(ipc::MessageReader& reader) {
  BatchSpec spec;
  spec.stateCount = static_cast<int>(reader.u32());
  spec.inputCount = static_cast<int>(reader.u32());
  spec.outputCount = static_cast<int>(reader.u32());
  spec.deltaCount = static_cast<int>(reader.u32());
  spec.newStateCount = static_cast<int>(reader.u32());
  spec.instanceCount = reader.u64();
  spec.seed = reader.u64();
  spec.planner = reader.str();
  spec.eaPopulation = static_cast<int>(reader.u32());
  spec.eaGenerations = static_cast<int>(reader.u32());
  return spec;
}

void expectType(ipc::MessageReader& reader, MessageType expected) {
  const auto tag = reader.u32();
  if (tag != static_cast<std::uint32_t>(expected))
    throw ipc::IpcError("unexpected message type " + std::to_string(tag) +
                        " (expected " +
                        std::to_string(static_cast<std::uint32_t>(expected)) +
                        ")");
}

WorkResult::Status statusFromWire(std::uint32_t value) {
  switch (value) {
    case 0: return WorkResult::Status::kOk;
    case 1: return WorkResult::Status::kFailed;
    case 2: return WorkResult::Status::kDeadlineExceeded;
    case 3: return WorkResult::Status::kShed;
    case 4: return WorkResult::Status::kUnavailable;
  }
  throw ipc::IpcError("unknown status code " + std::to_string(value));
}

std::uint32_t statusToWire(WorkResult::Status status) {
  switch (status) {
    case WorkResult::Status::kOk: return 0;
    case WorkResult::Status::kFailed: return 1;
    case WorkResult::Status::kDeadlineExceeded: return 2;
    case WorkResult::Status::kShed: return 3;
    case WorkResult::Status::kUnavailable: return 4;
  }
  return 1;
}

// --- Instance cache ------------------------------------------------------
//
// makeInstance is deterministic in (spec, index), so its results are
// cacheable forever.  A long-lived worker serving retried, hedged, or
// quorum-duplicated shards of the same batch regenerates nothing; SLRU +
// ghost admission (util/cache.hpp) at kInstanceCacheCapacity bounds the
// footprint without letting one-shot sweeps flush the hot working set.

SlruCache<MigrationContext>& instanceCache() {
  static auto* cache =  // immortal
      new SlruCache<MigrationContext>(kInstanceCacheCapacity);
  return *cache;
}

std::string instanceKey(const BatchSpec& spec, std::uint64_t index) {
  // instanceCount is deliberately absent: instance k's bytes depend only on
  // the generation dimensions and seed, so shards of differently-sized
  // sweeps over the same spec share entries.  The planner and EA fields are
  // equally absent — and must stay so — because generation draws only from
  // the gen substream; the regression test InstanceCacheKeySeparation pins
  // every field that *does* matter.
  return std::to_string(spec.stateCount) + "," +
         std::to_string(spec.inputCount) + "," +
         std::to_string(spec.outputCount) + "," +
         std::to_string(spec.deltaCount) + "," +
         std::to_string(spec.newStateCount) + "," +
         std::to_string(spec.seed) + "#" + std::to_string(index);
}

MigrationContext cachedInstance(const BatchSpec& spec, std::uint64_t index) {
  static metrics::Counter& hits =
      metrics::counter(metrics::kServiceWorkerCacheHits);
  static metrics::Counter& misses =
      metrics::counter(metrics::kServiceWorkerCacheMisses);
  SlruCache<MigrationContext>& cache = instanceCache();
  const std::string key = instanceKey(spec, index);
  if (auto hit = cache.get(key)) {
    hits.add();
    return *std::move(hit);
  }
  misses.add();
  // Generate outside the cache lock (the expensive part); a racing twin
  // doing the same work inserts an identical value, so last-writer-wins is
  // harmless.
  MigrationContext instance = makeInstance(spec, index);
  cache.put(key, instance);
  return instance;
}

}  // namespace

void clearInstanceCache() { instanceCache().clear(); }

MigrationContext makeInstance(const BatchSpec& spec, std::uint64_t index) {
  Rng gen = Rng(spec.seed).substream(kGenStreamBase + index);
  RandomMachineSpec sourceSpec;
  sourceSpec.stateCount = spec.stateCount;
  sourceSpec.inputCount = spec.inputCount;
  sourceSpec.outputCount = spec.outputCount;
  sourceSpec.name = "batch" + std::to_string(index);
  const Machine source = randomMachine(sourceSpec, gen);
  MutationSpec mutation;
  mutation.deltaCount = spec.deltaCount;
  mutation.newStateCount = spec.newStateCount;
  mutation.name = sourceSpec.name + "'";
  const Machine target = mutateMachine(source, mutation, gen);
  return MigrationContext(source, target);
}

BatchPlanFn plannerFn(const std::string& name) {
  if (name == "jsr") {
    return [](const MigrationContext& context, Rng&) {
      return planJsr(context);
    };
  }
  if (name == "greedy") {
    return [](const MigrationContext& context, Rng&) {
      return planGreedy(context);
    };
  }
  if (name == "ea") {
    return [](const MigrationContext& context, Rng& rng) {
      return planEvolutionary(context, EvolutionConfig{}, rng).program;
    };
  }
  throw Error("unknown batch planner '" + name + "' (jsr|greedy|ea)");
}

BatchPlanFn plannerFn(const BatchSpec& spec) {
  if (spec.planner == "ea") {
    EvolutionConfig config;
    config.populationSize = spec.eaPopulation;
    config.generations = spec.eaGenerations;
    return [config](const MigrationContext& context, Rng& rng) {
      return planEvolutionary(context, config, rng).program;
    };
  }
  return plannerFn(spec.planner);
}

namespace {

/// The pre-split planRange body: always generates and plans, never touches
/// the plan-result cache.  Quorum verification reaches it via kBypass.
std::vector<std::string> planRangeUncached(const BatchSpec& spec,
                                           std::uint64_t lo, std::uint64_t hi,
                                           const CancelToken* cancel,
                                           int jobs) {
  std::vector<MigrationContext> instances;
  instances.reserve(static_cast<std::size_t>(hi - lo));
  for (std::uint64_t k = lo; k < hi; ++k) {
    pollCancel(cancel, "service.generate");
    instances.push_back(cachedInstance(spec, k));
  }

  BatchOptions options;
  options.jobs = jobs;
  options.seed = spec.seed;
  options.substreamBase = lo;  // the bit-identical-shard contract
  options.cancel = cancel;
  const std::vector<ReconfigurationProgram> programs =
      planAll(instances, plannerFn(spec), options);

  std::vector<std::string> texts;
  texts.reserve(programs.size());
  for (std::size_t k = 0; k < programs.size(); ++k)
    texts.push_back(programToText(instances[k], programs[k]));
  return texts;
}

}  // namespace

std::vector<std::string> planRange(const BatchSpec& spec, std::uint64_t lo,
                                   std::uint64_t hi, const CancelToken* cancel,
                                   int jobs, PlanCacheMode mode) {
  RFSM_CHECK(lo <= hi && hi <= spec.instanceCount,
             "shard range out of bounds");
  if (mode == PlanCacheMode::kBypass || !planCacheEnabled())
    return planRangeUncached(spec, lo, hi, cancel, jobs);

  // Serve what the plan cache holds, recompute the gaps as contiguous runs
  // (each run plans with substreamBase = its own absolute lo, so the bytes
  // match the unsharded computation no matter how hits fragment the range).
  const std::size_t count = static_cast<std::size_t>(hi - lo);
  std::vector<std::string> texts(count);
  std::vector<bool> cached(count, false);
  for (std::uint64_t k = lo; k < hi; ++k) {
    pollCancel(cancel, "service.generate");
    if (auto hit = planCacheLookup(planCacheKey(spec, k))) {
      texts[static_cast<std::size_t>(k - lo)] = *std::move(hit);
      cached[static_cast<std::size_t>(k - lo)] = true;
    }
  }
  std::uint64_t runLo = lo;
  while (runLo < hi) {
    if (cached[static_cast<std::size_t>(runLo - lo)]) {
      ++runLo;
      continue;
    }
    std::uint64_t runHi = runLo + 1;
    while (runHi < hi && !cached[static_cast<std::size_t>(runHi - lo)])
      ++runHi;
    std::vector<std::string> fresh =
        planRangeUncached(spec, runLo, runHi, cancel, jobs);
    for (std::uint64_t k = runLo; k < runHi; ++k) {
      planCacheStore(planCacheKey(spec, k),
                     fresh[static_cast<std::size_t>(k - runLo)]);
      texts[static_cast<std::size_t>(k - lo)] =
          std::move(fresh[static_cast<std::size_t>(k - runLo)]);
    }
    runLo = runHi;
  }
  return texts;
}

// --- Plan request / response --------------------------------------------

std::string encodePlanRequest(const PlanRequest& request) {
  ipc::MessageWriter writer;
  writer.u32(static_cast<std::uint32_t>(MessageType::kPlanRequest));
  putSpec(writer, request.spec);
  writer.i64(request.deadlineMs);
  writer.u64(request.requestId);
  writer.u64(request.lo);
  writer.u64(request.hi);
  return writer.take();
}

PlanRequest decodePlanRequest(const std::string& payload) {
  ipc::MessageReader reader(payload);
  expectType(reader, MessageType::kPlanRequest);
  PlanRequest request;
  request.spec = getSpec(reader);
  request.deadlineMs = reader.i64();
  request.requestId = reader.u64();
  request.lo = reader.u64();
  request.hi = reader.u64();
  reader.expectEnd();
  return request;
}

std::string encodePlanResponse(const PlanResponse& response) {
  ipc::MessageWriter writer;
  writer.u32(static_cast<std::uint32_t>(MessageType::kPlanResponse));
  writer.u32(statusToWire(response.status));
  writer.str(response.error);
  writer.u64(response.retries);
  writer.u64(response.crashes);
  writer.u64(response.cacheHits);
  writer.u32(static_cast<std::uint32_t>(response.programs.size()));
  for (const auto& program : response.programs) writer.str(program);
  return writer.take();
}

PlanResponse decodePlanResponse(const std::string& payload) {
  ipc::MessageReader reader(payload);
  expectType(reader, MessageType::kPlanResponse);
  PlanResponse response;
  response.status = statusFromWire(reader.u32());
  response.error = reader.str();
  response.retries = reader.u64();
  response.crashes = reader.u64();
  response.cacheHits = reader.u64();
  const std::uint32_t count = reader.u32();
  response.programs.reserve(count);
  for (std::uint32_t k = 0; k < count; ++k)
    response.programs.push_back(reader.str());
  reader.expectEnd();
  return response;
}

// --- Shard request / response -------------------------------------------

std::string encodeShardRequest(const ShardRequest& request) {
  ipc::MessageWriter writer;
  writer.u32(static_cast<std::uint32_t>(MessageType::kShardRequest));
  putSpec(writer, request.spec);
  writer.u64(request.lo);
  writer.u64(request.hi);
  writer.i64(request.deadlineNs);
  return writer.take();
}

ShardRequest decodeShardRequest(const std::string& payload) {
  ipc::MessageReader reader(payload);
  expectType(reader, MessageType::kShardRequest);
  ShardRequest request;
  request.spec = getSpec(reader);
  request.lo = reader.u64();
  request.hi = reader.u64();
  request.deadlineNs = reader.i64();
  reader.expectEnd();
  return request;
}

std::string encodeShardResponse(const ShardResponse& response) {
  ipc::MessageWriter writer;
  writer.u32(static_cast<std::uint32_t>(MessageType::kShardResponse));
  writer.u32(statusToWire(response.status));
  writer.str(response.error);
  writer.u32(static_cast<std::uint32_t>(response.programs.size()));
  for (const auto& program : response.programs) writer.str(program);
  return writer.take();
}

ShardResponse decodeShardResponse(const std::string& payload) {
  ipc::MessageReader reader(payload);
  expectType(reader, MessageType::kShardResponse);
  ShardResponse response;
  response.status = statusFromWire(reader.u32());
  response.error = reader.str();
  const std::uint32_t count = reader.u32();
  response.programs.reserve(count);
  for (std::uint32_t k = 0; k < count; ++k)
    response.programs.push_back(reader.str());
  reader.expectEnd();
  return response;
}

// --- Health probe --------------------------------------------------------

std::string encodeHealthRequest() {
  ipc::MessageWriter writer;
  writer.u32(static_cast<std::uint32_t>(MessageType::kHealthRequest));
  return writer.take();
}

std::string encodeHealthResponse(const HealthResponse& response) {
  ipc::MessageWriter writer;
  writer.u32(static_cast<std::uint32_t>(MessageType::kHealthResponse));
  writer.u32(response.healthy ? 1 : 0);
  writer.u32(static_cast<std::uint32_t>(response.workersAlive));
  writer.u32(static_cast<std::uint32_t>(response.workersConfigured));
  writer.u64(response.queueDepth);
  writer.u64(response.crashes);
  writer.u64(response.retries);
  writer.u64(response.shed);
  return writer.take();
}

HealthResponse decodeHealthResponse(const std::string& payload) {
  ipc::MessageReader reader(payload);
  expectType(reader, MessageType::kHealthResponse);
  HealthResponse response;
  response.healthy = reader.u32() != 0;
  response.workersAlive = static_cast<int>(reader.u32());
  response.workersConfigured = static_cast<int>(reader.u32());
  response.queueDepth = reader.u64();
  response.crashes = reader.u64();
  response.retries = reader.u64();
  response.shed = reader.u64();
  reader.expectEnd();
  return response;
}

// --- Worker warm-up -------------------------------------------------------

std::string encodeWarmupRequest() {
  ipc::MessageWriter writer;
  writer.u32(static_cast<std::uint32_t>(MessageType::kWarmupRequest));
  return writer.take();
}

std::string encodeWarmupResponse() {
  ipc::MessageWriter writer;
  writer.u32(static_cast<std::uint32_t>(MessageType::kWarmupResponse));
  return writer.take();
}

void decodeWarmupResponse(const std::string& payload) {
  ipc::MessageReader reader(payload);
  expectType(reader, MessageType::kWarmupResponse);
  reader.expectEnd();
}

// --- Session streaming ----------------------------------------------------

const char* toString(SessionStatus status) {
  switch (status) {
    case SessionStatus::kOk: return "OK";
    case SessionStatus::kAccepted: return "ACCEPTED";
    case SessionStatus::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case SessionStatus::kDraining: return "DRAINING";
    case SessionStatus::kNotFound: return "NOT_FOUND";
    case SessionStatus::kBadSequence: return "BAD_SEQUENCE";
    case SessionStatus::kFailed: return "FAILED";
  }
  return "FAILED";
}

namespace {

SessionStatus sessionStatusFromWire(std::uint32_t value) {
  if (value > static_cast<std::uint32_t>(SessionStatus::kFailed))
    throw ipc::IpcError("unknown session status code " +
                        std::to_string(value));
  return static_cast<SessionStatus>(value);
}

}  // namespace

std::string encodeSessionOpenRequest(const SessionOpenRequest& request) {
  ipc::MessageWriter writer;
  writer.u32(static_cast<std::uint32_t>(MessageType::kSessionOpenRequest));
  writer.str(request.tenant);
  writer.str(request.name);
  writer.u32(request.priority);
  writer.u32(request.weight);
  writer.str(request.planner);
  writer.u32(static_cast<std::uint32_t>(request.stateCount));
  writer.u32(static_cast<std::uint32_t>(request.inputCount));
  writer.u32(static_cast<std::uint32_t>(request.outputCount));
  writer.u64(request.seed);
  writer.u32(request.resume ? 1 : 0);
  return writer.take();
}

SessionOpenRequest decodeSessionOpenRequest(const std::string& payload) {
  ipc::MessageReader reader(payload);
  expectType(reader, MessageType::kSessionOpenRequest);
  SessionOpenRequest request;
  request.tenant = reader.str();
  request.name = reader.str();
  request.priority = reader.u32();
  request.weight = reader.u32();
  request.planner = reader.str();
  request.stateCount = static_cast<int>(reader.u32());
  request.inputCount = static_cast<int>(reader.u32());
  request.outputCount = static_cast<int>(reader.u32());
  request.seed = reader.u64();
  request.resume = reader.u32() != 0;
  reader.expectEnd();
  return request;
}

std::string encodeSessionOpenResponse(const SessionOpenResponse& response) {
  ipc::MessageWriter writer;
  writer.u32(static_cast<std::uint32_t>(MessageType::kSessionOpenResponse));
  writer.u32(static_cast<std::uint32_t>(response.status));
  writer.str(response.error);
  writer.u64(response.lastApplied);
  writer.i64(response.retryAfterMs);
  return writer.take();
}

SessionOpenResponse decodeSessionOpenResponse(const std::string& payload) {
  ipc::MessageReader reader(payload);
  expectType(reader, MessageType::kSessionOpenResponse);
  SessionOpenResponse response;
  response.status = sessionStatusFromWire(reader.u32());
  response.error = reader.str();
  response.lastApplied = reader.u64();
  response.retryAfterMs = reader.i64();
  reader.expectEnd();
  return response;
}

std::string encodeSessionMutateRequest(const SessionMutateRequest& request) {
  ipc::MessageWriter writer;
  writer.u32(static_cast<std::uint32_t>(MessageType::kSessionMutateRequest));
  writer.str(request.tenant);
  writer.str(request.name);
  writer.u64(request.seq);
  writer.u32(request.deltaCount);
  writer.u32(request.newStateCount);
  writer.u64(request.mutationSeed);
  writer.u32(request.defer ? 1 : 0);
  writer.u64(request.ackSeq);
  return writer.take();
}

SessionMutateRequest decodeSessionMutateRequest(const std::string& payload) {
  ipc::MessageReader reader(payload);
  expectType(reader, MessageType::kSessionMutateRequest);
  SessionMutateRequest request;
  request.tenant = reader.str();
  request.name = reader.str();
  request.seq = reader.u64();
  request.deltaCount = reader.u32();
  request.newStateCount = reader.u32();
  request.mutationSeed = reader.u64();
  request.defer = reader.u32() != 0;
  request.ackSeq = reader.u64();
  reader.expectEnd();
  return request;
}

std::string encodeSessionMutateResponse(
    const SessionMutateResponse& response) {
  ipc::MessageWriter writer;
  writer.u32(static_cast<std::uint32_t>(MessageType::kSessionMutateResponse));
  writer.u32(static_cast<std::uint32_t>(response.status));
  writer.str(response.error);
  writer.u64(response.seq);
  writer.str(response.program);
  writer.u64(response.compactedFrom);
  writer.u32(response.deltasPlanned);
  writer.u32(response.deltasRaw);
  writer.i64(response.retryAfterMs);
  return writer.take();
}

SessionMutateResponse decodeSessionMutateResponse(
    const std::string& payload) {
  ipc::MessageReader reader(payload);
  expectType(reader, MessageType::kSessionMutateResponse);
  SessionMutateResponse response;
  response.status = sessionStatusFromWire(reader.u32());
  response.error = reader.str();
  response.seq = reader.u64();
  response.program = reader.str();
  response.compactedFrom = reader.u64();
  response.deltasPlanned = reader.u32();
  response.deltasRaw = reader.u32();
  response.retryAfterMs = reader.i64();
  reader.expectEnd();
  return response;
}

std::string encodeSessionReplayRequest(const SessionReplayRequest& request) {
  ipc::MessageWriter writer;
  writer.u32(static_cast<std::uint32_t>(MessageType::kSessionReplayRequest));
  writer.str(request.tenant);
  writer.str(request.name);
  writer.u64(request.fromSeq);
  writer.u64(request.toSeq);
  return writer.take();
}

SessionReplayRequest decodeSessionReplayRequest(const std::string& payload) {
  ipc::MessageReader reader(payload);
  expectType(reader, MessageType::kSessionReplayRequest);
  SessionReplayRequest request;
  request.tenant = reader.str();
  request.name = reader.str();
  request.fromSeq = reader.u64();
  request.toSeq = reader.u64();
  reader.expectEnd();
  return request;
}

std::string encodeSessionReplayResponse(
    const SessionReplayResponse& response) {
  ipc::MessageWriter writer;
  writer.u32(static_cast<std::uint32_t>(MessageType::kSessionReplayResponse));
  writer.u32(static_cast<std::uint32_t>(response.status));
  writer.str(response.error);
  writer.u32(static_cast<std::uint32_t>(response.entries.size()));
  for (const auto& entry : response.entries) {
    writer.u64(entry.seq);
    writer.str(entry.program);
  }
  return writer.take();
}

SessionReplayResponse decodeSessionReplayResponse(
    const std::string& payload) {
  ipc::MessageReader reader(payload);
  expectType(reader, MessageType::kSessionReplayResponse);
  SessionReplayResponse response;
  response.status = sessionStatusFromWire(reader.u32());
  response.error = reader.str();
  const std::uint32_t count = reader.u32();
  response.entries.reserve(count);
  for (std::uint32_t k = 0; k < count; ++k) {
    SessionReplayResponse::Entry entry;
    entry.seq = reader.u64();
    entry.program = reader.str();
    response.entries.push_back(std::move(entry));
  }
  reader.expectEnd();
  return response;
}

std::string encodeSessionCloseRequest(const SessionCloseRequest& request) {
  ipc::MessageWriter writer;
  writer.u32(static_cast<std::uint32_t>(MessageType::kSessionCloseRequest));
  writer.str(request.tenant);
  writer.str(request.name);
  return writer.take();
}

SessionCloseRequest decodeSessionCloseRequest(const std::string& payload) {
  ipc::MessageReader reader(payload);
  expectType(reader, MessageType::kSessionCloseRequest);
  SessionCloseRequest request;
  request.tenant = reader.str();
  request.name = reader.str();
  reader.expectEnd();
  return request;
}

std::string encodeSessionCloseResponse(const SessionCloseResponse& response) {
  ipc::MessageWriter writer;
  writer.u32(static_cast<std::uint32_t>(MessageType::kSessionCloseResponse));
  writer.u32(static_cast<std::uint32_t>(response.status));
  writer.str(response.error);
  writer.u64(response.mutationsApplied);
  writer.u64(response.plans);
  return writer.take();
}

SessionCloseResponse decodeSessionCloseResponse(const std::string& payload) {
  ipc::MessageReader reader(payload);
  expectType(reader, MessageType::kSessionCloseResponse);
  SessionCloseResponse response;
  response.status = sessionStatusFromWire(reader.u32());
  response.error = reader.str();
  response.mutationsApplied = reader.u64();
  response.plans = reader.u64();
  reader.expectEnd();
  return response;
}

MessageType peekType(const std::string& payload) {
  ipc::MessageReader reader(payload);
  const std::uint32_t tag = reader.u32();
  switch (tag) {
    case 1: return MessageType::kPlanRequest;
    case 2: return MessageType::kPlanResponse;
    case 3: return MessageType::kHealthRequest;
    case 4: return MessageType::kHealthResponse;
    case 5: return MessageType::kShardRequest;
    case 6: return MessageType::kShardResponse;
    case 7: return MessageType::kWarmupRequest;
    case 8: return MessageType::kWarmupResponse;
    case 9: return MessageType::kSessionOpenRequest;
    case 10: return MessageType::kSessionOpenResponse;
    case 11: return MessageType::kSessionMutateRequest;
    case 12: return MessageType::kSessionMutateResponse;
    case 13: return MessageType::kSessionReplayRequest;
    case 14: return MessageType::kSessionReplayResponse;
    case 15: return MessageType::kSessionCloseRequest;
    case 16: return MessageType::kSessionCloseResponse;
  }
  throw ipc::IpcError("unknown message type " + std::to_string(tag));
}

}  // namespace rfsm::service
