#include "service/protocol.hpp"

#include <bit>

#include "core/jsr.hpp"
#include "core/program.hpp"
#include "gen/generator.hpp"
#include "gen/mutator.hpp"
#include "service/plan_cache.hpp"
#include "util/cache.hpp"
#include "util/ipc.hpp"
#include "util/metrics.hpp"
#include "util/thread_pool.hpp"

namespace rfsm::service {
namespace {

void putSpec(ipc::MessageWriter& writer, const BatchSpec& spec) {
  writer.u32(static_cast<std::uint32_t>(spec.stateCount));
  writer.u32(static_cast<std::uint32_t>(spec.inputCount));
  writer.u32(static_cast<std::uint32_t>(spec.outputCount));
  writer.u32(static_cast<std::uint32_t>(spec.deltaCount));
  writer.u32(static_cast<std::uint32_t>(spec.newStateCount));
  writer.u64(spec.instanceCount);
  writer.u64(spec.seed);
  writer.str(spec.planner);
  writer.u32(static_cast<std::uint32_t>(spec.eaPopulation));
  writer.u32(static_cast<std::uint32_t>(spec.eaGenerations));
}

BatchSpec getSpec(ipc::MessageReader& reader) {
  BatchSpec spec;
  spec.stateCount = static_cast<int>(reader.u32());
  spec.inputCount = static_cast<int>(reader.u32());
  spec.outputCount = static_cast<int>(reader.u32());
  spec.deltaCount = static_cast<int>(reader.u32());
  spec.newStateCount = static_cast<int>(reader.u32());
  spec.instanceCount = reader.u64();
  spec.seed = reader.u64();
  spec.planner = reader.str();
  spec.eaPopulation = static_cast<int>(reader.u32());
  spec.eaGenerations = static_cast<int>(reader.u32());
  return spec;
}

void putContext(ipc::MessageWriter& writer,
                const trace::TraceContext& context) {
  writer.u64(context.traceIdHi);
  writer.u64(context.traceIdLo);
  writer.u64(context.spanId);
  writer.u32(context.sampled ? 1 : 0);
}

trace::TraceContext getContext(ipc::MessageReader& reader) {
  trace::TraceContext context;
  context.traceIdHi = reader.u64();
  context.traceIdLo = reader.u64();
  context.spanId = reader.u64();
  context.sampled = reader.u32() != 0;
  return context;
}

/// Doubles ride as IEEE-754 bit patterns — exact round-trip, no locale or
/// precision games.
void putF64(ipc::MessageWriter& writer, double value) {
  writer.u64(std::bit_cast<std::uint64_t>(value));
}

double getF64(ipc::MessageReader& reader) {
  return std::bit_cast<double>(reader.u64());
}

void expectType(ipc::MessageReader& reader, MessageType expected) {
  const auto tag = reader.u32();
  if (tag != static_cast<std::uint32_t>(expected))
    throw ipc::IpcError("unexpected message type " + std::to_string(tag) +
                        " (expected " +
                        std::to_string(static_cast<std::uint32_t>(expected)) +
                        ")");
}

WorkResult::Status statusFromWire(std::uint32_t value) {
  switch (value) {
    case 0: return WorkResult::Status::kOk;
    case 1: return WorkResult::Status::kFailed;
    case 2: return WorkResult::Status::kDeadlineExceeded;
    case 3: return WorkResult::Status::kShed;
    case 4: return WorkResult::Status::kUnavailable;
  }
  throw ipc::IpcError("unknown status code " + std::to_string(value));
}

std::uint32_t statusToWire(WorkResult::Status status) {
  switch (status) {
    case WorkResult::Status::kOk: return 0;
    case WorkResult::Status::kFailed: return 1;
    case WorkResult::Status::kDeadlineExceeded: return 2;
    case WorkResult::Status::kShed: return 3;
    case WorkResult::Status::kUnavailable: return 4;
  }
  return 1;
}

// --- Instance cache ------------------------------------------------------
//
// makeInstance is deterministic in (spec, index), so its results are
// cacheable forever.  A long-lived worker serving retried, hedged, or
// quorum-duplicated shards of the same batch regenerates nothing; SLRU +
// ghost admission (util/cache.hpp) at kInstanceCacheCapacity bounds the
// footprint without letting one-shot sweeps flush the hot working set.

SlruCache<MigrationContext>& instanceCache() {
  static auto* cache =  // immortal
      new SlruCache<MigrationContext>(kInstanceCacheCapacity);
  return *cache;
}

std::string instanceKey(const BatchSpec& spec, std::uint64_t index) {
  // instanceCount is deliberately absent: instance k's bytes depend only on
  // the generation dimensions and seed, so shards of differently-sized
  // sweeps over the same spec share entries.  The planner and EA fields are
  // equally absent — and must stay so — because generation draws only from
  // the gen substream; the regression test InstanceCacheKeySeparation pins
  // every field that *does* matter.
  return std::to_string(spec.stateCount) + "," +
         std::to_string(spec.inputCount) + "," +
         std::to_string(spec.outputCount) + "," +
         std::to_string(spec.deltaCount) + "," +
         std::to_string(spec.newStateCount) + "," +
         std::to_string(spec.seed) + "#" + std::to_string(index);
}

MigrationContext cachedInstance(const BatchSpec& spec, std::uint64_t index) {
  static metrics::Counter& hits =
      metrics::counter(metrics::kServiceWorkerCacheHits);
  static metrics::Counter& misses =
      metrics::counter(metrics::kServiceWorkerCacheMisses);
  SlruCache<MigrationContext>& cache = instanceCache();
  const std::string key = instanceKey(spec, index);
  if (auto hit = cache.get(key)) {
    hits.add();
    return *std::move(hit);
  }
  misses.add();
  // Generate outside the cache lock (the expensive part); a racing twin
  // doing the same work inserts an identical value, so last-writer-wins is
  // harmless.
  MigrationContext instance = makeInstance(spec, index);
  cache.put(key, instance);
  return instance;
}

}  // namespace

void clearInstanceCache() { instanceCache().clear(); }

MigrationContext makeInstance(const BatchSpec& spec, std::uint64_t index) {
  Rng gen = Rng(spec.seed).substream(kGenStreamBase + index);
  RandomMachineSpec sourceSpec;
  sourceSpec.stateCount = spec.stateCount;
  sourceSpec.inputCount = spec.inputCount;
  sourceSpec.outputCount = spec.outputCount;
  sourceSpec.name = "batch" + std::to_string(index);
  const Machine source = randomMachine(sourceSpec, gen);
  MutationSpec mutation;
  mutation.deltaCount = spec.deltaCount;
  mutation.newStateCount = spec.newStateCount;
  mutation.name = sourceSpec.name + "'";
  const Machine target = mutateMachine(source, mutation, gen);
  return MigrationContext(source, target);
}

BatchPlanFn plannerFn(const std::string& name) {
  if (name == "jsr") {
    return [](const MigrationContext& context, Rng&) {
      return planJsr(context);
    };
  }
  if (name == "greedy") {
    return [](const MigrationContext& context, Rng&) {
      return planGreedy(context);
    };
  }
  if (name == "ea") {
    return [](const MigrationContext& context, Rng& rng) {
      return planEvolutionary(context, EvolutionConfig{}, rng).program;
    };
  }
  throw Error("unknown batch planner '" + name + "' (jsr|greedy|ea)");
}

BatchPlanFn plannerFn(const BatchSpec& spec) {
  if (spec.planner == "ea") {
    EvolutionConfig config;
    config.populationSize = spec.eaPopulation;
    config.generations = spec.eaGenerations;
    return [config](const MigrationContext& context, Rng& rng) {
      return planEvolutionary(context, config, rng).program;
    };
  }
  return plannerFn(spec.planner);
}

namespace {

/// The pre-split planRange body: always generates and plans, never touches
/// the plan-result cache.  Quorum verification reaches it via kBypass.
std::vector<std::string> planRangeUncached(const BatchSpec& spec,
                                           std::uint64_t lo, std::uint64_t hi,
                                           const CancelToken* cancel,
                                           int jobs) {
  std::vector<MigrationContext> instances;
  instances.reserve(static_cast<std::size_t>(hi - lo));
  for (std::uint64_t k = lo; k < hi; ++k) {
    pollCancel(cancel, "service.generate");
    instances.push_back(cachedInstance(spec, k));
  }

  BatchOptions options;
  options.jobs = jobs;
  options.seed = spec.seed;
  options.substreamBase = lo;  // the bit-identical-shard contract
  options.cancel = cancel;
  const std::vector<ReconfigurationProgram> programs =
      planAll(instances, plannerFn(spec), options);

  std::vector<std::string> texts;
  texts.reserve(programs.size());
  for (std::size_t k = 0; k < programs.size(); ++k)
    texts.push_back(programToText(instances[k], programs[k]));
  return texts;
}

}  // namespace

std::vector<std::string> planRange(const BatchSpec& spec, std::uint64_t lo,
                                   std::uint64_t hi, const CancelToken* cancel,
                                   int jobs, PlanCacheMode mode) {
  RFSM_CHECK(lo <= hi && hi <= spec.instanceCount,
             "shard range out of bounds");
  if (mode == PlanCacheMode::kBypass || !planCacheEnabled())
    return planRangeUncached(spec, lo, hi, cancel, jobs);

  // Serve what the plan cache holds, recompute the gaps as contiguous runs
  // (each run plans with substreamBase = its own absolute lo, so the bytes
  // match the unsharded computation no matter how hits fragment the range).
  const std::size_t count = static_cast<std::size_t>(hi - lo);
  std::vector<std::string> texts(count);
  std::vector<bool> cached(count, false);
  for (std::uint64_t k = lo; k < hi; ++k) {
    pollCancel(cancel, "service.generate");
    if (auto hit = planCacheLookup(planCacheKey(spec, k))) {
      texts[static_cast<std::size_t>(k - lo)] = *std::move(hit);
      cached[static_cast<std::size_t>(k - lo)] = true;
    }
  }
  std::uint64_t runLo = lo;
  while (runLo < hi) {
    if (cached[static_cast<std::size_t>(runLo - lo)]) {
      ++runLo;
      continue;
    }
    std::uint64_t runHi = runLo + 1;
    while (runHi < hi && !cached[static_cast<std::size_t>(runHi - lo)])
      ++runHi;
    std::vector<std::string> fresh =
        planRangeUncached(spec, runLo, runHi, cancel, jobs);
    for (std::uint64_t k = runLo; k < runHi; ++k) {
      planCacheStore(planCacheKey(spec, k),
                     fresh[static_cast<std::size_t>(k - runLo)]);
      texts[static_cast<std::size_t>(k - lo)] =
          std::move(fresh[static_cast<std::size_t>(k - runLo)]);
    }
    runLo = runHi;
  }
  return texts;
}

// --- Plan request / response --------------------------------------------

std::string encodePlanRequest(const PlanRequest& request) {
  ipc::MessageWriter writer;
  writer.u32(static_cast<std::uint32_t>(MessageType::kPlanRequest));
  putSpec(writer, request.spec);
  writer.i64(request.deadlineMs);
  writer.u64(request.requestId);
  writer.u64(request.lo);
  writer.u64(request.hi);
  putContext(writer, request.context);
  return writer.take();
}

PlanRequest decodePlanRequest(const std::string& payload) {
  ipc::MessageReader reader(payload);
  expectType(reader, MessageType::kPlanRequest);
  PlanRequest request;
  request.spec = getSpec(reader);
  request.deadlineMs = reader.i64();
  request.requestId = reader.u64();
  request.lo = reader.u64();
  request.hi = reader.u64();
  request.context = getContext(reader);
  reader.expectEnd();
  return request;
}

std::string encodePlanResponse(const PlanResponse& response) {
  ipc::MessageWriter writer;
  writer.u32(static_cast<std::uint32_t>(MessageType::kPlanResponse));
  writer.u32(statusToWire(response.status));
  writer.str(response.error);
  writer.u64(response.retries);
  writer.u64(response.crashes);
  writer.u64(response.cacheHits);
  writer.u32(static_cast<std::uint32_t>(response.programs.size()));
  for (const auto& program : response.programs) writer.str(program);
  return writer.take();
}

PlanResponse decodePlanResponse(const std::string& payload) {
  ipc::MessageReader reader(payload);
  expectType(reader, MessageType::kPlanResponse);
  PlanResponse response;
  response.status = statusFromWire(reader.u32());
  response.error = reader.str();
  response.retries = reader.u64();
  response.crashes = reader.u64();
  response.cacheHits = reader.u64();
  const std::uint32_t count = reader.u32();
  response.programs.reserve(count);
  for (std::uint32_t k = 0; k < count; ++k)
    response.programs.push_back(reader.str());
  reader.expectEnd();
  return response;
}

// --- Shard request / response -------------------------------------------

std::string encodeShardRequest(const ShardRequest& request) {
  ipc::MessageWriter writer;
  writer.u32(static_cast<std::uint32_t>(MessageType::kShardRequest));
  putSpec(writer, request.spec);
  writer.u64(request.lo);
  writer.u64(request.hi);
  writer.i64(request.deadlineNs);
  putContext(writer, request.context);
  return writer.take();
}

ShardRequest decodeShardRequest(const std::string& payload) {
  ipc::MessageReader reader(payload);
  expectType(reader, MessageType::kShardRequest);
  ShardRequest request;
  request.spec = getSpec(reader);
  request.lo = reader.u64();
  request.hi = reader.u64();
  request.deadlineNs = reader.i64();
  request.context = getContext(reader);
  reader.expectEnd();
  return request;
}

std::string encodeShardResponse(const ShardResponse& response) {
  ipc::MessageWriter writer;
  writer.u32(static_cast<std::uint32_t>(MessageType::kShardResponse));
  writer.u32(statusToWire(response.status));
  writer.str(response.error);
  writer.u32(static_cast<std::uint32_t>(response.programs.size()));
  for (const auto& program : response.programs) writer.str(program);
  return writer.take();
}

ShardResponse decodeShardResponse(const std::string& payload) {
  ipc::MessageReader reader(payload);
  expectType(reader, MessageType::kShardResponse);
  ShardResponse response;
  response.status = statusFromWire(reader.u32());
  response.error = reader.str();
  const std::uint32_t count = reader.u32();
  response.programs.reserve(count);
  for (std::uint32_t k = 0; k < count; ++k)
    response.programs.push_back(reader.str());
  reader.expectEnd();
  return response;
}

// --- Health probe --------------------------------------------------------

std::string encodeHealthRequest() {
  ipc::MessageWriter writer;
  writer.u32(static_cast<std::uint32_t>(MessageType::kHealthRequest));
  return writer.take();
}

std::string encodeHealthResponse(const HealthResponse& response) {
  ipc::MessageWriter writer;
  writer.u32(static_cast<std::uint32_t>(MessageType::kHealthResponse));
  writer.u32(response.healthy ? 1 : 0);
  writer.u32(static_cast<std::uint32_t>(response.workersAlive));
  writer.u32(static_cast<std::uint32_t>(response.workersConfigured));
  writer.u64(response.queueDepth);
  writer.u64(response.crashes);
  writer.u64(response.retries);
  writer.u64(response.shed);
  return writer.take();
}

HealthResponse decodeHealthResponse(const std::string& payload) {
  ipc::MessageReader reader(payload);
  expectType(reader, MessageType::kHealthResponse);
  HealthResponse response;
  response.healthy = reader.u32() != 0;
  response.workersAlive = static_cast<int>(reader.u32());
  response.workersConfigured = static_cast<int>(reader.u32());
  response.queueDepth = reader.u64();
  response.crashes = reader.u64();
  response.retries = reader.u64();
  response.shed = reader.u64();
  reader.expectEnd();
  return response;
}

// --- Worker warm-up -------------------------------------------------------

std::string encodeWarmupRequest() {
  ipc::MessageWriter writer;
  writer.u32(static_cast<std::uint32_t>(MessageType::kWarmupRequest));
  return writer.take();
}

std::string encodeWarmupResponse() {
  ipc::MessageWriter writer;
  writer.u32(static_cast<std::uint32_t>(MessageType::kWarmupResponse));
  return writer.take();
}

void decodeWarmupResponse(const std::string& payload) {
  ipc::MessageReader reader(payload);
  expectType(reader, MessageType::kWarmupResponse);
  reader.expectEnd();
}

// --- Live stats plane -----------------------------------------------------

namespace {

void putSnapshot(ipc::MessageWriter& writer,
                 const metrics::Snapshot& snapshot) {
  writer.u32(static_cast<std::uint32_t>(snapshot.counters.size()));
  for (const auto& c : snapshot.counters) {
    writer.str(c.name);
    writer.u64(c.value);
  }
  writer.u32(static_cast<std::uint32_t>(snapshot.gauges.size()));
  for (const auto& g : snapshot.gauges) {
    writer.str(g.name);
    writer.i64(g.value);
  }
  writer.u32(static_cast<std::uint32_t>(snapshot.timers.size()));
  for (const auto& t : snapshot.timers) {
    writer.str(t.name);
    writer.u64(t.count);
    putF64(writer, t.totalMs);
  }
  writer.u32(static_cast<std::uint32_t>(snapshot.histograms.size()));
  for (const auto& h : snapshot.histograms) {
    writer.str(h.name);
    writer.u64(h.count);
    putF64(writer, h.p50Ms);
    putF64(writer, h.p90Ms);
    putF64(writer, h.p99Ms);
    putF64(writer, h.maxMs);
  }
  writer.u32(static_cast<std::uint32_t>(snapshot.rolling.size()));
  for (const auto& w : snapshot.rolling) {
    writer.str(w.name);
    writer.u64(w.count);
    putF64(writer, w.p50Ms);
    putF64(writer, w.p90Ms);
    putF64(writer, w.p99Ms);
    putF64(writer, w.maxMs);
    writer.i64(w.windowMs);
  }
}

metrics::Snapshot getSnapshot(ipc::MessageReader& reader) {
  metrics::Snapshot snapshot;
  std::uint32_t count = reader.u32();
  snapshot.counters.reserve(count);
  for (std::uint32_t k = 0; k < count; ++k) {
    metrics::CounterSample c;
    c.name = reader.str();
    c.value = reader.u64();
    snapshot.counters.push_back(std::move(c));
  }
  count = reader.u32();
  snapshot.gauges.reserve(count);
  for (std::uint32_t k = 0; k < count; ++k) {
    metrics::GaugeSample g;
    g.name = reader.str();
    g.value = reader.i64();
    snapshot.gauges.push_back(std::move(g));
  }
  count = reader.u32();
  snapshot.timers.reserve(count);
  for (std::uint32_t k = 0; k < count; ++k) {
    metrics::TimerSample t;
    t.name = reader.str();
    t.count = reader.u64();
    t.totalMs = getF64(reader);
    snapshot.timers.push_back(std::move(t));
  }
  count = reader.u32();
  snapshot.histograms.reserve(count);
  for (std::uint32_t k = 0; k < count; ++k) {
    metrics::HistogramSample h;
    h.name = reader.str();
    h.count = reader.u64();
    h.p50Ms = getF64(reader);
    h.p90Ms = getF64(reader);
    h.p99Ms = getF64(reader);
    h.maxMs = getF64(reader);
    snapshot.histograms.push_back(std::move(h));
  }
  count = reader.u32();
  snapshot.rolling.reserve(count);
  for (std::uint32_t k = 0; k < count; ++k) {
    metrics::RollingSample w;
    w.name = reader.str();
    w.count = reader.u64();
    w.p50Ms = getF64(reader);
    w.p90Ms = getF64(reader);
    w.p99Ms = getF64(reader);
    w.maxMs = getF64(reader);
    w.windowMs = reader.i64();
    snapshot.rolling.push_back(std::move(w));
  }
  return snapshot;
}

}  // namespace

std::string encodeStatsRequest() {
  ipc::MessageWriter writer;
  writer.u32(static_cast<std::uint32_t>(MessageType::kStatsRequest));
  return writer.take();
}

void decodeStatsRequest(const std::string& payload) {
  ipc::MessageReader reader(payload);
  expectType(reader, MessageType::kStatsRequest);
  reader.expectEnd();
}

std::string encodeStatsResponse(const StatsResponse& response) {
  ipc::MessageWriter writer;
  writer.u32(static_cast<std::uint32_t>(MessageType::kStatsResponse));
  writer.i64(response.pid);
  writer.i64(response.uptimeMs);
  writer.u32(response.draining ? 1 : 0);
  writer.u32(response.workers.healthy ? 1 : 0);
  writer.u32(static_cast<std::uint32_t>(response.workers.workersAlive));
  writer.u32(static_cast<std::uint32_t>(response.workers.workersConfigured));
  writer.u64(response.workers.queueDepth);
  writer.u64(response.workers.crashes);
  writer.u64(response.workers.retries);
  writer.u64(response.workers.shed);
  writer.u32(response.planCache.enabled ? 1 : 0);
  writer.u64(response.planCache.size);
  writer.u64(response.planCache.capacity);
  writer.u32(static_cast<std::uint32_t>(response.breakers.size()));
  for (const auto& breaker : response.breakers) {
    writer.str(breaker.name);
    writer.str(breaker.state);
    writer.u64(breaker.trips);
  }
  writer.u32(static_cast<std::uint32_t>(response.sessions.size()));
  for (const auto& session : response.sessions) {
    writer.str(session.tenant);
    writer.str(session.name);
    writer.u32(session.priority);
    putF64(writer, session.weight);
    putF64(writer, session.vtime);
    putF64(writer, session.tokensRemaining);
    writer.u64(session.queued);
    writer.u64(session.applied);
    writer.i64(session.walAgeMs);
    writer.i64(session.snapshotAgeMs);
    writer.str(session.role);
    writer.u64(session.epoch);
  }
  writer.u64(response.openSessions);
  writer.u64(response.schedulerDepth);
  putF64(writer, response.schedulerVirtualNow);
  putSnapshot(writer, response.metrics);
  return writer.take();
}

StatsResponse decodeStatsResponse(const std::string& payload) {
  ipc::MessageReader reader(payload);
  expectType(reader, MessageType::kStatsResponse);
  StatsResponse response;
  response.pid = reader.i64();
  response.uptimeMs = reader.i64();
  response.draining = reader.u32() != 0;
  response.workers.healthy = reader.u32() != 0;
  response.workers.workersAlive = static_cast<int>(reader.u32());
  response.workers.workersConfigured = static_cast<int>(reader.u32());
  response.workers.queueDepth = reader.u64();
  response.workers.crashes = reader.u64();
  response.workers.retries = reader.u64();
  response.workers.shed = reader.u64();
  response.planCache.enabled = reader.u32() != 0;
  response.planCache.size = reader.u64();
  response.planCache.capacity = reader.u64();
  std::uint32_t count = reader.u32();
  response.breakers.reserve(count);
  for (std::uint32_t k = 0; k < count; ++k) {
    StatsResponse::BreakerStats breaker;
    breaker.name = reader.str();
    breaker.state = reader.str();
    breaker.trips = reader.u64();
    response.breakers.push_back(std::move(breaker));
  }
  count = reader.u32();
  response.sessions.reserve(count);
  for (std::uint32_t k = 0; k < count; ++k) {
    StatsResponse::SessionStats session;
    session.tenant = reader.str();
    session.name = reader.str();
    session.priority = reader.u32();
    session.weight = getF64(reader);
    session.vtime = getF64(reader);
    session.tokensRemaining = getF64(reader);
    session.queued = reader.u64();
    session.applied = reader.u64();
    session.walAgeMs = reader.i64();
    session.snapshotAgeMs = reader.i64();
    session.role = reader.str();
    session.epoch = reader.u64();
    response.sessions.push_back(std::move(session));
  }
  response.openSessions = reader.u64();
  response.schedulerDepth = reader.u64();
  response.schedulerVirtualNow = getF64(reader);
  response.metrics = getSnapshot(reader);
  reader.expectEnd();
  return response;
}

// --- Trace dump -----------------------------------------------------------

std::string encodeTraceDumpRequest(const TraceDumpRequest& request) {
  ipc::MessageWriter writer;
  writer.u32(static_cast<std::uint32_t>(MessageType::kTraceDumpRequest));
  writer.i64(request.clientSteadyNs);
  return writer.take();
}

TraceDumpRequest decodeTraceDumpRequest(const std::string& payload) {
  ipc::MessageReader reader(payload);
  expectType(reader, MessageType::kTraceDumpRequest);
  TraceDumpRequest request;
  request.clientSteadyNs = reader.i64();
  reader.expectEnd();
  return request;
}

std::string encodeTraceDumpResponse(const TraceDumpResponse& response) {
  ipc::MessageWriter writer;
  writer.u32(static_cast<std::uint32_t>(MessageType::kTraceDumpResponse));
  writer.i64(response.serverSteadyNs);
  writer.i64(response.clientSteadyNs);
  writer.str(response.traceJson);
  return writer.take();
}

TraceDumpResponse decodeTraceDumpResponse(const std::string& payload) {
  ipc::MessageReader reader(payload);
  expectType(reader, MessageType::kTraceDumpResponse);
  TraceDumpResponse response;
  response.serverSteadyNs = reader.i64();
  response.clientSteadyNs = reader.i64();
  response.traceJson = reader.str();
  reader.expectEnd();
  return response;
}

// --- Session streaming ----------------------------------------------------

const char* toString(SessionStatus status) {
  switch (status) {
    case SessionStatus::kOk: return "OK";
    case SessionStatus::kAccepted: return "ACCEPTED";
    case SessionStatus::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case SessionStatus::kDraining: return "DRAINING";
    case SessionStatus::kNotFound: return "NOT_FOUND";
    case SessionStatus::kBadSequence: return "BAD_SEQUENCE";
    case SessionStatus::kFailed: return "FAILED";
    case SessionStatus::kStaleEpoch: return "STALE_EPOCH";
  }
  return "FAILED";
}

namespace {

SessionStatus sessionStatusFromWire(std::uint32_t value) {
  if (value > static_cast<std::uint32_t>(SessionStatus::kStaleEpoch))
    throw ipc::IpcError("unknown session status code " +
                        std::to_string(value));
  return static_cast<SessionStatus>(value);
}

}  // namespace

std::string encodeSessionOpenRequest(const SessionOpenRequest& request) {
  ipc::MessageWriter writer;
  writer.u32(static_cast<std::uint32_t>(MessageType::kSessionOpenRequest));
  writer.str(request.tenant);
  writer.str(request.name);
  writer.u32(request.priority);
  writer.u32(request.weight);
  writer.str(request.planner);
  writer.u32(static_cast<std::uint32_t>(request.stateCount));
  writer.u32(static_cast<std::uint32_t>(request.inputCount));
  writer.u32(static_cast<std::uint32_t>(request.outputCount));
  writer.u64(request.seed);
  writer.u32(request.resume ? 1 : 0);
  return writer.take();
}

SessionOpenRequest decodeSessionOpenRequest(const std::string& payload) {
  ipc::MessageReader reader(payload);
  expectType(reader, MessageType::kSessionOpenRequest);
  SessionOpenRequest request;
  request.tenant = reader.str();
  request.name = reader.str();
  request.priority = reader.u32();
  request.weight = reader.u32();
  request.planner = reader.str();
  request.stateCount = static_cast<int>(reader.u32());
  request.inputCount = static_cast<int>(reader.u32());
  request.outputCount = static_cast<int>(reader.u32());
  request.seed = reader.u64();
  request.resume = reader.u32() != 0;
  reader.expectEnd();
  return request;
}

std::string encodeSessionOpenResponse(const SessionOpenResponse& response) {
  ipc::MessageWriter writer;
  writer.u32(static_cast<std::uint32_t>(MessageType::kSessionOpenResponse));
  writer.u32(static_cast<std::uint32_t>(response.status));
  writer.str(response.error);
  writer.u64(response.lastApplied);
  writer.i64(response.retryAfterMs);
  return writer.take();
}

SessionOpenResponse decodeSessionOpenResponse(const std::string& payload) {
  ipc::MessageReader reader(payload);
  expectType(reader, MessageType::kSessionOpenResponse);
  SessionOpenResponse response;
  response.status = sessionStatusFromWire(reader.u32());
  response.error = reader.str();
  response.lastApplied = reader.u64();
  response.retryAfterMs = reader.i64();
  reader.expectEnd();
  return response;
}

std::string encodeSessionMutateRequest(const SessionMutateRequest& request) {
  ipc::MessageWriter writer;
  writer.u32(static_cast<std::uint32_t>(MessageType::kSessionMutateRequest));
  writer.str(request.tenant);
  writer.str(request.name);
  writer.u64(request.seq);
  writer.u32(request.deltaCount);
  writer.u32(request.newStateCount);
  writer.u64(request.mutationSeed);
  writer.u32(request.defer ? 1 : 0);
  writer.u64(request.ackSeq);
  putContext(writer, request.context);
  return writer.take();
}

SessionMutateRequest decodeSessionMutateRequest(const std::string& payload) {
  ipc::MessageReader reader(payload);
  expectType(reader, MessageType::kSessionMutateRequest);
  SessionMutateRequest request;
  request.tenant = reader.str();
  request.name = reader.str();
  request.seq = reader.u64();
  request.deltaCount = reader.u32();
  request.newStateCount = reader.u32();
  request.mutationSeed = reader.u64();
  request.defer = reader.u32() != 0;
  request.ackSeq = reader.u64();
  request.context = getContext(reader);
  reader.expectEnd();
  return request;
}

std::string encodeSessionMutateResponse(
    const SessionMutateResponse& response) {
  ipc::MessageWriter writer;
  writer.u32(static_cast<std::uint32_t>(MessageType::kSessionMutateResponse));
  writer.u32(static_cast<std::uint32_t>(response.status));
  writer.str(response.error);
  writer.u64(response.seq);
  writer.str(response.program);
  writer.u64(response.compactedFrom);
  writer.u32(response.deltasPlanned);
  writer.u32(response.deltasRaw);
  writer.i64(response.retryAfterMs);
  return writer.take();
}

SessionMutateResponse decodeSessionMutateResponse(
    const std::string& payload) {
  ipc::MessageReader reader(payload);
  expectType(reader, MessageType::kSessionMutateResponse);
  SessionMutateResponse response;
  response.status = sessionStatusFromWire(reader.u32());
  response.error = reader.str();
  response.seq = reader.u64();
  response.program = reader.str();
  response.compactedFrom = reader.u64();
  response.deltasPlanned = reader.u32();
  response.deltasRaw = reader.u32();
  response.retryAfterMs = reader.i64();
  reader.expectEnd();
  return response;
}

std::string encodeSessionReplayRequest(const SessionReplayRequest& request) {
  ipc::MessageWriter writer;
  writer.u32(static_cast<std::uint32_t>(MessageType::kSessionReplayRequest));
  writer.str(request.tenant);
  writer.str(request.name);
  writer.u64(request.fromSeq);
  writer.u64(request.toSeq);
  return writer.take();
}

SessionReplayRequest decodeSessionReplayRequest(const std::string& payload) {
  ipc::MessageReader reader(payload);
  expectType(reader, MessageType::kSessionReplayRequest);
  SessionReplayRequest request;
  request.tenant = reader.str();
  request.name = reader.str();
  request.fromSeq = reader.u64();
  request.toSeq = reader.u64();
  reader.expectEnd();
  return request;
}

std::string encodeSessionReplayResponse(
    const SessionReplayResponse& response) {
  ipc::MessageWriter writer;
  writer.u32(static_cast<std::uint32_t>(MessageType::kSessionReplayResponse));
  writer.u32(static_cast<std::uint32_t>(response.status));
  writer.str(response.error);
  writer.u32(static_cast<std::uint32_t>(response.entries.size()));
  for (const auto& entry : response.entries) {
    writer.u64(entry.seq);
    writer.str(entry.program);
  }
  return writer.take();
}

SessionReplayResponse decodeSessionReplayResponse(
    const std::string& payload) {
  ipc::MessageReader reader(payload);
  expectType(reader, MessageType::kSessionReplayResponse);
  SessionReplayResponse response;
  response.status = sessionStatusFromWire(reader.u32());
  response.error = reader.str();
  const std::uint32_t count = reader.u32();
  response.entries.reserve(count);
  for (std::uint32_t k = 0; k < count; ++k) {
    SessionReplayResponse::Entry entry;
    entry.seq = reader.u64();
    entry.program = reader.str();
    response.entries.push_back(std::move(entry));
  }
  reader.expectEnd();
  return response;
}

std::string encodeSessionCloseRequest(const SessionCloseRequest& request) {
  ipc::MessageWriter writer;
  writer.u32(static_cast<std::uint32_t>(MessageType::kSessionCloseRequest));
  writer.str(request.tenant);
  writer.str(request.name);
  return writer.take();
}

SessionCloseRequest decodeSessionCloseRequest(const std::string& payload) {
  ipc::MessageReader reader(payload);
  expectType(reader, MessageType::kSessionCloseRequest);
  SessionCloseRequest request;
  request.tenant = reader.str();
  request.name = reader.str();
  reader.expectEnd();
  return request;
}

std::string encodeSessionCloseResponse(const SessionCloseResponse& response) {
  ipc::MessageWriter writer;
  writer.u32(static_cast<std::uint32_t>(MessageType::kSessionCloseResponse));
  writer.u32(static_cast<std::uint32_t>(response.status));
  writer.str(response.error);
  writer.u64(response.mutationsApplied);
  writer.u64(response.plans);
  return writer.take();
}

SessionCloseResponse decodeSessionCloseResponse(const std::string& payload) {
  ipc::MessageReader reader(payload);
  expectType(reader, MessageType::kSessionCloseResponse);
  SessionCloseResponse response;
  response.status = sessionStatusFromWire(reader.u32());
  response.error = reader.str();
  response.mutationsApplied = reader.u64();
  response.plans = reader.u64();
  reader.expectEnd();
  return response;
}

// --- Session replication --------------------------------------------------

std::string encodeSessionReplAppendRequest(
    const SessionReplAppendRequest& request) {
  ipc::MessageWriter writer;
  writer.u32(
      static_cast<std::uint32_t>(MessageType::kSessionReplAppendRequest));
  writer.str(request.tenant);
  writer.str(request.name);
  writer.u32(request.priority);
  writer.u32(request.weight);
  writer.str(request.planner);
  writer.u32(static_cast<std::uint32_t>(request.stateCount));
  writer.u32(static_cast<std::uint32_t>(request.inputCount));
  writer.u32(static_cast<std::uint32_t>(request.outputCount));
  writer.u64(request.seed);
  writer.u64(request.epoch);
  writer.u64(request.seq);
  writer.u32(request.deltaCount);
  writer.u32(request.newStateCount);
  writer.u64(request.mutationSeed);
  writer.u32(request.defer ? 1 : 0);
  return writer.take();
}

SessionReplAppendRequest decodeSessionReplAppendRequest(
    const std::string& payload) {
  ipc::MessageReader reader(payload);
  expectType(reader, MessageType::kSessionReplAppendRequest);
  SessionReplAppendRequest request;
  request.tenant = reader.str();
  request.name = reader.str();
  request.priority = reader.u32();
  request.weight = reader.u32();
  request.planner = reader.str();
  request.stateCount = static_cast<int>(reader.u32());
  request.inputCount = static_cast<int>(reader.u32());
  request.outputCount = static_cast<int>(reader.u32());
  request.seed = reader.u64();
  request.epoch = reader.u64();
  request.seq = reader.u64();
  request.deltaCount = reader.u32();
  request.newStateCount = reader.u32();
  request.mutationSeed = reader.u64();
  request.defer = reader.u32() != 0;
  reader.expectEnd();
  return request;
}

std::string encodeSessionReplAppendResponse(
    const SessionReplAppendResponse& response) {
  ipc::MessageWriter writer;
  writer.u32(
      static_cast<std::uint32_t>(MessageType::kSessionReplAppendResponse));
  writer.u32(static_cast<std::uint32_t>(response.status));
  writer.str(response.error);
  writer.u64(response.epoch);
  writer.u64(response.lastAccepted);
  return writer.take();
}

SessionReplAppendResponse decodeSessionReplAppendResponse(
    const std::string& payload) {
  ipc::MessageReader reader(payload);
  expectType(reader, MessageType::kSessionReplAppendResponse);
  SessionReplAppendResponse response;
  response.status = sessionStatusFromWire(reader.u32());
  response.error = reader.str();
  response.epoch = reader.u64();
  response.lastAccepted = reader.u64();
  reader.expectEnd();
  return response;
}

std::string encodeSessionReplSnapshotRequest(
    const SessionReplSnapshotRequest& request) {
  ipc::MessageWriter writer;
  writer.u32(
      static_cast<std::uint32_t>(MessageType::kSessionReplSnapshotRequest));
  writer.str(request.tenant);
  writer.str(request.name);
  writer.u64(request.epoch);
  writer.str(request.snapshot);
  return writer.take();
}

SessionReplSnapshotRequest decodeSessionReplSnapshotRequest(
    const std::string& payload) {
  ipc::MessageReader reader(payload);
  expectType(reader, MessageType::kSessionReplSnapshotRequest);
  SessionReplSnapshotRequest request;
  request.tenant = reader.str();
  request.name = reader.str();
  request.epoch = reader.u64();
  request.snapshot = reader.str();
  reader.expectEnd();
  return request;
}

std::string encodeSessionReplSnapshotResponse(
    const SessionReplSnapshotResponse& response) {
  ipc::MessageWriter writer;
  writer.u32(
      static_cast<std::uint32_t>(MessageType::kSessionReplSnapshotResponse));
  writer.u32(static_cast<std::uint32_t>(response.status));
  writer.str(response.error);
  writer.u64(response.epoch);
  writer.u64(response.lastAccepted);
  return writer.take();
}

SessionReplSnapshotResponse decodeSessionReplSnapshotResponse(
    const std::string& payload) {
  ipc::MessageReader reader(payload);
  expectType(reader, MessageType::kSessionReplSnapshotResponse);
  SessionReplSnapshotResponse response;
  response.status = sessionStatusFromWire(reader.u32());
  response.error = reader.str();
  response.epoch = reader.u64();
  response.lastAccepted = reader.u64();
  reader.expectEnd();
  return response;
}

std::string encodeSessionStatusRequest(const SessionStatusRequest& request) {
  ipc::MessageWriter writer;
  writer.u32(static_cast<std::uint32_t>(MessageType::kSessionStatusRequest));
  writer.str(request.tenant);
  writer.str(request.name);
  return writer.take();
}

SessionStatusRequest decodeSessionStatusRequest(const std::string& payload) {
  ipc::MessageReader reader(payload);
  expectType(reader, MessageType::kSessionStatusRequest);
  SessionStatusRequest request;
  request.tenant = reader.str();
  request.name = reader.str();
  reader.expectEnd();
  return request;
}

std::string encodeSessionStatusResponse(
    const SessionStatusResponse& response) {
  ipc::MessageWriter writer;
  writer.u32(static_cast<std::uint32_t>(MessageType::kSessionStatusResponse));
  writer.u32(static_cast<std::uint32_t>(response.status));
  writer.str(response.error);
  writer.str(response.role);
  writer.u64(response.epoch);
  writer.u64(response.lastAccepted);
  writer.u64(response.applied);
  return writer.take();
}

SessionStatusResponse decodeSessionStatusResponse(
    const std::string& payload) {
  ipc::MessageReader reader(payload);
  expectType(reader, MessageType::kSessionStatusResponse);
  SessionStatusResponse response;
  response.status = sessionStatusFromWire(reader.u32());
  response.error = reader.str();
  response.role = reader.str();
  response.epoch = reader.u64();
  response.lastAccepted = reader.u64();
  response.applied = reader.u64();
  reader.expectEnd();
  return response;
}

MessageType peekType(const std::string& payload) {
  ipc::MessageReader reader(payload);
  const std::uint32_t tag = reader.u32();
  switch (tag) {
    case 1: return MessageType::kPlanRequest;
    case 2: return MessageType::kPlanResponse;
    case 3: return MessageType::kHealthRequest;
    case 4: return MessageType::kHealthResponse;
    case 5: return MessageType::kShardRequest;
    case 6: return MessageType::kShardResponse;
    case 7: return MessageType::kWarmupRequest;
    case 8: return MessageType::kWarmupResponse;
    case 9: return MessageType::kSessionOpenRequest;
    case 10: return MessageType::kSessionOpenResponse;
    case 11: return MessageType::kSessionMutateRequest;
    case 12: return MessageType::kSessionMutateResponse;
    case 13: return MessageType::kSessionReplayRequest;
    case 14: return MessageType::kSessionReplayResponse;
    case 15: return MessageType::kSessionCloseRequest;
    case 16: return MessageType::kSessionCloseResponse;
    case 17: return MessageType::kStatsRequest;
    case 18: return MessageType::kStatsResponse;
    case 19: return MessageType::kTraceDumpRequest;
    case 20: return MessageType::kTraceDumpResponse;
    case 21: return MessageType::kHandshakeRequest;
    case 22: return MessageType::kHandshakeResponse;
    case 23: return MessageType::kSessionReplAppendRequest;
    case 24: return MessageType::kSessionReplAppendResponse;
    case 25: return MessageType::kSessionReplSnapshotRequest;
    case 26: return MessageType::kSessionReplSnapshotResponse;
    case 27: return MessageType::kSessionStatusRequest;
    case 28: return MessageType::kSessionStatusResponse;
  }
  throw ipc::IpcError("unknown message type " + std::to_string(tag));
}

// --- Version/feature handshake --------------------------------------------

std::string encodeHandshakeRequest(const HandshakeRequest& request) {
  ipc::MessageWriter writer;
  writer.u32(static_cast<std::uint32_t>(MessageType::kHandshakeRequest));
  writer.u32(request.version);
  writer.u32(request.features);
  return writer.take();
}

HandshakeRequest decodeHandshakeRequest(const std::string& payload) {
  ipc::MessageReader reader(payload);
  expectType(reader, MessageType::kHandshakeRequest);
  HandshakeRequest request;
  request.version = reader.u32();
  request.features = reader.u32();
  reader.expectEnd();
  return request;
}

std::string encodeHandshakeResponse(const HandshakeResponse& response) {
  ipc::MessageWriter writer;
  writer.u32(static_cast<std::uint32_t>(MessageType::kHandshakeResponse));
  writer.u32(response.accepted ? 1 : 0);
  writer.u32(response.version);
  writer.u32(response.features);
  writer.str(response.error);
  return writer.take();
}

HandshakeResponse decodeHandshakeResponse(const std::string& payload) {
  ipc::MessageReader reader(payload);
  expectType(reader, MessageType::kHandshakeResponse);
  HandshakeResponse response;
  response.accepted = reader.u32() != 0;
  response.version = reader.u32();
  response.features = reader.u32();
  response.error = reader.str();
  reader.expectEnd();
  return response;
}

HandshakeResponse answerHandshake(const HandshakeRequest& request) {
  HandshakeResponse response;
  response.version = kProtocolVersion;
  if (request.version != kProtocolVersion) {
    // A different generation may frame its messages differently (the CRC
    // trailer itself arrived in generation 1); refuse loudly rather than
    // misparse quietly.
    response.accepted = false;
    response.features = 0;
    response.error = "protocol version mismatch (peer " +
                     std::to_string(request.version) + ", server " +
                     std::to_string(kProtocolVersion) + ")";
    return response;
  }
  response.accepted = true;
  response.features = request.features & kFeatureCrc32c;
  return response;
}

}  // namespace rfsm::service
