#include "bdd/symbolic_fsm.hpp"

#include <map>
#include <vector>

#include "fsm/builder.hpp"
#include "rtl/kernel.hpp"

namespace rfsm::bdd {
namespace {

/// Variable layout: product-state bits are interleaved current/next
/// (current_k = 2k, next_k = 2k+1) so that renaming next->current is
/// strictly monotone; input bits follow after all state bits.
struct Layout {
  int stateBits;
  int inputBits;

  int current(int k) const { return 2 * k; }
  int next(int k) const { return 2 * k + 1; }
  int input(int j) const { return 2 * stateBits + j; }
  int total() const { return 2 * stateBits + inputBits; }
};

/// Cube literals for `value` spread over the current-state (or next/input)
/// variables selected by `varOf`.
template <typename VarOf>
void appendBits(std::vector<std::pair<int, bool>>& literals,
                std::uint64_t value, int bits, VarOf varOf) {
  for (int k = 0; k < bits; ++k)
    literals.emplace_back(varOf(k), (value >> k) & 1);
}

struct ProductEncoding {
  Layout layout;
  int bitsA;
  int bitsB;

  std::uint64_t packState(SymbolId sa, SymbolId sb) const {
    return static_cast<std::uint64_t>(sa) |
           (static_cast<std::uint64_t>(sb) << bitsA);
  }
};

/// Aligns b's input ids to a's (by name).
std::vector<SymbolId> alignInputs(const Machine& a, const Machine& b) {
  if (a.inputCount() != b.inputCount())
    throw FsmError("machines have different input alphabet sizes");
  std::vector<SymbolId> map(static_cast<std::size_t>(a.inputCount()));
  for (SymbolId i = 0; i < a.inputCount(); ++i) {
    const auto other = b.inputs().find(a.inputs().name(i));
    if (!other.has_value())
      throw FsmError("input '" + a.inputs().name(i) +
                     "' missing from machine '" + b.name() + "'");
    map[static_cast<std::size_t>(i)] = *other;
  }
  return map;
}

}  // namespace

SymbolicEquivalenceResult checkEquivalenceSymbolic(const Machine& a,
                                                   const Machine& b) {
  const std::vector<SymbolId> inputMap = alignInputs(a, b);

  ProductEncoding enc;
  enc.bitsA = rtl::bitWidthFor(a.stateCount());
  enc.bitsB = rtl::bitWidthFor(b.stateCount());
  enc.layout.stateBits = enc.bitsA + enc.bitsB;
  enc.layout.inputBits = rtl::bitWidthFor(a.inputCount());
  BddManager manager(enc.layout.total());

  // Per-bit next-state functions and the transition relation.
  std::vector<Node> nextBit(static_cast<std::size_t>(enc.layout.stateBits),
                            BddManager::kFalse);
  Node bad = BddManager::kFalse;
  for (SymbolId sa = 0; sa < a.stateCount(); ++sa) {
    for (SymbolId sb = 0; sb < b.stateCount(); ++sb) {
      bool outputsDiffer = false;
      for (SymbolId i = 0; i < a.inputCount(); ++i) {
        const SymbolId ib = inputMap[static_cast<std::size_t>(i)];
        // Total-state cube: current product state + this input.
        std::vector<std::pair<int, bool>> literals;
        appendBits(literals, enc.packState(sa, sb), enc.layout.stateBits,
                   [&](int k) { return enc.layout.current(k); });
        appendBits(literals, static_cast<std::uint64_t>(i),
                   enc.layout.inputBits,
                   [&](int j) { return enc.layout.input(j); });
        const Node total = manager.cube(literals);
        const std::uint64_t nextCode =
            enc.packState(a.next(i, sa), b.next(ib, sb));
        for (int k = 0; k < enc.layout.stateBits; ++k)
          if ((nextCode >> k) & 1)
            nextBit[static_cast<std::size_t>(k)] = manager.orOf(
                nextBit[static_cast<std::size_t>(k)], total);
        if (a.outputs().name(a.output(i, sa)) !=
            b.outputs().name(b.output(ib, sb)))
          outputsDiffer = true;
      }
      if (outputsDiffer) {
        std::vector<std::pair<int, bool>> literals;
        appendBits(literals, enc.packState(sa, sb), enc.layout.stateBits,
                   [&](int k) { return enc.layout.current(k); });
        bad = manager.orOf(bad, manager.cube(literals));
      }
    }
  }
  Node relation = BddManager::kTrue;
  for (int k = 0; k < enc.layout.stateBits; ++k) {
    const Node bit = manager.variable(enc.layout.next(k));
    relation = manager.andOf(
        relation,
        manager.xnorOf(bit, nextBit[static_cast<std::size_t>(k)]));
  }

  // Quantification sets and the next->current renaming.
  std::vector<int> currentAndInputs;
  std::map<int, int> nextToCurrent;
  for (int k = 0; k < enc.layout.stateBits; ++k) {
    currentAndInputs.push_back(enc.layout.current(k));
    nextToCurrent[enc.layout.next(k)] = enc.layout.current(k);
  }
  for (int j = 0; j < enc.layout.inputBits; ++j)
    currentAndInputs.push_back(enc.layout.input(j));

  // Reachability fixpoint from the pair of reset states.
  std::vector<std::pair<int, bool>> initLiterals;
  appendBits(initLiterals, enc.packState(a.resetState(), b.resetState()),
             enc.layout.stateBits,
             [&](int k) { return enc.layout.current(k); });
  Node reached = manager.cube(initLiterals);

  SymbolicEquivalenceResult result;
  for (;;) {
    ++result.iterations;
    if (manager.andOf(reached, bad) != BddManager::kFalse) {
      result.equivalent = false;
      break;
    }
    const Node image = manager.rename(
        manager.exists(manager.andOf(relation, reached), currentAndInputs),
        nextToCurrent);
    const Node next = manager.orOf(reached, image);
    if (next == reached) {
      result.equivalent = true;
      break;
    }
    reached = next;
  }
  // reached depends only on the current-state variables; every other
  // variable contributes a free factor of 2 to satCount.
  result.reachablePairs =
      manager.satCount(reached) >>
      (enc.layout.stateBits + enc.layout.inputBits);
  result.bddNodes = manager.nodeCount();
  return result;
}

std::uint64_t symbolicReachableStates(const Machine& machine) {
  const SymbolicEquivalenceResult result =
      checkEquivalenceSymbolic(machine, machine);
  // The product of a machine with itself reaches exactly the diagonal of
  // its reachable set.
  return result.reachablePairs;
}

}  // namespace rfsm::bdd
