// Symbolic FSM analysis on BDDs.
//
// Builds the transition relation of the product of two machines and decides
// behavioural equivalence by symbolic reachability (image computation with
// and-exists + renaming), the standard technique of symbolic model
// checking.  It is cross-validated against the explicit product-BFS checker
// in fsm/equivalence.hpp — two independent implementations of the same
// decision problem guarding each other.
#pragma once

#include <cstdint>

#include "bdd/bdd.hpp"
#include "fsm/machine.hpp"

namespace rfsm::bdd {

/// Outcome of a symbolic equivalence check, with search statistics.
struct SymbolicEquivalenceResult {
  bool equivalent = false;
  /// Distinct reachable product states (pairs) at the fixpoint.
  std::uint64_t reachablePairs = 0;
  /// Image-computation iterations until the fixpoint.
  int iterations = 0;
  /// BDD nodes allocated by the analysis.
  std::size_t bddNodes = 0;
};

/// Decides behavioural equivalence of two completely specified machines
/// with the same input alphabet (matched by name; FsmError otherwise).
SymbolicEquivalenceResult checkEquivalenceSymbolic(const Machine& a,
                                                   const Machine& b);

/// Counts the reachable states of a single machine symbolically (sanity
/// tool; equals reachableStates().size() from fsm/analysis.hpp).
std::uint64_t symbolicReachableStates(const Machine& machine);

}  // namespace rfsm::bdd
