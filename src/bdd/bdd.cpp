#include "bdd/bdd.hpp"

#include <algorithm>

namespace rfsm::bdd {
namespace {

/// Node indices are packed three-per-uint64 in the tables.
constexpr std::uint32_t kIndexBits = 21;
constexpr std::uint32_t kMaxNodes = (1u << kIndexBits) - 1;

std::uint64_t packTriple(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  return (a << (2 * kIndexBits)) | (b << kIndexBits) | c;
}

}  // namespace

BddManager::BddManager(int variableCount) : variableCount_(variableCount) {
  RFSM_CHECK(variableCount >= 1 && variableCount < (1 << 10),
             "variable count must be 1..1023");
  // Terminals test the pseudo-variable variableCount_ (below all others).
  nodes_.push_back(NodeData{variableCount_, kFalse, kFalse});  // 0 = false
  nodes_.push_back(NodeData{variableCount_, kTrue, kTrue});    // 1 = true
}

Node BddManager::make(int var, Node low, Node high) {
  if (low == high) return low;
  const std::uint64_t key =
      (static_cast<std::uint64_t>(var) << (2 * kIndexBits + 10)) |
      packTriple(0, low, high);
  auto it = unique_.find(key);
  if (it != unique_.end()) return it->second;
  RFSM_CHECK(nodes_.size() < kMaxNodes, "BDD node store exhausted");
  RFSM_CHECK(nodes_[low].var > var && nodes_[high].var > var,
             "BDD order violated");
  const Node node = static_cast<Node>(nodes_.size());
  nodes_.push_back(NodeData{var, low, high});
  unique_.emplace(key, node);
  return node;
}

Node BddManager::variable(int index) {
  RFSM_CHECK(index >= 0 && index < variableCount_, "variable out of range");
  return make(index, kFalse, kTrue);
}

Node BddManager::notVariable(int index) {
  RFSM_CHECK(index >= 0 && index < variableCount_, "variable out of range");
  return make(index, kTrue, kFalse);
}

Node BddManager::notOf(Node f) { return ite(f, kFalse, kTrue); }
Node BddManager::andOf(Node f, Node g) { return ite(f, g, kFalse); }
Node BddManager::orOf(Node f, Node g) { return ite(f, kTrue, g); }
Node BddManager::xorOf(Node f, Node g) { return ite(f, notOf(g), g); }
Node BddManager::xnorOf(Node f, Node g) { return ite(f, g, notOf(g)); }

Node BddManager::ite(Node f, Node g, Node h) {
  RFSM_CHECK(f < nodes_.size() && g < nodes_.size() && h < nodes_.size(),
             "node handle out of range");
  return iteRec(f, g, h);
}

Node BddManager::iteRec(Node f, Node g, Node h) {
  // Terminal cases.
  if (f == kTrue) return g;
  if (f == kFalse) return h;
  if (g == h) return g;
  if (g == kTrue && h == kFalse) return f;

  const std::uint64_t key = packTriple(f, g, h);
  auto it = computed_.find(key);
  if (it != computed_.end()) return it->second;

  const int v = std::min({nodes_[f].var, nodes_[g].var, nodes_[h].var});
  auto cofactor = [&](Node n, bool positive) {
    if (nodes_[n].var != v) return n;
    return positive ? nodes_[n].high : nodes_[n].low;
  };
  const Node low = iteRec(cofactor(f, false), cofactor(g, false),
                          cofactor(h, false));
  const Node high =
      iteRec(cofactor(f, true), cofactor(g, true), cofactor(h, true));
  const Node result = make(v, low, high);
  computed_.emplace(key, result);
  return result;
}

Node BddManager::exists(Node f, const std::vector<int>& variables) {
  std::vector<bool> quantified(static_cast<std::size_t>(variableCount_),
                               false);
  for (const int v : variables) {
    RFSM_CHECK(v >= 0 && v < variableCount_, "variable out of range");
    quantified[static_cast<std::size_t>(v)] = true;
  }
  std::unordered_map<Node, Node> memo;
  return existsRec(f, quantified, memo);
}

Node BddManager::existsRec(Node f, const std::vector<bool>& quantified,
                           std::unordered_map<Node, Node>& memo) {
  if (f == kTrue || f == kFalse) return f;
  auto it = memo.find(f);
  if (it != memo.end()) return it->second;
  const NodeData node = nodes_[f];
  const Node low = existsRec(node.low, quantified, memo);
  const Node high = existsRec(node.high, quantified, memo);
  const Node result = quantified[static_cast<std::size_t>(node.var)]
                          ? orOf(low, high)
                          : make(node.var, low, high);
  memo.emplace(f, result);
  return result;
}

Node BddManager::rename(Node f, const std::map<int, int>& map) {
  // Monotonicity on the mapped variables (std::map iterates key-ascending).
  int lastTarget = -1;
  for (const auto& [from, to] : map) {
    RFSM_CHECK(from >= 0 && from < variableCount_ && to >= 0 &&
                   to < variableCount_,
               "rename variable out of range");
    RFSM_CHECK(to > lastTarget, "rename map must be strictly monotone");
    lastTarget = to;
  }
  std::unordered_map<Node, Node> memo;
  return renameRec(f, map, memo);
}

Node BddManager::renameRec(Node f, const std::map<int, int>& map,
                           std::unordered_map<Node, Node>& memo) {
  if (f == kTrue || f == kFalse) return f;
  auto it = memo.find(f);
  if (it != memo.end()) return it->second;
  const NodeData node = nodes_[f];
  const Node low = renameRec(node.low, map, memo);
  const Node high = renameRec(node.high, map, memo);
  auto mapped = map.find(node.var);
  const int var = mapped == map.end() ? node.var : mapped->second;
  const Node result = make(var, low, high);
  memo.emplace(f, result);
  return result;
}

bool BddManager::evaluate(Node f, const std::vector<bool>& assignment) const {
  RFSM_CHECK(assignment.size() ==
                 static_cast<std::size_t>(variableCount_),
             "assignment must cover every variable");
  Node node = f;
  while (node != kTrue && node != kFalse) {
    const NodeData& data = nodes_[node];
    node = assignment[static_cast<std::size_t>(data.var)] ? data.high
                                                          : data.low;
  }
  return node == kTrue;
}

std::uint64_t BddManager::satCount(Node f) const {
  std::unordered_map<Node, std::uint64_t> memo;
  // rec(n) = models over variables var(n)..variableCount_-1.
  auto rec = [&](auto&& self, Node n) -> std::uint64_t {
    if (n == kFalse) return 0;
    if (n == kTrue) return 1;
    auto it = memo.find(n);
    if (it != memo.end()) return it->second;
    const NodeData& d = nodes_[n];
    const std::uint64_t low =
        self(self, d.low)
        << (nodes_[d.low].var - d.var - 1);
    const std::uint64_t high =
        self(self, d.high)
        << (nodes_[d.high].var - d.var - 1);
    const std::uint64_t result = low + high;
    memo.emplace(n, result);
    return result;
  };
  return rec(rec, f) << nodes_[f].var;
}

Node BddManager::cube(const std::vector<std::pair<int, bool>>& literals) {
  std::vector<std::pair<int, bool>> sorted = literals;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t k = 1; k < sorted.size(); ++k)
    RFSM_CHECK(sorted[k].first != sorted[k - 1].first,
               "cube mentions a variable twice");
  Node node = kTrue;
  for (auto it = sorted.rbegin(); it != sorted.rend(); ++it)
    node = it->second ? make(it->first, kFalse, node)
                      : make(it->first, node, kFalse);
  return node;
}

}  // namespace rfsm::bdd
