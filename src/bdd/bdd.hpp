// Reduced Ordered Binary Decision Diagrams (Bryant 1986).
//
// A compact BDD package in the classic style: a node store with a unique
// table (hash-consing guarantees canonicity for a fixed variable order), an
// ITE-based apply with a computed table, existential quantification,
// monotone variable renaming (for image computation), evaluation and
// model counting.  No complement edges and no dynamic reordering — the
// symbolic FSM analyses in this repository stay small enough not to need
// them, and the simpler invariants are easier to test exhaustively.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "util/check.hpp"

namespace rfsm::bdd {

/// Handle of a BDD function within one manager.
using Node = std::uint32_t;

/// A BDD manager over a fixed number of variables (order = index order;
/// variable 0 is tested first / topmost).
class BddManager {
 public:
  static constexpr Node kFalse = 0;
  static constexpr Node kTrue = 1;

  explicit BddManager(int variableCount);

  int variableCount() const { return variableCount_; }
  /// Live nodes in the store (including the two terminals).
  std::size_t nodeCount() const { return nodes_.size(); }

  /// The function of a single variable.
  Node variable(int index);
  /// Its negation.
  Node notVariable(int index);

  Node notOf(Node f);
  Node andOf(Node f, Node g);
  Node orOf(Node f, Node g);
  Node xorOf(Node f, Node g);
  Node xnorOf(Node f, Node g);
  /// If-then-else: f ? g : h (the universal connective).
  Node ite(Node f, Node g, Node h);

  /// Existential quantification over the given variables.
  Node exists(Node f, const std::vector<int>& variables);

  /// Renames variables: each f-variable v becomes map.at(v) (variables not
  /// in the map stay).  The map must be strictly monotone on the variables
  /// actually present so the order is preserved; checked at runtime.
  Node rename(Node f, const std::map<int, int>& map);

  /// Evaluates under a full assignment (assignment[v] = value of var v).
  bool evaluate(Node f, const std::vector<bool>& assignment) const;

  /// Number of satisfying assignments over all variableCount() variables.
  std::uint64_t satCount(Node f) const;

  /// The cube (AND of literals) for the given values of given variables.
  Node cube(const std::vector<std::pair<int, bool>>& literals);

 private:
  struct NodeData {
    int var;    // variable tested (terminals: variableCount_)
    Node low;   // cofactor var=0
    Node high;  // cofactor var=1
  };

  Node make(int var, Node low, Node high);
  Node iteRec(Node f, Node g, Node h);
  Node existsRec(Node f, const std::vector<bool>& quantified,
                 std::unordered_map<Node, Node>& memo);
  Node renameRec(Node f, const std::map<int, int>& map,
                 std::unordered_map<Node, Node>& memo);

  int variableCount_;
  std::vector<NodeData> nodes_;
  // Unique table: (var, low, high) -> node.
  std::unordered_map<std::uint64_t, Node> unique_;
  // Computed table for ite.
  std::unordered_map<std::uint64_t, Node> computed_;
};

}  // namespace rfsm::bdd
