#include "ea/permutation.hpp"

#include <algorithm>
#include <numeric>

#include "util/check.hpp"

namespace rfsm {

bool isPermutation(const Permutation& p) {
  std::vector<bool> seen(p.size(), false);
  for (int v : p) {
    if (v < 0 || v >= static_cast<int>(p.size())) return false;
    if (seen[static_cast<std::size_t>(v)]) return false;
    seen[static_cast<std::size_t>(v)] = true;
  }
  return true;
}

Permutation randomPermutation(int n, Rng& rng) {
  RFSM_CHECK(n >= 0, "permutation size must be non-negative");
  Permutation p(static_cast<std::size_t>(n));
  std::iota(p.begin(), p.end(), 0);
  rng.shuffle(p);
  return p;
}

namespace {
/// Random slice [lo, hi] of a size-n genome, lo <= hi.
std::pair<std::size_t, std::size_t> randomSlice(std::size_t n, Rng& rng) {
  std::size_t lo = static_cast<std::size_t>(rng.below(n));
  std::size_t hi = static_cast<std::size_t>(rng.below(n));
  if (lo > hi) std::swap(lo, hi);
  return {lo, hi};
}
}  // namespace

Permutation orderCrossover(const Permutation& a, const Permutation& b,
                           Rng& rng) {
  RFSM_CHECK(a.size() == b.size(), "parents must have equal length");
  const std::size_t n = a.size();
  if (n <= 1) return a;
  auto [lo, hi] = randomSlice(n, rng);

  Permutation child(n, -1);
  std::vector<bool> used(n, false);
  for (std::size_t k = lo; k <= hi; ++k) {
    child[k] = a[k];
    used[static_cast<std::size_t>(a[k])] = true;
  }
  // Fill the remaining slots in the cyclic order of b starting after hi.
  std::size_t write = (hi + 1) % n;
  for (std::size_t off = 0; off < n; ++off) {
    const int candidate = b[(hi + 1 + off) % n];
    if (used[static_cast<std::size_t>(candidate)]) continue;
    child[write] = candidate;
    used[static_cast<std::size_t>(candidate)] = true;
    write = (write + 1) % n;
  }
  return child;
}

Permutation pmxCrossover(const Permutation& a, const Permutation& b,
                         Rng& rng) {
  RFSM_CHECK(a.size() == b.size(), "parents must have equal length");
  const std::size_t n = a.size();
  if (n <= 1) return a;
  auto [lo, hi] = randomSlice(n, rng);

  Permutation child(n, -1);
  std::vector<int> positionInChildOf(n, -1);
  for (std::size_t k = lo; k <= hi; ++k) {
    child[k] = a[k];
    positionInChildOf[static_cast<std::size_t>(a[k])] = static_cast<int>(k);
  }
  for (std::size_t k = lo; k <= hi; ++k) {
    int value = b[k];
    if (positionInChildOf[static_cast<std::size_t>(value)] != -1) continue;
    // Follow the PMX mapping chain until a free slot is found.
    std::size_t slot = k;
    while (child[slot] != -1) {
      const int displaced = child[slot];
      // Where does `displaced` sit in b?  That slot is the next candidate.
      slot = static_cast<std::size_t>(
          std::find(b.begin(), b.end(), displaced) - b.begin());
    }
    child[slot] = value;
    positionInChildOf[static_cast<std::size_t>(value)] =
        static_cast<int>(slot);
  }
  for (std::size_t k = 0; k < n; ++k) {
    if (child[k] == -1) child[k] = b[k];
  }
  return child;
}

void swapMutation(Permutation& p, Rng& rng) {
  if (p.size() < 2) return;
  const std::size_t i = static_cast<std::size_t>(rng.below(p.size()));
  const std::size_t j = static_cast<std::size_t>(rng.below(p.size()));
  std::swap(p[i], p[j]);
}

void insertMutation(Permutation& p, Rng& rng) {
  if (p.size() < 2) return;
  const std::size_t from = static_cast<std::size_t>(rng.below(p.size()));
  const std::size_t to = static_cast<std::size_t>(rng.below(p.size()));
  const int value = p[from];
  p.erase(p.begin() + static_cast<std::ptrdiff_t>(from));
  p.insert(p.begin() + static_cast<std::ptrdiff_t>(to), value);
}

void inversionMutation(Permutation& p, Rng& rng) {
  if (p.size() < 2) return;
  auto [lo, hi] = randomSlice(p.size(), rng);
  std::reverse(p.begin() + static_cast<std::ptrdiff_t>(lo),
               p.begin() + static_cast<std::ptrdiff_t>(hi) + 1);
}

}  // namespace rfsm
