// Permutation genomes and variation operators.
//
// Sec. 4.6 of the paper encodes "each individual as a permutation of the
// order in which the delta transitions are reconfigured" — exactly the TSP
// genome.  The operators here are the classic permutation-preserving ones:
// order crossover (OX), partially matched crossover (PMX), and swap /
// insert / inversion mutations.  All preserve the permutation property by
// construction; tests assert it anyway.
#pragma once

#include <vector>

#include "util/rng.hpp"

namespace rfsm {

/// A permutation of 0..n-1.
using Permutation = std::vector<int>;

/// True when `p` contains each of 0..p.size()-1 exactly once.
bool isPermutation(const Permutation& p);

/// Uniformly random permutation of 0..n-1.
Permutation randomPermutation(int n, Rng& rng);

/// Order crossover (OX): copies a random slice of `a`, fills the rest in the
/// cyclic order of `b`.
Permutation orderCrossover(const Permutation& a, const Permutation& b,
                           Rng& rng);

/// Partially matched crossover (PMX).
Permutation pmxCrossover(const Permutation& a, const Permutation& b, Rng& rng);

/// Swaps two random positions.
void swapMutation(Permutation& p, Rng& rng);

/// Removes a random element and reinserts it at a random position.
void insertMutation(Permutation& p, Rng& rng);

/// Reverses a random slice.
void inversionMutation(Permutation& p, Rng& rng);

}  // namespace rfsm
