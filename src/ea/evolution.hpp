// A generic steady-generation evolutionary algorithm over permutations.
//
// The fitness is any callable mapping a permutation to a cost (lower is
// better); the reconfiguration planner plugs in "length of the decoded
// reconfiguration program" (Sec. 4.6).  Deterministic given (seed, config).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "ea/permutation.hpp"
#include "util/deadline.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace rfsm {

/// Crossover operator selection.
enum class CrossoverOp { kOrder, kPmx };

/// Mutation operator selection.
enum class MutationOp { kSwap, kInsert, kInversion };

/// EA hyper-parameters.  Defaults are sized for |Td| up to ~50 and finish in
/// milliseconds.
struct EvolutionConfig {
  int populationSize = 64;
  int generations = 120;
  double crossoverRate = 0.9;
  double mutationRate = 0.35;
  int tournamentSize = 3;
  int eliteCount = 2;
  CrossoverOp crossover = CrossoverOp::kOrder;
  MutationOp mutation = MutationOp::kSwap;
  /// Stop early after this many generations without improvement (0 = never).
  int stallLimit = 0;
  /// Cooperative cancellation, polled once per generation (and before the
  /// initial-population evaluation); an expired token unwinds the run with
  /// CancelledError.  nullptr = not cancellable.
  const CancelToken* cancel = nullptr;
};

/// Per-generation statistics.
struct GenerationStats {
  double bestFitness = 0.0;
  double meanFitness = 0.0;
};

/// Result of a run.
struct EvolutionResult {
  Permutation best;
  double bestFitness = 0.0;
  std::vector<GenerationStats> history;
  /// Exact number of fitness-function invocations: the initial population
  /// plus, per generation, every non-elite offspring.  Elites keep their
  /// cached fitness and are never re-evaluated (or re-counted).
  int evaluations = 0;
};

/// Cost function; lower is better.
using FitnessFn = std::function<double(const Permutation&)>;

/// Runs the EA on permutations of size `genomeLength`.
/// genomeLength == 0 returns an empty best genome with fitness from the
/// empty permutation.
///
/// When `pool` is non-null, fitness evaluations run `pool->jobs()`-way
/// parallel.  All stochastic choices (selection, crossover, mutation) are
/// made serially on the caller's rng before any fitness call of that
/// generation, so the result is bit-identical for every job count —
/// `fitness` must be thread-safe and a pure function of its argument.
EvolutionResult evolvePermutation(int genomeLength, const FitnessFn& fitness,
                                  const EvolutionConfig& config, Rng& rng,
                                  ThreadPool* pool = nullptr);

/// Human-readable operator names (used by the ablation bench).
std::string toString(CrossoverOp op);
std::string toString(MutationOp op);

}  // namespace rfsm
