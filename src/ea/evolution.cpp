#include "ea/evolution.hpp"

#include <algorithm>
#include <limits>

#include "util/check.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace rfsm {
namespace {

struct Individual {
  Permutation genome;
  double fitness = std::numeric_limits<double>::infinity();
};

Permutation crossover(CrossoverOp op, const Permutation& a,
                      const Permutation& b, Rng& rng) {
  switch (op) {
    case CrossoverOp::kOrder: return orderCrossover(a, b, rng);
    case CrossoverOp::kPmx: return pmxCrossover(a, b, rng);
  }
  return a;
}

void mutate(MutationOp op, Permutation& p, Rng& rng) {
  switch (op) {
    case MutationOp::kSwap: swapMutation(p, rng); break;
    case MutationOp::kInsert: insertMutation(p, rng); break;
    case MutationOp::kInversion: inversionMutation(p, rng); break;
  }
}

/// Index of the tournament winner (lowest fitness) among `size` random picks.
std::size_t tournament(const std::vector<Individual>& population, int size,
                       Rng& rng) {
  std::size_t best = static_cast<std::size_t>(rng.below(population.size()));
  for (int round = 1; round < size; ++round) {
    const std::size_t candidate =
        static_cast<std::size_t>(rng.below(population.size()));
    if (population[candidate].fitness < population[best].fitness)
      best = candidate;
  }
  return best;
}

}  // namespace

EvolutionResult evolvePermutation(int genomeLength, const FitnessFn& fitness,
                                  const EvolutionConfig& config, Rng& rng,
                                  ThreadPool* pool) {
  RFSM_CHECK(genomeLength >= 0, "genome length must be non-negative");
  RFSM_CHECK(config.populationSize >= 2, "population needs >= 2 individuals");
  RFSM_CHECK(config.eliteCount >= 0 &&
                 config.eliteCount < config.populationSize,
             "elite count must be in [0, populationSize)");
  RFSM_CHECK(config.tournamentSize >= 1, "tournament size must be >= 1");

  EvolutionResult result;
  if (genomeLength == 0) {
    result.best = {};
    result.bestFitness = fitness(result.best);
    result.evaluations = 1;
    return result;
  }

  // Evaluates individuals [first, population.size()) in parallel.  Genomes
  // are fixed before this is called, so the rng sequence — and with it the
  // whole run — is independent of the job count.
  auto evaluateFrom = [&](std::vector<Individual>& group, std::size_t first) {
    parallelFor(pool, group.size() - first, [&](std::size_t k) {
      Individual& ind = group[first + k];
      ind.fitness = fitness(ind.genome);
    });
    result.evaluations += static_cast<int>(group.size() - first);
  };

  std::vector<Individual> population(
      static_cast<std::size_t>(config.populationSize));
  for (auto& ind : population)
    ind.genome = randomPermutation(genomeLength, rng);
  pollCancel(config.cancel, "ea.initial_population");
  evaluateFrom(population, 0);

  auto byFitness = [](const Individual& a, const Individual& b) {
    return a.fitness < b.fitness;
  };
  std::sort(population.begin(), population.end(), byFitness);
  result.best = population.front().genome;
  result.bestFitness = population.front().fitness;
  {
    // Generation 0: the random initial population, so callers can measure
    // how much the search itself (vs. random sampling) contributes.
    double sum = 0.0;
    for (const auto& ind : population) sum += ind.fitness;
    result.history.push_back(GenerationStats{
        population.front().fitness,
        sum / static_cast<double>(population.size())});
  }

  static metrics::Histogram& generationLatency =
      metrics::histogram(metrics::kGenerationLatency);
  int stall = 0;  // generations since the last *strict* improvement
  for (int gen = 0; gen < config.generations; ++gen) {
    pollCancel(config.cancel, "ea.generation");
    metrics::ScopedLatency latency(generationLatency);
    trace::ScopedSpan span(
        "ea.generation", "ea",
        {trace::Arg::num("generation", static_cast<std::int64_t>(gen))});
    std::vector<Individual> offspring;
    offspring.reserve(population.size());
    // Elitism: carry over the best individuals unchanged, with their cached
    // fitness — they are not re-evaluated and do not count as evaluations.
    for (int e = 0; e < config.eliteCount; ++e)
      offspring.push_back(population[static_cast<std::size_t>(e)]);

    // Phase 1 (serial): all stochastic choices of this generation.
    while (offspring.size() < population.size()) {
      const auto& parentA = population[tournament(population,
                                                  config.tournamentSize, rng)];
      const auto& parentB = population[tournament(population,
                                                  config.tournamentSize, rng)];
      Individual child;
      if (rng.chance(config.crossoverRate)) {
        child.genome = crossover(config.crossover, parentA.genome,
                                 parentB.genome, rng);
      } else {
        child.genome = parentA.genome;
      }
      if (rng.chance(config.mutationRate))
        mutate(config.mutation, child.genome, rng);
      offspring.push_back(std::move(child));
    }
    // Phase 2 (parallel): pure fitness evaluation of the new children.
    evaluateFrom(offspring, static_cast<std::size_t>(config.eliteCount));

    population = std::move(offspring);
    std::sort(population.begin(), population.end(), byFitness);

    double sum = 0.0;
    for (const auto& ind : population) sum += ind.fitness;
    result.history.push_back(GenerationStats{
        population.front().fitness,
        sum / static_cast<double>(population.size())});
    span.addArg(trace::Arg::num("best", population.front().fitness));
    span.addArg(trace::Arg::num(
        "mean", sum / static_cast<double>(population.size())));

    if (population.front().fitness < result.bestFitness) {
      result.bestFitness = population.front().fitness;
      result.best = population.front().genome;
      stall = 0;
    } else if (++stall >= config.stallLimit && config.stallLimit > 0) {
      break;
    }
  }
  return result;
}

std::string toString(CrossoverOp op) {
  switch (op) {
    case CrossoverOp::kOrder: return "OX";
    case CrossoverOp::kPmx: return "PMX";
  }
  return "?";
}

std::string toString(MutationOp op) {
  switch (op) {
    case MutationOp::kSwap: return "swap";
    case MutationOp::kInsert: return "insert";
    case MutationOp::kInversion: return "inversion";
  }
  return "?";
}

}  // namespace rfsm
