// Sample controllers: realistic small FSMs with revision pairs.
//
// The paper's evaluation machines are unpublished; these samples provide
// named, human-auditable controllers for examples, tests and benches.  All
// alphabets use fixed-width binary-vector symbol names so every sample
// round-trips through the KISS2 exchange format (sampleKiss2()).
//
// Each migration pair is a plausible field upgrade:
//  * traffic   — fixed-cycle intersection controller -> sensor-actuated
//  * vending   — 15-cent vending machine -> 20-cent (adds a state)
//  * hdlc      — HDLC-style flag delimiter 01111110 -> alternate flag
//  * parity    — even-parity tracker -> odd-parity (output-only migration)
#pragma once

#include <string>
#include <vector>

#include "fsm/machine.hpp"

namespace rfsm {

/// A named migration pair (source revision -> target revision).
struct SampleMigration {
  std::string name;
  Machine source;
  Machine target;
};

/// Names of all bundled sample machines.
std::vector<std::string> sampleNames();

/// Loads one sample machine by name; throws FsmError for unknown names.
Machine sampleMachine(const std::string& name);

/// The sample rendered as KISS2 text.
std::string sampleKiss2(const std::string& name);

/// All bundled revision pairs.
std::vector<SampleMigration> sampleMigrations();

}  // namespace rfsm
