// Derives target machines M' from a source M with an exact, controlled
// number of delta transitions — the independent variable of the paper's
// Table 2.
#pragma once

#include <string>

#include "fsm/machine.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace rfsm {

/// Mutation request.  The resulting machine M' has *exactly* `deltaCount`
/// delta transitions w.r.t. M per Def. 4.2 (a property test asserts this).
///
/// Accounting: every cell of a newly added state contributes one delta
/// (its source state is outside S), and every modified cell of an existing
/// state contributes one.  When newStateCount > 0 we additionally retarget
/// one existing cell per new state into it (so M' stays connected), which
/// also counts as a modified cell.  Hence the requirement
///   deltaCount >= newStateCount * (inputCount + 1).
struct MutationSpec {
  int deltaCount = 4;
  /// States added to M' beyond those of M (S' superset of S).
  int newStateCount = 0;
  std::string name = "mutated";
};

/// Thrown when the requested delta count is infeasible (too large for the
/// table, or too small to cover the new states).
class MutationError : public Error {
 public:
  explicit MutationError(const std::string& what) : Error(what) {}
};

/// Builds M' from M per the spec.  Requires at least 2 states or 2 outputs
/// in M (otherwise no cell of an unchanged-size machine can differ).
Machine mutateMachine(const Machine& source, const MutationSpec& spec,
                      Rng& rng);

}  // namespace rfsm
