#include "gen/samples.hpp"

#include "fsm/builder.hpp"
#include "fsm/kiss.hpp"
#include "gen/families.hpp"

namespace rfsm {
namespace {

/// Fixed-cycle intersection controller: highway green -> highway yellow ->
/// side green -> side yellow -> ...  Input: side-road car sensor (ignored
/// in v1).  Output: 2-bit light code 00=GH 01=YH 10=GS 11=YS.
Machine trafficV1() {
  MachineBuilder b("traffic_v1");
  b.addInput("0");
  b.addInput("1");
  for (const char* o : {"00", "01", "10", "11"}) b.addOutput(o);
  for (const char* s : {"GH", "YH", "GS", "YS"}) b.addState(s);
  b.setResetState("GH");
  for (const char* i : {"0", "1"}) {
    b.addTransition(i, "GH", "YH", "01");
    b.addTransition(i, "YH", "GS", "10");
    b.addTransition(i, "GS", "YS", "11");
    b.addTransition(i, "YS", "GH", "00");
  }
  return b.build();
}

/// Sensor-actuated revision: the highway stays green until a car waits on
/// the side road.
Machine trafficV2() {
  MachineBuilder b("traffic_v2");
  b.addInput("0");
  b.addInput("1");
  for (const char* o : {"00", "01", "10", "11"}) b.addOutput(o);
  for (const char* s : {"GH", "YH", "GS", "YS"}) b.addState(s);
  b.setResetState("GH");
  b.addTransition("0", "GH", "GH", "00");  // no car: stay green
  b.addTransition("1", "GH", "YH", "01");
  for (const char* i : {"0", "1"}) {
    b.addTransition(i, "YH", "GS", "10");
    b.addTransition(i, "GS", "YS", "11");
    b.addTransition(i, "YS", "GH", "00");
  }
  return b.build();
}

/// 15-cent vending machine.  Input: 00 = idle, 01 = nickel, 10 = dime
/// (11 = coin jam, treated as idle).  Output 1 = vend.
Machine vendingV1() {
  MachineBuilder b("vending_v1");
  for (const char* i : {"00", "01", "10", "11"}) b.addInput(i);
  b.addOutput("0");
  b.addOutput("1");
  for (const char* s : {"C0", "C5", "C10"}) b.addState(s);
  b.setResetState("C0");
  auto idle = [&](const char* s) {
    b.addTransition("00", s, s, "0");
    b.addTransition("11", s, s, "0");
  };
  idle("C0");
  b.addTransition("01", "C0", "C5", "0");
  b.addTransition("10", "C0", "C10", "0");
  idle("C5");
  b.addTransition("01", "C5", "C10", "0");
  b.addTransition("10", "C5", "C0", "1");   // 15 reached: vend
  idle("C10");
  b.addTransition("01", "C10", "C0", "1");  // 15 reached: vend
  b.addTransition("10", "C10", "C0", "1");  // 20: vend (overpay accepted)
  return b.build();
}

/// Price raised to 20 cents: one more accumulation state.
Machine vendingV2() {
  MachineBuilder b("vending_v2");
  for (const char* i : {"00", "01", "10", "11"}) b.addInput(i);
  b.addOutput("0");
  b.addOutput("1");
  for (const char* s : {"C0", "C5", "C10", "C15"}) b.addState(s);
  b.setResetState("C0");
  auto idle = [&](const char* s) {
    b.addTransition("00", s, s, "0");
    b.addTransition("11", s, s, "0");
  };
  idle("C0");
  b.addTransition("01", "C0", "C5", "0");
  b.addTransition("10", "C0", "C10", "0");
  idle("C5");
  b.addTransition("01", "C5", "C10", "0");
  b.addTransition("10", "C5", "C15", "0");
  idle("C10");
  b.addTransition("01", "C10", "C15", "0");
  b.addTransition("10", "C10", "C0", "1");
  idle("C15");
  b.addTransition("01", "C15", "C0", "1");
  b.addTransition("10", "C15", "C0", "1");
  return b.build();
}

/// Even-parity tracker: output 1 while an even number of ones has been
/// seen.  The odd-parity revision only flips the outputs — an output-only
/// migration (src/core/partial.hpp).
Machine parityEven() {
  MachineBuilder b("parity_even");
  b.addInput("0");
  b.addInput("1");
  b.addOutput("0");
  b.addOutput("1");
  b.addState("EVEN");
  b.addState("ODD");
  b.setResetState("EVEN");
  b.addTransition("0", "EVEN", "EVEN", "1");
  b.addTransition("1", "EVEN", "ODD", "0");
  b.addTransition("0", "ODD", "ODD", "0");
  b.addTransition("1", "ODD", "EVEN", "1");
  return b.build();
}

Machine parityOdd() {
  MachineBuilder b("parity_odd");
  b.addInput("0");
  b.addInput("1");
  b.addOutput("0");
  b.addOutput("1");
  b.addState("EVEN");
  b.addState("ODD");
  b.setResetState("EVEN");
  b.addTransition("0", "EVEN", "EVEN", "0");
  b.addTransition("1", "EVEN", "ODD", "1");
  b.addTransition("0", "ODD", "ODD", "1");
  b.addTransition("1", "ODD", "EVEN", "0");
  return b.build();
}

Machine hdlcV1() {
  return sequenceDetector("01111110").withName("hdlc_v1");
}

Machine hdlcV2() {
  return sequenceDetector("01111010").withName("hdlc_v2");
}

}  // namespace

std::vector<std::string> sampleNames() {
  return {"traffic_v1", "traffic_v2", "vending_v1", "vending_v2",
          "hdlc_v1",    "hdlc_v2",    "parity_even", "parity_odd"};
}

Machine sampleMachine(const std::string& name) {
  if (name == "traffic_v1") return trafficV1();
  if (name == "traffic_v2") return trafficV2();
  if (name == "vending_v1") return vendingV1();
  if (name == "vending_v2") return vendingV2();
  if (name == "hdlc_v1") return hdlcV1();
  if (name == "hdlc_v2") return hdlcV2();
  if (name == "parity_even") return parityEven();
  if (name == "parity_odd") return parityOdd();
  throw FsmError("unknown sample machine '" + name + "'");
}

std::string sampleKiss2(const std::string& name) {
  return writeKiss2(kiss2FromMachine(sampleMachine(name)));
}

std::vector<SampleMigration> sampleMigrations() {
  std::vector<SampleMigration> pairs;
  pairs.push_back({"traffic", trafficV1(), trafficV2()});
  pairs.push_back({"vending", vendingV1(), vendingV2()});
  pairs.push_back({"hdlc", hdlcV1(), hdlcV2()});
  pairs.push_back({"parity", parityEven(), parityOdd()});
  return pairs;
}

}  // namespace rfsm
