#include "gen/families.hpp"

#include "fsm/builder.hpp"
#include "util/check.hpp"

namespace rfsm {

Machine onesDetector() {
  // VHDL of Example 2.1: on in='1', S0 -> S1 emitting 0 and S1 -> S1
  // emitting 1; on in='0' always back to S0 emitting 0.
  MachineBuilder b("ones_detector");
  b.addInput("0");
  b.addInput("1");
  b.addOutput("0");
  b.addOutput("1");
  b.addState("S0");
  b.addState("S1");
  b.setResetState("S0");
  b.addTransition("1", "S0", "S1", "0");
  b.addTransition("1", "S1", "S1", "1");
  b.addTransition("0", "S0", "S0", "0");
  b.addTransition("0", "S1", "S0", "0");
  return b.build();
}

Machine zerosDetector() {
  // Fig. 4 item 4): the machine the Table 1 sequence produces.  Replaying
  // the paper's four reconfiguration cycles r1..r4 on onesDetector() yields
  // exactly these cells: r2 rewrites G(1, S1) to 0 and r4 rewrites
  // G(0, S0) to 1 (r1 and r3 rewrite cells with their unchanged values,
  // serving as traversal steps).  S1 now means "saw a one", S0 "saw a
  // zero"; the output flags runs of zeros instead of runs of ones.
  MachineBuilder b("zeros_detector");
  b.addInput("0");
  b.addInput("1");
  b.addOutput("0");
  b.addOutput("1");
  b.addState("S0");
  b.addState("S1");
  b.setResetState("S0");
  b.addTransition("0", "S0", "S0", "1");
  b.addTransition("1", "S0", "S1", "0");
  b.addTransition("0", "S1", "S0", "0");
  b.addTransition("1", "S1", "S1", "0");
  return b.build();
}

Machine example41Source() {
  // Chosen to produce exactly the paper's delta set against
  // example41Target(); see families.hpp.
  MachineBuilder b("example41_M");
  b.addInput("0");
  b.addInput("1");
  b.addOutput("0");
  b.addOutput("1");
  b.addState("S0");
  b.addState("S1");
  b.addState("S2");
  b.setResetState("S0");
  b.addTransition("1", "S0", "S1", "0");
  b.addTransition("0", "S0", "S0", "0");
  b.addTransition("1", "S1", "S2", "0");
  b.addTransition("0", "S1", "S0", "1");  // differs from M' -> delta
  b.addTransition("1", "S2", "S2", "1");  // differs from M' -> delta
  b.addTransition("0", "S2", "S0", "0");
  return b.build();
}

Machine example41Target() {
  MachineBuilder b("example41_Mprime");
  b.addInput("0");
  b.addInput("1");
  b.addOutput("0");
  b.addOutput("1");
  b.addState("S0");
  b.addState("S1");
  b.addState("S2");
  b.addState("S3");
  b.setResetState("S0");
  b.addTransition("1", "S0", "S1", "0");
  b.addTransition("0", "S0", "S0", "0");
  b.addTransition("1", "S1", "S2", "0");
  b.addTransition("0", "S1", "S0", "0");  // delta (output changed)
  b.addTransition("1", "S2", "S3", "0");  // delta (retargeted to new S3)
  b.addTransition("0", "S2", "S0", "0");
  b.addTransition("1", "S3", "S3", "1");  // delta (new state row)
  b.addTransition("0", "S3", "S0", "0");  // delta (new state row)
  return b.build();
}

Machine example42Source() {
  // Fig. 7: a ring under input 1, self-loops under 0; the (0, S3) cell
  // carries the 0/1 label and is the only cell that differs from M'.
  MachineBuilder b("example42_M");
  b.addInput("0");
  b.addInput("1");
  b.addOutput("0");
  b.addOutput("1");
  for (const char* s : {"S0", "S1", "S2", "S3"}) b.addState(s);
  b.setResetState("S0");
  b.addTransition("1", "S0", "S1", "0");
  b.addTransition("1", "S1", "S2", "0");
  b.addTransition("1", "S2", "S3", "0");
  b.addTransition("1", "S3", "S3", "0");
  b.addTransition("0", "S0", "S0", "0");
  b.addTransition("0", "S1", "S1", "0");
  b.addTransition("0", "S2", "S2", "0");
  b.addTransition("0", "S3", "S3", "1");  // differs from M' -> delta
  return b.build();
}

Machine example42Target() {
  MachineBuilder b("example42_Mprime");
  b.addInput("0");
  b.addInput("1");
  b.addOutput("0");
  b.addOutput("1");
  for (const char* s : {"S0", "S1", "S2", "S3"}) b.addState(s);
  b.setResetState("S0");
  b.addTransition("1", "S0", "S1", "0");
  b.addTransition("1", "S1", "S2", "0");
  b.addTransition("1", "S2", "S3", "0");
  b.addTransition("1", "S3", "S3", "0");
  b.addTransition("0", "S0", "S0", "0");
  b.addTransition("0", "S1", "S1", "0");
  b.addTransition("0", "S2", "S2", "0");
  b.addTransition("0", "S3", "S0", "0");  // the single delta transition
  return b.build();
}

Machine counterMachine(int modulus) {
  RFSM_CHECK(modulus >= 1, "counter modulus must be >= 1");
  MachineBuilder b("counter" + std::to_string(modulus));
  b.addInput("up");
  b.addInput("down");
  for (int k = 0; k < modulus; ++k) {
    b.addState("C" + std::to_string(k));
    b.addOutput("c" + std::to_string(k));
  }
  b.setResetState("C0");
  for (int k = 0; k < modulus; ++k) {
    const int up = (k + 1) % modulus;
    const int down = (k - 1 + modulus) % modulus;
    b.addTransition("up", "C" + std::to_string(k), "C" + std::to_string(up),
                    "c" + std::to_string(up));
    b.addTransition("down", "C" + std::to_string(k),
                    "C" + std::to_string(down), "c" + std::to_string(down));
  }
  return b.build();
}

Machine sequenceDetector(const std::string& pattern) {
  RFSM_CHECK(!pattern.empty(), "pattern must be non-empty");
  for (char c : pattern)
    RFSM_CHECK(c == '0' || c == '1', "pattern must be binary");
  const int m = static_cast<int>(pattern.size());

  // KMP failure function: fail[k] = length of the longest proper border of
  // pattern[0..k).
  std::vector<int> fail(static_cast<std::size_t>(m) + 1, 0);
  for (int k = 1; k < m; ++k) {
    int f = fail[static_cast<std::size_t>(k)];
    while (f > 0 && pattern[static_cast<std::size_t>(k)] !=
                        pattern[static_cast<std::size_t>(f)])
      f = fail[static_cast<std::size_t>(f)];
    if (pattern[static_cast<std::size_t>(k)] ==
        pattern[static_cast<std::size_t>(f)])
      ++f;
    fail[static_cast<std::size_t>(k) + 1] = f;
  }

  MachineBuilder b("detect_" + pattern);
  b.addInput("0");
  b.addInput("1");
  b.addOutput("0");
  b.addOutput("1");
  for (int q = 0; q < m; ++q) b.addState("Q" + std::to_string(q));
  b.setResetState("Q0");
  for (int q = 0; q < m; ++q) {
    for (char c : {'0', '1'}) {
      // Advance the KMP automaton from match length q on character c.
      int k = q;
      while (k > 0 && pattern[static_cast<std::size_t>(k)] != c)
        k = fail[static_cast<std::size_t>(k)];
      if (pattern[static_cast<std::size_t>(k)] == c) ++k;
      const bool matched = (k == m);
      const int nextState = matched ? fail[static_cast<std::size_t>(m)] : k;
      b.addTransition(std::string(1, c), "Q" + std::to_string(q),
                      "Q" + std::to_string(nextState), matched ? "1" : "0");
    }
  }
  return b.build();
}

}  // namespace rfsm
