#include "gen/mutator.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace rfsm {

Machine mutateMachine(const Machine& source, const MutationSpec& spec,
                      Rng& rng) {
  if (spec.deltaCount < 0)
    throw MutationError("delta count must be non-negative");
  if (spec.newStateCount < 0)
    throw MutationError("new state count must be non-negative");

  const int oldStates = source.stateCount();
  const int inputCount = source.inputCount();
  const int outputCount = source.outputCount();
  const int totalStates = oldStates + spec.newStateCount;

  const int newStateDeltas = spec.newStateCount * inputCount;
  const int inEdgeDeltas = spec.newStateCount;  // one retarget per new state
  const int modifiedCells = spec.deltaCount - newStateDeltas - inEdgeDeltas;
  if (modifiedCells < 0)
    throw MutationError(
        "delta count " + std::to_string(spec.deltaCount) +
        " too small: " + std::to_string(spec.newStateCount) +
        " new states already imply " +
        std::to_string(newStateDeltas + inEdgeDeltas) + " deltas");
  if (inEdgeDeltas + modifiedCells > oldStates * inputCount)
    throw MutationError("delta count exceeds the number of table cells");
  if (modifiedCells > 0 && oldStates + spec.newStateCount < 2 &&
      outputCount < 2)
    throw MutationError(
        "cannot modify cells: machine has a single state and a single "
        "output");

  // Extend the state alphabet.
  SymbolTable states;
  for (const auto& n : source.states().names()) states.intern(n);
  std::vector<SymbolId> newStates;
  for (int k = 0; k < spec.newStateCount; ++k) {
    // Pick a fresh name (source machines may already use the Nk scheme).
    int suffix = totalStates + k;
    for (;;) {
      const std::string candidate = "N" + std::to_string(suffix);
      if (!states.containsName(candidate)) {
        newStates.push_back(states.intern(candidate));
        break;
      }
      ++suffix;
    }
  }

  const auto cells = static_cast<std::size_t>(totalStates) *
                     static_cast<std::size_t>(inputCount);
  std::vector<SymbolId> next(cells, kNoSymbol);
  std::vector<SymbolId> out(cells, kNoSymbol);
  auto cellIndex = [&](SymbolId input, SymbolId state) {
    return static_cast<std::size_t>(state) *
               static_cast<std::size_t>(inputCount) +
           static_cast<std::size_t>(input);
  };
  for (SymbolId s = 0; s < oldStates; ++s)
    for (SymbolId i = 0; i < inputCount; ++i) {
      next[cellIndex(i, s)] = source.next(i, s);
      out[cellIndex(i, s)] = source.output(i, s);
    }

  // Rows of the new states: every cell is a delta by construction; fill
  // with random targets over the full state set and random outputs.
  for (const SymbolId s : newStates)
    for (SymbolId i = 0; i < inputCount; ++i) {
      next[cellIndex(i, s)] = static_cast<SymbolId>(
          rng.below(static_cast<std::uint64_t>(totalStates)));
      out[cellIndex(i, s)] = static_cast<SymbolId>(
          rng.below(static_cast<std::uint64_t>(outputCount)));
    }

  // Choose distinct old-state cells to modify: the first `inEdgeDeltas` of
  // them are retargeted into the new states, the rest changed randomly.
  std::vector<std::pair<SymbolId, SymbolId>> oldCells;  // (input, state)
  for (SymbolId s = 0; s < oldStates; ++s)
    for (SymbolId i = 0; i < inputCount; ++i) oldCells.emplace_back(i, s);
  rng.shuffle(oldCells);

  std::size_t pick = 0;
  for (int k = 0; k < inEdgeDeltas; ++k, ++pick) {
    const auto [i, s] = oldCells[pick];
    // Retargeting into a brand-new state is a delta regardless of output.
    next[cellIndex(i, s)] = newStates[static_cast<std::size_t>(k)];
  }
  for (int k = 0; k < modifiedCells; ++k, ++pick) {
    const auto [i, s] = oldCells[pick];
    const std::size_t c = cellIndex(i, s);
    // Change the next state and/or the output, ensuring the cell differs.
    const bool canChangeNext = totalStates >= 2;
    const bool canChangeOutput = outputCount >= 2;
    bool changeNext = canChangeNext && (rng.chance(0.7) || !canChangeOutput);
    const bool changeOutput =
        canChangeOutput && (rng.chance(0.5) || !changeNext);
    if (changeNext) {
      SymbolId target;
      do {
        target = static_cast<SymbolId>(
            rng.below(static_cast<std::uint64_t>(totalStates)));
      } while (target == next[c]);
      next[c] = target;
    }
    if (changeOutput) {
      SymbolId value;
      do {
        value = static_cast<SymbolId>(
            rng.below(static_cast<std::uint64_t>(outputCount)));
      } while (value == out[c]);
      out[c] = value;
    }
  }

  return Machine(spec.name, source.inputs(), source.outputs(),
                 std::move(states), source.resetState(), std::move(next),
                 std::move(out));
}

}  // namespace rfsm
