#include "gen/generator.hpp"

#include "util/check.hpp"

namespace rfsm {

Machine randomMachine(const RandomMachineSpec& spec, Rng& rng) {
  RFSM_CHECK(spec.stateCount >= 1, "need at least one state");
  RFSM_CHECK(spec.inputCount >= 1, "need at least one input");
  RFSM_CHECK(spec.outputCount >= 1, "need at least one output");

  SymbolTable states, inputs, outputs;
  for (int s = 0; s < spec.stateCount; ++s)
    states.intern("S" + std::to_string(s));
  for (int i = 0; i < spec.inputCount; ++i)
    inputs.intern("i" + std::to_string(i));
  for (int o = 0; o < spec.outputCount; ++o)
    outputs.intern("o" + std::to_string(o));

  const auto cells = static_cast<std::size_t>(spec.stateCount) *
                     static_cast<std::size_t>(spec.inputCount);
  std::vector<SymbolId> next(cells, kNoSymbol);
  std::vector<SymbolId> out(cells, kNoSymbol);
  auto cellIndex = [&](SymbolId input, SymbolId state) {
    return static_cast<std::size_t>(state) *
               static_cast<std::size_t>(spec.inputCount) +
           static_cast<std::size_t>(input);
  };

  if (spec.connectedFromReset) {
    // Random spanning structure: give every state s >= 1 one in-edge from a
    // lower-numbered state, each laid on a still-free table cell so later
    // assignments cannot overwrite it.
    for (SymbolId s = 1; s < spec.stateCount; ++s) {
      std::vector<std::pair<SymbolId, SymbolId>> freeCells;  // (input, from)
      for (SymbolId p = 0; p < s; ++p)
        for (SymbolId i = 0; i < spec.inputCount; ++i)
          if (next[cellIndex(i, p)] == kNoSymbol) freeCells.emplace_back(i, p);
      RFSM_CHECK(!freeCells.empty(), "no free cell for spanning edge");
      const auto [i, p] = freeCells[rng.pickIndex(freeCells)];
      next[cellIndex(i, p)] = s;
      out[cellIndex(i, p)] =
          static_cast<SymbolId>(rng.below(static_cast<std::uint64_t>(
              spec.outputCount)));
    }
  }

  for (std::size_t c = 0; c < cells; ++c) {
    if (next[c] == kNoSymbol)
      next[c] = static_cast<SymbolId>(
          rng.below(static_cast<std::uint64_t>(spec.stateCount)));
    if (out[c] == kNoSymbol)
      out[c] = static_cast<SymbolId>(
          rng.below(static_cast<std::uint64_t>(spec.outputCount)));
  }

  return Machine(spec.name, std::move(inputs), std::move(outputs),
                 std::move(states), 0, std::move(next), std::move(out));
}

}  // namespace rfsm
