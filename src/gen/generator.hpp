// Seeded random machine generation.
//
// Table 2 of the paper reports reconfiguration program lengths over FSMs
// with a controlled number of delta transitions; the source benchmarks are
// not published, so we regenerate the axis with seeded random machines
// (DESIGN.md, substitution table).  randomMachine guarantees the
// completely-specified deterministic class and (optionally) that every
// state is reachable from reset, so delta sources are reachable the way
// they would be in a real controller.
#pragma once

#include <string>

#include "fsm/machine.hpp"
#include "util/rng.hpp"

namespace rfsm {

/// Parameters of a random machine.
struct RandomMachineSpec {
  int stateCount = 8;
  int inputCount = 2;
  int outputCount = 2;
  /// Guarantee every state reachable from reset (via a random spanning
  /// arborescence laid over distinct table cells).
  bool connectedFromReset = true;
  std::string name = "random";
};

/// Generates a random deterministic completely-specified Mealy machine.
/// States are named S0..S{n-1} (S0 = reset), inputs i0.., outputs o0..
Machine randomMachine(const RandomMachineSpec& spec, Rng& rng);

}  // namespace rfsm
