// Named machine families: the paper's running examples plus a few classic
// controller shapes used by tests, examples, and benches.
#pragma once

#include <string>
#include <vector>

#include "fsm/machine.hpp"

namespace rfsm {

/// Paper Example 2.1 / Fig. 3: the Mealy machine that outputs 1 while two
/// or more successive ones have been seen (until the next zero).
/// I = {0, 1}, O = {0, 1}, S = {S0, S1}, reset S0.
Machine onesDetector();

/// Fig. 4 item 4): the reconfigured counterpart counting zeros instead.
Machine zerosDetector();

/// Paper Example 4.1 / Fig. 6: machine M (3 states S0..S2).
/// Constructed so that migrating to example41Target() yields exactly the
/// paper's delta set {(0,S1,S0,0), (1,S2,S3,0), (1,S3,S3,1), (0,S3,S0,0)}.
Machine example41Source();

/// Paper Example 4.1 / Fig. 6: machine M' (4 states S0..S3).
Machine example41Target();

/// Paper Example 4.2 / Fig. 7: machine M — a ring S0 ->1 S1 ->1 S2 ->1 S3
/// with self-loops under 0 (except S3, whose 0-cell differs from M').
Machine example42Source();

/// Paper Example 4.2 / Fig. 7: machine M' — as M but (0, S3) -> S0 / 0;
/// exactly one delta transition.
Machine example42Target();

/// Modulo-n up/down counter: inputs {up, down}, outputs the current count
/// c0..c{n-1} (Moore-style: every edge into state k emits ck).  n >= 1.
Machine counterMachine(int modulus);

/// Detector for a fixed binary pattern over inputs {0, 1}: emits 1 exactly
/// when the last |pattern| inputs equal `pattern` (overlaps allowed).
/// Built as the KMP automaton of the pattern.  Pattern must be non-empty
/// and consist of '0'/'1'.
Machine sequenceDetector(const std::string& pattern);

}  // namespace rfsm
