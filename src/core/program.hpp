// Reconfiguration programs Z = (z_0, ..., z_n) — paper Sec. 4.2.
//
// Each step costs exactly one clock cycle of the Fig. 5 hardware:
//  * Reset     — the RST-MUX forces the reset state (the paper's
//                "reset transition", footnote 4).
//  * Traverse  — a normal transition under a forced internal input ir
//                (H_i selects ir, no RAM write).
//  * Rewrite   — the reconfiguration proper: while traversing cell
//                (ir, s) the Reconfigurator writes F(ir, s) := H_f and
//                G(ir, s) := H_g, and the machine moves to H_f.  Temporary
//                transitions (Sec. 4.3) are rewrites flagged `temporary`.
#pragma once

#include <string>
#include <vector>

#include "fsm/machine.hpp"
#include "util/check.hpp"

namespace rfsm {

class MigrationContext;

/// Thrown by programFromText on malformed program files; the message names
/// the offending line.
class ProgramParseError : public Error {
 public:
  explicit ProgramParseError(const std::string& what) : Error(what) {}
};

/// Kind of a single reconfiguration step.
enum class StepKind { kReset, kTraverse, kRewrite };

/// One step z_k of a reconfiguration program (one clock cycle).
struct ReconfigStep {
  StepKind kind = StepKind::kReset;
  /// Traverse/Rewrite: the internal input ir = H_i(i, r) (superset id).
  SymbolId input = kNoSymbol;
  /// Rewrite only: the new next state H_f(r) (superset id).
  SymbolId nextState = kNoSymbol;
  /// Rewrite only: the new output H_g(r) (superset id).
  SymbolId output = kNoSymbol;
  /// Rewrite only: true when this writes a *temporary* transition that a
  /// later step must repair (Sec. 4.3).
  bool temporary = false;

  bool operator==(const ReconfigStep&) const = default;

  static ReconfigStep reset();
  static ReconfigStep traverse(SymbolId input);
  static ReconfigStep rewrite(SymbolId input, SymbolId nextState,
                              SymbolId output, bool temporary = false);
};

/// A complete reconfiguration program plus bookkeeping counters.
struct ReconfigurationProgram {
  std::vector<ReconfigStep> steps;

  /// |Z|: every step costs one transition/cycle (paper counts reset
  /// transitions too, cf. proof of Thm. 4.2).
  int length() const { return static_cast<int>(steps.size()); }

  int resetCount() const;
  int traverseCount() const;
  int rewriteCount() const;
  int temporaryCount() const;
};

/// Pretty-prints one step using the context's symbol names.
std::string describeStep(const MigrationContext& context,
                         const ReconfigStep& step);

/// Pretty-prints a whole program, one step per line.
std::string describeProgram(const MigrationContext& context,
                            const ReconfigurationProgram& program);

// --- Text exchange format ------------------------------------------------
//
//   rfsm-program v1
//   steps <n>
//   reset
//   traverse <input>
//   rewrite <input> <next-state> <output>
//   rewrite! <input> <next-state> <output>      (temporary transition)
//   end
//
// Symbols are superset-alphabet names, resolved (and range-checked) against
// the migration context at parse time; `rfsmc migrate --program-out`
// produces it and `rfsmc inject/resume` consume it.

/// Renders `program` in the text format above.
std::string programToText(const MigrationContext& context,
                          const ReconfigurationProgram& program);

/// Parses the text format.  Throws ProgramParseError (never a contract
/// violation) on malformed, truncated, or out-of-alphabet input, naming the
/// first offending line.
ReconfigurationProgram programFromText(const MigrationContext& context,
                                       const std::string& text);

}  // namespace rfsm
