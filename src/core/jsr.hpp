// The JSR (Jump, Set, Return) heuristic — paper Sec. 4.4.
//
// For every delta transition: jump from the terminal state S0' to the delta
// source via a temporary transition over a fixed input condition i0, set
// (rewrite) the delta, return by reset.  Finally the temporary cell
// (i0, S0') itself is rewritten to its M' value and a last reset ends the
// program in S0'.  This constructively proves Thm. 4.1 (feasibility) and
// achieves the Thm. 4.2 upper bound |Z| <= 3(|Td| + 1).
#pragma once

#include "core/migration.hpp"
#include "core/program.hpp"

namespace rfsm {

/// Options for planJsr.
struct JsrOptions {
  /// The fixed input condition i0 used by every temporary transition; must
  /// be an input of M' (superset id).  kNoSymbol = the first input of M'.
  SymbolId tempInput = kNoSymbol;
};

/// Computes the JSR reconfiguration program.  The result is always valid
/// (validateProgram accepts it) and has length
///   3 * |Td| + 3   when the temporary cell (i0, S0') is not itself a delta,
///   3 * |Td|       when it is (that delta is folded into the repair step);
/// both respect the Thm. 4.2 bound 3 * (|Td| + 1).
ReconfigurationProgram planJsr(const MigrationContext& context,
                               const JsrOptions& options = {});

}  // namespace rfsm
