// Partial reconfiguration: output-only and transition-only migrations.
//
// Def. 4.1 poses the problem "including also the case of partial
// reconfiguration": often only the output function G changes (a recoloring
// of the same control skeleton) or only the transition function F.  These
// special cases have more structure than the general problem:
//
//  * Output-only (F' = F on a common domain): every rewrite keeps the
//    machine's graph intact, so no temporary transition is ever created and
//    ordering the deltas is a pure shortest-walk problem on a *fixed*
//    graph.  For small |Td| the optimal order is computable by Held-Karp
//    over the static distance matrix — something the general problem does
//    not admit because rewrites mutate the graph.
//  * Transition-only (G' = G wherever both are defined): no special
//    structure is gained (the graph still mutates); provided for symmetry
//    and classification.
#pragma once

#include <optional>

#include "core/migration.hpp"
#include "core/program.hpp"

namespace rfsm {

/// Classification of a migration's delta transitions.
struct DeltaClassification {
  int outputOnly = 0;      // same F value, different G, common domain
  int transitionOnly = 0;  // different F value, same G, common domain
  int both = 0;            // both functions differ, common domain
  int structural = 0;      // involves symbols outside the source alphabets

  int total() const {
    return outputOnly + transitionOnly + both + structural;
  }
};

/// Classifies every delta transition of the migration.
DeltaClassification classifyDeltas(const MigrationContext& context);

/// True when the migration only changes the output function: alphabets and
/// state sets coincide and every delta is output-only.  Such migrations
/// never need temporary transitions.
bool isOutputOnlyMigration(const MigrationContext& context);

/// Plans an output-only migration by walking the *fixed* transition graph
/// of M between delta cells (greedy nearest-delta order).  Every step is a
/// Traverse or an in-place Rewrite that preserves F; the graph never
/// changes.  Requires isOutputOnlyMigration(); throws MigrationError
/// otherwise.
ReconfigurationProgram planOutputOnlyGreedy(const MigrationContext& context);

/// Optimal delta order for an output-only migration via Held-Karp on the
/// static distance matrix; exact because the graph is fixed.  Returns
/// nullopt when |Td| > maxDeltas (Held-Karp is O(2^n n^2)).
std::optional<ReconfigurationProgram> planOutputOnlyOptimal(
    const MigrationContext& context, int maxDeltas = 14);

}  // namespace rfsm
