// Reconfiguration-program planners (paper Secs. 4.4 and 4.6).
//
// The ordering of delta transitions is a TSP-like problem (Sec. 4.6); every
// planner here produces a valid program, they differ in how they order the
// deltas and how they connect consecutive deltas:
//
//  * planJsr (core/jsr.hpp)      — the paper's constructive heuristic.
//  * decodeOrder                 — the paper's EA decoder: given an order,
//    connect consecutive deltas by an existing path of length <= 1, else by
//    reset + temporary transition (DecodeRule::kPaper); kBestOfThree is an
//    improved decoder for the ablation study that also considers longer
//    walks and reset-then-walk connections.
//  * planGreedy                  — nearest-neighbour order, paper decoder.
//  * planEvolutionary            — the paper's EA over delta permutations.
//  * planExact                   — exhaustive search over orders (small
//    |Td| only); optimal within the decoder family.
//  * planNoTemporary             — ablation: path-following only, temporary
//    transitions used solely when a delta source is otherwise unreachable.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/migration.hpp"
#include "core/program.hpp"
#include "ea/evolution.hpp"
#include "util/deadline.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace rfsm {

/// How decodeOrder connects the current state to the next delta source.
enum class DecodeRule {
  /// Paper Sec. 4.6: existing path of length <= 1, else reset + temporary.
  kPaper,
  /// Min of {walk from here, reset + walk, reset + temporary}; walks may be
  /// any length.  Strictly better than kPaper, used by the ablation bench.
  kBestOfThree,
};

/// Options shared by the order-decoding planners.
struct DecodeOptions {
  /// Fixed input condition i0 for temporary transitions (superset id);
  /// kNoSymbol = first input of M'.
  SymbolId tempInput = kNoSymbol;
  DecodeRule rule = DecodeRule::kPaper;
  /// When false, temporary transitions are only used for otherwise
  /// unreachable delta sources (ablation A2).
  bool allowTemporary = true;
  /// Cooperative cancellation: polled once per decode and per BFS scan;
  /// an expired token unwinds the planner with CancelledError.  nullptr =
  /// not cancellable.
  const CancelToken* cancel = nullptr;
};

/// Decodes a permutation of the (loop-)delta transitions into a program.
/// `order` must be a permutation of 0..n-1 where n is the number of delta
/// transitions excluding the one living in the temporary cell (i0, S0') —
/// see loopDeltaCount().
ReconfigurationProgram decodeOrder(const MigrationContext& context,
                                   const std::vector<int>& order,
                                   const DecodeOptions& options = {});

/// Number of deltas a decode order ranges over (deltas not in the temporary
/// cell (i0, S0')).
int loopDeltaCount(const MigrationContext& context,
                   SymbolId tempInput = kNoSymbol);

/// Nearest-neighbour ordering under the decoder's connection cost.
ReconfigurationProgram planGreedy(const MigrationContext& context,
                                  const DecodeOptions& options = {});

/// Result of the EA planner, with search statistics for the ablation bench.
struct EvolutionaryPlan {
  ReconfigurationProgram program;
  double initialBest = 0.0;   // best fitness in the random initial population
  int evaluations = 0;
  std::vector<double> bestPerGeneration;
};

/// The paper's evolutionary heuristic (Sec. 4.6).  A non-null `pool`
/// parallelizes the fitness evaluations; the result is bit-identical for
/// every job count (see evolvePermutation).
EvolutionaryPlan planEvolutionary(const MigrationContext& context,
                                  const EvolutionConfig& config, Rng& rng,
                                  const DecodeOptions& options = {},
                                  ThreadPool* pool = nullptr);

/// Exhaustive search over all delta orders; returns the shortest program.
/// Refuses (returns nullopt) when loopDeltaCount > maxDeltas.
std::optional<ReconfigurationProgram> planExact(
    const MigrationContext& context, int maxDeltas = 9,
    const DecodeOptions& options = {});

/// Ablation: connect deltas by shortest existing walks; temporary
/// transitions only as a last resort for unreachable sources.
ReconfigurationProgram planNoTemporary(const MigrationContext& context,
                                       SymbolId tempInput = kNoSymbol);

// --- Batch planning front end -------------------------------------------
//
// planAll runs one planner over many independent migration instances,
// `jobs`-way parallel.  Instance k draws from the independent rng stream
// (seed, k), so the output is bit-identical for every job count — the
// contract every bench and the CLI rely on.

/// Plans one instance; must be deterministic given (context, rng) and
/// thread-safe (planners that share nothing but the const context are).
using BatchPlanFn =
    std::function<ReconfigurationProgram(const MigrationContext&, Rng&)>;

/// Options of a batch planning call.
struct BatchOptions {
  /// Total parallelism (including the calling thread); <= 0 selects one
  /// job per hardware thread.
  int jobs = 1;
  /// Base seed; instance k plans with Rng(seed).substream(substreamBase+k).
  std::uint64_t seed = 1;
  /// Offset into the substream space: a *shard* of a larger batch sets the
  /// shard's global start index here, so a shard re-planned after a worker
  /// crash (on any host, with any job count) draws the exact streams the
  /// unsharded batch would have — the bit-identical-recovery contract of
  /// the planner service.
  std::uint64_t substreamBase = 0;
  /// Cooperative cancellation, polled before each instance (and threaded
  /// into the per-instance planners).  Instances not yet started when the
  /// token expires are reported as cancelled failures.
  const CancelToken* cancel = nullptr;
};

/// Per-instance failure of a batch run (satellite of the poisoned-slot
/// contract: one bad instance must not take down the batch).
struct InstanceFailure {
  std::size_t instance = 0;
  std::string error;
  bool cancelled = false;  ///< deadline/cancel, not a planner defect

  bool operator==(const InstanceFailure&) const = default;
};

/// Result of a failure-tolerant batch run.  `programs` is indexed by
/// instance; a slot named in `failures` is poisoned (empty program) and
/// must not be consumed.
struct BatchReport {
  std::vector<ReconfigurationProgram> programs;
  std::vector<InstanceFailure> failures;  // sorted by instance

  bool ok() const { return failures.empty(); }
};

/// Thrown by planAll when instances failed; lists the failed instances.
class BatchError : public Error {
 public:
  BatchError(const std::string& what, std::vector<InstanceFailure> failures)
      : Error(what), failures_(std::move(failures)) {}
  const std::vector<InstanceFailure>& failures() const { return failures_; }

 private:
  std::vector<InstanceFailure> failures_;
};

/// Plans every instance with `plan`, isolating failures: an instance whose
/// planner throws poisons only its own result slot (recorded in
/// failures + the batch.instance_failures metric); every other instance
/// still runs.  Results arrive in instance order.
BatchReport planAllChecked(const std::vector<MigrationContext>& instances,
                           const BatchPlanFn& plan,
                           const BatchOptions& options = {});

/// Plans every instance with `plan`.  Results arrive in instance order.
/// Failures are isolated per instance (see planAllChecked); when any
/// occurred, the whole batch still drains and a BatchError naming the
/// failed instances is thrown afterwards.
std::vector<ReconfigurationProgram> planAll(
    const std::vector<MigrationContext>& instances, const BatchPlanFn& plan,
    const BatchOptions& options = {});

/// EA over every instance, with full per-instance search statistics (the
/// Table 2 / ablation benches need more than the programs).  Same
/// determinism contract as planAll.
std::vector<EvolutionaryPlan> planEvolutionaryBatch(
    const std::vector<MigrationContext>& instances,
    const EvolutionConfig& config, const BatchOptions& options = {},
    const DecodeOptions& decode = {});

}  // namespace rfsm
