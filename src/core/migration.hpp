// Migration problems M -> M' over superset alphabets (paper Defs. 4.1/4.2).
//
// A MigrationContext merges the alphabets of a given machine M and a target
// machine M' into the superset alphabets I_super, O_super, S_super of Def.
// 4.1, lifts both machines' transitions into superset ids, and computes the
// set of *delta transitions* T_d of Def. 4.2 — the (input, state) cells of
// M' that a reconfiguration program must write.
#pragma once

#include <string>
#include <vector>

#include "fsm/machine.hpp"

namespace rfsm {

/// A migration problem instance.  Lifetimes: the context copies everything
/// it needs from the two machines; it does not retain references.
class MigrationContext {
 public:
  /// Builds the problem for migrating `source` (M) into `target` (M').
  /// Throws FsmError when the machines are degenerate (empty alphabets are
  /// already impossible by Machine's invariants, so in practice this always
  /// succeeds — Thm. 4.1: migration is always feasible).
  MigrationContext(const Machine& source, const Machine& target);

  /// Superset alphabets (Def. 4.1).  Ids used by every other accessor are
  /// ids of these tables.
  const SymbolTable& inputs() const { return inputs_; }
  const SymbolTable& outputs() const { return outputs_; }
  const SymbolTable& states() const { return states_; }

  /// Reset state of M (superset id).
  SymbolId sourceReset() const { return sourceReset_; }
  /// Reset state S0' of M' (superset id); the state the hardware reset
  /// transition forces (footnote 4 of the paper).
  SymbolId targetReset() const { return targetReset_; }

  /// Membership of a superset symbol in the *source* alphabets.
  bool inSourceInputs(SymbolId i) const;
  bool inSourceStates(SymbolId s) const;
  bool inSourceOutputs(SymbolId o) const;

  /// Membership of a superset symbol in the *target* alphabets.
  bool inTargetInputs(SymbolId i) const;
  bool inTargetStates(SymbolId s) const;

  /// F(i, s) / G(i, s) of the source machine, in superset ids; i and s must
  /// be in the source alphabets.
  SymbolId sourceNext(SymbolId input, SymbolId state) const;
  SymbolId sourceOutput(SymbolId input, SymbolId state) const;

  /// F'(i, s) / G'(i, s) of the target machine, in superset ids; i and s
  /// must be in the target alphabets.
  SymbolId targetNext(SymbolId input, SymbolId state) const;
  SymbolId targetOutput(SymbolId input, SymbolId state) const;

  /// The total transition set T' of M' (Def. 4.2) in superset ids, ordered
  /// by (state, input).
  const std::vector<Transition>& targetTransitions() const {
    return targetTransitions_;
  }

  /// The delta transitions T_d (Def. 4.2) in the same order.
  const std::vector<Transition>& deltaTransitions() const {
    return deltaTransitions_;
  }

  int deltaCount() const {
    return static_cast<int>(deltaTransitions_.size());
  }

  /// The source machine as given (original ids).
  const Machine& sourceMachine() const { return source_; }
  /// The target machine as given (original ids).
  const Machine& targetMachine() const { return target_; }

  /// Maps an id of the source machine's table into the superset id.
  SymbolId liftSourceInput(SymbolId i) const;
  SymbolId liftSourceState(SymbolId s) const;
  /// Maps an id of the target machine's table into the superset id.
  SymbolId liftTargetInput(SymbolId i) const;
  SymbolId liftTargetState(SymbolId s) const;
  SymbolId liftTargetOutput(SymbolId o) const;

  /// Human-readable rendering of a superset-id transition.
  std::string describe(const Transition& t) const;

 private:
  Machine source_;
  Machine target_;
  SymbolTable inputs_, outputs_, states_;
  std::vector<SymbolId> sourceInputMap_, sourceOutputMap_, sourceStateMap_;
  std::vector<SymbolId> targetInputMap_, targetOutputMap_, targetStateMap_;
  std::vector<char> inSourceInputs_, inSourceOutputs_, inSourceStates_;
  std::vector<char> inTargetInputs_, inTargetStates_;
  // Source/target tables re-indexed by superset ids (entries for symbols
  // outside the respective machine's alphabets are kNoSymbol).
  std::vector<SymbolId> sourceNext_, sourceOut_;
  std::vector<SymbolId> targetNext_, targetOut_;
  SymbolId sourceReset_ = kNoSymbol;
  SymbolId targetReset_ = kNoSymbol;
  std::vector<Transition> targetTransitions_;
  std::vector<Transition> deltaTransitions_;
};

}  // namespace rfsm
