#include "core/migration.hpp"

#include "util/check.hpp"

namespace rfsm {
namespace {

std::vector<char> membership(int supersetSize,
                             const std::vector<SymbolId>& liftMap) {
  std::vector<char> in(static_cast<std::size_t>(supersetSize), 0);
  for (SymbolId id : liftMap) in[static_cast<std::size_t>(id)] = 1;
  return in;
}

}  // namespace

MigrationContext::MigrationContext(const Machine& source,
                                   const Machine& target)
    : source_(source), target_(target) {
  // Superset alphabets: symbols of M first, then the new symbols of M'.
  MergedSymbols inputs = mergeSymbols(source.inputs(), target.inputs());
  MergedSymbols outputs = mergeSymbols(source.outputs(), target.outputs());
  MergedSymbols states = mergeSymbols(source.states(), target.states());
  inputs_ = std::move(inputs.table);
  outputs_ = std::move(outputs.table);
  states_ = std::move(states.table);
  sourceInputMap_ = std::move(inputs.fromA);
  targetInputMap_ = std::move(inputs.fromB);
  sourceOutputMap_ = std::move(outputs.fromA);
  targetOutputMap_ = std::move(outputs.fromB);
  sourceStateMap_ = std::move(states.fromA);
  targetStateMap_ = std::move(states.fromB);

  inSourceInputs_ = membership(inputs_.size(), sourceInputMap_);
  inSourceOutputs_ = membership(outputs_.size(), sourceOutputMap_);
  inSourceStates_ = membership(states_.size(), sourceStateMap_);
  inTargetInputs_ = membership(inputs_.size(), targetInputMap_);
  inTargetStates_ = membership(states_.size(), targetStateMap_);

  sourceReset_ =
      sourceStateMap_[static_cast<std::size_t>(source.resetState())];
  targetReset_ =
      targetStateMap_[static_cast<std::size_t>(target.resetState())];

  // Re-index both machines' tables by superset (input, state) cells.
  const auto cells = static_cast<std::size_t>(states_.size()) *
                     static_cast<std::size_t>(inputs_.size());
  sourceNext_.assign(cells, kNoSymbol);
  sourceOut_.assign(cells, kNoSymbol);
  targetNext_.assign(cells, kNoSymbol);
  targetOut_.assign(cells, kNoSymbol);
  auto cellIndex = [&](SymbolId input, SymbolId state) {
    return static_cast<std::size_t>(state) *
               static_cast<std::size_t>(inputs_.size()) +
           static_cast<std::size_t>(input);
  };
  for (SymbolId s = 0; s < source.stateCount(); ++s) {
    for (SymbolId i = 0; i < source.inputCount(); ++i) {
      const std::size_t c =
          cellIndex(sourceInputMap_[static_cast<std::size_t>(i)],
                    sourceStateMap_[static_cast<std::size_t>(s)]);
      sourceNext_[c] =
          sourceStateMap_[static_cast<std::size_t>(source.next(i, s))];
      sourceOut_[c] =
          sourceOutputMap_[static_cast<std::size_t>(source.output(i, s))];
    }
  }
  for (SymbolId s = 0; s < target.stateCount(); ++s) {
    for (SymbolId i = 0; i < target.inputCount(); ++i) {
      const std::size_t c =
          cellIndex(targetInputMap_[static_cast<std::size_t>(i)],
                    targetStateMap_[static_cast<std::size_t>(s)]);
      targetNext_[c] =
          targetStateMap_[static_cast<std::size_t>(target.next(i, s))];
      targetOut_[c] =
          targetOutputMap_[static_cast<std::size_t>(target.output(i, s))];
    }
  }

  // T' ordered by (state, input) in *target* table order, then lift.
  for (SymbolId s = 0; s < target.stateCount(); ++s) {
    for (SymbolId i = 0; i < target.inputCount(); ++i) {
      const Transition lifted{
          targetInputMap_[static_cast<std::size_t>(i)],
          targetStateMap_[static_cast<std::size_t>(s)],
          targetStateMap_[static_cast<std::size_t>(target.next(i, s))],
          targetOutputMap_[static_cast<std::size_t>(target.output(i, s))]};
      targetTransitions_.push_back(lifted);
    }
  }

  // Def. 4.2: t = (i, sx, sy, o) in T' is a delta transition iff
  //   i not in I, or sx not in S, or sy not in S, or o not in O, or
  //   sy != F(i, sx)  (when i in I cap I' and sx in S cap S'), or
  //   o  != G(i, sx)  (same guard).
  for (const Transition& t : targetTransitions_) {
    const bool outsideSource =
        !inSourceInputs(t.input) || !inSourceStates(t.from) ||
        !inSourceStates(t.to) || !inSourceOutputs(t.output);
    bool differs = false;
    if (!outsideSource) {
      const std::size_t c = cellIndex(t.input, t.from);
      differs = sourceNext_[c] != t.to || sourceOut_[c] != t.output;
    }
    if (outsideSource || differs) deltaTransitions_.push_back(t);
  }
}

bool MigrationContext::inSourceInputs(SymbolId i) const {
  RFSM_CHECK(inputs_.contains(i), "input id out of superset range");
  return inSourceInputs_[static_cast<std::size_t>(i)] != 0;
}

bool MigrationContext::inSourceStates(SymbolId s) const {
  RFSM_CHECK(states_.contains(s), "state id out of superset range");
  return inSourceStates_[static_cast<std::size_t>(s)] != 0;
}

bool MigrationContext::inSourceOutputs(SymbolId o) const {
  RFSM_CHECK(outputs_.contains(o), "output id out of superset range");
  return inSourceOutputs_[static_cast<std::size_t>(o)] != 0;
}

bool MigrationContext::inTargetInputs(SymbolId i) const {
  RFSM_CHECK(inputs_.contains(i), "input id out of superset range");
  return inTargetInputs_[static_cast<std::size_t>(i)] != 0;
}

bool MigrationContext::inTargetStates(SymbolId s) const {
  RFSM_CHECK(states_.contains(s), "state id out of superset range");
  return inTargetStates_[static_cast<std::size_t>(s)] != 0;
}

SymbolId MigrationContext::sourceNext(SymbolId input, SymbolId state) const {
  RFSM_CHECK(inSourceInputs(input) && inSourceStates(state),
             "sourceNext outside source domain");
  return sourceNext_[static_cast<std::size_t>(state) *
                         static_cast<std::size_t>(inputs_.size()) +
                     static_cast<std::size_t>(input)];
}

SymbolId MigrationContext::sourceOutput(SymbolId input, SymbolId state) const {
  RFSM_CHECK(inSourceInputs(input) && inSourceStates(state),
             "sourceOutput outside source domain");
  return sourceOut_[static_cast<std::size_t>(state) *
                        static_cast<std::size_t>(inputs_.size()) +
                    static_cast<std::size_t>(input)];
}

SymbolId MigrationContext::targetNext(SymbolId input, SymbolId state) const {
  RFSM_CHECK(inTargetInputs(input) && inTargetStates(state),
             "targetNext outside target domain");
  return targetNext_[static_cast<std::size_t>(state) *
                         static_cast<std::size_t>(inputs_.size()) +
                     static_cast<std::size_t>(input)];
}

SymbolId MigrationContext::targetOutput(SymbolId input, SymbolId state) const {
  RFSM_CHECK(inTargetInputs(input) && inTargetStates(state),
             "targetOutput outside target domain");
  return targetOut_[static_cast<std::size_t>(state) *
                        static_cast<std::size_t>(inputs_.size()) +
                    static_cast<std::size_t>(input)];
}

SymbolId MigrationContext::liftSourceInput(SymbolId i) const {
  RFSM_CHECK(source_.inputs().contains(i), "source input id out of range");
  return sourceInputMap_[static_cast<std::size_t>(i)];
}

SymbolId MigrationContext::liftSourceState(SymbolId s) const {
  RFSM_CHECK(source_.states().contains(s), "source state id out of range");
  return sourceStateMap_[static_cast<std::size_t>(s)];
}

SymbolId MigrationContext::liftTargetInput(SymbolId i) const {
  RFSM_CHECK(target_.inputs().contains(i), "target input id out of range");
  return targetInputMap_[static_cast<std::size_t>(i)];
}

SymbolId MigrationContext::liftTargetState(SymbolId s) const {
  RFSM_CHECK(target_.states().contains(s), "target state id out of range");
  return targetStateMap_[static_cast<std::size_t>(s)];
}

SymbolId MigrationContext::liftTargetOutput(SymbolId o) const {
  RFSM_CHECK(target_.outputs().contains(o), "target output id out of range");
  return targetOutputMap_[static_cast<std::size_t>(o)];
}

std::string MigrationContext::describe(const Transition& t) const {
  return "(" + inputs_.name(t.input) + ", " + states_.name(t.from) + ", " +
         states_.name(t.to) + ", " + outputs_.name(t.output) + ")";
}

}  // namespace rfsm
