// Guarded migration: fault injection, detection, and recovery around a
// reconfiguration program.
//
// A live reconfiguration can be disturbed in two ways (util/fault.hpp):
// power loss cuts the program short, and SEU bit flips silently corrupt
// F/G RAM cells.  runGuardedMigration executes a program under such a
// scenario and then *guarantees* one of three outcomes:
//  * kVerified   — the machine provably realizes M' (integrity scan +
//                  table check + optional W-method conformance),
//  * kRolledBack — recovery failed, but the machine was restored to a
//                  verified copy of the source machine M, or
//  * kFailed     — neither could be established (e.g. a stuck-at fault
//                  inside the source domain); the report says why.
// There is no fourth, silent-corruption outcome: every path re-verifies.
//
// Recovery escalates: resume the journaled remainder after an abort, then
// bounded retry of *patch* programs (planRepair: temporary transitions
// around damaged cells, corrupted cells scrubbed first), each attempt
// preceded by an exponential backoff in simulated cycles, and finally a
// rollback to the pre-migration checkpoint.
#pragma once

#include <string>

#include "core/journal.hpp"
#include "core/migration.hpp"
#include "core/mutable_machine.hpp"
#include "core/program.hpp"
#include "util/fault.hpp"

namespace rfsm {

/// Knobs of the recovery engine.
struct RecoveryOptions {
  /// Patch attempts before degrading to rollback.
  int maxAttempts = 3;
  /// Backoff before patch attempt k costs backoffBaseCycles << k simulated
  /// cycles (no wall clock — results must be bit-identical across runs).
  int backoffBaseCycles = 8;
  /// Temporary-transition input for planRepair (kNoSymbol = planner picks).
  SymbolId tempInput = kNoSymbol;
  /// Run a W-method conformance suite on top of the table check (skipped
  /// with a note when the target machine is not minimal).
  bool conformanceCheck = true;
  /// Deactivate corrupted cells outside the target domain instead of
  /// leaving stale garbage behind.
  bool scrubOutOfDomain = true;
};

/// How a guarded migration ended.
enum class MigrationOutcome { kVerified, kRolledBack, kFailed };

const char* toString(MigrationOutcome outcome);

/// Full account of one guarded migration.
struct GuardedMigrationReport {
  MigrationOutcome outcome = MigrationOutcome::kFailed;
  /// A disturbance was *observed* (integrity scan hit, table mismatch, or
  /// an unexecutable step) — not merely injected.
  bool faultDetected = false;
  /// Execution continued from a journaled prefix after an abort.
  bool resumed = false;
  int patchAttempts = 0;
  /// Damaged/missing target-domain cells rewritten by patch programs.
  int cellsPatched = 0;
  /// Corrupted out-of-domain cells deactivated by the scrubber.
  int cellsScrubbed = 0;
  /// Simulated cycles spent backing off between patch attempts.
  int backoffCycles = 0;
  /// Program + patch steps actually executed (one cycle each).
  int executedCycles = 0;
  /// Steps of the original program known committed (journal, or executed).
  int journalCommitted = 0;
  /// Human-readable story: what was detected and how it was handled.
  std::string detail;

  bool silentCorruption() const {
    return outcome == MigrationOutcome::kFailed;
  }
};

/// Executes `program` on `machine` under `scenario`, detecting and
/// recovering from the injected faults.  When `journal` is non-null it
/// follows WAL discipline: intent before execution, a commit per step.  A
/// journal that is already active with the same program resumes from its
/// committed prefix (the machine must be in the matching post-prefix
/// state, e.g. reconstructed by replaying the prefix).
GuardedMigrationReport runGuardedMigration(
    MutableMachine& machine, const ReconfigurationProgram& program,
    const fault::FaultScenario& scenario, const RecoveryOptions& options = {},
    ProgramJournal* journal = nullptr);

/// The patch half on its own: from whatever state/damage `machine` is in,
/// scrub + planRepair + verify with bounded retries (no rollback — the
/// caller owns the checkpoint).  Outcome is kVerified or kFailed.
GuardedMigrationReport repairToTarget(MutableMachine& machine,
                                      const RecoveryOptions& options = {});

}  // namespace rfsm
