#include "core/recovery.hpp"

#include <algorithm>

#include "core/apply.hpp"
#include "core/repair.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace rfsm {
namespace {

/// The (input, state) coordinates of a flat fault-geometry cell index
/// (cell = state * |I_super| + input, the MutableMachine layout).
TotalState toCoords(const MigrationContext& context, std::size_t cell) {
  const auto inputs = static_cast<std::size_t>(context.inputs().size());
  return TotalState{static_cast<SymbolId>(cell % inputs),
                    static_cast<SymbolId>(cell / inputs)};
}

/// Fired stuck-at faults: a stuck cell re-corrupts after every authorized
/// write that lands on it, which is what makes patching futile and forces
/// the degradation to rollback.
class StickySet {
 public:
  void fire(const fault::CellFault& f) { faults_.push_back(f); }

  /// Re-damages cell (input, state) if a fired stuck-at fault targets it.
  void onCellWrite(MutableMachine& machine, SymbolId input,
                   SymbolId state) const {
    for (const fault::CellFault& f : faults_) {
      const TotalState at = toCoords(machine.context(), f.cell);
      if (at.input == input && at.state == state &&
          machine.isSpecified(input, state))
        machine.corruptBit(input, state, f.bit);
    }
  }

  /// Re-damages every specified stuck cell (after a bulk restore).
  void onBulkWrite(MutableMachine& machine) const {
    for (const fault::CellFault& f : faults_) {
      const TotalState at = toCoords(machine.context(), f.cell);
      if (machine.isSpecified(at.input, at.state))
        machine.corruptBit(at.input, at.state, f.bit);
    }
  }

 private:
  std::vector<fault::CellFault> faults_;
};

void applyFlip(MutableMachine& machine, const fault::CellFault& flip,
               StickySet& sticky) {
  static metrics::Counter& injected =
      metrics::counter(metrics::kFaultsInjected);
  const TotalState at = toCoords(machine.context(), flip.cell);
  machine.corruptBit(at.input, at.state, flip.bit);
  injected.add();
  if (trace::enabled())
    trace::instant("fault.inject", "migration",
                   {trace::Arg::num("cell", static_cast<std::int64_t>(flip.cell)),
                    trace::Arg::num("bit", static_cast<std::int64_t>(flip.bit)),
                    trace::Arg::boolean("sticky", flip.sticky)});
  if (flip.sticky) sticky.fire(flip);
}

/// Executes one step, re-applying stuck-at damage when the step writes a
/// stuck cell.  Returns false (filling `error`) on an unexecutable step.
bool executeStep(MutableMachine& machine, const ReconfigStep& step,
                 const StickySet& sticky, GuardedMigrationReport& report,
                 std::string& error) {
  const SymbolId before = machine.state();
  try {
    machine.applyStep(step);
  } catch (const MigrationError& e) {
    error = e.what();
    return false;
  }
  ++report.executedCycles;
  if (step.kind == StepKind::kRewrite) {
    if (trace::enabled())
      trace::instant(
          "cell.write", "migration",
          {trace::Arg::num("input", static_cast<std::int64_t>(step.input)),
           trace::Arg::num("state", static_cast<std::int64_t>(before)),
           trace::Arg::num("next", static_cast<std::int64_t>(step.nextState)),
           trace::Arg::num("output", static_cast<std::int64_t>(step.output))});
    sticky.onCellWrite(machine, step.input, before);
  }
  return true;
}

/// Scrub + planRepair with bounded exponential-backoff retries.  Returns
/// true once the verifier passes.
bool patchLoop(MutableMachine& machine, const RecoveryOptions& options,
               const StickySet& sticky, OnlineVerifier& verifier,
               GuardedMigrationReport& report, std::uint64_t migrationId) {
  static metrics::Counter& patches =
      metrics::counter(metrics::kRecoveryPatches);
  const MigrationContext& context = machine.context();
  for (int attempt = 0; attempt < options.maxAttempts; ++attempt) {
    report.backoffCycles += options.backoffBaseCycles << attempt;
    trace::asyncInstant(
        "recovery.patch", "migration", migrationId,
        {trace::Arg::num("attempt", static_cast<std::int64_t>(attempt + 1)),
         trace::Arg::num("backoff_cycles",
                         static_cast<std::int64_t>(options.backoffBaseCycles
                                                   << attempt))});
    trace::ScopedSpan span(
        "recovery.patch", "recovery",
        {trace::Arg::num("attempt", static_cast<std::int64_t>(attempt + 1))});

    // Scrub: deactivate every corrupted cell.  Target-domain cells become
    // remaining deltas, so the patch rewrites (and reseals) them; cells
    // outside the target domain are never read by M' and stay deactivated.
    for (const TotalState& at : machine.integrityScan()) {
      const bool inDomain = context.inTargetInputs(at.input) &&
                            context.inTargetStates(at.state);
      if (!inDomain && !options.scrubOutOfDomain) continue;
      machine.clearCell(at.input, at.state);
      if (!inDomain) ++report.cellsScrubbed;
    }

    const int missing = static_cast<int>(remainingDeltas(machine).size());
    const ReconfigurationProgram patch =
        planRepair(machine, options.tempInput);
    ++report.patchAttempts;
    patches.add();
    std::string stepError;
    bool executed = true;
    for (const ReconfigStep& step : patch.steps) {
      if (!executeStep(machine, step, sticky, report, stepError)) {
        executed = false;
        break;
      }
    }
    if (!executed) {
      report.detail += "patch attempt " + std::to_string(attempt + 1) +
                       " aborted (" + stepError + "); ";
      continue;
    }
    report.cellsPatched += missing;
    const OnlineVerifier::Outcome& verdict = verifier.verify(machine);
    if (verdict.ok) return true;
    report.detail += "patch attempt " + std::to_string(attempt + 1) +
                     " left damage (" + verdict.reason + "); ";
  }
  return false;
}

}  // namespace

const char* toString(MigrationOutcome outcome) {
  switch (outcome) {
    case MigrationOutcome::kVerified:
      return "verified";
    case MigrationOutcome::kRolledBack:
      return "rolled-back";
    case MigrationOutcome::kFailed:
      return "failed";
  }
  return "?";
}

GuardedMigrationReport runGuardedMigration(MutableMachine& machine,
                                           const ReconfigurationProgram& program,
                                           const fault::FaultScenario& scenario,
                                           const RecoveryOptions& options,
                                           ProgramJournal* journal) {
  static metrics::Counter& resumes =
      metrics::counter(metrics::kRecoveryResumes);
  static metrics::Counter& rollbacks =
      metrics::counter(metrics::kRecoveryRollbacks);

  GuardedMigrationReport report;
  // One correlation id ties every event of this migration — resume, patch
  // attempts, rollback — into a single async track in the trace.
  const std::uint64_t migrationId =
      trace::enabled() ? trace::newCorrelationId() : 0;
  trace::asyncBegin("migration", "migration", migrationId,
                    {trace::Arg::num("steps", static_cast<std::int64_t>(
                                                  program.length())),
                     trace::Arg::num("flips", static_cast<std::int64_t>(
                                                  scenario.flips.size()))});
  auto finish = [&]() {
    trace::asyncEnd("migration", "migration", migrationId,
                    {trace::Arg::str("outcome", toString(report.outcome))});
  };
  const MutableMachine::TableImage golden = machine.checkpoint();
  StickySet sticky;
  OnlineVerifier verifier(options.conformanceCheck);
  const int length = program.length();

  // WAL discipline: intent (the full program) is recorded before the first
  // table write.  A journal already carrying a committed prefix of this
  // very program means we are the post-crash recovery run: skip the steps
  // known to have taken effect.
  int start = 0;
  if (journal != nullptr) {
    if (journal->active() && journal->program().steps == program.steps &&
        journal->committedSteps() > 0 && !journal->complete()) {
      start = journal->committedSteps();
      report.resumed = true;
      resumes.add();
      trace::asyncInstant(
          "recovery.resume", "migration", migrationId,
          {trace::Arg::num("from_step", static_cast<std::int64_t>(start))});
      report.detail += "resumed after journaled step " +
                       std::to_string(start - 1) + "; ";
    } else {
      journal->begin(program);
    }
  }

  // Flips land *before* their step index runs; a cursor over the sorted
  // schedule guarantees each flip is applied exactly once even when the
  // execution is interrupted and resumed.
  std::vector<fault::CellFault> flips = scenario.flips;
  std::stable_sort(flips.begin(), flips.end(),
                   [](const fault::CellFault& a, const fault::CellFault& b) {
                     return a.atStep < b.atStep;
                   });
  std::size_t cursor = 0;
  auto injectBefore = [&](int step) {
    while (cursor < flips.size() && flips[cursor].atStep <= step)
      applyFlip(machine, flips[cursor++], sticky);
  };
  auto injectRemaining = [&] {
    while (cursor < flips.size()) applyFlip(machine, flips[cursor++], sticky);
  };

  std::string stepError;
  bool stepFailed = false;
  bool aborted = false;
  int k = start;
  for (; k < length; ++k) {
    injectBefore(k);
    if (scenario.abortAtStep.has_value() && *scenario.abortAtStep == k) {
      aborted = true;
      break;
    }
    if (!executeStep(machine, program.steps[k], sticky, report, stepError)) {
      stepFailed = true;
      break;
    }
    if (journal != nullptr) journal->commit(k);
  }

  if (aborted) {
    // Power loss.  The device comes back with the table exactly as the
    // committed prefix left it; with a journal the recovery engine replays
    // the remainder, without one it falls through to replanning below.
    report.faultDetected = true;
    trace::asyncInstant(
        "fault.power_loss", "migration", migrationId,
        {trace::Arg::num("at_step", static_cast<std::int64_t>(k))});
    report.detail +=
        "power loss before step " + std::to_string(k) + "; ";
    if (journal != nullptr) {
      report.resumed = true;
      resumes.add();
      trace::asyncInstant(
          "recovery.resume", "migration", migrationId,
          {trace::Arg::num("from_step", static_cast<std::int64_t>(k))});
      report.detail += "resuming journaled remainder; ";
      for (; k < length; ++k) {
        injectBefore(k);
        if (!executeStep(machine, program.steps[k], sticky, report,
                         stepError)) {
          stepFailed = true;
          break;
        }
        journal->commit(k);
      }
    }
  }
  if (stepFailed) {
    report.faultDetected = true;
    report.detail += "step " + std::to_string(k) + " not executable (" +
                     stepError + "); ";
  }
  if (k == length) injectRemaining();
  report.journalCommitted =
      journal != nullptr ? journal->committedSteps() : k;

  const OnlineVerifier::Outcome& verdict = verifier.verify(machine);
  if (verdict.ok) {
    report.outcome = MigrationOutcome::kVerified;
    report.detail += "verified";
    finish();
    return report;
  }
  report.faultDetected = true;
  report.detail += "verification failed (" + verdict.reason + "); ";

  if (patchLoop(machine, options, sticky, verifier, report, migrationId)) {
    report.outcome = MigrationOutcome::kVerified;
    report.detail += "patched and verified";
    finish();
    return report;
  }

  // Degrade to rollback: restore the pre-migration checkpoint and prove
  // the machine realizes the source again.
  rollbacks.add();
  trace::asyncInstant("recovery.rollback", "migration", migrationId);
  machine.restore(golden);
  sticky.onBulkWrite(machine);
  std::string why;
  const std::size_t survivors = machine.integrityScan().size();
  if (survivors == 0 && machine.matchesSource(&why)) {
    report.outcome = MigrationOutcome::kRolledBack;
    report.detail += "rolled back to the verified source machine";
  } else {
    report.outcome = MigrationOutcome::kFailed;
    if (survivors != 0)
      why = std::to_string(survivors) +
            " corrupted cell(s) survive the rollback (stuck-at)";
    report.detail += "rollback not clean (" + why + ")";
  }
  finish();
  return report;
}

GuardedMigrationReport repairToTarget(MutableMachine& machine,
                                      const RecoveryOptions& options) {
  GuardedMigrationReport report;
  StickySet sticky;  // no injected scenario: nothing is stuck
  OnlineVerifier verifier(options.conformanceCheck);
  const OnlineVerifier::Outcome& verdict = verifier.verify(machine);
  if (verdict.ok) {
    report.outcome = MigrationOutcome::kVerified;
    report.detail = "already verified";
    return report;
  }
  report.faultDetected = true;
  report.detail = "verification failed (" + verdict.reason + "); ";
  const std::uint64_t repairId =
      trace::enabled() ? trace::newCorrelationId() : 0;
  if (patchLoop(machine, options, sticky, verifier, report, repairId)) {
    report.outcome = MigrationOutcome::kVerified;
    report.detail += "patched and verified";
  } else {
    report.outcome = MigrationOutcome::kFailed;
    report.detail += "patching failed";
  }
  return report;
}

}  // namespace rfsm
