// Bounds on reconfiguration program length (paper Sec. 4.5).
//
//  * Thm. 4.2 (upper): the JSR heuristic needs at most 3 * (|Td| + 1)
//    transitions (independent of the transition structure of M).
//  * Thm. 4.3 (lower): no program can be shorter than |Td|, since at most
//    one transition is reconfigured per cycle.
#pragma once

#include "core/migration.hpp"

namespace rfsm {

/// Thm. 4.2: upper bound 3 * (|Td| + 1) on the JSR program length.
int jsrUpperBound(int deltaCount);
int jsrUpperBound(const MigrationContext& context);

/// Thm. 4.3: strict lower bound |Td| on any program length.
int programLowerBound(int deltaCount);
int programLowerBound(const MigrationContext& context);

}  // namespace rfsm
