// Replaying and validating reconfiguration programs.
//
// A program is *valid* for a migration M -> M' when (Def. 4.1):
//  * every step is physically executable (no traversal of unwritten RAM),
//  * afterwards the machine realizes M' on the whole target domain, and
//  * the machine ends in the terminal state S0'.
// Validation replays the program on a MutableMachine, then (optionally)
// cross-checks behavioural equivalence of the realized machine against M'.
#pragma once

#include <string>

#include "core/migration.hpp"
#include "core/mutable_machine.hpp"
#include "core/program.hpp"

namespace rfsm {

/// Outcome of validating a program.
struct ValidationResult {
  bool valid = false;
  std::string reason;       // empty when valid
  SymbolId finalState = kNoSymbol;
  int cyclesExecuted = 0;
};

/// Replays `program` from scratch and checks the three conditions above.
ValidationResult validateProgram(const MigrationContext& context,
                                 const ReconfigurationProgram& program);

/// Replays `program` and returns the machine afterwards (throws
/// MigrationError if a step is impossible).  Useful for inspecting partial
/// programs.
MutableMachine replayProgram(const MigrationContext& context,
                             const ReconfigurationProgram& program);

}  // namespace rfsm
