// Replaying and validating reconfiguration programs.
//
// A program is *valid* for a migration M -> M' when (Def. 4.1):
//  * every step is physically executable (no traversal of unwritten RAM),
//  * afterwards the machine realizes M' on the whole target domain, and
//  * the machine ends in the terminal state S0'.
// Validation replays the program on a MutableMachine, then (optionally)
// cross-checks behavioural equivalence of the realized machine against M'.
#pragma once

#include <cstdint>
#include <string>

#include "core/migration.hpp"
#include "core/mutable_machine.hpp"
#include "core/program.hpp"

namespace rfsm {

/// Outcome of validating a program.
struct ValidationResult {
  bool valid = false;
  std::string reason;       // empty when valid
  SymbolId finalState = kNoSymbol;
  int cyclesExecuted = 0;
};

/// Replays `program` from scratch and checks the three conditions above.
ValidationResult validateProgram(const MigrationContext& context,
                                 const ReconfigurationProgram& program);

/// Replays `program` and returns the machine afterwards (throws
/// MigrationError if a step is impossible).  Useful for inspecting partial
/// programs.
MutableMachine replayProgram(const MigrationContext& context,
                             const ReconfigurationProgram& program);

/// Post-apply online verifier: proves that a live machine realizes M'.
///
/// Layered checks, cheapest first:
///  1. integrity scan — every specified cell's stored word must match its
///     write-time checksum (catches silent SEU damage),
///  2. table check — matchesTarget() over the whole target domain plus the
///     terminal-state condition of Def. 4.1,
///  3. W-method conformance (optional) — the extracted machine is run
///     against a P.W suite of the target; skipped when the target is not
///     minimal (no characterizing set exists; the exhaustive table check
///     already subsumes behavioural equivalence).
///
/// Results are cached against (tableVersion, state): re-verifying an
/// unchanged machine is O(1) and counted as a version-cache hit.
class OnlineVerifier {
 public:
  struct Outcome {
    bool ok = false;
    std::string reason;  // empty when ok
  };

  explicit OnlineVerifier(bool conformanceCheck = true)
      : conformance_(conformanceCheck) {}

  /// Verifies `machine`; served from cache when nothing changed since the
  /// last call.
  const Outcome& verify(const MutableMachine& machine);

 private:
  bool conformance_;
  bool haveResult_ = false;
  std::uint64_t version_ = 0;
  SymbolId state_ = kNoSymbol;
  Outcome cached_;
};

}  // namespace rfsm
