#include "core/bounds.hpp"

#include "util/check.hpp"

namespace rfsm {

int jsrUpperBound(int deltaCount) {
  RFSM_CHECK(deltaCount >= 0, "delta count must be non-negative");
  return 3 * (deltaCount + 1);
}

int jsrUpperBound(const MigrationContext& context) {
  return jsrUpperBound(context.deltaCount());
}

int programLowerBound(int deltaCount) {
  RFSM_CHECK(deltaCount >= 0, "delta count must be non-negative");
  return deltaCount;
}

int programLowerBound(const MigrationContext& context) {
  return programLowerBound(context.deltaCount());
}

}  // namespace rfsm
