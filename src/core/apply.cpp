#include "core/apply.hpp"

#include "util/metrics.hpp"

namespace rfsm {

MutableMachine replayProgram(const MigrationContext& context,
                             const ReconfigurationProgram& program) {
  MutableMachine machine(context);
  machine.applyProgram(program);
  return machine;
}

ValidationResult validateProgram(const MigrationContext& context,
                                 const ReconfigurationProgram& program) {
  static metrics::Counter& validated =
      metrics::counter(metrics::kProgramsValidated);
  validated.add();
  ValidationResult result;
  MutableMachine machine(context);
  int executed = 0;
  try {
    for (const ReconfigStep& step : program.steps) {
      machine.applyStep(step);
      ++executed;
    }
  } catch (const MigrationError& error) {
    result.valid = false;
    result.reason = "step " + std::to_string(executed) +
                    " not executable: " + error.what();
    result.finalState = machine.state();
    result.cyclesExecuted = executed;
    return result;
  }
  result.cyclesExecuted = executed;
  result.finalState = machine.state();

  std::string mismatch;
  if (!machine.matchesTarget(&mismatch)) {
    result.valid = false;
    result.reason = "machine does not realize M': " + mismatch;
    return result;
  }
  if (machine.state() != context.targetReset()) {
    result.valid = false;
    result.reason = "program terminates in " +
                    context.states().name(machine.state()) +
                    " instead of the terminal state " +
                    context.states().name(context.targetReset());
    return result;
  }
  result.valid = true;
  return result;
}

}  // namespace rfsm
