#include "core/apply.hpp"

#include "fsm/builder.hpp"
#include "fsm/conformance.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace rfsm {

MutableMachine replayProgram(const MigrationContext& context,
                             const ReconfigurationProgram& program) {
  MutableMachine machine(context);
  machine.applyProgram(program);
  return machine;
}

ValidationResult validateProgram(const MigrationContext& context,
                                 const ReconfigurationProgram& program) {
  static metrics::Counter& validated =
      metrics::counter(metrics::kProgramsValidated);
  validated.add();
  trace::ScopedSpan span(
      "planner.validate", "planner",
      {trace::Arg::num("steps",
                       static_cast<std::int64_t>(program.steps.size()))});
  ValidationResult result;
  MutableMachine machine(context);
  int executed = 0;
  try {
    for (const ReconfigStep& step : program.steps) {
      machine.applyStep(step);
      ++executed;
    }
  } catch (const MigrationError& error) {
    result.valid = false;
    result.reason = "step " + std::to_string(executed) +
                    " not executable: " + error.what();
    result.finalState = machine.state();
    result.cyclesExecuted = executed;
    return result;
  }
  result.cyclesExecuted = executed;
  result.finalState = machine.state();

  std::string mismatch;
  if (!machine.matchesTarget(&mismatch)) {
    result.valid = false;
    result.reason = "machine does not realize M': " + mismatch;
    return result;
  }
  if (machine.state() != context.targetReset()) {
    result.valid = false;
    result.reason = "program terminates in " +
                    context.states().name(machine.state()) +
                    " instead of the terminal state " +
                    context.states().name(context.targetReset());
    return result;
  }
  result.valid = true;
  return result;
}

const OnlineVerifier::Outcome& OnlineVerifier::verify(
    const MutableMachine& machine) {
  static metrics::Counter& cacheHits =
      metrics::counter(metrics::kVerifierCacheHits);
  static metrics::Counter& detected =
      metrics::counter(metrics::kFaultsDetected);
  static metrics::Counter& conformanceRuns =
      metrics::counter(metrics::kConformanceRuns);

  if (haveResult_ && machine.tableVersion() == version_ &&
      machine.state() == state_) {
    cacheHits.add();
    return cached_;
  }
  static metrics::Histogram& verifyLatency =
      metrics::histogram(metrics::kVerifyLatency);
  metrics::ScopedLatency latency(verifyLatency);
  trace::ScopedSpan span(
      "verify.verify", "verify",
      {trace::Arg::num("table_version",
                       static_cast<std::int64_t>(machine.tableVersion()))});
  // Per-migration event log: the verdict and the layer that decided it.
  auto verdict = [](bool ok, const char* layer) {
    if (trace::enabled())
      trace::instant("verify.verdict", "migration",
                     {trace::Arg::boolean("ok", ok),
                      trace::Arg::str("layer", layer)});
  };
  version_ = machine.tableVersion();
  state_ = machine.state();
  haveResult_ = true;
  cached_ = Outcome{};

  const MigrationContext& context = machine.context();
  {
    trace::ScopedSpan layer("verify.integrity_scan", "verify");
    const std::vector<TotalState> corrupted = machine.integrityScan();
    if (!corrupted.empty()) {
      detected.add(corrupted.size());
      cached_.reason =
          "integrity scan: " + std::to_string(corrupted.size()) +
          " corrupted cell(s), first at (" +
          context.inputs().name(corrupted.front().input) + ", " +
          context.states().name(corrupted.front().state) + ")";
      verdict(false, "integrity_scan");
      return cached_;
    }
  }
  {
    trace::ScopedSpan layer("verify.table_check", "verify");
    std::string mismatch;
    if (!machine.matchesTarget(&mismatch)) {
      cached_.reason = "table check: " + mismatch;
      verdict(false, "table_check");
      return cached_;
    }
  }
  {
    trace::ScopedSpan layer("verify.terminal_state", "verify");
    if (machine.state() != context.targetReset()) {
      cached_.reason = "machine halted in " +
                       context.states().name(machine.state()) +
                       " instead of the terminal state " +
                       context.states().name(context.targetReset());
      verdict(false, "terminal_state");
      return cached_;
    }
  }
  if (conformance_) {
    trace::ScopedSpan layer("verify.conformance", "verify");
    const Machine& target = context.targetMachine();
    try {
      const ConformanceSuite suite = wMethodSuite(target);
      conformanceRuns.add();
      const ConformanceResult result =
          runConformanceSuite(target, machine.extractTarget(), suite);
      if (!result.pass) {
        cached_.reason = "W-method conformance failed at position " +
                         std::to_string(result.mismatchPosition);
        verdict(false, "conformance");
        return cached_;
      }
    } catch (const FsmError&) {
      // Target not minimal: no characterizing set exists.  The exhaustive
      // table check above already subsumes behavioural equivalence.
    }
  }
  cached_.ok = true;
  verdict(true, "all");
  return cached_;
}

}  // namespace rfsm
