#include "core/apply.hpp"

#include "fsm/builder.hpp"
#include "fsm/conformance.hpp"
#include "util/metrics.hpp"

namespace rfsm {

MutableMachine replayProgram(const MigrationContext& context,
                             const ReconfigurationProgram& program) {
  MutableMachine machine(context);
  machine.applyProgram(program);
  return machine;
}

ValidationResult validateProgram(const MigrationContext& context,
                                 const ReconfigurationProgram& program) {
  static metrics::Counter& validated =
      metrics::counter(metrics::kProgramsValidated);
  validated.add();
  ValidationResult result;
  MutableMachine machine(context);
  int executed = 0;
  try {
    for (const ReconfigStep& step : program.steps) {
      machine.applyStep(step);
      ++executed;
    }
  } catch (const MigrationError& error) {
    result.valid = false;
    result.reason = "step " + std::to_string(executed) +
                    " not executable: " + error.what();
    result.finalState = machine.state();
    result.cyclesExecuted = executed;
    return result;
  }
  result.cyclesExecuted = executed;
  result.finalState = machine.state();

  std::string mismatch;
  if (!machine.matchesTarget(&mismatch)) {
    result.valid = false;
    result.reason = "machine does not realize M': " + mismatch;
    return result;
  }
  if (machine.state() != context.targetReset()) {
    result.valid = false;
    result.reason = "program terminates in " +
                    context.states().name(machine.state()) +
                    " instead of the terminal state " +
                    context.states().name(context.targetReset());
    return result;
  }
  result.valid = true;
  return result;
}

const OnlineVerifier::Outcome& OnlineVerifier::verify(
    const MutableMachine& machine) {
  static metrics::Counter& cacheHits =
      metrics::counter(metrics::kVerifierCacheHits);
  static metrics::Counter& detected =
      metrics::counter(metrics::kFaultsDetected);
  static metrics::Counter& conformanceRuns =
      metrics::counter(metrics::kConformanceRuns);

  if (haveResult_ && machine.tableVersion() == version_ &&
      machine.state() == state_) {
    cacheHits.add();
    return cached_;
  }
  version_ = machine.tableVersion();
  state_ = machine.state();
  haveResult_ = true;
  cached_ = Outcome{};

  const MigrationContext& context = machine.context();
  const std::vector<TotalState> corrupted = machine.integrityScan();
  if (!corrupted.empty()) {
    detected.add(corrupted.size());
    cached_.reason =
        "integrity scan: " + std::to_string(corrupted.size()) +
        " corrupted cell(s), first at (" +
        context.inputs().name(corrupted.front().input) + ", " +
        context.states().name(corrupted.front().state) + ")";
    return cached_;
  }
  std::string mismatch;
  if (!machine.matchesTarget(&mismatch)) {
    cached_.reason = "table check: " + mismatch;
    return cached_;
  }
  if (machine.state() != context.targetReset()) {
    cached_.reason = "machine halted in " +
                     context.states().name(machine.state()) +
                     " instead of the terminal state " +
                     context.states().name(context.targetReset());
    return cached_;
  }
  if (conformance_) {
    const Machine& target = context.targetMachine();
    try {
      const ConformanceSuite suite = wMethodSuite(target);
      conformanceRuns.add();
      const ConformanceResult result =
          runConformanceSuite(target, machine.extractTarget(), suite);
      if (!result.pass) {
        cached_.reason = "W-method conformance failed at position " +
                         std::to_string(result.mismatchPosition);
        return cached_;
      }
    } catch (const FsmError&) {
      // Target not minimal: no characterizing set exists.  The exhaustive
      // table check above already subsumes behavioural equivalence.
    }
  }
  cached_.ok = true;
  return cached_;
}

}  // namespace rfsm
