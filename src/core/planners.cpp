#include "core/planners.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "core/jsr.hpp"
#include "core/mutable_machine.hpp"
#include "ea/permutation.hpp"
#include "util/check.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace rfsm {
namespace {

constexpr int kInfinity = std::numeric_limits<int>::max() / 4;

/// Shared machinery of the order-decoding planners: tracks the machine
/// under reconfiguration, emits steps, connects to delta sources, and
/// repairs the temporary cell at the end.
class Decoder {
 public:
  Decoder(const MigrationContext& context, const DecodeOptions& options)
      : context_(context), options_(options), machine_(context) {
    machine_.setCancel(options.cancel);
    i0_ = options.tempInput == kNoSymbol ? context.liftTargetInput(0)
                                         : options.tempInput;
    RFSM_CHECK(context.inTargetInputs(i0_),
               "temporary input must be an input of M'");
    s0_ = context.targetReset();
    tempOutput_ = context.targetOutput(i0_, s0_);
    for (const Transition& td : context.deltaTransitions()) {
      if (td.input == i0_ && td.from == s0_) {
        tempCellIsDelta_ = true;
      } else {
        loopDeltas_.push_back(td);
      }
    }
    // Programs start with a reset transition: the machine may be anywhere
    // when reconfiguration begins (JSR line (3)).
    emit(ReconfigStep::reset());
  }

  const std::vector<Transition>& loopDeltas() const { return loopDeltas_; }

  /// Cycles the next connect() to `td` would cost, without mutating.
  int connectionCost(const Transition& td) const {
    const SymbolId here = machine_.state();
    if (options_.rule == DecodeRule::kPaper) {
      if (here == td.from) return 0;
      if (machine_.edgeInput(here, td.from).has_value()) return 1;
      return here == s0_ ? 1 : 2;  // [reset +] temporary
    }
    return bestOfThreeCost(td).first;
  }

  /// Connects to td.from, then rewrites td while traversing it.
  void processDelta(const Transition& td) {
    connect(td);
    RFSM_CHECK(machine_.state() == td.from,
               "decoder failed to reach the delta source");
    emit(ReconfigStep::rewrite(td.input, td.to, td.output));
  }

  /// Repairs the temporary cell and terminates in S0'.
  ReconfigurationProgram finish() {
    if (tempDirty_ || tempCellIsDelta_) {
      if (machine_.state() != s0_) emit(ReconfigStep::reset());
      emit(ReconfigStep::rewrite(i0_, context_.targetNext(i0_, s0_),
                                 context_.targetOutput(i0_, s0_)));
    }
    if (machine_.state() != s0_) emit(ReconfigStep::reset());
    return std::move(program_);
  }

 private:
  enum class Connect { kWalk, kResetWalk, kTemporary };

  void emit(const ReconfigStep& step) {
    program_.steps.push_back(step);
    machine_.applyStep(step);
  }

  /// (cost, choice) of the cheapest kBestOfThree connection to td.from.
  /// Distances come from the machine's version-tagged BFS cache, so the
  /// greedy planner's O(n^2) cost scan re-walks nothing between rewrites.
  std::pair<int, Connect> bestOfThreeCost(const Transition& td) const {
    const SymbolId here = machine_.state();
    const int dHere =
        machine_.distancesFrom(here)[static_cast<std::size_t>(td.from)];
    const int costWalk = dHere < 0 ? kInfinity : dHere;

    const int dReset =
        machine_.distancesFrom(s0_)[static_cast<std::size_t>(td.from)];
    const int costResetWalk = dReset < 0 ? kInfinity : 1 + dReset;

    int costTemporary = (here == s0_) ? 1 : 2;
    if (!options_.allowTemporary &&
        (costWalk < kInfinity || costResetWalk < kInfinity))
      costTemporary = kInfinity;

    // Prefer non-mutating connections on ties.
    if (costWalk <= costResetWalk && costWalk <= costTemporary)
      return {costWalk, Connect::kWalk};
    if (costResetWalk <= costTemporary)
      return {costResetWalk, Connect::kResetWalk};
    return {costTemporary, Connect::kTemporary};
  }

  void emitWalk(SymbolId from, SymbolId to) {
    const auto inputs = machine_.pathInputs(from, to);
    RFSM_CHECK(inputs.has_value(), "walk target became unreachable");
    for (const SymbolId input : *inputs)
      emit(ReconfigStep::traverse(input));
  }

  void emitTemporary(SymbolId target) {
    if (machine_.state() != s0_) emit(ReconfigStep::reset());
    if (machine_.state() == target) return;  // the reset already arrived
    emit(ReconfigStep::rewrite(i0_, target, tempOutput_, /*temporary=*/true));
    tempDirty_ = true;
  }

  void connect(const Transition& td) {
    const SymbolId here = machine_.state();
    if (here == td.from) return;
    if (options_.rule == DecodeRule::kPaper) {
      // Paper Sec. 4.6: existing path of length <= 1, else reset+temporary.
      if (const auto input = machine_.edgeInput(here, td.from)) {
        emit(ReconfigStep::traverse(*input));
        return;
      }
      emitTemporary(td.from);
      return;
    }
    const auto [cost, choice] = bestOfThreeCost(td);
    switch (choice) {
      case Connect::kWalk:
        emitWalk(here, td.from);
        break;
      case Connect::kResetWalk:
        emit(ReconfigStep::reset());
        emitWalk(s0_, td.from);
        break;
      case Connect::kTemporary:
        emitTemporary(td.from);
        break;
    }
  }

  const MigrationContext& context_;
  DecodeOptions options_;
  MutableMachine machine_;
  ReconfigurationProgram program_;
  std::vector<Transition> loopDeltas_;
  SymbolId i0_ = kNoSymbol;
  SymbolId s0_ = kNoSymbol;
  SymbolId tempOutput_ = kNoSymbol;
  bool tempDirty_ = false;
  bool tempCellIsDelta_ = false;
};

}  // namespace

int loopDeltaCount(const MigrationContext& context, SymbolId tempInput) {
  const SymbolId i0 =
      tempInput == kNoSymbol ? context.liftTargetInput(0) : tempInput;
  const SymbolId s0 = context.targetReset();
  int n = 0;
  for (const Transition& td : context.deltaTransitions())
    if (!(td.input == i0 && td.from == s0)) ++n;
  return n;
}

ReconfigurationProgram decodeOrder(const MigrationContext& context,
                                   const std::vector<int>& order,
                                   const DecodeOptions& options) {
  static metrics::Counter& decodeCalls =
      metrics::counter(metrics::kDecodeCalls);
  static metrics::Histogram& decodeLatency =
      metrics::histogram(metrics::kDecodeLatency);
  decodeCalls.add();
  pollCancel(options.cancel, "planner.decode");
  metrics::ScopedLatency latency(decodeLatency);
  trace::ScopedSpan span("planner.decode", "planner",
                         {trace::Arg::num(
                             "deltas", static_cast<std::int64_t>(
                                           order.size()))});
  Decoder decoder(context, options);
  const auto& deltas = decoder.loopDeltas();
  RFSM_CHECK(order.size() == deltas.size(),
             "order must be a permutation of the loop deltas");
  RFSM_CHECK(isPermutation(order), "order must be a permutation");
  for (const int index : order)
    decoder.processDelta(deltas[static_cast<std::size_t>(index)]);
  return decoder.finish();
}

ReconfigurationProgram planGreedy(const MigrationContext& context,
                                  const DecodeOptions& options) {
  metrics::ScopedTimer timing(metrics::timer("planner.greedy"));
  trace::ScopedSpan span("planner.greedy", "planner");
  Decoder decoder(context, options);
  const auto& deltas = decoder.loopDeltas();
  std::vector<bool> done(deltas.size(), false);
  for (std::size_t round = 0; round < deltas.size(); ++round) {
    pollCancel(options.cancel, "planner.greedy");
    int best = -1;
    int bestCost = kInfinity + 1;
    for (std::size_t k = 0; k < deltas.size(); ++k) {
      if (done[k]) continue;
      const int cost = decoder.connectionCost(deltas[k]);
      if (cost < bestCost) {
        bestCost = cost;
        best = static_cast<int>(k);
      }
    }
    done[static_cast<std::size_t>(best)] = true;
    decoder.processDelta(deltas[static_cast<std::size_t>(best)]);
  }
  return decoder.finish();
}

EvolutionaryPlan planEvolutionary(const MigrationContext& context,
                                  const EvolutionConfig& config, Rng& rng,
                                  const DecodeOptions& options,
                                  ThreadPool* pool) {
  metrics::ScopedTimer timing(metrics::timer("planner.ea"));
  trace::ScopedSpan span("planner.ea", "planner");
  const int n = loopDeltaCount(context, options.tempInput);
  const FitnessFn fitness = [&](const Permutation& order) {
    return static_cast<double>(decodeOrder(context, order, options).length());
  };
  const EvolutionResult evo = evolvePermutation(n, fitness, config, rng, pool);

  EvolutionaryPlan plan;
  plan.program = decodeOrder(context, evo.best, options);
  plan.evaluations = evo.evaluations;
  plan.initialBest =
      evo.history.empty() ? evo.bestFitness : evo.history.front().bestFitness;
  plan.bestPerGeneration.reserve(evo.history.size());
  for (const GenerationStats& g : evo.history)
    plan.bestPerGeneration.push_back(g.bestFitness);
  return plan;
}

std::optional<ReconfigurationProgram> planExact(const MigrationContext& context,
                                                int maxDeltas,
                                                const DecodeOptions& options) {
  metrics::ScopedTimer timing(metrics::timer("planner.exact"));
  trace::ScopedSpan span("planner.exact", "planner");
  const int n = loopDeltaCount(context, options.tempInput);
  if (n > maxDeltas) return std::nullopt;
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::optional<ReconfigurationProgram> best;
  do {
    ReconfigurationProgram candidate = decodeOrder(context, order, options);
    if (!best.has_value() || candidate.length() < best->length())
      best = std::move(candidate);
  } while (std::next_permutation(order.begin(), order.end()));
  return best;
}

ReconfigurationProgram planNoTemporary(const MigrationContext& context,
                                       SymbolId tempInput) {
  DecodeOptions options;
  options.tempInput = tempInput;
  options.rule = DecodeRule::kBestOfThree;
  options.allowTemporary = false;
  return planGreedy(context, options);
}

BatchReport planAllChecked(const std::vector<MigrationContext>& instances,
                           const BatchPlanFn& plan,
                           const BatchOptions& options) {
  metrics::ScopedTimer timing(metrics::timer("batch.plan_all"));
  static metrics::Histogram& instanceLatency =
      metrics::histogram(metrics::kInstanceLatency);
  static metrics::Counter& failureCounter =
      metrics::counter(metrics::kBatchInstanceFailures);
  static metrics::Counter& cancelledCounter =
      metrics::counter(metrics::kBatchCancelled);
  trace::ScopedSpan span(
      "batch.plan_all", "batch",
      {trace::Arg::num("instances",
                       static_cast<std::uint64_t>(instances.size())),
       trace::Arg::num("jobs", static_cast<std::int64_t>(options.jobs))});
  BatchReport report;
  report.programs.resize(instances.size());
  // Per-slot failure records; merged (in instance order) after the drain so
  // the parallel bodies never contend on a shared vector.
  std::vector<std::optional<InstanceFailure>> failures(instances.size());
  const Rng base(options.seed);
  ThreadPool pool(options.jobs);
  pool.parallelFor(instances.size(), [&](std::size_t k) {
    metrics::ScopedLatency latency(instanceLatency);
    trace::ScopedSpan instanceSpan(
        "batch.instance", "batch",
        {trace::Arg::num("instance", static_cast<std::uint64_t>(
                                         options.substreamBase + k))});
    InstanceFailure failure;
    failure.instance = k;
    try {
      // Not-yet-started instances stop here once the token expires, so a
      // deadline turns into cancelled slots, not a long tail of work.
      pollCancel(options.cancel, "batch.instance");
      Rng rng = base.substream(options.substreamBase + k);
      report.programs[k] = plan(instances[k], rng);
      return;
    } catch (const CancelledError& error) {
      failure.error = error.what();
      failure.cancelled = true;
      cancelledCounter.add();
    } catch (const std::exception& error) {
      // Poison this slot only: the planner threw (planner defect, degenerate
      // instance, ...), every other instance still runs.
      failure.error = error.what();
      failureCounter.add();
    }
    trace::instant("batch.instance_failed", "batch",
                   {trace::Arg::num("instance", static_cast<std::uint64_t>(
                                                    options.substreamBase + k)),
                    trace::Arg::boolean("cancelled", failure.cancelled),
                    trace::Arg::str("error", failure.error)});
    report.programs[k] = ReconfigurationProgram{};  // poisoned slot
    failures[k] = std::move(failure);
  });
  for (auto& failure : failures)
    if (failure.has_value()) report.failures.push_back(std::move(*failure));
  return report;
}

std::vector<ReconfigurationProgram> planAll(
    const std::vector<MigrationContext>& instances, const BatchPlanFn& plan,
    const BatchOptions& options) {
  BatchReport report = planAllChecked(instances, plan, options);
  if (!report.ok()) {
    std::string what = std::to_string(report.failures.size()) + " of " +
                       std::to_string(instances.size()) +
                       " instances failed; first: instance " +
                       std::to_string(report.failures.front().instance) +
                       ": " + report.failures.front().error;
    throw BatchError(what, std::move(report.failures));
  }
  return std::move(report.programs);
}

std::vector<EvolutionaryPlan> planEvolutionaryBatch(
    const std::vector<MigrationContext>& instances,
    const EvolutionConfig& config, const BatchOptions& options,
    const DecodeOptions& decode) {
  metrics::ScopedTimer timing(metrics::timer("batch.plan_evolutionary"));
  static metrics::Histogram& instanceLatency =
      metrics::histogram(metrics::kInstanceLatency);
  trace::ScopedSpan span(
      "batch.plan_evolutionary", "batch",
      {trace::Arg::num("instances",
                       static_cast<std::uint64_t>(instances.size())),
       trace::Arg::num("jobs", static_cast<std::int64_t>(options.jobs))});
  std::vector<EvolutionaryPlan> plans(instances.size());
  // Thread the batch's cancel token into the EA generation loop and the
  // decode path of every instance.
  EvolutionConfig batchConfig = config;
  DecodeOptions batchDecode = decode;
  if (options.cancel != nullptr) {
    batchConfig.cancel = options.cancel;
    batchDecode.cancel = options.cancel;
  }
  const Rng base(options.seed);
  ThreadPool pool(options.jobs);
  pool.parallelFor(instances.size(), [&](std::size_t k) {
    metrics::ScopedLatency latency(instanceLatency);
    trace::ScopedSpan instanceSpan(
        "batch.instance", "batch",
        {trace::Arg::num("instance", static_cast<std::uint64_t>(
                                         options.substreamBase + k))});
    pollCancel(options.cancel, "batch.instance");
    Rng rng = base.substream(options.substreamBase + k);
    // Parallelism is across instances here; each EA runs its fitness
    // serially (nested parallelFor would be inline anyway).
    plans[k] = planEvolutionary(instances[k], batchConfig, rng, batchDecode);
  });
  return plans;
}

}  // namespace rfsm
