// Repair planning: finishing interrupted or corrupted migrations.
//
// A reconfiguration program assumes it starts from the pristine source
// machine M.  In a live device the process can be cut short (power event,
// higher-priority traffic) or a RAM cell can be disturbed.  Instead of
// restarting from a golden image, the remaining work is itself a migration:
// the cells of the target domain that are still wrong form a delta set, and
// a JSR-style program reconfigures exactly those from wherever the machine
// currently is.  This works because the paper's machinery never depends on
// the *source* table contents beyond reachability — and the repair planner
// uses only temporary transitions, which need no reachability at all.
#pragma once

#include <vector>

#include "core/migration.hpp"
#include "core/mutable_machine.hpp"
#include "core/program.hpp"

namespace rfsm {

/// The target-domain cells of `machine` that do not yet hold their M'
/// values (unspecified or mismatched), as target transitions to write.
/// Empty iff machine.matchesTarget().
std::vector<Transition> remainingDeltas(const MutableMachine& machine);

/// Plans a program that, applied to `machine` in its *current* state,
/// completes the migration to M' and terminates in S0'.  JSR-shaped:
/// reset, then jump/set/return per remaining delta, then temp-cell repair.
/// Length <= 3 * (|remaining| + 1).
ReconfigurationProgram planRepair(const MutableMachine& machine,
                                  SymbolId tempInput = kNoSymbol);

/// Injects a fault: overwrites cell (input, state) with (nextState,
/// output) through the configuration back door (no traversal, unlike a
/// Rewrite step).  Returns the transition previously held there (or a
/// kNoSymbol-filled one when the cell was unspecified).
Transition injectFault(MutableMachine& machine, SymbolId input,
                       SymbolId state, SymbolId nextState, SymbolId output);

}  // namespace rfsm
