#include "core/chain.hpp"

#include "core/apply.hpp"
#include "core/jsr.hpp"
#include "core/planners.hpp"
#include "util/check.hpp"

namespace rfsm {
namespace {

ReconfigurationProgram planHop(const MigrationContext& context,
                               ChainPlanner planner, std::uint64_t seed) {
  switch (planner) {
    case ChainPlanner::kJsr:
      return planJsr(context);
    case ChainPlanner::kGreedy:
      return planGreedy(context);
    case ChainPlanner::kEvolutionary: {
      Rng rng(seed);
      return planEvolutionary(context, EvolutionConfig{}, rng).program;
    }
  }
  return planJsr(context);
}

}  // namespace

int ChainPlan::totalUpgradeLength() const {
  int total = 0;
  for (const ChainStage& stage : stages) total += stage.upgrade.length();
  return total;
}

int ChainPlan::totalRollbackLength() const {
  int total = 0;
  for (const ChainStage& stage : stages) total += stage.rollback.length();
  return total;
}

bool ChainPlan::allValid() const {
  for (const ChainStage& stage : stages)
    if (!stage.upgradeValid || !stage.rollbackValid) return false;
  return true;
}

ChainPlan planMigrationChain(const std::vector<Machine>& revisions,
                             ChainPlanner planner, std::uint64_t seed) {
  RFSM_CHECK(revisions.size() >= 2, "a chain needs at least two revisions");
  ChainPlan plan;
  for (std::size_t hop = 0; hop + 1 < revisions.size(); ++hop) {
    MigrationContext forward(revisions[hop], revisions[hop + 1]);
    MigrationContext backward(revisions[hop + 1], revisions[hop]);
    ReconfigurationProgram upgrade =
        planHop(forward, planner, seed * 1000 + hop);
    ReconfigurationProgram rollback =
        planHop(backward, planner, seed * 1000 + 500 + hop);
    const bool upgradeValid = validateProgram(forward, upgrade).valid;
    const bool rollbackValid = validateProgram(backward, rollback).valid;
    plan.stages.push_back(ChainStage{std::move(forward), std::move(backward),
                                     std::move(upgrade), std::move(rollback),
                                     upgradeValid, rollbackValid});
  }
  return plan;
}

const char* toString(ChainPlanner planner) {
  switch (planner) {
    case ChainPlanner::kJsr: return "JSR";
    case ChainPlanner::kGreedy: return "greedy";
    case ChainPlanner::kEvolutionary: return "EA";
  }
  return "?";
}

}  // namespace rfsm
