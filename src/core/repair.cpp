#include "core/repair.hpp"

#include "util/check.hpp"

namespace rfsm {

std::vector<Transition> remainingDeltas(const MutableMachine& machine) {
  const MigrationContext& context = machine.context();
  const Machine& target = context.targetMachine();
  std::vector<Transition> remaining;
  for (SymbolId s = 0; s < target.stateCount(); ++s) {
    const SymbolId ss = context.liftTargetState(s);
    for (SymbolId i = 0; i < target.inputCount(); ++i) {
      const SymbolId si = context.liftTargetInput(i);
      const SymbolId wantNext = context.liftTargetState(target.next(i, s));
      const SymbolId wantOut = context.liftTargetOutput(target.output(i, s));
      const bool ok = machine.isSpecified(si, ss) &&
                      machine.next(si, ss) == wantNext &&
                      machine.output(si, ss) == wantOut;
      if (!ok) remaining.push_back(Transition{si, ss, wantNext, wantOut});
    }
  }
  return remaining;
}

ReconfigurationProgram planRepair(const MutableMachine& machine,
                                  SymbolId tempInput) {
  const MigrationContext& context = machine.context();
  SymbolId i0 = tempInput == kNoSymbol ? context.liftTargetInput(0)
                                       : tempInput;
  RFSM_CHECK(context.inTargetInputs(i0),
             "repair temporary input must be an input of M'");
  const SymbolId s0 = context.targetReset();

  const std::vector<Transition> remaining = remainingDeltas(machine);
  ReconfigurationProgram program;
  if (remaining.empty() && machine.state() == s0) return program;

  // Same jump-set-return shape as planJsr, but over the *remaining* set and
  // independent of the machine's (possibly corrupted) table contents: only
  // resets and temporary jumps are used for motion.
  program.steps.push_back(ReconfigStep::reset());
  const SymbolId tempOutput = context.targetOutput(i0, s0);
  for (const Transition& td : remaining) {
    if (td.input == i0 && td.from == s0) continue;  // folded into the tail
    program.steps.push_back(
        ReconfigStep::rewrite(i0, td.from, tempOutput, /*temporary=*/true));
    program.steps.push_back(ReconfigStep::rewrite(td.input, td.to, td.output));
    program.steps.push_back(ReconfigStep::reset());
  }
  program.steps.push_back(ReconfigStep::rewrite(
      i0, context.targetNext(i0, s0), context.targetOutput(i0, s0)));
  program.steps.push_back(ReconfigStep::reset());
  return program;
}

Transition injectFault(MutableMachine& machine, SymbolId input,
                       SymbolId state, SymbolId nextState, SymbolId output) {
  Transition previous{input, state, kNoSymbol, kNoSymbol};
  if (machine.isSpecified(input, state)) {
    previous.to = machine.next(input, state);
    previous.output = machine.output(input, state);
  }
  machine.loadCell(input, state, nextState, output);
  return previous;
}

}  // namespace rfsm
