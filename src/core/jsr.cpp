#include "core/jsr.hpp"

#include "util/check.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace rfsm {

ReconfigurationProgram planJsr(const MigrationContext& context,
                               const JsrOptions& options) {
  metrics::ScopedTimer timing(metrics::timer("planner.jsr"));
  trace::ScopedSpan span(
      "planner.jsr", "planner",
      {trace::Arg::num("deltas", static_cast<std::int64_t>(
                                     context.deltaTransitions().size()))});
  // (2) i0 := any input state of M'.
  SymbolId i0 = options.tempInput;
  if (i0 == kNoSymbol) i0 = context.liftTargetInput(0);
  RFSM_CHECK(context.inTargetInputs(i0),
             "JSR temporary input must be an input of M'");

  const SymbolId s0 = context.targetReset();
  ReconfigurationProgram program;

  // (3) Step into the reset state S0' no matter where M currently is.
  program.steps.push_back(ReconfigStep::reset());

  // The output value written by temporary transitions is irrelevant for
  // correctness; we use the final M' value of the temporary cell so the
  // cell's G entry never holds a foreign symbol.
  const SymbolId tempOutput = context.targetOutput(i0, s0);

  // (4)-(9) Jump, set, return for every delta transition, except the one
  // living in the temporary cell (i0, S0') itself, which the tail (10)-(11)
  // reconfigures.
  for (const Transition& td : context.deltaTransitions()) {
    if (td.input == i0 && td.from == s0) continue;
    // Each delta transition contributes one jump/set/return segment; the
    // span marks the steps it occupies so a trace can be read against the
    // emitted program.
    trace::ScopedSpan segment(
        "jsr.segment", "planner",
        {trace::Arg::num("input", static_cast<std::int64_t>(td.input)),
         trace::Arg::num("from", static_cast<std::int64_t>(td.from)),
         trace::Arg::num("to", static_cast<std::int64_t>(td.to)),
         trace::Arg::num("first_step",
                         static_cast<std::int64_t>(program.steps.size()))});
    // (5) Temporary transition (i0, S0', H_out(td), -): jump to the source
    // state of the delta transition; this turns cell (i0, S0') into a new
    // delta transition.
    program.steps.push_back(
        ReconfigStep::rewrite(i0, td.from, tempOutput, /*temporary=*/true));
    // (6) Reconfigure the delta transition while traversing it.
    program.steps.push_back(
        ReconfigStep::rewrite(td.input, td.to, td.output));
    // (7) Return to S0' via the reset transition.
    program.steps.push_back(ReconfigStep::reset());
  }

  // (10) Reconfigure the temporary cell to its final M' contents
  // (i0, S0', F'(i0, S0'), G'(i0, S0')).
  program.steps.push_back(ReconfigStep::rewrite(
      i0, context.targetNext(i0, s0), context.targetOutput(i0, s0)));
  // (11) Final reset transition: finish in S0'.
  program.steps.push_back(ReconfigStep::reset());

  return program;
}

}  // namespace rfsm
