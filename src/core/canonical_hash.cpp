#include "core/canonical_hash.hpp"

namespace rfsm {
namespace {

/// splitmix64 finalizer: a bijective 64-bit mix.
std::uint64_t mix(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Field type tags, absorbed ahead of each field so differently-typed
// fields with equal raw bits stay distinct.
constexpr std::uint64_t kTagU64 = 1;
constexpr std::uint64_t kTagI64 = 2;
constexpr std::uint64_t kTagStr = 3;

}  // namespace

void CanonicalHasher::absorb(std::uint64_t word) {
  ++words_;
  // Position-dependent tweaks keep the lanes independent: a permutation of
  // the same words lands elsewhere in both.
  lane0_ = mix(lane0_ ^ (word + 0x9e3779b97f4a7c15ull * words_));
  lane1_ = mix(lane1_ + (word ^ 0xc2b2ae3d27d4eb4full * words_));
}

CanonicalHasher& CanonicalHasher::u64(std::uint64_t value) {
  absorb(kTagU64);
  absorb(value);
  return *this;
}

CanonicalHasher& CanonicalHasher::i64(std::int64_t value) {
  absorb(kTagI64);
  absorb(static_cast<std::uint64_t>(value));
  return *this;
}

CanonicalHasher& CanonicalHasher::str(std::string_view value) {
  absorb(kTagStr);
  absorb(value.size());
  // Little-endian packing, 8 bytes per word, zero-padded tail; the length
  // prefix above disambiguates the padding.
  std::uint64_t word = 0;
  int filled = 0;
  for (const char c : value) {
    word |= static_cast<std::uint64_t>(static_cast<unsigned char>(c))
            << (8 * filled);
    if (++filled == 8) {
      absorb(word);
      word = 0;
      filled = 0;
    }
  }
  if (filled > 0) absorb(word);
  return *this;
}

std::string CanonicalHasher::hex() const {
  const std::uint64_t final0 = mix(lane0_ ^ words_);
  const std::uint64_t final1 = mix(lane1_ + words_);
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(32);
  for (const std::uint64_t lane : {final0, final1})
    for (int shift = 60; shift >= 0; shift -= 4)
      out.push_back(kDigits[(lane >> shift) & 0xf]);
  return out;
}

}  // namespace rfsm
