// Migration difficulty analysis: predicting program length from structure.
//
// The gap between the Thm. 4.3 lower bound |Td| and what planners achieve
// is governed by how the delta transitions sit in the machine's graph:
// deltas whose landing state is the next delta's source chain for free,
// deltas reachable from S0' in one hop need no temporary transition, and
// sources unreachable without a jump force one.  This module extracts
// those features and a cheap length estimate; an ablation bench checks the
// estimate's fidelity against the EA planner's actual results.
#pragma once

#include <string>

#include "core/migration.hpp"

namespace rfsm {

/// Structural features of a migration instance.
struct DifficultyProfile {
  int deltaCount = 0;
  /// Delta sources reachable from S0' within one existing transition (cheap
  /// to reach even without temporaries).
  int sourcesNearReset = 0;
  /// Delta sources unreachable from S0' in the source machine (a temporary
  /// jump is the only way in).
  int sourcesUnreachable = 0;
  /// Ordered pairs (a, b) of deltas where a's landing state equals b's
  /// source (free chaining potential).
  int chainablePairs = 0;
  /// Deltas whose source lies outside the source machine's state set
  /// (structural: fresh rows that only temporaries reach).
  int structuralSources = 0;
  /// Mean BFS distance from S0' to reachable delta sources.
  double meanSourceDistance = 0.0;

  /// Cheap program-length estimate: every delta costs its rewrite, plus a
  /// connection cost of 0 (chained), 1 (near reset) or 2 (reset+temporary),
  /// plus the JSR-style tail.
  int estimatedLength() const;
};

/// Computes the profile on the *source* machine's graph (the graph the
/// first connections must use).
DifficultyProfile analyzeDifficulty(const MigrationContext& context);

/// One-line rendering for tables/logs.
std::string describeDifficulty(const DifficultyProfile& profile);

}  // namespace rfsm
