#include "core/mutable_machine.hpp"

#include <algorithm>
#include <queue>

#include "util/metrics.hpp"

namespace rfsm {

MutableMachine::MutableMachine(const MigrationContext& context)
    : context_(context), state_(context.sourceReset()) {
  const auto cells = static_cast<std::size_t>(context.states().size()) *
                     static_cast<std::size_t>(context.inputs().size());
  next_.assign(cells, kNoSymbol);
  out_.assign(cells, kNoSymbol);
  specified_.assign(cells, 0);
  for (SymbolId s = 0; s < context.states().size(); ++s) {
    if (!context.inSourceStates(s)) continue;
    for (SymbolId i = 0; i < context.inputs().size(); ++i) {
      if (!context.inSourceInputs(i)) continue;
      const std::size_t c = cell(i, s);
      next_[c] = context.sourceNext(i, s);
      out_[c] = context.sourceOutput(i, s);
      specified_[c] = 1;
    }
  }
}

std::size_t MutableMachine::cell(SymbolId input, SymbolId state) const {
  RFSM_CHECK(context_.inputs().contains(input), "input id out of range");
  RFSM_CHECK(context_.states().contains(state), "state id out of range");
  return static_cast<std::size_t>(state) *
             static_cast<std::size_t>(context_.inputs().size()) +
         static_cast<std::size_t>(input);
}

bool MutableMachine::isSpecified(SymbolId input, SymbolId state) const {
  return specified_[cell(input, state)] != 0;
}

SymbolId MutableMachine::next(SymbolId input, SymbolId state) const {
  const std::size_t c = cell(input, state);
  RFSM_CHECK(specified_[c] != 0, "reading an unspecified F cell");
  return next_[c];
}

SymbolId MutableMachine::output(SymbolId input, SymbolId state) const {
  const std::size_t c = cell(input, state);
  RFSM_CHECK(specified_[c] != 0, "reading an unspecified G cell");
  return out_[c];
}

SymbolId MutableMachine::applyStep(const ReconfigStep& step) {
  switch (step.kind) {
    case StepKind::kReset:
      state_ = context_.targetReset();
      return kNoSymbol;
    case StepKind::kTraverse: {
      const std::size_t c = cell(step.input, state_);
      if (specified_[c] == 0)
        throw MigrationError(
            "traverse through unspecified cell (" +
            context_.inputs().name(step.input) + ", " +
            context_.states().name(state_) + ")");
      state_ = next_[c];
      return out_[c];
    }
    case StepKind::kRewrite: {
      RFSM_CHECK(context_.states().contains(step.nextState),
                 "rewrite next-state out of range");
      RFSM_CHECK(context_.outputs().contains(step.output),
                 "rewrite output out of range");
      const std::size_t c = cell(step.input, state_);
      next_[c] = step.nextState;
      out_[c] = step.output;
      specified_[c] = 1;
      ++tableVersion_;  // the transition graph changed; BFS caches are stale
      // Write-through traversal: the machine takes the new transition in
      // the same cycle (this is what makes temporary transitions shortcuts).
      state_ = step.nextState;
      return step.output;
    }
  }
  throw MigrationError("unknown step kind");
}

void MutableMachine::applyProgram(const ReconfigurationProgram& program) {
  for (const ReconfigStep& step : program.steps) applyStep(step);
}

SymbolId MutableMachine::stepNormal(SymbolId input) {
  const std::size_t c = cell(input, state_);
  RFSM_CHECK(specified_[c] != 0, "normal step through unspecified cell");
  const SymbolId o = out_[c];
  state_ = next_[c];
  return o;
}

void MutableMachine::loadCell(SymbolId input, SymbolId state,
                              SymbolId nextState, SymbolId output) {
  RFSM_CHECK(context_.states().contains(nextState),
             "loadCell next-state out of range");
  RFSM_CHECK(context_.outputs().contains(output),
             "loadCell output out of range");
  const std::size_t c = cell(input, state);
  next_[c] = nextState;
  out_[c] = output;
  specified_[c] = 1;
  ++tableVersion_;
}

std::optional<SymbolId> MutableMachine::edgeInput(SymbolId from,
                                                  SymbolId to) const {
  for (SymbolId i = 0; i < context_.inputs().size(); ++i) {
    const std::size_t c = cell(i, from);
    if (specified_[c] != 0 && next_[c] == to) return i;
  }
  return std::nullopt;
}

const MutableMachine::BfsEntry& MutableMachine::bfsFrom(SymbolId from) const {
  static metrics::Counter& hits = metrics::counter(metrics::kBfsCacheHits);
  static metrics::Counter& misses =
      metrics::counter(metrics::kBfsCacheMisses);
  RFSM_CHECK(context_.states().contains(from), "BFS source out of range");
  if (bfsCache_.empty())
    bfsCache_.resize(static_cast<std::size_t>(context_.states().size()));
  BfsEntry& entry = bfsCache_[static_cast<std::size_t>(from)];
  if (entry.version == tableVersion_) {
    hits.add();
    return entry;
  }
  misses.add();

  const auto n = static_cast<std::size_t>(context_.states().size());
  entry.dist.assign(n, -1);
  entry.prevState.assign(n, kNoSymbol);
  entry.prevInput.assign(n, kNoSymbol);
  std::queue<SymbolId> frontier;
  entry.dist[static_cast<std::size_t>(from)] = 0;
  frontier.push(from);
  while (!frontier.empty()) {
    const SymbolId u = frontier.front();
    frontier.pop();
    for (SymbolId i = 0; i < context_.inputs().size(); ++i) {
      const std::size_t c = cell(i, u);
      if (specified_[c] == 0) continue;
      const SymbolId v = next_[c];
      if (entry.dist[static_cast<std::size_t>(v)] != -1) continue;
      entry.dist[static_cast<std::size_t>(v)] =
          entry.dist[static_cast<std::size_t>(u)] + 1;
      entry.prevState[static_cast<std::size_t>(v)] = u;
      entry.prevInput[static_cast<std::size_t>(v)] = i;
      frontier.push(v);
    }
  }
  entry.version = tableVersion_;
  return entry;
}

const std::vector<int>& MutableMachine::distancesFrom(SymbolId from) const {
  return bfsFrom(from).dist;
}

std::optional<std::vector<SymbolId>> MutableMachine::pathInputs(
    SymbolId from, SymbolId to) const {
  const BfsEntry& bfs = bfsFrom(from);
  if (bfs.dist[static_cast<std::size_t>(to)] == -1) return std::nullopt;
  std::vector<SymbolId> inputs;
  for (SymbolId v = to; v != from;
       v = bfs.prevState[static_cast<std::size_t>(v)])
    inputs.push_back(bfs.prevInput[static_cast<std::size_t>(v)]);
  std::reverse(inputs.begin(), inputs.end());
  return inputs;
}

bool MutableMachine::matchesTarget(std::string* reason) const {
  const Machine& target = context_.targetMachine();
  for (SymbolId s = 0; s < target.stateCount(); ++s) {
    const SymbolId ss = context_.liftTargetState(s);
    for (SymbolId i = 0; i < target.inputCount(); ++i) {
      const SymbolId si = context_.liftTargetInput(i);
      const std::size_t c = cell(si, ss);
      const SymbolId wantNext =
          context_.liftTargetState(target.next(i, s));
      const SymbolId wantOut =
          context_.liftTargetOutput(target.output(i, s));
      const bool ok = specified_[c] != 0 && next_[c] == wantNext &&
                      out_[c] == wantOut;
      if (!ok) {
        if (reason != nullptr) {
          *reason = "cell (" + context_.inputs().name(si) + ", " +
                    context_.states().name(ss) + ") ";
          if (specified_[c] == 0) {
            *reason += "is unspecified";
          } else {
            *reason += "holds (" + context_.states().name(next_[c]) + ", " +
                       context_.outputs().name(out_[c]) + ") but M' wants (" +
                       context_.states().name(wantNext) + ", " +
                       context_.outputs().name(wantOut) + ")";
          }
        }
        return false;
      }
    }
  }
  return true;
}

Machine MutableMachine::extractTarget() const {
  std::string reason;
  RFSM_CHECK(matchesTarget(&reason),
             "machine does not realize the target: " + reason);
  // The realized machine equals M' on the target domain by the check above.
  return context_.targetMachine();
}

}  // namespace rfsm
