#include "core/mutable_machine.hpp"

#include <algorithm>
#include <mutex>
#include <queue>
#include <unordered_map>

#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace rfsm {
namespace {

/// ceil(log2(count)) with a 1-bit floor — the RAM word width of a field
/// holding ids 0..count-1.
int bitWidth(int count) {
  int width = 1;
  while ((1 << width) < count) ++width;
  return width;
}

/// Bijective 64-bit mix (splitmix64 finalizer) of the packed (next, out)
/// pair.  Bijective means distinct cell contents always map to distinct
/// checksums: every corruption of a specified cell is detectable.
std::uint64_t cellChecksum(SymbolId next, SymbolId out) {
  std::uint64_t x =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(next)) << 32) |
      static_cast<std::uint32_t>(out);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Renders a symbol id that may have been corrupted out of table range.
std::string safeName(const SymbolTable& table, SymbolId id) {
  if (table.contains(id)) return table.name(id);
  return "<corrupt id " + std::to_string(id) + ">";
}

/// Pool bounds: beyond 64 parked buffers or 512-state shapes the allocator
/// is cheaper than holding the memory hostage.
constexpr std::size_t kBfsPoolMaxBuffers = 64;
constexpr std::size_t kBfsPoolMaxStates = 512;

}  // namespace

struct MutableMachine::BfsPool {
  std::mutex mutex;
  // Parked buffers by state count; each retains its inner vectors'
  // capacity, which is the whole savings.
  std::unordered_map<std::size_t, std::vector<std::vector<BfsEntry>>> buffers;
  std::size_t count = 0;
};

MutableMachine::BfsPool& MutableMachine::bfsPool() {
  static BfsPool* pool = new BfsPool();  // immortal: released in dtors that
                                         // may run during static teardown
  return *pool;
}

std::vector<MutableMachine::BfsEntry> MutableMachine::acquireBfsBuffer(
    std::size_t states) {
  BfsPool& pool = bfsPool();
  std::vector<BfsEntry> buffer;
  {
    std::lock_guard<std::mutex> lock(pool.mutex);
    auto it = pool.buffers.find(states);
    if (it != pool.buffers.end() && !it->second.empty()) {
      buffer = std::move(it->second.back());
      it->second.pop_back();
      --pool.count;
    }
  }
  if (buffer.empty()) {
    buffer.resize(states);
    return buffer;
  }
  // Version 0 never equals a live tableVersion_ (>= 1): the recycled buffer
  // keeps its allocations but cannot serve another machine's trees.
  for (BfsEntry& entry : buffer) entry.version = 0;
  metrics::counter(metrics::kBfsPoolReuses).add();
  return buffer;
}

void MutableMachine::releaseBfsBuffer(std::vector<BfsEntry>&& buffer) {
  const std::size_t states = buffer.size();
  if (states == 0 || states > kBfsPoolMaxStates) return;
  BfsPool& pool = bfsPool();
  std::lock_guard<std::mutex> lock(pool.mutex);
  if (pool.count >= kBfsPoolMaxBuffers) return;
  pool.buffers[states].push_back(std::move(buffer));
  ++pool.count;
}

MutableMachine::~MutableMachine() { releaseBfsBuffer(std::move(bfsCache_)); }

MutableMachine::MutableMachine(const MigrationContext& context)
    : context_(context),
      stateBits_(bitWidth(context.states().size())),
      outputBits_(bitWidth(context.outputs().size())),
      state_(context.sourceReset()) {
  const auto cells = static_cast<std::size_t>(context.states().size()) *
                     static_cast<std::size_t>(context.inputs().size());
  next_.assign(cells, kNoSymbol);
  out_.assign(cells, kNoSymbol);
  specified_.assign(cells, 0);
  integrity_.assign(cells, 0);
  for (SymbolId s = 0; s < context.states().size(); ++s) {
    if (!context.inSourceStates(s)) continue;
    for (SymbolId i = 0; i < context.inputs().size(); ++i) {
      if (!context.inSourceInputs(i)) continue;
      const std::size_t c = cell(i, s);
      next_[c] = context.sourceNext(i, s);
      out_[c] = context.sourceOutput(i, s);
      specified_[c] = 1;
      reseal(c);
    }
  }
}

void MutableMachine::reseal(std::size_t c) {
  integrity_[c] = cellChecksum(next_[c], out_[c]);
}

std::size_t MutableMachine::cell(SymbolId input, SymbolId state) const {
  RFSM_CHECK(context_.inputs().contains(input), "input id out of range");
  RFSM_CHECK(context_.states().contains(state), "state id out of range");
  return static_cast<std::size_t>(state) *
             static_cast<std::size_t>(context_.inputs().size()) +
         static_cast<std::size_t>(input);
}

bool MutableMachine::isSpecified(SymbolId input, SymbolId state) const {
  return specified_[cell(input, state)] != 0;
}

SymbolId MutableMachine::next(SymbolId input, SymbolId state) const {
  const std::size_t c = cell(input, state);
  RFSM_CHECK(specified_[c] != 0, "reading an unspecified F cell");
  return next_[c];
}

SymbolId MutableMachine::output(SymbolId input, SymbolId state) const {
  const std::size_t c = cell(input, state);
  RFSM_CHECK(specified_[c] != 0, "reading an unspecified G cell");
  return out_[c];
}

SymbolId MutableMachine::applyStep(const ReconfigStep& step) {
  switch (step.kind) {
    case StepKind::kReset:
      state_ = context_.targetReset();
      return kNoSymbol;
    case StepKind::kTraverse: {
      const std::size_t c = cell(step.input, state_);
      if (specified_[c] == 0)
        throw MigrationError(
            "traverse through unspecified cell (" +
            context_.inputs().name(step.input) + ", " +
            context_.states().name(state_) + ")");
      if (!context_.states().contains(next_[c]))
        throw MigrationError(
            "traverse through corrupted cell (" +
            context_.inputs().name(step.input) + ", " +
            context_.states().name(state_) + "): F entry " +
            std::to_string(next_[c]) + " is not a state");
      state_ = next_[c];
      return out_[c];
    }
    case StepKind::kRewrite: {
      RFSM_CHECK(context_.states().contains(step.nextState),
                 "rewrite next-state out of range");
      RFSM_CHECK(context_.outputs().contains(step.output),
                 "rewrite output out of range");
      const std::size_t c = cell(step.input, state_);
      next_[c] = step.nextState;
      out_[c] = step.output;
      specified_[c] = 1;
      reseal(c);
      ++tableVersion_;  // the transition graph changed; BFS caches are stale
      // Write-through traversal: the machine takes the new transition in
      // the same cycle (this is what makes temporary transitions shortcuts).
      state_ = step.nextState;
      return step.output;
    }
  }
  throw MigrationError("unknown step kind");
}

void MutableMachine::applyProgram(const ReconfigurationProgram& program) {
  for (const ReconfigStep& step : program.steps) applyStep(step);
}

SymbolId MutableMachine::stepNormal(SymbolId input) {
  const std::size_t c = cell(input, state_);
  RFSM_CHECK(specified_[c] != 0, "normal step through unspecified cell");
  if (!context_.states().contains(next_[c]))
    throw MigrationError("normal step through corrupted cell (" +
                         context_.inputs().name(input) + ", " +
                         context_.states().name(state_) + "): F entry " +
                         std::to_string(next_[c]) + " is not a state");
  const SymbolId o = out_[c];
  state_ = next_[c];
  return o;
}

void MutableMachine::loadCell(SymbolId input, SymbolId state,
                              SymbolId nextState, SymbolId output) {
  RFSM_CHECK(context_.states().contains(nextState),
             "loadCell next-state out of range");
  RFSM_CHECK(context_.outputs().contains(output),
             "loadCell output out of range");
  const std::size_t c = cell(input, state);
  next_[c] = nextState;
  out_[c] = output;
  specified_[c] = 1;
  reseal(c);
  ++tableVersion_;
}

void MutableMachine::clearCell(SymbolId input, SymbolId state) {
  const std::size_t c = cell(input, state);
  next_[c] = kNoSymbol;
  out_[c] = kNoSymbol;
  specified_[c] = 0;
  integrity_[c] = 0;
  ++tableVersion_;
}

void MutableMachine::corruptBit(SymbolId input, SymbolId state, int bit) {
  RFSM_CHECK(bit >= 0 && bit < faultBitsPerCell(),
             "corrupt bit index out of the cell word");
  const std::size_t c = cell(input, state);
  if (bit < stateBits_)
    next_[c] ^= SymbolId{1} << bit;
  else
    out_[c] ^= SymbolId{1} << (bit - stateBits_);
  // No reseal: the damage is silent at the RAM level.  The version bump
  // only keeps the software BFS cache coherent with the stored words.
  ++tableVersion_;
}

std::vector<TotalState> MutableMachine::integrityScan() const {
  static metrics::Counter& scans = metrics::counter(metrics::kIntegrityScans);
  scans.add();
  std::vector<TotalState> corrupted;
  for (SymbolId s = 0; s < context_.states().size(); ++s) {
    for (SymbolId i = 0; i < context_.inputs().size(); ++i) {
      const std::size_t c = cell(i, s);
      if (specified_[c] == 0) continue;
      if (integrity_[c] != cellChecksum(next_[c], out_[c]))
        corrupted.push_back(TotalState{i, s});
    }
  }
  return corrupted;
}

MutableMachine::TableImage MutableMachine::checkpoint() const {
  return TableImage{next_, out_, specified_, integrity_, state_};
}

void MutableMachine::restore(const TableImage& image) {
  RFSM_CHECK(image.next.size() == next_.size() &&
                 image.out.size() == out_.size() &&
                 image.specified.size() == specified_.size() &&
                 image.integrity.size() == integrity_.size(),
             "restoring a checkpoint of a different machine");
  RFSM_CHECK(context_.states().contains(image.state),
             "restoring a checkpoint with an invalid state");
  next_ = image.next;
  out_ = image.out;
  specified_ = image.specified;
  integrity_ = image.integrity;
  state_ = image.state;
  ++tableVersion_;
}

bool MutableMachine::matchesSource(std::string* reason) const {
  const Machine& source = context_.sourceMachine();
  for (SymbolId s = 0; s < source.stateCount(); ++s) {
    const SymbolId ss = context_.liftSourceState(s);
    for (SymbolId i = 0; i < source.inputCount(); ++i) {
      const SymbolId si = context_.liftSourceInput(i);
      const std::size_t c = cell(si, ss);
      const SymbolId wantNext = context_.sourceNext(si, ss);
      const SymbolId wantOut = context_.sourceOutput(si, ss);
      const bool ok = specified_[c] != 0 && next_[c] == wantNext &&
                      out_[c] == wantOut;
      if (!ok) {
        if (reason != nullptr)
          *reason = "cell (" + context_.inputs().name(si) + ", " +
                    context_.states().name(ss) + ") does not hold M's (" +
                    safeName(context_.states(), wantNext) + ", " +
                    safeName(context_.outputs(), wantOut) + ")";
        return false;
      }
    }
  }
  return true;
}

std::optional<SymbolId> MutableMachine::edgeInput(SymbolId from,
                                                  SymbolId to) const {
  for (SymbolId i = 0; i < context_.inputs().size(); ++i) {
    const std::size_t c = cell(i, from);
    if (specified_[c] != 0 && next_[c] == to) return i;
  }
  return std::nullopt;
}

const MutableMachine::BfsEntry& MutableMachine::bfsFrom(SymbolId from) const {
  static metrics::Counter& hits = metrics::counter(metrics::kBfsCacheHits);
  static metrics::Counter& misses =
      metrics::counter(metrics::kBfsCacheMisses);
  RFSM_CHECK(context_.states().contains(from), "BFS source out of range");
  if (bfsCache_.empty())
    bfsCache_ =
        acquireBfsBuffer(static_cast<std::size_t>(context_.states().size()));
  BfsEntry& entry = bfsCache_[static_cast<std::size_t>(from)];
  if (entry.version == tableVersion_) {
    hits.add();
    return entry;
  }
  misses.add();
  pollCancel(cancel_, "planner.bfs");
  trace::ScopedSpan span(
      "planner.bfs", "planner",
      {trace::Arg::num("from", static_cast<std::int64_t>(from))});

  const auto n = static_cast<std::size_t>(context_.states().size());
  entry.dist.assign(n, -1);
  entry.prevState.assign(n, kNoSymbol);
  entry.prevInput.assign(n, kNoSymbol);
  std::queue<SymbolId> frontier;
  entry.dist[static_cast<std::size_t>(from)] = 0;
  frontier.push(from);
  while (!frontier.empty()) {
    const SymbolId u = frontier.front();
    frontier.pop();
    for (SymbolId i = 0; i < context_.inputs().size(); ++i) {
      const std::size_t c = cell(i, u);
      if (specified_[c] == 0) continue;
      const SymbolId v = next_[c];
      // A corrupted F entry may point outside the state alphabet; treat the
      // edge as missing rather than indexing out of bounds.
      if (!context_.states().contains(v)) continue;
      if (entry.dist[static_cast<std::size_t>(v)] != -1) continue;
      entry.dist[static_cast<std::size_t>(v)] =
          entry.dist[static_cast<std::size_t>(u)] + 1;
      entry.prevState[static_cast<std::size_t>(v)] = u;
      entry.prevInput[static_cast<std::size_t>(v)] = i;
      frontier.push(v);
    }
  }
  entry.version = tableVersion_;
  return entry;
}

const std::vector<int>& MutableMachine::distancesFrom(SymbolId from) const {
  return bfsFrom(from).dist;
}

std::optional<std::vector<SymbolId>> MutableMachine::pathInputs(
    SymbolId from, SymbolId to) const {
  const BfsEntry& bfs = bfsFrom(from);
  if (bfs.dist[static_cast<std::size_t>(to)] == -1) return std::nullopt;
  std::vector<SymbolId> inputs;
  for (SymbolId v = to; v != from;
       v = bfs.prevState[static_cast<std::size_t>(v)])
    inputs.push_back(bfs.prevInput[static_cast<std::size_t>(v)]);
  std::reverse(inputs.begin(), inputs.end());
  return inputs;
}

bool MutableMachine::matchesTarget(std::string* reason) const {
  const Machine& target = context_.targetMachine();
  for (SymbolId s = 0; s < target.stateCount(); ++s) {
    const SymbolId ss = context_.liftTargetState(s);
    for (SymbolId i = 0; i < target.inputCount(); ++i) {
      const SymbolId si = context_.liftTargetInput(i);
      const std::size_t c = cell(si, ss);
      const SymbolId wantNext =
          context_.liftTargetState(target.next(i, s));
      const SymbolId wantOut =
          context_.liftTargetOutput(target.output(i, s));
      const bool ok = specified_[c] != 0 && next_[c] == wantNext &&
                      out_[c] == wantOut;
      if (!ok) {
        if (reason != nullptr) {
          *reason = "cell (" + context_.inputs().name(si) + ", " +
                    context_.states().name(ss) + ") ";
          if (specified_[c] == 0) {
            *reason += "is unspecified";
          } else {
            *reason += "holds (" + safeName(context_.states(), next_[c]) +
                       ", " + safeName(context_.outputs(), out_[c]) +
                       ") but M' wants (" +
                       context_.states().name(wantNext) + ", " +
                       context_.outputs().name(wantOut) + ")";
          }
        }
        return false;
      }
    }
  }
  return true;
}

Machine MutableMachine::extractTarget() const {
  std::string reason;
  RFSM_CHECK(matchesTarget(&reason),
             "machine does not realize the target: " + reason);
  // The realized machine equals M' on the target domain by the check above.
  return context_.targetMachine();
}

}  // namespace rfsm
