// Local-search planners complementing the Sec. 4.6 evolutionary algorithm.
//
// The delta-ordering problem is TSP-like (the paper's own observation), so
// classic TSP local search applies: 2-opt slice reversal on the order, and
// simulated annealing over swap/insert moves.  Both use the same decoder as
// the EA (decodeOrder), so results are directly comparable.
#pragma once

#include "core/migration.hpp"
#include "core/planners.hpp"
#include "core/program.hpp"
#include "util/rng.hpp"

namespace rfsm {

/// Result of a local-search run.
struct LocalSearchPlan {
  ReconfigurationProgram program;
  int evaluations = 0;   // decoder invocations
  int improvements = 0;  // accepted improving moves
};

/// First-improvement 2-opt on the delta order, started from `seed` (or the
/// identity order when empty).  Terminates at a local optimum or after
/// `maxEvaluations` decodes.
LocalSearchPlan planTwoOpt(const MigrationContext& context,
                           const std::vector<int>& seed = {},
                           const DecodeOptions& options = {},
                           int maxEvaluations = 20000);

/// Simulated-annealing parameters.
struct AnnealingConfig {
  double initialTemperature = 4.0;
  double coolingRate = 0.995;  // multiplicative per move
  int moves = 4000;
};

/// Simulated annealing over swap moves on the delta order.
LocalSearchPlan planAnnealing(const MigrationContext& context,
                              const AnnealingConfig& config, Rng& rng,
                              const DecodeOptions& options = {});

}  // namespace rfsm
