// Reconfiguration sequences in the paper's Table 1 form.
//
// Def. 2.2 drives reconfiguration through reconfiguration states r in R;
// each r determines H_i(i, r) (the forced internal input ir), H_f(r) and
// H_g(r) (the values written into F-RAM / G-RAM).  A ReconfigurationSequence
// is the tabulated form of a ReconfigurationProgram: one row per clock
// cycle, exactly what the hardware Reconfigurator block (Fig. 5) plays
// back.  Sec. 4.2: "From a reconfiguration program, a corresponding
// reconfiguration sequence according to Table 1 can be easily derived".
#pragma once

#include <string>
#include <vector>

#include "core/migration.hpp"
#include "core/program.hpp"

namespace rfsm {

/// One row of Table 1: the control word for one reconfiguration cycle.
struct SequenceRow {
  /// H_i value: the internal input ir selecting the RAM column (unused on
  /// reset rows).
  SymbolId ir = kNoSymbol;
  /// H_f value written to F-RAM when `write` is set.
  SymbolId hf = kNoSymbol;
  /// H_g value written to G-RAM when `write` is set.
  SymbolId hg = kNoSymbol;
  /// Write-enable for F-RAM/G-RAM this cycle (the "set" of jump-set-return).
  bool write = false;
  /// Assert the RST-MUX this cycle.
  bool reset = false;

  bool operator==(const SequenceRow&) const = default;
};

/// A whole reconfiguration sequence (rows r_1..r_n; r_0 = normal mode is
/// implicit before and after).
struct ReconfigurationSequence {
  std::vector<SequenceRow> rows;

  int length() const { return static_cast<int>(rows.size()); }
};

/// Tabulates a program into the Table 1 control words.
ReconfigurationSequence sequenceFromProgram(
    const ReconfigurationProgram& program);

/// Inverse of sequenceFromProgram (used to round-trip and to lift captured
/// hardware traces back into programs).  Rows with `write` become Rewrite
/// steps, rows with `reset` become Resets, others Traverses.
ReconfigurationProgram programFromSequence(
    const ReconfigurationSequence& sequence);

/// Renders the sequence like the paper's Table 1 (columns r, H_i, H_f, H_g)
/// in markdown.
std::string sequenceToMarkdown(const MigrationContext& context,
                               const ReconfigurationSequence& sequence);

}  // namespace rfsm
