#include "core/dontcare.hpp"

#include "util/check.hpp"

namespace rfsm {

CompletionResult completeForMigration(const Machine& source,
                                      const PartialMachine& spec) {
  // Name-based views of the source alphabets within the spec's id space.
  auto sourceStateOf = [&](SymbolId specState) {
    return source.states().find(spec.states().name(specState));
  };
  auto sourceInputOf = [&](SymbolId specInput) {
    return source.inputs().find(spec.inputs().name(specInput));
  };

  const int inputCount = spec.inputs().size();
  const auto cells = static_cast<std::size_t>(spec.states().size()) *
                     static_cast<std::size_t>(inputCount);
  std::vector<SymbolId> next(cells, kNoSymbol);
  std::vector<SymbolId> out(cells, kNoSymbol);
  auto cellIndex = [&](SymbolId input, SymbolId state) {
    return static_cast<std::size_t>(state) *
               static_cast<std::size_t>(inputCount) +
           static_cast<std::size_t>(input);
  };

  CompletionResult result{Machine(source), 0, 0};  // placeholder machine
  const SymbolId defaultOutput = 0;

  for (SymbolId s = 0; s < spec.states().size(); ++s) {
    const auto srcState = sourceStateOf(s);
    for (SymbolId i = 0; i < inputCount; ++i) {
      const auto srcInput = sourceInputOf(i);
      const std::size_t c = cellIndex(i, s);

      // Next state: spec value, else inherit from the source when both the
      // cell and the source's successor are expressible, else self-loop.
      SymbolId n = spec.next(i, s);
      if (n == kNoSymbol) {
        bool inherited = false;
        if (srcState.has_value() && srcInput.has_value()) {
          const SymbolId srcNext = source.next(*srcInput, *srcState);
          const auto mapped =
              spec.states().find(source.states().name(srcNext));
          if (mapped.has_value()) {
            n = *mapped;
            inherited = true;
          }
        }
        if (!inherited) {
          n = s;  // self-loop fallback
          ++result.defaultedCells;
        } else {
          ++result.inheritedCells;
        }
      }
      // Output: same policy.
      SymbolId o = spec.output(i, s);
      if (o == kNoSymbol) {
        bool inherited = false;
        if (srcState.has_value() && srcInput.has_value()) {
          const SymbolId srcOut = source.output(*srcInput, *srcState);
          const auto mapped =
              spec.outputs().find(source.outputs().name(srcOut));
          if (mapped.has_value()) {
            o = *mapped;
            inherited = true;
          }
        }
        if (!inherited) {
          o = defaultOutput;
          ++result.defaultedCells;
        } else {
          ++result.inheritedCells;
        }
      }
      next[c] = n;
      out[c] = o;
    }
  }

  result.target = Machine(spec.name() + "_completed", spec.inputs(),
                          spec.outputs(), spec.states(), spec.resetState(),
                          std::move(next), std::move(out));
  return result;
}

}  // namespace rfsm
