#include "core/partial.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "core/mutable_machine.hpp"
#include "util/check.hpp"

namespace rfsm {
namespace {

constexpr int kInf = std::numeric_limits<int>::max() / 4;

/// Emits the cheaper of {walk from the current state, reset + walk from
/// S0'} to reach `target`; throws MigrationError when neither exists.
void appendConnect(MutableMachine& machine, ReconfigurationProgram& program,
                   SymbolId target) {
  const MigrationContext& context = machine.context();
  auto emit = [&](const ReconfigStep& step) {
    program.steps.push_back(step);
    machine.applyStep(step);
  };
  if (machine.state() == target) return;

  const auto fromHere = machine.distancesFrom(machine.state());
  const int dHere = fromHere[static_cast<std::size_t>(target)];
  const auto fromReset = machine.distancesFrom(context.targetReset());
  const int dReset = fromReset[static_cast<std::size_t>(target)];
  const int costWalk = dHere < 0 ? kInf : dHere;
  const int costReset = dReset < 0 ? kInf : 1 + dReset;
  if (costWalk >= kInf && costReset >= kInf)
    throw MigrationError("output-only planner: state '" +
                         context.states().name(target) +
                         "' unreachable without temporary transitions");
  if (costReset < costWalk) emit(ReconfigStep::reset());
  const auto inputs = machine.pathInputs(machine.state(), target);
  RFSM_CHECK(inputs.has_value(), "connect target became unreachable");
  for (const SymbolId input : *inputs) emit(ReconfigStep::traverse(input));
}

}  // namespace

DeltaClassification classifyDeltas(const MigrationContext& context) {
  DeltaClassification result;
  for (const Transition& t : context.deltaTransitions()) {
    const bool outsideSource =
        !context.inSourceInputs(t.input) || !context.inSourceStates(t.from) ||
        !context.inSourceStates(t.to) || !context.inSourceOutputs(t.output);
    if (outsideSource) {
      ++result.structural;
      continue;
    }
    const bool nextDiffers = context.sourceNext(t.input, t.from) != t.to;
    const bool outDiffers = context.sourceOutput(t.input, t.from) != t.output;
    if (nextDiffers && outDiffers) {
      ++result.both;
    } else if (nextDiffers) {
      ++result.transitionOnly;
    } else {
      ++result.outputOnly;
    }
  }
  return result;
}

bool isOutputOnlyMigration(const MigrationContext& context) {
  const DeltaClassification c = classifyDeltas(context);
  return c.transitionOnly == 0 && c.both == 0 && c.structural == 0;
}

ReconfigurationProgram planOutputOnlyGreedy(const MigrationContext& context) {
  if (!isOutputOnlyMigration(context))
    throw MigrationError(
        "planOutputOnlyGreedy requires an output-only migration");

  MutableMachine machine(context);
  ReconfigurationProgram program;
  auto emit = [&](const ReconfigStep& step) {
    program.steps.push_back(step);
    machine.applyStep(step);
  };
  emit(ReconfigStep::reset());

  std::vector<Transition> deltas = context.deltaTransitions();
  std::vector<bool> done(deltas.size(), false);
  for (std::size_t round = 0; round < deltas.size(); ++round) {
    // Nearest remaining delta from the current state (reset allowed).
    const auto fromHere = machine.distancesFrom(machine.state());
    const auto fromReset = machine.distancesFrom(context.targetReset());
    int best = -1;
    int bestCost = kInf + 1;
    for (std::size_t k = 0; k < deltas.size(); ++k) {
      if (done[k]) continue;
      const auto from = static_cast<std::size_t>(deltas[k].from);
      const int dHere = fromHere[from] < 0 ? kInf : fromHere[from];
      const int dReset = fromReset[from] < 0 ? kInf : 1 + fromReset[from];
      const int cost = std::min(dHere, dReset);
      if (cost < bestCost) {
        bestCost = cost;
        best = static_cast<int>(k);
      }
    }
    const Transition& td = deltas[static_cast<std::size_t>(best)];
    appendConnect(machine, program, td.from);
    // Output-only rewrite: td.to equals the existing F value, so the graph
    // is unchanged and the machine simply takes the (relabelled) edge.
    emit(ReconfigStep::rewrite(td.input, td.to, td.output));
    done[static_cast<std::size_t>(best)] = true;
  }
  if (machine.state() != context.targetReset())
    emit(ReconfigStep::reset());
  return program;
}

std::optional<ReconfigurationProgram> planOutputOnlyOptimal(
    const MigrationContext& context, int maxDeltas) {
  if (!isOutputOnlyMigration(context))
    throw MigrationError(
        "planOutputOnlyOptimal requires an output-only migration");
  const std::vector<Transition>& deltas = context.deltaTransitions();
  const int n = static_cast<int>(deltas.size());
  if (n > maxDeltas) return std::nullopt;
  if (n == 0) {
    ReconfigurationProgram program;
    program.steps.push_back(ReconfigStep::reset());
    return program;
  }

  // Static distances (the graph never changes in output-only migrations).
  const MutableMachine machine(context);
  const SymbolId s0 = context.targetReset();
  const auto fromReset = machine.distancesFrom(s0);
  auto walkOrReset = [&](const std::vector<int>& fromU, SymbolId v) {
    const int dWalk = fromU[static_cast<std::size_t>(v)];
    const int dReset = fromReset[static_cast<std::size_t>(v)];
    const int costWalk = dWalk < 0 ? kInf : dWalk;
    const int costReset = dReset < 0 ? kInf : 1 + dReset;
    return std::min(costWalk, costReset);
  };

  // cost[a][b]: cycles to move from delta a's landing state to delta b's
  // source; start[b]: from S0' (after the leading reset) to b's source.
  std::vector<std::vector<int>> fromLanding(
      static_cast<std::size_t>(n));
  for (int a = 0; a < n; ++a)
    fromLanding[static_cast<std::size_t>(a)] =
        machine.distancesFrom(deltas[static_cast<std::size_t>(a)].to);
  std::vector<int> start(static_cast<std::size_t>(n));
  std::vector<std::vector<int>> cost(
      static_cast<std::size_t>(n), std::vector<int>(static_cast<std::size_t>(n)));
  for (int b = 0; b < n; ++b) {
    start[static_cast<std::size_t>(b)] =
        walkOrReset(fromReset, deltas[static_cast<std::size_t>(b)].from);
    for (int a = 0; a < n; ++a)
      cost[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] =
          walkOrReset(fromLanding[static_cast<std::size_t>(a)],
                      deltas[static_cast<std::size_t>(b)].from);
  }

  // Held-Karp over delta subsets.
  const std::size_t full = std::size_t{1} << n;
  std::vector<std::vector<int>> dp(
      full, std::vector<int>(static_cast<std::size_t>(n), kInf));
  std::vector<std::vector<int>> parent(
      full, std::vector<int>(static_cast<std::size_t>(n), -1));
  for (int b = 0; b < n; ++b)
    dp[std::size_t{1} << b][static_cast<std::size_t>(b)] =
        start[static_cast<std::size_t>(b)];
  for (std::size_t mask = 1; mask < full; ++mask) {
    for (int last = 0; last < n; ++last) {
      if (!(mask & (std::size_t{1} << last))) continue;
      const int base = dp[mask][static_cast<std::size_t>(last)];
      if (base >= kInf) continue;
      for (int next = 0; next < n; ++next) {
        if (mask & (std::size_t{1} << next)) continue;
        const std::size_t nextMask = mask | (std::size_t{1} << next);
        const int candidate =
            base + cost[static_cast<std::size_t>(last)][
                       static_cast<std::size_t>(next)];
        if (candidate < dp[nextMask][static_cast<std::size_t>(next)]) {
          dp[nextMask][static_cast<std::size_t>(next)] = candidate;
          parent[nextMask][static_cast<std::size_t>(next)] = last;
        }
      }
    }
  }
  int bestLast = -1;
  int bestTotal = kInf;
  for (int last = 0; last < n; ++last) {
    const int tail =
        deltas[static_cast<std::size_t>(last)].to == s0 ? 0 : 1;  // reset
    const int total = dp[full - 1][static_cast<std::size_t>(last)] + tail;
    if (total < bestTotal) {
      bestTotal = total;
      bestLast = last;
    }
  }
  if (bestLast < 0 || bestTotal >= kInf)
    throw MigrationError("output-only optimal planner: instance unreachable");

  // Reconstruct the order and emit the program with the shared connector.
  std::vector<int> order;
  std::size_t mask = full - 1;
  for (int last = bestLast; last != -1;) {
    order.push_back(last);
    const int prev = parent[mask][static_cast<std::size_t>(last)];
    mask &= ~(std::size_t{1} << last);
    last = prev;
  }
  std::reverse(order.begin(), order.end());

  MutableMachine replay(context);
  ReconfigurationProgram program;
  auto emit = [&](const ReconfigStep& step) {
    program.steps.push_back(step);
    replay.applyStep(step);
  };
  emit(ReconfigStep::reset());
  for (const int index : order) {
    const Transition& td = deltas[static_cast<std::size_t>(index)];
    appendConnect(replay, program, td.from);
    emit(ReconfigStep::rewrite(td.input, td.to, td.output));
  }
  if (replay.state() != s0) emit(ReconfigStep::reset());
  return program;
}

}  // namespace rfsm
