#include "core/program.hpp"

#include <sstream>

#include "core/migration.hpp"

namespace rfsm {

ReconfigStep ReconfigStep::reset() { return ReconfigStep{}; }

ReconfigStep ReconfigStep::traverse(SymbolId input) {
  ReconfigStep s;
  s.kind = StepKind::kTraverse;
  s.input = input;
  return s;
}

ReconfigStep ReconfigStep::rewrite(SymbolId input, SymbolId nextState,
                                   SymbolId output, bool temporary) {
  ReconfigStep s;
  s.kind = StepKind::kRewrite;
  s.input = input;
  s.nextState = nextState;
  s.output = output;
  s.temporary = temporary;
  return s;
}

int ReconfigurationProgram::resetCount() const {
  int n = 0;
  for (const auto& s : steps)
    if (s.kind == StepKind::kReset) ++n;
  return n;
}

int ReconfigurationProgram::traverseCount() const {
  int n = 0;
  for (const auto& s : steps)
    if (s.kind == StepKind::kTraverse) ++n;
  return n;
}

int ReconfigurationProgram::rewriteCount() const {
  int n = 0;
  for (const auto& s : steps)
    if (s.kind == StepKind::kRewrite) ++n;
  return n;
}

int ReconfigurationProgram::temporaryCount() const {
  int n = 0;
  for (const auto& s : steps)
    if (s.kind == StepKind::kRewrite && s.temporary) ++n;
  return n;
}

std::string describeStep(const MigrationContext& context,
                         const ReconfigStep& step) {
  switch (step.kind) {
    case StepKind::kReset:
      return "RST -> " + context.states().name(context.targetReset());
    case StepKind::kTraverse:
      return "take  i=" + context.inputs().name(step.input);
    case StepKind::kRewrite: {
      std::string text = "write i=" + context.inputs().name(step.input) +
                         " F:=" + context.states().name(step.nextState) +
                         " G:=" + context.outputs().name(step.output);
      if (step.temporary) text += " (temporary)";
      return text;
    }
  }
  return "?";
}

std::string describeProgram(const MigrationContext& context,
                            const ReconfigurationProgram& program) {
  std::ostringstream os;
  for (std::size_t k = 0; k < program.steps.size(); ++k)
    os << "z" << k << ": " << describeStep(context, program.steps[k]) << "\n";
  return os.str();
}

}  // namespace rfsm
