#include "core/program.hpp"

#include <sstream>

#include "core/migration.hpp"
#include "util/strings.hpp"

namespace rfsm {

ReconfigStep ReconfigStep::reset() { return ReconfigStep{}; }

ReconfigStep ReconfigStep::traverse(SymbolId input) {
  ReconfigStep s;
  s.kind = StepKind::kTraverse;
  s.input = input;
  return s;
}

ReconfigStep ReconfigStep::rewrite(SymbolId input, SymbolId nextState,
                                   SymbolId output, bool temporary) {
  ReconfigStep s;
  s.kind = StepKind::kRewrite;
  s.input = input;
  s.nextState = nextState;
  s.output = output;
  s.temporary = temporary;
  return s;
}

int ReconfigurationProgram::resetCount() const {
  int n = 0;
  for (const auto& s : steps)
    if (s.kind == StepKind::kReset) ++n;
  return n;
}

int ReconfigurationProgram::traverseCount() const {
  int n = 0;
  for (const auto& s : steps)
    if (s.kind == StepKind::kTraverse) ++n;
  return n;
}

int ReconfigurationProgram::rewriteCount() const {
  int n = 0;
  for (const auto& s : steps)
    if (s.kind == StepKind::kRewrite) ++n;
  return n;
}

int ReconfigurationProgram::temporaryCount() const {
  int n = 0;
  for (const auto& s : steps)
    if (s.kind == StepKind::kRewrite && s.temporary) ++n;
  return n;
}

std::string describeStep(const MigrationContext& context,
                         const ReconfigStep& step) {
  switch (step.kind) {
    case StepKind::kReset:
      return "RST -> " + context.states().name(context.targetReset());
    case StepKind::kTraverse:
      return "take  i=" + context.inputs().name(step.input);
    case StepKind::kRewrite: {
      std::string text = "write i=" + context.inputs().name(step.input) +
                         " F:=" + context.states().name(step.nextState) +
                         " G:=" + context.outputs().name(step.output);
      if (step.temporary) text += " (temporary)";
      return text;
    }
  }
  return "?";
}

std::string describeProgram(const MigrationContext& context,
                            const ReconfigurationProgram& program) {
  std::ostringstream os;
  for (std::size_t k = 0; k < program.steps.size(); ++k)
    os << "z" << k << ": " << describeStep(context, program.steps[k]) << "\n";
  return os.str();
}

std::string programToText(const MigrationContext& context,
                          const ReconfigurationProgram& program) {
  std::ostringstream os;
  os << "rfsm-program v1\n";
  os << "steps " << program.length() << "\n";
  for (const ReconfigStep& step : program.steps) {
    switch (step.kind) {
      case StepKind::kReset:
        os << "reset\n";
        break;
      case StepKind::kTraverse:
        os << "traverse " << context.inputs().name(step.input) << "\n";
        break;
      case StepKind::kRewrite:
        os << (step.temporary ? "rewrite! " : "rewrite ")
           << context.inputs().name(step.input) << " "
           << context.states().name(step.nextState) << " "
           << context.outputs().name(step.output) << "\n";
        break;
    }
  }
  os << "end\n";
  return os.str();
}

namespace {

[[noreturn]] void parseFail(int line, const std::string& what) {
  throw ProgramParseError("program line " + std::to_string(line) + ": " +
                          what);
}

SymbolId resolve(const SymbolTable& table, const std::string& name,
                 const char* what, int line) {
  const auto id = table.find(name);
  if (!id.has_value())
    parseFail(line, std::string(what) + " '" + name +
                        "' is not in the superset alphabet");
  return *id;
}

}  // namespace

ReconfigurationProgram programFromText(const MigrationContext& context,
                                       const std::string& text) {
  std::istringstream in(text);
  std::string rawLine;
  int lineNo = 0;
  bool sawHeader = false, sawEnd = false;
  long long declaredSteps = -1;
  ReconfigurationProgram program;
  while (std::getline(in, rawLine)) {
    ++lineNo;
    std::string line = trim(rawLine);
    if (auto hash = line.find('#'); hash != std::string::npos)
      line = trim(line.substr(0, hash));
    if (line.empty()) continue;
    if (sawEnd) parseFail(lineNo, "content after 'end'");
    if (!sawHeader) {
      if (line != "rfsm-program v1")
        parseFail(lineNo, "expected header 'rfsm-program v1'");
      sawHeader = true;
      continue;
    }
    const auto tokens = splitWhitespace(line);
    if (tokens[0] == "steps") {
      if (declaredSteps >= 0) parseFail(lineNo, "duplicate 'steps' line");
      if (tokens.size() != 2) parseFail(lineNo, "usage: steps <n>");
      try {
        declaredSteps = std::stoll(tokens[1]);
      } catch (const std::exception&) {
        parseFail(lineNo, "bad step count '" + tokens[1] + "'");
      }
      if (declaredSteps < 0)
        parseFail(lineNo, "negative step count");
      continue;
    }
    if (tokens[0] == "end") {
      if (tokens.size() != 1) parseFail(lineNo, "trailing tokens after 'end'");
      sawEnd = true;
      continue;
    }
    if (tokens[0] == "reset") {
      if (tokens.size() != 1)
        parseFail(lineNo, "trailing tokens after 'reset'");
      program.steps.push_back(ReconfigStep::reset());
    } else if (tokens[0] == "traverse") {
      if (tokens.size() != 2) parseFail(lineNo, "usage: traverse <input>");
      program.steps.push_back(ReconfigStep::traverse(
          resolve(context.inputs(), tokens[1], "input", lineNo)));
    } else if (tokens[0] == "rewrite" || tokens[0] == "rewrite!") {
      if (tokens.size() != 4)
        parseFail(lineNo,
                  "usage: " + tokens[0] + " <input> <next-state> <output>");
      program.steps.push_back(ReconfigStep::rewrite(
          resolve(context.inputs(), tokens[1], "input", lineNo),
          resolve(context.states(), tokens[2], "next-state", lineNo),
          resolve(context.outputs(), tokens[3], "output", lineNo),
          /*temporary=*/tokens[0] == "rewrite!"));
    } else {
      parseFail(lineNo, "unknown step '" + tokens[0] + "'");
    }
  }
  if (!sawHeader)
    throw ProgramParseError("program line 1: missing 'rfsm-program v1' header");
  if (!sawEnd)
    throw ProgramParseError("program line " + std::to_string(lineNo) +
                            ": truncated (missing 'end')");
  if (declaredSteps < 0)
    throw ProgramParseError("program: missing 'steps' line");
  if (declaredSteps != program.length())
    throw ProgramParseError(
        "program: declared " + std::to_string(declaredSteps) +
        " steps but found " + std::to_string(program.length()));
  return program;
}

}  // namespace rfsm
