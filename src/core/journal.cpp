#include "core/journal.hpp"

#include <sstream>

#include "util/strings.hpp"

namespace rfsm {
namespace {

std::uint64_t mix64(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Order-sensitive digest of the program, folded into every commit record
/// so a journal cannot be replayed against the wrong program.
std::uint64_t programDigest(const ReconfigurationProgram& program) {
  std::uint64_t h = 0x243f6a8885a308d3ull;
  for (const ReconfigStep& step : program.steps) {
    h = mix64(h ^ static_cast<std::uint64_t>(step.kind));
    h = mix64(h ^ static_cast<std::uint64_t>(
                      static_cast<std::uint32_t>(step.input)));
    h = mix64(h ^ static_cast<std::uint64_t>(
                      static_cast<std::uint32_t>(step.nextState)));
    h = mix64(h ^ static_cast<std::uint64_t>(
                      static_cast<std::uint32_t>(step.output)));
    h = mix64(h ^ (step.temporary ? 1u : 0u));
  }
  return h;
}

std::uint32_t commitChecksum(std::uint64_t digest, int step) {
  const std::uint64_t x =
      mix64(digest ^ static_cast<std::uint64_t>(step + 1));
  return static_cast<std::uint32_t>(x ^ (x >> 32));
}

std::string toHex(std::uint32_t value) {
  static const char* digits = "0123456789abcdef";
  std::string text(8, '0');
  for (int k = 7; k >= 0; --k) {
    text[static_cast<std::size_t>(k)] = digits[value & 0xf];
    value >>= 4;
  }
  return text;
}

bool fromHex(const std::string& text, std::uint32_t& value) {
  if (text.size() != 8) return false;
  value = 0;
  for (char c : text) {
    int digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else return false;
    value = (value << 4) | static_cast<std::uint32_t>(digit);
  }
  return true;
}

/// FNV-1a over the payload bytes; order-sensitive input to the chain.
std::uint64_t fnv64(const std::string& text) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint32_t fold32(std::uint64_t x) {
  return static_cast<std::uint32_t>(x ^ (x >> 32));
}

}  // namespace

RecordLog::RecordLog(std::string header)
    : header_(std::move(header)), chain_(mix64(fnv64(header_))) {}

std::string RecordLog::appendLine(const std::string& payload) {
  RFSM_CHECK(!payload.empty(), "record log payloads must be non-empty");
  RFSM_CHECK(payload.find('\n') == std::string::npos,
             "record log payloads must be single-line");
  chain_ = mix64(chain_ ^ fnv64(payload));
  return payload + " " + toHex(fold32(chain_)) + "\n";
}

RecordLog::Parsed RecordLog::parse(const std::string& header,
                                   const std::string& text) {
  std::istringstream in(text);
  std::string rawLine;
  int lineNo = 0;
  bool sawHeader = false;
  // (line number, line) pairs gathered first, so a torn final record can be
  // told apart from mid-log damage.
  std::vector<std::pair<int, std::string>> lines;
  while (std::getline(in, rawLine)) {
    ++lineNo;
    const std::string line = trim(rawLine);
    if (line.empty()) continue;
    if (!sawHeader) {
      if (line != header)
        throw JournalError("journal line " + std::to_string(lineNo) +
                           ": expected header '" + header + "'");
      sawHeader = true;
      continue;
    }
    lines.emplace_back(lineNo, line);
  }
  if (!sawHeader)
    throw JournalError("journal line 1: missing '" + header + "' header");

  Parsed parsed;
  RecordLog chain(header);
  for (std::size_t k = 0; k < lines.size(); ++k) {
    const auto& [recordLine, line] = lines[k];
    const bool last = k + 1 == lines.size();
    std::string damage;
    const std::size_t space = line.find_last_of(" \t");
    std::uint32_t checksum = 0;
    std::string payload;
    if (space == std::string::npos)
      damage = "expected '<payload> <checksum>'";
    else if (!fromHex(line.substr(space + 1), checksum))
      damage = "bad checksum field '" + line.substr(space + 1) + "'";
    else {
      payload = trim(line.substr(0, space));
      const std::uint64_t next = mix64(chain.chain_ ^ fnv64(payload));
      if (payload.empty())
        damage = "empty record payload";
      else if (fold32(next) != checksum)
        damage = "checksum mismatch (damaged or reordered record)";
      else
        chain.chain_ = next;
    }
    if (damage.empty()) {
      parsed.records.push_back(std::move(payload));
      continue;
    }
    if (last) {
      parsed.truncated = true;
      break;
    }
    throw JournalError("journal line " + std::to_string(recordLine) + ": " +
                       damage);
  }
  return parsed;
}

void ProgramJournal::begin(const ReconfigurationProgram& program) {
  program_ = program;
  active_ = true;
  truncated_ = false;
  committed_ = 0;
}

void ProgramJournal::commit(int step) {
  RFSM_CHECK(active_, "commit on a journal without begin()");
  RFSM_CHECK(step == committed_, "journal commits must be sequential");
  RFSM_CHECK(step < program_.length(), "commit beyond the journaled program");
  committed_ = step + 1;
}

ReconfigurationProgram ProgramJournal::remainingProgram() const {
  RFSM_CHECK(active_, "remainingProgram on a journal without begin()");
  ReconfigurationProgram rest;
  rest.steps.assign(program_.steps.begin() + committed_,
                    program_.steps.end());
  return rest;
}

std::string ProgramJournal::serialize(const MigrationContext& context) const {
  RFSM_CHECK(active_, "serialize on a journal without begin()");
  std::ostringstream os;
  os << "rfsm-journal v1\n";
  os << programToText(context, program_);
  os << "begin\n";
  const std::uint64_t digest = programDigest(program_);
  for (int k = 0; k < committed_; ++k)
    os << "commit " << k << " " << toHex(commitChecksum(digest, k)) << "\n";
  if (complete()) os << "done\n";
  return os.str();
}

ProgramJournal ProgramJournal::parse(const MigrationContext& context,
                                     const std::string& text) {
  std::istringstream in(text);
  std::string rawLine;
  int lineNo = 0;
  bool sawHeader = false, sawBegin = false;
  std::ostringstream programText;
  // (line number, line) pairs of the commit section, gathered so a torn
  // final record can be told apart from mid-journal damage.
  std::vector<std::pair<int, std::string>> records;
  while (std::getline(in, rawLine)) {
    ++lineNo;
    const std::string line = trim(rawLine);
    if (line.empty()) continue;
    if (!sawHeader) {
      if (line != "rfsm-journal v1")
        throw JournalError("journal line " + std::to_string(lineNo) +
                           ": expected header 'rfsm-journal v1'");
      sawHeader = true;
      continue;
    }
    if (!sawBegin) {
      if (line == "begin") {
        sawBegin = true;
      } else {
        programText << line << "\n";
      }
      continue;
    }
    records.emplace_back(lineNo, line);
  }
  if (!sawHeader)
    throw JournalError("journal line 1: missing 'rfsm-journal v1' header");
  if (!sawBegin)
    throw JournalError("journal line " + std::to_string(lineNo) +
                       ": truncated before 'begin'");

  ProgramJournal journal;
  journal.begin(programFromText(context, programText.str()));
  const std::uint64_t digest = programDigest(journal.program_);

  for (std::size_t k = 0; k < records.size(); ++k) {
    const auto& [recordLine, record] = records[k];
    const bool last = k + 1 == records.size();
    std::string damage;
    if (record == "done") {
      if (last && journal.complete()) continue;
      damage = "'done' before every step committed";
    } else {
      const auto tokens = splitWhitespace(record);
      std::uint32_t checksum = 0;
      if (tokens.size() != 3 || tokens[0] != "commit")
        damage = "expected 'commit <step> <checksum>'";
      else if (journal.complete())
        damage = "commit record beyond the journaled program";
      else if (!fromHex(tokens[2], checksum))
        damage = "bad checksum field '" + tokens[2] + "'";
      else if (tokens[1] != std::to_string(journal.committed_))
        damage = "out-of-order commit record '" + tokens[1] + "'";
      else if (checksum != commitChecksum(digest, journal.committed_))
        damage = "checksum mismatch (journal does not match its program)";
    }
    if (damage.empty()) {
      journal.commit(journal.committed_);
      continue;
    }
    // A torn final record is exactly what a power cut leaves behind; the
    // committed prefix before it is still trustworthy.
    if (last) {
      journal.truncated_ = true;
      break;
    }
    throw JournalError("journal line " + std::to_string(recordLine) + ": " +
                       damage);
  }
  return journal;
}

}  // namespace rfsm
