#include "core/optimal.hpp"

#include <cstdint>
#include <queue>
#include <vector>

#include "util/check.hpp"
#include "util/metrics.hpp"

namespace rfsm {
namespace {

/// Temp-cell content codes: kOriginal/kTarget, then 2+t = "jump to t".
constexpr int kOriginal = 0;
constexpr int kTarget = 1;

/// Packed move record for path reconstruction.
struct Move {
  std::uint8_t kind;        // 0 reset, 1 traverse, 2 rewrite
  std::uint8_t temporary;   // rewrite only
  std::int16_t input;
  std::int16_t nextState;
  std::int16_t output;
};

}  // namespace

std::optional<ReconfigurationProgram> planOptimalSearch(
    const MigrationContext& context, const OptimalSearchOptions& options) {
  metrics::ScopedTimer timing(metrics::timer("planner.optimal"));
  const SymbolId i0 = options.tempInput == kNoSymbol
                          ? context.liftTargetInput(0)
                          : options.tempInput;
  RFSM_CHECK(context.inTargetInputs(i0),
             "temporary input must be an input of M'");
  const SymbolId s0 = context.targetReset();
  const int stateCount = context.states().size();
  const int inputCount = context.inputs().size();

  // Deltas (excluding the temp cell, which the temp-content axis covers).
  std::vector<Transition> deltas;
  std::vector<int> deltaAt(
      static_cast<std::size_t>(stateCount) *
          static_cast<std::size_t>(inputCount),
      -1);
  bool tempCellIsDelta = false;
  auto cellIndex = [&](SymbolId input, SymbolId state) {
    return static_cast<std::size_t>(state) *
               static_cast<std::size_t>(inputCount) +
           static_cast<std::size_t>(input);
  };
  for (const Transition& td : context.deltaTransitions()) {
    if (td.input == i0 && td.from == s0) {
      tempCellIsDelta = true;
      continue;
    }
    deltaAt[cellIndex(td.input, td.from)] = static_cast<int>(deltas.size());
    deltas.push_back(td);
  }
  const int n = static_cast<int>(deltas.size());
  if (n > options.maxDeltas) return std::nullopt;

  const int tempStates = 2 + stateCount;
  const std::size_t totalNodes = (std::size_t{1} << n) *
                                 static_cast<std::size_t>(stateCount) *
                                 static_cast<std::size_t>(tempStates);
  if (totalNodes > options.maxNodes) return std::nullopt;

  auto nodeId = [&](std::uint32_t mask, SymbolId state, int temp) {
    return (static_cast<std::size_t>(mask) *
                static_cast<std::size_t>(stateCount) +
            static_cast<std::size_t>(state)) *
               static_cast<std::size_t>(tempStates) +
           static_cast<std::size_t>(temp);
  };

  const SymbolId tempTargetNext = context.targetNext(i0, s0);
  const SymbolId tempTargetOut = context.targetOutput(i0, s0);
  const bool tempSourceSpecified =
      context.inSourceInputs(i0) && context.inSourceStates(s0);

  // Resolved (next, out) of cell (u, s) in the configuration (mask, temp);
  // next = kNoSymbol when unspecified.
  auto resolve = [&](std::uint32_t mask, int temp, SymbolId u,
                     SymbolId s) -> std::pair<SymbolId, SymbolId> {
    if (u == i0 && s == s0) {
      if (temp == kTarget) return {tempTargetNext, tempTargetOut};
      if (temp >= 2) return {static_cast<SymbolId>(temp - 2), tempTargetOut};
      if (tempSourceSpecified)
        return {context.sourceNext(i0, s0), context.sourceOutput(i0, s0)};
      return {kNoSymbol, kNoSymbol};
    }
    const int d = deltaAt[cellIndex(u, s)];
    if (d >= 0 && (mask & (1u << d)))
      return {deltas[static_cast<std::size_t>(d)].to,
              deltas[static_cast<std::size_t>(d)].output};
    if (context.inSourceInputs(u) && context.inSourceStates(s))
      return {context.sourceNext(u, s), context.sourceOutput(u, s)};
    return {kNoSymbol, kNoSymbol};
  };

  const std::uint32_t fullMask =
      n == 32 ? ~std::uint32_t{0} : ((std::uint32_t{1} << n) - 1);
  auto isGoal = [&](std::uint32_t mask, SymbolId state, int temp) {
    if (mask != fullMask || state != s0) return false;
    return temp == kTarget || (!tempCellIsDelta && temp == kOriginal);
  };

  // The machine may already satisfy the goal (identity migration in S0').
  if (isGoal(0, context.sourceReset(), kOriginal))
    return ReconfigurationProgram{};

  std::vector<std::int32_t> parent(totalNodes, -2);  // -2 = unvisited
  std::vector<Move> via(totalNodes);
  std::queue<std::size_t> frontier;

  const std::size_t start = nodeId(0, context.sourceReset(), kOriginal);
  parent[start] = -1;
  frontier.push(start);
  std::optional<std::size_t> goal;

  while (!frontier.empty() && !goal.has_value()) {
    const std::size_t node = frontier.front();
    frontier.pop();
    const int temp = static_cast<int>(node % tempStates);
    const auto rest = node / static_cast<std::size_t>(tempStates);
    const SymbolId state = static_cast<SymbolId>(
        rest % static_cast<std::size_t>(stateCount));
    const auto mask = static_cast<std::uint32_t>(
        rest / static_cast<std::size_t>(stateCount));

    auto visit = [&](std::size_t next, const Move& move) {
      if (parent[next] != -2) return;
      parent[next] = static_cast<std::int32_t>(node);
      via[next] = move;
      const int nTemp = static_cast<int>(next % tempStates);
      const auto nRest = next / static_cast<std::size_t>(tempStates);
      const SymbolId nState = static_cast<SymbolId>(
          nRest % static_cast<std::size_t>(stateCount));
      const auto nMask = static_cast<std::uint32_t>(
          nRest / static_cast<std::size_t>(stateCount));
      if (isGoal(nMask, nState, nTemp)) goal = next;
      frontier.push(next);
    };

    // 1. Reset.
    visit(nodeId(mask, s0, temp), Move{0, 0, 0, 0, 0});

    for (SymbolId u = 0; u < inputCount && !goal.has_value(); ++u) {
      // 2. Traverse an existing transition.
      const auto [next, out] = resolve(mask, temp, u, state);
      if (next != kNoSymbol)
        visit(nodeId(mask, next, temp),
              Move{1, 0, static_cast<std::int16_t>(u), 0, 0});
      // 3. Rewrite the unfixed delta cell at (u, state).
      const int d = deltaAt[cellIndex(u, state)];
      if (d >= 0 && !(mask & (1u << d))) {
        const Transition& td = deltas[static_cast<std::size_t>(d)];
        visit(nodeId(mask | (1u << d), td.to, temp),
              Move{2, 0, static_cast<std::int16_t>(u),
                   static_cast<std::int16_t>(td.to),
                   static_cast<std::int16_t>(td.output)});
      }
    }

    // 4. Rewrite the temporary cell (only possible while sitting in S0').
    if (state == s0 && !goal.has_value()) {
      // 4a. To its final M' contents.
      visit(nodeId(mask, tempTargetNext, kTarget),
            Move{2, 0, static_cast<std::int16_t>(i0),
                 static_cast<std::int16_t>(tempTargetNext),
                 static_cast<std::int16_t>(tempTargetOut)});
      // 4b. To a temporary jump at an unfixed delta source.
      for (int d = 0; d < n; ++d) {
        if (mask & (1u << d)) continue;
        const SymbolId t = deltas[static_cast<std::size_t>(d)].from;
        visit(nodeId(mask, t, 2 + t),
              Move{2, 1, static_cast<std::int16_t>(i0),
                   static_cast<std::int16_t>(t),
                   static_cast<std::int16_t>(tempTargetOut)});
      }
    }
  }

  if (!goal.has_value())
    return std::nullopt;  // unreachable in practice: JSR always succeeds

  // Reconstruct the program.
  std::vector<Move> moves;
  for (std::size_t node = *goal; parent[node] != -1;
       node = static_cast<std::size_t>(parent[node]))
    moves.push_back(via[node]);
  ReconfigurationProgram program;
  program.steps.reserve(moves.size());
  for (auto it = moves.rbegin(); it != moves.rend(); ++it) {
    switch (it->kind) {
      case 0:
        program.steps.push_back(ReconfigStep::reset());
        break;
      case 1:
        program.steps.push_back(
            ReconfigStep::traverse(static_cast<SymbolId>(it->input)));
        break;
      default:
        program.steps.push_back(ReconfigStep::rewrite(
            static_cast<SymbolId>(it->input),
            static_cast<SymbolId>(it->nextState),
            static_cast<SymbolId>(it->output), it->temporary != 0));
    }
  }
  return program;
}

}  // namespace rfsm
