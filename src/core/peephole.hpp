// Peephole optimization of reconfiguration programs.
//
// Planners compose programs from stereotyped blocks, which leaves local
// slack: resets taken from the reset state itself, and rewrites that write
// a cell's existing contents (JSR's unconditional tail does this whenever
// the temporary cell was never dirtied).  The peephole pass replays the
// program once, dropping no-op resets and demoting identity rewrites to
// plain traversals (same motion, no write-port activity).  The result is
// always valid and never longer.
#pragma once

#include "core/migration.hpp"
#include "core/program.hpp"

namespace rfsm {

/// Statistics of one optimization pass.
struct PeepholeResult {
  ReconfigurationProgram program;
  int removedResets = 0;
  int demotedRewrites = 0;  // rewrites turned into traversals
};

/// Optimizes `program` for the given migration.  Requires the input to be
/// executable from the initial machine (planners guarantee this); the
/// output validates whenever the input does.
PeepholeResult optimizeProgram(const MigrationContext& context,
                               const ReconfigurationProgram& program);

}  // namespace rfsm
