#include "core/local_search.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "ea/permutation.hpp"
#include "util/check.hpp"
#include "util/metrics.hpp"

namespace rfsm {

LocalSearchPlan planTwoOpt(const MigrationContext& context,
                           const std::vector<int>& seed,
                           const DecodeOptions& options,
                           int maxEvaluations) {
  metrics::ScopedTimer timing(metrics::timer("planner.2opt"));
  const int n = loopDeltaCount(context, options.tempInput);
  std::vector<int> order = seed;
  if (order.empty()) {
    order.resize(static_cast<std::size_t>(n));
    std::iota(order.begin(), order.end(), 0);
  }
  RFSM_CHECK(static_cast<int>(order.size()) == n,
             "2-opt seed must cover all loop deltas");
  RFSM_CHECK(isPermutation(order), "2-opt seed must be a permutation");

  LocalSearchPlan plan;
  plan.program = decodeOrder(context, order, options);
  ++plan.evaluations;

  bool improved = true;
  while (improved && plan.evaluations < maxEvaluations) {
    improved = false;
    for (std::size_t i = 0;
         i + 1 < order.size() && !improved && plan.evaluations < maxEvaluations;
         ++i) {
      for (std::size_t j = i + 1;
           j < order.size() && !improved && plan.evaluations < maxEvaluations;
           ++j) {
        std::reverse(order.begin() + static_cast<std::ptrdiff_t>(i),
                     order.begin() + static_cast<std::ptrdiff_t>(j) + 1);
        ReconfigurationProgram candidate =
            decodeOrder(context, order, options);
        ++plan.evaluations;
        if (candidate.length() < plan.program.length()) {
          plan.program = std::move(candidate);
          ++plan.improvements;
          improved = true;  // first improvement: restart scan
        } else {
          std::reverse(order.begin() + static_cast<std::ptrdiff_t>(i),
                       order.begin() + static_cast<std::ptrdiff_t>(j) + 1);
        }
        if (plan.evaluations >= maxEvaluations) break;
      }
    }
  }
  return plan;
}

LocalSearchPlan planAnnealing(const MigrationContext& context,
                              const AnnealingConfig& config, Rng& rng,
                              const DecodeOptions& options) {
  metrics::ScopedTimer timing(metrics::timer("planner.anneal"));
  const int n = loopDeltaCount(context, options.tempInput);
  LocalSearchPlan plan;
  std::vector<int> current = randomPermutation(n, rng);
  int currentLength = decodeOrder(context, current, options).length();
  ++plan.evaluations;
  std::vector<int> best = current;
  int bestLength = currentLength;

  double temperature = config.initialTemperature;
  for (int move = 0; move < config.moves && n >= 2; ++move) {
    std::vector<int> candidate = current;
    swapMutation(candidate, rng);
    const int candidateLength =
        decodeOrder(context, candidate, options).length();
    ++plan.evaluations;
    const int delta = candidateLength - currentLength;
    if (delta <= 0 ||
        rng.uniform() < std::exp(-static_cast<double>(delta) / temperature)) {
      current = std::move(candidate);
      currentLength = candidateLength;
      if (currentLength < bestLength) {
        bestLength = currentLength;
        best = current;
        ++plan.improvements;
      }
    }
    temperature *= config.coolingRate;
  }
  plan.program = decodeOrder(context, best, options);
  ++plan.evaluations;
  return plan;
}

}  // namespace rfsm
