#include "core/self_reconfigurable.hpp"

namespace rfsm {

SelfReconfigurableMachine::SelfReconfigurableMachine(
    const MigrationContext& context)
    : machine_(context) {}

void SelfReconfigurableMachine::setTrigger(ReconfigurationTrigger trigger) {
  trigger_ = std::move(trigger);
}

void SelfReconfigurableMachine::enqueueProgram(
    ReconfigurationProgram program) {
  for (ReconfigStep& step : program.steps)
    pending_.push_back(std::move(step));
}

SymbolId SelfReconfigurableMachine::clock(SymbolId externalInput) {
  if (pending_.empty() && trigger_) {
    if (auto program = trigger_(machine_.state(), externalInput))
      enqueueProgram(std::move(*program));
  }
  if (!pending_.empty()) {
    const ReconfigStep step = pending_.front();
    pending_.pop_front();
    ++reconfigurationCycles_;
    return machine_.applyStep(step);
  }
  return machine_.stepNormal(externalInput);
}

}  // namespace rfsm
