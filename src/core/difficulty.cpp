#include "core/difficulty.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "core/mutable_machine.hpp"

namespace rfsm {

int DifficultyProfile::estimatedLength() const {
  if (deltaCount == 0) return 0;
  // Rewrites themselves.
  int estimate = deltaCount;
  // Connections: chainable pairs save a step each (capped at deltas - 1);
  // near-reset sources cost 1; everything else costs ~2 (reset + jump).
  const int chained = std::min(chainablePairs, std::max(0, deltaCount - 1));
  const int near = std::min(sourcesNearReset, deltaCount - chained);
  const int far = deltaCount - chained - near;
  estimate += near + 2 * std::max(0, far);
  // Lead reset + JSR-style tail (repair + final reset) when any temporary
  // was plausibly needed.
  estimate += far > 0 ? 3 : 1;
  return estimate;
}

DifficultyProfile analyzeDifficulty(const MigrationContext& context) {
  DifficultyProfile profile;
  const auto& deltas = context.deltaTransitions();
  profile.deltaCount = static_cast<int>(deltas.size());
  if (deltas.empty()) return profile;

  const MutableMachine machine(context);
  const auto fromReset = machine.distancesFrom(context.targetReset());

  double distanceSum = 0;
  int reachable = 0;
  for (const Transition& td : deltas) {
    if (!context.inSourceStates(td.from)) {
      ++profile.structuralSources;
      ++profile.sourcesUnreachable;
      continue;
    }
    const int d = fromReset[static_cast<std::size_t>(td.from)];
    if (d < 0) {
      ++profile.sourcesUnreachable;
    } else {
      ++reachable;
      distanceSum += d;
      if (d <= 1) ++profile.sourcesNearReset;
    }
  }
  profile.meanSourceDistance =
      reachable > 0 ? distanceSum / reachable : 0.0;

  for (const Transition& a : deltas)
    for (const Transition& b : deltas)
      if (&a != &b && a.to == b.from) ++profile.chainablePairs;

  return profile;
}

std::string describeDifficulty(const DifficultyProfile& p) {
  std::ostringstream os;
  os << "|Td| " << p.deltaCount << ", near-reset " << p.sourcesNearReset
     << ", unreachable " << p.sourcesUnreachable << " (structural "
     << p.structuralSources << "), chainable " << p.chainablePairs
     << ", mean source distance " << p.meanSourceDistance << ", estimate "
     << p.estimatedLength();
  return os.str();
}

}  // namespace rfsm
