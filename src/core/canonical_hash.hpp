// Canonical content hashing for cache keys (the "content-addressed" half
// of the plan cache tier).
//
// A CanonicalHasher absorbs a type-tagged, length-prefixed field sequence
// into two independent 64-bit mixing lanes and renders the 128-bit result
// as 32 hex characters.  Canonical means structural, not textual: every
// field is absorbed with a type tag and (for strings) a length prefix, so
// ("ab", "c") and ("a", "bc") — or a u64 that happens to equal a string's
// bytes — cannot collide by concatenation, and equal field sequences hash
// equally no matter who encodes them.  The mix is splitmix64's finalizer
// per lane with position-dependent tweaks; this is a *cache key*, not a
// cryptographic commitment — poisoning defense is byte-verification of the
// cached value (service/plan_cache.hpp), never trust in the key.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace rfsm {

class CanonicalHasher {
 public:
  CanonicalHasher& u64(std::uint64_t value);
  CanonicalHasher& i64(std::int64_t value);
  CanonicalHasher& str(std::string_view value);

  /// 32 lowercase hex characters of the 128-bit digest.  Non-destructive:
  /// more fields may be absorbed after reading an intermediate digest.
  std::string hex() const;

 private:
  void absorb(std::uint64_t word);

  std::uint64_t lane0_ = 0x6a09e667f3bcc908ull;
  std::uint64_t lane1_ = 0xbb67ae8584caa73bull;
  std::uint64_t words_ = 0;
};

}  // namespace rfsm
