// The machine-under-reconfiguration: writable F/G tables over superset
// alphabets plus a current state.
//
// This is the software twin of the Fig. 5 datapath: F-RAM / G-RAM contents
// (with a "specified" bit per cell — freshly added states' cells hold
// garbage until written, exactly like uninitialized block RAM), the state
// register, and the three ways a clock cycle can advance it (reset,
// traverse, rewrite).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/migration.hpp"
#include "core/program.hpp"
#include "util/check.hpp"
#include "util/deadline.hpp"

namespace rfsm {

/// Thrown when a program step is physically impossible (traversing an
/// unwritten RAM cell, malformed step payloads).
class MigrationError : public Error {
 public:
  explicit MigrationError(const std::string& what) : Error(what) {}
};

/// Mutable machine over the superset alphabets of a MigrationContext.
/// Holds a reference to the context; the context must outlive it.
class MutableMachine {
 public:
  /// Starts as a copy of the source machine M, in M's reset state.  Cells
  /// outside M's (input, state) domain are unspecified.
  explicit MutableMachine(const MigrationContext& context);

  /// Returns the BFS scratch buffers to the process-wide shape pool, so
  /// the next machine with the same state count skips the allocations.
  ~MutableMachine();
  MutableMachine(const MutableMachine&) = default;
  MutableMachine& operator=(const MutableMachine&) = delete;

  const MigrationContext& context() const { return context_; }

  /// Current state (superset id).
  SymbolId state() const { return state_; }

  /// True when RAM cell (input, state) has defined contents.
  bool isSpecified(SymbolId input, SymbolId state) const;

  /// F(input, state); requires the cell to be specified.
  SymbolId next(SymbolId input, SymbolId state) const;

  /// G(input, state); requires the cell to be specified.
  SymbolId output(SymbolId input, SymbolId state) const;

  /// Executes one step (one clock cycle).  Returns the output emitted this
  /// cycle (kNoSymbol for reset cycles, whose output is unspecified).
  /// Throws MigrationError when a Traverse hits an unspecified cell.
  SymbolId applyStep(const ReconfigStep& step);

  /// Runs a whole program.
  void applyProgram(const ReconfigurationProgram& program);

  /// Normal-mode step (the H_i(i, r0) = i path): consume an external input.
  SymbolId stepNormal(SymbolId input);

  /// Configuration back door (the FPGA readback/writeback port): writes a
  /// cell without traversing it and without moving the machine.  Used for
  /// fault injection and golden-image loading; reconfiguration programs
  /// must use Rewrite steps instead.
  void loadCell(SymbolId input, SymbolId state, SymbolId nextState,
                SymbolId output);

  /// Marks a cell unspecified (deactivates a damaged cell).  Reads of the
  /// cell fail afterwards, exactly like a freshly allocated RAM row.
  void clearCell(SymbolId input, SymbolId state);

  // --- Fault model ------------------------------------------------------
  //
  // The F/G tables live in block RAM, which takes SEU bit flips in the
  // field.  corruptBit() is the SEU back door: unlike loadCell it does NOT
  // refresh the per-cell integrity checksum, so the damage is *silent* at
  // the RAM level and must be found by integrityScan().  The checksum is a
  // bijective 64-bit mix of the packed (next, output) word, so any
  // corruption of a specified cell's contents is detected — there are no
  // collisions to get lucky with.

  /// Bits of the stored cell word the fault model may flip: the state-code
  /// width (low bits, F entry) followed by the output-code width (G entry).
  int faultBitsPerCell() const { return stateBits_ + outputBits_; }

  /// Flips one bit of cell (input, state): bit < stateBits flips the F
  /// entry, higher bits flip the G entry.  Does not touch the specified
  /// flag or the checksum.  Bumps the table version (the software BFS cache
  /// must stay coherent with the stored words; the *checksum* is what stays
  /// silently stale, as in hardware).
  void corruptBit(SymbolId input, SymbolId state, int bit);

  /// Cells whose stored words no longer match their integrity checksum
  /// (unspecified cells are skipped — they are never readable).  Ordered by
  /// (state, input).
  std::vector<TotalState> integrityScan() const;

  /// Monotonic counter bumped on every table write; lets verifiers skip
  /// re-checking an unchanged table.
  std::uint64_t tableVersion() const { return tableVersion_; }

  // --- Checkpoint / rollback -------------------------------------------

  /// A full copy of the table contents (the golden image a recovery can
  /// roll back to).
  struct TableImage {
    std::vector<SymbolId> next, out;
    std::vector<char> specified;
    std::vector<std::uint64_t> integrity;
    SymbolId state = kNoSymbol;
  };

  TableImage checkpoint() const;
  /// Restores a checkpoint taken from this machine; bumps the version.
  void restore(const TableImage& image);

  /// True when the machine realizes the *source* machine M on the whole
  /// source domain (the clean-rollback criterion).  On mismatch fills
  /// `reason` (when non-null).
  bool matchesSource(std::string* reason = nullptr) const;

  /// If there is a specified transition state -> `to`, returns one input
  /// selecting it (lowest id); otherwise nullopt.
  std::optional<SymbolId> edgeInput(SymbolId from, SymbolId to) const;

  /// Cooperative cancellation for the BFS scans below: when set, every
  /// cache-missing distancesFrom/pathInputs call polls the token before
  /// walking the table and unwinds with CancelledError once it expired.
  /// The planner service threads its per-request deadline through here.
  void setCancel(const CancelToken* cancel) { cancel_ = cancel; }

  /// BFS distances from `from` to every state over specified cells only.
  /// Served from a per-source cache that is invalidated whenever a RAM cell
  /// is written (rewrite steps, loadCell); the reference stays valid until
  /// the next write.  The machine is not thread-safe — give each thread its
  /// own MutableMachine.
  const std::vector<int>& distancesFrom(SymbolId from) const;

  /// Inputs selecting a shortest specified-cell path from -> to (empty when
  /// from == to); std::nullopt when `to` is unreachable.
  std::optional<std::vector<SymbolId>> pathInputs(SymbolId from,
                                                  SymbolId to) const;

  /// True when the machine now realizes M': every (i', s') cell of the
  /// target domain is specified and matches F'/G'.  On mismatch, fills
  /// `reason` (when non-null) with the first offending cell.
  bool matchesTarget(std::string* reason = nullptr) const;

  /// Extracts the realized target machine (target alphabets, original
  /// target ids).  Requires matchesTarget().
  Machine extractTarget() const;

 private:
  /// Cached single-source BFS over the specified cells: distances plus the
  /// predecessor (state, input) of one shortest-path tree.  Tagged with the
  /// table version it was computed against.
  struct BfsEntry {
    std::uint64_t version = 0;
    std::vector<int> dist;
    std::vector<SymbolId> prevState;
    std::vector<SymbolId> prevInput;
  };

  std::size_t cell(SymbolId input, SymbolId state) const;
  /// The cached BFS tree rooted at `from` (recomputed on version mismatch).
  const BfsEntry& bfsFrom(SymbolId from) const;

  // Process-wide pool of BFS cache buffers, keyed by state count: distinct
  // machines (distinct specs, even) that share a shape reuse each other's
  // allocations.  acquire resets every entry's version to 0 — never equal
  // to a live tableVersion_ (which starts at 1) — so a recycled buffer can
  // only miss, never serve another machine's tree.
  struct BfsPool;
  static BfsPool& bfsPool();
  static std::vector<BfsEntry> acquireBfsBuffer(std::size_t states);
  static void releaseBfsBuffer(std::vector<BfsEntry>&& buffer);

  /// Refreshes the integrity checksum of cell `c` (authorized writes only).
  void reseal(std::size_t c);

  const MigrationContext& context_;
  std::vector<SymbolId> next_, out_;
  std::vector<char> specified_;
  /// Per-cell checksum of (next_, out_), maintained by authorized writes.
  std::vector<std::uint64_t> integrity_;
  int stateBits_ = 1, outputBits_ = 1;
  SymbolId state_;
  /// Bumped on every table write; 0 marks a BfsEntry as never computed.
  std::uint64_t tableVersion_ = 1;
  mutable std::vector<BfsEntry> bfsCache_;  // indexed by source state
  const CancelToken* cancel_ = nullptr;     // not owned; may be null
};

}  // namespace rfsm
