// The machine-under-reconfiguration: writable F/G tables over superset
// alphabets plus a current state.
//
// This is the software twin of the Fig. 5 datapath: F-RAM / G-RAM contents
// (with a "specified" bit per cell — freshly added states' cells hold
// garbage until written, exactly like uninitialized block RAM), the state
// register, and the three ways a clock cycle can advance it (reset,
// traverse, rewrite).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/migration.hpp"
#include "core/program.hpp"
#include "util/check.hpp"

namespace rfsm {

/// Thrown when a program step is physically impossible (traversing an
/// unwritten RAM cell, malformed step payloads).
class MigrationError : public Error {
 public:
  explicit MigrationError(const std::string& what) : Error(what) {}
};

/// Mutable machine over the superset alphabets of a MigrationContext.
/// Holds a reference to the context; the context must outlive it.
class MutableMachine {
 public:
  /// Starts as a copy of the source machine M, in M's reset state.  Cells
  /// outside M's (input, state) domain are unspecified.
  explicit MutableMachine(const MigrationContext& context);

  const MigrationContext& context() const { return context_; }

  /// Current state (superset id).
  SymbolId state() const { return state_; }

  /// True when RAM cell (input, state) has defined contents.
  bool isSpecified(SymbolId input, SymbolId state) const;

  /// F(input, state); requires the cell to be specified.
  SymbolId next(SymbolId input, SymbolId state) const;

  /// G(input, state); requires the cell to be specified.
  SymbolId output(SymbolId input, SymbolId state) const;

  /// Executes one step (one clock cycle).  Returns the output emitted this
  /// cycle (kNoSymbol for reset cycles, whose output is unspecified).
  /// Throws MigrationError when a Traverse hits an unspecified cell.
  SymbolId applyStep(const ReconfigStep& step);

  /// Runs a whole program.
  void applyProgram(const ReconfigurationProgram& program);

  /// Normal-mode step (the H_i(i, r0) = i path): consume an external input.
  SymbolId stepNormal(SymbolId input);

  /// Configuration back door (the FPGA readback/writeback port): writes a
  /// cell without traversing it and without moving the machine.  Used for
  /// fault injection and golden-image loading; reconfiguration programs
  /// must use Rewrite steps instead.
  void loadCell(SymbolId input, SymbolId state, SymbolId nextState,
                SymbolId output);

  /// If there is a specified transition state -> `to`, returns one input
  /// selecting it (lowest id); otherwise nullopt.
  std::optional<SymbolId> edgeInput(SymbolId from, SymbolId to) const;

  /// BFS distances from `from` to every state over specified cells only.
  /// Served from a per-source cache that is invalidated whenever a RAM cell
  /// is written (rewrite steps, loadCell); the reference stays valid until
  /// the next write.  The machine is not thread-safe — give each thread its
  /// own MutableMachine.
  const std::vector<int>& distancesFrom(SymbolId from) const;

  /// Inputs selecting a shortest specified-cell path from -> to (empty when
  /// from == to); std::nullopt when `to` is unreachable.
  std::optional<std::vector<SymbolId>> pathInputs(SymbolId from,
                                                  SymbolId to) const;

  /// True when the machine now realizes M': every (i', s') cell of the
  /// target domain is specified and matches F'/G'.  On mismatch, fills
  /// `reason` (when non-null) with the first offending cell.
  bool matchesTarget(std::string* reason = nullptr) const;

  /// Extracts the realized target machine (target alphabets, original
  /// target ids).  Requires matchesTarget().
  Machine extractTarget() const;

 private:
  /// Cached single-source BFS over the specified cells: distances plus the
  /// predecessor (state, input) of one shortest-path tree.  Tagged with the
  /// table version it was computed against.
  struct BfsEntry {
    std::uint64_t version = 0;
    std::vector<int> dist;
    std::vector<SymbolId> prevState;
    std::vector<SymbolId> prevInput;
  };

  std::size_t cell(SymbolId input, SymbolId state) const;
  /// The cached BFS tree rooted at `from` (recomputed on version mismatch).
  const BfsEntry& bfsFrom(SymbolId from) const;

  const MigrationContext& context_;
  std::vector<SymbolId> next_, out_;
  std::vector<char> specified_;
  SymbolId state_;
  /// Bumped on every table write; 0 marks a BfsEntry as never computed.
  std::uint64_t tableVersion_ = 1;
  mutable std::vector<BfsEntry> bfsCache_;  // indexed by source state
};

}  // namespace rfsm
