// Don't-care-aware migration: completing a partial target specification so
// that the migration from a given source machine is as cheap as possible.
//
// Upgrades rarely arrive as fully specified machines; they say what must
// change and leave the rest open (fsm/partial_machine.hpp).  Every
// completion of the specification is a legal target — but their delta sets
// differ wildly.  completeForMigration() resolves each don't-care to the
// *source's* current table value whenever that value is expressible in the
// specification's alphabets, so unconstrained cells contribute zero delta
// transitions; remaining holes become self-loops with a default output.
// The result provably implements the specification, and a property test
// checks it never has more deltas than random completions.
#pragma once

#include "core/migration.hpp"
#include "fsm/machine.hpp"
#include "fsm/partial_machine.hpp"

namespace rfsm {

/// Result of a don't-care-aware completion.
struct CompletionResult {
  Machine target;
  /// Cells resolved from the source machine (zero-delta don't-cares).
  int inheritedCells = 0;
  /// Cells that had to fall back to self-loop / default output.
  int defaultedCells = 0;
};

/// Completes `specification` into a concrete target machine for migrating
/// from `source`, minimizing delta transitions cell-wise.  Symbols are
/// matched by name across the two machines' alphabets.
CompletionResult completeForMigration(const Machine& source,
                                      const PartialMachine& specification);

}  // namespace rfsm
