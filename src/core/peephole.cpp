#include "core/peephole.hpp"

#include "core/mutable_machine.hpp"

namespace rfsm {

PeepholeResult optimizeProgram(const MigrationContext& context,
                               const ReconfigurationProgram& program) {
  PeepholeResult result;
  MutableMachine machine(context);
  for (const ReconfigStep& step : program.steps) {
    switch (step.kind) {
      case StepKind::kReset:
        if (machine.state() == context.targetReset()) {
          ++result.removedResets;  // already there: a wasted cycle
          continue;
        }
        break;
      case StepKind::kRewrite: {
        const bool identity =
            machine.isSpecified(step.input, machine.state()) &&
            machine.next(step.input, machine.state()) == step.nextState &&
            machine.output(step.input, machine.state()) == step.output;
        if (identity) {
          // Same motion without touching the write port.
          const ReconfigStep traverse = ReconfigStep::traverse(step.input);
          machine.applyStep(traverse);
          result.program.steps.push_back(traverse);
          ++result.demotedRewrites;
          continue;
        }
        break;
      }
      case StepKind::kTraverse:
        break;
    }
    machine.applyStep(step);
    result.program.steps.push_back(step);
  }
  return result;
}

}  // namespace rfsm
