// Self-reconfigurable FSMs (paper Sec. 2.2.1, last paragraph of Sec. 2).
//
// "An FSM may be called self-reconfigurable if the reconfiguration
// sequences are generated as part of the system, e.g. in dependence of a
// reached state or other conditions."  SelfReconfigurableMachine wraps a
// MutableMachine with a trigger: during normal operation the trigger
// inspects (state, input) each cycle and may hand back a reconfiguration
// program, which the machine then plays autonomously — external inputs are
// ignored while reconfiguring (H_i depends on r only, Def. 2.2).
#pragma once

#include <deque>
#include <functional>
#include <optional>

#include "core/migration.hpp"
#include "core/mutable_machine.hpp"
#include "core/program.hpp"

namespace rfsm {

/// Callback deciding, from the current (state, external input), whether to
/// start a reconfiguration.  Returning a program switches the machine into
/// reconfiguration mode *this* cycle (the inspected input is not consumed).
using ReconfigurationTrigger =
    std::function<std::optional<ReconfigurationProgram>(SymbolId state,
                                                        SymbolId input)>;

/// A machine that runs normally until either the environment or its own
/// trigger enqueues a reconfiguration program.
class SelfReconfigurableMachine {
 public:
  explicit SelfReconfigurableMachine(const MigrationContext& context);

  /// Installs the self-reconfiguration trigger (may be empty).
  void setTrigger(ReconfigurationTrigger trigger);

  /// Externally requested reconfiguration (the non-"self" mode of Def. 2.2);
  /// queued behind any program already playing.
  void enqueueProgram(ReconfigurationProgram program);

  /// One clock cycle.  In normal mode consumes `externalInput` and returns
  /// the output; in reconfiguration mode ignores it (IN-MUX selects ir) and
  /// returns the output of the reconfiguration transition (kNoSymbol on
  /// reset cycles).
  SymbolId clock(SymbolId externalInput);

  /// True while a program is playing.
  bool reconfiguring() const { return !pending_.empty(); }

  /// Steps left in the playing + queued programs.
  int remainingSteps() const { return static_cast<int>(pending_.size()); }

  SymbolId state() const { return machine_.state(); }
  const MutableMachine& machine() const { return machine_; }

  /// Mutable access for fault injection and recovery (checkpoint/restore,
  /// corruptBit, integrityScan); normal operation should go through
  /// clock()/enqueueProgram().
  MutableMachine& mutableMachine() { return machine_; }

  /// Drops the playing and queued programs (the power-loss model: the
  /// Reconfigurator forgets its remaining steps).  The table keeps whatever
  /// the executed prefix wrote.
  void abortReconfiguration() { pending_.clear(); }

  /// Total cycles spent reconfiguring so far.
  int reconfigurationCycles() const { return reconfigurationCycles_; }

 private:
  MutableMachine machine_;
  ReconfigurationTrigger trigger_;
  std::deque<ReconfigStep> pending_;
  int reconfigurationCycles_ = 0;
};

}  // namespace rfsm
