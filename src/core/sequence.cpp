#include "core/sequence.hpp"

#include "util/table.hpp"

namespace rfsm {

ReconfigurationSequence sequenceFromProgram(
    const ReconfigurationProgram& program) {
  ReconfigurationSequence sequence;
  sequence.rows.reserve(program.steps.size());
  for (const ReconfigStep& step : program.steps) {
    SequenceRow row;
    switch (step.kind) {
      case StepKind::kReset:
        row.reset = true;
        break;
      case StepKind::kTraverse:
        row.ir = step.input;
        break;
      case StepKind::kRewrite:
        row.ir = step.input;
        row.hf = step.nextState;
        row.hg = step.output;
        row.write = true;
        break;
    }
    sequence.rows.push_back(row);
  }
  return sequence;
}

ReconfigurationProgram programFromSequence(
    const ReconfigurationSequence& sequence) {
  ReconfigurationProgram program;
  program.steps.reserve(sequence.rows.size());
  for (const SequenceRow& row : sequence.rows) {
    if (row.reset) {
      program.steps.push_back(ReconfigStep::reset());
    } else if (row.write) {
      program.steps.push_back(ReconfigStep::rewrite(row.ir, row.hf, row.hg));
    } else {
      program.steps.push_back(ReconfigStep::traverse(row.ir));
    }
  }
  return program;
}

std::string sequenceToMarkdown(const MigrationContext& context,
                               const ReconfigurationSequence& sequence) {
  Table table({"r", "i' = H_i(i,r)", "H_f(r)", "H_g(r)", "write", "reset"});
  for (std::size_t k = 0; k < sequence.rows.size(); ++k) {
    const SequenceRow& row = sequence.rows[k];
    table.addRow({"r" + std::to_string(k + 1),
                  row.ir == kNoSymbol ? "-" : context.inputs().name(row.ir),
                  row.hf == kNoSymbol ? "-" : context.states().name(row.hf),
                  row.hg == kNoSymbol ? "-" : context.outputs().name(row.hg),
                  row.write ? "1" : "0", row.reset ? "1" : "0"});
  }
  return table.toMarkdown();
}

}  // namespace rfsm
