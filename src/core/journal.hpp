// Write-ahead journaling of reconfiguration programs.
//
// A reconfiguration that dies mid-program (power loss, preempted
// Reconfigurator) leaves the table in a half-written state.  The journal
// follows the classic WAL discipline: the *intent* — the full program — is
// recorded before the first table write, then every executed step appends a
// checksummed commit record.  After a crash the surviving prefix tells the
// recovery engine exactly which steps took effect, so the remainder can be
// resumed instead of restarting from a golden image.  A torn final record
// (the write the power failure interrupted) is tolerated and ignored; any
// earlier damage is a hard JournalError.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/migration.hpp"
#include "core/program.hpp"
#include "util/check.hpp"

namespace rfsm {

/// Thrown on malformed journals; the message names the offending line.
class JournalError : public Error {
 public:
  explicit JournalError(const std::string& what) : Error(what) {}
};

/// The ProgramJournal framing, factored out for reuse: a header line, then
/// one single-line record per entry, each carrying a checksum chained over
/// *every* prior record (editing, dropping, or reordering any line breaks
/// all later checksums).  Like ProgramJournal, a torn final record — the
/// write a power cut interrupted — is dropped and reported via
/// Parsed::truncated; damage anywhere earlier throws JournalError naming
/// the line.  The session write-ahead journals (service/session.hpp) store
/// their mutation records in this frame.
class RecordLog {
 public:
  explicit RecordLog(std::string header);

  const std::string& header() const { return header_; }

  /// The header line ("<header>\n"); the first line of a fresh log file.
  std::string headerLine() const { return header_ + "\n"; }

  /// Chains `payload` (single-line, non-empty, no '\n') and renders its
  /// record line: "<payload> <checksum8>\n".  Append the returned bytes to
  /// the log file verbatim.
  std::string appendLine(const std::string& payload);

  struct Parsed {
    std::vector<std::string> records;  ///< payloads, in order
    bool truncated = false;            ///< a torn trailing record was dropped
  };

  /// Parses a serialized log with the given header.  To append to a parsed
  /// log, construct a RecordLog(header) and replay appendLine over
  /// Parsed::records — the chain state is a pure function of the record
  /// sequence.
  static Parsed parse(const std::string& header, const std::string& text);

 private:
  std::string header_;
  std::uint64_t chain_;
};

/// In-memory journal of one program execution, serializable to a text file
/// that survives process restarts (`rfsmc inject --journal-out` /
/// `rfsmc resume --journal`).
class ProgramJournal {
 public:
  ProgramJournal() = default;

  /// Records the intent: the full program, before any step runs.  Resets
  /// the commit count.
  void begin(const ReconfigurationProgram& program);

  /// True once begin() was called.
  bool active() const { return active_; }

  /// Records that step `step` (0-based) took effect.  Steps must commit in
  /// order, starting at the current commit count.
  void commit(int step);

  /// Number of steps known to have taken effect.
  int committedSteps() const { return committed_; }

  /// True when every step of the journaled program committed.
  bool complete() const {
    return active_ && committed_ == program_.length();
  }

  /// True when parse() had to drop a torn trailing record.
  bool truncated() const { return truncated_; }

  const ReconfigurationProgram& program() const { return program_; }

  /// The steps that have not committed yet (the resume work list).
  ReconfigurationProgram remainingProgram() const;

  /// Serializes the journal (program text + commit records).
  std::string serialize(const MigrationContext& context) const;

  /// Parses a serialized journal.  A torn trailing commit record is
  /// dropped (truncated() reports it); malformed content anywhere else
  /// throws JournalError.  Program parse failures propagate as
  /// ProgramParseError.
  static ProgramJournal parse(const MigrationContext& context,
                              const std::string& text);

 private:
  ReconfigurationProgram program_;
  bool active_ = false;
  bool truncated_ = false;
  int committed_ = 0;
};

}  // namespace rfsm
