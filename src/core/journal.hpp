// Write-ahead journaling of reconfiguration programs.
//
// A reconfiguration that dies mid-program (power loss, preempted
// Reconfigurator) leaves the table in a half-written state.  The journal
// follows the classic WAL discipline: the *intent* — the full program — is
// recorded before the first table write, then every executed step appends a
// checksummed commit record.  After a crash the surviving prefix tells the
// recovery engine exactly which steps took effect, so the remainder can be
// resumed instead of restarting from a golden image.  A torn final record
// (the write the power failure interrupted) is tolerated and ignored; any
// earlier damage is a hard JournalError.
#pragma once

#include <cstdint>
#include <string>

#include "core/migration.hpp"
#include "core/program.hpp"
#include "util/check.hpp"

namespace rfsm {

/// Thrown on malformed journals; the message names the offending line.
class JournalError : public Error {
 public:
  explicit JournalError(const std::string& what) : Error(what) {}
};

/// In-memory journal of one program execution, serializable to a text file
/// that survives process restarts (`rfsmc inject --journal-out` /
/// `rfsmc resume --journal`).
class ProgramJournal {
 public:
  ProgramJournal() = default;

  /// Records the intent: the full program, before any step runs.  Resets
  /// the commit count.
  void begin(const ReconfigurationProgram& program);

  /// True once begin() was called.
  bool active() const { return active_; }

  /// Records that step `step` (0-based) took effect.  Steps must commit in
  /// order, starting at the current commit count.
  void commit(int step);

  /// Number of steps known to have taken effect.
  int committedSteps() const { return committed_; }

  /// True when every step of the journaled program committed.
  bool complete() const {
    return active_ && committed_ == program_.length();
  }

  /// True when parse() had to drop a torn trailing record.
  bool truncated() const { return truncated_; }

  const ReconfigurationProgram& program() const { return program_; }

  /// The steps that have not committed yet (the resume work list).
  ReconfigurationProgram remainingProgram() const;

  /// Serializes the journal (program text + commit records).
  std::string serialize(const MigrationContext& context) const;

  /// Parses a serialized journal.  A torn trailing commit record is
  /// dropped (truncated() reports it); malformed content anywhere else
  /// throws JournalError.  Program parse failures propagate as
  /// ProgramParseError.
  static ProgramJournal parse(const MigrationContext& context,
                              const std::string& text);

 private:
  ReconfigurationProgram program_;
  bool active_ = false;
  bool truncated_ = false;
  int committed_ = 0;
};

}  // namespace rfsm
