// Migration chains: release trains M1 -> M2 -> ... -> Mn with rollbacks.
//
// A deployed self-reconfigurable controller sees a *sequence* of revisions
// over its lifetime.  Each hop is planned pairwise; this is sound for the
// physical device because stage i leaves every cell of M_{i+1}'s domain
// holding exactly M_{i+1} (that is what validateProgram certifies), which
// is precisely the initial knowledge stage i+1's planner assumes.  Cells
// outside that domain may hold stale values, but programs never traverse
// cells their model considers unspecified.
//
// Every hop also gets a rollback program (M_{i+1} -> M_i) so a bad rollout
// can be reverted gradually too — the same machinery with source and
// target swapped.
#pragma once

#include <string>
#include <vector>

#include "core/migration.hpp"
#include "core/program.hpp"
#include "util/rng.hpp"

namespace rfsm {

/// Planner used for every hop of a chain.
enum class ChainPlanner { kJsr, kGreedy, kEvolutionary };

/// One hop of the release train.
struct ChainStage {
  MigrationContext context;            // M_i -> M_{i+1}
  MigrationContext rollbackContext;    // M_{i+1} -> M_i
  ReconfigurationProgram upgrade;
  ReconfigurationProgram rollback;
  bool upgradeValid = false;
  bool rollbackValid = false;
};

/// A fully planned chain.
struct ChainPlan {
  std::vector<ChainStage> stages;

  int totalUpgradeLength() const;
  int totalRollbackLength() const;
  bool allValid() const;
};

/// Plans every hop of `revisions` (size >= 2) with the given planner.
/// Deterministic for a given seed.  Every program is validated; the result
/// records the verdicts rather than throwing, so callers can report.
ChainPlan planMigrationChain(const std::vector<Machine>& revisions,
                             ChainPlanner planner, std::uint64_t seed = 1);

const char* toString(ChainPlanner planner);

}  // namespace rfsm
