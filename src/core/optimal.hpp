// Exact reconfiguration planning by state-space search.
//
// The permutation planners (Sec. 4.6 and planners.hpp) fix a *decoder* and
// search only over delta orderings.  This module searches the actual
// reachable configuration space: a search node is
//     (set of delta cells already fixed, current state, temp-cell content)
// and the moves are exactly the one-cycle operations the hardware offers —
// reset, traversing an existing transition, rewriting the delta cell at the
// current state, or rewriting the designated temporary cell (i0, S0') to
// jump anywhere useful.  Uniform move cost makes breadth-first search
// return a provably shortest program *within this move family*, which
// strictly contains everything the paper's decoder can express (it can
// interleave walks and jumps mid-program).
//
// Cost: O(2^|Td| * |S_super| * (|Td| + 3)) nodes; practical to |Td| ~ 16.
#pragma once

#include <optional>

#include "core/migration.hpp"
#include "core/program.hpp"

namespace rfsm {

/// Options for the search.
struct OptimalSearchOptions {
  /// Temporary-cell input i0 (kNoSymbol = first input of M').
  SymbolId tempInput = kNoSymbol;
  /// Refuse instances with more deltas than this (node count doubles per
  /// delta).
  int maxDeltas = 14;
  /// Hard cap on the search-space size (~12 bytes/node are allocated).
  std::size_t maxNodes = 4u << 20;
};

/// Shortest reconfiguration program within the one-cycle move family, or
/// nullopt when the instance exceeds the limits.  The result validates and
/// is never longer than any planner in planners.hpp (a property test
/// enforces both).
std::optional<ReconfigurationProgram> planOptimalSearch(
    const MigrationContext& context, const OptimalSearchOptions& options = {});

}  // namespace rfsm
