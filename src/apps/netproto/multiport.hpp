// Packet-dependent processing: a port that re-parses per packet version.
//
// The paper's introduction motivates (self-)reconfigurable FSMs with
// "network protocol applications that require packet-dependent processing".
// MultiProtocolPort realizes that literally: every packet carries a version
// tag; when the version differs from the currently loaded parser, the port
// migrates its parser FSM to the announced version *before* parsing the
// payload, and accounts the reconfiguration cycles as per-switch downtime.
// All pairwise migration programs are planned and validated up front (they
// are data, not code — the technology-independence the paper claims).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "apps/netproto/protocol.hpp"
#include "core/migration.hpp"
#include "core/program.hpp"
#include "fsm/simulate.hpp"

namespace rfsm::netproto {

/// Accounting of a processed packet.
struct PacketReport {
  int version = 0;          // parser version used
  bool switched = false;    // did this packet trigger a migration?
  int switchCycles = 0;     // downtime spent migrating (0 if not switched)
  int frameMatches = 0;     // preamble hits inside the payload
};

/// A port hosting one reconfigurable parser and the programs to morph it
/// between protocol versions.
class MultiProtocolPort {
 public:
  /// Preambles, one per protocol version (index = version id).  Plans and
  /// validates all pairwise migration programs with `planner`.
  MultiProtocolPort(std::vector<std::string> preambles,
                    UpgradePlanner planner, std::uint64_t seed = 1);

  MultiProtocolPort(const MultiProtocolPort&) = delete;
  MultiProtocolPort& operator=(const MultiProtocolPort&) = delete;

  int versionCount() const { return static_cast<int>(parsers_.size()); }
  int currentVersion() const { return current_; }

  /// Total reconfiguration cycles spent so far.
  int totalSwitchCycles() const { return totalSwitchCycles_; }
  /// Number of parser migrations performed.
  int switchCount() const { return switchCount_; }

  /// Length of the planned program version `from` -> `to`.
  int programLength(int from, int to) const;

  /// Parses one packet: migrates to `version` if needed (in-band), then
  /// scans `payloadBits` for frame preambles.
  PacketReport processPacket(int version, const std::string& payloadBits);

 private:
  std::vector<Machine> parsers_;
  /// programs_[{from, to}] = validated migration program.
  std::map<std::pair<int, int>, int> programLengths_;
  int current_ = 0;
  int totalSwitchCycles_ = 0;
  int switchCount_ = 0;
  std::unique_ptr<Simulator> simulator_;
};

}  // namespace rfsm::netproto
