// Packet-dependent protocol processing on self-reconfigurable FSMs.
//
// The paper's introduction names "network protocol applications that
// require packet-dependent processing" as the application domain.  This
// module models a line-rate frame delimiter: a Mealy machine watches the
// serial bit stream and raises its output for one cycle whenever a frame
// preamble has been seen.  A protocol upgrade changes the preamble; instead
// of stopping the device and swapping the full configuration context, the
// processor migrates its parser FSM gradually (self-reconfiguration),
// counting the exact downtime in cycles.
#pragma once

#include <memory>
#include <string>

#include "core/migration.hpp"
#include "core/program.hpp"
#include "core/recovery.hpp"
#include "core/self_reconfigurable.hpp"
#include "fsm/machine.hpp"
#include "util/fault.hpp"
#include "util/rng.hpp"

namespace rfsm::netproto {

/// Builds the frame-delimiter Mealy machine for `preamble` (binary string):
/// output 1 exactly on the cycle the preamble completes.
Machine preambleParser(const std::string& preamble);

/// Renders a bit stream of `frameCount` frames: each frame is the preamble
/// followed by `payloadBits` random payload bits that never contain the
/// preamble's first character run ambiguity is allowed — matches are
/// counted by the golden simulator, not assumed.
std::string renderStream(const std::string& preamble, int frameCount,
                         int payloadBits, Rng& rng);

/// Counts preamble matches `machine` reports on `bits` (golden reference).
int countMatches(const Machine& machine, const std::string& bits);

/// Which planner produces the migration program.
enum class UpgradePlanner { kJsr, kGreedy, kEvolutionary };

/// Outcome of a processed stream with one in-band upgrade.
struct SwitchoverReport {
  int preUpgradeMatches = 0;     // frames seen before the upgrade request
  int postUpgradeMatches = 0;    // frames seen after the migration finished
  int droppedDuringUpgrade = 0;  // bits consumed while reconfiguring
  int programLength = 0;         // |Z| of the migration program
  int deltaCount = 0;            // |Td| of the migration
  bool programValidated = false; // validateProgram() verdict
};

/// A serial-stream processor whose parser FSM can upgrade itself in-band.
class ProtocolProcessor {
 public:
  /// Prepares a processor parsing `fromPreamble`, with an upgrade path to
  /// `toPreamble` planned by `planner` (seeded for reproducibility).
  ProtocolProcessor(const std::string& fromPreamble,
                    const std::string& toPreamble, UpgradePlanner planner,
                    std::uint64_t seed = 1);
  ~ProtocolProcessor();

  ProtocolProcessor(const ProtocolProcessor&) = delete;
  ProtocolProcessor& operator=(const ProtocolProcessor&) = delete;

  /// Feeds bits ('0'/'1'); returns the number of frame matches reported.
  int processBits(const std::string& bits);

  /// Requests the in-band upgrade: the parser migrates at the next cycle.
  void requestUpgrade();

  /// True once the migration program has fully played.
  bool upgraded() const;

  /// Cycles spent reconfiguring so far.
  int reconfigurationCycles() const;

  const MigrationContext& context() const { return *context_; }
  const ReconfigurationProgram& program() const { return program_; }

  /// Runs the canonical experiment: parse `preFrames` frames of the old
  /// protocol, upgrade in-band, parse `postFrames` frames of the new
  /// protocol; returns the accounting.
  SwitchoverReport runSwitchover(int preFrames, int postFrames,
                                 int payloadBits, Rng& rng);

  /// A switchover disturbed by an injected fault scenario.
  struct FaultySwitchoverReport {
    SwitchoverReport base;
    bool faultDetected = false;  // a disturbance was observed
    bool repaired = false;       // in-band patch programs fixed it
    bool rolledBack = false;     // device restored to the old protocol
    int cellsPatched = 0;
    int recoveryCycles = 0;  // extra bits consumed by patch programs
  };

  /// Like runSwitchover, but the migration runs under `scenario` (flip
  /// steps are indices into the upgrade program; a power loss aborts it).
  /// The parser is checkpointed before the upgrade; damage is detected by
  /// integrity scan + verification, patched in-band with planRepair
  /// programs, and on persistent failure the checkpoint is restored — the
  /// post-upgrade stream then carries the *old* protocol, which the report
  /// flags via `rolledBack`.
  FaultySwitchoverReport runFaultySwitchover(
      int preFrames, int postFrames, int payloadBits, Rng& rng,
      const fault::FaultScenario& scenario,
      const RecoveryOptions& options = {});

 private:
  std::string fromPreamble_, toPreamble_;
  Machine source_, target_;
  std::unique_ptr<MigrationContext> context_;
  ReconfigurationProgram program_;
  std::unique_ptr<SelfReconfigurableMachine> machine_;
  bool upgradeRequested_ = false;
  bool upgradeStarted_ = false;
};

}  // namespace rfsm::netproto
