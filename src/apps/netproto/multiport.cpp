#include "apps/netproto/multiport.hpp"

#include "core/apply.hpp"
#include "core/jsr.hpp"
#include "core/planners.hpp"
#include "util/check.hpp"

namespace rfsm::netproto {
namespace {

ReconfigurationProgram planPair(const MigrationContext& context,
                                UpgradePlanner planner, std::uint64_t seed) {
  switch (planner) {
    case UpgradePlanner::kJsr:
      return planJsr(context);
    case UpgradePlanner::kGreedy:
      return planGreedy(context);
    case UpgradePlanner::kEvolutionary: {
      Rng rng(seed);
      return planEvolutionary(context, EvolutionConfig{}, rng).program;
    }
  }
  return planJsr(context);
}

}  // namespace

MultiProtocolPort::MultiProtocolPort(std::vector<std::string> preambles,
                                     UpgradePlanner planner,
                                     std::uint64_t seed) {
  RFSM_CHECK(preambles.size() >= 2, "a port needs at least two versions");
  for (const std::string& preamble : preambles)
    parsers_.push_back(preambleParser(preamble));

  // Plan and validate every ordered version pair up front.
  for (int from = 0; from < versionCount(); ++from) {
    for (int to = 0; to < versionCount(); ++to) {
      if (from == to) continue;
      const MigrationContext context(
          parsers_[static_cast<std::size_t>(from)],
          parsers_[static_cast<std::size_t>(to)]);
      const ReconfigurationProgram program = planPair(
          context, planner, seed * 100 + static_cast<std::uint64_t>(
              from * versionCount() + to));
      const ValidationResult verdict = validateProgram(context, program);
      RFSM_CHECK(verdict.valid,
                 "invalid migration program for version switch: " +
                     verdict.reason);
      programLengths_[{from, to}] = program.length();
    }
  }
  simulator_ = std::make_unique<Simulator>(parsers_.front());
}

int MultiProtocolPort::programLength(int from, int to) const {
  auto it = programLengths_.find({from, to});
  RFSM_CHECK(it != programLengths_.end(), "unknown version pair");
  return it->second;
}

PacketReport MultiProtocolPort::processPacket(int version,
                                              const std::string& payloadBits) {
  RFSM_CHECK(version >= 0 && version < versionCount(),
             "packet announces an unknown version");
  PacketReport report;
  report.version = version;
  if (version != current_) {
    // The validated program morphs the parser and terminates in S0', so
    // the behavioural continuation equals a fresh target parser at reset.
    report.switched = true;
    report.switchCycles = programLength(current_, version);
    totalSwitchCycles_ += report.switchCycles;
    ++switchCount_;
    current_ = version;
    simulator_ = std::make_unique<Simulator>(
        parsers_[static_cast<std::size_t>(current_)]);
  }
  const Machine& parser = parsers_[static_cast<std::size_t>(current_)];
  const SymbolId one = parser.outputs().at("1");
  const SymbolId in0 = parser.inputs().at("0");
  const SymbolId in1 = parser.inputs().at("1");
  for (char bit : payloadBits) {
    RFSM_CHECK(bit == '0' || bit == '1', "payload must be a bit string");
    if (simulator_->step(bit == '1' ? in1 : in0) == one)
      ++report.frameMatches;
  }
  return report;
}

}  // namespace rfsm::netproto
