#include "apps/netproto/protocol.hpp"

#include "core/apply.hpp"
#include "core/jsr.hpp"
#include "core/planners.hpp"
#include "core/repair.hpp"
#include "fsm/simulate.hpp"
#include "gen/families.hpp"

namespace rfsm::netproto {

Machine preambleParser(const std::string& preamble) {
  return sequenceDetector(preamble).withName("parse_" + preamble);
}

std::string renderStream(const std::string& preamble, int frameCount,
                         int payloadBits, Rng& rng) {
  std::string stream;
  stream.reserve(static_cast<std::size_t>(frameCount) *
                 (preamble.size() + static_cast<std::size_t>(payloadBits)));
  for (int f = 0; f < frameCount; ++f) {
    stream += preamble;
    for (int b = 0; b < payloadBits; ++b)
      stream += rng.chance(0.5) ? '1' : '0';
  }
  return stream;
}

int countMatches(const Machine& machine, const std::string& bits) {
  Simulator sim(machine);
  const SymbolId one = machine.outputs().at("1");
  const SymbolId in0 = machine.inputs().at("0");
  const SymbolId in1 = machine.inputs().at("1");
  int matches = 0;
  for (char bit : bits)
    if (sim.step(bit == '1' ? in1 : in0) == one) ++matches;
  return matches;
}

namespace {

ReconfigurationProgram planUpgrade(const MigrationContext& context,
                                   UpgradePlanner planner,
                                   std::uint64_t seed) {
  switch (planner) {
    case UpgradePlanner::kJsr:
      return planJsr(context);
    case UpgradePlanner::kGreedy:
      return planGreedy(context);
    case UpgradePlanner::kEvolutionary: {
      Rng rng(seed);
      EvolutionConfig config;
      return planEvolutionary(context, config, rng).program;
    }
  }
  return planJsr(context);
}

}  // namespace

ProtocolProcessor::ProtocolProcessor(const std::string& fromPreamble,
                                     const std::string& toPreamble,
                                     UpgradePlanner planner,
                                     std::uint64_t seed)
    : fromPreamble_(fromPreamble),
      toPreamble_(toPreamble),
      source_(preambleParser(fromPreamble)),
      target_(preambleParser(toPreamble)),
      context_(std::make_unique<MigrationContext>(source_, target_)),
      program_(planUpgrade(*context_, planner, seed)),
      machine_(std::make_unique<SelfReconfigurableMachine>(*context_)) {}

ProtocolProcessor::~ProtocolProcessor() = default;

int ProtocolProcessor::processBits(const std::string& bits) {
  const SymbolId one = context_->outputs().at("1");
  const SymbolId in0 = context_->inputs().at("0");
  const SymbolId in1 = context_->inputs().at("1");
  int matches = 0;
  for (char bit : bits) {
    if (upgradeRequested_ && !upgradeStarted_) {
      machine_->enqueueProgram(program_);
      upgradeStarted_ = true;
    }
    const bool reconfigCycle = machine_->reconfiguring();
    const SymbolId out = machine_->clock(bit == '1' ? in1 : in0);
    // Outputs produced while the Reconfigurator drives the machine are not
    // protocol outputs.
    if (!reconfigCycle && out == one) ++matches;
  }
  return matches;
}

void ProtocolProcessor::requestUpgrade() { upgradeRequested_ = true; }

bool ProtocolProcessor::upgraded() const {
  return upgradeStarted_ && !machine_->reconfiguring();
}

int ProtocolProcessor::reconfigurationCycles() const {
  return machine_->reconfigurationCycles();
}

SwitchoverReport ProtocolProcessor::runSwitchover(int preFrames,
                                                  int postFrames,
                                                  int payloadBits, Rng& rng) {
  SwitchoverReport report;
  report.deltaCount = context_->deltaCount();
  report.programLength = program_.length();
  report.programValidated = validateProgram(*context_, program_).valid;

  report.preUpgradeMatches =
      processBits(renderStream(fromPreamble_, preFrames, payloadBits, rng));

  requestUpgrade();
  // The link keeps carrying idle bits while the parser migrates; they are
  // consumed but not parsed.
  while (!upgraded()) {
    processBits("0");
    ++report.droppedDuringUpgrade;
  }

  report.postUpgradeMatches =
      processBits(renderStream(toPreamble_, postFrames, payloadBits, rng));
  return report;
}

ProtocolProcessor::FaultySwitchoverReport ProtocolProcessor::runFaultySwitchover(
    int preFrames, int postFrames, int payloadBits, Rng& rng,
    const fault::FaultScenario& scenario, const RecoveryOptions& options) {
  FaultySwitchoverReport report;
  report.base.deltaCount = context_->deltaCount();
  report.base.programLength = program_.length();
  report.base.programValidated = validateProgram(*context_, program_).valid;

  report.base.preUpgradeMatches =
      processBits(renderStream(fromPreamble_, preFrames, payloadBits, rng));

  MutableMachine& parser = machine_->mutableMachine();
  const MutableMachine::TableImage golden = parser.checkpoint();
  const auto inputCount =
      static_cast<std::size_t>(context_->inputs().size());

  requestUpgrade();
  // Pump idle bits while the parser migrates, landing the scenario's flips
  // before their program step and cutting the power at abortAtStep (the
  // Reconfigurator forgets its remaining steps).
  int step = 0;
  bool aborted = false;
  while (!upgraded() && !aborted) {
    for (const fault::CellFault& flip : scenario.flips)
      if (flip.atStep == step)
        parser.corruptBit(static_cast<SymbolId>(flip.cell % inputCount),
                          static_cast<SymbolId>(flip.cell / inputCount),
                          flip.bit);
    if (scenario.abortAtStep.has_value() && *scenario.abortAtStep == step) {
      machine_->abortReconfiguration();
      aborted = true;
      break;
    }
    try {
      processBits("0");
    } catch (const MigrationError&) {
      // The corrupted table broke the program mid-flight.
      machine_->abortReconfiguration();
      aborted = true;
    }
    ++report.base.droppedDuringUpgrade;
    ++step;
  }
  if (!aborted)
    for (const fault::CellFault& flip : scenario.flips)
      if (flip.atStep >= step)
        parser.corruptBit(static_cast<SymbolId>(flip.cell % inputCount),
                          static_cast<SymbolId>(flip.cell / inputCount),
                          flip.bit);

  // Detection + in-band recovery: scrub corrupted cells, play patch
  // programs through the normal self-reconfiguration path, re-verify.
  OnlineVerifier verifier(options.conformanceCheck);
  bool ok = verifier.verify(parser).ok;
  if (!ok) {
    report.faultDetected = true;
    for (int attempt = 0; attempt < options.maxAttempts && !ok; ++attempt) {
      for (const TotalState& at : parser.integrityScan())
        parser.clearCell(at.input, at.state);
      report.cellsPatched +=
          static_cast<int>(remainingDeltas(parser).size());
      machine_->enqueueProgram(planRepair(parser, options.tempInput));
      try {
        while (machine_->reconfiguring()) {
          processBits("0");
          ++report.recoveryCycles;
        }
        ok = verifier.verify(parser).ok;
      } catch (const MigrationError&) {
        machine_->abortReconfiguration();
      }
    }
    report.repaired = ok;
    if (!ok) {
      parser.restore(golden);
      report.rolledBack = true;
    }
  }

  // A rolled-back device keeps speaking the old protocol.
  const std::string& postPreamble =
      report.rolledBack ? fromPreamble_ : toPreamble_;
  report.base.postUpgradeMatches =
      processBits(renderStream(postPreamble, postFrames, payloadBits, rng));
  return report;
}

}  // namespace rfsm::netproto
