// rfsmd - the hardened planner service daemon.
//
// Modes:
//   rfsmd --socket PATH [options]   serve plan/health requests (supervisor)
//   rfsmd --worker                  shard worker (spawned by the supervisor,
//                                   speaks frames on fd 3; not for humans)
//
// The same binary is both supervisor and worker, so there is never a
// version skew between the two halves of the protocol.
#include <signal.h>

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "service/plan_cache.hpp"
#include "service/server.hpp"
#include "service/worker.hpp"
#include "util/chaos.hpp"
#include "util/deadline.hpp"
#include "util/fault.hpp"
#include "util/metrics.hpp"
#include "util/strings.hpp"
#include "util/trace.hpp"

namespace {

rfsm::CancelToken gStop;

void onSignal(int) { gStop.cancel(); }  // one relaxed atomic store

int usage(std::ostream& out, int code) {
  out << "rfsmd - reconfiguration planner service\n"
         "usage: rfsmd --socket ENDPOINT [options]\n"
         "       rfsmd --worker\n\n"
         "ENDPOINT is a Unix socket path (/run/rfsmd.sock, unix:...) or a\n"
         "TCP address (tcp:0.0.0.0:4777) for cross-host planner fabrics.\n\n"
         "options:\n"
         "  --workers N           worker processes (default 2)\n"
         "  --prefork             spawn and warm up every worker at startup\n"
         "                        instead of on first demand\n"
         "  --shard-size N        instances per shard (default 4)\n"
         "  --queue N             queue capacity; overload is shed "
         "(default 64)\n"
         "  --max-attempts N      tries per shard before FAILED (default 3)\n"
         "  --restart-limit N     crashes tolerated per window (default 5)\n"
         "  --restart-window-ms N crash-rate window (default 10000)\n"
         "  --idle-timeout-ms N   max worker silence without a deadline "
         "(default 30000)\n"
         "  --attempt-timeout-ms N  max worker silence per attempt; a hung\n"
         "                        worker is killed and the shard retried\n"
         "                        while the deadline still has budget "
         "(default off)\n"
         "  --fault NAME          induce a named failure scenario:\n"
         "                        none|kill-first-shard|abort-mid-shard|\n"
         "                        hang-worker|pool-unhealthy\n"
         "  --chaos SEED:PROFILE  arm deterministic disk/network fault\n"
         "                        injection (also honours RFSM_CHAOS):\n"
         "                        off|disk-light|disk-storm|net-light|\n"
         "                        net-storm|repl-light|repl-storm|full\n"
         "  --plan-cache N        memoize plan results, N entries (0 = off,\n"
         "                        the default; overrides RFSM_PLAN_CACHE)\n"
         "  --worker-binary PATH  binary for workers (default: this one)\n"
         "session options:\n"
         "  --state-dir DIR       journal + snapshot directory; enables\n"
         "                        crash-consistent sessions (hot restart\n"
         "                        replays the journals found here)\n"
         "  --session-jobs N      planning executors for sessions "
         "(default 2)\n"
         "  --snapshot-every N    mutations between snapshots (default 8;\n"
         "                        0 = journal only)\n"
         "  --tenant-rate R       per-tenant mutations/second admitted\n"
         "                        (default 0 = unlimited)\n"
         "  --tenant-burst B      per-tenant burst capacity (default 16)\n"
         "  --max-sessions N      resident session limit (default 256)\n"
         "  --replica ENDPOINT    ship every accepted session mutation to\n"
         "                        this standby daemon (repeatable; each\n"
         "                        record is epoch-fenced)\n"
         "  --repl-ack MODE       quorum = every standby journals before\n"
         "                        the client ack (default); async = ack\n"
         "                        locally, ship from a bounded queue\n"
         "  --standby-grace MS    a standby refuses client-triggered\n"
         "                        promotion while it heard from its primary\n"
         "                        within MS ms (default 0 = promote on\n"
         "                        first client contact)\n"
         "  --max-connections N   concurrent connections (default 32)\n";
  return code;
}

std::optional<std::string> option(const std::vector<std::string>& args,
                                  const std::string& name) {
  for (std::size_t k = 0; k + 1 < args.size(); ++k)
    if (args[k] == name) return args[k + 1];
  return std::nullopt;
}

bool flag(const std::vector<std::string>& args, const std::string& name) {
  for (const auto& a : args)
    if (a == name) return true;
  return false;
}

/// Every value of a repeatable option (`--replica A --replica B`).
std::vector<std::string> options(const std::vector<std::string>& args,
                                 const std::string& name) {
  std::vector<std::string> values;
  for (std::size_t k = 0; k + 1 < args.size(); ++k)
    if (args[k] == name) values.push_back(args[k + 1]);
  return values;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  if (flag(args, "--help") || flag(args, "-h"))
    return usage(std::cout, 0);
  // Workers keep the plan cache off: sharing is broker-in-parent — the
  // supervisor consults and fills the cache around shard dispatch, so hits
  // cross worker boundaries through the parent, not per-process copies.
  if (flag(args, "--worker")) return rfsm::service::runWorker();
  rfsm::trace::setProcessName("rfsmd");

  rfsm::service::ServerOptions options;
  try {
    rfsm::service::configurePlanCacheFromEnv();
    const auto planCache = option(args, "--plan-cache");
    if (planCache.has_value())
      rfsm::service::configurePlanCache(
          static_cast<std::size_t>(std::stoull(*planCache)));
    const auto socket = option(args, "--socket");
    if (!socket.has_value()) return usage(std::cerr, 64);
    options.socketPath = *socket;
    options.workerBinary =
        option(args, "--worker-binary").value_or(argv[0]);
    options.shardSize = static_cast<std::uint64_t>(
        std::stoull(option(args, "--shard-size").value_or("4")));
    options.pool.workers =
        std::stoi(option(args, "--workers").value_or("2"));
    options.pool.queueCapacity = static_cast<std::size_t>(
        std::stoull(option(args, "--queue").value_or("64")));
    options.pool.maxAttempts =
        std::stoi(option(args, "--max-attempts").value_or("3"));
    options.pool.restartLimit =
        std::stoi(option(args, "--restart-limit").value_or("5"));
    options.pool.restartWindow = std::chrono::milliseconds(
        std::stoll(option(args, "--restart-window-ms").value_or("10000")));
    options.pool.idleTimeout = std::chrono::milliseconds(
        std::stoll(option(args, "--idle-timeout-ms").value_or("30000")));
    options.pool.attemptTimeout = std::chrono::milliseconds(
        std::stoll(option(args, "--attempt-timeout-ms").value_or("0")));
    if (flag(args, "--prefork")) {
      options.pool.prefork = true;
      options.pool.warmupPayload = rfsm::service::encodeWarmupRequest();
    }
    options.sessions.stateDir = option(args, "--state-dir").value_or("");
    options.sessions.executors =
        std::stoi(option(args, "--session-jobs").value_or("2"));
    options.sessions.snapshotEvery = static_cast<std::uint64_t>(
        std::stoull(option(args, "--snapshot-every").value_or("8")));
    options.sessions.tenantRate =
        std::stod(option(args, "--tenant-rate").value_or("0"));
    options.sessions.tenantBurst =
        std::stod(option(args, "--tenant-burst").value_or("16"));
    options.sessions.maxSessions = static_cast<std::size_t>(
        std::stoull(option(args, "--max-sessions").value_or("256")));
    for (const std::string& replica : ::options(args, "--replica"))
      options.sessions.replicas.push_back(rfsm::ipc::parseEndpoint(replica));
    options.sessions.replAck = rfsm::service::replAckFromString(
        option(args, "--repl-ack").value_or("quorum"));
    options.sessions.standbyGrace = std::chrono::milliseconds(
        std::stoll(option(args, "--standby-grace").value_or("0")));
    options.maxConnections = static_cast<std::size_t>(
        std::stoull(option(args, "--max-connections").value_or("32")));
    const std::string faultName = option(args, "--fault").value_or("none");
    const auto scenario = rfsm::fault::serviceScenarioByName(faultName);
    if (!scenario.has_value()) {
      std::cerr << "rfsmd: unknown fault scenario '" << faultName << "' (";
      const auto& names = rfsm::fault::serviceScenarioNames();
      for (std::size_t k = 0; k < names.size(); ++k)
        std::cerr << (k ? "|" : "") << names[k];
      std::cerr << ")\n";
      return 64;
    }
    options.scenario = *scenario;
    if (const auto chaosSpec = option(args, "--chaos")) {
      // Export the spec so worker subprocesses (which inherit the
      // environment through spawnWorker) arm the same schedule on their
      // side of the fd-3 channel.
      ::setenv("RFSM_CHAOS", chaosSpec->c_str(), 1);
    }
    try {
      if (rfsm::chaos::plane().armFromEnv())
        std::cerr << "rfsmd: chaos armed (seed "
                  << rfsm::chaos::plane().seed() << ", profile '"
                  << rfsm::chaos::plane().profile().name << "')\n";
    } catch (const rfsm::Error& error) {
      std::cerr << "rfsmd: " << error.what() << "\n";
      return 64;
    }
  } catch (const std::exception& error) {
    std::cerr << "rfsmd: invalid argument (" << error.what() << ")\n";
    return 64;
  }

  signal(SIGINT, onSignal);
  signal(SIGTERM, onSignal);

  try {
    rfsm::service::Server server(options);
    std::cerr << "rfsmd: listening on " << options.socketPath << " ("
              << options.pool.workers << " workers, shard size "
              << options.shardSize << ", fault scenario '"
              << options.scenario.name << "')\n";
    // Hot-restart evidence, greppable by the session-smoke CI job.
    std::cerr << "rfsmd: service.sessions_recovered "
              << server.sessions().recoveredSessions() << "\n";
    // Replication evidence, greppable by the failover-smoke CI job.
    if (!options.sessions.replicas.empty())
      std::cerr << "rfsmd: replicating to " << options.sessions.replicas.size()
                << " standby endpoint(s) (ack="
                << rfsm::service::toString(options.sessions.replAck) << ")\n";
    if (server.sessions().quarantined() > 0)
      std::cerr << "rfsmd: service.sessions_quarantined "
                << server.sessions().quarantined() << "\n";
    server.run(&gStop);
    std::cerr << "rfsmd: drained " << server.drainedRequests()
              << " in-flight request(s), persisted "
              << server.sessions().sessionCount() << " session(s)\n";
    // Part of the graceful drain: flush the span ring to $RFSM_TRACE_OUT
    // and (when $RFSM_METRICS asks for a format, as in the benches) the
    // final metrics to stderr now, while the process is still healthy,
    // instead of trusting atexit ordering under SIGTERM.
    if (rfsm::trace::dumpToEnv())
      std::cerr << "rfsmd: trace ring flushed to $RFSM_TRACE_OUT\n";
    if (const char* format = std::getenv("RFSM_METRICS")) {
      const rfsm::metrics::Snapshot finalSnapshot = rfsm::metrics::snapshot();
      if (!finalSnapshot.empty()) {
        const std::string fmt(format);
        std::cerr << (fmt == "csv"    ? rfsm::metrics::toCsv(finalSnapshot)
                      : fmt == "json" ? rfsm::metrics::toJson(finalSnapshot)
                                      : rfsm::metrics::toMarkdown(finalSnapshot));
      }
    }
  } catch (const rfsm::Error& error) {
    std::cerr << "rfsmd: " << error.what() << "\n";
    return 1;
  }
  std::cerr << "rfsmd: shutting down\n";
  return 0;
}
