// rfsmc: command-line front end (see cli.hpp for the command set).
#include <iostream>
#include <string>
#include <vector>

#include "tools/cli.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int k = 1; k < argc; ++k) args.emplace_back(argv[k]);
  return rfsm::cli::runCli(args, std::cout, std::cerr);
}
