// Migration reports: everything an engineer wants to know about M -> M'
// on one page — delta classification, bounds, planner comparison, downtime
// models, resource fit.
#pragma once

#include <string>

#include "core/migration.hpp"
#include "util/rng.hpp"

namespace rfsm {

/// Rendering of the telemetry section at the bottom of a report.
enum class TelemetryFormat { kMarkdown, kCsv, kJson };

/// Options for buildMigrationReport.
struct ReportOptions {
  /// Run the EA planner (slower but usually shortest heuristic).
  bool runEvolutionary = true;
  /// Run the exact search when the instance is small enough.
  bool runOptimal = true;
  std::uint64_t seed = 1;
  /// Parallelism of the EA fitness evaluation (<= 0: one job per hardware
  /// thread).  The planned programs are identical for every job count.
  int jobs = 1;
  /// Include per-planner wall-clock timings in the telemetry section.  Off
  /// by default: timings are the one nondeterministic part of a report
  /// (counters are reproducible for a given seed).
  bool includeTimings = false;
  /// How the telemetry section is rendered (CSV/JSON sinks are meant for
  /// diffing sweeps across commits).
  TelemetryFormat telemetryFormat = TelemetryFormat::kMarkdown;
};

/// Renders the full markdown report (deterministic for a given seed).
std::string buildMigrationReport(const MigrationContext& context,
                                 const ReportOptions& options = {});

}  // namespace rfsm
