#include "tools/cli.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <ostream>
#include <sstream>
#include <thread>

#include "bdd/symbolic_fsm.hpp"
#include "core/apply.hpp"
#include "core/bounds.hpp"
#include "core/chain.hpp"
#include "core/jsr.hpp"
#include "core/local_search.hpp"
#include "core/optimal.hpp"
#include "core/peephole.hpp"
#include "core/planners.hpp"
#include "core/recovery.hpp"
#include "core/sequence.hpp"
#include "fsm/analysis.hpp"
#include "fsm/equivalence.hpp"
#include "fsm/kiss.hpp"
#include "fsm/statistics.hpp"
#include "fsm/serialize.hpp"
#include "gen/samples.hpp"
#include "logic/synthesize.hpp"
#include "rtl/resources.hpp"
#include "rtl/testbench.hpp"
#include "rtl/vhdl.hpp"
#include "service/client.hpp"
#include "service/fabric.hpp"
#include "service/plan_cache.hpp"
#include "service/session.hpp"
#include "util/chaos.hpp"
#include "util/fsio.hpp"
#include "tools/report.hpp"
#include "util/metrics.hpp"
#include "util/table.hpp"
#include "util/strings.hpp"
#include "util/trace.hpp"

namespace rfsm::cli {
namespace {

/// Thrown for user-facing CLI errors (bad usage, unreadable files).
class CliError : public Error {
 public:
  explicit CliError(const std::string& what) : Error(what) {}
};

std::string readFile(const std::string& path) {
  std::ifstream stream(path, std::ios::binary);
  if (!stream) throw CliError("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << stream.rdbuf();
  return buffer.str();
}

/// Resolves a machine argument: `sample:<name>`, *.json, or *.kiss2.
/// Truncated or corrupt files surface as a CliError naming the file and the
/// parser's line/offset — never as an uncaught abort.
Machine loadMachine(const std::string& spec) {
  if (startsWith(spec, "sample:")) return sampleMachine(spec.substr(7));
  const std::string text = readFile(spec);
  try {
    if (spec.size() >= 5 && spec.substr(spec.size() - 5) == ".json")
      return machineFromJson(text);
    if (spec.size() >= 6 && spec.substr(spec.size() - 6) == ".kiss2")
      return machineFromKiss2(parseKiss2(text), spec);
  } catch (const Error& error) {
    throw CliError("cannot load '" + spec + "': " + error.what());
  }
  throw CliError("unsupported machine format for '" + spec +
                 "' (expected .json, .kiss2 or sample:<name>)");
}

void writeFile(const std::string& path, const std::string& text) {
  std::ofstream stream(path, std::ios::binary);
  if (!stream) throw CliError("cannot write '" + path + "'");
  stream << text;
  if (!stream) throw CliError("write to '" + path + "' failed");
}

/// Option lookup: returns the value following `--name`, if present.
std::optional<std::string> option(const std::vector<std::string>& args,
                                  const std::string& name) {
  for (std::size_t k = 0; k + 1 < args.size(); ++k)
    if (args[k] == name) return args[k + 1];
  return std::nullopt;
}

bool flag(const std::vector<std::string>& args, const std::string& name) {
  for (const auto& a : args)
    if (a == name) return true;
  return false;
}

/// Every value of a repeatable option (--endpoint can appear N times).
std::vector<std::string> optionAll(const std::vector<std::string>& args,
                                   const std::string& name) {
  std::vector<std::string> values;
  for (std::size_t k = 0; k + 1 < args.size(); ++k)
    if (args[k] == name) values.push_back(args[k + 1]);
  return values;
}

/// The planner-fabric endpoint set: repeated --endpoint flags, or the
/// RFSM_ENDPOINTS environment list when no flag is given.
std::vector<ipc::Endpoint> fabricEndpoints(
    const std::vector<std::string>& args) {
  std::vector<ipc::Endpoint> endpoints;
  for (const std::string& text : optionAll(args, "--endpoint"))
    endpoints.push_back(ipc::parseEndpoint(text));
  if (endpoints.empty()) {
    if (const char* env = std::getenv("RFSM_ENDPOINTS"))
      endpoints = ipc::parseEndpointList(env);
  }
  return endpoints;
}

int cmdInfo(const std::vector<std::string>& args, std::ostream& out) {
  if (args.empty()) throw CliError("usage: rfsmc info <machine>");
  const Machine m = loadMachine(args[0]);
  out << "name:        " << m.name() << "\n";
  out << "states:      " << m.stateCount() << " (reset "
      << m.states().name(m.resetState()) << ")\n";
  out << "inputs:      " << m.inputCount() << "\n";
  out << "outputs:     " << m.outputCount() << "\n";
  out << "transitions: " << m.stateCount() * m.inputCount() << "\n";
  out << "moore form:  " << (m.isMoore() ? "yes" : "no") << "\n";
  out << "connected:   " << (isConnectedFromReset(m) ? "yes" : "no") << "\n";
  out << "stable total states: " << stableTotalStates(m).size() << "\n";
  if (flag(args, "--stats"))
    out << "\n" << describeStatistics(computeStatistics(m));
  return 0;
}

int cmdReport(const std::vector<std::string>& args, std::ostream& out) {
  if (args.size() < 2)
    throw CliError("usage: rfsmc report <from> <to> [--seed N] [--jobs N] "
                   "[--telemetry md|csv|json]");
  const Machine source = loadMachine(args[0]);
  const Machine target = loadMachine(args[1]);
  const MigrationContext context(source, target);
  ReportOptions options;
  options.seed = static_cast<std::uint64_t>(
      std::stoll(option(args, "--seed").value_or("1")));
  options.jobs = std::stoi(option(args, "--jobs").value_or("1"));
  options.includeTimings = true;  // interactive use; determinism not needed
  const std::string telemetry = option(args, "--telemetry").value_or("md");
  if (telemetry == "md")
    options.telemetryFormat = TelemetryFormat::kMarkdown;
  else if (telemetry == "csv")
    options.telemetryFormat = TelemetryFormat::kCsv;
  else if (telemetry == "json")
    options.telemetryFormat = TelemetryFormat::kJson;
  else
    throw CliError("unknown telemetry format '" + telemetry +
                   "' (md|csv|json)");
  out << buildMigrationReport(context, options);
  return 0;
}

int cmdDot(const std::vector<std::string>& args, std::ostream& out) {
  if (args.empty()) throw CliError("usage: rfsmc dot <machine>");
  out << toDot(loadMachine(args[0]));
  return 0;
}

int cmdConvert(const std::vector<std::string>& args, std::ostream& out) {
  if (args.empty())
    throw CliError("usage: rfsmc convert <machine> --to json|kiss2");
  const Machine m = loadMachine(args[0]);
  const std::string to = option(args, "--to").value_or("json");
  if (to == "json") {
    out << toJson(m);
  } else if (to == "kiss2") {
    out << writeKiss2(kiss2FromMachine(m));
  } else {
    throw CliError("unknown target format '" + to + "'");
  }
  return 0;
}

ReconfigurationProgram planWith(const std::string& planner,
                                const MigrationContext& context,
                                std::uint64_t seed, int jobs) {
  if (planner == "jsr") return planJsr(context);
  if (planner == "greedy") return planGreedy(context);
  if (planner == "ea") {
    Rng rng(seed);
    ThreadPool pool(jobs);
    return planEvolutionary(context, EvolutionConfig{}, rng, {}, &pool)
        .program;
  }
  if (planner == "exact") {
    const auto program = planExact(context);
    if (!program.has_value())
      throw CliError("instance too large for the exact planner");
    return *program;
  }
  if (planner == "2opt") return planTwoOpt(context).program;
  if (planner == "optimal") {
    const auto program = planOptimalSearch(context);
    if (!program.has_value())
      throw CliError("instance too large for the optimal search");
    return *program;
  }
  if (planner == "anneal") {
    Rng rng(seed);
    return planAnnealing(context, AnnealingConfig{}, rng).program;
  }
  throw CliError("unknown planner '" + planner +
                 "' (jsr|greedy|ea|exact|2opt|anneal|optimal)");
}

int cmdMigrate(const std::vector<std::string>& args, std::ostream& out) {
  if (args.size() < 2)
    throw CliError("usage: rfsmc migrate <from> <to> [--planner P] "
                   "[--seed N] [--jobs N] [--table] [--program-out FILE]");
  const Machine source = loadMachine(args[0]);
  const Machine target = loadMachine(args[1]);
  const MigrationContext context(source, target);
  const std::string planner = option(args, "--planner").value_or("ea");
  const std::uint64_t seed = static_cast<std::uint64_t>(
      std::stoll(option(args, "--seed").value_or("1")));
  const int jobs = std::stoi(option(args, "--jobs").value_or("1"));

  ReconfigurationProgram z = planWith(planner, context, seed, jobs);
  if (flag(args, "--optimize")) z = optimizeProgram(context, z).program;
  const ValidationResult verdict = validateProgram(context, z);

  out << "migration " << source.name() << " -> " << target.name() << "\n";
  out << "|Td| = " << context.deltaCount() << ", bounds [" << programLowerBound(context)
      << ", " << jsrUpperBound(context) << "]\n";
  out << "planner " << planner << ": |Z| = " << z.length() << " ("
      << z.rewriteCount() << " rewrites, " << z.temporaryCount()
      << " temporary, " << z.resetCount() << " resets)\n";
  out << "valid: " << (verdict.valid ? "yes" : "NO - " + verdict.reason)
      << "\n";
  if (const auto path = option(args, "--program-out"))
    writeFile(*path, programToText(context, z));
  if (flag(args, "--table"))
    out << "\n" << sequenceToMarkdown(context, sequenceFromProgram(z));
  else
    out << "\n" << describeProgram(context, z);
  return verdict.valid ? 0 : 2;
}

/// Shared rendering of a guarded-migration report.
void printGuardedReport(const GuardedMigrationReport& report,
                        std::ostream& out) {
  out << "outcome:        " << toString(report.outcome) << "\n";
  out << "fault detected: " << (report.faultDetected ? "yes" : "no") << "\n";
  out << "resumed:        " << (report.resumed ? "yes" : "no") << "\n";
  out << "patch attempts: " << report.patchAttempts << " ("
      << report.cellsPatched << " cells patched, " << report.cellsScrubbed
      << " scrubbed)\n";
  out << "cycles:         " << report.executedCycles << " executed + "
      << report.backoffCycles << " backoff\n";
  out << "journal:        " << report.journalCommitted
      << " step(s) committed\n";
  out << "detail:         " << report.detail << "\n";
}

/// Exit code contract shared by inject/resume: 0 = verified, 3 = clean
/// rollback, 1 = silent-corruption risk (never happens by construction
/// unless the fault model is stacked against recovery, e.g. stuck-at
/// damage inside the source domain).
int guardedExitCode(const GuardedMigrationReport& report) {
  switch (report.outcome) {
    case MigrationOutcome::kVerified: return 0;
    case MigrationOutcome::kRolledBack: return 3;
    case MigrationOutcome::kFailed: return 1;
  }
  return 1;
}

ReconfigurationProgram loadProgramFile(const MigrationContext& context,
                                       const std::string& path) {
  try {
    return programFromText(context, readFile(path));
  } catch (const ProgramParseError& error) {
    throw CliError("cannot load '" + path + "': " + error.what());
  }
}

int cmdInject(const std::vector<std::string>& args, std::ostream& out) {
  if (args.size() < 2)
    throw CliError(
        "usage: rfsmc inject <from> <to> [--planner P] [--seed N] "
        "[--flips N] [--abort-step K] [--retries N] [--program FILE] "
        "[--journal-out FILE]");
  const Machine source = loadMachine(args[0]);
  const Machine target = loadMachine(args[1]);
  const MigrationContext context(source, target);
  const std::string planner = option(args, "--planner").value_or("jsr");
  const std::uint64_t seed = static_cast<std::uint64_t>(
      std::stoll(option(args, "--seed").value_or("1")));

  const auto programFile = option(args, "--program");
  const ReconfigurationProgram program =
      programFile.has_value() ? loadProgramFile(context, *programFile)
                              : planWith(planner, context, seed, /*jobs=*/1);

  MutableMachine machine(context);
  fault::FaultModel model;
  const auto abortStep = option(args, "--abort-step");
  if (abortStep.has_value()) model.abortProbability = 0.0;
  if (const auto flips = option(args, "--flips")) {
    model.maxFlips = std::stoi(*flips);
    model.flipProbability = 1.0;
  }
  fault::FaultGeometry geometry;
  geometry.cellCount = static_cast<std::size_t>(context.states().size()) *
                       static_cast<std::size_t>(context.inputs().size());
  geometry.bitsPerCell = machine.faultBitsPerCell();
  geometry.programLength = program.length();
  fault::FaultInjector injector(seed);
  fault::FaultScenario scenario = injector.draw(model, geometry);
  if (abortStep.has_value()) scenario.abortAtStep = std::stoi(*abortStep);

  RecoveryOptions options;
  options.maxAttempts = std::stoi(option(args, "--retries").value_or("3"));

  ProgramJournal journal;
  const GuardedMigrationReport report =
      runGuardedMigration(machine, program, scenario, options, &journal);

  out << "guarded migration " << source.name() << " -> " << target.name()
      << " (|Z| = " << program.length() << ", seed " << seed << ")\n";
  out << "scenario:       " << scenario.flips.size() << " flip(s)";
  if (scenario.abortAtStep.has_value())
    out << ", power loss before step " << *scenario.abortAtStep;
  out << "\n";
  printGuardedReport(report, out);
  if (const auto path = option(args, "--journal-out")) {
    // Journals exist to be read back after a crash: write-temp + fsync +
    // rename + parent fsync, so the file is never torn or lost.
    try {
      fsio::writeFileDurable(*path, journal.serialize(context));
    } catch (const fsio::FsError& error) {
      throw CliError(error.what());
    }
  }
  return guardedExitCode(report);
}

int cmdResume(const std::vector<std::string>& args, std::ostream& out) {
  const auto journalFile = option(args, "--journal");
  if (args.size() < 2 || !journalFile.has_value())
    throw CliError(
        "usage: rfsmc resume <from> <to> --journal FILE [--retries N]");
  const Machine source = loadMachine(args[0]);
  const Machine target = loadMachine(args[1]);
  const MigrationContext context(source, target);

  ProgramJournal journal;
  try {
    journal = ProgramJournal::parse(context, readFile(*journalFile));
  } catch (const Error& error) {
    throw CliError("cannot load '" + *journalFile + "': " + error.what());
  }

  // The device's table survived the crash exactly as the committed prefix
  // left it; reconstruct that state by replaying the prefix.
  MutableMachine machine(context);
  try {
    trace::ScopedSpan span(
        "journal.replay", "recovery",
        {trace::Arg::num("committed", static_cast<std::int64_t>(
                                          journal.committedSteps()))});
    for (int k = 0; k < journal.committedSteps(); ++k)
      machine.applyStep(journal.program().steps[static_cast<std::size_t>(k)]);
  } catch (const Error& error) {
    throw CliError("journal '" + *journalFile +
                   "' does not replay on this migration: " + error.what());
  }

  RecoveryOptions options;
  options.maxAttempts = std::stoi(option(args, "--retries").value_or("3"));

  out << "journal: " << journal.committedSteps() << "/"
      << journal.program().length() << " step(s) committed"
      << (journal.truncated() ? ", torn trailing record dropped" : "")
      << "\n";
  const GuardedMigrationReport report =
      journal.complete()
          ? repairToTarget(machine, options)
          : runGuardedMigration(machine, journal.program(),
                                fault::FaultScenario{}, options, &journal);
  printGuardedReport(report, out);
  return guardedExitCode(report);
}

int cmdVhdl(const std::vector<std::string>& args, std::ostream& out) {
  if (args.size() < 2) throw CliError("usage: rfsmc vhdl <from> <to>");
  const Machine source = loadMachine(args[0]);
  const Machine target = loadMachine(args[1]);
  const MigrationContext context(source, target);
  const auto sequence = sequenceFromProgram(planJsr(context));
  rtl::VhdlOptions options;
  options.entityName = option(args, "--entity").value_or("reconfigurable_fsm");
  out << rtl::generateVhdl(context, sequence, options);
  return 0;
}

int cmdSynth(const std::vector<std::string>& args, std::ostream& out) {
  if (args.empty()) throw CliError("usage: rfsmc synth <machine>");
  const Machine m = loadMachine(args[0]);
  const logic::TwoLevelSynthesis synthesis = logic::synthesizeTwoLevel(m);
  out << synthesis.describe() << "\n";
  const MigrationContext identity(m, m);
  const auto ram = rtl::estimateResources(identity, {});
  out << "RAM-based alternative: " << ram.framBits + ram.gramBits
      << " RAM bits in " << ram.blockRams << " BlockRAM(s)\n";
  return 0;
}

int cmdEquiv(const std::vector<std::string>& args, std::ostream& out) {
  if (args.size() < 2)
    throw CliError("usage: rfsmc equiv <a> <b> [--symbolic]");
  const Machine a = loadMachine(args[0]);
  const Machine b = loadMachine(args[1]);
  if (flag(args, "--symbolic")) {
    const auto result = bdd::checkEquivalenceSymbolic(a, b);
    out << "equivalent: " << (result.equivalent ? "yes" : "no")
        << " (symbolic: " << result.reachablePairs << " reachable pairs, "
        << result.iterations << " image iterations, " << result.bddNodes
        << " BDD nodes)\n";
    return result.equivalent ? 0 : 2;
  }
  const EquivalenceResult result = checkEquivalence(a, b);
  out << "equivalent: " << (result.equivalent ? "yes" : "no") << "\n";
  if (result.counterexample.has_value()) {
    out << "counterexample input word:";
    for (const auto& name : *result.counterexample) out << " " << name;
    out << "\n";
  }
  return result.equivalent ? 0 : 2;
}

int cmdChain(const std::vector<std::string>& args, std::ostream& out) {
  std::vector<Machine> revisions;
  for (const auto& arg : args) {
    if (startsWith(arg, "--")) break;
    revisions.push_back(loadMachine(arg));
  }
  if (revisions.size() < 2)
    throw CliError("usage: rfsmc chain <m1> <m2> [<m3> ...] [--planner P]");
  const std::string plannerName = option(args, "--planner").value_or("ea");
  ChainPlanner planner = ChainPlanner::kEvolutionary;
  if (plannerName == "jsr") planner = ChainPlanner::kJsr;
  else if (plannerName == "greedy") planner = ChainPlanner::kGreedy;
  else if (plannerName != "ea")
    throw CliError("unknown chain planner '" + plannerName +
                   "' (jsr|greedy|ea)");

  const ChainPlan plan = planMigrationChain(revisions, planner);
  Table table({"hop", "|Td|", "upgrade |Z|", "rollback |Z|", "valid"});
  for (const ChainStage& stage : plan.stages)
    table.addRow({stage.context.sourceMachine().name() + " -> " +
                      stage.context.targetMachine().name(),
                  std::to_string(stage.context.deltaCount()),
                  std::to_string(stage.upgrade.length()),
                  std::to_string(stage.rollback.length()),
                  stage.upgradeValid && stage.rollbackValid ? "yes" : "NO"});
  out << table.toMarkdown();
  out << "total upgrade " << plan.totalUpgradeLength()
      << " cycles, total rollback " << plan.totalRollbackLength()
      << " cycles\n";
  return plan.allValid() ? 0 : 2;
}

int cmdTestbench(const std::vector<std::string>& args, std::ostream& out) {
  if (args.size() < 2) throw CliError("usage: rfsmc testbench <from> <to>");
  const Machine source = loadMachine(args[0]);
  const Machine target = loadMachine(args[1]);
  const MigrationContext context(source, target);
  const auto sequence = sequenceFromProgram(planJsr(context));
  rtl::TestbenchOptions options;
  options.entityName = option(args, "--entity").value_or("reconfigurable_fsm");
  options.testbenchName = options.entityName + "_tb";
  // Exercise each target input once, twice around.
  std::vector<SymbolId> word;
  for (int round = 0; round < 2; ++round)
    for (SymbolId i = 0; i < target.inputCount(); ++i)
      word.push_back(context.liftTargetInput(i));
  out << rtl::generateTestbench(context, sequence, word, options);
  return 0;
}

int cmdPlan(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
  const std::optional<std::string> server = option(args, "--server");
  if (flag(args, "--probe")) {
    if (!server.has_value())
      throw CliError("plan --probe needs --server SOCKET");
    const auto health = service::probeHealth(*server);
    if (!health.has_value()) {
      err << "rfsmc: no planner service at '" << *server << "'\n";
      return 1;
    }
    out << "healthy:  " << (health->healthy ? "yes" : "NO") << "\n"
        << "workers:  " << health->workersAlive << "/"
        << health->workersConfigured << " alive\n"
        << "queue:    " << health->queueDepth << "\n"
        << "crashes:  " << health->crashes << "\n"
        << "retries:  " << health->retries << "\n"
        << "shed:     " << health->shed << "\n";
    return health->healthy ? 0 : 1;
  }

  const std::optional<std::string> random = option(args, "--random");
  if (!random.has_value())
    throw CliError(
        "usage: rfsmc plan --random S,I,D,N [--planner jsr|greedy|ea] "
        "[--seed N] [--jobs N] [--deadline-ms MS] [--server SOCKET] "
        "[--probe]");
  const std::vector<std::string> dims = split(*random, ',');
  if (dims.size() != 4)
    throw CliError("--random wants S,I,D,N (states,inputs,deltas,instances)");
  service::BatchSpec spec;
  spec.stateCount = std::stoi(dims[0]);
  spec.inputCount = std::stoi(dims[1]);
  spec.deltaCount = std::stoi(dims[2]);
  spec.instanceCount = std::stoull(dims[3]);
  spec.seed = static_cast<std::uint64_t>(
      std::stoll(option(args, "--seed").value_or("1")));
  spec.planner = option(args, "--planner").value_or("jsr");
  const std::int64_t deadlineMs =
      std::stoll(option(args, "--deadline-ms").value_or("0"));
  const int jobs = std::stoi(option(args, "--jobs").value_or("1"));
  // Plan-result cache opt-in (tools only; the library never reads the
  // environment).  The flag overrides RFSM_PLAN_CACHE.
  service::configurePlanCacheFromEnv();
  const std::optional<std::string> planCacheArg = option(args, "--plan-cache");
  if (planCacheArg.has_value())
    service::configurePlanCache(
        static_cast<std::size_t>(std::stoull(*planCacheArg)));
  const std::vector<ipc::Endpoint> endpoints = fabricEndpoints(args);

  // Root of the distributed trace: with tracing enabled, every span below —
  // the local planner's, the server's, the workers', and the fabric's —
  // chains back to this context, across process boundaries.
  trace::ContextScope traceScope(trace::beginTrace());
  trace::ScopedSpan rootSpan("rfsmc.plan", "cli",
                             {trace::Arg::num("instances", spec.instanceCount),
                              trace::Arg::num("seed", spec.seed)});

  service::ClientResult result;
  const bool viaFabric = !endpoints.empty();
  if (viaFabric) {
    service::FabricOptions fabricOptions;
    fabricOptions.endpoints = endpoints;
    fabricOptions.deadlineMs = deadlineMs;
    fabricOptions.jobs = jobs;
    fabricOptions.hedgeMs =
        std::stoll(option(args, "--hedge-ms").value_or("0"));
    fabricOptions.quorum = std::stoi(option(args, "--quorum").value_or("1"));
    fabricOptions.shardSize =
        std::stoull(option(args, "--shard-size").value_or("0"));
    service::Fabric fabric(std::move(fabricOptions));
    result = fabric.plan(spec, err);
  } else if (server.has_value()) {
    service::ClientOptions clientOptions;
    clientOptions.socketPath = *server;
    clientOptions.deadlineMs = deadlineMs;
    clientOptions.jobs = jobs;
    result = service::planBatch(spec, clientOptions, err);
  } else {
    result = service::planLocal(spec, deadlineMs, jobs);
  }

  if (result.status != WorkResult::Status::kOk) {
    err << "rfsmc: plan " << toString(result.status)
        << (result.error.empty() ? "" : ": " + result.error) << "\n";
    return result.status == WorkResult::Status::kDeadlineExceeded ? 4 : 1;
  }
  // stdout carries only the programs (byte-comparable between local,
  // server, fabric, and degraded runs); everything else goes to stderr.
  for (std::size_t k = 0; k < result.programs.size(); ++k)
    out << "# instance " << k << "\n" << result.programs[k];
  // The summary tokens are the canonical metric names (DESIGN.md §12
  // table), spelled via the constants so the stderr vocabulary cannot
  // drift from the CSV/JSON/markdown sinks.  CI smokes grep these.
  err << "rfsmc: planned " << result.programs.size() << " instances ("
      << spec.planner
      << (viaFabric ? ", fabric" : server.has_value() ? ", server" : ", local")
      << (result.degraded ? ", degraded" : "") << ", "
      << metrics::kServiceShardRetries << " " << result.retries << ", "
      << metrics::kServiceWorkerCrashes << " " << result.crashes << ", "
      << metrics::kServicePlanCacheHits << " " << result.cacheHits;
  if (viaFabric) {
    err << ", " << metrics::kFabricRerouted << " "
        << metrics::counter(metrics::kFabricRerouted).value() << ", "
        << metrics::kFabricHedged << " "
        << metrics::counter(metrics::kFabricHedged).value() << ", "
        << metrics::kFabricQuorumMismatch << " "
        << metrics::counter(metrics::kFabricQuorumMismatch).value();
  }
  err << ")\n";
  return 0;
}

/// The deterministic mutation schedule of `rfsmc session stream`: seq k
/// mutates with seed base+k; with --defer-every E > 1, only every E-th
/// mutation (and the last) flushes — the rest defer and compact.
service::MutationRecord scheduleRecord(std::uint64_t k, std::uint64_t total,
                                       std::uint32_t deltas,
                                       std::uint32_t newStates,
                                       std::uint64_t seedBase,
                                       std::uint64_t deferEvery) {
  service::MutationRecord rec;
  rec.seq = k;
  rec.deltaCount = deltas;
  rec.newStateCount = newStates;
  rec.mutationSeed = seedBase + k;
  rec.defer = deferEvery > 1 && k % deferEvery != 0 && k != total;
  return rec;
}

int cmdSessionStatus(const std::vector<std::string>& rest, std::ostream& out,
                     std::ostream& err) {
  const auto servers = optionAll(rest, "--server");
  if (servers.empty())
    throw CliError(
        "usage: rfsmc session status --server ENDPOINT [--server ...]\n"
        "         --tenant T --name N");
  service::SessionStream::Options streamOptions;
  streamOptions.endpoint = ipc::parseEndpoint(servers.front());
  for (const std::string& endpoint : servers)
    streamOptions.endpoints.push_back(ipc::parseEndpoint(endpoint));
  service::SessionStream stream(streamOptions);
  service::SessionStatusRequest request;
  request.tenant = option(rest, "--tenant").value_or("default");
  request.name = option(rest, "--name").value_or("session");
  const service::SessionStatusResponse status = stream.status(request);
  if (status.status != service::SessionStatus::kOk) {
    err << "rfsmc: session status failed: " << toString(status.status)
        << (status.error.empty() ? "" : " - " + status.error) << "\n";
    return 1;
  }
  out << "session " << request.tenant << "/" << request.name << ": role "
      << status.role << ", epoch " << status.epoch << ", accepted "
      << status.lastAccepted << ", applied " << status.applied << "\n";
  return 0;
}

int cmdSession(const std::vector<std::string>& args, std::ostream& out,
               std::ostream& err) {
  if (args.empty() || (args[0] != "stream" && args[0] != "status"))
    throw CliError(
        "usage: rfsmc session stream (--server ENDPOINT ... | --local)\n"
        "         --tenant T --name N --mutations M [--random S,I,O]\n"
        "         [--seed N] [--planner jsr|greedy|ea] [--priority P]\n"
        "         [--weight W] [--deltas D] [--new-states K]\n"
        "         [--defer-every E] [--mutation-seed B] [--resume]\n"
        "         [--close] [--retry-for-ms MS]\n"
        "       rfsmc session status --server ENDPOINT --tenant T --name N\n"
        "(repeat --server to add failover endpoints, primary first)");
  if (args[0] == "status")
    return cmdSessionStatus(
        std::vector<std::string>(args.begin() + 1, args.end()), out, err);
  const std::vector<std::string> rest(args.begin() + 1, args.end());
  service::SessionConfig config;
  config.tenant = option(rest, "--tenant").value_or("default");
  config.name = option(rest, "--name").value_or("session");
  config.priority = std::stoi(option(rest, "--priority").value_or("1"));
  config.weight =
      std::max(1.0, std::stod(option(rest, "--weight").value_or("1")));
  config.planner = option(rest, "--planner").value_or("jsr");
  config.seed = static_cast<std::uint64_t>(
      std::stoull(option(rest, "--seed").value_or("1")));
  if (const auto dims = option(rest, "--random")) {
    const auto parts = split(*dims, ',');
    if (parts.size() != 3)
      throw CliError("--random expects S,I,O (e.g. --random 8,2,2)");
    config.stateCount = std::stoi(parts[0]);
    config.inputCount = std::stoi(parts[1]);
    config.outputCount = std::stoi(parts[2]);
  }
  const auto mutationsOpt = option(rest, "--mutations");
  if (!mutationsOpt.has_value())
    throw CliError("session stream needs --mutations M");
  const std::uint64_t mutations = std::stoull(*mutationsOpt);
  const auto deltas = static_cast<std::uint32_t>(
      std::stoul(option(rest, "--deltas").value_or("4")));
  const auto newStates = static_cast<std::uint32_t>(
      std::stoul(option(rest, "--new-states").value_or("0")));
  const std::uint64_t deferEvery =
      std::stoull(option(rest, "--defer-every").value_or("1"));
  const std::uint64_t seedBase =
      std::stoull(option(rest, "--mutation-seed").value_or("1000"));
  const auto retryFor = std::chrono::milliseconds(
      std::stoll(option(rest, "--retry-for-ms").value_or("15000")));

  if (flag(rest, "--local")) {
    // The reference transcript: the exact SessionEngine the daemon runs,
    // uninterrupted and unscheduled — what any kill/restart/resume run
    // against a real daemon must byte-match.
    service::SessionEngine engine(config);
    std::uint64_t plans = 0;
    for (std::uint64_t k = 1; k <= mutations; ++k) {
      const service::PlanOutcome outcome = engine.apply(scheduleRecord(
          k, mutations, deltas, newStates, seedBase, deferEvery));
      if (outcome.failed)
        err << "rfsmc: mutation " << k << " failed: " << outcome.error
            << "\n";
      if (outcome.planned) {
        out << "# mutation " << k << "\n" << outcome.program;
        ++plans;
      }
    }
    err << "session " << config.tenant << "/" << config.name << ": "
        << engine.lastApplied() << " mutation(s), " << plans
        << " plan(s) (local reference)\n";
    return 0;
  }

  const auto servers = optionAll(rest, "--server");
  if (servers.empty())
    throw CliError("session stream needs --server ENDPOINT or --local");
  service::SessionStream::Options streamOptions;
  streamOptions.endpoint = ipc::parseEndpoint(servers.front());
  // Every --server after the first is a failover endpoint (a standby that
  // promotes itself when the primary dies); the stream rotates on
  // transport failure.
  for (const std::string& endpoint : servers)
    streamOptions.endpoints.push_back(ipc::parseEndpoint(endpoint));
  streamOptions.retryFor = retryFor;
  service::SessionStream stream(streamOptions);

  service::SessionOpenRequest openRequest;
  openRequest.tenant = config.tenant;
  openRequest.name = config.name;
  openRequest.priority = static_cast<std::uint32_t>(config.priority);
  openRequest.weight = static_cast<std::uint32_t>(config.weight);
  openRequest.planner = config.planner;
  openRequest.stateCount = config.stateCount;
  openRequest.inputCount = config.inputCount;
  openRequest.outputCount = config.outputCount;
  openRequest.seed = config.seed;
  openRequest.resume = true;
  const service::SessionOpenResponse opened = stream.open(openRequest);
  if (opened.status != service::SessionStatus::kOk) {
    err << "rfsmc: session open failed: " << toString(opened.status)
        << (opened.error.empty() ? "" : " - " + opened.error) << "\n";
    return 1;
  }
  std::uint64_t start = opened.lastApplied + 1;
  if (flag(rest, "--resume") && opened.lastApplied > 0) {
    // Re-print the recovered prefix so the resumed run's stdout is the
    // full transcript, byte-comparable against an uninterrupted one.
    service::SessionReplayRequest replayRequest;
    replayRequest.tenant = config.tenant;
    replayRequest.name = config.name;
    replayRequest.fromSeq = 1;
    replayRequest.toSeq = opened.lastApplied;
    const service::SessionReplayResponse replayed =
        stream.replay(replayRequest);
    if (replayed.status != service::SessionStatus::kOk) {
      err << "rfsmc: session replay failed: " << toString(replayed.status)
          << (replayed.error.empty() ? "" : " - " + replayed.error) << "\n";
      return 1;
    }
    for (const auto& entry : replayed.entries)
      out << "# mutation " << entry.seq << "\n" << entry.program;
  }

  std::uint64_t plans = 0, rejections = 0, rewinds = 0;
  // Output high-water mark: after a failover rewind the deterministic
  // schedule is re-sent from the promoted standby's frontier, and already-
  // printed sequence numbers must not print twice (the resumed stdout has
  // to stay byte-identical to an uninterrupted run).
  std::uint64_t processedUpTo = start - 1;
  for (std::uint64_t k = start; k <= mutations; ++k) {
    const service::MutationRecord rec = scheduleRecord(
        k, mutations, deltas, newStates, seedBase, deferEvery);
    service::SessionMutateRequest request;
    request.tenant = config.tenant;
    request.name = config.name;
    request.seq = rec.seq;
    request.deltaCount = rec.deltaCount;
    request.newStateCount = rec.newStateCount;
    request.mutationSeed = rec.mutationSeed;
    request.defer = rec.defer;
    const auto admissionDeadline =
        std::chrono::steady_clock::now() + retryFor;
    for (;;) {
      const service::SessionMutateResponse response =
          stream.mutate(request);
      if (response.status == service::SessionStatus::kResourceExhausted ||
          response.status == service::SessionStatus::kDraining) {
        // The typed backoff loop: honour the server's retry hint.
        ++rejections;
        if (std::chrono::steady_clock::now() >= admissionDeadline) {
          err << "rfsmc: mutation " << k << " not admitted within "
              << retryFor.count() << " ms: " << toString(response.status)
              << "\n";
          return 2;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(
            std::max<std::int64_t>(1, response.retryAfterMs > 0
                                          ? response.retryAfterMs
                                          : 100)));
        continue;
      }
      if (response.status == service::SessionStatus::kBadSequence) {
        // Failover rewind: a promoted standby can trail the acked
        // frontier under --repl-ack async.  Re-learn its high-water mark
        // and resend the (deterministic, so byte-identical) schedule from
        // there; processedUpTo suppresses the duplicate output.
        if (++rewinds > 8) {
          err << "rfsmc: mutation " << k
              << " rejected after repeated rewinds: " << response.error
              << "\n";
          return 1;
        }
        const service::SessionOpenResponse reopened = stream.open(openRequest);
        if (reopened.status != service::SessionStatus::kOk) {
          err << "rfsmc: session re-open after failover failed: "
              << toString(reopened.status)
              << (reopened.error.empty() ? "" : " - " + reopened.error)
              << "\n";
          return 1;
        }
        k = reopened.lastApplied;  // the outer ++k resumes right after it
        break;
      }
      if (response.status == service::SessionStatus::kOk) {
        if (k > processedUpTo) {
          out << "# mutation " << k << "\n" << response.program;
          ++plans;
        }
      } else if (response.status == service::SessionStatus::kFailed &&
                 !response.error.empty()) {
        if (k > processedUpTo)
          err << "rfsmc: mutation " << k << " failed: " << response.error
              << "\n";
      } else if (response.status != service::SessionStatus::kAccepted) {
        err << "rfsmc: mutation " << k << " rejected: "
            << toString(response.status)
            << (response.error.empty() ? "" : " - " + response.error)
            << "\n";
        return 1;
      }
      if (k > processedUpTo) processedUpTo = k;
      break;
    }
  }

  std::uint64_t closedPlans = plans;
  if (flag(rest, "--close")) {
    service::SessionCloseRequest closeRequest;
    closeRequest.tenant = config.tenant;
    closeRequest.name = config.name;
    const service::SessionCloseResponse closed = stream.close(closeRequest);
    if (closed.status != service::SessionStatus::kOk) {
      err << "rfsmc: session close failed: " << toString(closed.status)
          << "\n";
      return 1;
    }
    closedPlans = closed.plans;
  }
  err << "session " << config.tenant << "/" << config.name << ": streamed "
      << mutations << " mutation(s), " << closedPlans << " plan(s), "
      << rejections << " admission rejection(s), " << stream.reconnects()
      << " reconnect(s), " << stream.failovers() << " failover(s), "
      << rewinds << " rewind(s)\n";
  return 0;
}

/// Prometheus exposition metric name: rfsm_ prefix, [a-zA-Z0-9_] body.
std::string promName(const std::string& name) {
  std::string flat = "rfsm_";
  for (const char c : name)
    flat += (std::isalnum(static_cast<unsigned char>(c)) != 0) ? c : '_';
  return flat;
}

/// Prometheus / JSON label-value escaping (backslash and double quote).
std::string escapeValue(const std::string& value) {
  std::string escaped;
  for (const char c : value) {
    if (c == '\\' || c == '"') escaped += '\\';
    escaped += c;
  }
  return escaped;
}

void renderStatsTable(const service::StatsResponse& stats,
                      std::ostream& out) {
  out << "daemon:     pid " << stats.pid << ", up "
      << stats.uptimeMs / 1000 << " s"
      << (stats.draining ? ", DRAINING" : "") << "\n";
  out << "workers:    " << stats.workers.workersAlive << "/"
      << stats.workers.workersConfigured << " alive, "
      << (stats.workers.healthy ? "healthy" : "UNHEALTHY") << ", queue "
      << stats.workers.queueDepth << ", crashes " << stats.workers.crashes
      << ", retries " << stats.workers.retries << ", shed "
      << stats.workers.shed << "\n";
  out << "plan cache: "
      << (stats.planCache.enabled
              ? std::to_string(stats.planCache.size) + "/" +
                    std::to_string(stats.planCache.capacity) + " entries"
              : std::string("disabled"))
      << "\n";
  out << "scheduler:  depth " << stats.schedulerDepth << ", vtime "
      << stats.schedulerVirtualNow << ", " << stats.openSessions
      << " open session(s)\n";
  if (!stats.breakers.empty()) {
    Table table({"breaker", "state", "trips"});
    for (const auto& breaker : stats.breakers)
      table.addRow({breaker.name, breaker.state,
                    std::to_string(breaker.trips)});
    out << "\n" << table.toMarkdown();
  }
  if (!stats.sessions.empty()) {
    Table table({"tenant", "session", "role", "epoch", "prio", "weight",
                 "vtime", "tokens", "queued", "applied", "wal age ms",
                 "snap age ms"});
    for (const auto& s : stats.sessions) {
      std::ostringstream weight, vtime, tokens;
      weight << s.weight;
      vtime << s.vtime;
      tokens << s.tokensRemaining;
      table.addRow({s.tenant, s.name, s.role, std::to_string(s.epoch),
                    std::to_string(s.priority), weight.str(), vtime.str(),
                    tokens.str(), std::to_string(s.queued),
                    std::to_string(s.applied), std::to_string(s.walAgeMs),
                    std::to_string(s.snapshotAgeMs)});
    }
    out << "\n" << table.toMarkdown();
  }
  const std::string rendered = metrics::toMarkdown(stats.metrics);
  if (!rendered.empty()) out << "\n" << rendered;
}

void renderStatsJson(const service::StatsResponse& stats, std::ostream& out) {
  out << "{\n";
  out << "  \"pid\": " << stats.pid << ",\n";
  out << "  \"uptime_ms\": " << stats.uptimeMs << ",\n";
  out << "  \"draining\": " << (stats.draining ? "true" : "false") << ",\n";
  out << "  \"workers\": {\"healthy\": "
      << (stats.workers.healthy ? "true" : "false")
      << ", \"alive\": " << stats.workers.workersAlive
      << ", \"configured\": " << stats.workers.workersConfigured
      << ", \"queue_depth\": " << stats.workers.queueDepth
      << ", \"crashes\": " << stats.workers.crashes
      << ", \"retries\": " << stats.workers.retries
      << ", \"shed\": " << stats.workers.shed << "},\n";
  out << "  \"plan_cache\": {\"enabled\": "
      << (stats.planCache.enabled ? "true" : "false")
      << ", \"size\": " << stats.planCache.size
      << ", \"capacity\": " << stats.planCache.capacity << "},\n";
  out << "  \"breakers\": [";
  for (std::size_t k = 0; k < stats.breakers.size(); ++k) {
    const auto& breaker = stats.breakers[k];
    out << (k == 0 ? "" : ", ") << "{\"name\": \""
        << escapeValue(breaker.name) << "\", \"state\": \"" << breaker.state
        << "\", \"trips\": " << breaker.trips << "}";
  }
  out << "],\n";
  out << "  \"sessions\": [";
  for (std::size_t k = 0; k < stats.sessions.size(); ++k) {
    const auto& s = stats.sessions[k];
    out << (k == 0 ? "" : ", ") << "{\"tenant\": \"" << escapeValue(s.tenant)
        << "\", \"name\": \"" << escapeValue(s.name)
        << "\", \"role\": \"" << escapeValue(s.role)
        << "\", \"epoch\": " << s.epoch
        << ", \"priority\": " << s.priority << ", \"weight\": " << s.weight
        << ", \"vtime\": " << s.vtime
        << ", \"tokens_remaining\": " << s.tokensRemaining
        << ", \"queued\": " << s.queued << ", \"applied\": " << s.applied
        << ", \"wal_age_ms\": " << s.walAgeMs
        << ", \"snapshot_age_ms\": " << s.snapshotAgeMs << "}";
  }
  out << "],\n";
  out << "  \"open_sessions\": " << stats.openSessions << ",\n";
  out << "  \"scheduler_depth\": " << stats.schedulerDepth << ",\n";
  out << "  \"scheduler_vtime\": " << stats.schedulerVirtualNow << ",\n";
  const std::string rendered = metrics::toJson(stats.metrics);
  out << "  \"metrics\": " << (rendered.empty() ? "{}" : rendered) << "\n";
  out << "}\n";
}

void renderStatsPrometheus(const service::StatsResponse& stats,
                           std::ostream& out) {
  auto gauge = [&](const std::string& name, const std::string& labels,
                   double value, const char* type = "gauge") {
    out << "# TYPE " << name << " " << type << "\n";
    out << name << labels << " " << value << "\n";
  };
  gauge("rfsm_up", "", 1);
  gauge("rfsm_uptime_seconds", "",
        static_cast<double>(stats.uptimeMs) / 1000.0);
  gauge("rfsm_draining", "", stats.draining ? 1 : 0);
  gauge("rfsm_workers_alive", "",
        static_cast<double>(stats.workers.workersAlive));
  gauge("rfsm_workers_configured", "",
        static_cast<double>(stats.workers.workersConfigured));
  gauge("rfsm_worker_queue_depth", "",
        static_cast<double>(stats.workers.queueDepth));
  gauge("rfsm_plan_cache_enabled", "", stats.planCache.enabled ? 1 : 0);
  gauge("rfsm_plan_cache_size", "",
        static_cast<double>(stats.planCache.size));
  gauge("rfsm_plan_cache_capacity", "",
        static_cast<double>(stats.planCache.capacity));
  gauge("rfsm_open_sessions", "",
        static_cast<double>(stats.openSessions));
  gauge("rfsm_scheduler_depth", "",
        static_cast<double>(stats.schedulerDepth));
  gauge("rfsm_scheduler_vtime", "", stats.schedulerVirtualNow);
  if (!stats.breakers.empty()) {
    out << "# TYPE rfsm_breaker_trips counter\n";
    for (const auto& breaker : stats.breakers)
      out << "rfsm_breaker_trips{name=\"" << escapeValue(breaker.name)
          << "\",state=\"" << breaker.state << "\"} " << breaker.trips
          << "\n";
  }
  if (!stats.sessions.empty()) {
    out << "# TYPE rfsm_session_queued gauge\n";
    for (const auto& s : stats.sessions)
      out << "rfsm_session_queued{tenant=\"" << escapeValue(s.tenant)
          << "\",session=\"" << escapeValue(s.name) << "\"} " << s.queued
          << "\n";
    out << "# TYPE rfsm_session_tokens_remaining gauge\n";
    for (const auto& s : stats.sessions)
      out << "rfsm_session_tokens_remaining{tenant=\""
          << escapeValue(s.tenant) << "\",session=\"" << escapeValue(s.name)
          << "\"} " << s.tokensRemaining << "\n";
    out << "# TYPE rfsm_session_wal_age_ms gauge\n";
    for (const auto& s : stats.sessions)
      out << "rfsm_session_wal_age_ms{tenant=\"" << escapeValue(s.tenant)
          << "\",session=\"" << escapeValue(s.name) << "\"} " << s.walAgeMs
          << "\n";
    out << "# TYPE rfsm_session_epoch gauge\n";
    for (const auto& s : stats.sessions)
      out << "rfsm_session_epoch{tenant=\"" << escapeValue(s.tenant)
          << "\",session=\"" << escapeValue(s.name) << "\",role=\""
          << escapeValue(s.role) << "\"} " << s.epoch << "\n";
  }
  for (const auto& counter : stats.metrics.counters)
    gauge(promName(counter.name) + "_total", "",
          static_cast<double>(counter.value), "counter");
  for (const auto& g : stats.metrics.gauges)
    gauge(promName(g.name), "", static_cast<double>(g.value));
  for (const auto& window : stats.metrics.rolling) {
    const std::string base = promName(window.name);
    gauge(base + "_window_count", "", static_cast<double>(window.count));
    gauge(base + "_window_p50_ms", "", window.p50Ms);
    gauge(base + "_window_p90_ms", "", window.p90Ms);
    gauge(base + "_window_p99_ms", "", window.p99Ms);
  }
}

int cmdStats(const std::vector<std::string>& args, std::ostream& out,
             std::ostream& err) {
  const auto server = option(args, "--server");
  if (!server.has_value())
    throw CliError(
        "usage: rfsmc stats --server ENDPOINT [--watch] "
        "[--interval-ms MS] [--format table|json|prometheus]");
  const std::string format = option(args, "--format").value_or("table");
  if (format != "table" && format != "json" && format != "prometheus")
    throw CliError("unknown stats format '" + format +
                   "' (table|json|prometheus)");
  const bool watch = flag(args, "--watch");
  const auto interval = std::chrono::milliseconds(
      std::stoll(option(args, "--interval-ms").value_or("2000")));
  const ipc::Endpoint endpoint = ipc::parseEndpoint(*server);

  for (;;) {
    std::optional<std::string> reply;
    try {
      reply = service::exchangeEndpoint(endpoint,
                                        service::encodeStatsRequest(),
                                        /*timeoutMs=*/10000);
    } catch (const ipc::IpcError& error) {
      err << "rfsmc: no planner service at '" << *server << "': "
          << error.what() << "\n";
      return 1;
    }
    if (!reply.has_value()) {
      err << "rfsmc: stats request to '" << *server << "' timed out\n";
      return 1;
    }
    const service::StatsResponse stats =
        service::decodeStatsResponse(*reply);
    if (format == "json")
      renderStatsJson(stats, out);
    else if (format == "prometheus")
      renderStatsPrometheus(stats, out);
    else
      renderStatsTable(stats, out);
    if (!watch) return 0;
    out << "\n";
    out.flush();
    std::this_thread::sleep_for(interval);
  }
}

int cmdTraceDump(const std::vector<std::string>& args, std::ostream& out,
                 std::ostream& err) {
  const auto server = option(args, "--server");
  const auto outFile = option(args, "--out");
  if (!server.has_value() || !outFile.has_value())
    throw CliError("usage: rfsmc trace-dump --server ENDPOINT --out FILE");
  const auto steadyNs = [] {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  };
  service::TraceDumpRequest request;
  const std::int64_t t0 = steadyNs();
  request.clientSteadyNs = t0;
  std::optional<std::string> reply;
  try {
    reply = service::exchangeEndpoint(
        ipc::parseEndpoint(*server),
        service::encodeTraceDumpRequest(request), /*timeoutMs=*/10000);
  } catch (const ipc::IpcError& error) {
    err << "rfsmc: no planner service at '" << *server << "': "
        << error.what() << "\n";
    return 1;
  }
  const std::int64_t t1 = steadyNs();
  if (!reply.has_value()) {
    err << "rfsmc: trace dump request to '" << *server << "' timed out\n";
    return 1;
  }
  const service::TraceDumpResponse response =
      service::decodeTraceDumpResponse(*reply);
  // Clock-offset handshake: the server stamped its CLOCK_MONOTONIC when it
  // built the dump; the midpoint of [t0, t1] is our best estimate of the
  // same instant locally.  Same-host offsets come out ~0 (shared clock).
  const std::int64_t offsetNs = response.serverSteadyNs - (t0 + t1) / 2;
  std::string dump = response.traceJson;
  const std::size_t brace = dump.find('{');
  if (brace == std::string::npos) {
    err << "rfsmc: malformed trace dump from '" << *server << "'\n";
    return 1;
  }
  dump.insert(brace + 1,
              "\"clockOffsetNs\": " + std::to_string(offsetNs) + ", ");
  writeFile(*outFile, dump);
  err << "rfsmc: trace dump from '" << *server << "' written to '"
      << *outFile << "' (clock offset " << offsetNs << " ns)\n";
  (void)out;
  return 0;
}

int cmdSamples(const std::vector<std::string>& args, std::ostream& out) {
  if (args.empty()) {
    for (const auto& name : sampleNames()) out << name << "\n";
    return 0;
  }
  out << sampleKiss2(args[0]);
  return 0;
}

int cmdHelp(std::ostream& out) {
  out << "rfsmc - (self-)reconfigurable FSM toolkit\n"
         "usage: rfsmc <command> [args]\n\n"
         "commands:\n"
         "  info <machine>                machine statistics\n"
         "  dot <machine>                 Graphviz graph\n"
         "  convert <machine> --to FMT    json|kiss2\n"
         "  migrate <from> <to>           plan + validate a migration\n"
         "          [--planner jsr|greedy|ea|exact|2opt|anneal|optimal]\n"
         "          [--seed N] [--jobs N] [--table] [--optimize]\n"
         "          [--program-out FILE]  save the program (rfsm-program v1)\n"
         "  inject <from> <to>            migrate under injected faults\n"
         "          [--planner P] [--seed N] [--flips N] [--abort-step K]\n"
         "          [--retries N] [--program FILE] [--journal-out FILE]\n"
         "          exit 0 = verified, 3 = clean rollback\n"
         "  resume <from> <to> --journal FILE   finish a crashed migration\n"
         "  vhdl <from> <to>              emit the Fig. 5 VHDL entity\n"
         "  testbench <from> <to>         emit a self-checking testbench\n"
         "  synth <machine>               two-level logic estimate\n"
         "  plan --random S,I,D,N         plan a batch of seeded random\n"
         "          [--planner jsr|greedy|ea] [--seed N] [--jobs N]\n"
         "          [--deadline-ms MS]    migrations (Table 2 axis)\n"
         "          [--server SOCKET]     via an rfsmd (degrades to local\n"
         "                                planning when unavailable)\n"
         "          [--endpoint E]...     shard across replicated rfsmds\n"
         "                                (unix:/path or tcp:host:port;\n"
         "                                repeatable, or RFSM_ENDPOINTS)\n"
         "          [--hedge-ms MS]       hedge tail shards to a twin\n"
         "          [--quorum K]          byte-compare sampled shards on K\n"
         "                                endpoints, quarantine liars\n"
         "          [--shard-size N]      instances per fabric shard\n"
         "          [--plan-cache N]      memoize plan results, N entries\n"
         "                                (0 = off, the default; overrides\n"
         "                                RFSM_PLAN_CACHE)\n"
         "          [--probe]             health-check the rfsmd\n"
         "          exit 0 = planned, 4 = deadline exceeded\n"
         "  session stream                stream mutations into a resident\n"
         "          (--server E | --local) session on an rfsmd (--local =\n"
         "          --tenant T --name N     the in-process reference run)\n"
         "          --mutations M [--random S,I,O] [--seed N] [--planner P]\n"
         "          [--priority P] [--weight W] [--deltas D]\n"
         "          [--new-states K] [--defer-every E] [--mutation-seed B]\n"
         "          [--resume] [--close] [--retry-for-ms MS]\n"
         "          exit 0 = streamed, 2 = not admitted in time\n"
         "          (repeat --server for failover endpoints: the stream\n"
         "          rotates to a promoted standby when the primary dies)\n"
         "  session status                role (primary|standby), fencing\n"
         "          --server E --tenant T   epoch, and applied frontier of\n"
         "          --name N                one session\n"
         "  stats --server ENDPOINT       live daemon telemetry (workers,\n"
         "          [--watch]             breakers, plan cache, per-tenant\n"
         "          [--interval-ms MS]    session gauges, scheduler vtimes)\n"
         "          [--format table|json|prometheus]\n"
         "  trace-dump --server ENDPOINT  fetch the daemon's span ring as\n"
         "          --out FILE            Chrome-trace JSON (stitch multi-\n"
         "                                process dumps with\n"
         "                                tools/trace_stitch.py)\n"
         "  chain <m1> <m2> [...]         plan a release train + rollbacks\n"
         "  equiv <a> <b> [--symbolic]    behavioural equivalence check\n"
         "  report <from> <to>            one-page migration report\n"
         "  samples [name]                list / dump bundled samples\n\n"
         "machines: path.json | path.kiss2 | sample:<name>\n"
         "global:   --trace-out FILE      write a Chrome trace-event /\n"
         "                                Perfetto JSON profile of the run\n"
         "          (RFSM_TRACE=1 [RFSM_TRACE_OUT=FILE] does the same via\n"
         "          the environment)\n"
         "          --chaos SEED:PROFILE  arm deterministic disk/network\n"
         "                                fault injection (off|disk-light|\n"
         "                                disk-storm|net-light|net-storm|\n"
         "                                repl-light|repl-storm|full;\n"
         "                                RFSM_CHAOS=SEED:PROFILE does\n"
         "                                the same via the environment)\n";
  return 0;
}

}  // namespace

int runCli(const std::vector<std::string>& args, std::ostream& out,
           std::ostream& err) {
  if (trace::processName().empty()) trace::setProcessName("rfsmc");
  if (args.empty() || args[0] == "help" || args[0] == "--help")
    return cmdHelp(out);
  const std::vector<std::string> rest(args.begin() + 1, args.end());
  // --trace-out works on every command: enable tracing for the whole run,
  // dump the buffer when the command finished (even on a failure exit, so
  // the trace shows what led up to the error).
  const std::optional<std::string> traceOut = option(rest, "--trace-out");
  const bool traceWasEnabled = trace::enabled();
  if (traceOut.has_value()) trace::setEnabled(true);
  // --chaos likewise works on every command: the fault plane is armed for
  // the whole run (RFSM_CHAOS provides the same through the environment,
  // which is how forked daemons and workers inherit it).
  bool chaosArmedByFlag = false;
  try {
    if (const auto chaosSpec = option(rest, "--chaos")) {
      chaos::plane().armFromSpec(*chaosSpec);
      chaosArmedByFlag = true;
      err << "rfsmc: chaos armed (seed " << chaos::plane().seed()
          << ", profile '" << chaos::plane().profile().name << "')\n";
    } else if (chaos::plane().armFromEnv()) {
      err << "rfsmc: chaos armed (seed " << chaos::plane().seed()
          << ", profile '" << chaos::plane().profile().name << "')\n";
    }
  } catch (const Error& error) {
    err << "rfsmc: " << error.what() << "\n";
    return 64;
  }
  int code = 1;
  try {
    if (args[0] == "info") code = cmdInfo(rest, out);
    else if (args[0] == "dot") code = cmdDot(rest, out);
    else if (args[0] == "convert") code = cmdConvert(rest, out);
    else if (args[0] == "migrate") code = cmdMigrate(rest, out);
    else if (args[0] == "inject") code = cmdInject(rest, out);
    else if (args[0] == "resume") code = cmdResume(rest, out);
    else if (args[0] == "vhdl") code = cmdVhdl(rest, out);
    else if (args[0] == "testbench") code = cmdTestbench(rest, out);
    else if (args[0] == "synth") code = cmdSynth(rest, out);
    else if (args[0] == "chain") code = cmdChain(rest, out);
    else if (args[0] == "equiv") code = cmdEquiv(rest, out);
    else if (args[0] == "report") code = cmdReport(rest, out);
    else if (args[0] == "samples") code = cmdSamples(rest, out);
    else if (args[0] == "plan") code = cmdPlan(rest, out, err);
    else if (args[0] == "stats") code = cmdStats(rest, out, err);
    else if (args[0] == "trace-dump") code = cmdTraceDump(rest, out, err);
    else if (args[0] == "session") code = cmdSession(rest, out, err);
    else {
      err << "rfsmc: unknown command '" << args[0] << "' (try rfsmc help)\n";
      code = 64;
    }
  } catch (const Error& error) {
    err << "rfsmc: " << error.what() << "\n";
    code = 1;
  } catch (const std::exception& error) {
    // E.g. std::stoi on a non-numeric --seed/--jobs value; a malformed
    // argument must not abort the process.
    err << "rfsmc: invalid argument (" << error.what() << ")\n";
    code = 1;
  }
  if (traceOut.has_value()) {
    if (!trace::writeFile(*traceOut))
      err << "rfsmc: cannot write trace to '" << *traceOut << "'\n";
    // Restore for embedders (tests drive runCli repeatedly in-process);
    // an environment-enabled tracer stays on.
    if (!traceWasEnabled) trace::setEnabled(false);
  }
  // Same restore rule as tracing: a flag-armed plane is scoped to this
  // command; an environment-armed one stays on for the process.
  if (chaosArmedByFlag) chaos::plane().disarm();
  return code;
}

}  // namespace rfsm::cli
