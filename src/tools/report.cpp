#include "tools/report.hpp"

#include <sstream>

#include "core/apply.hpp"
#include "core/bounds.hpp"
#include "core/jsr.hpp"
#include "core/optimal.hpp"
#include "core/partial.hpp"
#include "core/peephole.hpp"
#include "core/planners.hpp"
#include "core/sequence.hpp"
#include "rtl/context_swap.hpp"
#include "rtl/resources.hpp"
#include "util/metrics.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace rfsm {

std::string buildMigrationReport(const MigrationContext& context,
                                 const ReportOptions& options) {
  // The telemetry section at the bottom covers exactly this report's work.
  metrics::resetAll();
  std::ostringstream os;
  os << "# Migration report: " << context.sourceMachine().name() << " -> "
     << context.targetMachine().name() << "\n\n";
  os << "superset alphabets: |S| = " << context.states().size()
     << ", |I| = " << context.inputs().size()
     << ", |O| = " << context.outputs().size() << "\n";

  const DeltaClassification classes = classifyDeltas(context);
  os << "delta transitions: " << context.deltaCount() << " ("
     << classes.outputOnly << " output-only, " << classes.transitionOnly
     << " transition-only, " << classes.both << " both, "
     << classes.structural << " structural)\n";
  os << "bounds: lower " << programLowerBound(context) << " (Thm. 4.3), JSR "
     << jsrUpperBound(context) << " (Thm. 4.2)\n\n";

  Table table({"planner", "|Z|", "rewrites", "temporaries", "resets",
               "valid"});
  auto addRow = [&](const std::string& name,
                    const ReconfigurationProgram& z) {
    const ValidationResult verdict = validateProgram(context, z);
    table.addRow({name, std::to_string(z.length()),
                  std::to_string(z.rewriteCount()),
                  std::to_string(z.temporaryCount()),
                  std::to_string(z.resetCount()),
                  verdict.valid ? "yes" : "NO"});
  };
  const ReconfigurationProgram jsr = planJsr(context);
  addRow("JSR", jsr);
  addRow("JSR + peephole", optimizeProgram(context, jsr).program);
  addRow("greedy", planGreedy(context));
  if (options.runEvolutionary) {
    Rng rng(options.seed);
    ThreadPool pool(options.jobs);
    addRow("EA", planEvolutionary(context, EvolutionConfig{}, rng, {}, &pool)
                     .program);
  }
  if (isOutputOnlyMigration(context))
    if (const auto partial = planOutputOnlyOptimal(context))
      addRow("output-only optimal", *partial);
  if (options.runOptimal)
    if (const auto best = planOptimalSearch(context))
      addRow("optimal (search)", *best);
  os << table.toMarkdown() << "\n";

  const auto sequence = sequenceFromProgram(jsr);
  const auto downtime = rtl::compareDowntime(context, jsr);
  os << "downtime: gradual (JSR) " << downtime.gradualCycles
     << " cycles vs context swap " << downtime.contextSwapCycles
     << " vs full bitstream " << downtime.bitstreamCycles << "\n";
  const auto estimate = rtl::estimateResources(context, sequence);
  os << "resources: " << estimate.blockRams << " BlockRAM(s), "
     << estimate.luts << " LUTs, " << estimate.flipFlops
     << " FFs; fits XCV300: " << (estimate.fitsXcv300 ? "yes" : "no")
     << "\n";

  const int jobs =
      options.jobs <= 0 ? ThreadPool::hardwareJobs() : options.jobs;
  metrics::Snapshot telemetry = metrics::snapshot();
  if (!options.includeTimings) {
    // Histograms are wall-clock derived, like timers: both would break the
    // bit-identical-artifact contract of deterministic reports.
    telemetry.timers.clear();
    telemetry.histograms.clear();
  }
  if (!telemetry.empty()) {
    os << "\n## Planner telemetry (jobs = " << jobs << ")\n\n";
    switch (options.telemetryFormat) {
      case TelemetryFormat::kMarkdown:
        os << metrics::toMarkdown(telemetry);
        break;
      case TelemetryFormat::kCsv:
        os << "```csv\n" << metrics::toCsv(telemetry) << "```\n";
        break;
      case TelemetryFormat::kJson:
        os << "```json\n" << metrics::toJson(telemetry) << "```\n";
        break;
    }
  }
  return os.str();
}

}  // namespace rfsm
