// The rfsmc command-line front end, as a testable library.
//
// Subcommands:
//   info <machine>                     machine statistics
//   dot <machine>                      Graphviz state-transition graph
//   convert <machine> --to json|kiss2  format conversion
//   migrate <from> <to> [--planner jsr|greedy|ea|exact|2opt|anneal]
//           [--seed N] [--table]       plan + validate a migration
//   vhdl <from> <to>                   emit the Fig. 5 VHDL entity
//   testbench <from> <to>              emit a self-checking VHDL testbench
//   synth <machine>                    two-level logic estimate
//   chain <m1> <m2> [...]              plan a release train with rollbacks
//   samples [name]                     list bundled samples / dump one
//
// Machine arguments are file paths (.json / .kiss2) or `sample:<name>`
// pseudo-paths resolving to the bundled sample set; the latter keeps the
// CLI unit-testable without filesystem fixtures.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace rfsm::cli {

/// Runs one CLI invocation (args excludes argv[0]).  Writes results to
/// `out`, diagnostics to `err`; returns the process exit code.
int runCli(const std::vector<std::string>& args, std::ostream& out,
           std::ostream& err);

}  // namespace rfsm::cli
