// A bounded cache with an explicit admission/eviction policy: segmented
// LRU (SLRU) plus a ghost list.
//
// Why not FIFO or plain LRU: the planner's caches see two very different
// access patterns at once — a hot working set of repeated (spec, index)
// keys (retried, hedged, quorum-duplicated shards of live batches) and
// long one-shot scans (a sweep touching thousands of instances exactly
// once).  FIFO lets the scan flush the working set; plain LRU does too.
// SLRU keeps them apart:
//
//  * New keys enter the *probation* segment.  A key touched a second time
//    while on probation is promoted to the *protected* segment; a
//    one-hit-wonder churns through probation and is evicted without ever
//    displacing proven entries.
//  * The protected segment is LRU-bounded at ~4/5 of capacity; overflow
//    demotes its LRU tail back to probation (a second chance) rather than
//    evicting outright.
//  * Eviction takes the probation LRU tail first; protected entries are
//    touched only when probation is empty.
//  * Evicted keys are remembered in a bounded *ghost* list (keys only, no
//    values).  Re-inserting a ghost key admits it straight to the
//    protected segment: "was evicted but came back" is exactly the signal
//    that the capacity, not the access pattern, was at fault.
//
// Values are stored by value and returned by copy; the cache is internally
// synchronized (one mutex — these caches sit above work that costs
// milliseconds, not nanoseconds).  Counting is the caller's business:
// get() misses return nullopt, put() reports evictions/readmissions, so
// callers feed whatever metrics registry they like without this header
// depending on one.
#pragma once

#include <cstddef>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

namespace rfsm {

template <typename Value>
class SlruCache {
 public:
  explicit SlruCache(std::size_t capacity) { configure(capacity); }

  SlruCache(const SlruCache&) = delete;
  SlruCache& operator=(const SlruCache&) = delete;

  /// Outcome of one put(): how many entries were evicted to make room, and
  /// whether the key was readmitted from the ghost list.
  struct PutOutcome {
    std::size_t evicted = 0;
    bool readmitted = false;
  };

  /// Value for `key`, touching it (probation hit promotes to protected,
  /// protected hit refreshes recency); nullopt on miss.
  std::optional<Value> get(const std::string& key) {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(key);
    if (it == index_.end()) return std::nullopt;
    touch(it->second);
    return it->second->value;
  }

  /// Inserts or refreshes `key`.  A known key updates its value and counts
  /// as a touch; a ghost key is admitted straight to the protected segment.
  PutOutcome put(const std::string& key, Value value) {
    std::lock_guard<std::mutex> lock(mutex_);
    PutOutcome outcome;
    if (capacity_ == 0) return outcome;
    const auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->value = std::move(value);
      touch(it->second);
      return outcome;
    }
    const auto ghost = ghostIndex_.find(key);
    if (ghost != ghostIndex_.end()) {
      ghostList_.erase(ghost->second);
      ghostIndex_.erase(ghost);
      outcome.readmitted = true;
    }
    if (outcome.readmitted && protectedCapacity_ > 0) {
      protected_.push_front(Entry{key, std::move(value), Segment::kProtected});
      index_.emplace(key, protected_.begin());
      demoteOverflow();
    } else {
      probation_.push_front(Entry{key, std::move(value), Segment::kProbation});
      index_.emplace(key, probation_.begin());
    }
    outcome.evicted = evictOverflow();
    return outcome;
  }

  /// Drops `key` from the cache *and* the ghost list (quarantine: the entry
  /// must not be fast-readmitted on the strength of its tainted history).
  bool erase(const std::string& key) {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto ghost = ghostIndex_.find(key);
    if (ghost != ghostIndex_.end()) {
      ghostList_.erase(ghost->second);
      ghostIndex_.erase(ghost);
    }
    const auto it = index_.find(key);
    if (it == index_.end()) return false;
    listOf(it->second->segment).erase(it->second);
    index_.erase(it);
    return true;
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    probation_.clear();
    protected_.clear();
    index_.clear();
    ghostList_.clear();
    ghostIndex_.clear();
  }

  /// Rebounds the cache; overflow is evicted immediately (returned, so the
  /// caller can count it).  Capacity 0 empties the cache and makes every
  /// subsequent put a no-op.
  std::size_t setCapacity(std::size_t capacity) {
    std::lock_guard<std::mutex> lock(mutex_);
    configure(capacity);
    demoteOverflow();
    const std::size_t evicted = evictOverflow();
    while (ghostList_.size() > ghostCapacity_) {
      ghostIndex_.erase(ghostList_.back());
      ghostList_.pop_back();
    }
    return evicted;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return index_.size();
  }

  std::size_t capacity() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return capacity_;
  }

 private:
  enum class Segment { kProbation, kProtected };
  struct Entry {
    std::string key;
    Value value;
    Segment segment;
  };
  using List = std::list<Entry>;

  void configure(std::size_t capacity) {
    capacity_ = capacity;
    // ~1/5 probation, ~4/5 protected; with capacity 1 everything is
    // probation (there is nothing to protect a segment *from*).
    const std::size_t probation =
        capacity >= 2 ? std::max<std::size_t>(1, capacity / 5) : capacity;
    protectedCapacity_ = capacity - probation;
    ghostCapacity_ = capacity;
  }

  List& listOf(Segment segment) {
    return segment == Segment::kProtected ? protected_ : probation_;
  }

  /// Recency update under the policy; caller holds the mutex.
  void touch(typename List::iterator it) {
    if (it->segment == Segment::kProtected) {
      protected_.splice(protected_.begin(), protected_, it);
      return;
    }
    if (protectedCapacity_ == 0) {
      probation_.splice(probation_.begin(), probation_, it);
      return;
    }
    it->segment = Segment::kProtected;
    protected_.splice(protected_.begin(), probation_, it);
    demoteOverflow();
  }

  /// Protected overflow demotes LRU tails back to probation (second
  /// chance), never evicts directly.
  void demoteOverflow() {
    while (protected_.size() > protectedCapacity_) {
      const auto tail = std::prev(protected_.end());
      tail->segment = Segment::kProbation;
      probation_.splice(probation_.begin(), protected_, tail);
    }
  }

  /// Evicts (probation LRU first) until within capacity; evicted keys are
  /// remembered as ghosts.
  std::size_t evictOverflow() {
    std::size_t evicted = 0;
    while (probation_.size() + protected_.size() > capacity_) {
      List& victims = probation_.empty() ? protected_ : probation_;
      const auto tail = std::prev(victims.end());
      rememberGhost(tail->key);
      index_.erase(tail->key);
      victims.erase(tail);
      ++evicted;
    }
    return evicted;
  }

  void rememberGhost(const std::string& key) {
    if (ghostCapacity_ == 0) return;
    if (ghostIndex_.count(key) != 0) return;
    ghostList_.push_front(key);
    ghostIndex_.emplace(key, ghostList_.begin());
    while (ghostList_.size() > ghostCapacity_) {
      ghostIndex_.erase(ghostList_.back());
      ghostList_.pop_back();
    }
  }

  mutable std::mutex mutex_;
  std::size_t capacity_ = 0;
  std::size_t protectedCapacity_ = 0;
  std::size_t ghostCapacity_ = 0;
  List probation_;
  List protected_;
  std::unordered_map<std::string, typename List::iterator> index_;
  std::list<std::string> ghostList_;
  std::unordered_map<std::string, std::list<std::string>::iterator>
      ghostIndex_;
};

}  // namespace rfsm
