#include "util/histogram.hpp"

#include <atomic>
#include <bit>
#include <cmath>

namespace rfsm::metrics {
namespace {

std::atomic_ref<std::uint64_t> atomicRef(std::uint64_t& value) {
  return std::atomic_ref<std::uint64_t>(value);
}

std::uint64_t load(const std::uint64_t& value) {
  return std::atomic_ref<std::uint64_t>(const_cast<std::uint64_t&>(value))
      .load(std::memory_order_relaxed);
}

}  // namespace

int Histogram::bucketOf(std::uint64_t value) {
  if (value < kSubBuckets) return static_cast<int>(value);
  const int msb = 63 - std::countl_zero(value);
  return (msb - 1) * kSubBuckets +
         static_cast<int>((value >> (msb - 2)) & (kSubBuckets - 1));
}

std::uint64_t Histogram::bucketLowerBound(int bucket) {
  if (bucket < kSubBuckets) return static_cast<std::uint64_t>(bucket);
  const int octave = bucket / kSubBuckets;
  const int sub = bucket % kSubBuckets;
  return static_cast<std::uint64_t>(kSubBuckets + sub) << (octave - 1);
}

void Histogram::record(std::uint64_t value) {
  atomicRef(counts_[static_cast<std::size_t>(bucketOf(value))])
      .fetch_add(1, std::memory_order_relaxed);
  atomicRef(count_).fetch_add(1, std::memory_order_relaxed);
  atomicRef(sum_).fetch_add(value, std::memory_order_relaxed);
  std::uint64_t seen = load(max_);
  while (value > seen &&
         !atomicRef(max_).compare_exchange_weak(seen, value,
                                                std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::count() const { return load(count_); }
std::uint64_t Histogram::sum() const { return load(sum_); }
std::uint64_t Histogram::max() const { return load(max_); }

std::uint64_t Histogram::quantile(double q) const {
  // Work from a point-in-time copy; concurrent records may straddle the
  // copy, so the total is derived from the copied buckets themselves.
  std::uint64_t counts[kBucketCount];
  std::uint64_t total = 0;
  for (int b = 0; b < kBucketCount; ++b) {
    counts[b] = load(counts_[b]);
    total += counts[b];
  }
  if (total == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  std::uint64_t target =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total)));
  if (target == 0) target = 1;

  std::uint64_t cumulative = 0;
  for (int b = 0; b < kBucketCount; ++b) {
    cumulative += counts[b];
    if (cumulative >= target) {
      // Conservative estimate: the bucket's inclusive upper edge, never
      // beyond the exact maximum.
      const std::uint64_t upper = b + 1 < kBucketCount
                                      ? bucketLowerBound(b + 1) - 1
                                      : ~std::uint64_t{0};
      const std::uint64_t seenMax = max();
      return upper < seenMax ? upper : seenMax;
    }
  }
  return max();
}

void Histogram::reset() {
  for (auto& c : counts_) atomicRef(c).store(0, std::memory_order_relaxed);
  atomicRef(count_).store(0, std::memory_order_relaxed);
  atomicRef(sum_).store(0, std::memory_order_relaxed);
  atomicRef(max_).store(0, std::memory_order_relaxed);
}

}  // namespace rfsm::metrics
