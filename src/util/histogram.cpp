#include "util/histogram.hpp"

#include <atomic>
#include <bit>
#include <cmath>

namespace rfsm::metrics {
namespace {

std::atomic_ref<std::uint64_t> atomicRef(std::uint64_t& value) {
  return std::atomic_ref<std::uint64_t>(value);
}

std::uint64_t load(const std::uint64_t& value) {
  return std::atomic_ref<std::uint64_t>(const_cast<std::uint64_t&>(value))
      .load(std::memory_order_relaxed);
}

}  // namespace

int Histogram::bucketOf(std::uint64_t value) {
  if (value < kSubBuckets) return static_cast<int>(value);
  const int msb = 63 - std::countl_zero(value);
  return (msb - 1) * kSubBuckets +
         static_cast<int>((value >> (msb - 2)) & (kSubBuckets - 1));
}

std::uint64_t Histogram::bucketLowerBound(int bucket) {
  if (bucket < kSubBuckets) return static_cast<std::uint64_t>(bucket);
  const int octave = bucket / kSubBuckets;
  const int sub = bucket % kSubBuckets;
  return static_cast<std::uint64_t>(kSubBuckets + sub) << (octave - 1);
}

void Histogram::record(std::uint64_t value) {
  atomicRef(counts_[static_cast<std::size_t>(bucketOf(value))])
      .fetch_add(1, std::memory_order_relaxed);
  atomicRef(count_).fetch_add(1, std::memory_order_relaxed);
  atomicRef(sum_).fetch_add(value, std::memory_order_relaxed);
  std::uint64_t seen = load(max_);
  while (value > seen &&
         !atomicRef(max_).compare_exchange_weak(seen, value,
                                                std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::count() const { return load(count_); }
std::uint64_t Histogram::sum() const { return load(sum_); }
std::uint64_t Histogram::max() const { return load(max_); }

std::uint64_t Histogram::quantile(double q) const {
  // Work from a point-in-time copy; concurrent records may straddle the
  // copy, so the total is derived from the copied buckets themselves.
  std::uint64_t counts[kBucketCount];
  std::uint64_t total = 0;
  for (int b = 0; b < kBucketCount; ++b) {
    counts[b] = load(counts_[b]);
    total += counts[b];
  }
  if (total == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  std::uint64_t target =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total)));
  if (target == 0) target = 1;

  std::uint64_t cumulative = 0;
  for (int b = 0; b < kBucketCount; ++b) {
    cumulative += counts[b];
    if (cumulative >= target) {
      // Conservative estimate: the bucket's inclusive upper edge, never
      // beyond the exact maximum.
      const std::uint64_t upper = b + 1 < kBucketCount
                                      ? bucketLowerBound(b + 1) - 1
                                      : ~std::uint64_t{0};
      const std::uint64_t seenMax = max();
      return upper < seenMax ? upper : seenMax;
    }
  }
  return max();
}

void Histogram::reset() {
  for (auto& c : counts_) atomicRef(c).store(0, std::memory_order_relaxed);
  atomicRef(count_).store(0, std::memory_order_relaxed);
  atomicRef(sum_).store(0, std::memory_order_relaxed);
  atomicRef(max_).store(0, std::memory_order_relaxed);
}

void Histogram::mergeFrom(const Histogram& other) {
  for (int b = 0; b < kBucketCount; ++b) {
    const std::uint64_t n = load(other.counts_[b]);
    if (n != 0)
      atomicRef(counts_[b]).fetch_add(n, std::memory_order_relaxed);
  }
  atomicRef(count_).fetch_add(load(other.count_),
                              std::memory_order_relaxed);
  atomicRef(sum_).fetch_add(load(other.sum_), std::memory_order_relaxed);
  const std::uint64_t otherMax = load(other.max_);
  std::uint64_t seen = load(max_);
  while (otherMax > seen &&
         !atomicRef(max_).compare_exchange_weak(seen, otherMax,
                                                std::memory_order_relaxed)) {
  }
}

// --- RollingHistogram ----------------------------------------------------

RollingHistogram::RollingHistogram(std::chrono::milliseconds window)
    : window_(window),
      sliceMs_(std::max<std::chrono::milliseconds::rep>(
                   1, window.count() / kSlices)) {}

std::uint64_t RollingHistogram::epochAt(Clock::time_point now) const {
  const auto sinceEpoch =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          now.time_since_epoch())
          .count();
  return static_cast<std::uint64_t>(sinceEpoch / sliceMs_.count()) + 1;
}

void RollingHistogram::rotate(std::size_t slice, std::uint64_t epoch) {
  Slice& s = slices_[slice];
  std::uint64_t seen = load(s.epoch);
  while (seen < epoch) {
    if (atomicRef(s.epoch).compare_exchange_weak(
            seen, epoch, std::memory_order_relaxed)) {
      // This thread won the rotation; clear the recycled slice.  A racing
      // record may land between the CAS and the reset and be lost — the
      // window is approximate at slice edges by contract.
      s.hist.reset();
      return;
    }
  }
}

void RollingHistogram::record(std::uint64_t value, Clock::time_point now) {
  const std::uint64_t epoch = epochAt(now);
  const std::size_t slice = static_cast<std::size_t>(epoch % kSlices);
  rotate(slice, epoch);
  slices_[slice].hist.record(value);
}

RollingHistogram::Stats RollingHistogram::stats(Clock::time_point now) const {
  const std::uint64_t epoch = epochAt(now);
  Histogram merged;
  for (int k = 0; k < kSlices; ++k) {
    const std::uint64_t sliceEpoch = load(slices_[k].epoch);
    if (sliceEpoch == 0 || sliceEpoch + kSlices <= epoch) continue;
    if (sliceEpoch > epoch) continue;  // torn read during rotation
    merged.mergeFrom(slices_[k].hist);
  }
  Stats stats;
  stats.count = merged.count();
  if (stats.count == 0) return stats;
  stats.p50 = merged.quantile(0.5);
  stats.p90 = merged.quantile(0.9);
  stats.p99 = merged.quantile(0.99);
  stats.max = merged.max();
  return stats;
}

std::uint64_t RollingHistogram::count(Clock::time_point now) const {
  return stats(now).count;
}

void RollingHistogram::reset() {
  for (auto& slice : slices_) {
    atomicRef(slice.epoch).store(0, std::memory_order_relaxed);
    slice.hist.reset();
  }
}

}  // namespace rfsm::metrics
