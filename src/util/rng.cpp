#include "util/rng.hpp"

#include "util/check.hpp"

namespace rfsm {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  RFSM_CHECK(bound > 0, "Rng::below requires a positive bound");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t draw = (*this)();
    if (draw >= threshold) return draw % bound;
  }
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  RFSM_CHECK(lo <= hi, "Rng::range requires lo <= hi");
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

Rng Rng::split() {
  Rng child(0);
  for (auto& word : child.state_) word = (*this)();
  return child;
}

Rng Rng::substream(std::uint64_t index) const {
  // Fold the whole parent state and the index into one splitmix seed; the
  // parent is untouched, so substream(k) is a pure function of (state, k).
  std::uint64_t s = index;
  for (const auto& word : state_) s = splitmix64(s) ^ word;
  Rng child(0);
  for (auto& word : child.state_) word = splitmix64(s);
  return child;
}

}  // namespace rfsm
