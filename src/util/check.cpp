#include "util/check.hpp"

#include <sstream>

namespace rfsm::detail {

void failCheck(const char* expr, const char* file, int line,
               const std::string& message) {
  std::ostringstream os;
  os << "contract violated: " << message << " [" << expr << " at " << file
     << ":" << line << "]";
  throw ContractError(os.str());
}

}  // namespace rfsm::detail
