#include "util/strings.hpp"

#include <cctype>
#include <iomanip>
#include <sstream>

namespace rfsm {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> splitWhitespace(std::string_view text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
    std::size_t start = i;
    while (i < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin])))
    ++begin;
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1])))
    --end;
  return std::string(text.substr(begin, end - begin));
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool startsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string formatFixed(double value, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << value;
  return os.str();
}

}  // namespace rfsm
