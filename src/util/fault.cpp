#include "util/fault.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace rfsm::fault {

FaultInjector::FaultInjector(std::uint64_t seed) : rng_(seed) {}

FaultScenario FaultInjector::draw(const FaultModel& model,
                                  const FaultGeometry& geometry) {
  RFSM_CHECK(geometry.cellCount > 0, "fault geometry needs at least one cell");
  RFSM_CHECK(geometry.bitsPerCell > 0, "fault geometry needs a cell width");
  RFSM_CHECK(geometry.programLength >= 0, "negative program length");

  FaultScenario scenario;
  if (geometry.programLength > 0 && rng_.chance(model.abortProbability))
    scenario.abortAtStep = static_cast<int>(
        rng_.below(static_cast<std::uint64_t>(geometry.programLength)));

  // Flips land while the power is still on: in [0, lastStep], where
  // lastStep is the abort point (exclusive of the unexecuted tail) or the
  // program end (== programLength means "after completion").
  const int lastStep = scenario.abortAtStep.has_value()
                           ? *scenario.abortAtStep
                           : geometry.programLength;
  for (int slot = 0; slot < model.maxFlips; ++slot) {
    if (!rng_.chance(model.flipProbability)) continue;
    CellFault flip;
    const bool sticky = !geometry.stickyCells.empty() &&
                        rng_.chance(model.stickyProbability);
    if (sticky) {
      flip.cell = geometry.stickyCells[rng_.pickIndex(geometry.stickyCells)];
      flip.sticky = true;
    } else {
      flip.cell = static_cast<std::size_t>(
          rng_.below(static_cast<std::uint64_t>(geometry.cellCount)));
    }
    flip.bit = static_cast<int>(
        rng_.below(static_cast<std::uint64_t>(geometry.bitsPerCell)));
    flip.atStep = static_cast<int>(
        rng_.below(static_cast<std::uint64_t>(lastStep) + 1));
    scenario.flips.push_back(flip);
  }
  // Execution consumes flips in schedule order.
  std::stable_sort(scenario.flips.begin(), scenario.flips.end(),
                   [](const CellFault& a, const CellFault& b) {
                     return a.atStep < b.atStep;
                   });
  return scenario;
}

std::optional<FaultModel> modelByName(const std::string& name) {
  FaultModel model;
  if (name == "clean") {
    model.abortProbability = 0.0;
    model.flipProbability = 0.0;
    model.maxFlips = 0;
    return model;
  }
  if (name == "default") return model;
  if (name == "flip-storm") {
    model.abortProbability = 0.0;
    model.flipProbability = 1.0;
    model.maxFlips = 4;
    return model;
  }
  if (name == "abort-heavy") {
    model.abortProbability = 0.9;
    model.flipProbability = 0.1;
    model.maxFlips = 1;
    return model;
  }
  if (name == "stuck-at") {
    model.abortProbability = 0.1;
    model.flipProbability = 1.0;
    model.maxFlips = 2;
    model.stickyProbability = 0.9;
    return model;
  }
  return std::nullopt;
}

const std::vector<std::string>& modelNames() {
  static const std::vector<std::string> names = {
      "clean", "default", "flip-storm", "abort-heavy", "stuck-at"};
  return names;
}

std::optional<ServiceScenario> serviceScenarioByName(const std::string& name) {
  ServiceScenario scenario;
  scenario.name = name;
  if (name == "none") return scenario;
  if (name == "kill-first-shard") {
    scenario.kind = ServiceScenario::Kind::kKillWorker;
    scenario.afterShards = 0;
    return scenario;
  }
  if (name == "abort-mid-shard") {
    scenario.kind = ServiceScenario::Kind::kAbortWorker;
    return scenario;
  }
  if (name == "hang-worker") {
    scenario.kind = ServiceScenario::Kind::kHangWorker;
    scenario.hangMs = 10000;
    return scenario;
  }
  if (name == "pool-unhealthy") {
    scenario.kind = ServiceScenario::Kind::kUnhealthy;
    return scenario;
  }
  return std::nullopt;
}

const std::vector<std::string>& serviceScenarioNames() {
  static const std::vector<std::string> names = {
      "none", "kill-first-shard", "abort-mid-shard", "hang-worker",
      "pool-unhealthy"};
  return names;
}

}  // namespace rfsm::fault
