#include "util/ipc.hpp"

#include <array>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <thread>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include "util/chaos.hpp"
#include "util/metrics.hpp"

namespace rfsm::ipc {
namespace {

/// Poll slice: the longest a blocked read/accept goes without re-checking
/// its cancel token.  Bounds cancellation latency, not throughput.
constexpr int kPollSliceMs = 50;

std::string errnoString(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

/// Waits for readability; honours the cancel token.  Returns false on
/// timeout/cancel, true when `fd` is readable (or hung up — the subsequent
/// read reports EOF).
bool pollReadable(int fd, const CancelToken* cancel) {
  for (;;) {
    if (cancel != nullptr && cancel->expired()) return false;
    struct pollfd pfd = {fd, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, cancel == nullptr ? -1 : kPollSliceMs);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw IpcError(errnoString("poll"));
    }
    if (rc > 0) return true;
  }
}

/// Reads exactly `count` bytes.  Returns false on EOF at a byte boundary
/// *or mid-buffer* (a torn frame from a killed peer is an EOF, not an
/// error); nullopt-style timeout is signalled by throwing TimeoutTag.
struct TimeoutTag {};

bool readExact(int fd, void* buffer, std::size_t count,
               const CancelToken* cancel) {
  auto* out = static_cast<char*>(buffer);
  std::size_t done = 0;
  while (done < count) {
    if (!pollReadable(fd, cancel)) throw TimeoutTag{};
    const ssize_t n = ::read(fd, out + done, count - done);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      throw IpcError(errnoString("read"));
    }
    if (n == 0) return false;  // peer closed (possibly mid-frame)
    done += static_cast<std::size_t>(n);
  }
  return true;
}

void writeExact(int fd, const void* buffer, std::size_t count) {
  const auto* in = static_cast<const char*>(buffer);
  std::size_t done = 0;
  while (done < count) {
    const ssize_t n = ::write(fd, in + done, count - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw IpcError(errnoString("write"));
    }
    done += static_cast<std::size_t>(n);
  }
}

void setCloexec(int fd) { ::fcntl(fd, F_SETFD, FD_CLOEXEC); }

/// Injected stalls are a fixed, bounded delay: long enough to exercise the
/// poll-sliced deadline machinery, short enough that every caller's
/// timeout budget absorbs it.
constexpr int kChaosStallMs = 120;

std::uint32_t loadLe32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

void storeLe32(unsigned char* p, std::uint32_t value) {
  p[0] = static_cast<unsigned char>(value);
  p[1] = static_cast<unsigned char>(value >> 8);
  p[2] = static_cast<unsigned char>(value >> 16);
  p[3] = static_cast<unsigned char>(value >> 24);
}

}  // namespace

Fd& Fd::operator=(Fd&& other) noexcept {
  if (this != &other) {
    reset();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

int Fd::release() {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

void Fd::reset() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

void ignoreSigpipe() { ::signal(SIGPIPE, SIG_IGN); }

std::uint32_t crc32c(std::string_view bytes) {
  // Software CRC32C (Castagnoli, reflected polynomial 0x82f63b78) with a
  // lazily built 256-entry table; frames are small and rare relative to
  // planning work, so a table-per-byte loop is plenty.
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit)
        crc = (crc >> 1) ^ (0x82f63b78u & (~(crc & 1u) + 1u));
      t[i] = crc;
    }
    return t;
  }();
  std::uint32_t crc = 0xffffffffu;
  for (const char c : bytes)
    crc = (crc >> 8) ^ table[(crc ^ static_cast<unsigned char>(c)) & 0xffu];
  return crc ^ 0xffffffffu;
}

void writeFrame(int fd, std::string_view payload) {
  RFSM_CHECK(payload.size() <= kMaxFrameBytes, "frame too large");
  // The frame is assembled contiguously (header | payload | crc) so chaos
  // can corrupt or duplicate the exact bytes that would hit the wire.
  std::string frame;
  frame.resize(payload.size() + 8);
  auto* bytes = reinterpret_cast<unsigned char*>(frame.data());
  storeLe32(bytes, static_cast<std::uint32_t>(payload.size()));
  std::memcpy(bytes + 4, payload.data(), payload.size());
  storeLe32(bytes + 4 + payload.size(), crc32c(payload));

  if (chaos::plane().enabled()) {
    chaos::FaultPlane& plane = chaos::plane();
    switch (plane.onNetWrite()) {
      case chaos::FaultPlane::NetWriteFault::kNone:
        break;
      case chaos::FaultPlane::NetWriteFault::kReset:
        throw IpcError("write: injected connection reset (chaos)");
      case chaos::FaultPlane::NetWriteFault::kPartial: {
        // A prefix reaches the peer (torn frame on their side), then the
        // sender dies.  Never the whole frame: at most all-but-one byte.
        const std::uint64_t keep =
            plane.drawBelow(chaos::Site::kNetWrite, frame.size());
        writeExact(fd, frame.data(), static_cast<std::size_t>(keep));
        throw IpcError("write: injected partial write of " +
                       std::to_string(keep) + "/" +
                       std::to_string(frame.size()) + " bytes (chaos)");
      }
      case chaos::FaultPlane::NetWriteFault::kStall:
        std::this_thread::sleep_for(std::chrono::milliseconds(kChaosStallMs));
        break;
      case chaos::FaultPlane::NetWriteFault::kDuplicate:
        writeExact(fd, frame.data(), frame.size());
        break;  // falls through to the normal write: the frame ships twice
      case chaos::FaultPlane::NetWriteFault::kCorrupt: {
        // Flip one bit anywhere past the length header (payload or CRC
        // trailer).  Corrupting the length would desynchronize the stream
        // into a hang; the fuzzer covers that case off-wire instead.
        const std::uint64_t offset =
            4 + plane.drawBelow(chaos::Site::kNetWrite, frame.size() - 4);
        const std::uint64_t bit = plane.drawBelow(chaos::Site::kNetWrite, 8);
        frame[static_cast<std::size_t>(offset)] ^=
            static_cast<char>(1u << bit);
        break;
      }
    }
  }
  writeExact(fd, frame.data(), frame.size());
}

ReadStatus readFrame(int fd, std::string& payload,
                     const CancelToken* cancel) {
  if (chaos::plane().enabled()) {
    switch (chaos::plane().onNetRead()) {
      case chaos::FaultPlane::NetReadFault::kNone:
        break;
      case chaos::FaultPlane::NetReadFault::kStall:
        std::this_thread::sleep_for(std::chrono::milliseconds(kChaosStallMs));
        break;
      case chaos::FaultPlane::NetReadFault::kReset:
        throw IpcError("read: injected connection reset (chaos)");
    }
  }
  try {
    unsigned char header[4];
    if (!readExact(fd, header, sizeof header, cancel)) return ReadStatus::kEof;
    const std::uint32_t length = loadLe32(header);
    if (length > kMaxFrameBytes) {
      metrics::counter(metrics::kServiceFramesRejected).add();
      throw FrameError("frame length " + std::to_string(length) +
                       " exceeds the " + std::to_string(kMaxFrameBytes) +
                       "-byte cap (corrupt stream?)");
    }
    payload.resize(length);
    if (length > 0 && !readExact(fd, payload.data(), length, cancel))
      return ReadStatus::kEof;  // torn frame: the peer died mid-write
    unsigned char trailer[4];
    if (!readExact(fd, trailer, sizeof trailer, cancel))
      return ReadStatus::kEof;  // torn trailer: likewise
    const std::uint32_t expected = loadLe32(trailer);
    const std::uint32_t actual = crc32c(payload);
    if (expected != actual) {
      metrics::counter(metrics::kServiceFramesRejected).add();
      throw FrameError("frame CRC mismatch (wire " + std::to_string(expected) +
                       ", computed " + std::to_string(actual) + " over " +
                       std::to_string(length) + " bytes)");
    }
    return ReadStatus::kOk;
  } catch (TimeoutTag) {
    return ReadStatus::kTimeout;
  }
}

bool pendingInput(int fd) {
  struct pollfd pfd = {fd, POLLIN, 0};
  const int rc = ::poll(&pfd, 1, 0);
  return rc > 0 && (pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0;
}

void MessageWriter::u32(std::uint32_t value) {
  for (int k = 0; k < 4; ++k)
    buffer_.push_back(static_cast<char>(value >> (8 * k)));
}

void MessageWriter::u64(std::uint64_t value) {
  for (int k = 0; k < 8; ++k)
    buffer_.push_back(static_cast<char>(value >> (8 * k)));
}

void MessageWriter::i64(std::int64_t value) {
  u64(static_cast<std::uint64_t>(value));
}

void MessageWriter::str(std::string_view value) {
  RFSM_CHECK(value.size() <= kMaxFrameBytes, "string too large for message");
  u32(static_cast<std::uint32_t>(value.size()));
  buffer_.append(value.data(), value.size());
}

const unsigned char* MessageReader::need(std::size_t bytes) {
  if (payload_.size() - pos_ < bytes)
    throw IpcError("truncated message (wanted " + std::to_string(bytes) +
                   " bytes at offset " + std::to_string(pos_) + ", have " +
                   std::to_string(payload_.size() - pos_) + ")");
  const auto* p =
      reinterpret_cast<const unsigned char*>(payload_.data()) + pos_;
  pos_ += bytes;
  return p;
}

std::uint32_t MessageReader::u32() {
  const unsigned char* p = need(4);
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

std::uint64_t MessageReader::u64() {
  std::uint64_t value = 0;
  const unsigned char* p = need(8);
  for (int k = 7; k >= 0; --k) value = value << 8 | p[k];
  return value;
}

std::int64_t MessageReader::i64() {
  return static_cast<std::int64_t>(u64());
}

std::string MessageReader::str() {
  const std::uint32_t length = u32();
  if (length > kMaxFrameBytes) throw IpcError("corrupt string length");
  const unsigned char* p = need(length);
  return std::string(reinterpret_cast<const char*>(p), length);
}

void MessageReader::expectEnd() const {
  if (!atEnd())
    throw IpcError("trailing bytes in message (offset " +
                   std::to_string(pos_) + " of " +
                   std::to_string(payload_.size()) + ")");
}

Fd listenUnix(const std::string& path, int backlog) {
  struct sockaddr_un addr = {};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw IpcError("socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  Fd fd(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) throw IpcError(errnoString("socket"));
  ::unlink(path.c_str());  // stale socket from a previous run
  if (::bind(fd.get(), reinterpret_cast<struct sockaddr*>(&addr),
             sizeof addr) != 0)
    throw IpcError(errnoString(("bind '" + path + "'").c_str()));
  if (::listen(fd.get(), backlog) != 0)
    throw IpcError(errnoString("listen"));
  return fd;
}

std::optional<Fd> acceptUnix(int listenFd, const CancelToken* cancel) {
  if (!pollReadable(listenFd, cancel)) return std::nullopt;
  const int conn = ::accept(listenFd, nullptr, nullptr);
  if (conn < 0) {
    if (errno == EINTR || errno == EAGAIN || errno == ECONNABORTED)
      return std::nullopt;
    throw IpcError(errnoString("accept"));
  }
  setCloexec(conn);
  return Fd(conn);
}

Fd connectUnix(const std::string& path) {
  struct sockaddr_un addr = {};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw IpcError("socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  Fd fd(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) throw IpcError(errnoString("socket"));
  if (::connect(fd.get(), reinterpret_cast<struct sockaddr*>(&addr),
                sizeof addr) != 0)
    throw IpcError(errnoString(("connect '" + path + "'").c_str()));
  return fd;
}

Fd listenTcp(const std::string& host, std::uint16_t port, int backlog) {
  struct addrinfo hints = {};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE | AI_NUMERICSERV;
  struct addrinfo* list = nullptr;
  const int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                               std::to_string(port).c_str(), &hints, &list);
  if (rc != 0)
    throw IpcError("resolve '" + host + "': " + ::gai_strerror(rc));
  std::string lastError = "no addresses";
  for (struct addrinfo* ai = list; ai != nullptr; ai = ai->ai_next) {
    Fd fd(::socket(ai->ai_family, ai->ai_socktype | SOCK_CLOEXEC,
                   ai->ai_protocol));
    if (!fd.valid()) {
      lastError = errnoString("socket");
      continue;
    }
    const int one = 1;
    ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (::bind(fd.get(), ai->ai_addr, ai->ai_addrlen) != 0) {
      lastError = errnoString("bind");
      continue;
    }
    if (::listen(fd.get(), backlog) != 0) {
      lastError = errnoString("listen");
      continue;
    }
    ::freeaddrinfo(list);
    return fd;
  }
  ::freeaddrinfo(list);
  throw IpcError("listen tcp " + host + ":" + std::to_string(port) + ": " +
                 lastError);
}

Fd connectTcp(const std::string& host, std::uint16_t port,
              std::int64_t timeoutMs) {
  if (timeoutMs <= 0) timeoutMs = 5000;
  struct addrinfo hints = {};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_NUMERICSERV;
  struct addrinfo* list = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), std::to_string(port).c_str(),
                               &hints, &list);
  if (rc != 0)
    throw IpcError("resolve '" + host + "': " + ::gai_strerror(rc));
  std::string lastError = "no addresses";
  for (struct addrinfo* ai = list; ai != nullptr; ai = ai->ai_next) {
    Fd fd(::socket(ai->ai_family,
                   ai->ai_socktype | SOCK_CLOEXEC | SOCK_NONBLOCK,
                   ai->ai_protocol));
    if (!fd.valid()) {
      lastError = errnoString("socket");
      continue;
    }
    // Non-blocking connect bounded by poll: a dropped host costs the
    // timeout, never a wedged shard thread.
    if (::connect(fd.get(), ai->ai_addr, ai->ai_addrlen) != 0) {
      if (errno != EINPROGRESS) {
        lastError = errnoString("connect");
        continue;
      }
      struct pollfd pfd = {fd.get(), POLLOUT, 0};
      const int ready = ::poll(&pfd, 1, static_cast<int>(timeoutMs));
      if (ready <= 0) {
        lastError = ready == 0 ? "connect timed out" : errnoString("poll");
        continue;
      }
      int soError = 0;
      socklen_t len = sizeof soError;
      if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &soError, &len) != 0 ||
          soError != 0) {
        lastError =
            std::string("connect: ") + std::strerror(soError ? soError : errno);
        continue;
      }
    }
    // Back to blocking for the frame I/O (reads are poll-sliced anyway).
    const int flags = ::fcntl(fd.get(), F_GETFL);
    if (flags >= 0) ::fcntl(fd.get(), F_SETFL, flags & ~O_NONBLOCK);
    const int one = 1;
    ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    ::freeaddrinfo(list);
    return fd;
  }
  ::freeaddrinfo(list);
  throw IpcError("connect tcp " + host + ":" + std::to_string(port) + ": " +
                 lastError);
}

std::uint16_t localTcpPort(int fd) {
  struct sockaddr_storage addr = {};
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) != 0)
    throw IpcError(errnoString("getsockname"));
  if (addr.ss_family == AF_INET)
    return ntohs(reinterpret_cast<struct sockaddr_in*>(&addr)->sin_port);
  if (addr.ss_family == AF_INET6)
    return ntohs(reinterpret_cast<struct sockaddr_in6*>(&addr)->sin6_port);
  throw IpcError("getsockname: not a TCP socket");
}

std::string Endpoint::describe() const {
  if (kind == Kind::kUnix) return "unix:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

namespace {

/// Parses "host:port" (the last ':' splits, so IPv6 literals keep their
/// colons); throws IpcError on a malformed port.
Endpoint tcpEndpoint(const std::string& text) {
  const std::size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon + 1 == text.size())
    throw IpcError("malformed TCP endpoint '" + text + "' (want host:port)");
  Endpoint endpoint;
  endpoint.kind = Endpoint::Kind::kTcp;
  endpoint.host = text.substr(0, colon);
  if (endpoint.host.empty())
    throw IpcError("malformed TCP endpoint '" + text + "' (empty host)");
  const std::string portText = text.substr(colon + 1);
  long port = 0;
  try {
    std::size_t used = 0;
    port = std::stol(portText, &used);
    if (used != portText.size()) throw std::invalid_argument(portText);
  } catch (const std::exception&) {
    throw IpcError("malformed TCP endpoint '" + text + "' (bad port '" +
                   portText + "')");
  }
  if (port < 0 || port > 65535)
    throw IpcError("TCP port out of range in '" + text + "'");
  endpoint.port = static_cast<std::uint16_t>(port);
  return endpoint;
}

}  // namespace

Endpoint parseEndpoint(const std::string& text) {
  if (text.empty()) throw IpcError("empty endpoint");
  if (text.rfind("unix:", 0) == 0) {
    Endpoint endpoint;
    endpoint.path = text.substr(5);
    if (endpoint.path.empty())
      throw IpcError("malformed Unix endpoint '" + text + "' (empty path)");
    return endpoint;
  }
  if (text.rfind("tcp:", 0) == 0) return tcpEndpoint(text.substr(4));
  // Unprefixed: a path if it looks like one, host:port otherwise.
  if (text.find('/') != std::string::npos || text.find(':') == std::string::npos) {
    Endpoint endpoint;
    endpoint.path = text;
    return endpoint;
  }
  return tcpEndpoint(text);
}

std::vector<Endpoint> parseEndpointList(const std::string& text) {
  std::vector<Endpoint> endpoints;
  std::string item;
  const auto flush = [&] {
    if (!item.empty()) endpoints.push_back(parseEndpoint(item));
    item.clear();
  };
  for (const char c : text) {
    if (c == ',' || c == ' ' || c == '\t' || c == '\n')
      flush();
    else
      item.push_back(c);
  }
  flush();
  return endpoints;
}

Fd connectEndpoint(const Endpoint& endpoint, std::int64_t timeoutMs) {
  if (chaos::plane().enabled() && chaos::plane().onConnect())
    throw IpcError("connect " + endpoint.describe() +
                   ": injected connection reset (chaos)");
  if (endpoint.kind == Endpoint::Kind::kUnix)
    return connectUnix(endpoint.path);
  return connectTcp(endpoint.host, endpoint.port, timeoutMs);
}

Fd listenEndpoint(const Endpoint& endpoint, int backlog) {
  if (endpoint.kind == Endpoint::Kind::kUnix)
    return listenUnix(endpoint.path, backlog);
  return listenTcp(endpoint.host, endpoint.port, backlog);
}

ChildProcess spawnWorker(const std::vector<std::string>& command) {
  RFSM_CHECK(!command.empty(), "worker command must not be empty");
  int sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, sv) != 0)
    throw IpcError(errnoString("socketpair"));
  Fd parentEnd(sv[0]);
  Fd childEnd(sv[1]);

  std::vector<char*> argv;
  argv.reserve(command.size() + 1);
  for (const std::string& arg : command)
    argv.push_back(const_cast<char*>(arg.c_str()));
  argv.push_back(nullptr);

  const int pid = ::fork();
  if (pid < 0) throw IpcError(errnoString("fork"));
  if (pid == 0) {
    // Child: install the channel as kWorkerChannelFd and exec.  Only
    // async-signal-safe calls between fork and exec (the parent is
    // multi-threaded).
    if (childEnd.get() == kWorkerChannelFd) {
      ::fcntl(kWorkerChannelFd, F_SETFD, 0);  // clear CLOEXEC in place
    } else {
      if (::dup2(childEnd.get(), kWorkerChannelFd) < 0) ::_exit(127);
    }
    ::execv(argv[0], argv.data());
    ::_exit(127);  // exec failed; the parent sees EOF on the channel
  }
  return ChildProcess{pid, std::move(parentEnd)};
}

bool childAlive(int pid, int* status) {
  if (pid < 0) return false;
  int local = 0;
  const int rc = ::waitpid(pid, &local, WNOHANG);
  if (rc == 0) return true;
  if (status != nullptr) *status = local;
  return false;  // exited (rc == pid) or already reaped/invalid (rc < 0)
}

void killChild(int pid) {
  if (pid < 0) return;
  ::kill(pid, SIGKILL);
  ::waitpid(pid, nullptr, 0);
}

}  // namespace rfsm::ipc
