// A fixed-size thread pool with a blocking parallel-for.
//
// The batch planning engine parallelizes embarrassingly parallel units
// (EA fitness evaluations, independent migration instances).  Determinism
// is preserved by construction: parallelFor(count, body) promises only that
// body(i) runs exactly once for every i — callers must write results into
// per-index slots and draw randomness from per-index Rng streams, never
// from shared mutable state.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>

namespace rfsm {

/// Fixed-size pool of worker threads.  `jobs` is the total parallelism of a
/// parallelFor call, including the calling thread: a pool with jobs == 4
/// spawns 3 workers.  jobs <= 0 selects one job per hardware thread.
/// Workers carry OS thread names (rfsm-worker-N), so traces, TSan reports,
/// and gdb show which pool thread ran what.
///
/// A pool with jobs == 1 spawns no threads and runs everything inline, so
/// serial and parallel callers share one code path.
class ThreadPool {
 public:
  explicit ThreadPool(int jobs = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism (worker threads + the calling thread).
  int jobs() const;

  /// Runs body(0), body(1), ..., body(count - 1), each exactly once, and
  /// returns when all of them finished.  The calling thread participates.
  /// Indices are claimed dynamically; do not rely on execution order.
  /// The first exception thrown by any body is rethrown to the caller after
  /// the whole batch drained.  Re-entrant calls from inside a body run
  /// inline on the calling worker (no deadlock, no extra parallelism).
  void parallelFor(std::size_t count,
                   const std::function<void(std::size_t)>& body);

  /// One job per hardware thread (>= 1 even when the runtime reports 0).
  static int hardwareJobs();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Convenience wrapper: serial loop when `pool` is null, pooled otherwise.
void parallelFor(ThreadPool* pool, std::size_t count,
                 const std::function<void(std::size_t)>& body);

}  // namespace rfsm
