// Per-tenant isolation primitives for the session layer: token-bucket
// admission control and priority-classed weighted-fair scheduling.
//
// Both are plain data structures — no threads, no clocks of their own —
// so every policy decision is unit-testable deterministically.  The
// SessionService wraps them in its own mutex/condvar and feeds the bucket
// explicit time points.
//
// Fairness affects only *when* a session's work runs, never what it
// computes: the planned bytes are a pure function of the request sequence
// (service/session.hpp), so reordering across sessions is invisible in
// transcripts.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace rfsm {

/// Token-bucket rate limiter: `rate` tokens/second refill up to `burst`
/// capacity; a request takes one token or is rejected with a retry hint.
/// rate <= 0 means unlimited (every tryTake succeeds).
class TokenBucket {
 public:
  using Clock = std::chrono::steady_clock;

  TokenBucket() = default;
  TokenBucket(double ratePerSec, double burst);

  /// Takes `cost` tokens if available at `now`; false = rejected.
  bool tryTake(double cost, Clock::time_point now);

  /// Milliseconds until `cost` tokens will have refilled (0 when they are
  /// already available) — the RESOURCE_EXHAUSTED retry hint.
  std::int64_t msUntil(double cost, Clock::time_point now) const;

  /// Tokens that would be available at `now` (non-mutating projection, for
  /// the live stats plane).  Reports `burst` when the bucket is unlimited.
  double tokensAt(Clock::time_point now) const;

  double rate() const { return rate_; }
  double burst() const { return burst_; }

 private:
  void refill(Clock::time_point now);

  double rate_ = 0.0;
  double burst_ = 0.0;
  double tokens_ = 0.0;
  Clock::time_point last_{};
};

/// Weighted-fair queueing across flows (sessions), with strict priority
/// classes layered on top:
///
///  * a lower `priority` number always runs before a higher one;
///  * within a class, backlogged flows share capacity in proportion to
///    their weights (start-time fair queueing: each flow carries a virtual
///    time that advances by cost/weight per item it runs; next() picks the
///    smallest);
///  * items of one flow run strictly FIFO, at most one in flight — a
///    session's mutations must apply in sequence order.
///
/// A flow that idles does not bank credit: on re-arrival its virtual time
/// is bumped to the scheduler's current virtual time.
class FairScheduler {
 public:
  struct Item {
    std::function<void()> run;
    double cost = 1.0;
  };

  /// Appends an item to `flow`'s queue, creating the flow (with the given
  /// class/weight) on first use; weight < 0.001 is clamped up.
  void enqueue(const std::string& flow, int priority, double weight,
               Item item);

  /// Pops the next runnable item per the policy above and marks its flow
  /// in-flight; nullopt when every backlogged flow is already in flight
  /// (or nothing is queued).  The caller must call done(flow) after
  /// running the item.
  struct Next {
    std::string flow;
    Item item;
  };
  std::optional<Next> next();

  /// Marks `flow`'s in-flight item finished, making its next item (if
  /// any) runnable.
  void done(const std::string& flow);

  /// Queued (not yet popped) items across all flows.
  std::size_t depth() const;

  /// True when no items are queued and none are in flight.
  bool idle() const;

  /// Point-in-time view of one flow, for the live stats plane.
  struct FlowStats {
    std::string flow;
    int priority = 0;
    double weight = 1.0;
    double vtime = 0.0;
    std::size_t queued = 0;
    bool inFlight = false;
  };

  /// Every flow the scheduler has seen (idle ones included — their vtime
  /// still tells where they would re-enter), in map (name) order.
  std::vector<FlowStats> flowStats() const;

  /// Virtual time of the most recent pop.
  double virtualNow() const { return vnow_; }

 private:
  struct Flow {
    int priority = 0;
    double weight = 1.0;
    double vtime = 0.0;
    bool inFlight = false;
    std::deque<Item> queue;
  };

  std::map<std::string, Flow> flows_;
  double vnow_ = 0.0;  ///< virtual time of the most recent pop
  std::size_t depth_ = 0;
  std::size_t inFlight_ = 0;
};

}  // namespace rfsm
