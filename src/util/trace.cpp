#include "util/trace.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <vector>

#include "util/metrics.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace rfsm::trace {
namespace {

int processId() {
#if defined(__unix__) || defined(__APPLE__)
  static const int pid = static_cast<int>(::getpid());
  return pid;
#else
  return 1;
#endif
}

/// Steady-clock epoch shared by every event in the process.
std::chrono::steady_clock::time_point epoch() {
  static const auto start = std::chrono::steady_clock::now();
  return start;
}

/// Small dense thread ids (Chrome wants integers, std::thread::id is not).
int currentTid() {
  static std::atomic<int> nextTid{0};
  thread_local const int tid =
      nextTid.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

struct Event {
  char ph = 'X';
  std::string name;
  std::string category;
  std::uint64_t tsNs = 0;
  std::uint64_t durNs = 0;  // ph 'X' only
  std::uint64_t id = 0;     // ph 'b'/'n'/'e' only
  int tid = 0;
  bool hasId = false;
  std::string argsJson;  // comma-joined "key": value fragments
};

struct State {
  std::mutex mutex;
  std::vector<Event> ring;
  std::size_t capacity = 32768;
  std::size_t head = 0;  // oldest event once the ring is full
  std::uint64_t dropped = 0;
  std::map<int, std::string> threadNames;
  std::string processName;
  std::atomic<std::uint64_t> nextCorrelationId{1};
  std::atomic<std::uint64_t> nextSpanSalt{1};
};

/// The thread's adopted distributed-trace context (invalid by default).
thread_local TraceContext tCurrentContext;

/// splitmix64: cheap, well-mixed ids for spans and trace ids.  Identifier
/// quality only — never feeds planning, so determinism is unaffected.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Leaked on purpose: the tracer must survive static destruction (atexit
/// dump, spans in other objects' destructors).
State& state() {
  static State* instance = new State;
  return *instance;
}

void push(Event&& event) {
  static metrics::Counter& droppedCounter =
      metrics::counter(metrics::kTraceDropped);
  State& s = state();
  bool dropped = false;
  {
    std::lock_guard<std::mutex> lock(s.mutex);
    if (s.capacity == 0) return;
    if (s.ring.size() < s.capacity) {
      s.ring.push_back(std::move(event));
    } else {
      s.ring[s.head] = std::move(event);
      s.head = (s.head + 1) % s.capacity;
      ++s.dropped;
      dropped = true;
    }
  }
  if (dropped) droppedCounter.add();
}

std::string jsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string renderArgs(Args args) {
  std::string out;
  for (const Arg& a : args) {
    if (!out.empty()) out += ", ";
    out += "\"" + jsonEscape(a.key) + "\": " + a.value;
  }
  return out;
}

Event makeEvent(char ph, const std::string& name, const std::string& category,
                Args args) {
  Event e;
  e.ph = ph;
  e.name = name;
  e.category = category;
  e.tsNs = nowNs();
  e.tid = currentTid();
  e.argsJson = renderArgs(args);
  return e;
}

void dumpAtExit() {
  if (const char* out = std::getenv("RFSM_TRACE_OUT")) writeFile(out);
}

bool envTruthy(const char* value) {
  return value != nullptr && *value != '\0' && std::string(value) != "0";
}

}  // namespace

namespace detail {
std::atomic<bool> gEnabled{[] {
  const bool on = envTruthy(std::getenv("RFSM_TRACE"));
  if (on && std::getenv("RFSM_TRACE_OUT") != nullptr)
    std::atexit(dumpAtExit);
  return on;
}()};
}  // namespace detail

void setEnabled(bool on) {
  detail::gEnabled.store(on, std::memory_order_relaxed);
}

void setCapacity(std::size_t events) {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.capacity = events;
  s.ring.clear();
  s.ring.shrink_to_fit();
  s.head = 0;
  s.dropped = 0;
}

std::size_t capacity() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  return s.capacity;
}

void clear() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.ring.clear();
  s.head = 0;
  s.dropped = 0;
}

std::uint64_t droppedCount() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  return s.dropped;
}

std::size_t eventCount() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  return s.ring.size();
}

std::uint64_t nowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch())
          .count());
}

std::uint64_t steadyEpochNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          epoch().time_since_epoch())
          .count());
}

void setProcessName(const std::string& name) {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.processName = name;
}

std::string processName() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  return s.processName;
}

std::string TraceContext::traceIdHex() const {
  char buf[33];
  std::snprintf(buf, sizeof buf, "%016llx%016llx",
                static_cast<unsigned long long>(traceIdHi),
                static_cast<unsigned long long>(traceIdLo));
  return buf;
}

TraceContext currentContext() { return tCurrentContext; }

std::uint64_t newSpanId() {
  const std::uint64_t salt =
      state().nextSpanSalt.fetch_add(1, std::memory_order_relaxed);
  // Salted with pid and the per-process counter so ids from the client,
  // daemon parent, and worker subprocesses cannot collide on one trace.
  std::uint64_t id = mix64((static_cast<std::uint64_t>(processId()) << 32) ^
                           salt ^ steadyEpochNs());
  return id == 0 ? 1 : id;
}

TraceContext beginTrace() {
  TraceContext context;
  context.traceIdHi = newSpanId();
  context.traceIdLo = newSpanId();
  context.spanId = newSpanId();
  context.sampled = enabled();
  return context;
}

ContextScope::ContextScope(const TraceContext& context)
    : previous_(tCurrentContext) {
  tCurrentContext = context;
}

ContextScope::~ContextScope() { tCurrentContext = previous_; }

Arg Arg::num(const std::string& key, std::int64_t value) {
  return {key, std::to_string(value)};
}
Arg Arg::num(const std::string& key, std::uint64_t value) {
  return {key, std::to_string(value)};
}
Arg Arg::num(const std::string& key, double value) {
  std::ostringstream os;
  os << value;
  return {key, os.str()};
}
Arg Arg::boolean(const std::string& key, bool value) {
  return {key, value ? "true" : "false"};
}
Arg Arg::str(const std::string& key, const std::string& value) {
  return {key, "\"" + jsonEscape(value) + "\""};
}

void complete(const std::string& name, const std::string& category,
              std::uint64_t startNs, std::uint64_t durationNs, Args args) {
  if (!enabled()) return;
  Event e = makeEvent('X', name, category, args);
  e.tsNs = startNs;
  e.durNs = durationNs;
  push(std::move(e));
}

void instant(const std::string& name, const std::string& category,
             Args args) {
  if (!enabled()) return;
  push(makeEvent('i', name, category, args));
}

std::uint64_t newCorrelationId() {
  return state().nextCorrelationId.fetch_add(1, std::memory_order_relaxed);
}

namespace {

void asyncEvent(char ph, const std::string& name, const std::string& category,
                std::uint64_t id, Args args) {
  if (!enabled()) return;
  Event e = makeEvent(ph, name, category, args);
  e.id = id;
  e.hasId = true;
  push(std::move(e));
}

}  // namespace

void asyncBegin(const std::string& name, const std::string& category,
                std::uint64_t id, Args args) {
  asyncEvent('b', name, category, id, args);
}

void asyncInstant(const std::string& name, const std::string& category,
                  std::uint64_t id, Args args) {
  asyncEvent('n', name, category, id, args);
}

void asyncEnd(const std::string& name, const std::string& category,
              std::uint64_t id, Args args) {
  asyncEvent('e', name, category, id, args);
}

void setCurrentThreadName(const std::string& name) {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.threadNames[currentTid()] = name;
}

ScopedSpan::ScopedSpan(const char* name, const char* category, Args args)
    : name_(nullptr), category_(category) {
  if (!enabled()) return;
  name_ = name;
  startNs_ = nowNs();
  argsJson_ = renderArgs(args);
  const TraceContext& context = tCurrentContext;
  if (context.valid() && context.sampled) {
    spanId_ = newSpanId();
    if (!argsJson_.empty()) argsJson_ += ", ";
    argsJson_ += "\"trace_id\": \"" + context.traceIdHex() +
                 "\", \"span_id\": " + std::to_string(spanId_) +
                 ", \"parent_span_id\": " + std::to_string(context.spanId);
    // Nested spans (and contexts serialized onto outgoing frames while
    // this span is live) parent under this span.
    previousContext_ = context;
    restoreContext_ = true;
    tCurrentContext.spanId = spanId_;
  }
}

ScopedSpan::~ScopedSpan() {
  if (restoreContext_) tCurrentContext = previousContext_;
  if (name_ == nullptr) return;
  Event e;
  e.ph = 'X';
  e.name = name_;
  e.category = category_;
  e.tsNs = startNs_;
  e.durNs = nowNs() - startNs_;
  e.tid = currentTid();
  e.argsJson = std::move(argsJson_);
  push(std::move(e));
}

void ScopedSpan::addArg(const Arg& arg) {
  if (name_ == nullptr) return;
  if (!argsJson_.empty()) argsJson_ += ", ";
  argsJson_ += "\"" + jsonEscape(arg.key) + "\": " + arg.value;
}

std::string toJson() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  std::ostringstream os;
  os << "{\"displayTimeUnit\": \"ns\", \"steadyEpochNs\": " << steadyEpochNs()
     << ", \"pid\": " << processId() << ", \"processName\": \""
     << jsonEscape(s.processName) << "\", \"traceEvents\": [";
  bool first = true;
  const int pid = processId();
  auto comma = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };
  if (!s.processName.empty()) {
    comma();
    os << "{\"ph\": \"M\", \"pid\": " << pid << ", \"tid\": 0"
       << ", \"name\": \"process_name\", \"args\": {\"name\": \""
       << jsonEscape(s.processName) << "\"}}";
  }
  for (const auto& [tid, name] : s.threadNames) {
    comma();
    os << "{\"ph\": \"M\", \"pid\": " << pid << ", \"tid\": " << tid
       << ", \"name\": \"thread_name\", \"args\": {\"name\": \""
       << jsonEscape(name) << "\"}}";
  }
  auto fixed3 = [&](double value) {
    os.setf(std::ios::fixed);
    os.precision(3);
    os << value;
    os.unsetf(std::ios::fixed);
  };
  const std::size_t count = s.ring.size();
  const bool full = count == s.capacity && s.capacity != 0;
  for (std::size_t k = 0; k < count; ++k) {
    const Event& e = s.ring[full ? (s.head + k) % count : k];
    comma();
    os << "{\"ph\": \"" << e.ph << "\", \"pid\": " << pid
       << ", \"tid\": " << e.tid << ", \"ts\": ";
    fixed3(static_cast<double>(e.tsNs) / 1000.0);
    os << ", \"name\": \"" << jsonEscape(e.name) << "\"";
    if (!e.category.empty())
      os << ", \"cat\": \"" << jsonEscape(e.category) << "\"";
    if (e.ph == 'X') {
      os << ", \"dur\": ";
      fixed3(static_cast<double>(e.durNs) / 1000.0);
    }
    if (e.ph == 'i') os << ", \"s\": \"t\"";
    if (e.hasId) os << ", \"id\": " << e.id;
    os << ", \"args\": {" << e.argsJson << "}}";
  }
  os << "\n]}\n";
  return os.str();
}

bool writeFile(const std::string& path) {
  // %p -> pid, so a daemon and the workers inheriting its RFSM_TRACE_OUT
  // write distinct dumps instead of clobbering one file.
  std::string expanded = path;
  for (std::size_t at = expanded.find("%p"); at != std::string::npos;
       at = expanded.find("%p", at)) {
    const std::string pid = std::to_string(processId());
    expanded.replace(at, 2, pid);
    at += pid.size();
  }
  std::ofstream stream(expanded, std::ios::binary);
  if (!stream) return false;
  stream << toJson();
  return static_cast<bool>(stream);
}

bool dumpToEnv() {
  const char* out = std::getenv("RFSM_TRACE_OUT");
  if (out == nullptr || *out == '\0') return false;
  return writeFile(out);
}

}  // namespace rfsm::trace
