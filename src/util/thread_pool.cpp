#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#if defined(__linux__)
#include <pthread.h>
#endif

#include "util/check.hpp"
#include "util/trace.hpp"

namespace rfsm {
namespace {

/// Names the calling worker thread for traces, TSan reports, and gdb.
void nameWorkerThread(int index) {
  const std::string name = "rfsm-worker-" + std::to_string(index);
#if defined(__linux__)
  // pthread names are capped at 15 characters + NUL; the scheme fits up to
  // 99 workers and truncation beyond that is harmless.
  pthread_setname_np(pthread_self(), name.substr(0, 15).c_str());
#endif
  trace::setCurrentThreadName(name);
}

/// One parallelFor invocation.  Lives on the caller's stack; helper tasks
/// hold a raw pointer, which is safe because the caller blocks until every
/// helper retired (`pending == 0`).
struct Batch {
  std::size_t count = 0;
  const std::function<void(std::size_t)>* body = nullptr;
  std::atomic<std::size_t> next{0};

  std::mutex mutex;
  std::condition_variable done;
  int pending = 0;  // helper tasks still running or queued
  std::exception_ptr error;

  /// Claims indices until the range is exhausted; records the first error.
  void drain() {
    for (std::size_t i; (i = next.fetch_add(1, std::memory_order_relaxed)) <
                        count;) {
      try {
        (*body)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        if (!error) error = std::current_exception();
        // Keep draining: every index must be claimed so the batch ends in a
        // known state (remaining bodies still run; only the first error is
        // reported, like a serial loop that failed at its first bad index
        // would leave later indices unvisited -- here they do run, which is
        // the conservative choice for per-slot writers).
      }
    }
  }
};

}  // namespace

struct ThreadPool::Impl {
  std::vector<std::thread> workers;
  std::deque<Batch*> queue;
  std::mutex mutex;
  std::condition_variable wake;
  bool stopping = false;

  void workerLoop() {
    for (;;) {
      Batch* batch = nullptr;
      {
        std::unique_lock<std::mutex> lock(mutex);
        wake.wait(lock, [&] { return stopping || !queue.empty(); });
        if (stopping && queue.empty()) return;
        batch = queue.front();
        queue.pop_front();
      }
      {
        trace::ScopedSpan span("pool.drain", "pool");
        batch->drain();
      }
      {
        // Notify while holding the lock: the caller destroys the Batch as
        // soon as it observes pending == 0, so the last touch of the batch
        // must happen before this mutex is released.
        std::lock_guard<std::mutex> lock(batch->mutex);
        --batch->pending;
        batch->done.notify_one();
      }
    }
  }

  bool isWorkerThread() const {
    const auto id = std::this_thread::get_id();
    return std::any_of(workers.begin(), workers.end(),
                       [&](const std::thread& t) { return t.get_id() == id; });
  }
};

ThreadPool::ThreadPool(int jobs) : impl_(std::make_unique<Impl>()) {
  if (jobs <= 0) jobs = hardwareJobs();
  for (int k = 1; k < jobs; ++k)
    impl_->workers.emplace_back([this, k] {
      nameWorkerThread(k);
      impl_->workerLoop();
    });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stopping = true;
  }
  impl_->wake.notify_all();
  for (std::thread& worker : impl_->workers) worker.join();
}

int ThreadPool::jobs() const {
  return static_cast<int>(impl_->workers.size()) + 1;
}

int ThreadPool::hardwareJobs() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void ThreadPool::parallelFor(std::size_t count,
                             const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  // Serial fast path: no workers, a single index, or a re-entrant call from
  // inside a worker (waiting for helpers from a worker could deadlock when
  // all other workers are doing the same).
  if (impl_->workers.empty() || count == 1 || impl_->isWorkerThread()) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  Batch batch;
  batch.count = count;
  batch.body = &body;
  const int helpers =
      static_cast<int>(std::min<std::size_t>(impl_->workers.size(), count));
  batch.pending = helpers;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    for (int k = 0; k < helpers; ++k) impl_->queue.push_back(&batch);
  }
  impl_->wake.notify_all();

  {
    // The caller participates.
    trace::ScopedSpan span("pool.drain", "pool");
    batch.drain();
  }
  {
    std::unique_lock<std::mutex> lock(batch.mutex);
    batch.done.wait(lock, [&] { return batch.pending == 0; });
    if (batch.error) std::rethrow_exception(batch.error);
  }
}

void parallelFor(ThreadPool* pool, std::size_t count,
                 const std::function<void(std::size_t)>& body) {
  if (pool == nullptr) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  pool->parallelFor(count, body);
}

}  // namespace rfsm
