#include "util/deadline.hpp"

#include <string>

namespace rfsm {

std::optional<std::chrono::milliseconds> CancelToken::remaining() const {
  if (cancelled_.load(std::memory_order_relaxed))
    return std::chrono::milliseconds(0);
  const auto ns = deadlineNs_.load(std::memory_order_relaxed);
  if (ns == kNoDeadline) return std::nullopt;
  const auto left = ns - Clock::now().time_since_epoch().count();
  if (left <= 0) return std::chrono::milliseconds(0);
  return std::chrono::duration_cast<std::chrono::milliseconds>(
      Clock::duration(left));
}

void CancelToken::throwIfExpired(const char* where) const {
  if (!expired()) return;
  const bool wasCancelled = cancelled_.load(std::memory_order_relaxed);
  throw CancelledError(std::string(where) +
                       (wasCancelled ? ": cancelled" : ": deadline exceeded"));
}

}  // namespace rfsm
