// Small string helpers used across parsers, serializers and reports.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace rfsm {

/// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> split(std::string_view text, char sep);

/// Splits on runs of ASCII whitespace, dropping empty fields.
std::vector<std::string> splitWhitespace(std::string_view text);

/// Removes leading and trailing ASCII whitespace.
std::string trim(std::string_view text);

/// Joins `parts` with `sep` between consecutive elements.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `text` begins with `prefix`.
bool startsWith(std::string_view text, std::string_view prefix);

/// Renders `value` in fixed notation with `digits` decimals.
std::string formatFixed(double value, int digits);

}  // namespace rfsm
