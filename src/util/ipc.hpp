// Minimal inter-process plumbing for the planner service: length-framed
// messages over file descriptors, a binary message encoding, Unix-domain
// sockets, and worker-subprocess spawning.
//
// Everything here is written for *failure*, not for the happy path: reads
// honour deadlines (poll in bounded slices so a hung peer cannot wedge the
// caller), short reads and EOFs are distinguished from errors, frames are
// size-capped so a corrupt length prefix cannot OOM the supervisor, and
// message decoding throws IpcError on any truncation instead of reading
// garbage.  The supervisor (util/supervisor.hpp) builds crash isolation on
// top of these primitives.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/check.hpp"
#include "util/deadline.hpp"

namespace rfsm::ipc {

/// Thrown on transport and decoding failures (never on EOF or timeout,
/// which are expected outcomes with their own return values).
class IpcError : public Error {
 public:
  explicit IpcError(const std::string& what) : Error(what) {}
};

/// A frame that is malformed on the wire: CRC32C mismatch or an absurd
/// length prefix.  Distinguished from the base IpcError so callers can
/// report "malformed response" (the peer is alive but the bytes are bad)
/// instead of "unreachable", while every existing catch of IpcError still
/// contains it.  Each rejection bumps metrics::kServiceFramesRejected.
class FrameError : public IpcError {
 public:
  explicit FrameError(const std::string& what) : IpcError(what) {}
};

/// Frames larger than this are rejected as corrupt (a garbage length prefix
/// must not turn into a multi-gigabyte allocation).
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

/// The fd a spawned worker speaks the frame protocol on (stdin/stdout stay
/// free for logging).
inline constexpr int kWorkerChannelFd = 3;

/// Owning file descriptor (close on destruction; movable, not copyable).
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept;
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  /// Releases ownership without closing.
  int release();
  /// Closes the held fd (idempotent).
  void reset();

 private:
  int fd_ = -1;
};

/// Ignores SIGPIPE process-wide so a write to a dead peer surfaces as an
/// EPIPE IpcError instead of killing the process.  Idempotent; every
/// service entry point (server, worker, client) calls it.
void ignoreSigpipe();

// --- Framing -------------------------------------------------------------
//
// A frame is a little-endian u32 payload length, the payload, and a
// little-endian u32 CRC32C of the payload.  The trailer turns wire
// corruption from silent misparse (or a hang on a mangled length) into a
// typed FrameError the retry/degradation ladder can absorb.

/// CRC32C (Castagnoli) of `bytes` — the per-frame trailer checksum.
std::uint32_t crc32c(std::string_view bytes);

/// Writes one frame, retrying on EINTR and short writes.  Throws IpcError
/// on any write failure (including EPIPE — the peer died).
void writeFrame(int fd, std::string_view payload);

/// Outcome of a deadline-bounded frame read.
enum class ReadStatus {
  kOk,       ///< `payload` holds a complete frame.
  kEof,      ///< Clean close before (or mid-)frame: the peer is gone.
  kTimeout,  ///< The cancel token expired before a full frame arrived.
};

/// Reads one frame.  Blocks in bounded poll slices, so a `cancel` token
/// with a deadline (or an asynchronous cancel()) turns a hung peer into
/// kTimeout instead of a wedged caller; cancel == nullptr blocks
/// indefinitely.  Throws IpcError on transport errors and FrameError on
/// malformed frames (oversized length prefix, CRC32C mismatch).
ReadStatus readFrame(int fd, std::string& payload,
                     const CancelToken* cancel = nullptr);

/// True when `fd` has bytes (or an EOF) ready to read right now.  On a
/// request/response channel a true result *before writing a request* means
/// the stream is desynchronized — a duplicated or unsolicited frame is
/// queued, and the next read would pair the wrong reply with this request.
/// Callers tear the connection down instead of exchanging on it.
bool pendingInput(int fd);

// --- Message encoding ----------------------------------------------------
//
// Frames carry flat sequences of little-endian integers and u32-length-
// prefixed strings.  The reader throws IpcError on truncation, so a torn or
// corrupted payload can never be silently misparsed.

class MessageWriter {
 public:
  void u32(std::uint32_t value);
  void u64(std::uint64_t value);
  void i64(std::int64_t value);
  void str(std::string_view value);

  const std::string& data() const { return buffer_; }
  std::string take() { return std::move(buffer_); }

 private:
  std::string buffer_;
};

class MessageReader {
 public:
  explicit MessageReader(std::string_view payload) : payload_(payload) {}
  /// The reader only views the payload; a temporary would dangle.
  explicit MessageReader(std::string&&) = delete;

  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64();
  std::string str();

  bool atEnd() const { return pos_ == payload_.size(); }
  /// Throws IpcError unless the whole payload was consumed (catches
  /// encoder/decoder drift early).
  void expectEnd() const;

 private:
  const unsigned char* need(std::size_t bytes);

  std::string_view payload_;
  std::size_t pos_ = 0;
};

// --- Unix-domain sockets -------------------------------------------------

/// Binds and listens on `path` (unlinking a stale socket first).  Throws
/// IpcError on failure.  All fds are close-on-exec.
Fd listenUnix(const std::string& path, int backlog = 16);

/// Accepts one connection; polls in bounded slices so `cancel` (or an
/// expired deadline) returns nullopt instead of blocking forever.  Works
/// for Unix and TCP listening sockets alike.
std::optional<Fd> acceptUnix(int listenFd, const CancelToken* cancel);

/// Connects to a listening Unix socket.  Throws IpcError on failure.
Fd connectUnix(const std::string& path);

// --- TCP sockets (the cross-host transport) ------------------------------

/// Binds and listens on host:port (SO_REUSEADDR; port 0 = ephemeral, read
/// the assignment back with localTcpPort).  Throws IpcError on failure.
Fd listenTcp(const std::string& host, std::uint16_t port, int backlog = 16);

/// Connects to host:port.  The connect itself is bounded by `timeoutMs`
/// (non-blocking connect + poll) so a dropped remote host costs a timeout,
/// not a hung shard; <= 0 falls back to the 5000 ms default.  Throws
/// IpcError on failure or timeout.
Fd connectTcp(const std::string& host, std::uint16_t port,
              std::int64_t timeoutMs = 0);

/// The local port a bound TCP socket ended up on (resolves port 0).
std::uint16_t localTcpPort(int fd);

// --- Endpoint addressing --------------------------------------------------
//
// One string names a planner-service endpoint on either transport:
//   unix:/path/to.sock   Unix-domain socket (explicit)
//   /path/to.sock        Unix-domain socket (any string with a '/')
//   tcp:host:port        TCP (explicit)
//   host:port            TCP (shorthand; the last ':' splits host/port)

struct Endpoint {
  enum class Kind { kUnix, kTcp };
  Kind kind = Kind::kUnix;
  std::string path;  ///< Unix socket path (kind == kUnix)
  std::string host;  ///< TCP host (kind == kTcp)
  std::uint16_t port = 0;

  /// The canonical display form ("unix:/path" / "tcp:host:port").
  std::string describe() const;
};

/// Parses an endpoint string; throws IpcError on malformed input (empty
/// string, non-numeric or out-of-range port).
Endpoint parseEndpoint(const std::string& text);

/// Splits a comma/whitespace-separated endpoint list (the RFSM_ENDPOINTS
/// environment format); empty items are skipped.
std::vector<Endpoint> parseEndpointList(const std::string& text);

/// Transport-dispatching connect/listen.
Fd connectEndpoint(const Endpoint& endpoint, std::int64_t timeoutMs = 0);
Fd listenEndpoint(const Endpoint& endpoint, int backlog = 16);

// --- Worker subprocesses -------------------------------------------------

/// A spawned worker process and the supervisor's end of its channel.
struct ChildProcess {
  int pid = -1;
  Fd channel;  ///< Frame transport; the child sees it as kWorkerChannelFd.
};

/// Forks and execs `command` (argv[0] = executable path) with one end of a
/// socketpair installed as kWorkerChannelFd.  Throws IpcError when the
/// spawn fails outright; an exec failure inside the child surfaces as an
/// immediate EOF on the channel (the supervisor treats it as a crash).
ChildProcess spawnWorker(const std::vector<std::string>& command);

/// Non-blocking liveness check; reaps and returns false when the child has
/// exited (exit status, if any, goes to *status).
bool childAlive(int pid, int* status = nullptr);

/// SIGKILLs and reaps the child (no-op for pid < 0).  Used for crash
/// isolation: a worker that overran its deadline is destroyed, never
/// joined.
void killChild(int pid);

}  // namespace rfsm::ipc
