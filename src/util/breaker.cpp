#include "util/breaker.hpp"

#include <algorithm>
#include <map>
#include <utility>

namespace rfsm {

CircuitBreaker::CircuitBreaker(BreakerOptions options)
    : options_(options) {}

void CircuitBreaker::openLocked(Clock::time_point now) {
  state_ = State::kOpen;
  openUntil_ = now + options_.openDuration;
  probeInFlight_ = false;
  probeSuccesses_ = 0;
  ++trips_;
}

bool CircuitBreaker::allowRequest(Clock::time_point now) {
  std::lock_guard<std::mutex> lock(mutex_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (now < openUntil_) return false;
      // Cooldown over: arm the probe and admit this caller as it.
      state_ = State::kHalfOpen;
      probeSuccesses_ = 0;
      probeInFlight_ = true;
      return true;
    case State::kHalfOpen:
      if (probeInFlight_) return false;  // one probe at a time
      probeInFlight_ = true;
      return true;
  }
  return false;
}

void CircuitBreaker::recordSuccess(Clock::time_point now) {
  (void)now;
  std::lock_guard<std::mutex> lock(mutex_);
  consecutiveFailures_ = 0;
  if (state_ == State::kHalfOpen) {
    probeInFlight_ = false;
    if (++probeSuccesses_ >= options_.halfOpenSuccesses) {
      state_ = State::kClosed;
      probeSuccesses_ = 0;
    }
  }
}

void CircuitBreaker::recordFailure(Clock::time_point now) {
  std::lock_guard<std::mutex> lock(mutex_);
  switch (state_) {
    case State::kClosed:
      if (++consecutiveFailures_ >= options_.failureThreshold)
        openLocked(now);
      return;
    case State::kHalfOpen:
      // The probe failed: the dependency is still broken.
      ++consecutiveFailures_;
      openLocked(now);
      return;
    case State::kOpen:
      // A straggler from before the trip; the breaker is already open.
      ++consecutiveFailures_;
      return;
  }
}

void CircuitBreaker::recordAbandoned(Clock::time_point now) {
  (void)now;
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ == State::kHalfOpen) probeInFlight_ = false;
}

void CircuitBreaker::trip(Clock::time_point now) {
  std::lock_guard<std::mutex> lock(mutex_);
  consecutiveFailures_ = options_.failureThreshold;
  openLocked(now);
}

CircuitBreaker::State CircuitBreaker::state(Clock::time_point now) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ == State::kOpen && now >= openUntil_) return State::kHalfOpen;
  return state_;
}

std::uint64_t CircuitBreaker::trips() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return trips_;
}

const char* toString(CircuitBreaker::State state) {
  switch (state) {
    case CircuitBreaker::State::kClosed: return "CLOSED";
    case CircuitBreaker::State::kOpen: return "OPEN";
    case CircuitBreaker::State::kHalfOpen: return "HALF-OPEN";
  }
  return "UNKNOWN";
}

namespace {

struct BreakerEntry {
  std::string name;
  const CircuitBreaker* breaker = nullptr;
};

struct BreakerDirectory {
  std::mutex mutex;
  std::uint64_t nextId = 1;
  std::map<std::uint64_t, BreakerEntry> entries;
};

BreakerDirectory& breakerDirectory() {
  static BreakerDirectory directory;
  return directory;
}

}  // namespace

BreakerRegistration::BreakerRegistration(std::string name,
                                         const CircuitBreaker* breaker) {
  BreakerDirectory& directory = breakerDirectory();
  std::lock_guard<std::mutex> lock(directory.mutex);
  id_ = directory.nextId++;
  directory.entries[id_] = {std::move(name), breaker};
}

BreakerRegistration::~BreakerRegistration() {
  BreakerDirectory& directory = breakerDirectory();
  std::lock_guard<std::mutex> lock(directory.mutex);
  directory.entries.erase(id_);
}

std::vector<BreakerSnapshot> breakerSnapshots() {
  // Copy the entries under the directory lock, then query each breaker
  // outside it — state() takes the breaker's own mutex and must not nest
  // inside the directory's.  The registrations are RAII-tied to the
  // breakers' owners, so the copied pointers stay valid until destructor
  // ordering removes them from the map first.
  std::vector<BreakerEntry> entries;
  {
    BreakerDirectory& directory = breakerDirectory();
    std::lock_guard<std::mutex> lock(directory.mutex);
    entries.reserve(directory.entries.size());
    for (const auto& [id, entry] : directory.entries)
      entries.push_back(entry);
  }
  std::vector<BreakerSnapshot> snapshots;
  snapshots.reserve(entries.size());
  for (const BreakerEntry& entry : entries)
    snapshots.push_back(
        {entry.name, entry.breaker->state(), entry.breaker->trips()});
  std::sort(snapshots.begin(), snapshots.end(),
            [](const BreakerSnapshot& a, const BreakerSnapshot& b) {
              return a.name < b.name;
            });
  return snapshots;
}

}  // namespace rfsm
