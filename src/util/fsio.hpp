// Crash-consistent file IO for journals and snapshots.
//
// Two disciplines, matching the two kinds of durable state the session
// layer keeps:
//
//  * writeFileDurable — whole-file replace via write-temp + fsync +
//    rename + parent-directory fsync.  A crash at any instant leaves
//    either the complete old bytes or the complete new bytes under the
//    target name, never a torn or missing file.  (rename alone is atomic
//    in the namespace but the *directory entry* is not durable until the
//    parent directory is fsynced — the classic lost-rename bug.)
//  * openAppend/appendDurable — write-ahead logs: open O_APPEND (fsyncing
//    the parent when the open created the file, so the name survives),
//    then append + fsync before every acknowledgement.
//
// Everything throws FsError naming the path and errno; callers decide
// whether a failed write is fatal (WAL append: yes) or degradable
// (snapshot: keep journaling, retry later).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/check.hpp"
#include "util/ipc.hpp"

namespace rfsm::fsio {

/// Thrown on filesystem failures; the message names the path and errno.
class FsError : public Error {
 public:
  explicit FsError(const std::string& what) : Error(what) {}
};

/// The directory component of `path` ("." when there is none).
std::string parentDir(const std::string& path);

/// fsyncs the directory containing `path`, making renames/creates/unlinks
/// of that entry durable.
void fsyncParentDir(const std::string& path);

/// Atomically replaces `path` with `bytes`: writes "<path>.tmp.<pid>",
/// fsyncs it, renames it over `path`, and fsyncs the parent directory.
void writeFileDurable(const std::string& path, std::string_view bytes);

/// Opens `path` for appending, creating it (and fsyncing the parent so the
/// new name is durable) when absent.
ipc::Fd openAppend(const std::string& path);

/// Appends `bytes` to `fd` and fsyncs before returning (the WAL rule:
/// nothing is acknowledged until it is on disk).  `path` names the file in
/// error messages, which carry the append offset alongside errno.
///
/// A failed fsync is permanent for the descriptor: the fd is latched dirty
/// and every later append/fsync on it throws immediately, because the
/// kernel may have dropped the unwritten pages — retrying fsync and
/// assuming a clean result would acknowledge data that never hit the disk.
/// Recovery is to reopen the file (openAppend returns a clean descriptor)
/// and rewrite from trusted state.
void appendDurable(int fd, const std::string& path, std::string_view bytes);

/// Whole-file read; nullopt when the file does not exist, FsError on any
/// other failure.
std::optional<std::string> readFileIfExists(const std::string& path);

/// Creates `path` (and missing ancestors) as directories; no-op when it
/// already exists.
void makeDirs(const std::string& path);

/// Names of the regular files directly inside `dir`, sorted.
std::vector<std::string> listDir(const std::string& dir);

/// Unlinks `path` (no error when absent) and fsyncs the parent directory.
void removeFileDurable(const std::string& path);

/// Renames `path` to `newPath` (same directory) and fsyncs the parent —
/// used to quarantine corrupt snapshots/journals out of the recovery scan
/// without destroying the evidence.
void renameDurable(const std::string& path, const std::string& newPath);

}  // namespace rfsm::fsio
