// Circuit breaker: per-dependency health as an explicit state machine.
//
// A CircuitBreaker guards one downstream dependency (a planner-fabric
// endpoint, in the first instance) and decides, per request, whether that
// dependency is worth talking to at all:
//
//   CLOSED     healthy; every request is admitted.  `failureThreshold`
//              *consecutive* failures trip the breaker (a lone blip on a
//              busy endpoint must not take it out of rotation).
//   OPEN       broken; requests are rejected without touching the wire, so
//              a dead endpoint costs callers a map lookup instead of a
//              connect timeout per shard.  After `openDuration` the breaker
//              arms a probe.
//   HALF-OPEN  recovering; exactly one in-flight probe request is admitted
//              at a time.  `halfOpenSuccesses` successful probes close the
//              breaker; any probe failure re-opens it for another
//              `openDuration`.
//
// All transitions are driven by explicit time points, never by a hidden
// clock read, so unit tests cover trip/probe/recovery without sleeping and
// the fabric can evaluate a whole endpoint set against one `now`.  The
// object is thread-safe: shard threads of one fabric request share the
// per-endpoint breakers.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace rfsm {

struct BreakerOptions {
  /// Consecutive failures that trip CLOSED -> OPEN.
  int failureThreshold = 3;
  /// How long an OPEN breaker rejects before arming a half-open probe.
  std::chrono::milliseconds openDuration{1000};
  /// Successful probes required to close from HALF-OPEN.
  int halfOpenSuccesses = 1;
};

class CircuitBreaker {
 public:
  using Clock = std::chrono::steady_clock;

  enum class State { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(BreakerOptions options = {});

  /// Admission decision for one request at `now`.  In HALF-OPEN (or OPEN
  /// past its cooldown, which transitions here) admits a single in-flight
  /// probe: the first caller gets true and *owns* the probe until it
  /// reports recordSuccess/recordFailure; concurrent callers are rejected.
  bool allowRequest(Clock::time_point now = Clock::now());

  /// Reports the outcome of an admitted request.  Success resets the
  /// failure streak (and closes the breaker once enough half-open probes
  /// succeeded); failure extends the streak, trips a CLOSED breaker at the
  /// threshold, and re-opens a HALF-OPEN one immediately.
  void recordSuccess(Clock::time_point now = Clock::now());
  void recordFailure(Clock::time_point now = Clock::now());

  /// Relinquishes an admitted request without a verdict — the hedged-loser
  /// path: the fabric cancelled the attempt because a twin answered first,
  /// which says nothing about this endpoint's health.  Frees the half-open
  /// probe slot (so recovery is not wedged behind a cancelled probe) and
  /// leaves streaks and state untouched.
  void recordAbandoned(Clock::time_point now = Clock::now());

  /// Force-opens the breaker regardless of streak — the quorum-divergence
  /// path: one byte of disagreement is disqualifying, not a blip.
  void trip(Clock::time_point now = Clock::now());

  /// The state a request at `now` would observe (OPEN past its cooldown
  /// reports HALF-OPEN).  Diagnostic only; admission goes via allowRequest.
  State state(Clock::time_point now = Clock::now()) const;

  /// Lifetime trip count (CLOSED/HALF-OPEN -> OPEN transitions).
  std::uint64_t trips() const;

 private:
  /// Caller holds `mutex_`.
  void openLocked(Clock::time_point now);

  BreakerOptions options_;
  mutable std::mutex mutex_;
  State state_ = State::kClosed;
  int consecutiveFailures_ = 0;
  int probeSuccesses_ = 0;
  bool probeInFlight_ = false;
  Clock::time_point openUntil_{};
  std::uint64_t trips_ = 0;
};

const char* toString(CircuitBreaker::State state);

/// RAII entry in the process-wide breaker registry, so the live stats
/// plane (`rfsmc stats`) can enumerate every breaker the process currently
/// hosts without the owners threading references around.  The registration
/// must not outlive the breaker it names; fabric Impls own both, so their
/// lifetimes already coincide.  Names need not be unique — two fabrics
/// guarding the same endpoint each report their own row.
class BreakerRegistration {
 public:
  BreakerRegistration(std::string name, const CircuitBreaker* breaker);
  ~BreakerRegistration();
  BreakerRegistration(const BreakerRegistration&) = delete;
  BreakerRegistration& operator=(const BreakerRegistration&) = delete;

 private:
  std::uint64_t id_ = 0;
};

/// Point-in-time view of one registered breaker.
struct BreakerSnapshot {
  std::string name;
  CircuitBreaker::State state = CircuitBreaker::State::kClosed;
  std::uint64_t trips = 0;
};

/// All currently registered breakers, sorted by name.
std::vector<BreakerSnapshot> breakerSnapshots();

}  // namespace rfsm
