// Seeded fault injection for reconfigurable-FSM tables.
//
// Models the two field failures a live reconfiguration is exposed to:
//  * SEU bit flips in the F/G block RAM (transient, or stuck-at when the
//    damaged cell re-corrupts after every write), and
//  * power loss cutting a reconfiguration program short at a chosen step.
//
// FaultInjector is pure decision logic over an abstract table geometry
// (flat cell indices, a per-cell bit width, a program length); the core and
// rtl layers map the drawn events onto their own RAM models through their
// back doors.  Everything is derived from an Rng, so a (seed, model,
// geometry) triple reproduces a scenario exactly — the contract the fault
// sweep bench and the CI seed matrix rely on.
//
// This layer disturbs the *tables the planner reasons about*.  Its sibling,
// util/chaos.hpp, disturbs the *infrastructure underneath the service*
// (disk syscalls in util/fsio, wire frames in util/ipc) with the same
// named-preset + single-seed replayability convention: `--fault` names a
// table-fault model, `--chaos <seed>:<profile>` names an
// infrastructure-fault schedule, and the two compose freely.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace rfsm::fault {

/// One bit flip in one table cell.  `atStep` is the program step index the
/// flip lands *before* (0-based); a value equal to the program length means
/// the flip arrives after the program completed.  A sticky flip models a
/// stuck-at cell: it re-corrupts the cell after every subsequent write.
struct CellFault {
  std::size_t cell = 0;  // flat cell index, < cellCount
  int bit = 0;           // bit within the cell word, < bitsPerCell
  int atStep = 0;
  bool sticky = false;

  bool operator==(const CellFault&) const = default;
};

/// A complete fault scenario for one migration attempt.
struct FaultScenario {
  /// Power loss: execution stops before this step runs (steps 0..k-1 were
  /// committed).  nullopt = the program runs to completion.
  std::optional<int> abortAtStep;
  std::vector<CellFault> flips;

  bool empty() const { return !abortAtStep.has_value() && flips.empty(); }
};

/// Injection rates.  The defaults are the "default injection rates" of
/// bench_fault_sweep: most runs see at least one disturbance, and a clean
/// recovery must be demonstrated for every one of them.
struct FaultModel {
  /// Probability that the program is cut short (power-loss model).
  double abortProbability = 0.25;
  /// Per-slot probability that one of `maxFlips` flip slots fires.
  double flipProbability = 0.5;
  int maxFlips = 2;
  /// Probability that a flip is sticky (stuck-at) *when the caller supplied
  /// sticky-eligible cells*; sticky flips are only drawn from that set.
  double stickyProbability = 0.0;
};

/// Geometry of the table under attack.
struct FaultGeometry {
  std::size_t cellCount = 0;  // |S_super| * |I_super|
  int bitsPerCell = 1;        // state-code width + output-code width
  int programLength = 0;      // |Z| of the program in flight
  /// Cells a sticky fault may target (e.g. the RAM rows of newly allocated
  /// states); empty = sticky faults disabled regardless of the model.
  std::vector<std::size_t> stickyCells;
};

/// Draws reproducible fault scenarios.
class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed);

  /// Draws one scenario.  Deterministic: the k-th draw from a given seed
  /// yields the same scenario for the same (model, geometry).  Flips are
  /// scheduled in [0, min(abortAtStep, programLength)] so nothing "happens"
  /// after the power is gone.
  FaultScenario draw(const FaultModel& model, const FaultGeometry& geometry);

  Rng& rng() { return rng_; }

 private:
  Rng rng_;
};

// --- Named scenarios -----------------------------------------------------
//
// Every scenario the CI smoke jobs and the service benches rely on is
// addressable by name, so a failure seen in CI reproduces from the CLI
// with the same flag (`rfsmd --fault NAME`, `rfsmc inject --scenario
// NAME`) instead of a hand-assembled pile of probabilities.

/// FaultInjector model presets (table-level faults), by name:
///   clean        no injected faults
///   default      the bench_fault_sweep default rates
///   flip-storm   every flip slot fires, no power loss
///   abort-heavy  power loss on most runs, few flips
///   stuck-at     sticky (stuck-at) flips dominate
/// Returns nullopt for unknown names.
std::optional<FaultModel> modelByName(const std::string& name);
const std::vector<std::string>& modelNames();

/// Process-level fault scenarios of the planner service (what the
/// supervisor or worker does to itself), by name:
/// All scenarios are armed on the supervisor's dispatch hook and fire
/// exactly once, so the retried shard lands on an unmolested worker:
///   none             no induced failure
///   kill-first-shard SIGKILL the worker right after shard `afterShards`
///                    (default 0 = the first) is dispatched to it
///   abort-mid-shard  SIGABRT the worker mid-shard (an assert/abort death,
///                    distinct from SIGKILL in the exit status)
///   hang-worker      SIGSTOP the worker so it goes silent mid-shard and
///                    must be timed out and destroyed, never joined
///   pool-unhealthy   the pool is forced unhealthy and refuses work
struct ServiceScenario {
  enum class Kind {
    kNone,
    kKillWorker,   ///< SIGKILL after dispatch `afterShards`
    kAbortWorker,  ///< SIGABRT after dispatch `afterShards`
    kHangWorker,   ///< SIGSTOP after dispatch `afterShards`
    kUnhealthy,    ///< pool forced unhealthy
  };
  std::string name = "none";
  Kind kind = Kind::kNone;
  /// Fire after this many shard dispatches (0 = the first).
  int afterShards = 0;
  /// Legacy knob of hang-worker (the hang now lasts until the supervisor's
  /// timeout kill, so this only documents intent).
  int hangMs = 0;
};

std::optional<ServiceScenario> serviceScenarioByName(const std::string& name);
const std::vector<std::string>& serviceScenarioNames();

}  // namespace rfsm::fault
