// Plain-text table rendering for the benchmark harness.
//
// Every bench binary reproduces a paper table/figure by printing a table in
// GitHub-flavoured markdown (readable in a terminal and paste-able into
// EXPERIMENTS.md) before running its timing benchmarks.
#pragma once

#include <string>
#include <vector>

namespace rfsm {

/// Column-aligned table with a header row; renders to markdown or CSV.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must have as many cells as the header.
  void addRow(std::vector<std::string> row);

  /// Number of data rows added so far.
  std::size_t rowCount() const { return rows_.size(); }

  /// Renders as a column-aligned GitHub markdown table.
  std::string toMarkdown() const;

  /// Renders as RFC-4180-ish CSV (no quoting: cells must not contain commas).
  std::string toCsv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rfsm
