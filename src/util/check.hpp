// Error handling primitives shared by every rfsm library.
//
// Two kinds of failure are distinguished:
//  * Contract violations (broken invariants, misuse of an API) abort the
//    operation by throwing `rfsm::ContractError` via RFSM_CHECK.  These are
//    programming errors; callers should not catch them in normal control
//    flow, but tests do, to assert that misuse is detected.
//  * Domain errors (unparsable input files, infeasible requests) throw the
//    more specific exceptions defined next to the code that raises them, all
//    deriving from `rfsm::Error`.
#pragma once

#include <stdexcept>
#include <string>

namespace rfsm {

/// Root of all exceptions thrown by the rfsm libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown by RFSM_CHECK when an API contract or internal invariant is broken.
class ContractError : public Error {
 public:
  explicit ContractError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void failCheck(const char* expr, const char* file, int line,
                            const std::string& message);
}  // namespace detail

}  // namespace rfsm

/// Verifies a contract; throws rfsm::ContractError with location info when
/// `expr` is false.  Always enabled (these guards are cheap relative to the
/// algorithms they protect and turn silent corruption into loud failures).
#define RFSM_CHECK(expr, message)                                         \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::rfsm::detail::failCheck(#expr, __FILE__, __LINE__, (message));    \
    }                                                                     \
  } while (false)
