#include "util/fair.hpp"

#include <algorithm>
#include <cmath>

namespace rfsm {

TokenBucket::TokenBucket(double ratePerSec, double burst)
    : rate_(ratePerSec),
      burst_(std::max(burst, 1.0)),
      tokens_(std::max(burst, 1.0)) {}

void TokenBucket::refill(Clock::time_point now) {
  if (last_ == Clock::time_point{}) {
    last_ = now;
    return;
  }
  if (now <= last_) return;
  const double seconds =
      std::chrono::duration<double>(now - last_).count();
  tokens_ = std::min(burst_, tokens_ + seconds * rate_);
  last_ = now;
}

bool TokenBucket::tryTake(double cost, Clock::time_point now) {
  if (rate_ <= 0.0) return true;
  refill(now);
  if (tokens_ + 1e-9 < cost) return false;
  tokens_ -= cost;
  return true;
}

std::int64_t TokenBucket::msUntil(double cost, Clock::time_point now) const {
  if (rate_ <= 0.0) return 0;
  // Project the refill without mutating state (msUntil is a hint on the
  // rejection path, after tryTake already refilled to `now`).
  double tokens = tokens_;
  if (last_ != Clock::time_point{} && now > last_) {
    const double seconds =
        std::chrono::duration<double>(now - last_).count();
    tokens = std::min(burst_, tokens + seconds * rate_);
  }
  if (tokens >= cost) return 0;
  const double seconds = (cost - tokens) / rate_;
  return static_cast<std::int64_t>(std::ceil(seconds * 1000.0));
}

double TokenBucket::tokensAt(Clock::time_point now) const {
  if (rate_ <= 0.0) return burst_;
  // Same non-mutating projection as msUntil.
  double tokens = tokens_;
  if (last_ != Clock::time_point{} && now > last_) {
    const double seconds =
        std::chrono::duration<double>(now - last_).count();
    tokens = std::min(burst_, tokens + seconds * rate_);
  }
  return tokens;
}

void FairScheduler::enqueue(const std::string& flow, int priority,
                            double weight, Item item) {
  auto [it, created] = flows_.try_emplace(flow);
  Flow& f = it->second;
  if (created) {
    f.priority = priority;
    f.weight = std::max(weight, 0.001);
  }
  // An idle flow re-arriving starts from the current virtual time — it
  // competes fairly from now on instead of draining banked credit.
  if (f.queue.empty() && !f.inFlight) f.vtime = std::max(f.vtime, vnow_);
  f.queue.push_back(std::move(item));
  ++depth_;
}

std::optional<FairScheduler::Next> FairScheduler::next() {
  Flow* best = nullptr;
  const std::string* bestName = nullptr;
  for (auto& [name, f] : flows_) {
    if (f.inFlight || f.queue.empty()) continue;
    if (best == nullptr || f.priority < best->priority ||
        (f.priority == best->priority && f.vtime < best->vtime)) {
      best = &f;
      bestName = &name;
    }
  }
  if (best == nullptr) return std::nullopt;
  Next next{*bestName, std::move(best->queue.front())};
  best->queue.pop_front();
  --depth_;
  best->inFlight = true;
  ++inFlight_;
  vnow_ = std::max(vnow_, best->vtime);
  best->vtime += next.item.cost / best->weight;
  return next;
}

void FairScheduler::done(const std::string& flow) {
  const auto it = flows_.find(flow);
  if (it == flows_.end() || !it->second.inFlight) return;
  it->second.inFlight = false;
  --inFlight_;
}

std::size_t FairScheduler::depth() const { return depth_; }

bool FairScheduler::idle() const { return depth_ == 0 && inFlight_ == 0; }

std::vector<FairScheduler::FlowStats> FairScheduler::flowStats() const {
  std::vector<FlowStats> stats;
  stats.reserve(flows_.size());
  for (const auto& [name, f] : flows_)
    stats.push_back({name, f.priority, f.weight, f.vtime, f.queue.size(),
                     f.inFlight});
  return stats;
}

}  // namespace rfsm
