#include "util/fsio.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <string.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <mutex>
#include <unordered_set>

#include "util/chaos.hpp"

namespace rfsm::fsio {
namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw FsError(what + " '" + path + "': " + ::strerror(errno));
}

// Descriptors whose fsync has failed at least once.  A failed fsync means
// the kernel may have discarded the dirty pages, so the descriptor can
// never again be trusted to mean "durable" — it stays latched until the
// number is recycled by a fresh fsio open.
std::mutex dirtyMutex;
std::unordered_set<int>& dirtyFds() {
  static auto* fds = new std::unordered_set<int>();
  return *fds;
}

/// A fresh open recycles the descriptor number: clear any stale latch.
void noteOpened(int fd) {
  std::lock_guard<std::mutex> lock(dirtyMutex);
  dirtyFds().erase(fd);
}

void latchDirty(int fd) {
  std::lock_guard<std::mutex> lock(dirtyMutex);
  dirtyFds().insert(fd);
}

bool isDirty(int fd) {
  std::lock_guard<std::mutex> lock(dirtyMutex);
  return dirtyFds().count(fd) != 0;
}

std::size_t fdOffset(int fd) {
  struct stat st {};
  if (::fstat(fd, &st) != 0) return 0;
  return static_cast<std::size_t>(st.st_size);
}

void fsyncFd(int fd, const std::string& path) {
  if (isDirty(fd))
    throw FsError("cannot fsync '" + path + "' (fd " + std::to_string(fd) +
                  "): an earlier fsync on this descriptor failed, so its "
                  "dirty pages may be lost; reopen and rewrite");
  if (chaos::plane().enabled() && chaos::plane().onFsync()) {
    latchDirty(fd);
    errno = EIO;
    fail("cannot fsync (chaos)", path);
  }
  int rc;
  do {
    rc = ::fsync(fd);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    const int saved = errno;
    latchDirty(fd);
    errno = saved;
    fail("cannot fsync", path);
  }
}

/// The raw retry-on-EINTR write loop, shared by the clean path and the
/// chaos prefixes (which must not re-consult the plane).
void writeAllRaw(int fd, std::string_view bytes, const std::string& path) {
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("cannot write at offset " + std::to_string(fdOffset(fd)), path);
    }
    written += static_cast<std::size_t>(n);
  }
}

void writeAll(int fd, std::string_view bytes, const std::string& path) {
  if (chaos::plane().enabled()) {
    switch (chaos::plane().onDiskWrite()) {
      case chaos::FaultPlane::DiskWriteFault::kNone:
        break;
      case chaos::FaultPlane::DiskWriteFault::kEnospc:
        errno = ENOSPC;
        fail("cannot write (chaos) at offset " + std::to_string(fdOffset(fd)),
             path);
      case chaos::FaultPlane::DiskWriteFault::kEio:
        errno = EIO;
        fail("cannot write (chaos) at offset " + std::to_string(fdOffset(fd)),
             path);
      case chaos::FaultPlane::DiskWriteFault::kShort: {
        // A prefix lands, then the device errors: the caller sees a failed
        // write whose bytes may nonetheless partially exist on disk.
        const std::uint64_t keep = chaos::plane().drawBelow(
            chaos::Site::kDiskWrite, bytes.size() + 1);
        writeAllRaw(fd, bytes.substr(0, static_cast<std::size_t>(keep)),
                    path);
        errno = EIO;
        fail("cannot write (chaos short write, " + std::to_string(keep) +
                 "/" + std::to_string(bytes.size()) + " bytes) at offset " +
                 std::to_string(fdOffset(fd)),
             path);
      }
    }
  }
  writeAllRaw(fd, bytes, path);
}

}  // namespace

std::string parentDir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

void fsyncParentDir(const std::string& path) {
  const std::string dir = parentDir(path);
  ipc::Fd fd(::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC));
  if (!fd.valid()) fail("cannot open directory", dir);
  noteOpened(fd.get());
  fsyncFd(fd.get(), dir);
}

void writeFileDurable(const std::string& path, std::string_view bytes) {
  const std::string temp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  ipc::Fd fd(::open(temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                    0644));
  if (!fd.valid()) fail("cannot create", temp);
  noteOpened(fd.get());
  try {
    writeAll(fd.get(), bytes, temp);
    fsyncFd(fd.get(), temp);
  } catch (...) {
    ::unlink(temp.c_str());
    throw;
  }
  fd.reset();  // close before rename so the data precedes the name
  if (chaos::plane().enabled() && chaos::plane().onRename()) {
    // Torn rename: the process "dies" between the temp fsync and the
    // rename — the target keeps its old bytes, only the temp is lost.
    ::unlink(temp.c_str());
    errno = EIO;
    fail("cannot rename over (chaos torn rename)", path);
  }
  if (::rename(temp.c_str(), path.c_str()) != 0) {
    ::unlink(temp.c_str());
    fail("cannot rename over", path);
  }
  fsyncParentDir(path);
}

ipc::Fd openAppend(const std::string& path) {
  // O_EXCL first so we know whether the open *created* the file (and the
  // parent directory therefore needs an fsync for the name to survive).
  ipc::Fd fd(::open(path.c_str(),
                    O_WRONLY | O_APPEND | O_CREAT | O_EXCL | O_CLOEXEC,
                    0644));
  if (fd.valid()) {
    noteOpened(fd.get());
    fsyncParentDir(path);
    return fd;
  }
  if (errno != EEXIST) fail("cannot create", path);
  fd = ipc::Fd(::open(path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC));
  if (!fd.valid()) fail("cannot open", path);
  noteOpened(fd.get());
  return fd;
}

void appendDurable(int fd, const std::string& path, std::string_view bytes) {
  const std::size_t offset = fdOffset(fd);
  if (isDirty(fd))
    throw FsError("cannot append to '" + path + "' at offset " +
                  std::to_string(offset) + " (fd " + std::to_string(fd) +
                  "): an earlier fsync on this descriptor failed; reopen "
                  "and rewrite");
  if (chaos::plane().enabled()) {
    if (const std::optional<double> cut = chaos::plane().onAppend()) {
      // Simulated power loss mid-append: a prefix of the record reaches
      // the file, then the descriptor is latched dirty so nothing further
      // lands after the torn tail (recovery trusts everything *before*
      // the tear, so appending past it would corrupt the middle of the
      // log).  The caller reopens and rewrites from trusted state.
      const auto keep = static_cast<std::size_t>(
          *cut * static_cast<double>(bytes.size()));
      writeAllRaw(fd, bytes.substr(0, keep), path);
      latchDirty(fd);
      errno = EIO;
      fail("cannot append (chaos power-loss truncation, kept " +
               std::to_string(keep) + "/" + std::to_string(bytes.size()) +
               " bytes) at offset " + std::to_string(offset),
           path);
    }
  }
  writeAll(fd, bytes, path);
  fsyncFd(fd, path);
}

std::optional<std::string> readFileIfExists(const std::string& path) {
  ipc::Fd fd(::open(path.c_str(), O_RDONLY | O_CLOEXEC));
  if (!fd.valid()) {
    if (errno == ENOENT) return std::nullopt;
    fail("cannot open", path);
  }
  std::string bytes;
  char buffer[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd.get(), buffer, sizeof buffer);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("cannot read", path);
    }
    if (n == 0) break;
    bytes.append(buffer, static_cast<std::size_t>(n));
  }
  return bytes;
}

void makeDirs(const std::string& path) {
  if (path.empty() || path == "/" || path == ".") return;
  std::string prefix;
  std::size_t pos = 0;
  while (pos <= path.size()) {
    const std::size_t slash = path.find('/', pos);
    prefix = slash == std::string::npos ? path : path.substr(0, slash);
    pos = slash == std::string::npos ? path.size() + 1 : slash + 1;
    if (prefix.empty()) continue;
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST)
      fail("cannot create directory", prefix);
  }
}

std::vector<std::string> listDir(const std::string& dir) {
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) fail("cannot list directory", dir);
  std::vector<std::string> names;
  for (;;) {
    errno = 0;
    dirent* entry = ::readdir(handle);
    if (entry == nullptr) {
      const int err = errno;
      ::closedir(handle);
      if (err != 0) {
        errno = err;
        fail("cannot read directory", dir);
      }
      break;
    }
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    struct stat st {};
    if (::stat((dir + "/" + name).c_str(), &st) == 0 && S_ISREG(st.st_mode))
      names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

void removeFileDurable(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT)
    fail("cannot unlink", path);
  fsyncParentDir(path);
}

void renameDurable(const std::string& path, const std::string& newPath) {
  if (::rename(path.c_str(), newPath.c_str()) != 0)
    fail("cannot rename", path);
  fsyncParentDir(newPath);
}

}  // namespace rfsm::fsio
