#include "util/fsio.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <string.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>

namespace rfsm::fsio {
namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw FsError(what + " '" + path + "': " + ::strerror(errno));
}

void fsyncFd(int fd, const std::string& path) {
  int rc;
  do {
    rc = ::fsync(fd);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) fail("cannot fsync", path);
}

void writeAll(int fd, std::string_view bytes, const std::string& path) {
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("cannot write", path);
    }
    written += static_cast<std::size_t>(n);
  }
}

}  // namespace

std::string parentDir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

void fsyncParentDir(const std::string& path) {
  const std::string dir = parentDir(path);
  ipc::Fd fd(::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC));
  if (!fd.valid()) fail("cannot open directory", dir);
  fsyncFd(fd.get(), dir);
}

void writeFileDurable(const std::string& path, std::string_view bytes) {
  const std::string temp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  ipc::Fd fd(::open(temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                    0644));
  if (!fd.valid()) fail("cannot create", temp);
  try {
    writeAll(fd.get(), bytes, temp);
    fsyncFd(fd.get(), temp);
  } catch (...) {
    ::unlink(temp.c_str());
    throw;
  }
  fd.reset();  // close before rename so the data precedes the name
  if (::rename(temp.c_str(), path.c_str()) != 0) {
    ::unlink(temp.c_str());
    fail("cannot rename over", path);
  }
  fsyncParentDir(path);
}

ipc::Fd openAppend(const std::string& path) {
  // O_EXCL first so we know whether the open *created* the file (and the
  // parent directory therefore needs an fsync for the name to survive).
  ipc::Fd fd(::open(path.c_str(),
                    O_WRONLY | O_APPEND | O_CREAT | O_EXCL | O_CLOEXEC,
                    0644));
  if (fd.valid()) {
    fsyncParentDir(path);
    return fd;
  }
  if (errno != EEXIST) fail("cannot create", path);
  fd = ipc::Fd(::open(path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC));
  if (!fd.valid()) fail("cannot open", path);
  return fd;
}

void appendDurable(int fd, std::string_view bytes) {
  const std::string label = "append fd " + std::to_string(fd);
  writeAll(fd, bytes, label);
  fsyncFd(fd, label);
}

std::optional<std::string> readFileIfExists(const std::string& path) {
  ipc::Fd fd(::open(path.c_str(), O_RDONLY | O_CLOEXEC));
  if (!fd.valid()) {
    if (errno == ENOENT) return std::nullopt;
    fail("cannot open", path);
  }
  std::string bytes;
  char buffer[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd.get(), buffer, sizeof buffer);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("cannot read", path);
    }
    if (n == 0) break;
    bytes.append(buffer, static_cast<std::size_t>(n));
  }
  return bytes;
}

void makeDirs(const std::string& path) {
  if (path.empty() || path == "/" || path == ".") return;
  std::string prefix;
  std::size_t pos = 0;
  while (pos <= path.size()) {
    const std::size_t slash = path.find('/', pos);
    prefix = slash == std::string::npos ? path : path.substr(0, slash);
    pos = slash == std::string::npos ? path.size() + 1 : slash + 1;
    if (prefix.empty()) continue;
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST)
      fail("cannot create directory", prefix);
  }
}

std::vector<std::string> listDir(const std::string& dir) {
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) fail("cannot list directory", dir);
  std::vector<std::string> names;
  for (;;) {
    errno = 0;
    dirent* entry = ::readdir(handle);
    if (entry == nullptr) {
      const int err = errno;
      ::closedir(handle);
      if (err != 0) {
        errno = err;
        fail("cannot read directory", dir);
      }
      break;
    }
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    struct stat st {};
    if (::stat((dir + "/" + name).c_str(), &st) == 0 && S_ISREG(st.st_mode))
      names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

void removeFileDurable(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT)
    fail("cannot unlink", path);
  fsyncParentDir(path);
}

void renameDurable(const std::string& path, const std::string& newPath) {
  if (::rename(path.c_str(), newPath.c_str()) != 0)
    fail("cannot rename", path);
  fsyncParentDir(newPath);
}

}  // namespace rfsm::fsio
