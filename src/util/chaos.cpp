#include "util/chaos.hpp"

#include <cstdlib>

#include "util/metrics.hpp"

namespace rfsm::chaos {
namespace {

bool isDiskSite(Site site) {
  switch (site) {
    case Site::kDiskWrite:
    case Site::kDiskFsync:
    case Site::kDiskRename:
    case Site::kDiskAppend:
      return true;
    case Site::kNetConnect:
    case Site::kNetWrite:
    case Site::kNetRead:
    case Site::kReplConnect:
    case Site::kReplWrite:
    case Site::kReplRead:
      return false;
  }
  return false;
}

/// Depth, not a flag: the replicator may nest scopes across retry layers.
thread_local int replLinkDepth = 0;

Profile diskLight() {
  Profile p;
  p.name = "disk-light";
  p.diskErrorProbability = 0.02;
  p.shortWriteProbability = 0.02;
  p.fsyncFailProbability = 0.01;
  p.tornRenameProbability = 0.02;
  p.truncateProbability = 0.03;
  return p;
}

Profile diskStorm() {
  Profile p;
  p.name = "disk-storm";
  p.diskErrorProbability = 0.10;
  p.shortWriteProbability = 0.10;
  p.fsyncFailProbability = 0.05;
  p.tornRenameProbability = 0.10;
  p.truncateProbability = 0.15;
  return p;
}

Profile netLight() {
  Profile p;
  p.name = "net-light";
  p.connectResetProbability = 0.03;
  p.resetProbability = 0.03;
  p.partialWriteProbability = 0.03;
  p.stallProbability = 0.02;
  p.duplicateProbability = 0.03;
  p.corruptProbability = 0.03;
  return p;
}

Profile netStorm() {
  Profile p;
  p.name = "net-storm";
  p.connectResetProbability = 0.10;
  p.resetProbability = 0.10;
  p.partialWriteProbability = 0.10;
  p.stallProbability = 0.05;
  p.duplicateProbability = 0.10;
  p.corruptProbability = 0.10;
  return p;
}

Profile replLight() {
  Profile p;
  p.name = "repl-light";
  p.replConnectResetProbability = 0.03;
  p.replResetProbability = 0.03;
  p.replPartialWriteProbability = 0.03;
  p.replStallProbability = 0.02;
  p.replDuplicateProbability = 0.03;
  p.replCorruptProbability = 0.03;
  return p;
}

Profile replStorm() {
  Profile p;
  p.name = "repl-storm";
  p.replConnectResetProbability = 0.10;
  p.replResetProbability = 0.10;
  p.replPartialWriteProbability = 0.10;
  p.replStallProbability = 0.05;
  p.replDuplicateProbability = 0.10;
  p.replCorruptProbability = 0.10;
  return p;
}

Profile fullProfile() {
  Profile disk = diskLight();
  Profile net = netLight();
  Profile repl = replLight();
  Profile p = disk;
  p.name = "full";
  p.connectResetProbability = net.connectResetProbability;
  p.resetProbability = net.resetProbability;
  p.partialWriteProbability = net.partialWriteProbability;
  p.stallProbability = net.stallProbability;
  p.duplicateProbability = net.duplicateProbability;
  p.corruptProbability = net.corruptProbability;
  p.replConnectResetProbability = repl.replConnectResetProbability;
  p.replResetProbability = repl.replResetProbability;
  p.replPartialWriteProbability = repl.replPartialWriteProbability;
  p.replStallProbability = repl.replStallProbability;
  p.replDuplicateProbability = repl.replDuplicateProbability;
  p.replCorruptProbability = repl.replCorruptProbability;
  return p;
}

}  // namespace

std::optional<Profile> profileByName(const std::string& name) {
  if (name == "off") return Profile{};
  if (name == "disk-light") return diskLight();
  if (name == "disk-storm") return diskStorm();
  if (name == "net-light") return netLight();
  if (name == "net-storm") return netStorm();
  if (name == "repl-light") return replLight();
  if (name == "repl-storm") return replStorm();
  if (name == "full") return fullProfile();
  return std::nullopt;
}

const std::vector<std::string>& profileNames() {
  static const std::vector<std::string> names = {
      "off",       "disk-light", "disk-storm", "net-light",
      "net-storm", "repl-light", "repl-storm", "full"};
  return names;
}

ScopedReplLink::ScopedReplLink() { ++replLinkDepth; }
ScopedReplLink::~ScopedReplLink() { --replLinkDepth; }

bool onReplLink() { return replLinkDepth > 0; }

void FaultPlane::arm(std::uint64_t seed, const Profile& profile) {
  std::lock_guard<std::mutex> lock(mutex_);
  seed_ = seed;
  profile_ = profile;
  streams_.clear();
  draws_.assign(kSiteCount, 0);
  const Rng root(seed);
  for (std::size_t site = 0; site < kSiteCount; ++site) {
    streams_.push_back(root.substream(site));
  }
  injectedDisk_ = 0;
  injectedNet_ = 0;
  journal_.clear();
  enabled_.store(true, std::memory_order_relaxed);
}

void FaultPlane::armFromSpec(const std::string& spec) {
  const std::size_t colon = spec.find(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= spec.size()) {
    throw Error("chaos spec '" + spec + "' is not of the form <seed>:<profile>");
  }
  std::uint64_t seed = 0;
  try {
    std::size_t used = 0;
    seed = std::stoull(spec.substr(0, colon), &used, 10);
    if (used != colon) throw std::invalid_argument(spec);
  } catch (const std::exception&) {
    throw Error("chaos seed '" + spec.substr(0, colon) +
                "' is not an unsigned integer");
  }
  const std::string name = spec.substr(colon + 1);
  const std::optional<Profile> profile = profileByName(name);
  if (!profile) {
    std::string known;
    for (const std::string& candidate : profileNames()) {
      if (!known.empty()) known += ", ";
      known += candidate;
    }
    throw Error("unknown chaos profile '" + name + "' (known: " + known + ")");
  }
  arm(seed, *profile);
}

bool FaultPlane::armFromEnv() {
  const char* spec = std::getenv("RFSM_CHAOS");
  if (spec == nullptr || *spec == '\0') return false;
  armFromSpec(spec);
  return true;
}

void FaultPlane::disarm() {
  std::lock_guard<std::mutex> lock(mutex_);
  enabled_.store(false, std::memory_order_relaxed);
}

std::uint64_t FaultPlane::seed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return seed_;
}

Profile FaultPlane::profile() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return profile_;
}

// Draws happen unconditionally (per-site ordinals keep counting) so the
// schedule never depends on how many faults already fired; the budget only
// suppresses the *injection*.
bool FaultPlane::fire(Site site, double probability, std::uint32_t kind) {
  const std::size_t index = static_cast<std::size_t>(site);
  const std::uint64_t ordinal = draws_[index];
  const bool hit = streams_[index].chance(probability);
  if (!hit) return false;
  if (injectedDisk_ + injectedNet_ >= profile_.maxFaults) return false;
  if (isDiskSite(site)) {
    ++injectedDisk_;
    metrics::counter(metrics::kServiceChaosDiskFaults).add();
  } else {
    ++injectedNet_;
    metrics::counter(metrics::kServiceChaosNetFaults).add();
  }
  journal_.push_back(Event{site, kind, ordinal});
  return true;
}

FaultPlane::DiskWriteFault FaultPlane::onDiskWrite() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (streams_.empty()) return DiskWriteFault::kNone;
  const std::size_t index = static_cast<std::size_t>(Site::kDiskWrite);
  // One uniform draw decides the fault kind so the ordinal advances exactly
  // once per consultation regardless of outcome.
  const double roll = streams_[index].uniform();
  ++draws_[index];
  DiskWriteFault fault = DiskWriteFault::kNone;
  const Profile& p = profile_;
  if (roll < p.diskErrorProbability / 2.0) {
    fault = DiskWriteFault::kEnospc;
  } else if (roll < p.diskErrorProbability) {
    fault = DiskWriteFault::kEio;
  } else if (roll < p.diskErrorProbability + p.shortWriteProbability) {
    fault = DiskWriteFault::kShort;
  }
  if (fault == DiskWriteFault::kNone) return fault;
  if (injectedDisk_ + injectedNet_ >= p.maxFaults) return DiskWriteFault::kNone;
  ++injectedDisk_;
  metrics::counter(metrics::kServiceChaosDiskFaults).add();
  journal_.push_back(Event{Site::kDiskWrite,
                           static_cast<std::uint32_t>(fault),
                           draws_[index] - 1});
  return fault;
}

bool FaultPlane::onFsync() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (streams_.empty()) return false;
  const bool hit = fire(Site::kDiskFsync, profile_.fsyncFailProbability, 1);
  ++draws_[static_cast<std::size_t>(Site::kDiskFsync)];
  return hit;
}

bool FaultPlane::onRename() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (streams_.empty()) return false;
  const bool hit = fire(Site::kDiskRename, profile_.tornRenameProbability, 1);
  ++draws_[static_cast<std::size_t>(Site::kDiskRename)];
  return hit;
}

std::optional<double> FaultPlane::onAppend() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (streams_.empty()) return std::nullopt;
  const std::size_t index = static_cast<std::size_t>(Site::kDiskAppend);
  const bool hit = fire(Site::kDiskAppend, profile_.truncateProbability, 1);
  // The cut position draws from the same stream whether or not the fault
  // fires, keeping subsequent ordinals aligned across replays.
  const double fraction = streams_[index].uniform();
  draws_[index] += 2;
  if (!hit) return std::nullopt;
  return fraction;
}

FaultPlane::NetWriteFault FaultPlane::onNetWrite() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (streams_.empty()) return NetWriteFault::kNone;
  const bool repl = onReplLink();
  const Site site = repl ? Site::kReplWrite : Site::kNetWrite;
  const std::size_t index = static_cast<std::size_t>(site);
  const double roll = streams_[index].uniform();
  ++draws_[index];
  const Profile& p = profile_;
  NetWriteFault fault = NetWriteFault::kNone;
  double edge = repl ? p.replResetProbability : p.resetProbability;
  if (roll < edge) {
    fault = NetWriteFault::kReset;
  } else if (roll < (edge += repl ? p.replPartialWriteProbability
                                  : p.partialWriteProbability)) {
    fault = NetWriteFault::kPartial;
  } else if (roll <
             (edge += repl ? p.replStallProbability : p.stallProbability)) {
    fault = NetWriteFault::kStall;
  } else if (roll < (edge += repl ? p.replDuplicateProbability
                                  : p.duplicateProbability)) {
    fault = NetWriteFault::kDuplicate;
  } else if (roll <
             (edge += repl ? p.replCorruptProbability
                           : p.corruptProbability)) {
    fault = NetWriteFault::kCorrupt;
  }
  if (fault == NetWriteFault::kNone) return fault;
  if (injectedDisk_ + injectedNet_ >= p.maxFaults) return NetWriteFault::kNone;
  ++injectedNet_;
  metrics::counter(metrics::kServiceChaosNetFaults).add();
  journal_.push_back(Event{site,
                           static_cast<std::uint32_t>(fault),
                           draws_[index] - 1});
  return fault;
}

FaultPlane::NetReadFault FaultPlane::onNetRead() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (streams_.empty()) return NetReadFault::kNone;
  const bool repl = onReplLink();
  const Site site = repl ? Site::kReplRead : Site::kNetRead;
  const std::size_t index = static_cast<std::size_t>(site);
  const double roll = streams_[index].uniform();
  ++draws_[index];
  const Profile& p = profile_;
  const double stall = repl ? p.replStallProbability : p.stallProbability;
  const double reset = repl ? p.replResetProbability : p.resetProbability;
  NetReadFault fault = NetReadFault::kNone;
  if (roll < stall) {
    fault = NetReadFault::kStall;
  } else if (roll < stall + reset) {
    fault = NetReadFault::kReset;
  }
  if (fault == NetReadFault::kNone) return fault;
  if (injectedDisk_ + injectedNet_ >= p.maxFaults) return NetReadFault::kNone;
  ++injectedNet_;
  metrics::counter(metrics::kServiceChaosNetFaults).add();
  journal_.push_back(Event{site,
                           static_cast<std::uint32_t>(fault),
                           draws_[index] - 1});
  return fault;
}

bool FaultPlane::onConnect() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (streams_.empty()) return false;
  const bool repl = onReplLink();
  const Site site = repl ? Site::kReplConnect : Site::kNetConnect;
  const bool hit = fire(site,
                        repl ? profile_.replConnectResetProbability
                             : profile_.connectResetProbability,
                        1);
  ++draws_[static_cast<std::size_t>(site)];
  return hit;
}

std::uint64_t FaultPlane::drawBelow(Site site, std::uint64_t bound) {
  RFSM_CHECK(bound > 0, "chaos drawBelow bound must be positive");
  // Positioning draws follow the decision draw onto the repl twin, so the
  // client-facing streams never advance for replication-link traffic.
  if (onReplLink()) {
    if (site == Site::kNetWrite) site = Site::kReplWrite;
    if (site == Site::kNetRead) site = Site::kReplRead;
    if (site == Site::kNetConnect) site = Site::kReplConnect;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (streams_.empty()) return 0;
  const std::size_t index = static_cast<std::size_t>(site);
  ++draws_[index];
  return streams_[index].below(bound);
}

std::uint64_t FaultPlane::injectedDisk() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return injectedDisk_;
}

std::uint64_t FaultPlane::injectedNet() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return injectedNet_;
}

std::uint64_t FaultPlane::journalDigest() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t hash = 1469598103934665603ull;  // FNV-1a offset basis
  const auto mix = [&hash](std::uint64_t value) {
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (value >> (byte * 8)) & 0xffu;
      hash *= 1099511628211ull;
    }
  };
  for (const Event& event : journal_) {
    mix(static_cast<std::uint64_t>(event.site));
    mix(event.kind);
    mix(event.ordinal);
  }
  return hash;
}

std::vector<Event> FaultPlane::journal() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return journal_;
}

FaultPlane& plane() {
  static FaultPlane* instance = new FaultPlane();
  return *instance;
}

}  // namespace rfsm::chaos
