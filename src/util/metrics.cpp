#include "util/metrics.hpp"

#include <atomic>
#include <map>
#include <mutex>
#include <sstream>

#include "util/table.hpp"

namespace rfsm::metrics {
namespace {

struct Registry {
  std::mutex mutex;
  // std::map: node addresses are stable, so returned references outlive
  // later insertions.
  std::map<std::string, Counter> counters;
  std::map<std::string, Gauge> gauges;
  std::map<std::string, Timer> timers;
  std::map<std::string, Histogram> histograms;
  std::map<std::string, RollingHistogram> rollings;
};

Registry& registry() {
  static Registry instance;
  return instance;
}

std::atomic_ref<std::uint64_t> atomicRef(std::uint64_t& value) {
  return std::atomic_ref<std::uint64_t>(value);
}

}  // namespace

void Counter::add(std::uint64_t n) {
  atomicRef(value_).fetch_add(n, std::memory_order_relaxed);
}

std::uint64_t Counter::value() const {
  return atomicRef(const_cast<std::uint64_t&>(value_))
      .load(std::memory_order_relaxed);
}

void Counter::reset() {
  atomicRef(value_).store(0, std::memory_order_relaxed);
}

namespace {

std::atomic_ref<std::int64_t> atomicRefSigned(std::int64_t& value) {
  return std::atomic_ref<std::int64_t>(value);
}

}  // namespace

void Gauge::set(std::int64_t value) {
  atomicRefSigned(value_).store(value, std::memory_order_relaxed);
  atomicRef(writes_).fetch_add(1, std::memory_order_relaxed);
}

void Gauge::add(std::int64_t delta) {
  atomicRefSigned(value_).fetch_add(delta, std::memory_order_relaxed);
  atomicRef(writes_).fetch_add(1, std::memory_order_relaxed);
}

std::int64_t Gauge::value() const {
  return atomicRefSigned(const_cast<std::int64_t&>(value_))
      .load(std::memory_order_relaxed);
}

bool Gauge::touched() const {
  return atomicRef(const_cast<std::uint64_t&>(writes_))
             .load(std::memory_order_relaxed) != 0;
}

void Gauge::reset() {
  atomicRefSigned(value_).store(0, std::memory_order_relaxed);
  atomicRef(writes_).store(0, std::memory_order_relaxed);
}

void Timer::record(std::chrono::nanoseconds elapsed) {
  atomicRef(count_).fetch_add(1, std::memory_order_relaxed);
  atomicRef(totalNs_).fetch_add(
      static_cast<std::uint64_t>(elapsed.count() < 0 ? 0 : elapsed.count()),
      std::memory_order_relaxed);
}

std::uint64_t Timer::count() const {
  return atomicRef(const_cast<std::uint64_t&>(count_))
      .load(std::memory_order_relaxed);
}

std::chrono::nanoseconds Timer::total() const {
  return std::chrono::nanoseconds(
      atomicRef(const_cast<std::uint64_t&>(totalNs_))
          .load(std::memory_order_relaxed));
}

void Timer::reset() {
  atomicRef(count_).store(0, std::memory_order_relaxed);
  atomicRef(totalNs_).store(0, std::memory_order_relaxed);
}

ScopedTimer::ScopedTimer(Timer& timer)
    : timer_(timer), start_(std::chrono::steady_clock::now()) {}

ScopedTimer::~ScopedTimer() {
  timer_.record(std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::steady_clock::now() - start_));
}

Counter& counter(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  return r.counters[name];
}

Timer& timer(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  return r.timers[name];
}

Histogram& histogram(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  return r.histograms[name];
}

Gauge& gauge(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  return r.gauges[name];
}

RollingHistogram& rolling(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  return r.rollings[name];
}

namespace {

double nsToMs(std::uint64_t ns) { return static_cast<double>(ns) / 1e6; }

}  // namespace

Snapshot snapshot() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  Snapshot snap;
  for (const auto& [name, c] : r.counters)
    if (c.value() != 0) snap.counters.push_back({name, c.value()});
  for (const auto& [name, g] : r.gauges)
    if (g.touched()) snap.gauges.push_back({name, g.value()});
  for (const auto& [name, t] : r.timers)
    if (t.count() != 0)
      snap.timers.push_back(
          {name, t.count(),
           static_cast<double>(t.total().count()) / 1e6});
  for (const auto& [name, h] : r.histograms)
    if (h.count() != 0)
      snap.histograms.push_back({name, h.count(), nsToMs(h.quantile(0.5)),
                                 nsToMs(h.quantile(0.9)),
                                 nsToMs(h.quantile(0.99)),
                                 nsToMs(h.max())});
  for (const auto& [name, w] : r.rollings) {
    const RollingHistogram::Stats stats = w.stats();
    if (stats.count != 0)
      snap.rolling.push_back({name, stats.count, nsToMs(stats.p50),
                              nsToMs(stats.p90), nsToMs(stats.p99),
                              nsToMs(stats.max),
                              static_cast<std::int64_t>(w.window().count())});
  }
  return snap;  // std::map iteration is already name-sorted
}

void resetAll() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  for (auto& [name, c] : r.counters) c.reset();
  for (auto& [name, g] : r.gauges) g.reset();
  for (auto& [name, t] : r.timers) t.reset();
  for (auto& [name, h] : r.histograms) h.reset();
  for (auto& [name, w] : r.rollings) w.reset();
}

std::string toMarkdown(const Snapshot& snapshot) {
  if (snapshot.empty()) return "";
  std::ostringstream os;
  if (!snapshot.counters.empty()) {
    Table table({"counter", "value"});
    for (const CounterSample& c : snapshot.counters)
      table.addRow({c.name, std::to_string(c.value)});
    os << table.toMarkdown();

    std::uint64_t hits = 0, misses = 0;
    std::uint64_t planHits = 0, planMisses = 0;
    for (const CounterSample& c : snapshot.counters) {
      if (c.name == kBfsCacheHits) hits = c.value;
      if (c.name == kBfsCacheMisses) misses = c.value;
      if (c.name == kServicePlanCacheHits) planHits = c.value;
      if (c.name == kServicePlanCacheMisses) planMisses = c.value;
    }
    auto rate = [](std::uint64_t h, std::uint64_t m) {
      std::ostringstream out;
      out.setf(std::ios::fixed);
      out.precision(1);
      out << (100.0 * static_cast<double>(h) / static_cast<double>(h + m));
      return out.str();
    };
    if (hits + misses > 0)
      os << "BFS cache hit rate: " << rate(hits, misses) << "%\n";
    if (planHits + planMisses > 0)
      os << "Plan cache hit rate: " << rate(planHits, planMisses) << "%\n";
  }
  if (!snapshot.gauges.empty()) {
    if (!snapshot.counters.empty()) os << "\n";
    Table table({"gauge", "value"});
    for (const GaugeSample& g : snapshot.gauges)
      table.addRow({g.name, std::to_string(g.value)});
    os << table.toMarkdown();
  }
  if (!snapshot.timers.empty()) {
    if (!snapshot.counters.empty() || !snapshot.gauges.empty()) os << "\n";
    Table table({"timer", "calls", "total ms", "mean ms"});
    for (const TimerSample& t : snapshot.timers) {
      std::ostringstream total, mean;
      total.setf(std::ios::fixed);
      total.precision(3);
      total << t.totalMs;
      mean.setf(std::ios::fixed);
      mean.precision(3);
      mean << (t.totalMs / static_cast<double>(t.count));
      table.addRow({t.name, std::to_string(t.count), total.str(),
                    mean.str()});
    }
    os << table.toMarkdown();
  }
  auto fixed = [](double value) {
    std::ostringstream cell;
    cell.setf(std::ios::fixed);
    cell.precision(3);
    cell << value;
    return cell.str();
  };
  if (!snapshot.histograms.empty()) {
    if (!snapshot.counters.empty() || !snapshot.gauges.empty() ||
        !snapshot.timers.empty())
      os << "\n";
    Table table({"histogram", "count", "p50 ms", "p90 ms", "p99 ms",
                 "max ms"});
    for (const HistogramSample& h : snapshot.histograms)
      table.addRow({h.name, std::to_string(h.count), fixed(h.p50Ms),
                    fixed(h.p90Ms), fixed(h.p99Ms), fixed(h.maxMs)});
    os << table.toMarkdown();
  }
  if (!snapshot.rolling.empty()) {
    if (!snapshot.counters.empty() || !snapshot.gauges.empty() ||
        !snapshot.timers.empty() || !snapshot.histograms.empty())
      os << "\n";
    Table table({"rolling", "window s", "count", "p50 ms", "p90 ms",
                 "p99 ms", "max ms"});
    for (const RollingSample& w : snapshot.rolling)
      table.addRow({w.name, std::to_string(w.windowMs / 1000),
                    std::to_string(w.count), fixed(w.p50Ms), fixed(w.p90Ms),
                    fixed(w.p99Ms), fixed(w.maxMs)});
    os << table.toMarkdown();
  }
  return os.str();
}

namespace {

std::string fixedMs(double ms) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  os << ms;
  return os.str();
}

/// Escapes a metric name for JSON (names are ASCII identifiers with dots,
/// but be defensive about quotes and backslashes).
std::string jsonEscape(const std::string& name) {
  std::string out;
  for (char c : name) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

/// RFC 4180 field quoting: fields containing commas, quotes, or line
/// breaks are wrapped in double quotes with embedded quotes doubled.
std::string csvField(const std::string& field) {
  if (field.find_first_of(",\"\r\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string toCsv(const Snapshot& snapshot) {
  if (snapshot.empty()) return "";
  std::ostringstream os;
  os << "kind,name,value,count,total_ms,p50_ms,p90_ms,p99_ms,max_ms\n";
  for (const CounterSample& c : snapshot.counters)
    os << "counter," << csvField(c.name) << "," << c.value << ",,,,,,\n";
  for (const GaugeSample& g : snapshot.gauges)
    os << "gauge," << csvField(g.name) << "," << g.value << ",,,,,,\n";
  for (const TimerSample& t : snapshot.timers)
    os << "timer," << csvField(t.name) << ",," << t.count << ","
       << fixedMs(t.totalMs) << ",,,,\n";
  for (const HistogramSample& h : snapshot.histograms)
    os << "histogram," << csvField(h.name) << ",," << h.count << ",,"
       << fixedMs(h.p50Ms) << "," << fixedMs(h.p90Ms) << ","
       << fixedMs(h.p99Ms) << "," << fixedMs(h.maxMs) << "\n";
  // Rolling rows reuse the histogram columns; the window length rides in
  // the otherwise-unused `value` column (milliseconds).
  for (const RollingSample& w : snapshot.rolling)
    os << "rolling," << csvField(w.name) << "," << w.windowMs << ","
       << w.count << ",," << fixedMs(w.p50Ms) << "," << fixedMs(w.p90Ms)
       << "," << fixedMs(w.p99Ms) << "," << fixedMs(w.maxMs) << "\n";
  return os.str();
}

std::string toJson(const Snapshot& snapshot) {
  if (snapshot.empty()) return "";
  std::ostringstream os;
  os << "{\"counters\": {";
  for (std::size_t k = 0; k < snapshot.counters.size(); ++k) {
    if (k > 0) os << ", ";
    os << "\"" << jsonEscape(snapshot.counters[k].name)
       << "\": " << snapshot.counters[k].value;
  }
  os << "}, \"gauges\": {";
  for (std::size_t k = 0; k < snapshot.gauges.size(); ++k) {
    if (k > 0) os << ", ";
    os << "\"" << jsonEscape(snapshot.gauges[k].name)
       << "\": " << snapshot.gauges[k].value;
  }
  os << "}, \"timers\": {";
  for (std::size_t k = 0; k < snapshot.timers.size(); ++k) {
    if (k > 0) os << ", ";
    os << "\"" << jsonEscape(snapshot.timers[k].name) << "\": {\"count\": "
       << snapshot.timers[k].count << ", \"total_ms\": "
       << fixedMs(snapshot.timers[k].totalMs) << "}";
  }
  os << "}, \"histograms\": {";
  for (std::size_t k = 0; k < snapshot.histograms.size(); ++k) {
    const HistogramSample& h = snapshot.histograms[k];
    if (k > 0) os << ", ";
    os << "\"" << jsonEscape(h.name) << "\": {\"count\": " << h.count
       << ", \"p50_ms\": " << fixedMs(h.p50Ms)
       << ", \"p90_ms\": " << fixedMs(h.p90Ms)
       << ", \"p99_ms\": " << fixedMs(h.p99Ms)
       << ", \"max_ms\": " << fixedMs(h.maxMs) << "}";
  }
  os << "}, \"rolling\": {";
  for (std::size_t k = 0; k < snapshot.rolling.size(); ++k) {
    const RollingSample& w = snapshot.rolling[k];
    if (k > 0) os << ", ";
    os << "\"" << jsonEscape(w.name) << "\": {\"count\": " << w.count
       << ", \"p50_ms\": " << fixedMs(w.p50Ms)
       << ", \"p90_ms\": " << fixedMs(w.p90Ms)
       << ", \"p99_ms\": " << fixedMs(w.p99Ms)
       << ", \"max_ms\": " << fixedMs(w.maxMs)
       << ", \"window_ms\": " << w.windowMs << "}";
  }
  os << "}}\n";
  return os.str();
}

std::vector<std::string> canonicalNames() {
  return {
      kDecodeCalls,
      kProgramsValidated,
      kBfsCacheHits,
      kBfsCacheMisses,
      kBfsPoolReuses,
      kDecodeLatency,
      kInstanceLatency,
      kVerifyLatency,
      kGenerationLatency,
      kTraceDropped,
      kServiceRequests,
      kServiceShards,
      kServiceShardRetries,
      kServiceWorkerCrashes,
      kServiceWorkerRestarts,
      kServiceShed,
      kServiceDeadlineExceeded,
      kServiceDegraded,
      kServiceWorkerCacheHits,
      kServiceWorkerCacheMisses,
      kServiceWorkersPreforked,
      kServicePlanCacheHits,
      kServicePlanCacheMisses,
      kServicePlanCacheEvictions,
      kServicePlanCachePoisoned,
      kFabricShards,
      kFabricRerouted,
      kFabricHedged,
      kFabricHedgeWins,
      kFabricBreakerTrips,
      kFabricQuorumMismatch,
      kFabricDegraded,
      kBatchInstanceFailures,
      kBatchCancelled,
      kServiceRequestLatency,
      kServiceShardLatency,
      kSessionOpened,
      kSessionResumed,
      kSessionMutationsAccepted,
      kSessionMutationsRejected,
      kSessionPlans,
      kSessionDeltasCompacted,
      kSessionSnapshots,
      kSessionsRecovered,
      kSessionsQuarantined,
      kSessionsDrained,
      kServiceDrainedRequests,
      kSessionMutateLatency,
      kSessionPlanLatency,
      kFaultsInjected,
      kFaultsDetected,
      kIntegrityScans,
      kConformanceRuns,
      kVerifierCacheHits,
      kRecoveryResumes,
      kRecoveryPatches,
      kRecoveryRollbacks,
      kServiceStatsRequests,
      kServiceTraceDumps,
      kServiceWorkersAlive,
      kServiceQueueDepth,
      kServicePlanCacheSize,
      kSessionsOpenGauge,
      kSessionSchedulerDepth,
      kServiceRequestWindow,
      kSessionMutateWindow,
      kServiceChaosDiskFaults,
      kServiceChaosNetFaults,
      kServiceFramesRejected,
      kServiceReplRecordsShipped,
      kServiceReplSnapshotsShipped,
      kServiceReplShipErrors,
      kServiceReplLagRecords,
      kServiceReplLagMs,
      kServiceFailovers,
      kServiceStaleEpochRejected,
  };
}

}  // namespace rfsm::metrics
