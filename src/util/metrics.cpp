#include "util/metrics.hpp"

#include <atomic>
#include <map>
#include <mutex>
#include <sstream>

#include "util/table.hpp"

namespace rfsm::metrics {
namespace {

struct Registry {
  std::mutex mutex;
  // std::map: node addresses are stable, so returned references outlive
  // later insertions.
  std::map<std::string, Counter> counters;
  std::map<std::string, Timer> timers;
};

Registry& registry() {
  static Registry instance;
  return instance;
}

std::atomic_ref<std::uint64_t> atomicRef(std::uint64_t& value) {
  return std::atomic_ref<std::uint64_t>(value);
}

}  // namespace

void Counter::add(std::uint64_t n) {
  atomicRef(value_).fetch_add(n, std::memory_order_relaxed);
}

std::uint64_t Counter::value() const {
  return atomicRef(const_cast<std::uint64_t&>(value_))
      .load(std::memory_order_relaxed);
}

void Counter::reset() {
  atomicRef(value_).store(0, std::memory_order_relaxed);
}

void Timer::record(std::chrono::nanoseconds elapsed) {
  atomicRef(count_).fetch_add(1, std::memory_order_relaxed);
  atomicRef(totalNs_).fetch_add(
      static_cast<std::uint64_t>(elapsed.count() < 0 ? 0 : elapsed.count()),
      std::memory_order_relaxed);
}

std::uint64_t Timer::count() const {
  return atomicRef(const_cast<std::uint64_t&>(count_))
      .load(std::memory_order_relaxed);
}

std::chrono::nanoseconds Timer::total() const {
  return std::chrono::nanoseconds(
      atomicRef(const_cast<std::uint64_t&>(totalNs_))
          .load(std::memory_order_relaxed));
}

void Timer::reset() {
  atomicRef(count_).store(0, std::memory_order_relaxed);
  atomicRef(totalNs_).store(0, std::memory_order_relaxed);
}

ScopedTimer::ScopedTimer(Timer& timer)
    : timer_(timer), start_(std::chrono::steady_clock::now()) {}

ScopedTimer::~ScopedTimer() {
  timer_.record(std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::steady_clock::now() - start_));
}

Counter& counter(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  return r.counters[name];
}

Timer& timer(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  return r.timers[name];
}

Snapshot snapshot() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  Snapshot snap;
  for (const auto& [name, c] : r.counters)
    if (c.value() != 0) snap.counters.push_back({name, c.value()});
  for (const auto& [name, t] : r.timers)
    if (t.count() != 0)
      snap.timers.push_back(
          {name, t.count(),
           static_cast<double>(t.total().count()) / 1e6});
  return snap;  // std::map iteration is already name-sorted
}

void resetAll() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  for (auto& [name, c] : r.counters) c.reset();
  for (auto& [name, t] : r.timers) t.reset();
}

std::string toMarkdown(const Snapshot& snapshot) {
  if (snapshot.empty()) return "";
  std::ostringstream os;
  if (!snapshot.counters.empty()) {
    Table table({"counter", "value"});
    for (const CounterSample& c : snapshot.counters)
      table.addRow({c.name, std::to_string(c.value)});
    os << table.toMarkdown();

    std::uint64_t hits = 0, misses = 0;
    for (const CounterSample& c : snapshot.counters) {
      if (c.name == kBfsCacheHits) hits = c.value;
      if (c.name == kBfsCacheMisses) misses = c.value;
    }
    if (hits + misses > 0) {
      std::ostringstream rate;
      rate.setf(std::ios::fixed);
      rate.precision(1);
      rate << (100.0 * static_cast<double>(hits) /
               static_cast<double>(hits + misses));
      os << "BFS cache hit rate: " << rate.str() << "%\n";
    }
  }
  if (!snapshot.timers.empty()) {
    if (!snapshot.counters.empty()) os << "\n";
    Table table({"timer", "calls", "total ms", "mean ms"});
    for (const TimerSample& t : snapshot.timers) {
      std::ostringstream total, mean;
      total.setf(std::ios::fixed);
      total.precision(3);
      total << t.totalMs;
      mean.setf(std::ios::fixed);
      mean.precision(3);
      mean << (t.totalMs / static_cast<double>(t.count));
      table.addRow({t.name, std::to_string(t.count), total.str(),
                    mean.str()});
    }
    os << table.toMarkdown();
  }
  return os.str();
}

namespace {

std::string fixedMs(double ms) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  os << ms;
  return os.str();
}

/// Escapes a metric name for JSON (names are ASCII identifiers with dots,
/// but be defensive about quotes and backslashes).
std::string jsonEscape(const std::string& name) {
  std::string out;
  for (char c : name) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

std::string toCsv(const Snapshot& snapshot) {
  if (snapshot.empty()) return "";
  std::ostringstream os;
  os << "kind,name,value,count,total_ms\n";
  for (const CounterSample& c : snapshot.counters)
    os << "counter," << c.name << "," << c.value << ",,\n";
  for (const TimerSample& t : snapshot.timers)
    os << "timer," << t.name << ",," << t.count << "," << fixedMs(t.totalMs)
       << "\n";
  return os.str();
}

std::string toJson(const Snapshot& snapshot) {
  if (snapshot.empty()) return "";
  std::ostringstream os;
  os << "{\"counters\": {";
  for (std::size_t k = 0; k < snapshot.counters.size(); ++k) {
    if (k > 0) os << ", ";
    os << "\"" << jsonEscape(snapshot.counters[k].name)
       << "\": " << snapshot.counters[k].value;
  }
  os << "}, \"timers\": {";
  for (std::size_t k = 0; k < snapshot.timers.size(); ++k) {
    if (k > 0) os << ", ";
    os << "\"" << jsonEscape(snapshot.timers[k].name) << "\": {\"count\": "
       << snapshot.timers[k].count << ", \"total_ms\": "
       << fixedMs(snapshot.timers[k].totalMs) << "}";
  }
  os << "}}\n";
  return os.str();
}

}  // namespace rfsm::metrics
