#include "util/table.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/strings.hpp"

namespace rfsm {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  RFSM_CHECK(!header_.empty(), "a table needs at least one column");
}

void Table::addRow(std::vector<std::string> row) {
  RFSM_CHECK(row.size() == header_.size(),
             "row width must match the header");
  rows_.push_back(std::move(row));
}

std::string Table::toMarkdown() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto renderRow = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += " " + row[c] + std::string(width[c] - row[c].size(), ' ') + " |";
    }
    return line + "\n";
  };

  std::string out = renderRow(header_);
  out += "|";
  for (std::size_t c = 0; c < header_.size(); ++c)
    out += std::string(width[c] + 2, '-') + "|";
  out += "\n";
  for (const auto& row : rows_) out += renderRow(row);
  return out;
}

std::string Table::toCsv() const {
  std::string out = join(header_, ",") + "\n";
  for (const auto& row : rows_) out += join(row, ",") + "\n";
  return out;
}

}  // namespace rfsm
