#include "util/supervisor.hpp"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>

#include "util/ipc.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"
#include "util/trace.hpp"

namespace rfsm {
namespace {

using Clock = CancelToken::Clock;

struct Item {
  std::string payload;
  std::shared_ptr<std::promise<WorkResult>> promise;
  std::shared_ptr<const CancelToken> cancel;
  int attempts = 0;  // attempts already consumed
  Clock::time_point notBefore = Clock::time_point::min();
};

}  // namespace

const char* toString(WorkResult::Status status) {
  switch (status) {
    case WorkResult::Status::kOk: return "OK";
    case WorkResult::Status::kFailed: return "FAILED";
    case WorkResult::Status::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case WorkResult::Status::kShed: return "RESOURCE_EXHAUSTED";
    case WorkResult::Status::kUnavailable: return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

std::chrono::milliseconds backoffDelay(int attempt,
                                       std::chrono::milliseconds base,
                                       std::chrono::milliseconds cap,
                                       double jitter01) {
  RFSM_CHECK(attempt >= 1, "backoff attempts are 1-based");
  // Saturating shift: attempt is small in practice, but a caller-supplied
  // maxAttempts must not overflow the multiplier.
  const int shift = std::min(attempt - 1, 20);
  auto delay = base * (1 << shift);
  if (delay > cap) delay = cap;
  delay += std::chrono::milliseconds(
      static_cast<long>(jitter01 * static_cast<double>(base.count())));
  return std::min(delay, cap + base);
}

struct Supervisor::Impl {
  SupervisorOptions options;

  mutable std::mutex mutex;
  std::condition_variable wake;
  std::deque<Item> queue;
  bool stopping = false;
  bool forcedUnhealthy = false;
  std::deque<Clock::time_point> crashTimes;  // within restartWindow
  std::uint64_t crashes = 0, retries = 0, shed = 0, dispatches = 0;
  DispatchHook dispatchHook;
  Rng jitterRng{1};

  std::vector<std::thread> threads;
  std::vector<ipc::ChildProcess> children;  // slot per worker thread
  std::vector<char> childBusy;              // slot holds a live child
  /// Mirror of the slots' child pids (-1 = empty), guarded by `mutex` so
  /// health() can report without touching slot-thread-owned state.  May lag
  /// a crash the slot thread has not noticed yet; health() documents the
  /// count as "spawned", not "proven alive".
  std::vector<int> pidView;

  // --- health ------------------------------------------------------------

  void pruneCrashWindow(Clock::time_point now) {
    while (!crashTimes.empty() &&
           now - crashTimes.front() > options.restartWindow)
      crashTimes.pop_front();
  }

  /// Caller holds `mutex`.
  bool unhealthyLocked(Clock::time_point now) {
    pruneCrashWindow(now);
    return forcedUnhealthy ||
           static_cast<int>(crashTimes.size()) > options.restartLimit;
  }

  void recordCrash() {
    static metrics::Counter& crashCounter =
        metrics::counter(metrics::kServiceWorkerCrashes);
    crashCounter.add();
    trace::instant("supervisor.worker_crash", "service");
    std::lock_guard<std::mutex> lock(mutex);
    ++crashes;
    crashTimes.push_back(Clock::now());
  }

  // --- item resolution ----------------------------------------------------

  static void resolve(Item& item, WorkResult::Status status,
                      std::string payload, std::string error) {
    WorkResult result;
    result.status = status;
    result.payload = std::move(payload);
    result.error = std::move(error);
    result.attempts = item.attempts;
    item.promise->set_value(std::move(result));
  }

  /// Requeues a crashed-out item with backoff, or fails it for good.
  void retryOrFail(Item&& item, const std::string& why) {
    if (item.attempts >= options.maxAttempts) {
      resolve(item, WorkResult::Status::kFailed, "",
              why + " (" + std::to_string(item.attempts) + " attempts)");
      return;
    }
    static metrics::Counter& retryCounter =
        metrics::counter(metrics::kServiceShardRetries);
    retryCounter.add();
    double jitter = 0.0;
    {
      std::lock_guard<std::mutex> lock(mutex);
      ++retries;
      jitter = jitterRng.uniform();
    }
    const auto delay = backoffDelay(item.attempts, options.backoffBase,
                                    options.backoffCap, jitter);
    trace::instant("supervisor.retry", "service",
                   {trace::Arg::num("attempt",
                                    static_cast<std::int64_t>(item.attempts)),
                    trace::Arg::num("backoff_ms", static_cast<std::int64_t>(
                                                      delay.count())),
                    trace::Arg::str("why", why)});
    item.notBefore = Clock::now() + delay;
    {
      std::lock_guard<std::mutex> lock(mutex);
      queue.push_back(std::move(item));
    }
    wake.notify_all();
  }

  // --- worker slot management ---------------------------------------------

  /// Ensures slot `slot` holds a live child.  Returns false (and leaves the
  /// slot empty) when spawning is not allowed or failed.
  bool ensureChild(std::size_t slot) {
    if (childBusy[slot] != 0 && ipc::childAlive(children[slot].pid)) {
      return true;
    }
    if (childBusy[slot] != 0) {
      // Found dead between requests; reap happened in childAlive.
      children[slot] = ipc::ChildProcess{};
      childBusy[slot] = 0;
      {
        std::lock_guard<std::mutex> lock(mutex);
        pidView[slot] = -1;
      }
      recordCrash();
    }
    {
      std::lock_guard<std::mutex> lock(mutex);
      if (unhealthyLocked(Clock::now())) return false;
    }
    try {
      children[slot] = ipc::spawnWorker(options.workerCommand);
      childBusy[slot] = 1;
    } catch (const Error&) {
      return false;
    }
    {
      std::lock_guard<std::mutex> lock(mutex);
      pidView[slot] = children[slot].pid;
    }
    static metrics::Counter& restartCounter =
        metrics::counter(metrics::kServiceWorkerRestarts);
    restartCounter.add();
    trace::instant("supervisor.worker_spawn", "service",
                   {trace::Arg::num("pid", static_cast<std::int64_t>(
                                               children[slot].pid))});
    return true;
  }

  void destroyChild(std::size_t slot) {
    if (childBusy[slot] == 0) return;
    ipc::killChild(children[slot].pid);
    children[slot] = ipc::ChildProcess{};
    childBusy[slot] = 0;
    std::lock_guard<std::mutex> lock(mutex);
    pidView[slot] = -1;
  }

  /// Eagerly spawns slot `slot`'s child and, when configured, runs the
  /// warm-up exchange.  Failures leave the slot empty — the normal lazy
  /// ensureChild path takes over on the first real item.
  void preforkSlot(std::size_t slot) {
    if (!ensureChild(slot)) return;
    if (!options.warmupPayload.empty()) {
      CancelToken warmupToken;
      warmupToken.setDeadline(Clock::now() + options.idleTimeout);
      std::string response;
      try {
        ipc::writeFrame(children[slot].channel.get(), options.warmupPayload);
        if (ipc::readFrame(children[slot].channel.get(), response,
                           &warmupToken) != ipc::ReadStatus::kOk) {
          destroyChild(slot);
          recordCrash();
          return;
        }
      } catch (const Error&) {
        destroyChild(slot);
        recordCrash();
        return;
      }
    }
    static metrics::Counter& preforkCounter =
        metrics::counter(metrics::kServiceWorkersPreforked);
    preforkCounter.add();
    trace::instant("supervisor.worker_preforked", "service",
                   {trace::Arg::num("slot", static_cast<std::int64_t>(slot))});
  }

  // --- the worker-slot service loop ----------------------------------------

  void serviceLoop(std::size_t slot) {
    trace::setCurrentThreadName("rfsm-supervise-" + std::to_string(slot));
    if (options.prefork) preforkSlot(slot);
    for (;;) {
      Item item;
      {
        std::unique_lock<std::mutex> lock(mutex);
        for (;;) {
          if (stopping) return;
          const auto now = Clock::now();
          // First eligible item (FIFO among the eligible).
          auto it = std::find_if(queue.begin(), queue.end(), [&](const Item& i) {
            return i.notBefore <= now;
          });
          if (it != queue.end()) {
            item = std::move(*it);
            queue.erase(it);
            break;
          }
          if (queue.empty()) {
            wake.wait(lock);
          } else {
            const auto earliest =
                std::min_element(queue.begin(), queue.end(),
                                 [](const Item& a, const Item& b) {
                                   return a.notBefore < b.notBefore;
                                 })
                    ->notBefore;
            wake.wait_until(lock, earliest);
          }
        }
      }
      process(slot, std::move(item));
    }
  }

  void process(std::size_t slot, Item&& item) {
    // Expired while queued?  Resolve without touching a worker.
    if (item.cancel != nullptr && item.cancel->expired()) {
      resolve(item, WorkResult::Status::kDeadlineExceeded, "",
              "deadline exceeded while queued");
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mutex);
      if (unhealthyLocked(Clock::now())) {
        resolve(item, WorkResult::Status::kUnavailable, "",
                "worker pool unhealthy");
        return;
      }
    }
    if (!ensureChild(slot)) {
      resolve(item, WorkResult::Status::kUnavailable, "",
              "cannot (re)spawn worker: restart budget exhausted or spawn "
              "failed");
      return;
    }
    ++item.attempts;

    if (ipc::pendingInput(children[slot].channel.get())) {
      // Bytes queued before we even sent the request: the channel is
      // desynchronized (a duplicated or late frame from a previous
      // exchange, or an EOF).  Reading now would pair a stale reply with
      // this request, so destroy the worker and retry on a fresh one.
      destroyChild(slot);
      recordCrash();
      retryOrFail(std::move(item),
                  "worker channel desynchronized (unexpected pending frame)");
      return;
    }

    try {
      ipc::writeFrame(children[slot].channel.get(), item.payload);
    } catch (const Error& error) {
      // The worker died before (or while) receiving the request: crash,
      // destroy, retry.
      destroyChild(slot);
      recordCrash();
      retryOrFail(std::move(item), std::string("worker write failed: ") +
                                       error.what());
      return;
    }

    DispatchHook hook;
    std::uint64_t ordinal = 0;
    {
      std::lock_guard<std::mutex> lock(mutex);
      hook = dispatchHook;
      ordinal = dispatches++;
    }
    if (hook) hook(ordinal, children[slot].pid);

    // Bound the wait: the item deadline + grace, or the idle timeout —
    // tightened further by the per-attempt timeout when configured.
    CancelToken readToken;
    Clock::time_point bound;
    if (item.cancel != nullptr && item.cancel->deadline().has_value()) {
      bound = *item.cancel->deadline() + options.deadlineGrace;
    } else {
      bound = Clock::now() + options.idleTimeout;
    }
    if (options.attemptTimeout.count() > 0)
      bound = std::min(bound, Clock::now() + options.attemptTimeout);
    readToken.setDeadline(bound);

    std::string response;
    ipc::ReadStatus status = ipc::ReadStatus::kEof;
    try {
      status = ipc::readFrame(children[slot].channel.get(), response,
                              &readToken);
    } catch (const Error& error) {
      destroyChild(slot);
      recordCrash();
      retryOrFail(std::move(item),
                  std::string("worker read failed: ") + error.what());
      return;
    }
    switch (status) {
      case ipc::ReadStatus::kOk:
        resolve(item, WorkResult::Status::kOk, std::move(response), "");
        return;
      case ipc::ReadStatus::kEof:
        // Crash mid-request (SIGKILL, OOM, abort): isolate and retry.
        destroyChild(slot);
        recordCrash();
        retryOrFail(std::move(item), "worker crashed mid-request");
        return;
      case ipc::ReadStatus::kTimeout:
        // The worker overran the deadline (or hung): it cannot be trusted
        // to ever answer — destroy it.  Past the item deadline this is a
        // DEADLINE_EXCEEDED, otherwise a hang worth retrying.
        destroyChild(slot);
        recordCrash();
        if (item.cancel != nullptr && item.cancel->expired()) {
          static metrics::Counter& deadlineCounter =
              metrics::counter(metrics::kServiceDeadlineExceeded);
          deadlineCounter.add();
          resolve(item, WorkResult::Status::kDeadlineExceeded, "",
                  "worker did not finish before the deadline");
        } else {
          retryOrFail(std::move(item), "worker hung past the idle timeout");
        }
        return;
    }
  }
};

Supervisor::Supervisor(SupervisorOptions options)
    : impl_(std::make_unique<Impl>()) {
  RFSM_CHECK(options.workers >= 1, "supervisor needs at least one worker");
  RFSM_CHECK(!options.workerCommand.empty(),
             "supervisor needs a worker command");
  ipc::ignoreSigpipe();
  impl_->options = std::move(options);
  impl_->jitterRng = Rng(impl_->options.jitterSeed);
  const auto n = static_cast<std::size_t>(impl_->options.workers);
  impl_->children.resize(n);
  impl_->childBusy.assign(n, 0);
  impl_->pidView.assign(n, -1);
  impl_->threads.reserve(n);
  for (std::size_t slot = 0; slot < n; ++slot)
    impl_->threads.emplace_back([this, slot] { impl_->serviceLoop(slot); });
}

Supervisor::~Supervisor() {
  std::deque<Item> leftovers;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stopping = true;
    leftovers.swap(impl_->queue);
  }
  impl_->wake.notify_all();
  for (Item& item : leftovers)
    Impl::resolve(item, WorkResult::Status::kUnavailable, "",
                  "supervisor shutting down");
  for (std::thread& thread : impl_->threads) thread.join();
  for (std::size_t slot = 0; slot < impl_->children.size(); ++slot)
    impl_->destroyChild(slot);
}

std::future<WorkResult> Supervisor::submit(
    std::string payload, std::shared_ptr<const CancelToken> cancel) {
  Item item;
  item.payload = std::move(payload);
  item.promise = std::make_shared<std::promise<WorkResult>>();
  item.cancel = std::move(cancel);
  std::future<WorkResult> future = item.promise->get_future();

  bool rejected = false;
  WorkResult::Status rejection = WorkResult::Status::kShed;
  std::string reason;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    if (impl_->stopping) {
      rejected = true;
      rejection = WorkResult::Status::kUnavailable;
      reason = "supervisor shutting down";
    } else if (impl_->unhealthyLocked(Clock::now())) {
      rejected = true;
      rejection = WorkResult::Status::kUnavailable;
      reason = "worker pool unhealthy";
    } else if (impl_->queue.size() >= impl_->options.queueCapacity) {
      rejected = true;
      rejection = WorkResult::Status::kShed;
      reason = "queue full (" +
               std::to_string(impl_->options.queueCapacity) + " items)";
      ++impl_->shed;
    }
    if (!rejected) impl_->queue.push_back(std::move(item));
  }
  if (rejected) {
    if (rejection == WorkResult::Status::kShed) {
      static metrics::Counter& shedCounter =
          metrics::counter(metrics::kServiceShed);
      shedCounter.add();
      trace::instant("supervisor.shed", "service");
    }
    Impl::resolve(item, rejection, "", reason);
  } else {
    impl_->wake.notify_one();
  }
  return future;
}

Supervisor::Health Supervisor::health() const {
  Health health;
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->pruneCrashWindow(Clock::now());
  health.healthy = !impl_->forcedUnhealthy &&
                   static_cast<int>(impl_->crashTimes.size()) <=
                       impl_->options.restartLimit;
  health.workersConfigured = impl_->options.workers;
  for (const int pid : impl_->pidView)
    if (pid >= 0) ++health.workersAlive;
  health.queueDepth = impl_->queue.size();
  health.crashesInWindow = static_cast<int>(impl_->crashTimes.size());
  health.crashes = impl_->crashes;
  health.retries = impl_->retries;
  health.shed = impl_->shed;
  return health;
}

void Supervisor::forceUnhealthy() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->forcedUnhealthy = true;
}

void Supervisor::clearUnhealthy() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->forcedUnhealthy = false;
}

void Supervisor::setDispatchHook(DispatchHook hook) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->dispatchHook = std::move(hook);
}

}  // namespace rfsm
