// Deterministic chaos injection: a seeded, process-global fault plane the
// syscall-boundary layers (util/fsio, util/ipc) consult before touching
// the disk or the wire.
//
// The design mirrors util/fault.hpp's named-preset convention, lifted from
// table faults to the infrastructure underneath the service stack:
//
//  * every schedule is a pure function of one seed — each injection site
//    draws from its own Rng::substream, so the k-th decision at a site is
//    identical across runs, threads notwithstanding (single-threaded runs
//    reproduce the full schedule bit-for-bit; multi-threaded runs reproduce
//    each site's decision *sequence*, which the invariant sweeps pin down
//    with single-threaded replay cells);
//  * profiles are addressable by name (`--chaos <seed>:<profile>`,
//    `RFSM_CHAOS=<seed>:<profile>`), so a failure seen in CI reproduces
//    from the CLI with the same flag;
//  * disabled is the default and costs one relaxed atomic load per site —
//    no draws, no locks, no branches beyond `enabled()`.
//
// Injected faults are *inputs*, not assertions: fsio reports them as
// FsError, ipc as IpcError/FrameError, and the existing retry / breaker /
// degradation / recovery machinery is expected to absorb them.  Every
// injection is journaled (site + kind + ordinal) and counted in
// service.chaos_disk_faults / service.chaos_net_faults, so an end-to-end
// sweep can assert that every fault it scheduled was seen and survived.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace rfsm::chaos {

/// Injection sites.  Each owns an independent substream of the plane's
/// seed, so adding draws at one site never perturbs another's schedule.
enum class Site : std::uint32_t {
  kDiskWrite = 0,   ///< fsio::writeAll — ENOSPC, EIO, short write
  kDiskFsync = 1,   ///< fsio::fsyncFd — failed fsync (poisons the fd)
  kDiskRename = 2,  ///< fsio::writeFileDurable — torn rename
  kDiskAppend = 3,  ///< fsio::appendDurable — power-loss truncation
  kNetConnect = 4,  ///< ipc::connectEndpoint — connection reset
  kNetWrite = 5,    ///< ipc::writeFrame — reset/partial/stall/dup/corrupt
  kNetRead = 6,     ///< ipc::readFrame — stalled socket, reset
  // Replication-link twins of the net sites: consulted instead of kNet*
  // while the calling thread is inside a ScopedReplLink scope, so WAL
  // shipping (service/repl.hpp) can be disturbed independently of the
  // client-facing wire.  Appended after the original sites so arming with
  // an old seed reproduces the old schedules bit-for-bit.
  kReplConnect = 7,
  kReplWrite = 8,
  kReplRead = 9,
};
inline constexpr std::size_t kSiteCount = 10;

/// Injection rates of one named chaos profile.  All probabilities are
/// per-consultation; `maxFaults` bounds the total injections of a run so
/// retry budgets provably converge (draws continue past the budget — the
/// schedule stays a pure function of the seed — but no more faults fire).
struct Profile {
  std::string name = "off";
  // Disk faults (util/fsio).
  double diskErrorProbability = 0.0;   ///< write fails with ENOSPC or EIO
  double shortWriteProbability = 0.0;  ///< write persists only a prefix
  double fsyncFailProbability = 0.0;   ///< fsync fails; the fd stays dirty
  double tornRenameProbability = 0.0;  ///< durable replace dies pre-rename
  double truncateProbability = 0.0;    ///< append cut at a random offset
  // Network faults (util/ipc).
  double connectResetProbability = 0.0;
  double resetProbability = 0.0;       ///< send fails mid-frame
  double partialWriteProbability = 0.0;///< prefix hits the wire, then death
  double stallProbability = 0.0;       ///< bounded delay before the syscall
  double duplicateProbability = 0.0;   ///< the frame is sent twice
  double corruptProbability = 0.0;     ///< one payload/trailer bit flips
  // Replication-link faults (same kinds, consulted only under
  // ScopedReplLink — primary->standby WAL shipping).
  double replConnectResetProbability = 0.0;
  double replResetProbability = 0.0;
  double replPartialWriteProbability = 0.0;
  double replStallProbability = 0.0;
  double replDuplicateProbability = 0.0;
  double replCorruptProbability = 0.0;
  /// Total injections before the plane goes quiet (draws continue).
  std::uint64_t maxFaults = 1u << 20;
};

/// Named profiles:
///   off          armed but silent (every probability zero)
///   disk-light   sparse disk faults — the recovery paths fire, progress
///                still dominates
///   disk-storm   dense disk faults for soak runs
///   net-light    sparse wire faults
///   net-storm    dense wire faults (every kind, most exchanges disturbed)
///   repl-light   sparse faults on the replication link only
///   repl-storm   dense faults on the replication link only
///   full         disk-light + net-light + repl-light combined
/// Returns nullopt for unknown names.
std::optional<Profile> profileByName(const std::string& name);
const std::vector<std::string>& profileNames();

/// One journaled injection, in schedule order.
struct Event {
  Site site = Site::kDiskWrite;
  std::uint32_t kind = 0;     ///< site-specific discriminator (see .cpp)
  std::uint64_t ordinal = 0;  ///< draw index within the site's stream
};

/// The process-global fault plane.  Thread-safe: decision draws serialize
/// on one mutex (they sit next to syscalls; the lock is noise), the
/// enabled check is a relaxed atomic.
class FaultPlane {
 public:
  /// Arms the plane: every site's stream derives from `seed`, rates come
  /// from `profile`.  Re-arming resets the journal and the fault budget.
  void arm(std::uint64_t seed, const Profile& profile);
  /// Arms from "<seed>:<profile>" (e.g. "7:net-light").  Throws Error on a
  /// malformed spec or an unknown profile name (the message lists the
  /// valid names, matching the `rfsmd --fault` convention).
  void armFromSpec(const std::string& spec);
  /// Arms from $RFSM_CHAOS when set (same spec syntax; throws on junk).
  /// Returns false when the variable is absent.
  bool armFromEnv();
  void disarm();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  std::uint64_t seed() const;
  Profile profile() const;

  // --- Disk decisions (consulted by util/fsio when enabled) --------------
  enum class DiskWriteFault : std::uint32_t { kNone, kEnospc, kEio, kShort };
  DiskWriteFault onDiskWrite();
  /// True = this fsync fails (the caller latches the fd dirty).
  bool onFsync();
  /// True = the durable replace dies before its rename (torn rename: the
  /// target keeps its old bytes, the temp file is the only casualty).
  bool onRename();
  /// Power-loss truncation: nullopt = clean append, else the fraction of
  /// the record in [0, 1) that reaches the disk before the simulated cut.
  std::optional<double> onAppend();

  // --- Network decisions (consulted by util/ipc when enabled) ------------
  enum class NetWriteFault : std::uint32_t {
    kNone, kReset, kPartial, kStall, kDuplicate, kCorrupt
  };
  NetWriteFault onNetWrite();
  enum class NetReadFault : std::uint32_t { kNone, kStall, kReset };
  NetReadFault onNetRead();
  /// True = the connect is refused (injected connection reset).
  bool onConnect();
  /// Uniform draw in [0, bound) on `site`'s stream — positions the flipped
  /// bit / truncation point deterministically.  bound must be positive.
  std::uint64_t drawBelow(Site site, std::uint64_t bound);

  // --- Replay evidence ----------------------------------------------------
  std::uint64_t injectedDisk() const;
  std::uint64_t injectedNet() const;
  /// FNV-1a digest over the journal (site, kind, ordinal triples): two runs
  /// of the same seed+profile over the same workload produce equal digests
  /// — the replayability contract bench_chaos_sweep (A18) asserts.
  std::uint64_t journalDigest() const;
  std::vector<Event> journal() const;

 private:
  bool fire(Site site, double probability, std::uint32_t kind);

  mutable std::mutex mutex_;
  std::atomic<bool> enabled_{false};
  std::uint64_t seed_ = 0;
  Profile profile_;
  std::vector<Rng> streams_;       ///< one per Site
  std::vector<std::uint64_t> draws_;  ///< per-site draw ordinals
  std::uint64_t injectedDisk_ = 0;
  std::uint64_t injectedNet_ = 0;
  std::vector<Event> journal_;
};

/// Marks the current thread's ipc traffic as replication-link traffic:
/// while a ScopedReplLink is alive, the plane's net decision points
/// (onNetWrite/onNetRead/onConnect and kNetWrite/kNetRead drawBelow calls)
/// consult the kRepl* streams and the profile's repl* probabilities
/// instead, so `repl-light`/`repl-storm` disturb WAL shipping without the
/// client-facing wire ever noticing.  Nests; thread-local.
class ScopedReplLink {
 public:
  ScopedReplLink();
  ~ScopedReplLink();
  ScopedReplLink(const ScopedReplLink&) = delete;
  ScopedReplLink& operator=(const ScopedReplLink&) = delete;
};

/// True while the calling thread is inside a ScopedReplLink scope.
bool onReplLink();

/// The process-global plane (one per process; worker subprocesses arm
/// their own from the inherited RFSM_CHAOS environment).
FaultPlane& plane();

}  // namespace rfsm::chaos
